(* The benchmark harness: regenerates the data series behind every figure
   of the paper's evaluation (Figs. 3, 4, 5, 7, 8), the headline summary
   numbers, the design-choice ablations, the automated paper-vs-measured
   checks, and a set of Bechamel micro-benchmarks of the core operations.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe fig3 fig4       # a subset
     dune exec bench/main.exe micro           # only the micro-benchmarks
     dune exec bench/main.exe all --quick     # reduced event counts
     dune exec bench/main.exe -- --jobs 4     # evaluate sweeps on 4 domains
     dune exec bench/main.exe -- --sweep      # time --jobs 1 vs --jobs N
     dune exec bench/main.exe -- --obs        # also write BENCH_obs.json
     dune exec bench/main.exe -- --weighted   # weighted-caching sweep
                                              # and write BENCH_weighted.json
     dune exec bench/main.exe -- --faults     # also run the resilience sweep
                                              # and write BENCH_faults.json
     dune exec bench/main.exe -- --cluster    # also run the sharded-cluster
                                              # sweep and write BENCH_cluster.json
     dune exec bench/main.exe -- --scenarios  # also run the scenario corpus
                                              # and write BENCH_scenarios.json

   Output on stdout is deterministic (fixed seeds) apart from the
   micro-benchmark timings, and identical for every --jobs value. Every
   run also records wall-clock per section in BENCH_sweep.json; --sweep
   additionally measures the speedup of --jobs N over --jobs 1; --obs
   additionally profiles every section and fig3/4/5 sweep cell as spans
   and writes them as Chrome trace_event JSON to BENCH_obs.json (open in
   chrome://tracing or Perfetto). *)

let settings ~quick ~jobs =
  let base =
    if quick then Agg_sim.Experiment.quick_settings else Agg_sim.Experiment.default_settings
  in
  { base with Agg_sim.Experiment.jobs }

let section title = Printf.printf "\n================ %s ================\n%!" title

(* Set by --quick: the micro section shrinks its Bechamel quota and
   throughput repetitions instead of its event counts. *)
let quick_flag = ref false

(* All timing goes through the Obs.Span monotonic clock — ci.sh greps for
   direct clock calls outside lib/obs. *)
let timed f =
  let t0 = Agg_obs.Span.now_ns () in
  f ();
  Agg_obs.Span.seconds_since t0

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Set by --obs: fig3/4/5 then time each sweep cell, and every section
   becomes a span, all exported to BENCH_obs.json. *)
let profiler : Agg_obs.Span.recorder option ref = ref None

(* the runner every figure section shares: one scope holding the --obs
   profiler (if any), [None] otherwise *)
let runner ~settings =
  let scope = Option.map (fun profiler -> Agg_obs.Scope.create ~profiler ()) !profiler in
  Agg_sim.Experiment.Runner.create ?scope ~settings ()

(* --- figure sections -------------------------------------------------- *)

let run_workloads ~settings =
  section "Workload characterisation (the §4.1 view of the four traces)";
  let table =
    Agg_util.Table.create ~title:"synthetic stand-ins for mozart / ives / dvorak / barber"
      ~columns:
        [
          "workload"; "events"; "files"; "clients"; "write %"; "repeat %"; "H(L=1) bits";
          "H per-client"; "last-succ acc %";
        ]
  in
  Agg_util.Pool.map ~jobs:settings.Agg_sim.Experiment.jobs
    (fun profile ->
      let trace = Agg_sim.Trace_store.get ~settings profile in
      let stats = Agg_trace.Trace_stats.compute trace in
      let accuracy =
        Agg_baselines.Last_successor.measure (Agg_sim.Trace_store.files ~settings profile)
        |> Agg_baselines.Last_successor.accuracy_rate
      in
      [
        profile.Agg_workload.Profile.name;
        string_of_int stats.Agg_trace.Trace_stats.events;
        string_of_int stats.Agg_trace.Trace_stats.distinct_files;
        string_of_int stats.Agg_trace.Trace_stats.clients;
        Printf.sprintf "%.1f" (100.0 *. stats.Agg_trace.Trace_stats.write_fraction);
        Printf.sprintf "%.1f" (100.0 *. stats.Agg_trace.Trace_stats.repeat_fraction);
        Printf.sprintf "%.2f" (Agg_entropy.Entropy.of_trace trace);
        Printf.sprintf "%.2f" (Agg_entropy.Entropy.per_client trace);
        Printf.sprintf "%.1f" (100.0 *. accuracy);
      ])
    Agg_workload.Profile.all
  |> List.iter (Agg_util.Table.add_row table);
  Agg_util.Table.print table

let run_fig3 ~settings =
  section "Fig. 3 — client demand fetches vs cache capacity (per group size)";
  Agg_sim.Experiment.print_figure (Agg_sim.Fig3.run (runner ~settings))

let run_fig4 ~settings =
  section "Fig. 4 — server hit rate behind an intervening client cache";
  Agg_sim.Experiment.print_figure (Agg_sim.Fig4.run (runner ~settings))

let run_fig5 ~settings =
  section "Fig. 5 — successor-list replacement quality (oracle / LRU / LFU)";
  Agg_sim.Experiment.print_figure (Agg_sim.Fig5.run (runner ~settings))

let run_fig7 ~settings =
  section "Fig. 7 — successor entropy vs successor sequence length";
  Agg_sim.Experiment.print_figure (Agg_sim.Fig7.run (runner ~settings))

let run_fig8 ~settings =
  section "Fig. 8 — successor entropy of LRU-filtered miss streams";
  Agg_sim.Experiment.print_figure (Agg_sim.Fig8.run (runner ~settings))

let run_summary ~settings =
  section "Headline summary (abstract / conclusions numbers)";
  Agg_util.Table.print (Agg_sim.Summary.client_table (Agg_sim.Summary.client_rows ~settings ()));
  Agg_util.Table.print (Agg_sim.Summary.server_table (Agg_sim.Summary.server_rows ~settings ()))

let run_checks ~settings =
  section "Paper-vs-measured checks";
  let checks = Agg_sim.Report.run_all ~settings () in
  Agg_util.Table.print (Agg_sim.Report.table checks);
  Printf.printf "%s\n"
    (if Agg_sim.Report.all_pass checks then "ALL CHECKS PASS" else "SOME CHECKS FAILED")

let print_panel panel =
  Agg_util.Table.print (Agg_sim.Experiment.panel_table ~figure_id:"ablation" panel)

let run_ablations ~settings =
  section "Ablation A1 — group-member insertion position (paper: 'little effect')";
  print_panel (Agg_sim.Ablations.member_position ~settings Agg_workload.Profile.server);
  section "Ablation A2 — metadata policy: recency vs frequency, end to end";
  print_panel (Agg_sim.Ablations.metadata_policy ~settings Agg_workload.Profile.server);
  section "Ablation A3 — successor-list capacity (metadata budget)";
  print_panel (Agg_sim.Ablations.successor_capacity ~settings Agg_workload.Profile.server);
  section "Ablation A4 — aggregating cache vs probability-graph prefetching";
  print_panel (Agg_sim.Ablations.baselines ~settings Agg_workload.Profile.server);
  section "Ablation A5 — server metadata: miss stream vs cooperative clients";
  print_panel (Agg_sim.Ablations.cooperative ~settings Agg_workload.Profile.server);
  section "Ablation A6 — grouping vs second-level replacement (MQ / SLRU / 2Q / ARC)";
  print_panel (Agg_sim.Ablations.second_level_policies ~settings Agg_workload.Profile.server);
  section "Ablation A7 — successor-sequence tracking (the Fig. 6 model)";
  Agg_util.Table.print (Agg_sim.Ablations.sequence_model ~settings ());
  section "Ablation A8 — grouping for data placement (linear device seeks)";
  Agg_util.Table.print (Agg_sim.Ablations.placement ~settings Agg_workload.Profile.server);
  section "Ablation A9 — adaptive group sizing";
  Agg_util.Table.print (Agg_sim.Ablations.adaptive_group ~settings ());
  section "Ablation A10 — overlapping groups vs disjoint partition (§2.1)";
  Agg_util.Table.print (Agg_sim.Ablations.overlap_vs_partition ~settings Agg_workload.Profile.server);
  Agg_util.Table.print
    (Agg_sim.Ablations.overlap_vs_partition ~settings Agg_workload.Profile.workstation);
  section "Ablation A11 — server-side group-size sweep";
  print_panel (Agg_sim.Ablations.server_group_size ~settings Agg_workload.Profile.server);
  section "Predictor accuracy — recency vs frequency vs context";
  Agg_util.Table.print (Agg_sim.Ablations.predictor_accuracy ~settings ())

let run_latency ~settings =
  section "End-to-end latency (Fig. 2 path: client / network / server / disk)";
  let trace = Agg_sim.Trace_store.get ~settings Agg_workload.Profile.server in
  let costs = [ ("LAN", Agg_system.Cost_model.lan); ("WAN", Agg_system.Cost_model.wan) ] in
  let deployments = [ `Baseline; `Aggregating_client; `Aggregating_both ] in
  Agg_sim.Experiment.grid ~settings ~rows:costs ~cols:deployments
    (fun (_, cost) deployment ->
      let config =
        Agg_system.Path.with_deployment deployment
          { Agg_system.Path.default_config with cost }
      in
      let r = Agg_system.Path.run config trace in
      [
        Agg_system.Path.deployment_name deployment;
        Printf.sprintf "%.3f" r.Agg_system.Path.mean_latency;
        Printf.sprintf "%.3f" r.Agg_system.Path.p95_latency;
        string_of_int r.Agg_system.Path.round_trips;
        string_of_int r.Agg_system.Path.files_transferred;
        string_of_int r.Agg_system.Path.disk_reads;
        Printf.sprintf "%.1f"
          (100.0 *. float_of_int r.Agg_system.Path.client_hits
          /. float_of_int r.Agg_system.Path.accesses);
      ])
  |> List.iter (fun ((cost_name, _), rows) ->
         let table =
           Agg_util.Table.create
             ~title:(Printf.sprintf "server workload, %s costs" cost_name)
             ~columns:
               [ "deployment"; "mean ms"; "p95 ms"; "rtts"; "files sent"; "disk reads"; "client hit %" ]
         in
         List.iter (fun (_, row) -> Agg_util.Table.add_row table row) rows;
         Agg_util.Table.print table)

let run_fleet ~settings =
  section "Fleet — many clients, one server, write invalidation (users workload)";
  let trace = Agg_sim.Trace_store.get ~settings Agg_workload.Profile.users in
  let table =
    Agg_util.Table.create ~title:"fleet size sweep (client caches 150 files, server 300)"
      ~columns:
        [ "clients"; "scheme"; "client hit %"; "server hit %"; "store fetches"; "invalidations" ]
  in
  let schemes =
    [
      ("plain", Agg_system.Scheme.plain_lru, Agg_system.Scheme.plain_lru);
      ( "aggregating",
        Agg_system.Scheme.Aggregating Agg_core.Config.default,
        Agg_system.Scheme.Aggregating Agg_core.Config.default );
    ]
  in
  Agg_sim.Experiment.grid ~settings ~rows:[ 1; 2; 4; 8; 16 ] ~cols:schemes
    (fun clients (name, client_scheme, server_scheme) ->
      let config =
        { Agg_system.Fleet.default_config with clients; client_scheme; server_scheme }
      in
      let r = Agg_system.Fleet.run config trace in
      [
        string_of_int clients;
        name;
        Printf.sprintf "%.1f" (100.0 *. Agg_system.Fleet.client_hit_rate r);
        Printf.sprintf "%.1f" (100.0 *. Agg_system.Fleet.server_hit_rate r);
        string_of_int r.Agg_system.Fleet.store_fetches;
        string_of_int r.Agg_system.Fleet.invalidations;
      ])
  |> List.iter (fun (_, rows) ->
         List.iter (fun (_, row) -> Agg_util.Table.add_row table row) rows);
  Agg_util.Table.print table

let faults_json_path = "BENCH_faults.json"

let run_faults ~settings =
  section "Resilience — hit rate & latency vs message loss (lru vs g5)";
  let runner = Agg_sim.Experiment.Runner.create ~settings () in
  let points = Agg_sim.Resilience.sweep runner in
  Agg_sim.Experiment.print_figure (Agg_sim.Resilience.run runner);
  (match Agg_sim.Resilience.hit_rate_advantage ~loss_rate:0.1 points with
  | Some d -> Printf.printf "g5 hit-rate advantage over lru at 10%% loss: %+.2f pts\n" d
  | None -> ());
  let oc = open_out faults_json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Agg_sim.Resilience.json_of_points points));
  Printf.printf "wrote %d sweep points to %s\n" (List.length points) faults_json_path

let cluster_json_path = "BENCH_cluster.json"

let run_cluster ~settings =
  section "Cluster — sharded ring under node loss (scheme x replicas x metadata placement)";
  let runner = Agg_sim.Experiment.Runner.create ~settings () in
  let points = Agg_sim.Cluster.sweep runner in
  Agg_sim.Experiment.print_figure (Agg_sim.Cluster.run runner);
  let fleet_match = Agg_sim.Cluster.fleet_equivalent runner in
  Printf.printf "degenerate N=1,k=1 cluster matches Fleet byte-for-byte: %b\n" fleet_match;
  (match Agg_sim.Cluster.degraded_reduction points with
  | Some (k_min, k_max) ->
      Printf.printf "degraded fetches at max node loss (g5, replicated metadata): k_min=%d k_max=%d\n"
        k_min k_max
  | None -> ());
  let oc = open_out cluster_json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Agg_sim.Cluster.json_of_points ~fleet_match points));
  Printf.printf "wrote %d sweep points to %s\n" (List.length points) cluster_json_path

let scenarios_json_path = "BENCH_scenarios.json"

let run_scenarios ~settings =
  section "Scenarios — declarative corpus with invariant checking (scenarios/*.scn)";
  let runner = Agg_sim.Experiment.Runner.create ~settings () in
  let events_cap = if !quick_flag then Some 4_000 else None in
  let entries = Agg_sim.Scenarios.run_corpus ?events_cap ~runner "scenarios" in
  print_string (Agg_sim.Scenarios.render entries);
  Printf.printf "corpus verdict: %s\n"
    (if Agg_sim.Scenarios.all_ok entries then "all ok" else "FAILURES");
  let oc = open_out scenarios_json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Agg_sim.Scenarios.json_of_entries entries));
  Printf.printf "wrote %d scenario results to %s\n" (List.length entries) scenarios_json_path

let weighted_json_path = "BENCH_weighted.json"

let run_weighted ~settings =
  section "Weighted caching — size/cost-aware policies on the sized profiles";
  let runner = Agg_sim.Experiment.Runner.create ~settings () in
  let cells = Agg_sim.Weighted.sweep runner in
  Agg_sim.Experiment.print_figure (Agg_sim.Weighted.run runner);
  let verdicts = Agg_sim.Weighted.verdicts runner in
  List.iter
    (fun (v : Agg_sim.Weighted.verdict) ->
      Printf.printf "%s: g5 total retrieval cost %d vs landlord %d — g5 %s\n"
        v.Agg_sim.Weighted.v_profile v.Agg_sim.Weighted.g5_cost v.Agg_sim.Weighted.landlord_cost
        (if v.Agg_sim.Weighted.g5_wins then "wins" else "loses"))
    verdicts;
  let oc = open_out weighted_json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"cells\": [\n";
      List.iteri
        (fun i (c : Agg_sim.Weighted.cell) ->
          Printf.fprintf oc
            "    {\"profile\": \"%s\", \"policy\": \"%s\", \"capacity\": %d, \
             \"byte_hit_rate\": %.6f, \"cost_saved_rate\": %.6f, \"total_retrieval_cost\": \
             %d}%s\n"
            (json_escape c.Agg_sim.Weighted.profile)
            (json_escape c.Agg_sim.Weighted.policy)
            c.Agg_sim.Weighted.capacity c.Agg_sim.Weighted.byte_hit_rate
            c.Agg_sim.Weighted.cost_saved_rate c.Agg_sim.Weighted.total_cost
            (if i = List.length cells - 1 then "" else ","))
        cells;
      Printf.fprintf oc "  ],\n  \"verdict\": [\n";
      List.iteri
        (fun i (v : Agg_sim.Weighted.verdict) ->
          Printf.fprintf oc
            "    {\"profile\": \"%s\", \"capacity\": %d, \"g5_total_cost\": %d, \
             \"landlord_total_cost\": %d, \"g5_beats_landlord\": %b}%s\n"
            (json_escape v.Agg_sim.Weighted.v_profile)
            v.Agg_sim.Weighted.v_capacity v.Agg_sim.Weighted.g5_cost
            v.Agg_sim.Weighted.landlord_cost v.Agg_sim.Weighted.g5_wins
            (if i = List.length verdicts - 1 then "" else ","))
        verdicts;
      Printf.fprintf oc "  ]\n}\n");
  Printf.printf "wrote %d sweep cells to %s\n" (List.length cells) weighted_json_path

let telemetry_json_path = "BENCH_telemetry.json"

(* Two windowed-series measurements the end-of-run aggregates cannot
   express:

   - {e crash recovery} — with a client-crash plan wiping the cache
     mid-run, how many windows does each scheme need to climb back to
     90% of its own steady-state hit rate? Grouping refills a lost
     working set a whole retrieval group at a time, so g5 should recover
     in no more windows than lru.
   - {e ring-churn load skew} — peak per-window load imbalance across a
     5-node ring while a node leaves and rejoins, versus the pre-churn
     baseline. *)
let run_telemetry ~settings =
  section "Telemetry — windowed series: crash recovery (lru vs g5) and ring-churn load skew";
  let events = settings.Agg_sim.Experiment.events in
  let window = max 250 (events / 40) in
  let trace = Agg_sim.Trace_store.get ~settings Agg_workload.Profile.server in
  let faults =
    {
      Agg_faults.Plan.none with
      Agg_faults.Plan.crash_rate = 4.0 /. float_of_int events;
      seed = 11;
    }
  in
  let recover scheme =
    let series = Agg_obs.Series.create ~window in
    let config =
      {
        Agg_system.Path.default_config with
        Agg_system.Path.client = scheme;
        server = scheme;
        faults;
        scope = Some (Agg_obs.Scope.create ~series ());
      }
    in
    ignore (Agg_system.Path.run config trace);
    let n = Agg_obs.Series.windows series in
    let hit w = Agg_obs.Series.hit_rate series w in
    let steady =
      let lo = 3 * n / 4 in
      let sum = ref 0.0 in
      for w = lo to n - 1 do
        sum := !sum +. hit w
      done;
      !sum /. float_of_int (max 1 (n - lo))
    in
    (* deepest dip after the cold-start ramp, then windows back to 90%
       of steady state (n - 1 - dip when the run ends still degraded) *)
    let warm = max 1 (n / 5) in
    let dip = ref warm in
    for w = warm to n - 1 do
      if hit w < hit !dip then dip := w
    done;
    let recovered = ref (n - 1) in
    (try
       for w = !dip to n - 1 do
         if hit w >= 0.9 *. steady then begin
           recovered := w;
           raise Exit
         end
       done
     with Exit -> ());
    (steady, hit !dip, !dip, !recovered - !dip)
  in
  let lru_steady, lru_dip_rate, lru_dip, lru_rec = recover Agg_system.Scheme.plain_lru in
  let g5_steady, g5_dip_rate, g5_dip, g5_rec = recover (Agg_system.Scheme.aggregating ()) in
  Printf.printf
    "crash recovery (window %d accesses): lru steady %.1f%% dip %.1f%% @w%d, back in %d windows\n"
    window lru_steady lru_dip_rate lru_dip lru_rec;
  Printf.printf
    "                                     g5  steady %.1f%% dip %.1f%% @w%d, back in %d windows\n"
    g5_steady g5_dip_rate g5_dip g5_rec;
  Printf.printf "g5 recovers %s lru after cache loss\n"
    (if g5_rec < lru_rec then "faster than"
     else if g5_rec = lru_rec then "as fast as"
     else "SLOWER than");
  let churn =
    [ (events / 3, Agg_cluster.Cluster.Leave 4); (2 * events / 3, Agg_cluster.Cluster.Join 4) ]
  in
  let series = Agg_obs.Series.create ~window in
  let config =
    {
      Agg_cluster.Cluster.default_config with
      Agg_cluster.Cluster.nodes = 5;
      replicas = 2;
      client_scheme = Agg_system.Scheme.aggregating ();
      node_scheme = Agg_system.Scheme.aggregating ();
      churn;
      scope = Some (Agg_obs.Scope.create ~series ());
    }
  in
  let r = Agg_cluster.Cluster.run config trace in
  let n = Agg_obs.Series.windows series in
  let imb w = Agg_obs.Series.load_imbalance series w in
  let baseline =
    let upto = max 1 (events / 3 / window) in
    let sum = ref 0.0 in
    for w = 0 to min (n - 1) (upto - 1) do
      sum := !sum +. imb w
    done;
    !sum /. float_of_int (min n upto)
  in
  let peak = ref 0.0 in
  let peak_w = ref 0 in
  for w = 0 to n - 1 do
    if imb w > !peak then begin
      peak := imb w;
      peak_w := w
    end
  done;
  Printf.printf
    "ring churn (5 nodes, k=2, leave+rejoin): baseline imbalance %.2f, peak %.2f @w%d, %d \
     rebalances moved %d files\n"
    baseline !peak !peak_w r.Agg_cluster.Cluster.rebalances r.Agg_cluster.Cluster.moved_files;
  let oc = open_out telemetry_json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "{\n\
        \  \"window\": %d,\n\
        \  \"recovery\": {\n\
        \    \"lru\": {\"steady_hit_rate\": %.4f, \"dip_hit_rate\": %.4f, \"dip_window\": %d, \
         \"recovery_windows\": %d},\n\
        \    \"g5\": {\"steady_hit_rate\": %.4f, \"dip_hit_rate\": %.4f, \"dip_window\": %d, \
         \"recovery_windows\": %d}\n\
        \  },\n\
        \  \"churn_skew\": {\"nodes\": 5, \"replicas\": 2, \"baseline_imbalance\": %.4f, \
         \"peak_imbalance\": %.4f, \"peak_window\": %d, \"rebalances\": %d, \"moved_files\": %d}\n\
         }\n"
        window lru_steady lru_dip_rate lru_dip lru_rec g5_steady g5_dip_rate g5_dip g5_rec
        baseline !peak !peak_w r.Agg_cluster.Cluster.rebalances r.Agg_cluster.Cluster.moved_files);
  Printf.printf "wrote telemetry report to %s\n" telemetry_json_path

(* --- scale: one fig3-shaped point at 10^5 clients ------------------------- *)

(* The profile lives here, not in Profile.all: the calibrated
   paper-vs-measured checks only cover the four paper workloads, and a
   100k-client population has no paper counterpart. Shape follows the
   `users` profile with shorter tasks so the private-file namespace stays
   bounded (~10^6 ids, within the flat trackers' dense-id assumption). *)
let scale_profile =
  {
    Agg_workload.Profile.users with
    Agg_workload.Profile.name = "scale-100k";
    clients = 100_000;
    tasks = 100_000;
    task_len_min = 4;
    task_len_max = 10;
    shared_pool = 2_000;
    background_files = 50_000;
  }

let run_scale ~settings:_ =
  section "Scale — fig3-shaped cell at 100,000 clients (group size 5, capacity 300)";
  let events = if !quick_flag then 100_000 else 400_000 in
  let files = Agg_workload.Generator.generate_files ~seed:42 ~events scale_profile in
  let distinct =
    let max_id = Array.fold_left max 0 files in
    let seen = Bytes.make (max_id + 1) '\000' in
    Array.iter (fun f -> Bytes.set seen f '\001') files;
    let n = ref 0 in
    Bytes.iter (fun c -> if c = '\001' then incr n) seen;
    !n
  in
  let run ~group_size =
    let cache =
      Agg_core.Client_cache.create
        ~config:(Agg_core.Config.with_group_size group_size Agg_core.Config.default)
        ~capacity:300 ()
    in
    Agg_core.Client_cache.run_files cache files
  in
  let baseline = run ~group_size:1 in
  let grouped = run ~group_size:5 in
  let table =
    Agg_util.Table.create
      ~title:
        (Printf.sprintf "scale-100k: %d clients, %d events, %d distinct files"
           scale_profile.Agg_workload.Profile.clients events distinct)
      ~columns:[ "scheme"; "hit %"; "demand fetches"; "prefetches used" ]
  in
  List.iter
    (fun (name, (m : Agg_core.Metrics.client)) ->
      Agg_util.Table.add_row table
        [
          name;
          Printf.sprintf "%.2f" (100.0 *. Agg_core.Metrics.client_hit_rate m);
          string_of_int m.Agg_core.Metrics.demand_fetches;
          string_of_int m.Agg_core.Metrics.prefetch.Agg_core.Metrics.used;
        ])
    [ ("lru (g=1)", baseline); ("aggregating g5", grouped) ];
  Agg_util.Table.print table;
  Printf.printf "demand-fetch reduction at 100k clients: %.1f%%\n"
    (100.0
    *. (1.0
       -. (float_of_int grouped.Agg_core.Metrics.demand_fetches
          /. float_of_int (max 1 baseline.Agg_core.Metrics.demand_fetches))))

(* --- Bechamel micro-benchmarks ------------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let files =
    Agg_workload.Generator.generate_files ~seed:7 ~events:20_000 Agg_workload.Profile.server
  in
  let n = Array.length files in
  (* Each staged closure carries its own cursor through the trace so the
     measured operation is one access. *)
  let cache_access kind =
    let cache = Agg_cache.Cache.create kind ~capacity:500 in
    let i = ref 0 in
    Staged.stage (fun () ->
        ignore (Agg_cache.Cache.access cache files.(!i));
        i := (!i + 1) mod n)
  in
  let tracker_observe =
    let tracker = Agg_successor.Tracker.create () in
    let i = ref 0 in
    Staged.stage (fun () ->
        Agg_successor.Tracker.observe tracker files.(!i);
        i := (!i + 1) mod n)
  in
  let group_build =
    let tracker = Agg_successor.Tracker.create () in
    Array.iter (Agg_successor.Tracker.observe tracker) files;
    let i = ref 0 in
    Staged.stage (fun () ->
        ignore (Agg_core.Group_builder.build tracker ~group_size:5 files.(!i));
        i := (!i + 1) mod n)
  in
  let agg_client_access =
    let client = Agg_core.Client_cache.create ~capacity:500 () in
    let i = ref 0 in
    Staged.stage (fun () ->
        ignore (Agg_core.Client_cache.access client files.(!i));
        i := (!i + 1) mod n)
  in
  [
    Test.make ~name:"lru-access" (cache_access Agg_cache.Cache.Lru);
    Test.make ~name:"lfu-access" (cache_access Agg_cache.Cache.Lfu);
    Test.make ~name:"clock-access" (cache_access Agg_cache.Cache.Clock);
    Test.make ~name:"tracker-observe" tracker_observe;
    Test.make ~name:"group-build-g5" group_build;
    Test.make ~name:"agg-client-access" agg_client_access;
    Test.make ~name:"entropy-20k-events"
      (Staged.stage (fun () -> ignore (Agg_entropy.Entropy.of_files files)));
    Test.make ~name:"generate-5k-events"
      (Staged.stage (fun () ->
           ignore
             (Agg_workload.Generator.generate_files ~seed:1 ~events:5_000
                Agg_workload.Profile.server)));
  ]

let micro_json_path = "BENCH_micro.json"

(* Per-policy op throughput: the same 20k-event server stream driven
   through every online policy facade. Wall-clock, so the numbers vary
   run to run; structure and op counts are deterministic. *)
let policy_throughput ~reps files =
  List.map
    (fun kind ->
      let cache = Agg_cache.Cache.create kind ~capacity:500 in
      let ops = reps * Array.length files in
      let seconds =
        timed (fun () ->
            for _ = 1 to reps do
              Array.iter (fun f -> ignore (Agg_cache.Cache.access cache f)) files
            done)
      in
      (Agg_cache.Cache.kind_name kind, ops, seconds))
    Agg_cache.Cache.all_kinds

let write_micro_json rows =
  let oc = open_out micro_json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"stream\": \"server seed=7 events=20000 capacity=500\",\n";
      Printf.fprintf oc "  \"policies\": [\n";
      List.iteri
        (fun i (name, ops, seconds) ->
          let ns_per_op = if ops = 0 then 0.0 else seconds *. 1e9 /. float_of_int ops in
          let mops = if seconds > 0.0 then float_of_int ops /. seconds /. 1e6 else 0.0 in
          Printf.fprintf oc
            "    {\"policy\": \"%s\", \"ops\": %d, \"seconds\": %.4f, \"ns_per_op\": %.1f, \
             \"mops_per_sec\": %.2f}%s\n"
            (json_escape name) ops seconds ns_per_op mops
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n}\n")

let run_micro () =
  section "Micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let quota = if !quick_flag then Time.second 0.1 else Time.second 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~kde:None () in
  let grouped = Test.make_grouped ~name:"aggcache" (micro_tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Agg_util.Table.create ~title:"core operation costs"
      ~columns:[ "operation"; "time/op"; "r²" ]
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with Some (t :: _) -> t | Some [] | None -> Float.nan
      in
      let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square ols) in
      let time =
        if Float.is_nan estimate then "n/a"
        else if estimate > 1_000_000.0 then Printf.sprintf "%.2f ms" (estimate /. 1_000_000.0)
        else if estimate > 1_000.0 then Printf.sprintf "%.2f us" (estimate /. 1_000.0)
        else Printf.sprintf "%.1f ns" estimate
      in
      Agg_util.Table.add_row table [ name; time; Printf.sprintf "%.3f" r2 ])
    (List.sort (fun (a, _) (b, _) -> compare a b) rows);
  Agg_util.Table.print table;
  let files =
    Agg_workload.Generator.generate_files ~seed:7 ~events:20_000 Agg_workload.Profile.server
  in
  let reps = if !quick_flag then 2 else 10 in
  let throughput = policy_throughput ~reps files in
  let table =
    Agg_util.Table.create ~title:"per-policy access throughput (server stream, capacity 500)"
      ~columns:[ "policy"; "ops"; "ns/op"; "Mops/s" ]
  in
  List.iter
    (fun (name, ops, seconds) ->
      Agg_util.Table.add_row table
        [
          name;
          string_of_int ops;
          Printf.sprintf "%.0f" (seconds *. 1e9 /. float_of_int (max 1 ops));
          (if seconds > 0.0 then Printf.sprintf "%.2f" (float_of_int ops /. seconds /. 1e6)
           else "n/a");
        ])
    throughput;
  Agg_util.Table.print table;
  write_micro_json throughput;
  Printf.printf "wrote %d policy rows to %s\n" (List.length throughput) micro_json_path

(* --- BENCH_sweep.json ------------------------------------------------------ *)

let bench_json_path = "BENCH_sweep.json"

(* one timing record per executed section: (name, seconds at --jobs N,
   seconds at --jobs 1 when --sweep measured it) *)
type timing = { name : string; seconds : float; baseline_seconds : float option }

let write_bench_json ~jobs ~quick ~(settings : Agg_sim.Experiment.settings) timings =
  let oc = open_out bench_json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let total sel = List.fold_left (fun acc t -> acc +. sel t) 0.0 timings in
      let total_n = total (fun t -> t.seconds) in
      let total_1 = total (fun t -> Option.value ~default:0.0 t.baseline_seconds) in
      let swept = List.exists (fun t -> t.baseline_seconds <> None) timings in
      Printf.fprintf oc "{\n";
      Printf.fprintf oc "  \"jobs\": %d,\n" jobs;
      Printf.fprintf oc "  \"events\": %d,\n" settings.Agg_sim.Experiment.events;
      Printf.fprintf oc "  \"seed\": %d,\n" settings.Agg_sim.Experiment.seed;
      Printf.fprintf oc "  \"quick\": %b,\n" quick;
      Printf.fprintf oc "  \"recommended_domains\": %d,\n" (Agg_util.Pool.default_jobs ());
      Printf.fprintf oc "  \"sections\": [\n";
      List.iteri
        (fun i t ->
          let speedup =
            match t.baseline_seconds with
            | Some b when t.seconds > 0.0 ->
                Printf.sprintf ", \"jobs1_seconds\": %.3f, \"speedup_vs_jobs1\": %.2f" b
                  (b /. t.seconds)
            | _ -> ""
          in
          Printf.fprintf oc "    {\"name\": \"%s\", \"seconds\": %.3f%s}%s\n" (json_escape t.name)
            t.seconds speedup
            (if i = List.length timings - 1 then "" else ","))
        timings;
      Printf.fprintf oc "  ],\n";
      if swept then begin
        Printf.fprintf oc "  \"total_jobs1_seconds\": %.3f,\n" total_1;
        if total_n > 0.0 then
          Printf.fprintf oc "  \"total_speedup_vs_jobs1\": %.2f,\n" (total_1 /. total_n)
      end;
      Printf.fprintf oc "  \"total_seconds\": %.3f\n" total_n;
      Printf.fprintf oc "}\n")

(* Run [f] with stdout redirected to /dev/null — the --sweep timing runs
   would otherwise print every section twice. *)
let silently f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

(* --- main ------------------------------------------------------------------ *)

let sections =
  [
    ("workloads", `Settings run_workloads);
    ("fig3", `Settings run_fig3);
    ("fig4", `Settings run_fig4);
    ("fig5", `Settings run_fig5);
    ("fig7", `Settings run_fig7);
    ("fig8", `Settings run_fig8);
    ("summary", `Settings run_summary);
    ("checks", `Settings run_checks);
    ("ablations", `Settings run_ablations);
    ("latency", `Settings run_latency);
    ("fleet", `Settings run_fleet);
    ("scale", `Settings run_scale);
    ("micro", `Plain run_micro);
  ]

let usage () =
  Printf.eprintf
    "usage: main.exe [SECTION...] [--quick] [--jobs N] [--sweep] [--obs] [--faults] [--cluster] \
     [--scenarios] [--telemetry] [--weighted]\nsections: %s | all\n"
    (String.concat " | " (List.map fst sections));
  exit 2

let obs_json_path = "BENCH_obs.json"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  quick_flag := quick;
  let sweep = List.mem "--sweep" args in
  let obs = List.mem "--obs" args in
  let faults = List.mem "--faults" args in
  let cluster = List.mem "--cluster" args in
  let scenarios = List.mem "--scenarios" args in
  let telemetry = List.mem "--telemetry" args in
  let weighted = List.mem "--weighted" args in
  if obs then profiler := Some (Agg_obs.Span.recorder ());
  let rec parse_jobs = function
    | "--jobs" :: n :: _ -> (
        match int_of_string_opt n with Some n when n > 0 -> n | _ -> usage ())
    | _ :: rest -> parse_jobs rest
    | [] -> Agg_util.Pool.default_jobs ()
  in
  let jobs = parse_jobs args in
  let rec strip = function
    | "--jobs" :: _ :: rest -> strip rest
    | flag :: rest
      when flag = "--quick" || flag = "--sweep" || flag = "--obs" || flag = "--faults"
           || flag = "--cluster" || flag = "--scenarios" || flag = "--telemetry"
           || flag = "--weighted" -> strip rest
    | arg :: rest -> arg :: strip rest
    | [] -> []
  in
  let wanted = strip args in
  let wanted = if wanted = [] || List.mem "all" wanted then List.map fst sections else wanted in
  let settings = settings ~quick ~jobs in
  let run_section ~name ~settings body =
    let go () = match body with `Settings f -> f ~settings | `Plain f -> f () in
    match !profiler with
    | Some recorder -> Agg_obs.Span.record recorder ~cat:"section" name go
    | None -> go ()
  in
  let timings =
    List.map
      (fun name ->
        match List.assoc_opt name sections with
        | None -> usage ()
        | Some body ->
            if sweep then begin
              (* measure the sequential path first, from a cold trace
                 store, then the parallel path, also from cold *)
              Agg_sim.Trace_store.reset ();
              let baseline =
                timed (fun () ->
                    silently (fun () ->
                        run_section ~name
                          ~settings:{ settings with Agg_sim.Experiment.jobs = 1 }
                          body))
              in
              Agg_sim.Trace_store.reset ();
              let seconds =
                timed (fun () -> silently (fun () -> run_section ~name ~settings body))
              in
              Printf.printf "%-10s  jobs=1  %7.2fs   jobs=%-3d %7.2fs   speedup %.2fx\n%!" name
                baseline jobs seconds
                (if seconds > 0.0 then baseline /. seconds else 0.0);
              { name; seconds; baseline_seconds = Some baseline }
            end
            else begin
              let seconds = timed (fun () -> run_section ~name ~settings body) in
              { name; seconds; baseline_seconds = None }
            end)
      wanted
  in
  if faults then run_faults ~settings;
  if cluster then run_cluster ~settings;
  if scenarios then run_scenarios ~settings;
  if telemetry then run_telemetry ~settings;
  if weighted then run_weighted ~settings;
  write_bench_json ~jobs ~quick ~settings timings;
  match !profiler with
  | None -> ()
  | Some recorder ->
      let oc = open_out obs_json_path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Agg_obs.Span.write_chrome oc recorder);
      Printf.printf "\nwrote %d spans to %s (Chrome trace_event format)\n"
        (Agg_obs.Span.count recorder) obs_json_path
