(* aggsim — command-line front end for the aggregating-cache simulator.

   Subcommands cover trace generation and inspection, each figure
   experiment of the paper, the headline summary, the ablations, and the
   automated paper-vs-measured checks. *)

open Cmdliner

(* --- shared options ------------------------------------------------ *)

let profile_conv =
  let parse s =
    match Agg_workload.Profile.by_name s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown profile %S (expected one of: %s)" s
                (String.concat ", "
                   (List.map
                      (fun p -> p.Agg_workload.Profile.name)
                      (Agg_workload.Profile.all @ Agg_workload.Profile.extras)))))
  in
  let print ppf p = Format.pp_print_string ppf p.Agg_workload.Profile.name in
  Arg.conv (parse, print)

let profile_arg =
  Arg.(
    value
    & opt profile_conv Agg_workload.Profile.server
    & info [ "p"; "profile" ] ~docv:"PROFILE"
        ~doc:"Workload profile (workstation|users|write|server|scientific|streaming).")

let events_arg =
  Arg.(value & opt int 60_000 & info [ "n"; "events" ] ~docv:"N" ~doc:"Number of trace events.")

let seed_arg = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use a small event count for a fast run.")

(* Counts that make no sense at zero or below are rejected at parse time
   with a one-line error instead of silently misbehaving downstream. *)
let positive_int what =
  let parse s =
    match int_of_string_opt s with
    | Some v when v > 0 -> Ok v
    | Some v -> Error (`Msg (Printf.sprintf "%s must be positive (got %d)" what v))
    | None -> Error (`Msg (Printf.sprintf "%s must be a positive integer (got %S)" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value
    & opt (some (positive_int "--jobs")) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for sweep evaluation (results are identical for any N; 1 = \
           sequential). Defaults to the number of cores.")

let settings_term =
  let make events seed quick jobs =
    let jobs = match jobs with Some j -> j | None -> Agg_util.Pool.default_jobs () in
    if quick then { Agg_sim.Experiment.quick_settings with seed; jobs }
    else { Agg_sim.Experiment.events; seed; warmup = 0; jobs }
  in
  Term.(const make $ events_arg $ seed_arg $ quick_arg $ jobs_arg)

let exit_ok = Cmd.Exit.ok

(* --- generate ------------------------------------------------------ *)

let generate_cmd =
  let output =
    Arg.(
      value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  let run profile events seed output =
    let trace = Agg_workload.Generator.generate ~seed ~events profile in
    (match output with
    | Some path ->
        Agg_trace.Codec.write_file path trace;
        Printf.printf "wrote %d events to %s\n" (Agg_trace.Trace.length trace) path
    | None -> Agg_trace.Codec.write_channel stdout trace);
    exit_ok
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic trace in aggtrace text format.")
    Term.(const run $ profile_arg $ events_arg $ seed_arg $ output)

(* --- stats ---------------------------------------------------------- *)

let input_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Read a trace file instead of generating one.")

let load_trace input profile events seed =
  match input with
  | Some path -> (
      try Agg_trace.Codec.read_file path
      with Agg_trace.Codec.Parse_error { line; message } ->
        Printf.eprintf "aggsim: %s: line %d: %s\n" path line message;
        exit Cmd.Exit.cli_error)
  | None -> Agg_workload.Generator.generate ~seed ~events profile

let stats_cmd =
  let run input profile events seed =
    let trace = load_trace input profile events seed in
    let stats = Agg_trace.Trace_stats.compute trace in
    Format.printf "%a@." Agg_trace.Trace_stats.pp stats;
    Format.printf "successor entropy (L=1): %.3f bits@." (Agg_entropy.Entropy.of_trace trace);
    exit_ok
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print summary statistics of a trace.")
    Term.(const run $ input_arg $ profile_arg $ events_arg $ seed_arg)

(* --- figures -------------------------------------------------------- *)

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR" ~doc:"Also write the figure's data series as CSV files under $(docv).")

let plot_arg =
  Arg.(value & flag & info [ "plot" ] ~doc:"Also draw terminal line plots of each panel.")

let figure_cmd name doc make =
  let run settings csv plot =
    let fig = make settings in
    Agg_sim.Experiment.print_figure fig;
    if plot then List.iter Agg_sim.Plot.print fig.Agg_sim.Experiment.panels;
    (match csv with
    | Some dir ->
        let written = Agg_sim.Export.write_figure ~dir fig in
        List.iter (Printf.printf "wrote %s\n") written
    | None -> ());
    exit_ok
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ settings_term $ csv_arg $ plot_arg)

let fig3_cmd =
  figure_cmd "fig3" "Client demand fetches vs cache capacity (paper Fig. 3)." (fun settings ->
      Agg_sim.Fig3.run (Agg_sim.Experiment.Runner.create ~settings ()))

let fig4_cmd =
  figure_cmd "fig4" "Server hit rate under intervening caches (paper Fig. 4)." (fun settings ->
      Agg_sim.Fig4.run (Agg_sim.Experiment.Runner.create ~settings ()))

let fig5_cmd =
  figure_cmd "fig5" "Successor-list replacement quality (paper Fig. 5)." (fun settings ->
      Agg_sim.Fig5.run (Agg_sim.Experiment.Runner.create ~settings ()))

let fig7_cmd =
  figure_cmd "fig7" "Successor entropy vs sequence length (paper Fig. 7)." (fun settings ->
      Agg_sim.Fig7.run (Agg_sim.Experiment.Runner.create ~settings ()))

let fig8_cmd =
  figure_cmd "fig8" "Successor entropy of filtered streams (paper Fig. 8)." (fun settings ->
      Agg_sim.Fig8.run (Agg_sim.Experiment.Runner.create ~settings ()))

(* --- weighted ------------------------------------------------------- *)

let weighted_cmd =
  let sweep_arg =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Run the full capacity sweep (the weighted figure) instead of the single-capacity \
             verdict table.")
  in
  let run settings csv plot sweep =
    let runner = Agg_sim.Experiment.Runner.create ~settings () in
    if sweep then begin
      let fig = Agg_sim.Weighted.run runner in
      Agg_sim.Experiment.print_figure fig;
      if plot then List.iter Agg_sim.Plot.print fig.Agg_sim.Experiment.panels;
      match csv with
      | Some dir ->
          let written = Agg_sim.Export.write_figure ~dir fig in
          List.iter (Printf.printf "wrote %s\n") written;
          exit_ok
      | None -> exit_ok
    end
    else begin
      let capacity = Agg_sim.Weighted.default_verdict_capacity in
      let cells = Agg_sim.Weighted.sweep ~capacities:[ capacity ] runner in
      List.iter
        (fun profile ->
          let name = profile.Agg_workload.Profile.name in
          let table =
            Agg_util.Table.create
              ~title:(Printf.sprintf "%s at capacity %d (size units)" name capacity)
              ~columns:[ "policy"; "byte hit rate"; "cost saved"; "total retrieval cost" ]
          in
          List.iter
            (fun (c : Agg_sim.Weighted.cell) ->
              if c.Agg_sim.Weighted.profile = name then
                Agg_util.Table.add_row table
                  [
                    c.Agg_sim.Weighted.policy;
                    Printf.sprintf "%.4f" c.Agg_sim.Weighted.byte_hit_rate;
                    Printf.sprintf "%.4f" c.Agg_sim.Weighted.cost_saved_rate;
                    string_of_int c.Agg_sim.Weighted.total_cost;
                  ])
            cells;
          Agg_util.Table.print table)
        Agg_workload.Profile.sized;
      List.iter
        (fun (v : Agg_sim.Weighted.verdict) ->
          Printf.printf "%s: g5 total cost %d vs landlord %d — g5 %s\n"
            v.Agg_sim.Weighted.v_profile v.Agg_sim.Weighted.g5_cost
            v.Agg_sim.Weighted.landlord_cost
            (if v.Agg_sim.Weighted.g5_wins then "wins" else "loses"))
        (Agg_sim.Weighted.verdicts ~capacity runner);
      exit_ok
    end
  in
  Cmd.v
    (Cmd.info "weighted"
       ~doc:"Size/cost-aware policies (Landlord, bundle, weighted LRU, g5) on the sized profiles.")
    Term.(const run $ settings_term $ csv_arg $ plot_arg $ sweep_arg)

(* --- summary / checks / ablations ----------------------------------- *)

let summary_cmd =
  let run settings =
    Agg_util.Table.print (Agg_sim.Summary.client_table (Agg_sim.Summary.client_rows ~settings ()));
    Agg_util.Table.print (Agg_sim.Summary.server_table (Agg_sim.Summary.server_rows ~settings ()));
    exit_ok
  in
  Cmd.v
    (Cmd.info "summary" ~doc:"Headline numbers (abstract / conclusions).")
    Term.(const run $ settings_term)

let checks_cmd =
  let run settings =
    let checks = Agg_sim.Report.run_all ~settings () in
    Agg_util.Table.print (Agg_sim.Report.table checks);
    if Agg_sim.Report.all_pass checks then exit_ok else 1
  in
  Cmd.v
    (Cmd.info "checks" ~doc:"Run all paper-vs-measured qualitative checks; non-zero exit on failure.")
    Term.(const run $ settings_term)

let differential_cmd =
  let ops_arg =
    Arg.(
      value
      & opt int 10_000
      & info [ "ops" ] ~docv:"N"
          ~doc:"Generated operations per policy for the op-sequence fuzz stage.")
  in
  let run settings ops =
    let seed = settings.Agg_sim.Experiment.seed in
    let events = settings.Agg_sim.Experiment.events in
    let checks =
      Agg_oracle.Diff_engine.fuzz_all ~seed ~ops
      @ [ Agg_oracle.Diff_engine.mutant_check ~seed ~ops ]
      @ Agg_oracle.Diff_engine.lru_equivalence_checks ~seed ~events
      @ Agg_oracle.Diff_engine.successor_checks ~seed ~events
      @ Agg_oracle.Diff_engine.trace_checks ~seed ~events
    in
    (* Full-report invariance under --jobs: the sweep engine must produce
       bit-identical results whether cells run sequentially or on a domain
       pool (CLAUDE.md reproducibility contract). *)
    let jobs_check =
      let quick = { Agg_sim.Experiment.quick_settings with seed } in
      let render jobs =
        Agg_sim.Report.run_all ~settings:{ quick with Agg_sim.Experiment.jobs } ()
        |> List.map (fun (c : Agg_sim.Report.check) ->
               Printf.sprintf "%s|%s|%b" c.Agg_sim.Report.id c.Agg_sim.Report.measured
                 c.Agg_sim.Report.pass)
      in
      let sequential = render 1 and pooled = render 2 in
      if sequential = pooled then
        {
          Agg_oracle.Diff_engine.name = "inv.jobs-invariance";
          cases = List.length sequential;
          pass = true;
          detail = "";
        }
      else
        {
          Agg_oracle.Diff_engine.name = "inv.jobs-invariance";
          cases = List.length sequential;
          pass = false;
          detail = "report checks differ between --jobs 1 and --jobs 2";
        }
    in
    let checks = checks @ [ jobs_check ] in
    let table = Agg_util.Table.create ~title:"differential checks" ~columns:[ "check"; "cases"; "status"; "detail" ] in
    List.iter
      (fun (c : Agg_oracle.Diff_engine.check) ->
        Agg_util.Table.add_row table
          [
            c.Agg_oracle.Diff_engine.name;
            string_of_int c.Agg_oracle.Diff_engine.cases;
            (if c.Agg_oracle.Diff_engine.pass then "ok" else "FAIL");
            c.Agg_oracle.Diff_engine.detail;
          ])
      checks;
    Agg_util.Table.print table;
    let failed = List.filter (fun c -> not c.Agg_oracle.Diff_engine.pass) checks in
    Printf.printf "%d checks, %d failed\n" (List.length checks) (List.length failed);
    if failed = [] then exit_ok else 1
  in
  Cmd.v
    (Cmd.info "differential"
       ~doc:
         "Drive every optimized policy, successor scheme and system configuration in lockstep \
          against the lib/oracle reference models; non-zero exit on any divergence (or if the \
          seeded mutant goes undetected).")
    Term.(const run $ settings_term $ ops_arg)

let ablations_cmd =
  let run settings =
    let print_panel panel =
      Agg_util.Table.print (Agg_sim.Experiment.panel_table ~figure_id:"ablation" panel)
    in
    print_panel (Agg_sim.Ablations.member_position ~settings Agg_workload.Profile.server);
    print_panel (Agg_sim.Ablations.metadata_policy ~settings Agg_workload.Profile.server);
    print_panel (Agg_sim.Ablations.successor_capacity ~settings Agg_workload.Profile.server);
    print_panel (Agg_sim.Ablations.baselines ~settings Agg_workload.Profile.server);
    print_panel (Agg_sim.Ablations.cooperative ~settings Agg_workload.Profile.server);
    print_panel (Agg_sim.Ablations.second_level_policies ~settings Agg_workload.Profile.server);
    Agg_util.Table.print (Agg_sim.Ablations.predictor_accuracy ~settings ());
    exit_ok
  in
  Cmd.v (Cmd.info "ablations" ~doc:"Run the design-choice ablations (A1-A5).") Term.(const run $ settings_term)

let latency_cmd =
  let run settings profile =
    let trace =
      Agg_workload.Generator.generate ~seed:settings.Agg_sim.Experiment.seed
        ~events:settings.Agg_sim.Experiment.events profile
    in
    List.iter
      (fun (cost_name, cost) ->
        Printf.printf "-- %s costs --\n" cost_name;
        List.iter
          (fun deployment ->
            let config =
              Agg_system.Path.with_deployment deployment
                { Agg_system.Path.default_config with cost }
            in
            Format.printf "%-11s %a@."
              (Agg_system.Path.deployment_name deployment)
              Agg_system.Path.pp_result
              (Agg_system.Path.run config trace))
          [ `Baseline; `Aggregating_client; `Aggregating_both ])
      [ ("LAN", Agg_system.Cost_model.lan); ("WAN", Agg_system.Cost_model.wan) ];
    exit_ok
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"End-to-end latency of the Fig. 2 path, per deployment.")
    Term.(const run $ settings_term $ profile_arg)

let fleet_cmd =
  let clients_arg =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc:"Number of client machines.")
  in
  let run settings profile clients =
    let trace =
      Agg_workload.Generator.generate ~seed:settings.Agg_sim.Experiment.seed
        ~events:settings.Agg_sim.Experiment.events profile
    in
    List.iter
      (fun (name, client_scheme, server_scheme) ->
        let config =
          { Agg_system.Fleet.default_config with clients; client_scheme; server_scheme }
        in
        Format.printf "%-12s %a@." name Agg_system.Fleet.pp_result
          (Agg_system.Fleet.run config trace))
      [
        ("plain", Agg_system.Scheme.plain_lru, Agg_system.Scheme.plain_lru);
        ( "aggregating",
          Agg_system.Scheme.Aggregating Agg_core.Config.default,
          Agg_system.Scheme.Aggregating Agg_core.Config.default );
      ];
    exit_ok
  in
  Cmd.v
    (Cmd.info "fleet" ~doc:"Many clients sharing one server, with write invalidation.")
    Term.(const run $ settings_term $ profile_arg $ clients_arg)

let faults_cmd =
  let float_opt names doc =
    Arg.(value & opt (some float) None & info names ~docv:"P" ~doc)
  in
  let loss_arg = float_opt [ "loss" ] "Message loss probability per fetch attempt (default 0.1)." in
  let outage_arg = float_opt [ "outage-rate" ] "P(an epoch opens with a server outage)." in
  let slow_arg = float_opt [ "slow-rate" ] "P(an attempt rides a degraded link)." in
  let crash_arg = float_opt [ "crash-rate" ] "Per-access client crash probability." in
  let fault_seed_arg =
    Arg.(
      value
      & opt int Agg_faults.Plan.default.Agg_faults.Plan.seed
      & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Fault-plan seed (independent of the workload seed).")
  in
  let sweep_arg =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:"Print the resilience sweep (hit rate and latency vs loss rate, lru vs g5) instead.")
  in
  let run settings profile loss outage slow crash fault_seed sweep =
    if sweep then begin
      let runner = Agg_sim.Experiment.Runner.create ~settings () in
      Agg_sim.Experiment.print_figure (Agg_sim.Resilience.run ~profile runner);
      exit_ok
    end
    else begin
      let d = Agg_faults.Plan.default in
      let faults =
        {
          d with
          Agg_faults.Plan.seed = fault_seed;
          loss_rate = Option.value ~default:d.Agg_faults.Plan.loss_rate loss;
          outage_rate = Option.value ~default:d.Agg_faults.Plan.outage_rate outage;
          slow_rate = Option.value ~default:d.Agg_faults.Plan.slow_rate slow;
          crash_rate = Option.value ~default:d.Agg_faults.Plan.crash_rate crash;
        }
      in
      match Agg_faults.Plan.validate faults with
      | exception Invalid_argument msg ->
          Printf.eprintf "aggsim: %s\n" msg;
          Cmd.Exit.cli_error
      | () ->
      let trace =
        Agg_workload.Generator.generate ~seed:settings.Agg_sim.Experiment.seed
          ~events:settings.Agg_sim.Experiment.events profile
      in
      Format.printf "plan: %a@.resilience: %a@." Agg_faults.Plan.pp_config faults
        Agg_faults.Resilience.pp Agg_faults.Resilience.default;
      List.iter
        (fun (name, client) ->
          let config = { Agg_system.Path.default_config with Agg_system.Path.client; faults } in
          let r = Agg_system.Path.run config trace in
          Format.printf "%-4s %a@.     faults: %a@." name Agg_system.Path.pp_result r
            Agg_faults.Counters.pp r.Agg_system.Path.faults)
        [
          ("lru", Agg_system.Scheme.plain_lru);
          ("g5", Agg_system.Scheme.aggregating ());
        ];
      exit_ok
    end
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Fault injection on the Fig. 2 path: run lru vs g5 clients under a deterministic fault \
          plan (message loss, outages, slow links, crashes), or --sweep the loss rate.")
    Term.(
      const run $ settings_term $ profile_arg $ loss_arg $ outage_arg $ slow_arg $ crash_arg
      $ fault_seed_arg $ sweep_arg)

let cluster_cmd =
  let nodes_arg =
    Arg.(
      value
      & opt (positive_int "--nodes") 5
      & info [ "nodes" ] ~docv:"N" ~doc:"Server nodes on the ring (default 5).")
  in
  let replicas_arg =
    Arg.(
      value
      & opt (positive_int "--replicas") 3
      & info [ "k"; "replicas" ] ~docv:"K"
          ~doc:"Replication-group size: each file is owned by K ring successors (default 3).")
  in
  let placement_conv =
    let parse s =
      match Agg_cluster.Cluster.placement_of_string s with
      | Some p -> Ok p
      | None -> Error (`Msg (Printf.sprintf "unknown placement %S (expected owner, group or client)" s))
    in
    Arg.conv
      (parse, fun ppf p -> Format.pp_print_string ppf (Agg_cluster.Cluster.placement_name p))
  in
  let placement_arg =
    Arg.(
      value
      & opt placement_conv Agg_cluster.Cluster.Replicated_with_group
      & info [ "placement" ] ~docv:"WHERE"
          ~doc:
            "Where successor metadata lives: $(b,owner) (primary node only), $(b,group) \
             (replicated with the group) or $(b,client) (client-side trackers).")
  in
  let node_loss_arg =
    Arg.(
      value
      & opt float 0.0
      & info [ "node-loss" ] ~docv:"P"
          ~doc:"Per-node outage probability per 1000-access epoch (default 0: healthy).")
  in
  let ring_seed_arg =
    Arg.(
      value
      & opt int Agg_cluster.Cluster.default_config.Agg_cluster.Cluster.ring_seed
      & info [ "ring-seed" ] ~docv:"SEED" ~doc:"Consistent-hash ring seed.")
  in
  let sweep_arg =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Print the cluster sweep (hit rate and latency vs node loss, across scheme x K x \
             placement) instead.")
  in
  let run settings profile nodes replicas placement node_loss ring_seed sweep =
    if sweep then begin
      let runner = Agg_sim.Experiment.Runner.create ~settings () in
      Agg_sim.Experiment.print_figure (Agg_sim.Cluster.run ~profile runner);
      exit_ok
    end
    else begin
      let faults = Agg_sim.Cluster.node_kill_plan node_loss in
      match Agg_faults.Plan.validate faults with
      | exception Invalid_argument msg ->
          Printf.eprintf "aggsim: %s\n" msg;
          Cmd.Exit.cli_error
      | () ->
          let trace =
            Agg_workload.Generator.generate ~seed:settings.Agg_sim.Experiment.seed
              ~events:settings.Agg_sim.Experiment.events profile
          in
          Printf.printf "cluster: %d nodes, k=%d, metadata=%s, node-loss %g\n" nodes replicas
            (Agg_cluster.Cluster.placement_name placement)
            node_loss;
          List.iter
            (fun (name, scheme) ->
              let config =
                {
                  Agg_cluster.Cluster.default_config with
                  Agg_cluster.Cluster.nodes;
                  replicas;
                  ring_seed;
                  metadata = placement;
                  client_scheme = scheme;
                  node_scheme = scheme;
                  faults;
                }
              in
              let r = Agg_cluster.Cluster.run config trace in
              Format.printf "%-4s %a@.     faults: %a@." name Agg_cluster.Cluster.pp_result r
                Agg_faults.Counters.pp r.Agg_cluster.Cluster.faults)
            [
              ("lru", Agg_system.Scheme.plain_lru);
              ("g5", Agg_system.Scheme.aggregating ());
            ];
          exit_ok
    end
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Sharded multi-node cluster: route the fleet workload through a consistent-hash ring of \
          replication groups, optionally killing nodes ($(b,--node-loss)), or $(b,--sweep) node \
          count x K x metadata placement.")
    Term.(
      const run $ settings_term $ profile_arg $ nodes_arg $ replicas_arg $ placement_arg
      $ node_loss_arg $ ring_seed_arg $ sweep_arg)

(* --- entropy / groups ----------------------------------------------- *)

let entropy_cmd =
  let length_arg =
    Arg.(value & opt int 1 & info [ "l"; "length" ] ~docv:"L" ~doc:"Successor sequence length.")
  in
  let filter_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "filter" ] ~docv:"CAP" ~doc:"Filter through an LRU cache of this capacity first.")
  in
  let run input profile events seed length filter =
    let trace = load_trace input profile events seed in
    let trace =
      match filter with
      | Some capacity -> Agg_trace.Filter.miss_stream ~capacity trace
      | None -> trace
    in
    Printf.printf "%.4f\n" (Agg_entropy.Entropy.of_trace ~length trace);
    exit_ok
  in
  Cmd.v
    (Cmd.info "entropy" ~doc:"Successor entropy of a trace (optionally filtered).")
    Term.(const run $ input_arg $ profile_arg $ events_arg $ seed_arg $ length_arg $ filter_arg)

let groups_cmd =
  let size_arg = Arg.(value & opt int 5 & info [ "g"; "size" ] ~docv:"G" ~doc:"Group size.") in
  let top_arg =
    Arg.(
      value & opt (positive_int "--top") 10
      & info [ "top" ] ~docv:"K" ~doc:"Show the K largest-anchor groups.")
  in
  let run input profile events seed size top =
    let trace = load_trace input profile events seed in
    let graph = Agg_successor.Graph.of_trace trace in
    let cover = Agg_successor.Grouping.cover graph ~size in
    let stats = Agg_successor.Grouping.cover_stats cover in
    Printf.printf "groups=%d covered=%d mean_size=%.2f overlapping=%d max_memberships=%d\n"
      stats.groups stats.covered_nodes stats.mean_group_size stats.overlapping_nodes
      stats.max_memberships;
    List.iteri
      (fun i g -> if i < top then Format.printf "%a@." Agg_successor.Grouping.pp_group g)
      cover;
    exit_ok
  in
  Cmd.v
    (Cmd.info "groups" ~doc:"Build and show the covering group set of a trace.")
    Term.(const run $ input_arg $ profile_arg $ events_arg $ seed_arg $ size_arg $ top_arg)

let convert_cmd =
  let format_conv =
    let parse s =
      match Agg_trace.Import.format_of_string s with
      | Some f -> Ok f
      | None -> Error (`Msg (Printf.sprintf "unknown format %S (expected paths|strace)" s))
    in
    let print ppf f =
      Format.pp_print_string ppf
        (match f with Agg_trace.Import.Paths -> "paths" | Agg_trace.Import.Strace -> "strace")
    in
    Arg.conv (parse, print)
  in
  let format_arg =
    Arg.(
      value
      & opt format_conv Agg_trace.Import.Paths
      & info [ "f"; "format" ] ~docv:"FORMAT" ~doc:"Input format: paths (one per line) or strace.")
  in
  let input_pos = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT") in
  let output =
    Arg.(
      value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  let names =
    Arg.(
      value
      & opt (some string) None
      & info [ "names" ] ~docv:"FILE" ~doc:"Also write the id-to-path table here.")
  in
  let run format input output names =
    let trace, namespace = Agg_trace.Import.of_file format input in
    (match output with
    | Some path ->
        Agg_trace.Codec.write_file path trace;
        Printf.printf "wrote %d events over %d files to %s\n" (Agg_trace.Trace.length trace)
          (Agg_trace.File_id.Namespace.count namespace)
          path
    | None -> Agg_trace.Codec.write_channel stdout trace);
    (match names with
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            Agg_trace.File_id.Namespace.iter namespace (fun name id ->
                Printf.fprintf oc "%d %s\n" id name))
    | None -> ());
    exit_ok
  in
  Cmd.v
    (Cmd.info "convert" ~doc:"Convert an external trace (paths or strace output) to aggtrace format.")
    Term.(const run $ format_arg $ input_pos $ output $ names)

let profile_report_cmd =
  let top_arg =
    Arg.(
      value & opt (positive_int "--top") 10
      & info [ "top" ] ~docv:"K" ~doc:"Files to show at each extreme.")
  in
  let run input profile events seed top =
    let trace = load_trace input profile events seed in
    let files = Agg_trace.Trace.files trace in
    let rows = Agg_entropy.Entropy.per_file files in
    let by_entropy = List.sort (fun (_, _, a) (_, _, b) -> compare a b) rows in
    let table ~title rows =
      let t =
        Agg_util.Table.create ~title ~columns:[ "file"; "occurrences"; "successor entropy (bits)" ]
      in
      List.iter
        (fun (file, occ, h) ->
          Agg_util.Table.add_row t
            [ Printf.sprintf "f%d" file; string_of_int occ; Printf.sprintf "%.3f" h ])
        rows;
      Agg_util.Table.print t
    in
    let firsts = List.filteri (fun i _ -> i < top) by_entropy in
    let lasts = List.filteri (fun i _ -> i < top) (List.rev by_entropy) in
    Printf.printf "%d repeated files; overall successor entropy %.3f bits\n" (List.length rows)
      (Agg_entropy.Entropy.of_files files);
    table ~title:"most predictable files" firsts;
    table ~title:"least predictable files" lasts;
    exit_ok
  in
  Cmd.v
    (Cmd.info "predictability" ~doc:"Per-file predictability report (the visualization-tool view).")
    Term.(const run $ input_arg $ profile_arg $ events_arg $ seed_arg $ top_arg)

(* --- trace (event dump) ---------------------------------------------- *)

(* Satisfies the CLI contract that a bad output path is a clean error
   message and exit code, never an escaping [Sys_error]. *)
let open_out_result path =
  match open_out path with oc -> Ok oc | exception Sys_error msg -> Error msg

(* Sampling rates live in (0, 1]: rate 0 would keep nothing and rates
   above 1 are meaningless, so both are argument errors, not runtime
   surprises. *)
let sample_rate_conv what =
  let parse s =
    match float_of_string_opt s with
    | Some r when r > 0.0 && r <= 1.0 -> Ok r
    | _ -> Error (`Msg (Printf.sprintf "invalid %s %S (expected a number in (0, 1])" what s))
  in
  Arg.conv (parse, fun ppf r -> Format.fprintf ppf "%g" r)

let trace_cmd =
  let out_arg =
    Arg.(
      value
      & opt string "events.jsonl"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"JSONL output path.")
  in
  let capacity_arg =
    Arg.(value & opt int 300 & info [ "capacity" ] ~docv:"N" ~doc:"Client cache capacity (files).")
  in
  let group_arg =
    Arg.(value & opt int 5 & info [ "g"; "group-size" ] ~docv:"G" ~doc:"Retrieval group size.")
  in
  let sample_arg =
    Arg.(
      value
      & opt (sample_rate_conv "sample rate") 1.0
      & info [ "sample" ] ~docv:"RATE"
          ~doc:
            "Keep each event with probability $(docv) in (0, 1], decided deterministically from \
             the run seed and the event's offered index (default 1: keep every event).")
  in
  let run input profile events seed out capacity group_size sample =
    let trace = load_trace input profile events seed in
    match open_out_result out with
    | Error msg ->
        Printf.eprintf "aggsim: cannot write %s: %s\n" out msg;
        1
    | Ok oc ->
        let config = Agg_core.Config.with_group_size group_size Agg_core.Config.default in
        let sink =
          if sample < 1.0 then Agg_obs.Sink.sampled ~seed ~rate:sample (Agg_obs.Sink.jsonl oc)
          else Agg_obs.Sink.jsonl oc
        in
        let cache = Agg_core.Client_cache.create ~config ~obs:sink ~capacity () in
        let m = Agg_core.Client_cache.run cache trace in
        let written = Agg_obs.Sink.emitted sink in
        Agg_obs.Sink.flush sink;
        close_out oc;
        (* Validate what actually hit the disk: parse every line back,
           check the seq numbering, and reconcile the replayed digest
           against the run's aggregate metrics. *)
        let digest = Agg_obs.Digest.create () in
        let parse_errors = ref 0 in
        let lines = ref 0 in
        let ic = open_in out in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            try
              while true do
                let line = input_line ic in
                (match Agg_obs.Event.of_json line with
                | Ok (seq, event) ->
                    if seq <> !lines then begin
                      Printf.eprintf "aggsim: %s:%d: seq %d, expected %d\n" out (!lines + 1) seq
                        !lines;
                      incr parse_errors
                    end;
                    Agg_obs.Digest.observe digest event
                | Error e ->
                    Printf.eprintf "aggsim: %s:%d: %s\n" out (!lines + 1) e;
                    incr parse_errors);
                incr lines
              done
            with End_of_file -> ());
        Printf.printf "wrote %d events to %s\n" written out;
        Format.printf "%a@." Agg_obs.Digest.pp digest;
        if !parse_errors > 0 || !lines <> written then begin
          Printf.eprintf "aggsim: JSONL validation failed: %d parse errors, %d/%d lines readable\n"
            !parse_errors !lines written;
          1
        end
        else if sample < 1.0 then begin
          (* A sampled stream's digest is a subset of the run's counters
             by construction, so exact reconciliation does not apply. *)
          Printf.printf "sampled dump (rate %g): kept %d of %d offered events; reconciliation skipped\n"
            sample written (Agg_obs.Sink.offered sink);
          exit_ok
        end
        else begin
          match Agg_core.Metrics.reconcile_client digest m with
          | Ok () ->
              Printf.printf "reconciliation OK: %d accesses = %d hits + %d demand fetches\n"
                m.Agg_core.Metrics.accesses m.Agg_core.Metrics.hits
                m.Agg_core.Metrics.demand_fetches;
              exit_ok
          | Error msg ->
              Printf.eprintf "aggsim: reconciliation FAILED: %s\n" msg;
              1
        end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay one client-cache run with the JSONL event sink: dump every decision event (or a \
          deterministic $(b,--sample) of them), then re-parse the file; full dumps also reconcile \
          the event counts against the run's metrics (non-zero exit on any mismatch).")
    Term.(
      const run $ input_arg $ profile_arg $ events_arg $ seed_arg $ out_arg $ capacity_arg
      $ group_arg $ sample_arg)

(* --- profile (sweep timing + histograms) ------------------------------ *)

let profile_cmd =
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Also write the per-cell spans as Chrome trace_event JSON to $(docv) (open in \
             chrome://tracing or Perfetto).")
  in
  let top_arg =
    Arg.(
      value
      & opt (positive_int "--top") 10
      & info [ "top" ] ~docv:"N" ~doc:"Show the $(docv) slowest sweep cells (default 10).")
  in
  let pp_hist name h =
    let q q' = match Agg_obs.Histogram.quantile h q' with Some v -> string_of_int v | None -> "-" in
    Printf.printf "  %-22s count=%-7d mean=%-8.1f p50=%-6s p90=%-6s p99=%-6s max=%s\n" name
      (Agg_obs.Histogram.count h) (Agg_obs.Histogram.mean h) (q 0.5) (q 0.9) (q 0.99)
      (match Agg_obs.Histogram.max_value h with Some v -> string_of_int v | None -> "-")
  in
  let run settings profile trace_out top =
    let recorder = Agg_obs.Span.recorder () in
    let runner =
      Agg_sim.Experiment.Runner.create
        ~scope:(Agg_obs.Scope.create ~profiler:recorder ())
        ~settings ()
    in
    ignore (Agg_sim.Fig3.run runner);
    ignore (Agg_sim.Fig4.run runner);
    ignore (Agg_sim.Fig5.run runner);
    let spans = Agg_obs.Span.spans recorder in
    let figure_of (s : Agg_obs.Span.span) =
      match String.index_opt s.Agg_obs.Span.name '/' with
      | Some i -> String.sub s.Agg_obs.Span.name 0 i
      | None -> s.Agg_obs.Span.name
    in
    let totals = Hashtbl.create 8 in
    List.iter
      (fun s ->
        let key = figure_of s in
        let sofar = Option.value ~default:(0.0, 0) (Hashtbl.find_opt totals key) in
        Hashtbl.replace totals key (fst sofar +. Agg_obs.Span.seconds_of s, snd sofar + 1))
      spans;
    let table =
      Agg_util.Table.create ~title:"sweep wall-clock by figure"
        ~columns:[ "figure"; "cells"; "cpu seconds" ]
    in
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals []
    |> List.sort compare
    |> List.iter (fun (k, (seconds, cells)) ->
           Agg_util.Table.add_row table [ k; string_of_int cells; Printf.sprintf "%.3f" seconds ]);
    Agg_util.Table.print table;
    let slowest =
      List.sort
        (fun a b -> compare (Agg_obs.Span.seconds_of b) (Agg_obs.Span.seconds_of a))
        spans
    in
    (* Every fig3/4/5 cell replays the full trace, so events/s per cell
       is the trace length over the cell's wall-clock. *)
    let cell_events = float_of_int settings.Agg_sim.Experiment.events in
    let table =
      Agg_util.Table.create
        ~title:(Printf.sprintf "slowest %d sweep cells" top)
        ~columns:[ "cell"; "ms"; "events/s"; "domain" ]
    in
    List.iteri
      (fun i (s : Agg_obs.Span.span) ->
        if i < top then begin
          let seconds = Agg_obs.Span.seconds_of s in
          Agg_util.Table.add_row table
            [
              s.Agg_obs.Span.name;
              Printf.sprintf "%.2f" (1000.0 *. seconds);
              (if seconds > 0.0 then Printf.sprintf "%.0fk" (cell_events /. seconds /. 1e3)
               else "-");
              string_of_int s.Agg_obs.Span.tid;
            ]
        end)
      slowest;
    Agg_util.Table.print table;
    (* One fully instrumented run for the headline histograms. *)
    let sink = Agg_obs.Sink.memory () in
    let cache = Agg_core.Client_cache.create ~obs:sink ~capacity:300 () in
    let m = Agg_core.Client_cache.run cache (Agg_sim.Trace_store.get ~settings profile) in
    let digest = Agg_obs.Digest.of_events (Agg_obs.Sink.events sink) in
    Printf.printf "\ninstrumented run: %s workload, g5, capacity 300\n"
      profile.Agg_workload.Profile.name;
    Format.printf "  %a@." Agg_obs.Digest.pp digest;
    pp_hist "speculative lifetime" (Agg_obs.Digest.lifetime digest);
    pp_hist "hit depth" (Agg_obs.Digest.hit_depth digest);
    pp_hist "group size" (Agg_obs.Digest.group_size digest);
    let reconcile_exit =
      match Agg_core.Metrics.reconcile_client digest m with
      | Ok () -> exit_ok
      | Error msg ->
          Printf.eprintf "aggsim: reconciliation FAILED: %s\n" msg;
          1
    in
    match trace_out with
    | None -> reconcile_exit
    | Some path -> (
        match open_out_result path with
        | Error msg ->
            Printf.eprintf "aggsim: cannot write %s: %s\n" path msg;
            1
        | Ok oc ->
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> Agg_obs.Span.write_chrome oc recorder);
            Printf.printf "wrote %d spans to %s (Chrome trace_event format)\n"
              (Agg_obs.Span.count recorder) path;
            reconcile_exit)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile the fig3/fig4/fig5 sweeps: wall-clock per sweep cell (optionally exported as a \
          Chrome trace via $(b,--trace-out)) plus the event histograms — speculative-resident \
          lifetime, stack distance at hits, group size — of one instrumented run.")
    Term.(const run $ settings_term $ profile_arg $ trace_out_arg $ top_arg)

(* --- scenario ------------------------------------------------------- *)

let scenario_cmd =
  let module Scenario = Agg_scenario.Scenario in
  let module Exec = Agg_scenario.Exec in
  let module Fuzz = Agg_scenario.Fuzz in
  let file_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "f"; "file" ] ~docv:"FILE" ~doc:"A scenario file; repeatable.")
  in
  let dir_arg =
    Arg.(
      value
      & opt string "scenarios"
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Corpus directory scanned for *.scn files when no $(b,--file) is given.")
  in
  let events_cap_arg =
    Arg.(
      value
      & opt (some (positive_int "--events-cap")) None
      & info [ "events-cap" ] ~docv:"N"
          ~doc:"Truncate every workload to at most N events (fast CI runs).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the results as a JSON document.")
  in
  let jobs_of jobs = match jobs with Some j -> j | None -> Agg_util.Pool.default_jobs () in
  (* --file list, or the corpus directory when none was given *)
  let selected files dir =
    match files with [] -> Agg_sim.Scenarios.corpus_files dir | files -> files
  in
  let validate_cmd =
    let run files dir =
      match selected files dir with
      | exception Sys_error msg ->
          Printf.eprintf "aggsim: %s\n" msg;
          Cmd.Exit.cli_error
      | files ->
          let bad = ref 0 in
          List.iter
            (fun file ->
              match Scenario.load_file file with
              | Error msg ->
                  incr bad;
                  Printf.printf "ERROR %s\n" msg
              | Ok s -> (
                  match Scenario.validate s with
                  | exception Invalid_argument msg ->
                      incr bad;
                      Printf.printf "ERROR %s: %s\n" file msg
                  | () -> Printf.printf "ok   %s (%s)\n" file s.Scenario.name))
            files;
          if !bad = 0 then exit_ok else Cmd.Exit.some_error
    in
    Cmd.v
      (Cmd.info "validate" ~doc:"Parse and validate scenario files without running them.")
      Term.(const run $ file_arg $ dir_arg)
  in
  let run_cmd =
    let run files dir jobs events_cap json =
      let jobs = jobs_of jobs in
      match selected files dir with
      | exception Sys_error msg ->
          Printf.eprintf "aggsim: %s\n" msg;
          Cmd.Exit.cli_error
      | files ->
          let entries =
            List.map
              (fun file ->
                let outcome =
                  match Scenario.load_file file with
                  | Error _ as e -> e
                  | Ok s -> Exec.run ~jobs ?events_cap s
                in
                { Agg_sim.Scenarios.file; outcome })
              files
          in
          List.iter
            (fun (e : Agg_sim.Scenarios.entry) ->
              match e.Agg_sim.Scenarios.outcome with
              | Error msg -> Printf.printf "ERROR %s: %s\n" e.Agg_sim.Scenarios.file msg
              | Ok o -> print_string (Exec.render_outcome o))
            entries;
          print_newline ();
          print_string (Agg_sim.Scenarios.render entries);
          (match json with
          | Some path ->
              Out_channel.with_open_text path (fun oc ->
                  output_string oc (Agg_sim.Scenarios.json_of_entries entries))
          | None -> ());
          if Agg_sim.Scenarios.all_ok entries then exit_ok else Cmd.Exit.some_error
    in
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Execute scenarios and check every invariant and expectation. Exits non-zero unless \
            every scenario meets its verdict (known-bad scenarios must fail).")
      Term.(const run $ file_arg $ dir_arg $ jobs_arg $ events_cap_arg $ json_arg)
  in
  let fuzz_cmd =
    let seed_arg =
      Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Fuzzing PRNG seed.")
    in
    let rounds_arg =
      Arg.(
        value
        & opt (positive_int "--rounds") 40
        & info [ "rounds" ] ~docv:"N" ~doc:"Perturbation rounds (default 40).")
    in
    let run files dir seed rounds jobs events_cap =
      let jobs = jobs_of jobs in
      match selected files dir with
      | exception Sys_error msg ->
          Printf.eprintf "aggsim: %s\n" msg;
          Cmd.Exit.cli_error
      | [] ->
          Printf.eprintf "aggsim: no scenario files to fuzz\n";
          Cmd.Exit.cli_error
      | file :: _ -> (
          match Scenario.load_file file with
          | Error msg ->
              Printf.eprintf "aggsim: %s\n" msg;
              Cmd.Exit.cli_error
          | Ok base -> (
              let report = Fuzz.run ~jobs ?events_cap ~seed ~rounds base in
              Printf.printf "fuzz %s: seed=%d rounds=%d tested=%d\n" file seed rounds
                report.Fuzz.tested;
              match report.Fuzz.failure with
              | None ->
                  Printf.printf "no violation found\n";
                  exit_ok
              | Some f ->
                  let size s = String.length (Scenario.to_string s) in
                  Printf.printf "violation in %s (%d bytes), shrunk to %d bytes:\n"
                    f.Fuzz.original.Scenario.name (size f.Fuzz.original) (size f.Fuzz.shrunk);
                  print_string (Scenario.to_string f.Fuzz.shrunk);
                  exit_ok))
    in
    Cmd.v
      (Cmd.info "fuzz"
         ~doc:
           "Perturb a scenario with seeded randomness until an invariant breaks, then greedily \
            shrink to a minimal failing scenario (deterministic for a fixed $(b,--seed)).")
      Term.(const run $ file_arg $ dir_arg $ seed_arg $ rounds_arg $ jobs_arg $ events_cap_arg)
  in
  Cmd.group
    (Cmd.info "scenario"
       ~doc:
         "Declarative experiments: validate, run or fuzz *.scn scenario files (workload, \
          topology, faults, policy matrix, invariants).")
    [ run_cmd; fuzz_cmd; validate_cmd ]

(* --- telemetry ------------------------------------------------------- *)

let telemetry_cmd =
  let nodes_arg =
    Arg.(
      value
      & opt (positive_int "--nodes") 5
      & info [ "nodes" ] ~docv:"N" ~doc:"Server nodes on the ring (default 5).")
  in
  let replicas_arg =
    Arg.(
      value
      & opt (positive_int "--replicas") 3
      & info [ "k"; "replicas" ] ~docv:"K" ~doc:"Replication-group size (default 3).")
  in
  let node_loss_arg =
    Arg.(
      value
      & opt float 0.0
      & info [ "node-loss" ] ~docv:"P"
          ~doc:"Per-node outage probability per 1000-access epoch (default 0: healthy).")
  in
  let window_arg =
    Arg.(
      value
      & opt (positive_int "--window") 1000
      & info [ "window" ] ~docv:"W" ~doc:"Accesses per telemetry window (default 1000).")
  in
  let sample_arg =
    Arg.(
      value
      & opt (sample_rate_conv "sample rate") 0.01
      & info [ "sample" ] ~docv:"RATE"
          ~doc:
            "Request-trace head-sampling rate in (0, 1]: whether request i is traced is a pure \
             function of (seed, i) (default 0.01).")
  in
  let format_arg =
    Arg.(
      value
      & opt (Arg.enum [ ("prom", `Prom); ("json", `Json) ]) `Prom
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Series output format: $(b,prom) (Prometheus text exposition) or $(b,json).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the series there instead of stdout.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Also write the sampled request span trees as Chrome trace_event JSON to $(docv) \
             (open in chrome://tracing or Perfetto).")
  in
  let run settings profile nodes replicas node_loss window sample format out trace_out =
    let faults = Agg_sim.Cluster.node_kill_plan node_loss in
    match Agg_faults.Plan.validate faults with
    | exception Invalid_argument msg ->
        Printf.eprintf "aggsim: %s\n" msg;
        Cmd.Exit.cli_error
    | () -> (
        let trace =
          Agg_workload.Generator.generate ~seed:settings.Agg_sim.Experiment.seed
            ~events:settings.Agg_sim.Experiment.events profile
        in
        (* Pass 1: the cluster, with the windowed series and the request
           tracer threaded through the config. *)
        let series = Agg_obs.Series.create ~window in
        let ctx = Agg_obs.Trace_ctx.create ~sample ~seed:settings.Agg_sim.Experiment.seed () in
        let config =
          {
            Agg_cluster.Cluster.default_config with
            Agg_cluster.Cluster.nodes;
            replicas;
            client_scheme = Agg_system.Scheme.aggregating ();
            node_scheme = Agg_system.Scheme.aggregating ();
            faults;
            scope = Some (Agg_obs.Scope.create ~series ~trace_ctx:ctx ());
          }
        in
        let r = Agg_cluster.Cluster.run config trace in
        (* Pass 2: a single-client run with the memory sink, replayed into
           a second series — the speculative-eviction churn channel, and a
           digest to reconcile it against. *)
        let sink = Agg_obs.Sink.memory () in
        let cache = Agg_core.Client_cache.create ~obs:sink ~capacity:300 () in
        ignore (Agg_core.Client_cache.run cache trace);
        let events = Agg_obs.Sink.events sink in
        let churn = Agg_obs.Series.of_events ~window events in
        let digest = Agg_obs.Digest.of_events events in
        (* Self-checks: every window sum must reconcile exactly with the
           run's own aggregate counters — the telemetry layer must never
           invent or lose a count. *)
        let failures = ref [] in
        let check name got want =
          if got <> want then
            failures := Printf.sprintf "%s: series %d <> run %d" name got want :: !failures
        in
        check "cluster accesses" (Agg_obs.Series.total_accesses series)
          r.Agg_cluster.Cluster.accesses;
        check "cluster client hits" (Agg_obs.Series.total_hits series)
          r.Agg_cluster.Cluster.client_hits;
        check "cluster degraded fetches" (Agg_obs.Series.total_degraded series)
          (r.Agg_cluster.Cluster.accesses - r.Agg_cluster.Cluster.client_hits
         - r.Agg_cluster.Cluster.routed_fetches);
        check "cluster latency samples"
          (Agg_obs.Histogram.count (Agg_obs.Series.total_latency series))
          r.Agg_cluster.Cluster.accesses;
        let loads = Hashtbl.create 16 in
        for w = 0 to Agg_obs.Series.windows series - 1 do
          List.iter
            (fun (n, c) ->
              Hashtbl.replace loads n (c + Option.value ~default:0 (Hashtbl.find_opt loads n)))
            (Agg_obs.Series.node_loads series w)
        done;
        List.iter
          (fun (n, c) ->
            check (Printf.sprintf "node %d load" n)
              (Option.value ~default:0 (Hashtbl.find_opt loads n))
              c;
            Hashtbl.remove loads n)
          r.Agg_cluster.Cluster.per_node_requests;
        Hashtbl.iter (fun n c -> check (Printf.sprintf "node %d load" n) c 0) loads;
        check "client accesses" (Agg_obs.Series.total_accesses churn)
          (Agg_obs.Digest.accesses digest);
        check "client hits" (Agg_obs.Series.total_hits churn) (Agg_obs.Digest.demand_hits digest);
        check "speculative evictions"
          (Agg_obs.Series.total_speculative_evictions churn)
          (Agg_obs.Digest.evicted_speculative digest);
        (* The series document: the cluster channel plus the client churn
           channel, both deterministic bytes. *)
        let body =
          match format with
          | `Prom ->
              Agg_obs.Series.to_prometheus ~prefix:"agg_cluster" series
              ^ Agg_obs.Series.to_prometheus ~prefix:"agg_client" churn
          | `Json ->
              Printf.sprintf "{\"cluster\": %s, \"client\": %s}\n"
                (Agg_obs.Series.to_json series)
                (Agg_obs.Series.to_json churn)
        in
        let write_ok =
          match out with
          | None ->
              print_string body;
              true
          | Some path -> (
              match open_out_result path with
              | Error msg ->
                  Printf.eprintf "aggsim: cannot write %s: %s\n" path msg;
                  false
              | Ok oc ->
                  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc body);
                  Printf.printf "wrote %d windows to %s\n" (Agg_obs.Series.windows series) path;
                  true)
        in
        let trace_ok =
          match trace_out with
          | None -> true
          | Some path -> (
              match open_out_result path with
              | Error msg ->
                  Printf.eprintf "aggsim: cannot write %s: %s\n" path msg;
                  false
              | Ok oc ->
                  Fun.protect
                    ~finally:(fun () -> close_out oc)
                    (fun () -> output_string oc (Agg_obs.Trace_ctx.chrome_json ctx));
                  Printf.printf "wrote %d spans (%d sampled requests) to %s\n"
                    (List.length (Agg_obs.Trace_ctx.spans ctx))
                    (Agg_obs.Trace_ctx.sampled_requests ctx)
                    path;
                  true)
        in
        Printf.printf "telemetry: %d nodes, k=%d, node-loss %g, window %d, sample %g\n" nodes
          replicas node_loss window sample;
        Printf.printf "traced %d of %d requests; critical-path attribution (sampled, ms):\n"
          (Agg_obs.Trace_ctx.sampled_requests ctx)
          r.Agg_cluster.Cluster.accesses;
        List.iter
          (fun (cat, ms) -> Printf.printf "  %-10s %10.2f\n" cat ms)
          (Agg_obs.Trace_ctx.attribution ctx);
        match (!failures, write_ok && trace_ok) with
        | [], true ->
            Printf.printf "telemetry self-checks OK: window sums reconcile with run counters\n";
            exit_ok
        | fails, _ ->
            List.iter (fun f -> Printf.eprintf "aggsim: telemetry reconciliation FAILED: %s\n" f)
              (List.rev fails);
            1)
  in
  Cmd.v
    (Cmd.info "telemetry"
       ~doc:
         "Run the cluster with windowed time-series telemetry and request-lifecycle tracing: \
          export per-window hit rate, latency quantiles, degraded-fetch rate, per-node load and \
          speculative-eviction churn as Prometheus text or JSON, optionally dump sampled request \
          span trees as a Chrome trace, and reconcile every window sum against the run's own \
          counters (non-zero exit on any mismatch).")
    Term.(
      const run $ settings_term $ profile_arg $ nodes_arg $ replicas_arg $ node_loss_arg
      $ window_arg $ sample_arg $ format_arg $ out_arg $ trace_out_arg)

(* --- main ------------------------------------------------------------ *)

let () =
  let doc = "trace-driven simulator for group-based distributed file caching" in
  let info = Cmd.info "aggsim" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            generate_cmd;
            stats_cmd;
            fig3_cmd;
            fig4_cmd;
            fig5_cmd;
            fig7_cmd;
            fig8_cmd;
            weighted_cmd;
            summary_cmd;
            checks_cmd;
            differential_cmd;
            ablations_cmd;
            latency_cmd;
            fleet_cmd;
            faults_cmd;
            cluster_cmd;
            scenario_cmd;
            entropy_cmd;
            groups_cmd;
            convert_cmd;
            profile_report_cmd;
            trace_cmd;
            profile_cmd;
            telemetry_cmd;
          ]))
