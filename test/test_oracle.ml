(* Tests for Agg_oracle: the reference models themselves, the lockstep
   differential engine, its shrinker, and the seeded-mutant smoke test.
   The heavy end-to-end differential run lives behind `aggsim
   differential` / the @differential alias; here we pin the machinery
   with crafted cases and qcheck state-machine properties. *)

open Agg_oracle
module Policy = Agg_cache.Policy
module Cache = Agg_cache.Cache
module Successor_list = Agg_successor.Successor_list

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = if i + n > h then false else String.sub haystack i n = needle || loop (i + 1) in
  loop 0

(* --- Model_cache on its own ------------------------------------------- *)

let unit_insert m ~pos key = Model_cache.insert m ~pos ~weight:Policy.unit_weight key

let test_model_lru_order () =
  let m = Model_cache.create Cache.Lru ~capacity:2 in
  Alcotest.(check (list int)) "no victim" [] (unit_insert m ~pos:Policy.Hot 1);
  Alcotest.(check (list int)) "no victim" [] (unit_insert m ~pos:Policy.Hot 2);
  Model_cache.promote m 1;
  Alcotest.(check (list int)) "lru victim" [ 2 ] (unit_insert m ~pos:Policy.Hot 3);
  check_bool "1 stays" true (Model_cache.mem m 1)

let test_model_cold_insert () =
  let m = Model_cache.create Cache.Lru ~capacity:3 in
  ignore (unit_insert m ~pos:Policy.Hot 1);
  ignore (unit_insert m ~pos:Policy.Cold 2);
  (* the cold member is the first to go *)
  Alcotest.(check (option int)) "cold evicted first" (Some 2) (Model_cache.evict m);
  check_int "size" 1 (Model_cache.size m)

let test_model_random_matches_seeded () =
  (* sharing the seed with the optimized Random policy means victims
     coincide exactly — that is what makes random diffable at all *)
  let m = Model_cache.create Cache.Random ~capacity:4 in
  let r = Agg_cache.Random_policy.create ~capacity:4 in
  for k = 0 to 3 do
    ignore (unit_insert m ~pos:Policy.Hot k);
    ignore (Agg_cache.Random_policy.insert r ~pos:Policy.Hot ~weight:Policy.unit_weight k)
  done;
  for k = 4 to 40 do
    Alcotest.(check (list int))
      "same victim"
      (Agg_cache.Random_policy.insert r ~pos:Policy.Hot ~weight:Policy.unit_weight k)
      (unit_insert m ~pos:Policy.Hot k)
  done

(* --- the differential engine ------------------------------------------ *)

let minimal_mutant_repro =
  [
    Diff_engine.Insert (Policy.Hot, Policy.unit_weight, 1);
    Diff_engine.Insert (Policy.Cold, Policy.unit_weight, 2);
    Diff_engine.Promote 2;
    Diff_engine.Evict;
  ]

let test_mutant_minimal_repro () =
  (* promote-to-cold-end flips the eviction order: correct LRU evicts 1,
     the mutant evicts the just-promoted 2 *)
  check_bool "mutant diverges" true
    (Option.is_some (Diff_engine.diff_ops_mutant ~capacity:2 minimal_mutant_repro));
  check_bool "real LRU agrees with model" true
    (Option.is_none (Diff_engine.diff_ops Cache.Lru ~capacity:2 minimal_mutant_repro))

let test_mutant_caught_by_fuzz () =
  let c = Diff_engine.mutant_check ~seed:3 ~ops:2_000 in
  check_bool "pass means caught" true c.Diff_engine.pass;
  check_bool "reports a shrunk repro" true (contains c.Diff_engine.detail "shrunk repro")

let test_shrunk_repro_still_fails () =
  (* the shrinker must return a failing list, and a 1-minimal one: no
     single further removal may still fail *)
  let prng = Agg_util.Prng.create ~seed:11 () in
  let ops = Diff_engine.gen_ops prng ~universe:12 ~count:400 in
  let fails candidate = Option.is_some (Diff_engine.diff_ops_mutant ~capacity:4 candidate) in
  check_bool "generated ops catch the mutant" true (fails ops);
  let minimal = Diff_engine.shrink_ops fails ops in
  check_bool "shrunk still fails" true (fails minimal);
  check_bool "shrunk no longer than input" true (List.length minimal <= List.length ops);
  List.iteri
    (fun i _ ->
      let without = List.filteri (fun j _ -> j <> i) minimal in
      check_bool "1-minimal" false (fails without))
    minimal

let test_shrink_ops_plain_predicate () =
  let ops = List.init 50 (fun i -> if i mod 7 = 0 then Diff_engine.Evict else Diff_engine.Mem i) in
  let fails l = List.length (List.filter (fun o -> o = Diff_engine.Evict) l) >= 3 in
  let minimal = Diff_engine.shrink_ops fails ops in
  check_int "exactly the three needed ops remain" 3 (List.length minimal);
  check_bool "all evicts" true (List.for_all (fun o -> o = Diff_engine.Evict) minimal)

let test_gen_ops_deterministic () =
  let gen seed =
    Diff_engine.gen_ops (Agg_util.Prng.create ~seed ()) ~universe:10 ~count:50
  in
  check_bool "same seed, same ops" true (gen 5 = gen 5);
  check_bool "different seed, different ops" true (gen 5 <> gen 6)

(* --- qcheck: state-machine agreement per policy ----------------------- *)

let op_gen =
  let open QCheck.Gen in
  let key = int_bound 20 in
  frequency
    [
      (5, map (fun k -> Diff_engine.Insert (Policy.Hot, Policy.unit_weight, k)) key);
      (3, map (fun k -> Diff_engine.Insert (Policy.Cold, Policy.unit_weight, k)) key);
      (3, map (fun k -> Diff_engine.Promote k) key);
      (2, return Diff_engine.Evict);
      (2, map (fun k -> Diff_engine.Mem k) key);
      (1, return Diff_engine.Clear);
    ]

(* Shrinks to a minimal reproducible op list via QCheck's list shrinker;
   the printed counterexample is directly replayable through diff_ops. *)
let scenario_arbitrary =
  QCheck.make
    ~print:(fun (capacity, ops) ->
      Printf.sprintf "capacity=%d; %s" capacity (Diff_engine.ops_to_string ops))
    ~shrink:
      QCheck.Shrink.(pair int (list ~shrink:nil))
    QCheck.Gen.(pair (int_range 1 12) (list_size (int_bound 120) op_gen))

let agreement_properties =
  List.map
    (fun kind ->
      QCheck.Test.make
        ~name:(Printf.sprintf "%s agrees with its model on any op sequence" (Cache.kind_name kind))
        ~count:150 scenario_arbitrary
        (fun (capacity, ops) ->
          match Diff_engine.diff_ops kind ~capacity ops with
          | None -> true
          | Some d -> QCheck.Test.fail_reportf "step %d: %s" d.Diff_engine.step d.Diff_engine.detail))
    Cache.all_kinds

(* --- qcheck: successor models ----------------------------------------- *)

let successor_property policy pname =
  QCheck.Test.make
    ~name:(Printf.sprintf "successor %s list agrees with its model" pname)
    ~count:200
    QCheck.(pair (int_range 1 8) (list (QCheck.map (fun i -> abs i mod 12) int)))
    (fun (capacity, stream) ->
      let real = Successor_list.create ~capacity ~policy in
      let model = Model_successor.create ~capacity ~policy in
      List.for_all
        (fun s ->
          let mem_ok = Successor_list.mem real s = Model_successor.mem model s in
          Successor_list.observe real s;
          Model_successor.observe model s;
          mem_ok
          && Successor_list.ranked real = Model_successor.ranked model
          && Successor_list.top real = Model_successor.top model
          && Successor_list.size real = Model_successor.size model)
        stream)

let oracle_property =
  QCheck.Test.make ~name:"successor oracle agrees with its model" ~count:200
    QCheck.(list (pair (int_range 0 8) (int_range 0 8)))
    (fun pairs ->
      let real = Agg_successor.Oracle.create () in
      let model = Model_successor.Oracle.create () in
      List.for_all
        (fun (file, successor) ->
          let before =
            Agg_successor.Oracle.mem real ~file ~successor
            = Model_successor.Oracle.mem model ~file ~successor
          in
          Agg_successor.Oracle.observe real ~file ~successor;
          Model_successor.Oracle.observe model ~file ~successor;
          before
          && Agg_successor.Oracle.mem real ~file ~successor
             && Model_successor.Oracle.mem model ~file ~successor)
        pairs)

(* --- qcheck: the aggregating client vs its model ---------------------- *)

let client_property =
  QCheck.Test.make ~name:"aggregating client agrees with its model" ~count:60
    QCheck.(
      triple (int_range 2 10) (int_range 1 6)
        (list_of_size (QCheck.Gen.int_bound 200) (QCheck.map (fun i -> abs i mod 20) int)))
    (fun (capacity, group_size, accesses) ->
      let config = Agg_core.Config.with_group_size group_size Agg_core.Config.default in
      let real = Agg_core.Client_cache.create ~config ~capacity () in
      let model = Model_system.Client.create ~config ~capacity () in
      List.for_all
        (fun file ->
          Agg_core.Client_cache.access real file = Model_system.Client.access model file)
        accesses
      && Agg_core.Client_cache.metrics real = Model_system.Client.metrics model)

(* --- end-to-end calibrated-trace differential (small budget) ---------- *)

let test_trace_checks_small () =
  let checks =
    Diff_engine.successor_checks ~seed:7 ~events:1_200
    @ Diff_engine.trace_checks ~seed:7 ~events:1_200
  in
  check_bool "some checks ran" true (List.length checks > 50);
  List.iter
    (fun (c : Diff_engine.check) ->
      check_bool (Printf.sprintf "%s: %s" c.Diff_engine.name c.Diff_engine.detail) true
        c.Diff_engine.pass)
    checks

(* --- weighted differentials ------------------------------------------- *)

let check_all_pass checks =
  check_bool "some checks ran" true (checks <> []);
  List.iter
    (fun (c : Diff_engine.check) ->
      check_bool (Printf.sprintf "%s: %s" c.Diff_engine.name c.Diff_engine.detail) true
        c.Diff_engine.pass)
    checks

let test_weighted_fuzz_kinds () =
  (* every built-in kind lifted to weights agrees with its model under
     mixed-weight op sequences (oversize bypass + multi-victim paths) *)
  check_all_pass
    (List.map (Diff_engine.fuzz_policy_weighted ~seed:23 ~ops:600) Agg_cache.Cache.all_kinds)

let test_weighted_fuzz_baselines () =
  check_all_pass
    (List.map (Diff_engine.fuzz_weighted_policy ~seed:29 ~ops:800) Diff_engine.all_weighted_policies)

let test_lru_equivalence () =
  (* GDS/Landlord/Bundle at unit weights must be LRU access for access *)
  check_all_pass (Diff_engine.lru_equivalence_checks ~seed:31 ~events:1_500)

let qcheck_tests =
  agreement_properties
  @ [
      successor_property Successor_list.Recency "recency";
      successor_property Successor_list.Frequency "frequency";
      oracle_property;
      client_property;
    ]

let () =
  Alcotest.run "agg_oracle"
    [
      ( "model_cache",
        [
          Alcotest.test_case "lru order" `Quick test_model_lru_order;
          Alcotest.test_case "cold insert" `Quick test_model_cold_insert;
          Alcotest.test_case "random shares the seed" `Quick test_model_random_matches_seeded;
        ] );
      ( "engine",
        [
          Alcotest.test_case "mutant minimal repro" `Quick test_mutant_minimal_repro;
          Alcotest.test_case "mutant caught by fuzz" `Quick test_mutant_caught_by_fuzz;
          Alcotest.test_case "shrunk repro still fails" `Quick test_shrunk_repro_still_fails;
          Alcotest.test_case "shrinker on a plain predicate" `Quick test_shrink_ops_plain_predicate;
          Alcotest.test_case "gen_ops deterministic" `Quick test_gen_ops_deterministic;
          Alcotest.test_case "calibrated traces (small)" `Slow test_trace_checks_small;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "mixed-weight fuzz, built-in kinds" `Quick test_weighted_fuzz_kinds;
          Alcotest.test_case "mixed-weight fuzz, weighted baselines" `Quick
            test_weighted_fuzz_baselines;
          Alcotest.test_case "unit weights are lru" `Quick test_lru_equivalence;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
