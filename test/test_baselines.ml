(* Tests for the related-work baselines: last-successor and first-order
   Markov predictors, and the Griffioen–Appleton probability-graph
   prefetcher. *)

open Agg_baselines

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let repeat n pattern = Array.concat (List.init n (fun _ -> Array.of_list pattern))

(* --- Last_successor ---------------------------------------------------- *)

let test_last_successor_learns_cycle () =
  let a = Last_successor.measure (repeat 100 [ 1; 2; 3 ]) in
  (* after the first cycle every prediction is right *)
  check_bool "high accuracy" true (Last_successor.accuracy_rate a > 0.95);
  check_int "predictions + cold = events - 1" 299 (a.Last_successor.predictions + a.Last_successor.no_prediction)

let test_last_successor_adapts_immediately () =
  let t = Last_successor.create () in
  List.iter (Last_successor.observe t) [ 1; 2; 1; 3 ];
  (* 1's most recent successor is now 3, not 2 *)
  check_bool "adapted" true (Last_successor.predict t 1 = Some 3)

let test_last_successor_no_prediction_for_unknown () =
  let t = Last_successor.create () in
  check_bool "unknown" true (Last_successor.predict t 42 = None)

let test_accuracy_rate_zero_predictions () =
  check_float "empty" 0.0
    (Last_successor.accuracy_rate { Last_successor.predictions = 0; correct = 0; no_prediction = 3 })

(* --- Markov_predictor ---------------------------------------------------- *)

let test_markov_predicts_most_frequent () =
  let t = Markov_predictor.create () in
  List.iter (Markov_predictor.observe t) [ 1; 2; 1; 2; 1; 3 ];
  (* counts for 1: 2 twice, 3 once *)
  check_bool "most frequent" true (Markov_predictor.predict t 1 = Some 2)

let test_markov_slow_to_adapt () =
  (* after a long stable phase the successor changes for good; the
     frequency predictor stays stuck while last-successor adapts at once *)
  let phase1 = repeat 50 [ 1; 2 ] in
  let phase2 = repeat 10 [ 1; 3 ] in
  let files = Array.append phase1 phase2 in
  let markov = Markov_predictor.measure files in
  let last = Last_successor.measure files in
  check_bool "recency adapts better on drift" true
    (Last_successor.accuracy_rate last > Last_successor.accuracy_rate markov)

let test_markov_measure_counts () =
  let a = Markov_predictor.measure (repeat 30 [ 7; 8; 9 ]) in
  check_bool "accurate on cycle" true (Last_successor.accuracy_rate a > 0.9)

(* --- Prob_graph ------------------------------------------------------------- *)

let test_prob_graph_chance () =
  let pg = Prob_graph.create ~lookahead:2 ~threshold:0.5 ~capacity:10 () in
  (* drive 1 2 3 1 2 3: within lookahead 2 of each access *)
  Array.iter (fun f -> ignore (Prob_graph.access pg f)) (repeat 10 [ 1; 2; 3 ]);
  check_bool "1 -> 2 strong" true (Prob_graph.chance pg ~src:1 ~dst:2 > 0.8);
  check_bool "1 -> 3 within window" true (Prob_graph.chance pg ~src:1 ~dst:3 > 0.5);
  check_float "unrelated" 0.0 (Prob_graph.chance pg ~src:1 ~dst:99)

let test_prob_graph_prefetches_reduce_fetches () =
  let run threshold =
    let pg = Prob_graph.create ~threshold ~capacity:6 () in
    let m = Prob_graph.run pg (Agg_trace.Trace.of_files (Array.to_list (repeat 200 (List.init 10 Fun.id)))) in
    m.Agg_core.Metrics.demand_fetches
  in
  let no_prefetch =
    let cache = Agg_cache.Cache.create Agg_cache.Cache.Lru ~capacity:6 in
    Array.fold_left
      (fun acc f -> if Agg_cache.Cache.access cache f then acc else acc + 1)
      0
      (repeat 200 (List.init 10 Fun.id))
  in
  check_bool "prefetching beats plain lru on cyclic scan" true (run 0.1 < no_prefetch)

let test_prob_graph_metrics_identities () =
  let pg = Prob_graph.create ~capacity:8 () in
  let trace =
    Agg_workload.Generator.generate ~seed:2 ~events:3000 Agg_workload.Profile.workstation
  in
  let m = Prob_graph.run pg trace in
  check_int "accesses" 3000 m.Agg_core.Metrics.accesses;
  check_int "hits+misses" 3000 (m.Agg_core.Metrics.hits + m.Agg_core.Metrics.demand_fetches);
  check_bool "used <= issued" true
    (m.Agg_core.Metrics.prefetch.Agg_core.Metrics.used
    <= m.Agg_core.Metrics.prefetch.Agg_core.Metrics.issued)

let test_prob_graph_threshold_gates_prefetch () =
  (* with threshold 1.0 only sure-thing successors are prefetched; an
     alternating successor (half/half) must not be *)
  let pg = Prob_graph.create ~lookahead:1 ~threshold:1.0 ~capacity:10 () in
  Array.iter (fun f -> ignore (Prob_graph.access pg f)) (repeat 20 [ 1; 2; 1; 3 ]);
  let m = Prob_graph.metrics pg in
  check_int "nothing prefetched" 0 m.Agg_core.Metrics.prefetch.Agg_core.Metrics.issued

let test_prob_graph_validation () =
  Alcotest.check_raises "lookahead 0"
    (Invalid_argument "Prob_graph.create: lookahead must be positive") (fun () ->
      ignore (Prob_graph.create ~lookahead:0 ~capacity:4 ()));
  Alcotest.check_raises "threshold 0"
    (Invalid_argument "Prob_graph.create: threshold must be in (0, 1]") (fun () ->
      ignore (Prob_graph.create ~threshold:0.0 ~capacity:4 ()))

(* --- Ppm ------------------------------------------------------------------ *)

let test_ppm_uses_context () =
  (* 'a' is followed by b after x, by c after y: order-1 cannot separate
     them, order-2 can *)
  let t = Ppm.create ~max_order:2 () in
  let feed = [ 8; 1; 2; 9; 1; 3; 8; 1; 2; 9; 1; 3; 8; 1 ] in
  List.iter (Ppm.observe t) feed;
  (* current context is [1; 8] (most recent first): next should be 2 *)
  check_bool "context disambiguates" true (Ppm.predict t = Some 2)

let test_ppm_falls_back_to_shorter_context () =
  let t = Ppm.create ~max_order:2 () in
  List.iter (Ppm.observe t) [ 1; 2; 1; 2; 1 ];
  (* context [1; 2] was seen; but after feeding a brand-new preceding
     file the order-2 context is unknown and order 1 must answer *)
  List.iter (Ppm.observe t) [ 99; 1 ];
  check_bool "order-1 fallback" true (Ppm.predict t = Some 2)

let test_ppm_beats_last_successor_on_contextual_pattern () =
  let pattern = [ 8; 1; 2; 9; 1; 3 ] in
  let files = repeat 200 pattern in
  let ppm = Ppm.measure files in
  let ls = Last_successor.measure files in
  check_bool "ppm wins when context matters" true
    (Last_successor.accuracy_rate ppm > Last_successor.accuracy_rate ls);
  check_bool "ppm near perfect here" true (Last_successor.accuracy_rate ppm > 0.95)

let test_ppm_measure_counts () =
  let a = Ppm.measure (repeat 50 [ 1; 2; 3 ]) in
  check_int "every non-initial position attempted" 149
    (a.Last_successor.predictions + a.Last_successor.no_prediction)

let test_ppm_validation () =
  Alcotest.check_raises "order 0" (Invalid_argument "Ppm.create: max_order must be positive")
    (fun () -> ignore (Ppm.create ~max_order:0 ()));
  check_int "max_order stored" 3 (Ppm.max_order (Ppm.create ~max_order:3 ()))

(* --- weighted policies: Landlord, GreedyDual-Size, Bundle ----------------- *)

open Agg_cache.Policy

let w ~size ~cost = { Agg_cache.Policy.size; cost }
let check_victims = Alcotest.(check (list int))

let test_landlord_multi_victim () =
  (* capacity 4: a(2,2) and b(2,4) resident; c(4,1) needs the whole
     cache. a has the lower credit/size ratio (1 vs 2) and goes first;
     the rent drained making room (delta 1 x size 2) leaves b at credit
     2, which the second round evicts. Exact victim order pins the rent
     accounting. *)
  let t = Landlord.create ~capacity:4 in
  check_victims "a fits" [] (Landlord.insert t ~pos:Hot ~weight:(w ~size:2 ~cost:2) 1);
  check_victims "b fits" [] (Landlord.insert t ~pos:Hot ~weight:(w ~size:2 ~cost:4) 2);
  check_victims "hot-first before" [ 2; 1 ] (Landlord.contents t);
  check_victims "c evicts a then b" [ 1; 2 ]
    (Landlord.insert t ~pos:Hot ~weight:(w ~size:4 ~cost:1) 3);
  check_victims "only c resident" [ 3 ] (Landlord.contents t);
  check_int "used" 4 (Landlord.used t)

let test_landlord_charge_overrides_recency () =
  (* b is hotter than a, but a was re-credited to 10 on a hit; the
     rent-based victim is the cheap one, not the cold one. *)
  let t = Landlord.create ~capacity:2 in
  ignore (Landlord.insert t ~pos:Hot ~weight:(w ~size:1 ~cost:1) 1);
  ignore (Landlord.insert t ~pos:Hot ~weight:(w ~size:1 ~cost:5) 2);
  Landlord.charge t 1 ~cost:10;
  check_victims "cheap b evicted, not cold a" [ 2 ]
    (Landlord.insert t ~pos:Hot ~weight:(w ~size:1 ~cost:1) 3);
  check_victims "contents" [ 3; 1 ] (Landlord.contents t)

let test_landlord_oversize_bypass () =
  let t = Landlord.create ~capacity:4 in
  ignore (Landlord.insert t ~pos:Hot ~weight:(w ~size:2 ~cost:3) 1);
  check_victims "oversize evicts nothing" [] (Landlord.insert t ~pos:Hot ~weight:(w ~size:5 ~cost:9) 2);
  check_bool "oversize not admitted" false (Landlord.mem t 2);
  check_bool "resident untouched" true (Landlord.mem t 1)

let test_landlord_unit_is_lru () =
  (* at unit weights Landlord must match LRU access for access,
     including victim identity *)
  let ll = Landlord.create ~capacity:3 in
  let lru = Agg_cache.Lru.create ~capacity:3 in
  let serve : type a. (module Agg_cache.Policy.S with type t = a) -> a -> int -> int list =
   fun (module P) t k ->
    if P.mem t k then begin
      P.promote t k;
      P.charge t k ~cost:1;
      []
    end
    else P.insert t ~pos:Agg_cache.Policy.Hot ~weight:Agg_cache.Policy.unit_weight k
  in
  List.iter
    (fun k ->
      let v_ll = serve (module Landlord) ll k in
      let v_lru = serve (module Agg_cache.Lru) lru k in
      check_victims "same victims" v_lru v_ll;
      check_victims "same contents" (Agg_cache.Lru.contents lru) (Landlord.contents ll))
    [ 1; 2; 3; 4; 2; 5; 1; 1; 6; 3; 2 ]

let test_gds_cost_over_recency_and_inflation () =
  (* H = inflation + cost/size. b is the most recent insert but has the
     lowest H and is evicted first; its H becomes the inflation floor,
     which is what lets the later cheap d displace the once-expensive
     a. *)
  let t = Greedy_dual.create ~capacity:2 in
  ignore (Greedy_dual.insert t ~pos:Hot ~weight:(w ~size:1 ~cost:4) 1);
  ignore (Greedy_dual.insert t ~pos:Hot ~weight:(w ~size:1 ~cost:2) 2);
  check_victims "cheapest H evicted despite recency" [ 2 ]
    (Greedy_dual.insert t ~pos:Hot ~weight:(w ~size:1 ~cost:3) 3);
  (* inflation is now 2: H(a)=4, H(c)=2+3=5, so d(cost 1, H=4+1=5
     after the next round) evicts a *)
  check_victims "inflation unlocks the expensive file" [ 1 ]
    (Greedy_dual.insert t ~pos:Hot ~weight:(w ~size:1 ~cost:1) 4);
  check_bool "c survives" true (Greedy_dual.mem t 3);
  check_bool "d resident" true (Greedy_dual.mem t 4)

let test_bundle_request_semantics () =
  let unit_of _ = Agg_cache.Policy.unit_weight in
  let b = Bundle.create ~capacity:4 in
  (* duplicates served once, members inserted hot in first-occurrence
     order *)
  check_victims "first bundle fits" [] (Bundle.request_bundle b ~weight_of:unit_of [ 1; 2; 1; 3 ]);
  check_victims "hot order after bundle" [ 3; 2; 1 ] (Bundle.contents b);
  (* resident 2 is promoted (and re-credited), missing 4 inserted hot *)
  check_victims "partial bundle fits" [] (Bundle.request_bundle b ~weight_of:unit_of [ 2; 4 ]);
  check_victims "promotion order" [ 4; 2; 3; 1 ] (Bundle.contents b);
  (* a size-2 newcomer at full capacity drains rent from everyone:
     coldest residents go, in recency order *)
  check_victims "two victims from cold end" [ 1; 3 ]
    (Bundle.request_bundle b
       ~weight_of:(fun _ -> w ~size:2 ~cost:1)
       [ 5 ]);
  check_victims "survivors" [ 5; 4; 2 ] (Bundle.contents b);
  check_int "used at capacity" 4 (Bundle.used b)

(* Drive one policy through a random weighted op sequence, checking
   after every operation that the conservation invariant holds and that
   [used] really is the sum of the resident sizes. *)
let conserves (module P : Agg_cache.Policy.S) ~capacity ops =
  let t = P.create ~capacity in
  let recorded = Hashtbl.create 16 in
  List.for_all
    (fun (key, size, cost) ->
      let weight = w ~size ~cost in
      if P.mem t key then begin
        P.promote t key;
        P.charge t key ~cost
      end
      else if P.insert t ~pos:(if key mod 3 = 0 then Cold else Hot) ~weight key <> [] || P.mem t key
      then Hashtbl.replace recorded key size;
      let sum =
        List.fold_left
          (fun acc k -> acc + (try Hashtbl.find recorded k with Not_found -> 1))
          0 (P.contents t)
      in
      P.used t <= P.capacity t && P.used t = sum)
    ops

(* --- qcheck properties --------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  let files_gen = list_of_size (Gen.int_range 10 300) (int_range 0 25) in
  let weighted_ops =
    pair
      (list_of_size (Gen.int_range 20 150)
         (triple (int_range 0 20) (int_range 1 5) (int_range 1 9)))
      (int_range 3 15)
  in
  [
    Test.make ~name:"last-successor accuracy within [0,1]" ~count:100 files_gen (fun files ->
        let a = Last_successor.measure (Array.of_list files) in
        let r = Last_successor.accuracy_rate a in
        r >= 0.0 && r <= 1.0 && a.Last_successor.correct <= a.Last_successor.predictions);
    Test.make ~name:"markov accuracy within [0,1]" ~count:100 files_gen (fun files ->
        let a = Markov_predictor.measure (Array.of_list files) in
        let r = Last_successor.accuracy_rate a in
        r >= 0.0 && r <= 1.0);
    Test.make ~name:"landlord conserves capacity" ~count:100 weighted_ops (fun (ops, capacity) ->
        conserves (module Landlord) ~capacity ops);
    Test.make ~name:"greedy-dual conserves capacity" ~count:100 weighted_ops
      (fun (ops, capacity) -> conserves (module Greedy_dual) ~capacity ops);
    Test.make ~name:"bundle conserves capacity" ~count:100 weighted_ops (fun (ops, capacity) ->
        conserves (module Bundle) ~capacity ops);
    (let keys = pair (list_of_size (Gen.int_range 10 120) (int_range 0 15)) (int_range 4 20) in
     (* weights must be a stable function of the key: bundles re-credit
        residents with [weight_of key] *)
     let weight_of k = w ~size:(1 + (k mod 4)) ~cost:(1 + (k mod 7)) in
     Test.make ~name:"bundle singletons coincide with landlord" ~count:100 keys
       (fun (keys, capacity) ->
         let b = Bundle.create ~capacity and l = Landlord.create ~capacity in
         List.for_all
           (fun k ->
             let weight = weight_of k in
             let vl =
               if Landlord.mem l k then begin
                 Landlord.promote l k;
                 Landlord.charge l k ~cost:weight.Agg_cache.Policy.cost;
                 []
               end
               else Landlord.insert l ~pos:Hot ~weight k
             in
             let vb = Bundle.request_bundle b ~weight_of [ k ] in
             vb = vl && Bundle.contents b = Landlord.contents l && Bundle.used b = Landlord.used l)
           keys));
    Test.make ~name:"prob_graph chance within [0,1]" ~count:60 files_gen (fun files ->
        let pg = Prob_graph.create ~capacity:8 () in
        List.iter (fun f -> ignore (Prob_graph.access pg f)) files;
        List.for_all
          (fun src ->
            List.for_all
              (fun dst ->
                let c = Prob_graph.chance pg ~src ~dst in
                c >= 0.0 && c <= 1.0)
              (List.sort_uniq compare files))
          (List.sort_uniq compare files));
  ]

let () =
  Alcotest.run "agg_baselines"
    [
      ( "last_successor",
        [
          Alcotest.test_case "learns cycle" `Quick test_last_successor_learns_cycle;
          Alcotest.test_case "adapts immediately" `Quick test_last_successor_adapts_immediately;
          Alcotest.test_case "unknown file" `Quick test_last_successor_no_prediction_for_unknown;
          Alcotest.test_case "zero predictions" `Quick test_accuracy_rate_zero_predictions;
        ] );
      ( "markov",
        [
          Alcotest.test_case "most frequent" `Quick test_markov_predicts_most_frequent;
          Alcotest.test_case "slow to adapt" `Quick test_markov_slow_to_adapt;
          Alcotest.test_case "measure counts" `Quick test_markov_measure_counts;
        ] );
      ( "ppm",
        [
          Alcotest.test_case "uses context" `Quick test_ppm_uses_context;
          Alcotest.test_case "fallback to shorter context" `Quick
            test_ppm_falls_back_to_shorter_context;
          Alcotest.test_case "beats last-successor with context" `Quick
            test_ppm_beats_last_successor_on_contextual_pattern;
          Alcotest.test_case "measure counts" `Quick test_ppm_measure_counts;
          Alcotest.test_case "validation" `Quick test_ppm_validation;
        ] );
      ( "prob_graph",
        [
          Alcotest.test_case "chance" `Quick test_prob_graph_chance;
          Alcotest.test_case "prefetch reduces fetches" `Quick
            test_prob_graph_prefetches_reduce_fetches;
          Alcotest.test_case "metric identities" `Quick test_prob_graph_metrics_identities;
          Alcotest.test_case "threshold gates" `Quick test_prob_graph_threshold_gates_prefetch;
          Alcotest.test_case "validation" `Quick test_prob_graph_validation;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "landlord multi-victim order" `Quick test_landlord_multi_victim;
          Alcotest.test_case "landlord charge beats recency" `Quick
            test_landlord_charge_overrides_recency;
          Alcotest.test_case "landlord oversize bypass" `Quick test_landlord_oversize_bypass;
          Alcotest.test_case "landlord at unit weights is lru" `Quick test_landlord_unit_is_lru;
          Alcotest.test_case "greedy-dual cost and inflation" `Quick
            test_gds_cost_over_recency_and_inflation;
          Alcotest.test_case "bundle request semantics" `Quick test_bundle_request_semantics;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
