(* Integration tests: each figure experiment runs end-to-end at reduced
   scale, and the structural invariants of the results are checked —
   series shapes, value ranges, and the orderings that must hold even in
   miniature (oracle below any online policy, grouping no worse than LRU
   on predictable workloads, and so on). *)

open Agg_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* small but not degenerate: enough events for the orderings to show *)
let tiny = { Experiment.events = 4000; seed = 7; warmup = 0; jobs = 2 }

let series_named panel label =
  match List.find_opt (fun s -> s.Experiment.label = label) panel.Experiment.series with
  | Some s -> s
  | None -> Alcotest.failf "series %s missing" label

let all_points panel = List.concat_map (fun s -> s.Experiment.points) panel.Experiment.series

(* --- Experiment helpers ------------------------------------------------- *)

let test_series_value () =
  let s = { Experiment.label = "x"; points = [ (1.0, 10.0); (2.0, 20.0) ] } in
  check_bool "present" true (Experiment.series_value s 2.0 = Some 20.0);
  check_bool "absent" true (Experiment.series_value s 3.0 = None)

let test_panel_table_renders () =
  let panel =
    {
      Experiment.name = "p";
      x_label = "x";
      y_label = "y";
      series = [ { Experiment.label = "a"; points = [ (1.0, 2.0) ] } ];
    }
  in
  let table = Experiment.panel_table ~figure_id:"figX" panel in
  check_bool "non-empty" true (String.length (Agg_util.Table.render table) > 0);
  let fig = { Experiment.id = "figX"; title = "t"; panels = [ panel ] } in
  check_bool "figure renders" true (String.length (Experiment.render_figure fig) > 0)

(* --- Trace_store -------------------------------------------------------- *)

let test_trace_store_sharing () =
  Trace_store.reset ();
  let a = Trace_store.get ~settings:tiny Agg_workload.Profile.server in
  let b = Trace_store.get ~settings:tiny Agg_workload.Profile.server in
  check_bool "equal keys share one trace" true (a == b);
  let fa = Trace_store.files ~settings:tiny Agg_workload.Profile.server in
  let fb = Trace_store.files ~settings:tiny Agg_workload.Profile.server in
  check_bool "files array shared too" true (fa == fb);
  Alcotest.(check (array int)) "files match the trace" (Agg_trace.Trace.files a) fa;
  let other_seed = Trace_store.get ~settings:{ tiny with seed = 8 } Agg_workload.Profile.server in
  check_bool "distinct seeds give distinct traces" true (a != other_seed);
  check_bool "distinct seeds give distinct contents" true
    (Agg_trace.Trace.files a <> Agg_trace.Trace.files other_seed);
  let other_profile = Trace_store.get ~settings:tiny Agg_workload.Profile.users in
  check_bool "distinct profiles give distinct traces" true (a != other_profile);
  check_int "three distinct keys memoized" 3 (Trace_store.size ());
  Trace_store.reset ();
  check_int "reset empties the store" 0 (Trace_store.size ());
  let c = Trace_store.get ~settings:tiny Agg_workload.Profile.server in
  check_bool "regenerated trace has identical contents" true
    (Agg_trace.Trace.files a = Agg_trace.Trace.files c)

let test_trace_store_files_fast_path () =
  (* [files] on a cold store takes the generate_files fast path (no trace
     is boxed); the stream must equal the projection of [get]'s trace *)
  Trace_store.reset ();
  let fast = Trace_store.files ~settings:tiny Agg_workload.Profile.users in
  Trace_store.reset ();
  let via_trace =
    Agg_trace.Trace.files (Trace_store.get ~settings:tiny Agg_workload.Profile.users)
  in
  Alcotest.(check (array int)) "fast path equals trace projection" via_trace fast;
  (* and the memoized entry keeps serving the same array *)
  Trace_store.reset ();
  let a = Trace_store.files ~settings:tiny Agg_workload.Profile.users in
  let b = Trace_store.files ~settings:tiny Agg_workload.Profile.users in
  check_bool "fast-path array memoized" true (a == b);
  Trace_store.reset ()

let test_trace_store_concurrent () =
  Trace_store.reset ();
  let traces =
    Agg_util.Pool.map ~jobs:4
      (fun _ -> Trace_store.get ~settings:tiny Agg_workload.Profile.server)
      (List.init 8 (fun i -> i))
  in
  (match traces with
  | first :: rest -> List.iter (fun t -> check_bool "all domains share one trace" true (t == first)) rest
  | [] -> Alcotest.fail "no traces");
  check_int "generated once" 1 (Trace_store.size ())

(* --- determinism across jobs -------------------------------------------- *)

let test_jobs_determinism () =
  (* the ISSUE 1 acceptance bar in miniature: a figure rendered on one
     domain and on four must be byte-identical *)
  let settings = Experiment.quick_settings in
  let sequential =
    Experiment.render_figure
      (Fig3.run (Experiment.Runner.create ~settings:{ settings with jobs = 1 } ()))
  in
  let parallel =
    Experiment.render_figure
      (Fig3.run (Experiment.Runner.create ~settings:{ settings with jobs = 4 } ()))
  in
  Alcotest.(check string) "fig3 at jobs=1 equals jobs=4" sequential parallel

(* --- Fig. 3 ---------------------------------------------------------------- *)

let tiny_runner = Experiment.Runner.create ~settings:tiny ()

let fig3_panel =
  lazy (Fig3.panel ~capacities:[ 100; 300 ] ~runner:tiny_runner Agg_workload.Profile.server)

let test_fig3_shape () =
  let panel = Lazy.force fig3_panel in
  check_int "six series" 6 (List.length panel.Experiment.series);
  List.iter
    (fun s -> check_int (s.Experiment.label ^ " points") 2 (List.length s.Experiment.points))
    panel.Experiment.series;
  List.iter (fun (_, y) -> check_bool "positive fetches" true (y > 0.0)) (all_points panel)

let test_fig3_grouping_never_worse () =
  let panel = Lazy.force fig3_panel in
  let lru = series_named panel "lru" in
  List.iter
    (fun grouped ->
      if grouped.Experiment.label <> "lru" then
        List.iter2
          (fun (x, y_lru) (x', y_g) ->
            check_bool "same xs" true (x = x');
            check_bool
              (Printf.sprintf "%s <= lru at %g" grouped.Experiment.label x)
              true (y_g <= y_lru))
          lru.Experiment.points grouped.Experiment.points)
    panel.Experiment.series

let test_fig3_fetches_decrease_with_capacity () =
  let panel = Lazy.force fig3_panel in
  List.iter
    (fun s ->
      match s.Experiment.points with
      | [ (_, small); (_, large) ] ->
          check_bool (s.Experiment.label ^ " monotone in capacity") true (large <= small)
      | _ -> Alcotest.fail "expected two points")
    panel.Experiment.series

(* --- Fig. 4 ----------------------------------------------------------------- *)

let fig4_panel =
  lazy
    (Fig4.panel ~filter_capacities:[ 50; 400 ] ~server_capacity:300 ~runner:tiny_runner
       Agg_workload.Profile.server)

let test_fig4_shape () =
  let panel = Lazy.force fig4_panel in
  check_int "three series" 3 (List.length panel.Experiment.series);
  List.iter
    (fun (_, y) -> check_bool "hit rate within [0,100]" true (y >= 0.0 && y <= 100.0))
    (all_points panel)

let test_fig4_aggregating_resilient () =
  let panel = Lazy.force fig4_panel in
  let g5 = series_named panel "g5" in
  let lru = series_named panel "lru" in
  let at s x =
    match Experiment.series_value s x with Some v -> v | None -> Alcotest.fail "missing x"
  in
  check_bool "g5 survives large filters better than lru" true (at g5 400.0 > at lru 400.0)

(* --- Fig. 5 ------------------------------------------------------------------ *)

let fig5_panel =
  lazy (Fig5.panel ~capacities:[ 1; 4; 8 ] ~runner:tiny_runner Agg_workload.Profile.server)

let test_fig5_probabilities_valid () =
  let panel = Lazy.force fig5_panel in
  List.iter
    (fun (_, y) -> check_bool "probability in [0,1]" true (y >= 0.0 && y <= 1.0))
    (all_points panel)

let test_fig5_oracle_lower_bound () =
  let panel = Lazy.force fig5_panel in
  let oracle = series_named panel "oracle" in
  List.iter
    (fun s ->
      if s.Experiment.label <> "oracle" then
        List.iter2
          (fun (_, o) (_, y) -> check_bool "oracle <= online policy" true (o <= y +. 1e-9))
          oracle.Experiment.points s.Experiment.points)
    panel.Experiment.series

let test_fig5_more_successors_help () =
  let panel = Lazy.force fig5_panel in
  let lru = series_named panel "lru" in
  match List.map snd lru.Experiment.points with
  | [ p1; p4; p8 ] ->
      check_bool "more capacity, fewer misses" true (p4 <= p1 && p8 <= p4)
  | _ -> Alcotest.fail "expected three capacities"

let test_fig5_direct_miss_probability () =
  (* a strict cycle has a single successor per file: capacity 1 suffices
     and only cold pairs miss *)
  let files = Array.concat (List.init 50 (fun _ -> [| 1; 2; 3 |])) in
  let p =
    Fig5.miss_probability ~policy:Agg_successor.Successor_list.Recency ~capacity:1 files
  in
  check_bool "only cold misses" true (p < 0.03);
  let oracle = Fig5.oracle_miss_probability files in
  check_bool "oracle likewise" true (oracle <= p)

(* --- Fig. 7 / Fig. 8 ------------------------------------------------------------ *)

let test_fig7_shape () =
  let fig = Fig7.run ~lengths:[ 1; 2; 4 ] tiny_runner in
  check_int "one panel" 1 (List.length fig.Experiment.panels);
  let panel = List.hd fig.Experiment.panels in
  check_int "four workloads" 4 (List.length panel.Experiment.series);
  List.iter
    (fun s ->
      check_int "three lengths" 3 (List.length s.Experiment.points);
      List.iter (fun (_, h) -> check_bool "entropy >= 0" true (h >= 0.0)) s.Experiment.points)
    panel.Experiment.series

let test_fig8_shape () =
  let panel =
    Fig8.panel ~filter_capacities:[ 10; 200 ] ~lengths:[ 1; 2 ] ~runner:tiny_runner
      Agg_workload.Profile.write
  in
  check_int "two filters" 2 (List.length panel.Experiment.series);
  List.iter
    (fun s -> check_bool "label is capacity" true (s.Experiment.label = "10" || s.Experiment.label = "200"))
    panel.Experiment.series

(* --- Weighted sweep ----------------------------------------------------------- *)

let test_weighted_sweep_shape () =
  let cells = Weighted.sweep ~capacities:[ 400 ] tiny_runner in
  check_int "4 policies x 2 sized profiles" 8 (List.length cells);
  List.iter
    (fun (c : Weighted.cell) ->
      let ctx = Printf.sprintf "%s/%s" c.Weighted.profile c.Weighted.policy in
      check_bool (ctx ^ " policy known") true (List.mem c.Weighted.policy Weighted.policies);
      check_bool (ctx ^ " byte hit rate in [0,1]") true
        (c.Weighted.byte_hit_rate >= 0.0 && c.Weighted.byte_hit_rate <= 1.0);
      check_bool (ctx ^ " cost saved in [0,1]") true
        (c.Weighted.cost_saved_rate >= 0.0 && c.Weighted.cost_saved_rate <= 1.0);
      check_bool (ctx ^ " paid something") true (c.Weighted.total_cost > 0))
    cells;
  let vs = Weighted.verdicts ~capacity:400 tiny_runner in
  check_int "one verdict per sized profile" 2 (List.length vs);
  List.iter
    (fun (v : Weighted.verdict) ->
      check_bool "verdict is the cost comparison" true
        (v.Weighted.g5_wins = (v.Weighted.g5_cost < v.Weighted.landlord_cost)))
    vs

(* --- Summary / Report -------------------------------------------------------------- *)

let test_summary_client_rows () =
  let rows = Summary.client_rows ~settings:tiny ~capacity:200 () in
  check_int "four workloads" 4 (List.length rows);
  List.iter
    (fun (r : Summary.client_row) ->
      check_bool "lru fetches positive" true (r.Summary.lru_fetches > 0);
      check_bool "g5 no worse" true (r.Summary.g5_fetches <= r.Summary.lru_fetches))
    rows;
  check_bool "table renders" true
    (String.length (Agg_util.Table.render (Summary.client_table rows)) > 0)

let test_summary_server_rows () =
  let rows = Summary.server_rows ~settings:tiny ~filter_capacities:[ 100 ] () in
  check_int "three workloads x one filter" 3 (List.length rows);
  List.iter
    (fun (r : Summary.server_row) ->
      check_bool "rates within range" true
        (r.Summary.lru_hit_rate >= 0.0 && r.Summary.lru_hit_rate <= 100.0
        && r.Summary.g5_hit_rate >= 0.0 && r.Summary.g5_hit_rate <= 100.0))
    rows;
  check_bool "table renders" true
    (String.length (Agg_util.Table.render (Summary.server_table rows)) > 0)

let test_summary_improvement_edge_cases () =
  (* pins the nan/inf leak fixed with the obs PR: a dead LRU baseline must
     render as "n/a", never nan or inf, and 0-vs-0 is 0 % improvement *)
  check_bool "0 vs 0 improves by 0" true (Summary.improvement ~lru:0.0 ~g5:0.0 = 0.0);
  check_bool "gain over dead baseline is +inf" true
    (Summary.improvement ~lru:0.0 ~g5:5.0 = Float.infinity);
  check_bool "never nan" true
    (List.for_all
       (fun (lru, g5) -> not (Float.is_nan (Summary.improvement ~lru ~g5)))
       [ (0.0, 0.0); (0.0, 5.0); (5.0, 0.0); (5.0, 5.0) ]);
  let row lru g5 =
    {
      Summary.workload = "crafted";
      filter_capacity = 100;
      lru_hit_rate = lru;
      g5_hit_rate = g5;
      improvement_percent = Summary.improvement ~lru ~g5;
    }
  in
  let rendered = Agg_util.Table.render (Summary.server_table [ row 0.0 0.0; row 0.0 5.0 ]) in
  let has needle =
    let n = String.length needle and h = String.length rendered in
    let rec loop i = i + n <= h && (String.sub rendered i n = needle || loop (i + 1)) in
    loop 0
  in
  check_bool "renders n/a for unbounded improvement" true (has "n/a");
  check_bool "no nan in table" true (not (has "nan"));
  check_bool "no bare inf in table" true (not (has "inf"))

let test_report_checks_structure () =
  (* tiny-scale runs need not pass the paper's quantitative bars, but the
     checks must all run and produce both fields *)
  let checks = Report.run_all ~settings:tiny () in
  check_int "24 checks" 24 (List.length checks);
  List.iter
    (fun c ->
      check_bool "id non-empty" true (String.length c.Report.id > 0);
      check_bool "measured non-empty" true (String.length c.Report.measured > 0))
    checks;
  check_bool "table renders" true (String.length (Agg_util.Table.render (Report.table checks)) > 0)

(* --- Export / Plot ----------------------------------------------------------------- *)

let sample_panel =
  {
    Experiment.name = "sample";
    x_label = "x";
    y_label = "y";
    series =
      [
        { Experiment.label = "a"; points = [ (1.0, 10.0); (2.0, 20.0) ] };
        { Experiment.label = "b,quoted"; points = [ (1.0, 5.0) ] };
      ];
  }

let test_export_csv_shape () =
  let csv = Export.panel_csv sample_panel in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "header + 2 rows" 3 (List.length lines);
  (match lines with
  | header :: row1 :: _ ->
      Alcotest.(check string) "header quoted" "x,a,\"b,quoted\"" header;
      Alcotest.(check string) "first row" "1,10,5" row1
  | _ -> Alcotest.fail "missing lines");
  (* missing point renders as an empty cell *)
  check_bool "empty cell for missing point" true
    (List.exists (fun l -> l = "2,20,") lines)

let test_export_write_figure () =
  let fig = { Experiment.id = "figX"; title = "t"; panels = [ sample_panel ] } in
  let dir = Filename.temp_file "aggcsv" "" in
  Sys.remove dir;
  let written = Export.write_figure ~dir fig in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove written;
      Sys.rmdir dir)
    (fun () ->
      check_int "one file" 1 (List.length written);
      check_bool "file exists" true (Sys.file_exists (List.hd written));
      check_bool "named after panel" true
        (Filename.basename (List.hd written) = "figx-sample.csv"))

let test_plot_renders () =
  let rendered = Plot.render ~width:30 ~height:8 sample_panel in
  check_bool "mentions series glyphs" true
    (String.contains rendered '*' && String.contains rendered 'o');
  check_bool "has legend" true
    (String.length rendered > 0
    &&
    let lines = String.split_on_char '\n' rendered in
    List.exists (fun l -> l = "  * = a") lines);
  let empty =
    Plot.render { Experiment.name = "e"; x_label = "x"; y_label = "y"; series = [] }
  in
  check_bool "empty panel placeholder" true (empty = "(no data for e)\n")

(* --- Ablations ------------------------------------------------------------------------ *)

let test_ablation_member_position () =
  let panel =
    Ablations.member_position ~settings:tiny ~capacities:[ 200 ] Agg_workload.Profile.server
  in
  check_int "three series" 3 (List.length panel.Experiment.series);
  (* both insertion positions must beat plain LRU on the server workload *)
  let v label =
    match Experiment.series_value (series_named panel label) 200.0 with
    | Some v -> v
    | None -> Alcotest.fail "missing"
  in
  check_bool "tail beats lru" true (v "g5-tail" < v "lru");
  check_bool "head beats lru" true (v "g5-head" < v "lru")

let test_ablation_metadata_policy () =
  let panel =
    Ablations.metadata_policy ~settings:tiny ~capacities:[ 200 ] Agg_workload.Profile.server
  in
  check_int "two series" 2 (List.length panel.Experiment.series)

let test_ablation_successor_capacity () =
  let panel =
    Ablations.successor_capacity ~settings:tiny ~capacities:[ 1; 8 ] Agg_workload.Profile.server
  in
  match (List.hd panel.Experiment.series).Experiment.points with
  | [ (_, one); (_, eight) ] ->
      check_bool "more metadata never hurts much" true (eight <= one *. 1.1)
  | _ -> Alcotest.fail "expected two points"

let test_ablation_baselines () =
  let panel = Ablations.baselines ~settings:tiny ~capacities:[ 200 ] Agg_workload.Profile.server in
  check_int "four series" 4 (List.length panel.Experiment.series)

let test_ablation_cooperative () =
  let panel =
    Ablations.cooperative ~settings:tiny ~filter_capacities:[ 100 ] Agg_workload.Profile.server
  in
  check_int "two series" 2 (List.length panel.Experiment.series)

let test_predictor_accuracy_table () =
  let table = Ablations.predictor_accuracy ~settings:tiny () in
  check_bool "renders" true (String.length (Agg_util.Table.render table) > 0)

let test_ablation_second_level_policies () =
  let panel =
    Ablations.second_level_policies ~settings:tiny ~filter_capacities:[ 400 ]
      Agg_workload.Profile.server
  in
  check_int "seven series" 7 (List.length panel.Experiment.series);
  let at label =
    match Experiment.series_value (series_named panel label) 400.0 with
    | Some v -> v
    | None -> Alcotest.fail "missing point"
  in
  (* grouping must beat every plain policy, including MQ, at a filter
     larger than the server capacity *)
  List.iter
    (fun label -> check_bool ("agg-g5 beats " ^ label) true (at "agg-g5" > at label))
    [ "lru"; "lfu"; "mq"; "slru"; "2q"; "arc" ]

let test_ablation_sequence_model () =
  let table = Ablations.sequence_model ~settings:tiny ~lengths:[ 1; 2 ] () in
  check_bool "renders" true (String.length (Agg_util.Table.render table) > 0)

let test_ablation_placement () =
  let table = Ablations.placement ~settings:tiny Agg_workload.Profile.server in
  check_bool "renders" true (String.length (Agg_util.Table.render table) > 0)

let test_ablation_overlap_vs_partition () =
  let table = Ablations.overlap_vs_partition ~settings:tiny Agg_workload.Profile.server in
  check_bool "renders" true (String.length (Agg_util.Table.render table) > 0)

let test_ablation_adaptive_group () =
  let table = Ablations.adaptive_group ~settings:tiny () in
  check_bool "renders" true (String.length (Agg_util.Table.render table) > 0)

(* --- Runner API & resilience sweep -------------------------------------- *)

let test_runner_scope_inert () =
  (* a runner carrying a full scope must render byte-identically to the
     scopeless default, while its profiler observes every sweep cell *)
  let plain = Experiment.render_figure (Fig3.run (Experiment.Runner.create ~settings:tiny ())) in
  let recorder = Agg_obs.Span.recorder () in
  let instrumented =
    Experiment.render_figure
      (Fig3.run
         (Experiment.Runner.create
            ~scope:(Agg_obs.Scope.create ~profiler:recorder ())
            ~settings:tiny ()))
  in
  Alcotest.(check string) "scope leaves the figure unchanged" plain instrumented;
  check_bool "profiler timed the sweep cells" true (Agg_obs.Span.count recorder > 0)

let test_resilience_sweep_jobs_determinism () =
  let sweep jobs =
    Resilience.sweep ~loss_rates:[ 0.0; 0.1 ]
      (Experiment.Runner.create ~settings:{ tiny with Experiment.jobs } ())
  in
  check_bool "sweep points identical at jobs=1 and jobs=4" true (sweep 1 = sweep 4)

let test_resilience_g5_beats_lru () =
  let runner = Experiment.Runner.create ~settings:tiny () in
  let points = Resilience.sweep ~loss_rates:[ 0.1 ] runner in
  (match Resilience.hit_rate_advantage ~loss_rate:0.1 points with
  | None -> Alcotest.fail "both schemes expected in the sweep"
  | Some d -> check_bool "g5 retains a higher hit rate under 10% loss" true (d > 0.0));
  let fig = Resilience.run ~loss_rates:[ 0.0; 0.1 ] runner in
  check_int "two panels (hit rate, latency)" 2 (List.length fig.Experiment.panels)

let () =
  Alcotest.run "agg_sim"
    [
      ( "experiment",
        [
          Alcotest.test_case "series_value" `Quick test_series_value;
          Alcotest.test_case "panel table" `Quick test_panel_table_renders;
        ] );
      ( "trace-store",
        [
          Alcotest.test_case "sharing" `Quick test_trace_store_sharing;
          Alcotest.test_case "files fast path" `Quick test_trace_store_files_fast_path;
          Alcotest.test_case "concurrent get" `Quick test_trace_store_concurrent;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig3 jobs=1 vs jobs=4" `Quick test_jobs_determinism;
        ] );
      ( "fig3",
        [
          Alcotest.test_case "shape" `Quick test_fig3_shape;
          Alcotest.test_case "grouping never worse" `Quick test_fig3_grouping_never_worse;
          Alcotest.test_case "monotone in capacity" `Quick test_fig3_fetches_decrease_with_capacity;
        ] );
      ( "fig4",
        [
          Alcotest.test_case "shape" `Quick test_fig4_shape;
          Alcotest.test_case "aggregating resilient" `Quick test_fig4_aggregating_resilient;
        ] );
      ( "fig5",
        [
          Alcotest.test_case "probabilities valid" `Quick test_fig5_probabilities_valid;
          Alcotest.test_case "oracle lower bound" `Quick test_fig5_oracle_lower_bound;
          Alcotest.test_case "more successors help" `Quick test_fig5_more_successors_help;
          Alcotest.test_case "direct miss probability" `Quick test_fig5_direct_miss_probability;
        ] );
      ( "fig7-fig8",
        [
          Alcotest.test_case "fig7 shape" `Quick test_fig7_shape;
          Alcotest.test_case "fig8 shape" `Quick test_fig8_shape;
        ] );
      ( "runner-resilience",
        [
          Alcotest.test_case "scope-carrying runner inert" `Quick test_runner_scope_inert;
          Alcotest.test_case "sweep jobs=1 vs jobs=4" `Quick
            test_resilience_sweep_jobs_determinism;
          Alcotest.test_case "g5 beats lru under loss" `Quick test_resilience_g5_beats_lru;
        ] );
      ( "weighted",
        [ Alcotest.test_case "sweep cells and verdicts" `Quick test_weighted_sweep_shape ] );
      ( "summary-report",
        [
          Alcotest.test_case "client rows" `Quick test_summary_client_rows;
          Alcotest.test_case "server rows" `Quick test_summary_server_rows;
          Alcotest.test_case "improvement edge cases" `Quick test_summary_improvement_edge_cases;
          Alcotest.test_case "report checks" `Slow test_report_checks_structure;
        ] );
      ( "export-plot",
        [
          Alcotest.test_case "csv shape" `Quick test_export_csv_shape;
          Alcotest.test_case "write figure" `Quick test_export_write_figure;
          Alcotest.test_case "plot renders" `Quick test_plot_renders;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "member position" `Quick test_ablation_member_position;
          Alcotest.test_case "metadata policy" `Quick test_ablation_metadata_policy;
          Alcotest.test_case "successor capacity" `Quick test_ablation_successor_capacity;
          Alcotest.test_case "baselines" `Quick test_ablation_baselines;
          Alcotest.test_case "cooperative" `Quick test_ablation_cooperative;
          Alcotest.test_case "predictor accuracy" `Quick test_predictor_accuracy_table;
          Alcotest.test_case "second-level policies" `Quick test_ablation_second_level_policies;
          Alcotest.test_case "sequence model" `Quick test_ablation_sequence_model;
          Alcotest.test_case "placement" `Quick test_ablation_placement;
          Alcotest.test_case "overlap vs partition" `Quick test_ablation_overlap_vs_partition;
          Alcotest.test_case "adaptive group" `Quick test_ablation_adaptive_group;
        ] );
    ]
