(* Tests for the paper's core contribution: configuration, group
   construction, and the aggregating client and server caches. The
   strongest invariant — an aggregating cache with group size 1 is
   *exactly* a plain demand cache — is checked both on crafted traces and
   on generated workloads. *)

open Agg_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_list = Alcotest.(check (list int))

(* --- Config -------------------------------------------------------------- *)

let test_config_defaults () =
  let c = Config.default in
  check_int "group size" 5 c.Config.group_size;
  check_int "successor capacity" 8 c.Config.successor_capacity;
  check_bool "recency metadata" true (c.Config.metadata_policy = Agg_successor.Successor_list.Recency);
  check_bool "tail members" true (c.Config.member_position = Config.Tail);
  Config.validate c

let test_config_validation () =
  Alcotest.check_raises "group 0" (Invalid_argument "Config: group_size must be positive")
    (fun () -> ignore (Config.with_group_size 0 Config.default));
  Alcotest.check_raises "succ cap 0"
    (Invalid_argument "Config: successor_capacity must be positive") (fun () ->
      Config.validate { Config.default with successor_capacity = 0 })

(* --- Group_builder --------------------------------------------------------- *)

let tracker_of_runs runs =
  let t = Agg_successor.Tracker.create () in
  List.iter (fun run -> List.iter (fun f -> Agg_successor.Tracker.observe t f) run) runs;
  t

let test_builder_group_of_one () =
  let t = tracker_of_runs [ [ 1; 2; 3 ] ] in
  check_list "just the file" [ 1 ] (Group_builder.build t ~group_size:1 1)

let test_builder_small_groups_use_immediate () =
  (* 1 is followed by 2 (older) and 9 (most recent): recency ranks 9 first *)
  let t = tracker_of_runs [ [ 1; 2 ]; [ 1; 9 ] ] in
  check_list "g2 takes most recent" [ 1; 9 ] (Group_builder.build t ~group_size:2 1);
  check_list "g3 takes both" [ 1; 9; 2 ] (Group_builder.build t ~group_size:3 1)

let test_builder_large_groups_chain () =
  let t = tracker_of_runs [ [ 1; 2; 3; 4; 5; 6 ] ] in
  check_list "transitive chain" [ 1; 2; 3; 4; 5 ] (Group_builder.build t ~group_size:5 1)

let test_builder_chain_fallback () =
  (* chain 1 -> 2 -> 3 stalls at 3 (no successor); the builder falls back
     to the next-ranked successor of a chain member *)
  let t = tracker_of_runs [ [ 1; 7 ]; [ 1; 2; 3 ] ] in
  (* successors: 1 -> [2 (recent); 7], 2 -> [3] *)
  let group = Group_builder.build t ~group_size:5 1 in
  check_bool "contains chain" true (List.mem 2 group && List.mem 3 group);
  check_bool "fallback picks 7" true (List.mem 7 group)

let test_builder_no_metadata () =
  let t = Agg_successor.Tracker.create () in
  check_list "unknown file alone" [ 42 ] (Group_builder.build t ~group_size:5 42)

let test_builder_never_duplicates () =
  let t = tracker_of_runs [ [ 1; 2; 1; 2; 1; 3 ] ] in
  let group = Group_builder.build t ~group_size:6 1 in
  check_int "no duplicates" (List.length group) (List.length (List.sort_uniq compare group));
  check_bool "requested not repeated" true (List.length (List.filter (( = ) 1) group) = 1)

let test_builder_invalid () =
  let t = Agg_successor.Tracker.create () in
  Alcotest.check_raises "size 0"
    (Invalid_argument "Group_builder.build: group_size must be positive") (fun () ->
      ignore (Group_builder.build t ~group_size:0 1))

(* --- Client_cache ------------------------------------------------------------ *)

let run_client ?(config = Config.default) ~capacity files =
  let cache = Client_cache.create ~config ~capacity () in
  Array.iter (fun f -> ignore (Client_cache.access cache f)) files;
  Client_cache.metrics cache

let lru_misses ~capacity files =
  let cache = Agg_cache.Cache.create Agg_cache.Cache.Lru ~capacity in
  Array.fold_left (fun acc f -> if Agg_cache.Cache.access cache f then acc else acc + 1) 0 files

let test_client_g1_equals_lru_crafted () =
  let files = [| 1; 2; 3; 1; 2; 4; 1; 5; 2; 3 |] in
  let config = Config.with_group_size 1 Config.default in
  let m = run_client ~config ~capacity:3 files in
  check_int "demand fetches equal lru misses" (lru_misses ~capacity:3 files) m.Metrics.demand_fetches;
  check_int "no prefetches" 0 m.Metrics.prefetch.Metrics.issued

let test_client_g1_equals_lru_generated () =
  let files = Agg_workload.Generator.generate_files ~seed:3 ~events:8000 Agg_workload.Profile.server in
  List.iter
    (fun capacity ->
      let config = Config.with_group_size 1 Config.default in
      let m = run_client ~config ~capacity files in
      check_int
        (Printf.sprintf "capacity %d" capacity)
        (lru_misses ~capacity files) m.Metrics.demand_fetches)
    [ 10; 50; 200 ]

let test_client_metric_identities () =
  let files = Agg_workload.Generator.generate_files ~seed:5 ~events:5000 Agg_workload.Profile.server in
  let m = run_client ~capacity:200 files in
  check_int "accesses" (Array.length files) m.Metrics.accesses;
  check_int "hits+fetches" m.Metrics.accesses (m.Metrics.hits + m.Metrics.demand_fetches);
  check_bool "used <= issued" true
    (m.Metrics.prefetch.Metrics.used <= m.Metrics.prefetch.Metrics.issued);
  check_bool "evicted_unused <= issued" true
    (m.Metrics.prefetch.Metrics.evicted_unused <= m.Metrics.prefetch.Metrics.issued)

let test_metrics_zero_access_edge_cases () =
  (* the divide-by-zero corner: a run that never happened must print as
     clean zeros, never nan/inf (satellite of the obs instrumentation PR) *)
  let prefetch = { Metrics.issued = 0; used = 0; evicted_unused = 0 } in
  let client = { Metrics.accesses = 0; hits = 0; demand_fetches = 0; prefetch } in
  let server =
    {
      Metrics.client_accesses = 0;
      server_requests = 0;
      server_hits = 0;
      store_fetches = 0;
      prefetch;
    }
  in
  check_bool "utilisation 0/0 = 0" true (Metrics.prefetch_utilisation prefetch = 0.0);
  check_bool "client hit rate 0/0 = 0" true (Metrics.client_hit_rate client = 0.0);
  check_bool "server hit rate 0/0 = 0" true (Metrics.server_hit_rate server = 0.0);
  let clean s =
    let has needle =
      let n = String.length needle and h = String.length s in
      let rec loop i = i + n <= h && (String.sub s i n = needle || loop (i + 1)) in
      loop 0
    in
    (not (has "nan")) && not (has "inf")
  in
  check_bool "pp_client prints no nan/inf" true
    (clean (Format.asprintf "%a" Metrics.pp_client client));
  check_bool "pp_server prints no nan/inf" true
    (clean (Format.asprintf "%a" Metrics.pp_server server))

let test_client_grouping_helps_on_runs () =
  (* a strongly sequential workload: grouping must cut demand fetches *)
  let prng = Agg_util.Prng.create ~seed:1 () in
  let trace = Agg_trace.Trace.create () in
  for _ = 1 to 3000 do
    let task = Agg_util.Prng.int prng 50 in
    for i = 0 to 7 do
      Agg_trace.Trace.add_access trace ((task * 8) + i)
    done
  done;
  let files = Agg_trace.Trace.files trace in
  let lru = (run_client ~config:(Config.with_group_size 1 Config.default) ~capacity:64 files).Metrics.demand_fetches in
  let g5 = (run_client ~capacity:64 files).Metrics.demand_fetches in
  check_bool "g5 reduces fetches by at least 40%" true (float_of_int g5 < 0.6 *. float_of_int lru)

let test_client_prefetch_accounting_on_perfect_sequence () =
  (* deterministic cycle through twice the cache capacity: misses keep
     occurring, and every speculative member is demanded before eviction *)
  let files = Array.init 1000 (fun i -> i mod 10) in
  let m = run_client ~capacity:5 files in
  check_bool "some prefetches issued" true (m.Metrics.prefetch.Metrics.issued > 0);
  check_bool "all used (nothing evicted unused)" true
    (m.Metrics.prefetch.Metrics.evicted_unused = 0)

let test_client_head_position_also_works () =
  let files = Agg_workload.Generator.generate_files ~seed:5 ~events:5000 Agg_workload.Profile.server in
  let config = { Config.default with member_position = Config.Head } in
  let m = run_client ~config ~capacity:300 files in
  let lru = lru_misses ~capacity:300 files in
  check_bool "head insertion still beats lru" true (m.Metrics.demand_fetches < lru)

let test_client_run_accumulates () =
  let cache = Client_cache.create ~capacity:10 () in
  let t = Agg_trace.Trace.of_files [ 1; 2; 3 ] in
  let m1 = Client_cache.run cache t in
  let m2 = Client_cache.run cache t in
  check_int "first pass" 3 m1.Metrics.accesses;
  check_int "accumulated" 6 m2.Metrics.accesses

let test_client_resident_probe () =
  let cache = Client_cache.create ~capacity:10 () in
  ignore (Client_cache.access cache 1);
  check_bool "resident" true (Client_cache.resident cache 1);
  check_bool "absent" false (Client_cache.resident cache 2)

(* --- Adaptive_client ---------------------------------------------------------- *)

let test_adaptive_grows_on_predictable_workload () =
  (* long deterministic runs: speculation always pays, so the controller
     should push the group size to its maximum *)
  let prng = Agg_util.Prng.create ~seed:2 () in
  let trace = Agg_trace.Trace.create () in
  for _ = 1 to 4000 do
    let task = Agg_util.Prng.int prng 60 in
    for i = 0 to 9 do
      Agg_trace.Trace.add_access trace ((task * 10) + i)
    done
  done;
  let adaptive = Adaptive_client.create ~min_group:1 ~max_group:8 ~window:100 ~capacity:80 () in
  ignore (Adaptive_client.run adaptive trace);
  check_int "converges to max" 8 (Adaptive_client.current_group_size adaptive)

let test_adaptive_shrinks_on_random_workload () =
  let prng = Agg_util.Prng.create ~seed:3 () in
  let files = Array.init 30000 (fun _ -> Agg_util.Prng.int prng 50000) in
  let adaptive = Adaptive_client.create ~min_group:1 ~max_group:8 ~window:100 ~capacity:100 () in
  Array.iter (fun f -> ignore (Adaptive_client.access adaptive f)) files;
  (* pure noise: prefetches never get used, so the group shrinks to 1 *)
  check_int "converges to min" 1 (Adaptive_client.current_group_size adaptive)

let test_adaptive_respects_bounds () =
  let files = Agg_workload.Generator.generate_files ~seed:4 ~events:10000 Agg_workload.Profile.server in
  let adaptive = Adaptive_client.create ~min_group:2 ~max_group:4 ~window:50 ~capacity:200 () in
  Array.iter (fun f -> ignore (Adaptive_client.access adaptive f)) files;
  List.iter
    (fun (_, g) -> check_bool "within bounds" true (g >= 2 && g <= 4))
    (Adaptive_client.trajectory adaptive);
  let g = Adaptive_client.current_group_size adaptive in
  check_bool "final within bounds" true (g >= 2 && g <= 4)

let test_adaptive_fixed_when_range_degenerate () =
  let files = Agg_workload.Generator.generate_files ~seed:4 ~events:5000 Agg_workload.Profile.server in
  let adaptive = Adaptive_client.create ~min_group:5 ~max_group:5 ~capacity:200 () in
  Array.iter (fun f -> ignore (Adaptive_client.access adaptive f)) files;
  check_int "never moves" 5 (Adaptive_client.current_group_size adaptive);
  check_int "no adaptations" 0 (List.length (Adaptive_client.trajectory adaptive))

let test_adaptive_validation () =
  Alcotest.check_raises "inverted range"
    (Invalid_argument "Adaptive_client.create: need 0 < min_group <= max_group") (fun () ->
      ignore (Adaptive_client.create ~min_group:5 ~max_group:2 ~capacity:10 ()));
  Alcotest.check_raises "bad window"
    (Invalid_argument "Adaptive_client.create: window must be positive") (fun () ->
      ignore (Adaptive_client.create ~window:0 ~capacity:10 ()))

let test_set_group_size () =
  let cache = Client_cache.create ~capacity:10 () in
  check_int "initial" 5 (Client_cache.group_size cache);
  Client_cache.set_group_size cache 2;
  check_int "updated" 2 (Client_cache.group_size cache);
  Alcotest.check_raises "invalid"
    (Invalid_argument "Client_cache.set_group_size: group size must be positive") (fun () ->
      Client_cache.set_group_size cache 0)

(* --- Server_cache ------------------------------------------------------------- *)

let server_trace () =
  Agg_workload.Generator.generate ~seed:7 ~events:8000 Agg_workload.Profile.server

let test_server_plain_lru_matches_multilevel () =
  let trace = server_trace () in
  let sim =
    Server_cache.create ~filter_kind:Agg_cache.Cache.Lru ~filter_capacity:100 ~server_capacity:50
      ~scheme:(Server_cache.Plain Agg_cache.Cache.Lru) ()
  in
  let m = Server_cache.run sim trace in
  (* reference: explicit two-level composition *)
  let ml =
    Agg_cache.Multilevel.create
      ~client:(Agg_cache.Cache.create Agg_cache.Cache.Lru ~capacity:100)
      ~server:(Agg_cache.Cache.create Agg_cache.Cache.Lru ~capacity:50)
  in
  let server_hits = ref 0 and server_requests = ref 0 in
  Agg_trace.Trace.iter
    (fun (e : Agg_trace.Event.t) ->
      match Agg_cache.Multilevel.access ml e.Agg_trace.Event.file with
      | Agg_cache.Multilevel.Client_hit -> ()
      | Agg_cache.Multilevel.Server_hit ->
          incr server_hits;
          incr server_requests
      | Agg_cache.Multilevel.Server_miss -> incr server_requests)
    trace;
  check_int "requests match" !server_requests m.Metrics.server_requests;
  check_int "hits match" !server_hits m.Metrics.server_hits

let test_server_metric_identities () =
  let trace = server_trace () in
  let sim =
    Server_cache.create ~filter_kind:Agg_cache.Cache.Lru ~filter_capacity:150 ~server_capacity:100
      ~scheme:(Server_cache.Aggregating Config.default) ()
  in
  let m = Server_cache.run sim trace in
  check_int "client accesses" (Agg_trace.Trace.length trace) m.Metrics.client_accesses;
  check_bool "requests <= accesses" true (m.Metrics.server_requests <= m.Metrics.client_accesses);
  check_bool "hits <= requests" true (m.Metrics.server_hits <= m.Metrics.server_requests);
  check_bool "store fetches >= misses" true
    (m.Metrics.store_fetches >= m.Metrics.server_requests - m.Metrics.server_hits)

let test_server_aggregating_beats_plain_under_filtering () =
  let trace = server_trace () in
  let hit_rate scheme =
    let sim =
      Server_cache.create ~filter_kind:Agg_cache.Cache.Lru ~filter_capacity:400 ~server_capacity:300
        ~scheme ()
    in
    Metrics.server_hit_rate (Server_cache.run sim trace)
  in
  let agg = hit_rate (Server_cache.Aggregating Config.default) in
  let plain = hit_rate (Server_cache.Plain Agg_cache.Cache.Lru) in
  check_bool "aggregating much better than lru when filter >= server" true (agg > plain +. 0.1)

let test_server_outcomes () =
  let sim =
    Server_cache.create ~filter_kind:Agg_cache.Cache.Lru ~filter_capacity:1 ~server_capacity:4
      ~scheme:(Server_cache.Plain Agg_cache.Cache.Lru) ()
  in
  check_bool "cold miss" true (Server_cache.access sim 1 = Server_cache.Server_miss);
  check_bool "client hit" true (Server_cache.access sim 1 = Server_cache.Client_hit);
  ignore (Server_cache.access sim 2);
  (* 1 falls out of the 1-entry client; server still has it *)
  check_bool "server hit" true (Server_cache.access sim 1 = Server_cache.Server_hit)

let test_server_cooperative_metadata () =
  (* with a filter big enough to absorb repeats, a non-cooperative server
     never learns successions (few misses), while a cooperative one sees
     every access; on a cyclic workload cooperation must not hurt *)
  let trace = Agg_trace.Trace.of_files (List.concat (List.init 200 (fun _ -> [ 1; 2; 3; 4; 5 ]))) in
  let rate cooperative =
    let sim =
      Server_cache.create ~cooperative ~filter_kind:Agg_cache.Cache.Lru ~filter_capacity:3
        ~server_capacity:4 ~scheme:(Server_cache.Aggregating Config.default) ()
    in
    Metrics.server_hit_rate (Server_cache.run sim trace)
  in
  check_bool "cooperative at least as good" true (rate true >= rate false -. 1e-9)

(* --- qcheck properties ------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  let files_gen = list_of_size (Gen.int_range 20 400) (int_range 0 40) in
  [
    Test.make ~name:"g=1 aggregating cache is exactly LRU" ~count:80
      (pair files_gen (int_range 1 20))
      (fun (files, capacity) ->
        let files = Array.of_list files in
        let config = Config.with_group_size 1 Config.default in
        let m = run_client ~config ~capacity files in
        m.Metrics.demand_fetches = lru_misses ~capacity files
        && m.Metrics.prefetch.Metrics.issued = 0);
    Test.make ~name:"group builder output bounded, unique, anchored" ~count:80
      (pair files_gen (int_range 1 10))
      (fun (files, size) ->
        let t = Agg_successor.Tracker.create () in
        List.iter (fun f -> Agg_successor.Tracker.observe t f) files;
        List.for_all
          (fun root ->
            match Group_builder.build t ~group_size:size root with
            | anchor :: rest ->
                anchor = root
                && List.length rest <= size - 1
                && (not (List.mem root rest))
                && List.length (List.sort_uniq compare rest) = List.length rest
            | [] -> false)
          (List.sort_uniq compare files));
    Test.make ~name:"client metrics identities hold on random traces" ~count:60
      (pair files_gen (int_range 2 20))
      (fun (files, capacity) ->
        let files = Array.of_list files in
        let m = run_client ~capacity files in
        m.Metrics.accesses = Array.length files
        && m.Metrics.hits + m.Metrics.demand_fetches = m.Metrics.accesses
        && m.Metrics.prefetch.Metrics.used + m.Metrics.prefetch.Metrics.evicted_unused
           <= m.Metrics.prefetch.Metrics.issued);
  ]

let () =
  Alcotest.run "agg_core"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "validation" `Quick test_config_validation;
        ] );
      ( "group_builder",
        [
          Alcotest.test_case "group of one" `Quick test_builder_group_of_one;
          Alcotest.test_case "small groups immediate" `Quick test_builder_small_groups_use_immediate;
          Alcotest.test_case "large groups chain" `Quick test_builder_large_groups_chain;
          Alcotest.test_case "chain fallback" `Quick test_builder_chain_fallback;
          Alcotest.test_case "no metadata" `Quick test_builder_no_metadata;
          Alcotest.test_case "never duplicates" `Quick test_builder_never_duplicates;
          Alcotest.test_case "invalid size" `Quick test_builder_invalid;
        ] );
      ( "client_cache",
        [
          Alcotest.test_case "g1 = lru (crafted)" `Quick test_client_g1_equals_lru_crafted;
          Alcotest.test_case "g1 = lru (generated)" `Quick test_client_g1_equals_lru_generated;
          Alcotest.test_case "metric identities" `Quick test_client_metric_identities;
          Alcotest.test_case "zero-access printing" `Quick test_metrics_zero_access_edge_cases;
          Alcotest.test_case "grouping helps on runs" `Quick test_client_grouping_helps_on_runs;
          Alcotest.test_case "perfect sequence accounting" `Quick
            test_client_prefetch_accounting_on_perfect_sequence;
          Alcotest.test_case "head position" `Quick test_client_head_position_also_works;
          Alcotest.test_case "run accumulates" `Quick test_client_run_accumulates;
          Alcotest.test_case "resident probe" `Quick test_client_resident_probe;
        ] );
      ( "adaptive_client",
        [
          Alcotest.test_case "grows on predictable workload" `Quick
            test_adaptive_grows_on_predictable_workload;
          Alcotest.test_case "shrinks on random workload" `Quick
            test_adaptive_shrinks_on_random_workload;
          Alcotest.test_case "respects bounds" `Quick test_adaptive_respects_bounds;
          Alcotest.test_case "degenerate range is fixed" `Quick
            test_adaptive_fixed_when_range_degenerate;
          Alcotest.test_case "validation" `Quick test_adaptive_validation;
          Alcotest.test_case "set_group_size" `Quick test_set_group_size;
        ] );
      ( "server_cache",
        [
          Alcotest.test_case "plain lru matches multilevel" `Quick
            test_server_plain_lru_matches_multilevel;
          Alcotest.test_case "metric identities" `Quick test_server_metric_identities;
          Alcotest.test_case "aggregating beats plain" `Quick
            test_server_aggregating_beats_plain_under_filtering;
          Alcotest.test_case "outcomes" `Quick test_server_outcomes;
          Alcotest.test_case "cooperative metadata" `Quick test_server_cooperative_metadata;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
