(* Tests for the end-to-end path simulator: cost arithmetic, accounting
   identities, and the latency orderings the deployments must satisfy. *)

open Agg_system

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let test_cost_model_arithmetic () =
  let c = Cost_model.lan in
  check_float "memory-served fetch" (0.5 +. 0.05 +. 0.2)
    (Cost_model.demand_fetch_latency c ~served_from_disk:false);
  check_float "disk-served fetch" (0.5 +. 8.0 +. 0.2)
    (Cost_model.demand_fetch_latency c ~served_from_disk:true);
  check_bool "wan slower" true
    (Cost_model.demand_fetch_latency Cost_model.wan ~served_from_disk:false
    > Cost_model.demand_fetch_latency Cost_model.lan ~served_from_disk:false)

let small_config deployment =
  Path.with_deployment ~group_size:3 deployment
    { Path.default_config with Path.client_capacity = 4; server_capacity = 8 }

let test_baseline_crafted_latencies () =
  (* capacity 4 client: 1 2 3 1 2 -> misses 1,2,3 then hits 1,2 *)
  let trace = Agg_trace.Trace.of_files [ 1; 2; 3; 1; 2 ] in
  let r = Path.run (small_config `Baseline) trace in
  check_int "accesses" 5 r.Path.accesses;
  check_int "client hits" 2 r.Path.client_hits;
  check_int "rtts" 3 r.Path.round_trips;
  check_int "disk reads (cold server)" 3 r.Path.disk_reads;
  check_int "one file per rtt" 3 r.Path.files_transferred;
  let expect_mean =
    ((3.0 *. Cost_model.demand_fetch_latency Cost_model.lan ~served_from_disk:true)
    +. (2.0 *. Cost_model.lan.Cost_model.client_memory))
    /. 5.0
  in
  check_float "mean latency" expect_mean r.Path.mean_latency

let test_accounting_identities () =
  let trace =
    Agg_workload.Generator.generate ~seed:5 ~events:8000 Agg_workload.Profile.workstation
  in
  List.iter
    (fun deployment ->
      let r = Path.run (Path.with_deployment deployment Path.default_config) trace in
      check_int "accesses = trace" (Agg_trace.Trace.length trace) r.Path.accesses;
      check_int "rtts = client misses" (r.Path.accesses - r.Path.client_hits) r.Path.round_trips;
      check_bool "transferred >= rtts" true (r.Path.files_transferred >= r.Path.round_trips);
      check_bool "server hits <= rtts" true (r.Path.server_hits <= r.Path.round_trips);
      check_bool "latency ordering" true
        (r.Path.mean_latency <= r.Path.p95_latency && r.Path.p95_latency <= r.Path.p99_latency))
    [ `Baseline; `Aggregating_client; `Aggregating_both ]

let test_baseline_transfers_one_per_rtt () =
  let trace =
    Agg_workload.Generator.generate ~seed:5 ~events:5000 Agg_workload.Profile.server
  in
  let r = Path.run (Path.with_deployment `Baseline Path.default_config) trace in
  check_int "baseline sends exactly one file per round trip" r.Path.round_trips
    r.Path.files_transferred

let test_aggregation_cuts_latency_on_predictable_workload () =
  let trace =
    Agg_workload.Generator.generate ~seed:7 ~events:15_000 Agg_workload.Profile.server
  in
  let run deployment = Path.run (Path.with_deployment deployment Path.default_config) trace in
  let baseline = run `Baseline in
  let agg = run `Aggregating_client in
  let both = run `Aggregating_both in
  check_bool "fewer round trips" true (agg.Path.round_trips < baseline.Path.round_trips);
  check_bool "lower mean latency" true (agg.Path.mean_latency < baseline.Path.mean_latency);
  check_bool "bandwidth is the price" true
    (agg.Path.files_transferred > baseline.Path.files_transferred);
  check_bool "server staging helps server hits" true (both.Path.server_hits >= agg.Path.server_hits)

let test_deployment_names () =
  Alcotest.(check string) "baseline" "baseline" (Path.deployment_name `Baseline);
  Alcotest.(check string) "client" "agg-client" (Path.deployment_name `Aggregating_client);
  Alcotest.(check string) "both" "agg-both" (Path.deployment_name `Aggregating_both)

let test_empty_trace () =
  let r = Path.run Path.default_config (Agg_trace.Trace.create ()) in
  check_int "no accesses" 0 r.Path.accesses;
  check_float "zero latency" 0.0 r.Path.mean_latency

(* --- Fleet ------------------------------------------------------------ *)

let fleet_config ?(clients = 2) ?(write_invalidation = true) () =
  {
    Fleet.default_config with
    Fleet.clients;
    client_capacity = 8;
    server_capacity = 16;
    write_invalidation;
  }

let test_fleet_accounting () =
  let trace = Agg_workload.Generator.generate ~seed:5 ~events:6000 Agg_workload.Profile.users in
  let r = Fleet.run (fleet_config ~clients:4 ()) trace in
  check_int "accesses" 6000 r.Fleet.accesses;
  check_int "requests = misses" (r.Fleet.accesses - r.Fleet.client_hits) r.Fleet.server_requests;
  check_bool "server hits <= requests" true (r.Fleet.server_hits <= r.Fleet.server_requests);
  check_int "four per-client rows" 4 (List.length r.Fleet.per_client_hit_rate)

let test_fleet_write_invalidation () =
  (* two clients ping-pong on one file: writes by client 1 must break
     client 0's cached copy, forcing it back to the server *)
  let trace = Agg_trace.Trace.create () in
  for _ = 1 to 20 do
    Agg_trace.Trace.add_access trace ~client:0 ~op:Agg_trace.Event.Open 7;
    Agg_trace.Trace.add_access trace ~client:1 ~op:Agg_trace.Event.Write 7
  done;
  let with_inv = Fleet.run (fleet_config ()) trace in
  let without_inv = Fleet.run (fleet_config ~write_invalidation:false ()) trace in
  check_bool "invalidations recorded" true (with_inv.Fleet.invalidations > 0);
  check_int "no invalidations when disabled" 0 without_inv.Fleet.invalidations;
  check_bool "coherence costs client hits" true
    (with_inv.Fleet.client_hits < without_inv.Fleet.client_hits)

let test_fleet_single_client_matches_many_ids () =
  (* clients = 1 folds every stream into one cache; ids beyond the fleet
     size wrap around instead of crashing *)
  let trace = Agg_workload.Generator.generate ~seed:5 ~events:3000 Agg_workload.Profile.users in
  let r = Fleet.run (fleet_config ~clients:1 ()) trace in
  check_int "all accesses in one client" 3000 r.Fleet.accesses;
  check_int "one row" 1 (List.length r.Fleet.per_client_hit_rate)

let test_fleet_aggregation_reduces_requests () =
  let trace = Agg_workload.Generator.generate ~seed:7 ~events:10_000 Agg_workload.Profile.server in
  let base =
    {
      Fleet.default_config with
      Fleet.clients = 1;
      client_capacity = 200;
      server_capacity = 300;
    }
  in
  let plain = Fleet.run { base with Fleet.client_scheme = Scheme.plain_lru } trace in
  let agg = Fleet.run base trace in
  check_bool "fewer server requests with grouping" true
    (agg.Fleet.server_requests < plain.Fleet.server_requests)

let test_fleet_invalid_clients () =
  Alcotest.check_raises "0 clients"
    (Invalid_argument "Fleet.run: clients must be positive (got 0)") (fun () ->
      ignore (Fleet.run { Fleet.default_config with Fleet.clients = 0 } (Agg_trace.Trace.create ())));
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Fleet.run: client_capacity must be positive (got -3)") (fun () ->
      ignore
        (Fleet.run
           { Fleet.default_config with Fleet.client_capacity = -3 }
           (Agg_trace.Trace.create ())))

let test_fleet_remap_clients () =
  let trace = Agg_trace.Trace.create () in
  Agg_trace.Trace.add_access trace ~client:0 1;
  Agg_trace.Trace.add_access trace ~client:5 2;
  Agg_trace.Trace.add_access trace ~client:7 3;
  let remapped = Fleet.remap_clients ~clients:3 trace in
  let ids =
    List.map (fun (e : Agg_trace.Event.t) -> e.Agg_trace.Event.client)
      (Agg_trace.Trace.to_events remapped)
  in
  Alcotest.(check (list int)) "ids folded mod 3" [ 0; 2; 1 ] ids;
  check_int "length preserved" 3 (Agg_trace.Trace.length remapped);
  Alcotest.check_raises "0 clients rejected"
    (Invalid_argument "Fleet.remap_clients: clients must be positive (got 0)") (fun () ->
      ignore (Fleet.remap_clients ~clients:0 trace))

(* --- telemetry: series + trace context -------------------------------- *)

let hostile_faults =
  {
    Agg_faults.Plan.none with
    Agg_faults.Plan.loss_rate = 0.1;
    outage_period = 2_000;
    outage_rate = 0.1;
    outage_length = 200;
    seed = 11;
  }

let test_path_series_reconciles () =
  let trace =
    Agg_workload.Generator.generate ~seed:7 ~events:8_000 Agg_workload.Profile.server
  in
  let series = Agg_obs.Series.create ~window:1_000 in
  let ctx = Agg_obs.Trace_ctx.create ~seed:7 () in
  let config =
    Path.with_deployment `Aggregating_both
      { Path.default_config with Path.faults = hostile_faults;
        scope = Some (Agg_obs.Scope.create ~series ~trace_ctx:ctx ()) }
  in
  let r = Path.run config trace in
  check_int "series accesses = run accesses" r.Path.accesses
    (Agg_obs.Series.total_accesses series);
  check_int "series hits = client hits" r.Path.client_hits (Agg_obs.Series.total_hits series);
  check_int "series degraded = fault counter"
    r.Path.faults.Agg_faults.Counters.degraded_fetches
    (Agg_obs.Series.total_degraded series);
  check_int "every access carries one latency sample" r.Path.accesses
    (Agg_obs.Histogram.count (Agg_obs.Series.total_latency series));
  (* the series' latency mass equals the run's mean within the per-access
     microsecond rounding *)
  let series_ms =
    float_of_int (Agg_obs.Histogram.sum (Agg_obs.Series.total_latency series)) /. 1000.0
  in
  let run_ms = r.Path.mean_latency *. float_of_int r.Path.accesses in
  check_bool "latency mass matches within rounding" true
    (Float.abs (series_ms -. run_ms) <= 0.0005 *. float_of_int r.Path.accesses);
  (* sample 1.0: every request committed, roots = accesses, and the
     attribution profile covers the phases the path actually took *)
  check_int "every request traced" r.Path.accesses (Agg_obs.Trace_ctx.sampled_requests ctx);
  let roots =
    List.length
      (List.filter (fun s -> s.Agg_obs.Trace_ctx.depth = 0) (Agg_obs.Trace_ctx.spans ctx))
  in
  check_int "one root span per request" r.Path.accesses roots;
  let cats = List.map fst (Agg_obs.Trace_ctx.attribution ctx) in
  check_bool "attribution names the fetch and timeout phases" true
    (List.mem "fetch" cats && List.mem "timeout" cats)

let test_path_telemetry_off_identity () =
  let trace =
    Agg_workload.Generator.generate ~seed:7 ~events:6_000 Agg_workload.Profile.server
  in
  let run ~telemetry =
    let base =
      Path.with_deployment `Aggregating_both
        { Path.default_config with Path.faults = hostile_faults }
    in
    let config =
      if telemetry then
        { base with
          Path.scope =
            Some
              (Agg_obs.Scope.create
                 ~series:(Agg_obs.Series.create ~window:500)
                 ~trace_ctx:(Agg_obs.Trace_ctx.create ~sample:0.5 ~seed:3 ())
                 ()) }
      else base
    in
    Path.run config trace
  in
  check_bool "instrumented run byte-identical to plain run" true
    (run ~telemetry:false = run ~telemetry:true)

let test_fleet_series_reconciles () =
  let trace = Agg_workload.Generator.generate ~seed:5 ~events:6_000 Agg_workload.Profile.users in
  let series = Agg_obs.Series.create ~window:1_000 in
  let config =
    { (fleet_config ~clients:3 ()) with Fleet.faults = hostile_faults;
      scope =
        Some
          (Agg_obs.Scope.create ~series
             ~trace_ctx:(Agg_obs.Trace_ctx.create ~seed:5 ())
             ()) }
  in
  let r = Fleet.run config trace in
  check_int "series accesses = run accesses" r.Fleet.accesses
    (Agg_obs.Series.total_accesses series);
  check_int "series hits = client hits" r.Fleet.client_hits (Agg_obs.Series.total_hits series);
  (* the fleet has no latency model: no samples may appear *)
  check_int "no latency samples on a fleet" 0
    (Agg_obs.Histogram.count (Agg_obs.Series.total_latency series));
  (* per-"node" loads are per-client access counts: they sum to the run *)
  let load_sum = ref 0 in
  for w = 0 to Agg_obs.Series.windows series - 1 do
    List.iter (fun (_, c) -> load_sum := !load_sum + c) (Agg_obs.Series.node_loads series w)
  done;
  check_int "per-client loads sum to the accesses" r.Fleet.accesses !load_sum;
  let plain = Fleet.run { (fleet_config ~clients:3 ()) with Fleet.faults = hostile_faults } trace in
  check_bool "instrumented fleet run identical to plain" true (plain = r)

let qcheck_tests =
  let open QCheck in
  let files_gen = list_of_size (Gen.int_range 10 300) (int_range 0 30) in
  [
    Test.make ~name:"latency bounded by worst-case fetch" ~count:60 files_gen (fun files ->
        let trace = Agg_trace.Trace.of_files files in
        let r = Path.run (small_config `Aggregating_client) trace in
        let worst = Cost_model.demand_fetch_latency Cost_model.lan ~served_from_disk:true in
        r.Path.mean_latency >= Cost_model.lan.Cost_model.client_memory -. 1e-9
        && r.Path.p99_latency <= worst +. 1e-9);
    Test.make ~name:"client hits + rtts = accesses" ~count:60 files_gen (fun files ->
        let trace = Agg_trace.Trace.of_files files in
        let r = Path.run (small_config `Aggregating_both) trace in
        r.Path.client_hits + r.Path.round_trips = r.Path.accesses);
  ]

let () =
  Alcotest.run "agg_system"
    [
      ( "cost model",
        [ Alcotest.test_case "arithmetic" `Quick test_cost_model_arithmetic ] );
      ( "path",
        [
          Alcotest.test_case "baseline crafted latencies" `Quick test_baseline_crafted_latencies;
          Alcotest.test_case "accounting identities" `Quick test_accounting_identities;
          Alcotest.test_case "baseline one file per rtt" `Quick test_baseline_transfers_one_per_rtt;
          Alcotest.test_case "aggregation cuts latency" `Quick
            test_aggregation_cuts_latency_on_predictable_workload;
          Alcotest.test_case "deployment names" `Quick test_deployment_names;
          Alcotest.test_case "empty trace" `Quick test_empty_trace;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "accounting" `Quick test_fleet_accounting;
          Alcotest.test_case "write invalidation" `Quick test_fleet_write_invalidation;
          Alcotest.test_case "single client" `Quick test_fleet_single_client_matches_many_ids;
          Alcotest.test_case "aggregation reduces requests" `Quick
            test_fleet_aggregation_reduces_requests;
          Alcotest.test_case "invalid clients" `Quick test_fleet_invalid_clients;
          Alcotest.test_case "remap clients" `Quick test_fleet_remap_clients;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "path series reconciles" `Quick test_path_series_reconciles;
          Alcotest.test_case "telemetry off is byte-identical" `Quick
            test_path_telemetry_off_identity;
          Alcotest.test_case "fleet series reconciles" `Quick test_fleet_series_reconciles;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
