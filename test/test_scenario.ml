(* Tests for the declarative scenario engine: the strict text codec and
   its round-trip law, the executor's invariant checks, the corpus
   (which must stay green at CI size, with the known-bad entry failing),
   and the fuzz/shrink discipline pinned to an exact minimal scenario. *)

open Agg_scenario
module Plan = Agg_faults.Plan
module Cache = Agg_cache.Cache

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

(* The corpus directory: [../scenarios] from the test's cwd under
   `dune runtest` (_build/.../test), [scenarios] under `dune exec` from
   the project root. *)
let corpus_dir = if Sys.file_exists "../scenarios" then "../scenarios" else "scenarios"

let base =
  {
    Scenario.name = "crafted";
    workload = Scenario.Profile { profile = "workstation"; events = 2000; seed = 3 };
    topology = Scenario.Fleet { clients = 2; client_capacity = 100; server_capacity = 200 };
    faults = Plan.none;
    policies = [ Scenario.Plain Cache.Lru; Scenario.Group 5 ];
    invariants = Scenario.all_invariants;
    expectations = [];
    slos = [];
    expect_violation = false;
  }

(* --- codec --------------------------------------------------------------- *)

let roundtrip s =
  match Scenario.of_string (Scenario.to_string s) with
  | Ok s' -> s'
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg

let test_roundtrip_crafted () =
  let cluster =
    {
      base with
      Scenario.name = "crafted-cluster";
      topology =
        Scenario.Cluster
          {
            nodes = 5;
            replicas = 3;
            placement = Agg_cluster.Cluster.Replicated_with_group;
            ring_seed = 23;
            clients = 6;
            client_capacity = 150;
            node_capacity = 300;
            churn = [ (500, Agg_cluster.Cluster.Leave 2); (900, Agg_cluster.Cluster.Join 2) ];
          };
      faults = Plan.default;
      policies = [ Scenario.Plain Cache.Arc; Scenario.Group 1; Scenario.Group 10 ];
      expectations =
        [
          Scenario.Hit_rate_min { policy = Scenario.Group 10; percent = 12.5 };
          Scenario.Hit_rate_max { policy = Scenario.Plain Cache.Arc; percent = 99.0 };
        ];
      slos =
        [
          { Scenario.slo_metric = Scenario.Slo_hit_rate; slo_policy = Scenario.Group 10;
            slo_bound = `Min 12.5; slo_window = 1000; slo_after = 2000 };
          { Scenario.slo_metric = Scenario.Slo_degraded_rate;
            slo_policy = Scenario.Plain Cache.Arc; slo_bound = `Max 40.0; slo_window = 1000;
            slo_after = 0 };
        ];
      expect_violation = true;
    }
  in
  List.iter
    (fun s -> check_bool "round-trips" true (roundtrip s = s))
    [ base; cluster; { base with Scenario.topology = Scenario.Path { client_capacity = 10; server_capacity = 20 } } ]

let test_roundtrip_comments_skipped () =
  let text = Scenario.to_string base in
  let with_comments = "#scenario v1\n# a comment\n\n" ^ String.concat "\n" (List.tl (String.split_on_char '\n' text)) in
  match Scenario.of_string with_comments with
  | Ok s -> check_bool "comments and blanks ignored" true (s = base)
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let expect_error text fragment =
  match Scenario.of_string text with
  | Ok _ -> Alcotest.failf "expected a parse error containing %S" fragment
  | Error msg ->
      check_bool (Printf.sprintf "error %S contains %S" msg fragment) true
        (contains ~needle:fragment msg)

let test_codec_rejections () =
  let hdr = "#scenario v1\n" in
  let errors =
    [
      ("name x\n", "line 1: expected");
      (hdr ^ "bogus 1\n", "line 2: unknown line keyword \"bogus\"");
      (hdr ^ "workload profile name=server events=5 seed=1 extra=2\n", "unknown field \"extra\"");
      (hdr ^ "workload profile name=server events=5\n", "missing field \"seed\"");
      (hdr ^ "workload profile name=server events=five seed=1\n", "not an integer");
      (hdr ^ "workload profile name=server events=5 seed=1 events=6\n", "duplicate field \"events\"");
      (hdr ^ "workload profile junk\n", "expected key=value");
      (hdr ^ "topology ring x=1\n", "unknown topology \"ring\"");
      (hdr ^ "churn time=5 op=leave node=0\n", "churn is only valid after a cluster topology");
      (hdr ^ "policy turbo\n", "unknown policy \"turbo\"");
      (hdr ^ "invariant sorted\n", "unknown invariant \"sorted\"");
      (hdr ^ "expect hit_rate policy=lru min=1 max=2\n", "min or max, not both");
      (hdr ^ "slo\n", "slo needs a metric");
      (hdr ^ "slo tail policy=lru min=1 window=100\n", "unknown slo metric \"tail\"");
      (hdr ^ "slo hit_rate policy=lru min=1 max=2 window=100\n", "min or max, not both");
      (hdr ^ "slo hit_rate policy=lru window=100\n", "slo needs min= or max=");
      (hdr ^ "slo hit_rate policy=lru min=1\n", "missing field \"window\"");
      ( hdr ^ "name a\nname b\n", "line 3: duplicate name line" );
      ("", "line 1: expected");
    ]
  in
  List.iter (fun (text, fragment) -> expect_error text fragment) errors

let test_codec_missing_sections () =
  expect_error "#scenario v1\n" "missing name line";
  expect_error
    "#scenario v1\nname a\nworkload trace file=t.trc\ntopology path client_capacity=1 server_capacity=1\n"
    "missing policy line"

let test_load_file_errors () =
  (match Scenario.load_file (Filename.concat corpus_dir "no-such.scn") with
  | Ok _ -> Alcotest.fail "expected an error for a missing file"
  | Error msg -> check_bool "names the path" true (contains ~needle:"no-such.scn" msg));
  let bad = Filename.temp_file "scenario" ".scn" in
  Out_channel.with_open_text bad (fun oc -> output_string oc "#scenario v1\nname x\nnonsense\n");
  Fun.protect
    ~finally:(fun () -> Sys.remove bad)
    (fun () ->
      match Scenario.load_file bad with
      | Ok _ -> Alcotest.fail "expected an error for a corrupt file"
      | Error msg ->
          check_bool "names path and line" true
            (contains ~needle:bad msg
            && contains ~needle:"line 3" msg))

(* --- validate ------------------------------------------------------------- *)

let test_validate () =
  let raises what t =
    match Scenario.validate t with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.failf "validate accepted %s" what
  in
  Scenario.validate base;
  raises "empty policies" { base with Scenario.policies = [] };
  raises "duplicate policy"
    { base with Scenario.policies = [ Scenario.Group 5; Scenario.Group 5 ] };
  raises "duplicate invariant"
    { base with Scenario.invariants = [ Scenario.Conservation; Scenario.Conservation ] };
  raises "orphan expectation"
    { base with
      Scenario.expectations = [ Scenario.Hit_rate_min { policy = Scenario.Group 9; percent = 1.0 } ] };
  raises "percent out of range"
    { base with
      Scenario.expectations =
        [ Scenario.Hit_rate_min { policy = Scenario.Plain Cache.Lru; percent = 101.0 } ] };
  raises "bad fault plan" { base with Scenario.faults = { Plan.none with Plan.loss_rate = 1.5 } };
  raises "zero clients"
    { base with
      Scenario.topology = Scenario.Fleet { clients = 0; client_capacity = 1; server_capacity = 1 } };
  raises "bad name" { base with Scenario.name = "has space" };
  let slo ?(metric = Scenario.Slo_hit_rate) ?(policy = Scenario.Group 5)
      ?(bound = `Min 10.0) ?(window = 500) ?(after = 0) () =
    { Scenario.slo_metric = metric; slo_policy = policy; slo_bound = bound;
      slo_window = window; slo_after = after }
  in
  Scenario.validate { base with Scenario.slos = [ slo () ] };
  raises "duplicate slo" { base with Scenario.slos = [ slo (); slo () ] };
  raises "mixed slo windows"
    { base with Scenario.slos = [ slo (); slo ~metric:Scenario.Slo_degraded_rate ~window:1000 () ] };
  raises "non-positive slo window" { base with Scenario.slos = [ slo ~window:0 () ] };
  raises "negative slo after" { base with Scenario.slos = [ slo ~after:(-1) () ] };
  raises "slo rate bound out of range"
    { base with Scenario.slos = [ slo ~bound:(`Min 150.0) () ] };
  raises "orphan slo policy" { base with Scenario.slos = [ slo ~policy:(Scenario.Group 9) () ] };
  raises "p99 latency slo on a fleet"
    { base with Scenario.slos = [ slo ~metric:Scenario.Slo_p99_latency ~bound:(`Max 50.0) () ] };
  Scenario.validate
    { base with
      Scenario.topology = Scenario.Path { client_capacity = 100; server_capacity = 200 };
      slos = [ slo ~metric:Scenario.Slo_p99_latency ~bound:(`Max 50.0) () ] }

(* --- qcheck: codec round-trip over generated scenarios -------------------- *)

let gen_scenario =
  let open QCheck.Gen in
  let name_gen =
    let* n = int_range 1 12 in
    let* chars = list_size (return n) (oneofl [ 'a'; 'b'; 'z'; '0'; '7'; '-'; '_'; '.' ]) in
    return (String.init n (List.nth chars))
  in
  let policy_gen =
    oneof
      [
        map (fun k -> Scenario.Plain k) (oneofl Cache.all_kinds);
        map (fun g -> Scenario.Group g) (int_range 1 16);
      ]
  in
  let rate_gen =
    oneof
      [ oneofl [ 0.0; 0.1; 0.25; 0.5; 1.0 ]; map (fun n -> float_of_int n /. 997.0) (int_range 0 997) ]
  in
  let workload_gen =
    oneof
      [
        (let* profile = oneofl [ "workstation"; "users"; "write"; "server"; "scientific"; "streaming" ] in
         let* events = int_range 100 50_000 in
         let* seed = int_range 0 1_000_000 in
         return (Scenario.Profile { profile; events; seed }));
        map (fun f -> Scenario.Trace_file { file = "traces/" ^ f ^ ".trc" }) name_gen;
        (let* format = oneofl [ Agg_trace.Import.Paths; Agg_trace.Import.Strace ] in
         let* f = name_gen in
         return (Scenario.Import_file { format; file = f }));
      ]
  in
  let topology_gen =
    oneof
      [
        (let* c = int_range 1 500 and* s = int_range 1 2000 in
         return (Scenario.Path { client_capacity = c; server_capacity = s }));
        (let* n = int_range 1 32 and* c = int_range 1 500 and* s = int_range 1 2000 in
         return (Scenario.Fleet { clients = n; client_capacity = c; server_capacity = s }));
        (let* nodes = int_range 1 9 in
         let* replicas = int_range 1 nodes in
         let* placement = oneofl Agg_cluster.Cluster.placements in
         let* ring_seed = int_range 0 10_000 in
         let* clients = int_range 1 32 in
         let* client_capacity = int_range 1 500 in
         let* node_capacity = int_range 1 2000 in
         let* churn =
           list_size (int_range 0 3)
             (let* time = int_range 0 10_000 in
              let* node = int_range 0 (nodes - 1) in
              let* op =
                oneofl [ (fun n -> Agg_cluster.Cluster.Join n); (fun n -> Agg_cluster.Cluster.Leave n) ]
              in
              return (time, op node))
         in
         return
           (Scenario.Cluster
              { nodes; replicas; placement; ring_seed; clients; client_capacity; node_capacity; churn }));
      ]
  in
  let faults_gen =
    let* seed = int_range 0 1_000_000 in
    let* loss_rate = rate_gen in
    let* outage_period = oneofl [ 0; 500; 2000 ] in
    let* outage_rate = rate_gen in
    let* outage_length = int_range 0 500 in
    let* slow_rate = rate_gen in
    let* slow_multiplier = map (fun n -> 1.0 +. (float_of_int n /. 10.0)) (int_range 0 40) in
    let* crash_rate = rate_gen in
    return
      { Plan.seed; loss_rate; outage_period; outage_rate; outage_length; slow_rate;
        slow_multiplier; crash_rate }
  in
  let* name = name_gen in
  let* workload = workload_gen in
  let* topology = topology_gen in
  let* faults = faults_gen in
  let* policies = list_size (int_range 1 5) policy_gen in
  (* the codec does not require a valid matrix, but keep names distinct so
     structural equality is meaningful *)
  let policies =
    List.sort_uniq (fun a b -> String.compare (Scenario.policy_name a) (Scenario.policy_name b)) policies
  in
  let* invariants =
    QCheck.Gen.map
      (fun mask -> List.filteri (fun idx _ -> List.nth mask idx) Scenario.all_invariants)
      (list_size (return (List.length Scenario.all_invariants)) bool)
  in
  let* expectations =
    list_size (int_range 0 2)
      (let* policy = oneofl (Array.of_list policies |> Array.to_list) in
       let* percent = map (fun n -> float_of_int n /. 10.0) (int_range 0 1000) in
       let* kind = bool in
       return
         (if kind then Scenario.Hit_rate_min { policy; percent }
          else Scenario.Hit_rate_max { policy; percent }))
  in
  let* expect_violation = bool in
  let* slos =
    let* window = oneofl [ 250; 1000; 4000 ] in
    list_size (int_range 0 2)
      (let* slo_policy = oneofl (Array.of_list policies |> Array.to_list) in
       let* slo_metric = oneofl Scenario.all_slo_metrics in
       let* v = map (fun n -> float_of_int n /. 10.0) (int_range 0 1000) in
       let* kind = bool in
       let* slo_after = oneofl [ 0; 500; 2000 ] in
       return
         {
           Scenario.slo_metric;
           slo_policy;
           slo_bound = (if kind then `Min v else `Max v);
           slo_window = window;
           slo_after;
         })
  in
  (* the round-trip law needs distinct lines, like the policy matrix *)
  let slos =
    List.sort_uniq (fun a b -> String.compare (Scenario.slo_name a) (Scenario.slo_name b)) slos
  in
  return
    { Scenario.name; workload; topology; faults; policies; invariants; expectations; slos;
      expect_violation }

let qcheck_tests =
  let arb = QCheck.make ~print:Scenario.to_string gen_scenario in
  [
    QCheck.Test.make ~name:"of_string (to_string s) = Ok s" ~count:300 arb (fun s ->
        match Scenario.of_string (Scenario.to_string s) with
        | Ok s' -> s' = s
        | Error _ -> false);
    QCheck.Test.make ~name:"one-line errors carry a line number" ~count:100 arb (fun s ->
        let text = Scenario.to_string s ^ "mystery line\n" in
        match Scenario.of_string text with
        | Ok _ -> false
        | Error msg ->
            (not (String.contains msg '\n'))
            && String.length msg > 5
            && String.sub msg 0 5 = "line ");
  ]

(* --- executor ------------------------------------------------------------- *)

let run_ok ?jobs ?events_cap s =
  match Exec.run ?jobs ?events_cap s with
  | Ok o -> o
  | Error msg -> Alcotest.failf "Exec.run failed: %s" msg

let test_exec_invariants_pass () =
  let o = run_ok base in
  check_int "one cell per policy" (List.length base.Scenario.policies) (List.length o.Exec.cells);
  check_int "one check per invariant" (List.length base.Scenario.invariants)
    (List.length o.Exec.checks);
  check_bool "all invariants pass" true o.Exec.pass;
  check_bool "verdict ok" true o.Exec.ok;
  List.iter
    (fun (c : Exec.cell) ->
      check_bool "accesses metric present" true (Exec.metric c "accesses" = Some 2000.0))
    o.Exec.cells

let test_exec_expectation_failure () =
  let failing =
    { base with
      Scenario.expectations =
        [ Scenario.Hit_rate_min { policy = Scenario.Plain Cache.Lru; percent = 99.5 } ] }
  in
  let o = run_ok failing in
  check_bool "fails the expectation" false o.Exec.pass;
  check_bool "verdict not ok" false o.Exec.ok;
  let o' = run_ok { failing with Scenario.expect_violation = true } in
  check_bool "still failing" false o'.Exec.pass;
  check_bool "but ok when violation is expected" true o'.Exec.ok

let test_exec_trace_file_errors () =
  let missing =
    { base with Scenario.workload = Scenario.Trace_file { file = "no-such-trace.trc" } }
  in
  (match Exec.run missing with
  | Ok _ -> Alcotest.fail "expected an error for a missing trace"
  | Error msg ->
      check_bool "names the trace path" true
        (contains ~needle:"no-such-trace.trc" msg));
  let bad = Filename.temp_file "trace" ".trc" in
  Out_channel.with_open_text bad (fun oc -> output_string oc "#aggtrace v1\ngarbage here\n");
  Fun.protect
    ~finally:(fun () -> Sys.remove bad)
    (fun () ->
      match Exec.run { base with Scenario.workload = Scenario.Trace_file { file = bad } } with
      | Ok _ -> Alcotest.fail "expected an error for a corrupt trace"
      | Error msg ->
          check_bool "reports path and line" true
            (contains ~needle:bad msg
            && contains ~needle:"line 2" msg))

let test_exec_unknown_profile () =
  match Exec.run { base with Scenario.workload = Scenario.Profile { profile = "nope"; events = 100; seed = 1 } } with
  | Ok _ -> Alcotest.fail "expected an unknown-profile error"
  | Error msg -> check_bool "names the profile" true (contains ~needle:"nope" msg)

(* SLO rules evaluate the per-cell series windows; a trivially satisfiable
   bound passes (reporting how many windows were checked) and an impossible
   one fails pinning the first violating window's access range. *)
let test_exec_slo_pass_and_fail () =
  let slo bound =
    { Scenario.slo_metric = Scenario.Slo_hit_rate; slo_policy = Scenario.Group 5;
      slo_bound = bound; slo_window = 500; slo_after = 0 }
  in
  let find_check (o : Exec.outcome) needle =
    match
      List.find_opt (fun (c : Exec.check) -> contains ~needle c.Exec.check_name) o.Exec.checks
    with
    | Some c -> c
    | None -> Alcotest.failf "no check named like %S" needle
  in
  (* cells carry a series only when slo rules ask for one *)
  let plain = run_ok base in
  List.iter
    (fun (c : Exec.cell) -> check_bool "no series without slos" true (c.Exec.series = None))
    plain.Exec.cells;
  let good = run_ok { base with Scenario.slos = [ slo (`Min 0.0) ] } in
  List.iter
    (fun (c : Exec.cell) -> check_bool "series present with slos" true (c.Exec.series <> None))
    good.Exec.cells;
  let c = find_check good "slo hit_rate" in
  check_bool "satisfiable slo passes" true c.Exec.pass;
  check_bool "detail counts the windows" true (contains ~needle:"windows checked" c.Exec.detail);
  check_bool "outcome ok" true good.Exec.ok;
  let bad = run_ok { base with Scenario.slos = [ slo (`Min 99.9) ] } in
  let c = find_check bad "slo hit_rate" in
  check_bool "impossible slo fails" false c.Exec.pass;
  check_bool "detail pins window 0" true
    (contains ~needle:"window 0 (accesses 0..499)" c.Exec.detail);
  check_bool "detail names the metric" true (contains ~needle:"hit_rate=" c.Exec.detail);
  check_bool "outcome fails" false bad.Exec.pass;
  let expected =
    run_ok { base with Scenario.slos = [ slo (`Min 99.9) ]; expect_violation = true }
  in
  check_bool "ok when the violation is expected" true expected.Exec.ok

(* after= skips the cold-start windows: a bound that fails from a cold
   cache can still hold once only warm windows are checked *)
let test_exec_slo_after_skips_warmup () =
  let slo after =
    { Scenario.slo_metric = Scenario.Slo_degraded_rate; slo_policy = Scenario.Plain Cache.Lru;
      slo_bound = `Max 100.0; slo_window = 500; slo_after = after }
  in
  let checked (o : Exec.outcome) =
    match
      List.find_opt
        (fun (c : Exec.check) -> contains ~needle:"slo degraded_rate" c.Exec.check_name)
        o.Exec.checks
    with
    | Some c -> c
    | None -> Alcotest.fail "slo check missing"
  in
  let all = checked (run_ok { base with Scenario.slos = [ slo 0 ] }) in
  let late = checked (run_ok { base with Scenario.slos = [ slo 1500 ] }) in
  check_bool "both pass (max=100 is vacuous)" true (all.Exec.pass && late.Exec.pass);
  let count (c : Exec.check) =
    match String.split_on_char ' ' c.Exec.detail with
    | n :: _ -> int_of_string n
    | [] -> Alcotest.fail "empty detail"
  in
  check_int "after=0 checks every window" 4 (count all);
  check_int "after=1500 drops the first three windows" 1 (count late)

(* --- corpus --------------------------------------------------------------- *)

let corpus () = Agg_sim.Scenarios.corpus_files corpus_dir

let test_corpus_present_and_valid () =
  let files = corpus () in
  check_bool "at least 8 scenarios shipped" true (List.length files >= 8);
  List.iter
    (fun file ->
      match Scenario.load_file file with
      | Error msg -> Alcotest.failf "corpus file broken: %s" msg
      | Ok s -> Scenario.validate s)
    files

let test_corpus_green_fast_sized () =
  let runner =
    Agg_sim.Experiment.Runner.create ~jobs:2 ~settings:Agg_sim.Experiment.quick_settings ()
  in
  let entries = Agg_sim.Scenarios.run_corpus ~events_cap:4000 ~runner corpus_dir in
  check_int "every corpus file executed" (List.length (corpus ())) (List.length entries);
  List.iter
    (fun (e : Agg_sim.Scenarios.entry) ->
      match e.Agg_sim.Scenarios.outcome with
      | Error msg -> Alcotest.failf "%s failed to run: %s" e.Agg_sim.Scenarios.file msg
      | Ok o ->
          check_bool (e.Agg_sim.Scenarios.file ^ " meets its verdict") true o.Exec.ok)
    entries;
  check_bool "all_ok" true (Agg_sim.Scenarios.all_ok entries);
  let json = Agg_sim.Scenarios.json_of_entries entries in
  check_bool "json records the verdict" true
    (contains ~needle:"\"all_ok\": true" json);
  let known_bad =
    List.find
      (fun (e : Agg_sim.Scenarios.entry) ->
        Filename.basename e.Agg_sim.Scenarios.file = "known-bad.scn")
      entries
  in
  match known_bad.Agg_sim.Scenarios.outcome with
  | Ok o ->
      check_bool "known-bad fails its checks" false o.Exec.pass;
      check_bool "known-bad is ok because failure is expected" true o.Exec.ok
  | Error msg -> Alcotest.failf "known-bad failed to run: %s" msg

let test_corpus_jobs_determinism () =
  List.iter
    (fun file ->
      match Scenario.load_file file with
      | Error msg -> Alcotest.failf "%s: %s" file msg
      | Ok s ->
          let render jobs = Exec.render_outcome (run_ok ~jobs ~events_cap:2000 s) in
          check_string (Filename.basename file ^ " jobs=1 vs jobs=4") (render 1) (render 4))
    (corpus ())

(* --- fuzz & shrink -------------------------------------------------------- *)

let pinned_minimal =
  String.concat "\n"
    [
      "#scenario v1";
      "name known-bad";
      "workload profile name=server events=100 seed=7";
      "topology fleet clients=1 client_capacity=150 server_capacity=300";
      "faults seed=11 loss=0 outage_period=0 outage_rate=0 outage_length=0 slow=0 slow_mult=1 crash=0";
      "policy lru";
      "expect hit_rate policy=lru min=99.5";
      "expect violation";
      "";
    ]

let pinned_minimal_slo =
  String.concat "\n"
    [
      "#scenario v1";
      "name known-bad-slo";
      "workload profile name=server events=100 seed=7";
      "topology path client_capacity=300 server_capacity=1000";
      "faults seed=11 loss=0 outage_period=0 outage_rate=0 outage_length=0 slow=0 slow_mult=1 crash=0";
      "policy g5";
      "slo hit_rate policy=g5 min=99 window=500";
      "expect violation";
      "";
    ]

let load_known_bad () =
  match Scenario.load_file (Filename.concat corpus_dir "known-bad.scn") with
  | Ok s -> s
  | Error msg -> Alcotest.failf "known-bad.scn: %s" msg

let test_shrinker_pinned () =
  let bad = load_known_bad () in
  check_bool "known-bad violates" true (Fuzz.violates bad);
  let shrunk = Fuzz.shrink bad in
  check_string "shrinks to the pinned minimal scenario" pinned_minimal
    (Scenario.to_string shrunk);
  check_bool "shrunk still violates" true (Fuzz.violates shrunk);
  check_bool "strictly smaller" true
    (String.length (Scenario.to_string shrunk) < String.length (Scenario.to_string bad));
  (* greedy shrinking is deterministic: a second pass finds nothing more *)
  check_string "idempotent" pinned_minimal (Scenario.to_string (Fuzz.shrink shrunk))

(* the slo-driven known-bad entry shrinks too: the fault plan zeroes out,
   the extra policy and the invariants drop, but the slo (and the policy it
   names) must survive — a cold 500-access window can never hold 99%. *)
let test_shrinker_pinned_slo () =
  let bad =
    match Scenario.load_file (Filename.concat corpus_dir "known-bad-slo.scn") with
    | Ok s -> s
    | Error msg -> Alcotest.failf "known-bad-slo.scn: %s" msg
  in
  check_bool "known-bad-slo violates" true (Fuzz.violates bad);
  let shrunk = Fuzz.shrink bad in
  check_string "shrinks to the pinned minimal scenario" pinned_minimal_slo
    (Scenario.to_string shrunk);
  check_int "slo survives the shrink" 1 (List.length shrunk.Scenario.slos);
  check_string "idempotent" pinned_minimal_slo (Scenario.to_string (Fuzz.shrink shrunk))

let test_fuzz_reports_known_bad () =
  let bad = load_known_bad () in
  let report = Fuzz.run ~seed:5 ~rounds:3 bad in
  check_int "base tested first" 1 report.Fuzz.tested;
  match report.Fuzz.failure with
  | None -> Alcotest.fail "fuzz missed the known-bad violation"
  | Some f ->
      check_string "shrunk form pinned" pinned_minimal (Scenario.to_string f.Fuzz.shrunk);
      let again = Fuzz.run ~seed:5 ~rounds:3 bad in
      check_bool "deterministic for a fixed seed" true
        (match again.Fuzz.failure with
        | Some g -> Scenario.to_string g.Fuzz.shrunk = Scenario.to_string f.Fuzz.shrunk
        | None -> false)

let test_shrink_keeps_healthy_scenario () =
  check_bool "healthy scenario untouched" true (Fuzz.shrink base = base)

let test_perturb_valid () =
  let rng = Agg_util.Prng.create ~seed:9 () in
  let s = ref base in
  for _ = 1 to 50 do
    s := Fuzz.perturb rng !s;
    Scenario.validate !s
  done

(* --- profiles ------------------------------------------------------------- *)

let test_paper_profiles_unchanged () =
  check_int "exactly four paper profiles" 4 (List.length Agg_workload.Profile.all);
  Alcotest.(check (list string))
    "paper profile names pinned"
    [ "workstation"; "users"; "write"; "server" ]
    (List.map (fun p -> p.Agg_workload.Profile.name) Agg_workload.Profile.all)

let test_extra_profiles () =
  Alcotest.(check (list string))
    "extras"
    [ "scientific"; "streaming"; "sized-workstation"; "sized-server" ]
    (List.map (fun p -> p.Agg_workload.Profile.name) Agg_workload.Profile.extras);
  List.iter
    (fun name ->
      match Agg_workload.Profile.by_name name with
      | None -> Alcotest.failf "by_name misses %s" name
      | Some p ->
          let trace = Agg_workload.Generator.generate ~seed:5 ~events:2000 p in
          check_int (name ^ " exact event count") 2000 (Agg_trace.Trace.length trace);
          check_bool
            (name ^ " universe estimate positive")
            true
            (Agg_workload.Profile.distinct_file_estimate p > 0))
    [ "scientific"; "streaming"; "sized-workstation"; "sized-server" ]

let () =
  Alcotest.run "agg_scenario"
    [
      ( "codec",
        [
          Alcotest.test_case "round-trip crafted" `Quick test_roundtrip_crafted;
          Alcotest.test_case "comments skipped" `Quick test_roundtrip_comments_skipped;
          Alcotest.test_case "strict rejections" `Quick test_codec_rejections;
          Alcotest.test_case "missing sections" `Quick test_codec_missing_sections;
          Alcotest.test_case "load_file errors" `Quick test_load_file_errors;
          Alcotest.test_case "validate" `Quick test_validate;
        ] );
      ( "exec",
        [
          Alcotest.test_case "invariants pass" `Quick test_exec_invariants_pass;
          Alcotest.test_case "expectation failure" `Quick test_exec_expectation_failure;
          Alcotest.test_case "trace file errors" `Quick test_exec_trace_file_errors;
          Alcotest.test_case "unknown profile" `Quick test_exec_unknown_profile;
          Alcotest.test_case "slo pass and fail" `Quick test_exec_slo_pass_and_fail;
          Alcotest.test_case "slo after skips warmup" `Quick test_exec_slo_after_skips_warmup;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "present and valid" `Quick test_corpus_present_and_valid;
          Alcotest.test_case "green fast-sized" `Quick test_corpus_green_fast_sized;
          Alcotest.test_case "jobs determinism" `Quick test_corpus_jobs_determinism;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "shrinker pinned" `Quick test_shrinker_pinned;
          Alcotest.test_case "slo shrinker pinned" `Quick test_shrinker_pinned_slo;
          Alcotest.test_case "fuzz reports known-bad" `Quick test_fuzz_reports_known_bad;
          Alcotest.test_case "healthy untouched" `Quick test_shrink_keeps_healthy_scenario;
          Alcotest.test_case "perturb preserves validity" `Quick test_perturb_valid;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "paper profiles unchanged" `Quick test_paper_profiles_unchanged;
          Alcotest.test_case "extras calibrated" `Quick test_extra_profiles;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
