(* Tests for the fault-injection layer: plan determinism and validation,
   resilience-policy arithmetic, the crafted timeout -> degraded-fetch
   path with exact pinned metrics, and the headline byte-identity
   property — a plan that can inject nothing leaves both system
   simulators' results exactly equal to the fault-free run. *)

open Agg_faults
module Path = Agg_system.Path
module Fleet = Agg_system.Fleet
module Scheme = Agg_system.Scheme
module Cost_model = Agg_system.Cost_model

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- plan ------------------------------------------------------------- *)

let test_plan_disabled_when_rates_zero () =
  check_bool "none is disabled" false (Plan.enabled (Plan.make Plan.none));
  check_bool "default is enabled" true (Plan.enabled (Plan.make Plan.default));
  (* outages need period, rate and length all non-zero to ever fire *)
  let outage_without_length =
    { Plan.none with Plan.outage_period = 100; outage_rate = 0.5; outage_length = 0 }
  in
  check_bool "outage with zero length is disabled" false
    (Plan.enabled (Plan.make outage_without_length))

let test_plan_determinism () =
  let plan = Plan.make Plan.default in
  (* decisions are pure functions of the coordinates: re-asking after other
     queries, or from a second plan with the same config, changes nothing *)
  let probe p = List.init 200 (fun t -> Plan.message_lost p ~time:t ~attempt:(t mod 3)) in
  let first = probe plan in
  ignore (Plan.server_down plan ~time:17);
  ignore (Plan.latency_multiplier plan ~time:40 ~attempt:1);
  Alcotest.(check (list bool)) "same answers after interleaved queries" first (probe plan);
  Alcotest.(check (list bool)) "same answers from a fresh plan" first
    (probe (Plan.make Plan.default))

let test_plan_seed_matters () =
  let probe seed =
    let plan = Plan.make { Plan.default with Plan.seed } in
    List.init 500 (fun t -> Plan.message_lost plan ~time:t ~attempt:0)
  in
  check_bool "different seeds give different loss patterns" true (probe 11 <> probe 12)

let test_plan_extreme_rates () =
  let always = Plan.make { Plan.none with Plan.loss_rate = 1.0 } in
  let never = Plan.make { Plan.none with Plan.slow_rate = 1.0 } in
  for t = 0 to 99 do
    check_bool "loss 1.0 loses every attempt" true (Plan.message_lost always ~time:t ~attempt:0);
    check_bool "loss 0 never loses" false (Plan.message_lost never ~time:t ~attempt:0)
  done

let test_plan_outage_windows () =
  let config =
    { Plan.none with Plan.outage_period = 10; outage_rate = 1.0; outage_length = 4 }
  in
  let plan = Plan.make config in
  (* rate 1.0: every epoch starts with a 4-access outage *)
  for epoch = 0 to 4 do
    for offset = 0 to 9 do
      let time = (epoch * 10) + offset in
      check_bool
        (Printf.sprintf "t=%d down iff offset<4" time)
        (offset < 4) (Plan.server_down plan ~time)
    done
  done

let test_plan_validate () =
  let raises config =
    match Plan.validate config with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "loss > 1" true (raises { Plan.none with Plan.loss_rate = 1.5 });
  check_bool "negative rate" true (raises { Plan.none with Plan.crash_rate = -0.1 });
  check_bool "negative period" true (raises { Plan.none with Plan.outage_period = -1 });
  check_bool "multiplier < 1" true (raises { Plan.none with Plan.slow_multiplier = 0.5 });
  check_bool "defaults valid" false (raises Plan.default)

(* --- resilience policy ------------------------------------------------ *)

let test_backoff_arithmetic () =
  let r = Resilience.default in
  (* base 10ms, multiplier 2: backoff before retry k is 10 * 2^(k-1) *)
  check_float "retry 1" 10.0 (Resilience.backoff_ms r ~attempt:1);
  check_float "retry 2" 20.0 (Resilience.backoff_ms r ~attempt:2);
  check_float "retry 3" 40.0 (Resilience.backoff_ms r ~attempt:3);
  (* a failed non-final attempt costs its timeout plus the next backoff;
     the final attempt costs the timeout alone *)
  check_float "attempt 0 cost" 110.0 (Resilience.failure_cost_ms r ~attempt:0);
  check_float "attempt 1 cost" 120.0 (Resilience.failure_cost_ms r ~attempt:1);
  check_float "final attempt cost" 100.0 (Resilience.failure_cost_ms r ~attempt:2)

let test_resilience_validate () =
  let raises r =
    match Resilience.validate r with () -> false | exception Invalid_argument _ -> true
  in
  check_bool "negative timeout" true
    (raises { Resilience.default with Resilience.timeout_ms = -1.0 });
  check_bool "negative retries" true
    (raises { Resilience.default with Resilience.max_retries = -1 });
  check_bool "multiplier < 1" true
    (raises { Resilience.default with Resilience.backoff_multiplier = 0.5 });
  check_bool "default valid" false (raises Resilience.default)

(* --- counters --------------------------------------------------------- *)

let test_counters () =
  let c = Counters.create () in
  check_int "fresh total" 0 (Counters.total_faults c);
  c.Counters.timeouts <- 3;
  c.Counters.slowed_fetches <- 2;
  c.Counters.crashes <- 1;
  check_int "total" 6 (Counters.total_faults c);
  let d = Counters.copy c in
  check_bool "copy equal" true (Counters.equal c d);
  d.Counters.retries <- 9;
  check_bool "copy independent" false (Counters.equal c d)

(* --- crafted timeout -> degraded fallback ----------------------------- *)

(* loss 1.0: every attempt of every remote fetch times out, so each of the
   3 cold misses on [1;2;3;1;2] burns the full retry budget and falls back
   to a degraded single-file fetch. Everything below is pinned exactly. *)
let test_crafted_degraded_path () =
  let trace = Agg_trace.Trace.of_files [ 1; 2; 3; 1; 2 ] in
  let config =
    Path.with_deployment ~group_size:3 `Aggregating_client
      {
        Path.default_config with
        Path.client_capacity = 4;
        server_capacity = 8;
        faults = { Plan.none with Plan.loss_rate = 1.0 };
      }
  in
  let r = Path.run config trace in
  check_int "accesses" 5 r.Path.accesses;
  check_int "client hits unchanged" 2 r.Path.client_hits;
  check_int "every miss degrades" 3 r.Path.faults.Counters.degraded_fetches;
  check_int "3 attempts per miss" 9 r.Path.faults.Counters.timeouts;
  check_int "all losses, no outages" 9 r.Path.faults.Counters.lost_messages;
  check_int "2 retries per miss" 6 r.Path.faults.Counters.retries;
  (* the demanded file is still served: one rtt and one file per miss,
     exactly the baseline's demand path *)
  check_int "rtts" 3 r.Path.round_trips;
  check_int "one file per degraded fetch" 3 r.Path.files_transferred;
  check_int "disk reads" 3 r.Path.disk_reads;
  (* latency: each miss waits out (timeout+backoff1) + (timeout+backoff2)
     + timeout = 330ms, then pays the ordinary disk fetch *)
  let wait =
    let r = Resilience.default in
    Resilience.failure_cost_ms r ~attempt:0
    +. Resilience.failure_cost_ms r ~attempt:1
    +. Resilience.failure_cost_ms r ~attempt:2
  in
  check_float "degraded wait" 330.0 wait;
  let fetch = Cost_model.demand_fetch_latency Cost_model.lan ~served_from_disk:true in
  let hit = Cost_model.lan.Cost_model.client_memory in
  check_float "mean latency pinned"
    (((3.0 *. (wait +. fetch)) +. (2.0 *. hit)) /. 5.0)
    r.Path.mean_latency

let test_crashes_wipe_cache () =
  let trace = Agg_trace.Trace.of_files [ 1; 1; 1; 1; 1 ] in
  let config =
    { Path.default_config with Path.faults = { Plan.none with Plan.crash_rate = 1.0 } }
  in
  let r = Path.run config trace in
  check_int "crash before every access" 5 r.Path.faults.Counters.crashes;
  check_int "no hits survive the wipes" 0 r.Path.client_hits;
  (* without crashes the same trace hits 4 of 5 *)
  let healthy = Path.run { config with Path.faults = Plan.none } trace in
  check_int "healthy hits" 4 healthy.Path.client_hits

let test_outage_counted_separately () =
  let trace = Agg_trace.Trace.of_files [ 1; 2; 3 ] in
  let config =
    {
      Path.default_config with
      Path.faults =
        { Plan.none with Plan.outage_period = 100; outage_rate = 1.0; outage_length = 100 };
    }
  in
  let r = Path.run config trace in
  check_int "every timeout is an outage denial" r.Path.faults.Counters.timeouts
    r.Path.faults.Counters.outage_denials;
  check_int "no message losses" 0 r.Path.faults.Counters.lost_messages;
  check_int "all misses degrade" 3 r.Path.faults.Counters.degraded_fetches

let test_slow_links_counted () =
  let trace = Agg_trace.Trace.of_files [ 1; 2; 3; 1; 2 ] in
  let config =
    {
      Path.default_config with
      Path.faults = { Plan.none with Plan.slow_rate = 1.0; slow_multiplier = 4.0 };
    }
  in
  let r = Path.run config trace in
  check_int "every completed fetch is slowed" r.Path.round_trips
    r.Path.faults.Counters.slowed_fetches;
  let healthy = Path.run { config with Path.faults = Plan.none } trace in
  (* only remote latencies are multiplied; hits are untouched *)
  check_bool "latency grows" true (r.Path.mean_latency > healthy.Path.mean_latency)

(* --- fleet under faults ----------------------------------------------- *)

let test_fleet_crashes_and_degradation () =
  let trace = Agg_workload.Generator.generate ~seed:5 ~events:4000 Agg_workload.Profile.users in
  let config =
    {
      Fleet.default_config with
      Fleet.clients = 4;
      client_capacity = 8;
      server_capacity = 16;
      faults = { Plan.default with Plan.crash_rate = 0.01 };
    }
  in
  let r = Fleet.run config trace in
  check_bool "crashes fired" true (r.Fleet.faults.Counters.crashes > 0);
  check_bool "losses fired" true (r.Fleet.faults.Counters.lost_messages > 0);
  check_bool "some fetches degraded" true (r.Fleet.faults.Counters.degraded_fetches > 0);
  let healthy = Fleet.run { config with Fleet.faults = Plan.none } trace in
  check_bool "faults cost client hits" true (r.Fleet.client_hits < healthy.Fleet.client_hits)

(* --- properties -------------------------------------------------------- *)

let path_fingerprint (r : Path.result) =
  ( (r.Path.accesses, r.Path.client_hits, r.Path.server_hits, r.Path.disk_reads),
    (r.Path.files_transferred, r.Path.round_trips),
    (r.Path.mean_latency, r.Path.p95_latency, r.Path.p99_latency),
    Format.asprintf "%a" Path.pp_result r )

let fleet_fingerprint (r : Fleet.result) =
  ( (r.Fleet.accesses, r.Fleet.client_hits, r.Fleet.server_requests, r.Fleet.server_hits),
    (r.Fleet.store_fetches, r.Fleet.invalidations),
    r.Fleet.per_client_hit_rate,
    Format.asprintf "%a" Fleet.pp_result r )

let qcheck_tests =
  let open QCheck in
  let files_gen = list_of_size (Gen.int_range 10 300) (int_range 0 30) in
  [
    Test.make ~name:"zero-rate plan replays byte-identically to no-faults" ~count:60
      (pair files_gen (int_range 0 1000))
      (fun (files, seed) ->
        let trace = Agg_trace.Trace.of_files files in
        (* a plan with every rate at zero (loss 0.0, no outage windows) must
           take the literal fault-free code path, whatever its seed *)
        let zero = { Plan.none with Plan.seed } in
        let config g faults =
          Path.with_deployment ~group_size:3 g
            { Path.default_config with Path.client_capacity = 4; server_capacity = 8; faults }
        in
        List.for_all
          (fun g ->
            path_fingerprint (Path.run (config g zero) trace)
            = path_fingerprint (Path.run (config g Plan.none) trace))
          [ `Baseline; `Aggregating_client; `Aggregating_both ]);
    Test.make ~name:"fleet: zero-rate plan replays byte-identically" ~count:40
      (pair files_gen (int_range 0 1000))
      (fun (files, seed) ->
        let trace = Agg_trace.Trace.of_files files in
        let config faults =
          {
            Fleet.default_config with
            Fleet.clients = 3;
            client_capacity = 4;
            server_capacity = 8;
            faults;
          }
        in
        fleet_fingerprint (Fleet.run (config { Plan.none with Plan.seed }) trace)
        = fleet_fingerprint (Fleet.run (config Plan.none) trace));
    Test.make ~name:"faulty runs are deterministic run-to-run" ~count:30 files_gen (fun files ->
        let trace = Agg_trace.Trace.of_files files in
        let config =
          {
            Path.default_config with
            Path.client = Scheme.aggregating ~group_size:3 ();
            client_capacity = 4;
            server_capacity = 8;
            faults = { Plan.default with Plan.crash_rate = 0.01 };
          }
        in
        let a = Path.run config trace and b = Path.run config trace in
        path_fingerprint a = path_fingerprint b
        && Counters.equal a.Path.faults b.Path.faults);
    Test.make ~name:"degraded + served = round trips + hits identity" ~count:40
      (pair files_gen (float_bound_inclusive 1.0))
      (fun (files, loss_rate) ->
        let trace = Agg_trace.Trace.of_files files in
        let config =
          {
            Path.default_config with
            Path.client = Scheme.aggregating ~group_size:3 ();
            client_capacity = 4;
            server_capacity = 8;
            faults = { Plan.none with Plan.loss_rate };
          }
        in
        let r = Path.run config trace in
        (* every access is a hit or a completed fetch (degraded fetches
           still complete), and the retry budget bounds the timeouts *)
        r.Path.client_hits + r.Path.round_trips = r.Path.accesses
        && r.Path.faults.Counters.timeouts
           <= (Resilience.default.Resilience.max_retries + 1) * r.Path.round_trips);
    Test.make ~name:"backoff is monotone in attempt" ~count:100
      (pair (int_range 1 20) (int_range 1 19))
      (fun (a, b) ->
        let r = Resilience.default in
        let lo = min a (a + b) and hi = max a (a + b) in
        Resilience.backoff_ms r ~attempt:lo <= Resilience.backoff_ms r ~attempt:hi);
  ]

let () =
  Alcotest.run "agg_faults"
    [
      ( "plan",
        [
          Alcotest.test_case "disabled when rates zero" `Quick test_plan_disabled_when_rates_zero;
          Alcotest.test_case "deterministic" `Quick test_plan_determinism;
          Alcotest.test_case "seed matters" `Quick test_plan_seed_matters;
          Alcotest.test_case "extreme rates" `Quick test_plan_extreme_rates;
          Alcotest.test_case "outage windows" `Quick test_plan_outage_windows;
          Alcotest.test_case "validate" `Quick test_plan_validate;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "backoff arithmetic" `Quick test_backoff_arithmetic;
          Alcotest.test_case "validate" `Quick test_resilience_validate;
        ] );
      ("counters", [ Alcotest.test_case "copy/equal/total" `Quick test_counters ]);
      ( "path under faults",
        [
          Alcotest.test_case "crafted degraded path" `Quick test_crafted_degraded_path;
          Alcotest.test_case "crashes wipe cache" `Quick test_crashes_wipe_cache;
          Alcotest.test_case "outage accounting" `Quick test_outage_counted_separately;
          Alcotest.test_case "slow links" `Quick test_slow_links_counted;
        ] );
      ( "fleet under faults",
        [ Alcotest.test_case "crashes and degradation" `Quick test_fleet_crashes_and_degradation ]
      );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
