(* Tests for the sharded cluster: consistent-hash ring invariants
   (deterministic ownership, distinct replication groups, minimal-movement
   rebalancing), the Fleet-degeneracy byte-identity guarantee, replica
   failover under node kills, churn rebalancing, event-stream
   reconciliation, and sweep independence from the jobs count. *)

open Agg_cluster
module Fleet = Agg_system.Fleet
module Plan = Agg_faults.Plan
module Counters = Agg_faults.Counters
module Sink = Agg_obs.Sink
module Obs_digest = Agg_obs.Digest

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let users_trace =
  lazy (Agg_workload.Generator.generate ~seed:5 ~events:4000 Agg_workload.Profile.users)

(* a plan covering every fault class Fleet models *)
let hostile = { Plan.default with Plan.crash_rate = 0.002 }

(* independent per-node outage windows, as the cluster sweep builds them *)
let node_kills rate =
  { Plan.none with Plan.seed = 23; outage_period = 1000; outage_rate = rate; outage_length = 400 }

(* --- ring ------------------------------------------------------------- *)

let sample_files = List.init 64 (fun i -> i * 97)

let test_ring_basics () =
  let r = Ring.create ~seed:1 ~nodes:5 () in
  Alcotest.(check (list int)) "members" [ 0; 1; 2; 3; 4 ] (Ring.members r);
  check_int "node_count" 5 (Ring.node_count r);
  check_bool "contains 3" true (Ring.contains r 3);
  check_bool "contains 5" false (Ring.contains r 5);
  List.iter
    (fun f ->
      let owner = Ring.owner r f in
      check_bool "owner is a member" true (Ring.contains r owner);
      Alcotest.(check (list int)) "k=1 group is the owner" [ owner ] (Ring.group r ~replicas:1 f))
    sample_files

let test_ring_validation () =
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  check_bool "nodes=0 rejected" true (raises (fun () -> Ring.create ~seed:1 ~nodes:0 ()));
  let r = Ring.create ~seed:1 ~nodes:2 () in
  check_bool "add duplicate rejected" true (raises (fun () -> Ring.add r 1));
  check_bool "add negative rejected" true (raises (fun () -> Ring.add r (-1)));
  check_bool "remove absent rejected" true (raises (fun () -> Ring.remove r 7));
  check_bool "remove last rejected" true
    (raises (fun () -> Ring.remove (Ring.remove r 0) 1));
  check_bool "replicas=0 rejected" true (raises (fun () -> Ring.group r ~replicas:0 3))

let test_ring_group_clamps () =
  let r = Ring.create ~seed:9 ~nodes:3 () in
  List.iter
    (fun f ->
      let g = Ring.group r ~replicas:10 f in
      Alcotest.(check (list int)) "clamped group covers every member" (Ring.members r)
        (List.sort compare g))
    sample_files

let ring_qcheck =
  let open QCheck in
  let seed_gen = int_range 0 100_000 in
  [
    Test.make ~name:"Ring: ownership is a pure function of seed and membership" ~count:100
      (triple seed_gen (int_range 1 12) (int_range 0 100_000))
      (fun (seed, nodes, file) ->
        let a = Ring.create ~seed ~nodes () in
        let b = Ring.create ~seed ~nodes () in
        Ring.owner a file = Ring.owner b file
        && Ring.group a ~replicas:3 file = Ring.group b ~replicas:3 file);
    Test.make ~name:"Ring: groups are min(k, nodes) distinct members, primary first" ~count:100
      (quad seed_gen (int_range 1 12) (int_range 1 6) (int_range 0 100_000))
      (fun (seed, nodes, k, file) ->
        let r = Ring.create ~seed ~nodes () in
        let g = Ring.group r ~replicas:k file in
        List.length g = min k nodes
        && List.length (List.sort_uniq compare g) = List.length g
        && List.for_all (Ring.contains r) g
        && List.hd g = Ring.owner r file);
    Test.make ~name:"Ring: a join only pulls the new node into groups" ~count:100
      (triple seed_gen (int_range 1 10) (int_range 1 4))
      (fun (seed, nodes, k) ->
        let r = Ring.create ~seed ~nodes () in
        let r' = Ring.add r nodes in
        List.for_all
          (fun f ->
            let before = Ring.group r ~replicas:k f in
            let after = Ring.group r' ~replicas:k f in
            List.for_all (fun n -> List.mem n before || n = nodes) after)
          sample_files);
    Test.make ~name:"Ring: a leave never evicts surviving group members" ~count:100
      (quad seed_gen (int_range 2 10) (int_range 1 4) (int_range 0 9))
      (fun (seed, nodes, k, leaver) ->
        let leaver = leaver mod nodes in
        let r = Ring.create ~seed ~nodes () in
        let r' = Ring.remove r leaver in
        List.for_all
          (fun f ->
            let before = Ring.group r ~replicas:k f in
            let after = Ring.group r' ~replicas:k f in
            List.for_all (fun n -> n = leaver || List.mem n after) before)
          sample_files);
  ]

(* --- Fleet degeneracy -------------------------------------------------- *)

let test_degenerate_matches_fleet_healthy () =
  let trace = Lazy.force users_trace in
  let fr = Fleet.run Fleet.default_config trace in
  let cr = Cluster.run Cluster.default_config trace in
  check_bool "fleet_view equals Fleet (no faults)" true (Cluster.fleet_view cr = fr);
  check_string "rendered output is byte-identical"
    (Format.asprintf "%a" Fleet.pp_result fr)
    (Format.asprintf "%a" Fleet.pp_result (Cluster.fleet_view cr))

let test_degenerate_matches_fleet_hostile () =
  let trace = Lazy.force users_trace in
  let fr = Fleet.run { Fleet.default_config with Fleet.faults = hostile } trace in
  let cr = Cluster.run { Cluster.default_config with Cluster.faults = hostile } trace in
  check_bool "faults actually fired" true (Counters.total_faults fr.Fleet.faults > 0);
  check_bool "fleet_view equals Fleet (hostile plan)" true (Cluster.fleet_view cr = fr)

let test_degenerate_matches_fleet_plain_lru () =
  let trace = Lazy.force users_trace in
  let scheme = Agg_system.Scheme.plain_lru in
  let fr =
    Fleet.run
      { Fleet.default_config with Fleet.client_scheme = scheme; server_scheme = scheme; faults = hostile }
      trace
  in
  let cr =
    Cluster.run
      { Cluster.default_config with Cluster.client_scheme = scheme; node_scheme = scheme; faults = hostile }
      trace
  in
  check_bool "plain schemes degenerate too" true (Cluster.fleet_view cr = fr)

(* --- failover and degradation ------------------------------------------ *)

let test_cluster_keeps_serving_under_node_kills () =
  let trace = Lazy.force users_trace in
  let config =
    {
      Cluster.default_config with
      Cluster.nodes = 5;
      replicas = 3;
      metadata = Cluster.Replicated_with_group;
      faults = node_kills 0.3;
    }
  in
  let r = Cluster.run config trace in
  check_int "every request is served" r.Cluster.server_requests
    (r.Cluster.routed_fetches + r.Cluster.faults.Counters.degraded_fetches);
  check_int "every access is accounted" 4000 r.Cluster.accesses;
  check_bool "outages fired" true (r.Cluster.faults.Counters.outage_denials > 0);
  check_bool "failovers happened" true (r.Cluster.failovers > 0);
  check_bool "clients still hit their caches" true (Cluster.client_hit_rate r > 0.0);
  (* replication is what absorbs the kills: k = 1 on the same plan
     degrades strictly more often *)
  let r1 = Cluster.run { config with Cluster.replicas = 1 } trace in
  check_bool "k=3 degrades less than k=1" true
    (r.Cluster.faults.Counters.degraded_fetches < r1.Cluster.faults.Counters.degraded_fetches)

let test_placement_axis () =
  let trace = Lazy.force users_trace in
  let run placement =
    Cluster.run
      {
        Cluster.default_config with
        Cluster.nodes = 5;
        replicas = 2;
        metadata = placement;
      }
      trace
  in
  let results = List.map run Cluster.placements in
  List.iter
    (fun (r : Cluster.result) ->
      check_int "all accesses" 4000 r.Cluster.accesses;
      check_int "all served" r.Cluster.server_requests r.Cluster.routed_fetches)
    results;
  (* sharding the metadata with the data (owner) must not behave like
     replicating it: the placements are a real axis, not a label *)
  match List.map (fun (r : Cluster.result) -> r.Cluster.client_hits) results with
  | [ owner; grouped; _client ] -> check_bool "owner and group placements differ" true (owner <> grouped)
  | _ -> Alcotest.fail "expected three placements"

(* --- churn -------------------------------------------------------------- *)

let test_churn_rebalances () =
  let trace = Lazy.force users_trace in
  let sink = Sink.memory () in
  let config =
    {
      Cluster.default_config with
      Cluster.nodes = 3;
      replicas = 2;
      metadata = Cluster.Replicated_with_group;
      churn = [ (1000, Cluster.Join 3); (2500, Cluster.Leave 1) ];
      scope = Some (Agg_obs.Scope.create ~sink ());
    }
  in
  let r = Cluster.run config trace in
  check_int "both churn ops applied" 2 r.Cluster.rebalances;
  check_bool "rebalancing moved cached files" true (r.Cluster.moved_files > 0);
  check_bool "joiner served requests" true
    (match List.assoc_opt 3 r.Cluster.per_node_requests with Some n -> n > 0 | None -> false);
  check_bool "leaver's requests retained" true (List.mem_assoc 1 r.Cluster.per_node_requests);
  check_int "rebalance events emitted" 2 (Obs_digest.ring_rebalances (Obs_digest.of_events (Sink.events sink)));
  (* the sink must not influence the simulation *)
  let r2 = Cluster.run { config with Cluster.scope = None } trace in
  check_bool "noop-sink rerun identical" true (Cluster.fleet_view r2 = Cluster.fleet_view r)

let test_churn_validation () =
  let trace = Lazy.force users_trace in
  let raises config =
    try Cluster.run config trace |> ignore; false with Invalid_argument _ -> true
  in
  check_bool "negative churn time rejected" true
    (raises { Cluster.default_config with Cluster.churn = [ (-1, Cluster.Join 1) ] });
  check_bool "joining a present node rejected" true
    (raises { Cluster.default_config with Cluster.churn = [ (0, Cluster.Join 0) ] });
  check_bool "leaving the last node rejected" true
    (raises { Cluster.default_config with Cluster.churn = [ (0, Cluster.Leave 0) ] })

(* --- event reconciliation ----------------------------------------------- *)

let test_reconcile_event_stream () =
  let trace = Lazy.force users_trace in
  let sink = Sink.memory () in
  let config =
    {
      Cluster.default_config with
      Cluster.nodes = 4;
      replicas = 2;
      metadata = Cluster.Replicated_with_group;
      faults = { (node_kills 0.4) with Plan.loss_rate = 0.05 };
      churn = [ (500, Cluster.Join 4) ];
      scope = Some (Agg_obs.Scope.create ~sink ());
    }
  in
  let r = Cluster.run config trace in
  let events = Sink.events sink in
  let digest = Obs_digest.of_events events in
  (match Cluster.reconcile digest r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "stream does not reconcile: %s" e);
  check_bool "routed events present" true (Obs_digest.node_routes digest > 0);
  check_bool "failover events present" true (Obs_digest.replica_failovers digest > 0);
  check_int "one rebalance event" 1 (Obs_digest.ring_rebalances digest);
  (* dropping the routing events must be detected *)
  let tampered =
    List.filter (function Agg_obs.Event.Node_routed _ -> false | _ -> true) events
  in
  match Cluster.reconcile (Obs_digest.of_events tampered) r with
  | Ok () -> Alcotest.fail "tampered stream reconciled"
  | Error _ -> ()

(* --- sweep: jobs-independence and the end-to-end degeneracy check ------- *)

let tiny = { Agg_sim.Experiment.events = 3000; seed = 7; warmup = 0; jobs = 1 }

let test_sweep_jobs_identity () =
  let sweep jobs =
    Agg_sim.Cluster.sweep ~node_counts:[ 3 ] ~node_loss_rates:[ 0.0; 0.2 ]
      ~replica_counts:[ 1; 2 ]
      (Agg_sim.Experiment.Runner.create ~settings:{ tiny with Agg_sim.Experiment.jobs } ())
  in
  let a = sweep 1 in
  let b = sweep 4 in
  check_bool "points identical for jobs=1 and jobs=4" true (a = b);
  check_string "json byte-identical for jobs=1 and jobs=4"
    (Agg_sim.Cluster.json_of_points ~fleet_match:true a)
    (Agg_sim.Cluster.json_of_points ~fleet_match:true b)

let test_sweep_fleet_equivalent () =
  check_bool "degenerate cluster matches Fleet end to end" true
    (Agg_sim.Cluster.fleet_equivalent (Agg_sim.Experiment.Runner.create ~settings:tiny ()))

(* --- telemetry ----------------------------------------------------------- *)

let telemetry_config () =
  {
    Cluster.default_config with
    Cluster.nodes = 5;
    replicas = 3;
    metadata = Cluster.Replicated_with_group;
    faults = node_kills 0.3;
  }

let test_series_node_loads_reconcile () =
  let trace = Lazy.force users_trace in
  let series = Agg_obs.Series.create ~window:500 in
  let ctx = Agg_obs.Trace_ctx.create ~seed:7 () in
  let r =
    Cluster.run
      { (telemetry_config ()) with
        Cluster.scope = Some (Agg_obs.Scope.create ~series ~trace_ctx:ctx ()) }
      trace
  in
  check_int "series accesses = run accesses" r.Cluster.accesses
    (Agg_obs.Series.total_accesses series);
  check_int "series hits = client hits" r.Cluster.client_hits
    (Agg_obs.Series.total_hits series);
  check_int "series degraded = fault counter" r.Cluster.faults.Counters.degraded_fetches
    (Agg_obs.Series.total_degraded series);
  check_int "every access carries one latency sample" r.Cluster.accesses
    (Agg_obs.Histogram.count (Agg_obs.Series.total_latency series));
  (* the windowed per-node loads sum to per_node_requests, node by node
     (degraded fallbacks count against the primary on both sides) *)
  let loads = Hashtbl.create 8 in
  for w = 0 to Agg_obs.Series.windows series - 1 do
    List.iter
      (fun (n, c) ->
        Hashtbl.replace loads n (c + Option.value ~default:0 (Hashtbl.find_opt loads n)))
      (Agg_obs.Series.node_loads series w)
  done;
  List.iter
    (fun (n, c) ->
      check_int (Printf.sprintf "node %d load" n) c
        (Option.value ~default:0 (Hashtbl.find_opt loads n));
      Hashtbl.remove loads n)
    r.Cluster.per_node_requests;
  check_int "no load outside per_node_requests" 0 (Hashtbl.length loads);
  (* sample 1.0 traces every request; failovers appear as route markers *)
  check_int "every request traced" r.Cluster.accesses (Agg_obs.Trace_ctx.sampled_requests ctx);
  let routes =
    List.length
      (List.filter
         (fun s -> s.Agg_obs.Trace_ctx.span_cat = "route")
         (Agg_obs.Trace_ctx.spans ctx))
  in
  check_int "one route marker per failover" r.Cluster.failovers routes

let test_cluster_telemetry_off_identity () =
  let trace = Lazy.force users_trace in
  let plain = Cluster.run (telemetry_config ()) trace in
  let instrumented =
    Cluster.run
      { (telemetry_config ()) with
        Cluster.scope =
          Some
            (Agg_obs.Scope.create
               ~series:(Agg_obs.Series.create ~window:500)
               ~trace_ctx:(Agg_obs.Trace_ctx.create ~sample:0.25 ~seed:3 ())
               ()) }
      trace
  in
  check_bool "instrumented run byte-identical to plain run" true (plain = instrumented)

let () =
  Alcotest.run "cluster"
    [
      ( "ring",
        [
          Alcotest.test_case "basics" `Quick test_ring_basics;
          Alcotest.test_case "validation" `Quick test_ring_validation;
          Alcotest.test_case "group clamps" `Quick test_ring_group_clamps;
        ] );
      ( "fleet degeneracy",
        [
          Alcotest.test_case "healthy" `Quick test_degenerate_matches_fleet_healthy;
          Alcotest.test_case "hostile plan" `Quick test_degenerate_matches_fleet_hostile;
          Alcotest.test_case "plain lru" `Quick test_degenerate_matches_fleet_plain_lru;
        ] );
      ( "failover",
        [
          Alcotest.test_case "keeps serving under kills" `Quick
            test_cluster_keeps_serving_under_node_kills;
          Alcotest.test_case "placement axis" `Quick test_placement_axis;
        ] );
      ( "churn",
        [
          Alcotest.test_case "rebalances" `Quick test_churn_rebalances;
          Alcotest.test_case "validation" `Quick test_churn_validation;
        ] );
      ("events", [ Alcotest.test_case "reconcile" `Quick test_reconcile_event_stream ]);
      ( "telemetry",
        [
          Alcotest.test_case "node loads reconcile" `Quick test_series_node_loads_reconcile;
          Alcotest.test_case "telemetry off is byte-identical" `Quick
            test_cluster_telemetry_off_identity;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "jobs identity" `Quick test_sweep_jobs_identity;
          Alcotest.test_case "fleet equivalent" `Quick test_sweep_fleet_equivalent;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest ring_qcheck);
    ]
