(* Tests for the synthetic workload substrate: task construction, the
   generator's determinism and statistical knobs, and the four calibrated
   paper profiles. *)

open Agg_workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Task.build --------------------------------------------------------- *)

let build_task ?(shared_fraction = 0.3) ?(loop_chance = 0.2) ~length () =
  let prng = Agg_util.Prng.create ~seed:3 () in
  let next = ref 100 in
  let fresh_file () =
    incr next;
    !next
  in
  let shared_zipf = Agg_util.Dist.Zipf.create ~n:10 ~s:1.1 in
  Task.build ~prng ~id:0 ~length ~shared_pool:10 ~shared_fraction ~shared_zipf ~fresh_file
    ~loop_chance

let test_task_length () =
  let t = build_task ~length:25 () in
  check_int "length" 25 (Task.length t);
  Alcotest.check_raises "length 0" (Invalid_argument "Task.build: length must be positive")
    (fun () -> ignore (build_task ~length:0 ()))

let test_task_no_consecutive_duplicates () =
  let t = build_task ~length:200 () in
  for i = 1 to Task.length t - 1 do
    check_bool "no immediate repeat" true (t.Task.files.(i) <> t.Task.files.(i - 1))
  done

let test_task_private_files_fresh () =
  let t = build_task ~shared_fraction:0.0 ~length:50 () in
  (* with no shared draws, every file is freshly allocated and unique *)
  let sorted = List.sort_uniq compare (Array.to_list t.Task.files) in
  check_int "all distinct" 50 (List.length sorted);
  Array.iter (fun f -> check_bool "private id range" true (f > 100)) t.Task.files

let test_task_loop_points () =
  let t = build_task ~loop_chance:1.0 ~length:30 () in
  check_int "no loop before position 2" 0 t.Task.loop_width.(0);
  check_int "no loop at position 1" 0 t.Task.loop_width.(1);
  Array.iteri
    (fun i w ->
      if i >= 2 then check_bool "loop width bounds" true (w >= 2 && w <= 6 && w <= i))
    t.Task.loop_width

let test_task_no_loops_when_disabled () =
  let t = build_task ~loop_chance:0.0 ~length:30 () in
  Array.iter (fun w -> check_int "no loops" 0 w) t.Task.loop_width

(* --- Generator ----------------------------------------------------------- *)

let test_generator_exact_event_count () =
  List.iter
    (fun profile ->
      let trace = Generator.generate ~seed:5 ~events:500 profile in
      check_int (profile.Profile.name ^ " events") 500 (Agg_trace.Trace.length trace))
    Profile.all

let test_generator_deterministic () =
  let a = Generator.generate_files ~seed:11 ~events:2000 Profile.server in
  let b = Generator.generate_files ~seed:11 ~events:2000 Profile.server in
  Alcotest.(check (array int)) "same seed, same trace" a b

let test_generator_seed_sensitivity () =
  let a = Generator.generate_files ~seed:1 ~events:500 Profile.server in
  let b = Generator.generate_files ~seed:2 ~events:500 Profile.server in
  check_bool "different seeds differ" true (a <> b)

let test_generator_files_matches_generate () =
  let a = Generator.generate_files ~seed:9 ~events:800 Profile.workstation in
  let b = Agg_trace.Trace.files (Generator.generate ~seed:9 ~events:800 Profile.workstation) in
  Alcotest.(check (array int)) "same stream" a b

let test_generator_fold_matches_generate () =
  (* fold must stream the exact (client, op, file) sequence generate
     materialises — same PRNG consumption, same task mutation order *)
  let profile = Profile.users in
  let trace = Generator.generate ~seed:13 ~events:1_000 profile in
  let expected = ref [] in
  Agg_trace.Trace.iter
    (fun (e : Agg_trace.Event.t) ->
      expected := (e.Agg_trace.Event.client, e.Agg_trace.Event.op, e.Agg_trace.Event.file) :: !expected)
    trace;
  let folded =
    Generator.fold ~seed:13 ~events:1_000 profile ~init:[] ~f:(fun acc ~client ~op ~file ->
        (client, op, file) :: acc)
  in
  check_bool "fold streams the generate sequence" true (folded = !expected);
  check_int "fold event count" 1_000 (List.length folded)

let test_generator_iter_matches_files () =
  List.iter
    (fun profile ->
      let buf = ref [] in
      Generator.iter ~seed:21 ~events:700 profile ~f:(fun ~client:_ ~op:_ ~file ->
          buf := file :: !buf);
      Alcotest.(check (array int))
        (profile.Profile.name ^ " iter files")
        (Generator.generate_files ~seed:21 ~events:700 profile)
        (Array.of_list (List.rev !buf)))
    Profile.all

let test_generator_fold_zero_and_negative () =
  check_int "zero events folds init" 7
    (Generator.fold ~events:0 Profile.server ~init:7 ~f:(fun _ ~client:_ ~op:_ ~file:_ -> 0));
  Alcotest.check_raises "negative" (Invalid_argument "Generator.fold: events must be non-negative")
    (fun () ->
      ignore (Generator.fold ~events:(-1) Profile.server ~init:() ~f:(fun () ~client:_ ~op:_ ~file:_ -> ())))

let test_generator_zero_events () =
  check_int "empty trace" 0 (Agg_trace.Trace.length (Generator.generate ~events:0 Profile.server));
  Alcotest.check_raises "negative"
    (Invalid_argument "Generator.generate: events must be non-negative") (fun () ->
      ignore (Generator.generate ~events:(-1) Profile.server))

let test_generator_client_ids_in_range () =
  let trace = Generator.generate ~seed:4 ~events:3000 Profile.users in
  Agg_trace.Trace.iter
    (fun (e : Agg_trace.Event.t) ->
      check_bool "client id" true (e.Agg_trace.Event.client >= 0 && e.client < Profile.users.Profile.clients))
    trace

let test_generator_write_fraction () =
  let trace = Generator.generate ~seed:4 ~events:30000 Profile.write in
  let s = Agg_trace.Trace_stats.compute trace in
  Alcotest.(check (float 0.03))
    "write share near p_write" Profile.write.Profile.p_write s.Agg_trace.Trace_stats.write_fraction

let test_generator_single_client_profiles () =
  let trace = Generator.generate ~seed:4 ~events:2000 Profile.server in
  let s = Agg_trace.Trace_stats.compute trace in
  check_int "one client" 1 s.Agg_trace.Trace_stats.clients

(* --- Profiles --------------------------------------------------------------- *)

let test_profile_lookup () =
  List.iter
    (fun p ->
      match Profile.by_name p.Profile.name with
      | Some found -> check_bool "by_name finds" true (found == p)
      | None -> Alcotest.fail "profile should be found")
    Profile.all;
  check_bool "unknown" true (Profile.by_name "nfs" = None)

let test_profile_estimates () =
  List.iter
    (fun p ->
      let est = Profile.distinct_file_estimate p in
      check_bool (p.Profile.name ^ " estimate positive") true (est > 0);
      (* the generator cannot touch more files than estimated plus the
         mutation-allocated tail; loose sanity bound *)
      let trace = Generator.generate ~seed:3 ~events:20000 p in
      check_bool
        (p.Profile.name ^ " distinct below 2x estimate")
        true
        (Agg_trace.Trace.distinct_files trace < 2 * est))
    Profile.all

(* A tiny local successor-entropy implementation so this test does not
   depend on agg_entropy (dependency direction: workload tests stay below
   the metric library). *)
module Agg_entropy_stub = struct
  let entropy files =
    let tables : (int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 256 in
    for i = 0 to Array.length files - 2 do
      let t =
        match Hashtbl.find_opt tables files.(i) with
        | Some t -> t
        | None ->
            let t = Hashtbl.create 4 in
            Hashtbl.replace tables files.(i) t;
            t
      in
      let c = Option.value ~default:0 (Hashtbl.find_opt t files.(i + 1)) in
      Hashtbl.replace t files.(i + 1) (c + 1)
    done;
    let num = ref 0.0 and den = ref 0 in
    Hashtbl.iter
      (fun _ t ->
        let total = Hashtbl.fold (fun _ c acc -> acc + c) t 0 in
        if total >= 2 then begin
          let h =
            Hashtbl.fold
              (fun _ c acc ->
                let p = float_of_int c /. float_of_int total in
                acc -. (p *. (Float.log p /. Float.log 2.0)))
              t 0.0
          in
          num := !num +. (float_of_int total *. h);
          den := !den + total
        end)
      tables;
    if !den = 0 then 0.0 else !num /. float_of_int !den
end

(* The calibration facts the experiments rely on; they pin the profile
   parameters against accidental drift. *)
let test_profile_calibration_ordering () =
  let entropy p = Agg_entropy_stub.entropy (Generator.generate_files ~seed:7 ~events:30000 p) in
  let server = entropy Profile.server in
  let workstation = entropy Profile.workstation in
  let users = entropy Profile.users in
  let write = entropy Profile.write in
  check_bool "server most predictable" true
    (server < workstation && server < users && server < write);
  check_bool "server under one bit" true (server < 1.0)

let () =
  Alcotest.run "agg_workload"
    [
      ( "task",
        [
          Alcotest.test_case "length" `Quick test_task_length;
          Alcotest.test_case "no consecutive duplicates" `Quick test_task_no_consecutive_duplicates;
          Alcotest.test_case "private files fresh" `Quick test_task_private_files_fresh;
          Alcotest.test_case "loop points" `Quick test_task_loop_points;
          Alcotest.test_case "no loops when disabled" `Quick test_task_no_loops_when_disabled;
        ] );
      ( "generator",
        [
          Alcotest.test_case "exact event count" `Quick test_generator_exact_event_count;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_generator_seed_sensitivity;
          Alcotest.test_case "files matches generate" `Quick test_generator_files_matches_generate;
          Alcotest.test_case "fold matches generate" `Quick test_generator_fold_matches_generate;
          Alcotest.test_case "iter matches files" `Quick test_generator_iter_matches_files;
          Alcotest.test_case "fold zero and negative" `Quick test_generator_fold_zero_and_negative;
          Alcotest.test_case "zero events" `Quick test_generator_zero_events;
          Alcotest.test_case "client ids in range" `Quick test_generator_client_ids_in_range;
          Alcotest.test_case "write fraction" `Quick test_generator_write_fraction;
          Alcotest.test_case "single client profiles" `Quick test_generator_single_client_profiles;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "lookup" `Quick test_profile_lookup;
          Alcotest.test_case "estimates" `Quick test_profile_estimates;
          Alcotest.test_case "calibration ordering" `Slow test_profile_calibration_ordering;
        ] );
    ]
