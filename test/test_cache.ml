(* Tests for the cache substrate: every replacement policy, the
   statistics wrapper (including the group-block insertion that the
   aggregating cache depends on), Belady's optimal, and the two-level
   composition. *)

open Agg_cache

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_list = Alcotest.(check (list int))

(* Drive a demand-access sequence through a Cache.t, returning hit flags. *)
let drive cache keys = List.map (Cache.access cache) keys

(* --- generic policy laws, checked for every kind -------------------- *)

let policy_kinds = Cache.all_kinds

let test_capacity_never_exceeded () =
  List.iter
    (fun kind ->
      let cache = Cache.create kind ~capacity:5 in
      for i = 0 to 99 do
        ignore (Cache.access cache (i mod 23))
      done;
      check_bool (Cache.kind_name kind ^ " size<=capacity") true (Cache.size cache <= 5))
    policy_kinds

let test_hit_iff_resident () =
  List.iter
    (fun kind ->
      let cache = Cache.create kind ~capacity:4 in
      ignore (Cache.access cache 1);
      check_bool (Cache.kind_name kind ^ " resident hit") true (Cache.access cache 1);
      check_bool (Cache.kind_name kind ^ " absent miss") false (Cache.access cache 2))
    policy_kinds

let test_stats_identities () =
  List.iter
    (fun kind ->
      let cache = Cache.create kind ~capacity:3 in
      for i = 0 to 49 do
        ignore (Cache.access cache (i mod 7))
      done;
      let s = Cache.stats cache in
      check_int (Cache.kind_name kind ^ " hits+misses") s.Cache.accesses (s.Cache.hits + s.Cache.misses);
      check_int (Cache.kind_name kind ^ " accesses") 50 s.Cache.accesses;
      check_bool
        (Cache.kind_name kind ^ " evictions<=insertions")
        true
        (s.Cache.evictions <= s.Cache.insertions))
    policy_kinds

let test_remove_and_clear () =
  List.iter
    (fun kind ->
      let cache = Cache.create kind ~capacity:4 in
      ignore (Cache.access cache 1);
      ignore (Cache.access cache 2);
      Cache.remove cache 1;
      check_bool (Cache.kind_name kind ^ " removed") false (Cache.mem cache 1);
      Cache.clear cache;
      check_int (Cache.kind_name kind ^ " cleared") 0 (Cache.size cache);
      check_int (Cache.kind_name kind ^ " stats reset") 0 (Cache.stats cache).Cache.accesses)
    policy_kinds

let test_mem_does_not_mutate () =
  List.iter
    (fun kind ->
      let cache = Cache.create kind ~capacity:2 in
      ignore (Cache.access cache 1);
      check_bool "probe" true (Cache.mem cache 1);
      check_int (Cache.kind_name kind ^ " probe not counted") 1 (Cache.stats cache).Cache.accesses)
    policy_kinds

let test_invalid_capacity () =
  Alcotest.check_raises "lru cap 0" (Invalid_argument "Lru.create: capacity must be positive")
    (fun () -> ignore (Cache.create Cache.Lru ~capacity:0))

let test_kind_names_roundtrip () =
  List.iter
    (fun kind ->
      match Cache.kind_of_string (Cache.kind_name kind) with
      | Some k -> check_bool "roundtrip" true (k = kind)
      | None -> Alcotest.fail "kind name should parse")
    policy_kinds;
  check_bool "unknown kind" true (Cache.kind_of_string "optimal" = None)

(* Cold reposition of a resident key (the speculative-member path hitting
   data that is already cached) must reposition only: no eviction, no
   size change, key still resident. Pinned per policy at the Policy.S
   level, where ~pos is exposed. *)
let policy_modules : (string * (module Policy.S)) list =
  [
    ("lru", (module Lru));
    ("lfu", (module Lfu));
    ("fifo", (module Fifo));
    ("mru", (module Mru));
    ("clock", (module Clock));
    ("random", (module Random_policy));
    ("mq", (module Mq));
    ("slru", (module Slru));
    ("twoq", (module Twoq));
    ("arc", (module Arc));
  ]

let test_cold_reposition_never_evicts () =
  List.iter
    (fun (name, (module P : Policy.S)) ->
      let t = P.create ~capacity:3 in
      ignore (P.insert t ~pos:Policy.Hot ~weight:Policy.unit_weight 1);
      ignore (P.insert t ~pos:Policy.Hot ~weight:Policy.unit_weight 2);
      ignore (P.insert t ~pos:Policy.Hot ~weight:Policy.unit_weight 3);
      Alcotest.(check (list int)) (name ^ " reposition returns no victims") []
        (P.insert t ~pos:Policy.Cold ~weight:Policy.unit_weight 2);
      check_int (name ^ " size unchanged") 3 (P.size t);
      check_bool (name ^ " still resident") true (P.mem t 2))
    policy_modules

let test_cold_reposition_demotes () =
  (* Where the demotion itself is observable, pin the next victim: the
     repositioned key becomes first to go everywhere it has an ordered
     cold end (2q keeps it inside its current queue and random ignores
     position entirely, so both are covered by the no-evict law above);
     mru's victim end is the hot end, so its victim stays the newest key. *)
  List.iter
    (fun (name, (module P : Policy.S), expected) ->
      let t = P.create ~capacity:3 in
      ignore (P.insert t ~pos:Policy.Hot ~weight:Policy.unit_weight 1);
      ignore (P.insert t ~pos:Policy.Hot ~weight:Policy.unit_weight 2);
      ignore (P.insert t ~pos:Policy.Hot ~weight:Policy.unit_weight 3);
      ignore (P.insert t ~pos:Policy.Cold ~weight:Policy.unit_weight 2);
      Alcotest.(check (option int)) (name ^ " next victim") (Some expected) (P.evict t))
    [
      ("lru", (module Lru : Policy.S), 2);
      ("lfu", (module Lfu : Policy.S), 2);
      ("fifo", (module Fifo : Policy.S), 2);
      ("clock", (module Clock : Policy.S), 2);
      ("slru", (module Slru : Policy.S), 2);
      ("mq", (module Mq : Policy.S), 2);
      ("arc", (module Arc : Policy.S), 2);
      ("mru", (module Mru : Policy.S), 3);
    ]

(* --- LRU specifics --------------------------------------------------- *)

let test_lru_evicts_least_recent () =
  let cache = Cache.create Cache.Lru ~capacity:3 in
  ignore (drive cache [ 1; 2; 3 ]);
  ignore (Cache.access cache 1);
  (* 2 is now the LRU entry *)
  ignore (Cache.access cache 4);
  (* evicts 2 *)
  check_bool "2 evicted" false (Cache.mem cache 2);
  check_bool "1 kept" true (Cache.mem cache 1);
  check_bool "3 kept" true (Cache.mem cache 3)

let test_lru_contents_order () =
  let cache = Cache.create Cache.Lru ~capacity:3 in
  ignore (drive cache [ 1; 2; 3 ]);
  ignore (Cache.access cache 2);
  check_list "MRU first" [ 2; 3; 1 ] (Cache.contents cache)

(* LRU inclusion property: a larger LRU cache hits whenever a smaller one
   does. *)
let test_lru_inclusion_property () =
  let prng = Agg_util.Prng.create ~seed:4 () in
  let trace = Array.init 2000 (fun _ -> Agg_util.Prng.int prng 60) in
  let small = Cache.create Cache.Lru ~capacity:8 in
  let large = Cache.create Cache.Lru ~capacity:16 in
  Array.iter
    (fun key ->
      let hit_small = Cache.access small key in
      let hit_large = Cache.access large key in
      if hit_small then check_bool "small hit implies large hit" true hit_large)
    trace

(* --- LFU specifics --------------------------------------------------- *)

let test_lfu_evicts_least_frequent () =
  let cache = Cache.create Cache.Lfu ~capacity:2 in
  ignore (Cache.access cache 1);
  ignore (Cache.access cache 1);
  ignore (Cache.access cache 2);
  ignore (Cache.access cache 3);
  (* 2 has in-cache count 1, 1 has count 2: 2 is the victim *)
  check_bool "2 evicted" false (Cache.mem cache 2);
  check_bool "1 kept" true (Cache.mem cache 1);
  check_bool "3 resident" true (Cache.mem cache 3)

let test_lfu_frequency_counter () =
  let lfu = Lfu.create ~capacity:4 in
  ignore (Lfu.insert lfu ~pos:Policy.Hot ~weight:Policy.unit_weight 9);
  Lfu.promote lfu 9;
  Lfu.promote lfu 9;
  Alcotest.(check (option int)) "count" (Some 3) (Lfu.frequency lfu 9)

let test_lfu_cold_insert_is_first_victim () =
  let cache = Cache.create Cache.Lfu ~capacity:3 in
  ignore (Cache.access cache 1);
  ignore (Cache.access cache 2);
  Cache.insert_cold cache 3;
  (* frequency 0 *)
  ignore (Cache.access cache 4);
  (* must evict the speculative 3, not the demanded 1 or 2 *)
  check_bool "cold member evicted first" false (Cache.mem cache 3);
  check_bool "1 kept" true (Cache.mem cache 1);
  check_bool "2 kept" true (Cache.mem cache 2)

(* --- FIFO / MRU / CLOCK / Random ------------------------------------- *)

let test_fifo_ignores_accesses () =
  let cache = Cache.create Cache.Fifo ~capacity:2 in
  ignore (drive cache [ 1; 2 ]);
  ignore (Cache.access cache 1);
  (* a hit must not save 1 from FIFO order *)
  ignore (Cache.access cache 3);
  check_bool "1 evicted despite recent hit" false (Cache.mem cache 1);
  check_bool "2 kept" true (Cache.mem cache 2)

let test_mru_evicts_most_recent () =
  let cache = Cache.create Cache.Mru ~capacity:2 in
  ignore (drive cache [ 1; 2 ]);
  ignore (Cache.access cache 3);
  (* MRU victim is 2, the most recently touched *)
  check_bool "2 evicted" false (Cache.mem cache 2);
  check_bool "1 kept" true (Cache.mem cache 1)

let test_clock_second_chance () =
  let cache = Cache.create Cache.Clock ~capacity:3 in
  ignore (drive cache [ 1; 2; 3 ]);
  (* all reference bits set; the next miss sweeps them clear and, FIFO-
     like, evicts the oldest *)
  ignore (Cache.access cache 4);
  check_bool "oldest evicted on full sweep" false (Cache.mem cache 1);
  (* rereference 2: its bit is set again, so the next miss passes over it
     (second chance) and takes 3 *)
  check_bool "2 rereferenced" true (Cache.access cache 2);
  ignore (Cache.access cache 5);
  check_bool "2 survives via reference bit" true (Cache.mem cache 2);
  check_bool "3 evicted" false (Cache.mem cache 3)

let test_random_deterministic_with_seed () =
  let run () =
    let p = Random_policy.create_seeded ~capacity:4 ~seed:11 in
    let evicted = ref [] in
    for i = 0 to 19 do
      match Random_policy.insert p ~pos:Policy.Hot ~weight:Policy.unit_weight i with
      | [ v ] -> evicted := v :: !evicted
      | _ -> ()
    done;
    !evicted
  in
  check_list "same seed, same evictions" (run ()) (run ())

(* --- MQ / SLRU / 2Q (second-level policies) --------------------------- *)

let test_mq_frequency_tiers () =
  let mq = Mq.create_tuned ~capacity:8 ~queues:4 ~lifetime:1000 ~ghost_factor:4 in
  ignore (Mq.insert mq ~pos:Policy.Hot ~weight:Policy.unit_weight 1);
  Alcotest.(check (option int)) "1 hit -> queue 0" (Some 0) (Mq.queue_of mq 1);
  Mq.promote mq 1;
  Alcotest.(check (option int)) "2 hits -> queue 1" (Some 1) (Mq.queue_of mq 1);
  Mq.promote mq 1;
  Mq.promote mq 1;
  Alcotest.(check (option int)) "4 hits -> queue 2" (Some 2) (Mq.queue_of mq 1)

let test_mq_protects_frequent_blocks () =
  let cache = Cache.create Cache.Mq ~capacity:4 in
  (* make 1 frequent *)
  for _ = 1 to 8 do
    ignore (Cache.access cache 1)
  done;
  (* stream one-timers through: 1 must survive in a higher queue *)
  for i = 100 to 120 do
    ignore (Cache.access cache i)
  done;
  check_bool "frequent block survives scan" true (Cache.mem cache 1)

let test_mq_ghost_restores_standing () =
  (* capacity 1: eviction is forced on every new insert *)
  let mq = Mq.create_tuned ~capacity:1 ~queues:4 ~lifetime:1000 ~ghost_factor:8 in
  ignore (Mq.insert mq ~pos:Policy.Hot ~weight:Policy.unit_weight 1);
  Mq.promote mq 1;
  (* count 2 -> queue 1 *)
  ignore (Mq.insert mq ~pos:Policy.Hot ~weight:Policy.unit_weight 2);
  check_bool "1 evicted" false (Mq.mem mq 1);
  (* when 1 returns, the ghost buffer restores its frequency standing:
     remembered count 2 + 1 = 3 -> queue 1, not queue 0 *)
  ignore (Mq.insert mq ~pos:Policy.Hot ~weight:Policy.unit_weight 1);
  Alcotest.(check (option int)) "ghost count restored" (Some 1) (Mq.queue_of mq 1)

let test_mq_lifetime_demotes () =
  let mq = Mq.create_tuned ~capacity:4 ~queues:4 ~lifetime:2 ~ghost_factor:4 in
  ignore (Mq.insert mq ~pos:Policy.Hot ~weight:Policy.unit_weight 1);
  Mq.promote mq 1;
  Alcotest.(check (option int)) "starts in queue 1" (Some 1) (Mq.queue_of mq 1);
  (* four unrelated accesses age 1 past its 2-access lifetime *)
  for i = 10 to 13 do
    ignore (Mq.insert mq ~pos:Policy.Hot ~weight:Policy.unit_weight i)
  done;
  Alcotest.(check (option int)) "demoted to queue 0" (Some 0) (Mq.queue_of mq 1)

let test_slru_promotion () =
  let slru = Slru.create ~capacity:6 in
  ignore (Slru.insert slru ~pos:Policy.Hot ~weight:Policy.unit_weight 1);
  check_bool "new arrival is probationary" false (Slru.protected_resident slru 1);
  Slru.promote slru 1;
  check_bool "hit promotes to protected" true (Slru.protected_resident slru 1)

let test_slru_scan_resistance () =
  let cache = Cache.create Cache.Slru ~capacity:6 in
  (* build a protected working set of 2 *)
  List.iter (fun k -> ignore (Cache.access cache k)) [ 1; 2; 1; 2 ];
  (* scan 20 one-timers through a 6-entry cache *)
  for i = 100 to 119 do
    ignore (Cache.access cache i)
  done;
  check_bool "1 survives the scan" true (Cache.mem cache 1);
  check_bool "2 survives the scan" true (Cache.mem cache 2)

let test_slru_protected_overflow_demotes () =
  let slru = Slru.create ~capacity:3 in
  (* protected capacity = 2 *)
  List.iter
    (fun k ->
      ignore (Slru.insert slru ~pos:Policy.Hot ~weight:Policy.unit_weight k);
      Slru.promote slru k)
    [ 1; 2; 3 ];
  (* promoting 3 overflows the protected segment; its LRU (1) demotes *)
  check_bool "3 protected" true (Slru.protected_resident slru 3);
  check_bool "1 demoted but resident" true (Slru.mem slru 1 && not (Slru.protected_resident slru 1))

let test_twoq_admission () =
  let q = Twoq.create ~capacity:8 in
  ignore (Twoq.insert q ~pos:Policy.Hot ~weight:Policy.unit_weight 1);
  check_bool "first touch goes to A1in" false (Twoq.in_main q 1);
  Twoq.promote q 1;
  check_bool "A1in hit does not promote" false (Twoq.in_main q 1)

let test_twoq_ghost_promotes_on_return () =
  let q = Twoq.create ~capacity:4 in
  (* a1in quota = 1; reclaiming starts only when the cache is full *)
  List.iter (fun k -> ignore (Twoq.insert q ~pos:Policy.Hot ~weight:Policy.unit_weight k)) [ 1; 2; 3; 4; 5 ];
  (* the 5th insert reclaimed from the over-quota A1in: 1 went to A1out *)
  check_bool "1 evicted to ghost" false (Twoq.mem q 1);
  ignore (Twoq.insert q ~pos:Policy.Hot ~weight:Policy.unit_weight 1);
  check_bool "returning key admitted to main" true (Twoq.in_main q 1)

let test_twoq_scan_resistance () =
  let cache = Cache.create Cache.Twoq ~capacity:8 in
  (* push 1 through A1in into the ghost, then bring it back into Am *)
  ignore (Cache.access cache 1);
  for i = 100 to 107 do
    ignore (Cache.access cache i)
  done;
  ignore (Cache.access cache 1);
  (* long scan of one-timers: the main-queue entry must survive because
     reclamation keeps coming from the over-quota A1in *)
  for i = 200 to 239 do
    ignore (Cache.access cache i)
  done;
  check_bool "main-queue entry survives scan" true (Cache.mem cache 1)

let test_arc_two_touches_reach_t2 () =
  let arc = Arc.create ~capacity:4 in
  ignore (Arc.insert arc ~pos:Policy.Hot ~weight:Policy.unit_weight 1);
  check_bool "first touch in T1" false (Arc.in_t2 arc 1);
  Arc.promote arc 1;
  check_bool "second touch in T2" true (Arc.in_t2 arc 1)

let test_arc_ghost_hit_adapts_target () =
  let arc = Arc.create ~capacity:2 in
  (* 1 becomes frequent (T2); 2 passes through T1 and is REPLACEd into
     the B1 ghost when 3 arrives *)
  ignore (Arc.insert arc ~pos:Policy.Hot ~weight:Policy.unit_weight 1);
  Arc.promote arc 1;
  ignore (Arc.insert arc ~pos:Policy.Hot ~weight:Policy.unit_weight 2);
  ignore (Arc.insert arc ~pos:Policy.Hot ~weight:Policy.unit_weight 3);
  check_bool "2 no longer resident" false (Arc.mem arc 2);
  check_int "target starts at 0" 0 (Arc.target arc);
  (* a B1 ghost hit grows the recency target and revives 2 into T2 *)
  ignore (Arc.insert arc ~pos:Policy.Hot ~weight:Policy.unit_weight 2);
  check_bool "revived" true (Arc.mem arc 2);
  check_bool "revived into T2" true (Arc.in_t2 arc 2);
  check_bool "target grew" true (Arc.target arc > 0)

let test_arc_discards_t1_lru_when_t1_full () =
  (* canonical case IV: when T1 alone fills the cache, its LRU is
     discarded outright, not remembered in B1 — so an immediate return is
     a plain cold miss *)
  let arc = Arc.create ~capacity:2 in
  ignore (Arc.insert arc ~pos:Policy.Hot ~weight:Policy.unit_weight 1);
  ignore (Arc.insert arc ~pos:Policy.Hot ~weight:Policy.unit_weight 2);
  ignore (Arc.insert arc ~pos:Policy.Hot ~weight:Policy.unit_weight 3);
  ignore (Arc.insert arc ~pos:Policy.Hot ~weight:Policy.unit_weight 1);
  check_bool "no ghost memory of 1" true (Arc.mem arc 1 && not (Arc.in_t2 arc 1));
  check_int "target unchanged" 0 (Arc.target arc)

let test_arc_scan_resistance () =
  let cache = Cache.create Cache.Arc ~capacity:8 in
  (* establish a reused pair in T2 *)
  List.iter (fun k -> ignore (Cache.access cache k)) [ 1; 2; 1; 2 ];
  for i = 100 to 139 do
    ignore (Cache.access cache i)
  done;
  check_bool "frequent keys survive a scan" true (Cache.mem cache 1 && Cache.mem cache 2)

(* --- group-block insertion (the aggregating-cache primitive) -------- *)

let test_group_members_do_not_evict_each_other () =
  let cache = Cache.create Cache.Lru ~capacity:10 in
  for i = 0 to 9 do
    ignore (Cache.access cache i)
  done;
  (* full cache; now a demand miss plus a group of 4 members *)
  ignore (Cache.access cache 100);
  let admitted = Cache.insert_cold_group cache [ 101; 102; 103; 104 ] in
  check_list "all members admitted" [ 101; 102; 103; 104 ] admitted;
  List.iter
    (fun m -> check_bool (string_of_int m ^ " resident") true (Cache.mem cache m))
    [ 100; 101; 102; 103; 104 ]

let test_group_eviction_order () =
  let cache = Cache.create Cache.Lru ~capacity:5 in
  ignore (Cache.access cache 0);
  ignore (Cache.insert_cold_group cache [ 1; 2; 3; 4 ]);
  (* next demand insert must evict the deepest (least likely) member: 4 *)
  ignore (Cache.access cache 50);
  check_bool "member 4 evicted first" false (Cache.mem cache 4);
  check_bool "member 1 still resident" true (Cache.mem cache 1)

let test_group_capped_at_capacity_minus_one () =
  let cache = Cache.create Cache.Lru ~capacity:3 in
  ignore (Cache.access cache 0);
  let admitted = Cache.insert_cold_group cache [ 1; 2; 3; 4; 5 ] in
  check_list "only capacity-1 members admitted" [ 1; 2 ] admitted;
  check_bool "demanded file survives its own group" true (Cache.mem cache 0)

let test_group_skips_residents_and_duplicates () =
  let cache = Cache.create Cache.Lru ~capacity:10 in
  ignore (Cache.access cache 1);
  let admitted = Cache.insert_cold_group cache [ 1; 2; 2; 3 ] in
  check_list "resident and duplicate filtered" [ 2; 3 ] admitted;
  let s = Cache.stats cache in
  check_int "speculative counted" 2 s.Cache.speculative_insertions

let test_insert_hot_no_access_count () =
  let cache = Cache.create Cache.Lru ~capacity:4 in
  Cache.insert_hot cache 1;
  check_bool "resident" true (Cache.mem cache 1);
  check_int "no access recorded" 0 (Cache.stats cache).Cache.accesses

(* --- Belady ----------------------------------------------------------- *)

let test_belady_crafted () =
  (* capacity 2, trace 1 2 3 1 2: fetching 3 must evict the entry whose
     next use is furthest (2, used at position 4), so position 3's access
     to 1 hits and position 4's access to 2 misses — exactly one hit. *)
  let r = Belady.simulate ~capacity:2 [| 1; 2; 3; 1; 2 |] in
  check_int "hits" 1 r.Belady.hits;
  check_int "misses" 4 r.Belady.misses;
  check_int "accesses" 5 r.Belady.accesses;
  (* a trace where MIN visibly beats LRU: capacity 2, 1 2 1 2 3 1 2 —
     LRU evicts 1 when 3 arrives, MIN evicts 3's loser 2?  Check the
     canonical case: 1 2 3 1 2 3 under capacity 2 gives LRU zero hits,
     MIN two. *)
  let min = Belady.simulate ~capacity:2 [| 1; 2; 3; 1; 2; 3 |] in
  let lru = Cache.create Cache.Lru ~capacity:2 in
  let lru_hits =
    List.fold_left (fun acc k -> if Cache.access lru k then acc + 1 else acc) 0 [ 1; 2; 3; 1; 2; 3 ]
  in
  check_int "lru thrashes" 0 lru_hits;
  check_int "min hits twice" 2 min.Belady.hits

let test_belady_capacity_one () =
  let r = Belady.simulate ~capacity:1 [| 1; 1; 2; 2; 1 |] in
  check_int "hits" 2 r.Belady.hits

let test_belady_beats_lru () =
  (* MIN is optimal: on any trace it has at least as many hits as LRU. *)
  let prng = Agg_util.Prng.create ~seed:77 () in
  for _ = 1 to 25 do
    let n = 200 + Agg_util.Prng.int prng 200 in
    let trace = Array.init n (fun _ -> Agg_util.Prng.int prng 40) in
    let capacity = 2 + Agg_util.Prng.int prng 12 in
    let optimal = Belady.simulate ~capacity trace in
    let lru = Cache.create Cache.Lru ~capacity in
    let lru_hits =
      Array.fold_left (fun acc k -> if Cache.access lru k then acc + 1 else acc) 0 trace
    in
    check_bool "belady >= lru" true (optimal.Belady.hits >= lru_hits)
  done

let test_belady_invalid () =
  Alcotest.check_raises "cap 0" (Invalid_argument "Belady.simulate: capacity must be positive")
    (fun () -> ignore (Belady.simulate ~capacity:0 [| 1 |]))

(* --- Multilevel -------------------------------------------------------- *)

let test_multilevel_outcomes () =
  let ml =
    Multilevel.create
      ~client:(Cache.create Cache.Lru ~capacity:1)
      ~server:(Cache.create Cache.Lru ~capacity:2)
  in
  check_bool "first access misses everywhere" true (Multilevel.access ml 1 = Multilevel.Server_miss);
  check_bool "client hit" true (Multilevel.access ml 1 = Multilevel.Client_hit);
  check_bool "2 misses" true (Multilevel.access ml 2 = Multilevel.Server_miss);
  (* 1 was evicted from the 1-entry client but the server still holds it *)
  check_bool "server hit" true (Multilevel.access ml 1 = Multilevel.Server_hit)

let test_multilevel_hit_rate () =
  let ml =
    Multilevel.create
      ~client:(Cache.create Cache.Lru ~capacity:1)
      ~server:(Cache.create Cache.Lru ~capacity:4)
  in
  List.iter (fun k -> ignore (Multilevel.access ml k)) [ 1; 2; 1; 2; 1; 2 ];
  (* client absorbs nothing (alternating), server hits after warm-up *)
  check_bool "server rate in (0,1)" true
    (Multilevel.server_hit_rate ml > 0.0 && Multilevel.server_hit_rate ml < 1.0);
  Multilevel.reset_stats ml;
  check_int "reset" 0 (Cache.stats (Multilevel.server ml)).Cache.accesses

(* --- arena ports vs the pre-arena pointer implementation ---------------- *)

(* The boxed-node implementation the pure-recency policies had before the
   arena port, re-derived in test scope: an [Agg_util.Dlist] of pointer
   nodes plus a [Hashtbl] index. The three flavours differ only in
   whether accesses promote ([`Fifo] ignores them, including a [Hot]
   re-insert) and which end evicts ([`Mru] the front). The arena-backed
   ports must match it operation for operation, including the exact
   [contents] order — a stronger pin than the order-free
   [Oracle.Model_cache] agreement. *)
module Pointer = struct
  module Dlist = Agg_util.Dlist

  type t = {
    flavour : [ `Lru | `Fifo | `Mru ];
    capacity : int;
    order : int Dlist.t;
    index : (int, int Dlist.node) Hashtbl.t;
  }

  let create flavour ~capacity =
    { flavour; capacity; order = Dlist.create (); index = Hashtbl.create (2 * capacity) }

  let size t = Dlist.length t.order
  let mem t key = Hashtbl.mem t.index key

  let promote t key =
    match (t.flavour, Hashtbl.find_opt t.index key) with
    | `Fifo, _ | _, None -> ()
    | (`Lru | `Mru), Some node -> Dlist.move_to_front t.order node

  let evict t =
    let victim =
      match t.flavour with
      | `Mru -> Dlist.pop_front t.order
      | `Lru | `Fifo -> Dlist.pop_back t.order
    in
    Option.iter (Hashtbl.remove t.index) victim;
    victim

  let insert t ~pos key =
    match Hashtbl.find_opt t.index key with
    | Some node ->
        (match (pos, t.flavour) with
        | Policy.Hot, `Fifo -> ()
        | Policy.Hot, (`Lru | `Mru) -> Dlist.move_to_front t.order node
        | Policy.Cold, _ -> Dlist.move_to_back t.order node);
        None
    | None ->
        let victim = if size t >= t.capacity then evict t else None in
        let node =
          match pos with
          | Policy.Hot -> Dlist.push_front t.order key
          | Policy.Cold -> Dlist.push_back t.order key
        in
        Hashtbl.replace t.index key node;
        victim

  let remove t key =
    match Hashtbl.find_opt t.index key with
    | Some node ->
        Dlist.remove t.order node;
        Hashtbl.remove t.index key
    | None -> ()

  let contents t = Dlist.to_list t.order
end

let pointer_agreement name flavour (module P : Policy.S) =
  QCheck.Test.make
    ~name:(name ^ " arena port matches the pointer implementation exactly")
    ~count:200
    QCheck.(pair (int_range 1 10) (list (pair (int_range 0 4) (int_range 0 25))))
    (fun (capacity, ops) ->
      let real = P.create ~capacity in
      let model = Pointer.create flavour ~capacity in
      List.for_all
        (fun (op, key) ->
          let step_ok =
            match op with
            | 0 ->
                P.promote real key;
                Pointer.promote model key;
                true
            | 1 ->
                P.insert real ~pos:Policy.Hot ~weight:Policy.unit_weight key
                = Option.to_list (Pointer.insert model ~pos:Policy.Hot key)
            | 2 ->
                P.insert real ~pos:Policy.Cold ~weight:Policy.unit_weight key
                = Option.to_list (Pointer.insert model ~pos:Policy.Cold key)
            | 3 -> P.evict real = Pointer.evict model
            | _ ->
                P.remove real key;
                Pointer.remove model key;
                true
          in
          step_ok
          && P.size real = Pointer.size model
          && P.mem real key = Pointer.mem model key
          && P.contents real = Pointer.contents model)
        ops)

(* --- weighted facade ----------------------------------------------------- *)

(* Sizes/costs for the crafted weighted tests: 1->(2,2), 2->(2,4),
   3->(4,1), everything else unit. *)
let crafted_weight k =
  match k with
  | 1 -> { Policy.size = 2; cost = 2 }
  | 2 -> { Policy.size = 2; cost = 4 }
  | 3 -> { Policy.size = 4; cost = 1 }
  | _ -> Policy.unit_weight

let test_weighted_multi_victim_contents () =
  (* Weighted_of_unit makes room by repeated core evictions: the size-4
     newcomer pushes out both residents in LRU order. *)
  let cache = Cache.create ~weight_of:crafted_weight Cache.Lru ~capacity:4 in
  check_bool "miss 1" false (Cache.access cache 1);
  check_bool "miss 2" false (Cache.access cache 2);
  check_bool "miss 3" false (Cache.access cache 3);
  check_list "only the size-4 file survives" [ 3 ] (Cache.contents cache);
  check_int "used" 4 (Cache.used cache);
  let w = Cache.weighted_stats cache in
  check_int "bytes accessed" 8 w.Cache.bytes_accessed;
  check_int "bytes hit" 0 w.Cache.bytes_hit;
  check_int "cost fetched" 7 w.Cache.cost_fetched;
  check_int "nothing prefetched" 0 w.Cache.cost_prefetched

let test_weighted_hit_accounting () =
  let cache = Cache.create ~weight_of:crafted_weight Cache.Lru ~capacity:8 in
  ignore (Cache.access cache 1);
  ignore (Cache.access cache 2);
  check_bool "hit" true (Cache.access cache 1);
  let w = Cache.weighted_stats cache in
  check_int "bytes accessed" 6 w.Cache.bytes_accessed;
  check_int "bytes hit" 2 w.Cache.bytes_hit;
  check_int "cost fetched only for misses" 6 w.Cache.cost_fetched

let test_weighted_oversize_bypass () =
  (* a file larger than the whole cache is fetched (cost counted) but
     never admitted, and evicts nothing *)
  let weight_of k = if k = 9 then { Policy.size = 5; cost = 3 } else Policy.unit_weight in
  let cache = Cache.create ~weight_of Cache.Lru ~capacity:4 in
  ignore (Cache.access cache 1);
  check_bool "oversize misses" false (Cache.access cache 9);
  check_bool "not admitted" false (Cache.mem cache 9);
  check_bool "resident untouched" true (Cache.mem cache 1);
  let w = Cache.weighted_stats cache in
  check_int "its fetch is still paid" 4 w.Cache.cost_fetched

let test_weighted_unit_stats_mirror () =
  (* without weight_of the byte counters mirror the unweighted ones *)
  let cache = Cache.create Cache.Lru ~capacity:3 in
  List.iter (fun k -> ignore (Cache.access cache k)) [ 1; 2; 1; 3; 4; 1 ];
  let s = Cache.stats cache and w = Cache.weighted_stats cache in
  check_int "bytes = accesses" s.Cache.accesses w.Cache.bytes_accessed;
  check_int "bytes hit = hits" s.Cache.hits w.Cache.bytes_hit;
  check_int "cost = misses" s.Cache.misses w.Cache.cost_fetched

(* --- qcheck properties -------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  let trace_gen = list_of_size (Gen.int_range 50 300) (int_range 0 30) in
  [
    pointer_agreement "lru" `Lru (module Lru);
    pointer_agreement "fifo" `Fifo (module Fifo);
    pointer_agreement "mru" `Mru (module Mru);
    Test.make ~name:"every policy respects capacity" ~count:100
      (pair trace_gen (int_range 1 10))
      (fun (trace, capacity) ->
        List.for_all
          (fun kind ->
            let cache = Cache.create kind ~capacity in
            List.iter (fun k -> ignore (Cache.access cache k)) trace;
            Cache.size cache <= capacity)
          policy_kinds);
    Test.make ~name:"hits + misses = accesses for every policy" ~count:100
      (pair trace_gen (int_range 1 10))
      (fun (trace, capacity) ->
        List.for_all
          (fun kind ->
            let cache = Cache.create kind ~capacity in
            List.iter (fun k -> ignore (Cache.access cache k)) trace;
            let s = Cache.stats cache in
            s.Cache.hits + s.Cache.misses = s.Cache.accesses
            && s.Cache.accesses = List.length trace)
          policy_kinds);
    Test.make ~name:"belady dominates every online policy" ~count:60
      (pair trace_gen (int_range 1 10))
      (fun (trace, capacity) ->
        let arr = Array.of_list trace in
        let optimal = (Belady.simulate ~capacity arr).Belady.hits in
        List.for_all
          (fun kind ->
            let cache = Cache.create kind ~capacity in
            let h =
              Array.fold_left (fun acc k -> if Cache.access cache k then acc + 1 else acc) 0 arr
            in
            h <= optimal)
          policy_kinds);
    Test.make ~name:"insert_cold_group members are resident afterwards" ~count:100
      (pair (list_of_size (Gen.int_range 0 20) (int_range 0 50)) (int_range 2 12))
      (fun (members, capacity) ->
        let cache = Cache.create Cache.Lru ~capacity in
        let admitted = Cache.insert_cold_group cache members in
        List.length admitted <= capacity - 1 && List.for_all (fun m -> Cache.mem cache m) admitted);
    Test.make ~name:"group block insertion safe under every policy" ~count:80
      (pair (list_of_size (Gen.int_range 50 200) (int_range 0 30)) (int_range 2 10))
      (fun (trace, capacity) ->
        List.for_all
          (fun kind ->
            let cache = Cache.create kind ~capacity in
            List.iteri
              (fun i key ->
                if not (Cache.access cache key) then
                  ignore (Cache.insert_cold_group cache [ key + 1; key + 2; i mod 7 ]))
              trace;
            Cache.size cache <= capacity)
          policy_kinds);
    Test.make ~name:"removing then reinserting keeps policies consistent" ~count:60
      (list_of_size (Gen.int_range 20 100) (int_range 0 15))
      (fun trace ->
        List.for_all
          (fun kind ->
            let cache = Cache.create kind ~capacity:5 in
            List.iteri
              (fun i key ->
                ignore (Cache.access cache key);
                if i mod 3 = 0 then Cache.remove cache key)
              trace;
            (* size stays within bounds and removed keys are gone *)
            Cache.size cache <= 5)
          policy_kinds);
    Test.make ~name:"every policy conserves capacity under weights" ~count:60
      (pair trace_gen (int_range 4 12))
      (fun (trace, capacity) ->
        let weight_of k = { Policy.size = 1 + (k mod 3); cost = 1 + (k mod 5) } in
        List.for_all
          (fun kind ->
            let cache = Cache.create ~weight_of kind ~capacity in
            List.iter (fun k -> ignore (Cache.access cache k)) trace;
            Cache.used cache <= capacity
            && Cache.used cache
               = List.fold_left
                   (fun acc k -> acc + (weight_of k).Policy.size)
                   0 (Cache.contents cache))
          policy_kinds);
    Test.make ~name:"contents agrees with mem for ordered policies" ~count:60
      (list_of_size (Gen.int_range 20 150) (int_range 0 25))
      (fun trace ->
        List.for_all
          (fun kind ->
            let cache = Cache.create kind ~capacity:8 in
            List.iter (fun key -> ignore (Cache.access cache key)) trace;
            let contents = Cache.contents cache in
            List.length contents = Cache.size cache
            && List.for_all (fun k -> Cache.mem cache k) contents)
          policy_kinds);
  ]

let () =
  Alcotest.run "agg_cache"
    [
      ( "policy laws",
        [
          Alcotest.test_case "capacity bound" `Quick test_capacity_never_exceeded;
          Alcotest.test_case "hit iff resident" `Quick test_hit_iff_resident;
          Alcotest.test_case "stats identities" `Quick test_stats_identities;
          Alcotest.test_case "remove and clear" `Quick test_remove_and_clear;
          Alcotest.test_case "mem does not mutate" `Quick test_mem_does_not_mutate;
          Alcotest.test_case "invalid capacity" `Quick test_invalid_capacity;
          Alcotest.test_case "kind names roundtrip" `Quick test_kind_names_roundtrip;
          Alcotest.test_case "cold reposition never evicts" `Quick
            test_cold_reposition_never_evicts;
          Alcotest.test_case "cold reposition demotes" `Quick test_cold_reposition_demotes;
        ] );
      ( "lru",
        [
          Alcotest.test_case "evicts least recent" `Quick test_lru_evicts_least_recent;
          Alcotest.test_case "contents order" `Quick test_lru_contents_order;
          Alcotest.test_case "inclusion property" `Quick test_lru_inclusion_property;
        ] );
      ( "lfu",
        [
          Alcotest.test_case "evicts least frequent" `Quick test_lfu_evicts_least_frequent;
          Alcotest.test_case "frequency counter" `Quick test_lfu_frequency_counter;
          Alcotest.test_case "cold insert is first victim" `Quick
            test_lfu_cold_insert_is_first_victim;
        ] );
      ( "other policies",
        [
          Alcotest.test_case "fifo ignores accesses" `Quick test_fifo_ignores_accesses;
          Alcotest.test_case "mru evicts most recent" `Quick test_mru_evicts_most_recent;
          Alcotest.test_case "clock second chance" `Quick test_clock_second_chance;
          Alcotest.test_case "random deterministic" `Quick test_random_deterministic_with_seed;
        ] );
      ( "second-level policies",
        [
          Alcotest.test_case "mq frequency tiers" `Quick test_mq_frequency_tiers;
          Alcotest.test_case "mq protects frequent" `Quick test_mq_protects_frequent_blocks;
          Alcotest.test_case "mq ghost restores standing" `Quick test_mq_ghost_restores_standing;
          Alcotest.test_case "mq lifetime demotes" `Quick test_mq_lifetime_demotes;
          Alcotest.test_case "slru promotion" `Quick test_slru_promotion;
          Alcotest.test_case "slru scan resistance" `Quick test_slru_scan_resistance;
          Alcotest.test_case "slru protected overflow" `Quick test_slru_protected_overflow_demotes;
          Alcotest.test_case "2q admission" `Quick test_twoq_admission;
          Alcotest.test_case "2q ghost promotes on return" `Quick test_twoq_ghost_promotes_on_return;
          Alcotest.test_case "2q scan resistance" `Quick test_twoq_scan_resistance;
          Alcotest.test_case "arc two touches reach t2" `Quick test_arc_two_touches_reach_t2;
          Alcotest.test_case "arc ghost adapts" `Quick test_arc_ghost_hit_adapts_target;
          Alcotest.test_case "arc discards full-T1 LRU" `Quick test_arc_discards_t1_lru_when_t1_full;
          Alcotest.test_case "arc scan resistance" `Quick test_arc_scan_resistance;
        ] );
      ( "group insertion",
        [
          Alcotest.test_case "members do not evict each other" `Quick
            test_group_members_do_not_evict_each_other;
          Alcotest.test_case "eviction order" `Quick test_group_eviction_order;
          Alcotest.test_case "capped at capacity-1" `Quick test_group_capped_at_capacity_minus_one;
          Alcotest.test_case "skips residents and duplicates" `Quick
            test_group_skips_residents_and_duplicates;
          Alcotest.test_case "insert_hot accounting" `Quick test_insert_hot_no_access_count;
        ] );
      ( "belady",
        [
          Alcotest.test_case "crafted trace" `Quick test_belady_crafted;
          Alcotest.test_case "capacity one" `Quick test_belady_capacity_one;
          Alcotest.test_case "beats lru" `Quick test_belady_beats_lru;
          Alcotest.test_case "invalid" `Quick test_belady_invalid;
        ] );
      ( "multilevel",
        [
          Alcotest.test_case "outcomes" `Quick test_multilevel_outcomes;
          Alcotest.test_case "hit rate" `Quick test_multilevel_hit_rate;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "multi-victim eviction" `Quick test_weighted_multi_victim_contents;
          Alcotest.test_case "hit accounting" `Quick test_weighted_hit_accounting;
          Alcotest.test_case "oversize bypass" `Quick test_weighted_oversize_bypass;
          Alcotest.test_case "unit mirrors unweighted" `Quick test_weighted_unit_stats_mirror;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
