(* Unit and property tests for Agg_util: PRNG, distributions, statistics,
   and the core data structures every other library builds on. *)

open Agg_util

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose tolerance = Alcotest.(check (float tolerance))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Prng ----------------------------------------------------------- *)

let test_prng_determinism () =
  let a = Prng.create ~seed:123 () in
  let b = Prng.create ~seed:123 () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 () in
  let b = Prng.create ~seed:2 () in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.bits64 a) (Prng.bits64 b)) then differs := true
  done;
  check_bool "different seeds diverge" true !differs

let test_prng_copy () =
  let a = Prng.create ~seed:99 () in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_prng_split () =
  let a = Prng.create ~seed:5 () in
  let b = Prng.split a in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.bits64 a) (Prng.bits64 b)) then differs := true
  done;
  check_bool "split stream differs from parent" true !differs

let test_prng_derive () =
  let a = Prng.create ~seed:5 () in
  let b = Prng.copy a in
  Alcotest.(check int64) "derive is reproducible"
    (Prng.bits64 (Prng.derive a 3))
    (Prng.bits64 (Prng.derive a 3));
  Alcotest.(check int64) "derive leaves the parent untouched" (Prng.bits64 b) (Prng.bits64 a)

let test_prng_int_bounds () =
  let t = Prng.create ~seed:7 () in
  for _ = 1 to 1000 do
    let v = Prng.int t 17 in
    check_bool "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_prng_int_invalid () =
  let t = Prng.create () in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int t 0))

let test_prng_int_in_range () =
  let t = Prng.create ~seed:11 () in
  for _ = 1 to 500 do
    let v = Prng.int_in_range t ~lo:(-3) ~hi:4 in
    check_bool "-3 <= v <= 4" true (v >= -3 && v <= 4)
  done;
  check_int "degenerate range" 9 (Prng.int_in_range t ~lo:9 ~hi:9)

let test_prng_float_bounds () =
  let t = Prng.create ~seed:13 () in
  for _ = 1 to 1000 do
    let v = Prng.float t 2.5 in
    check_bool "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_prng_bernoulli_degenerate () =
  let t = Prng.create () in
  check_bool "p=0 never" false (Prng.bernoulli t ~p:0.0);
  check_bool "p=1 always" true (Prng.bernoulli t ~p:1.0)

let test_prng_bernoulli_rate () =
  let t = Prng.create ~seed:3 () in
  let hits = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    if Prng.bernoulli t ~p:0.3 then incr hits
  done;
  check_float_loose 0.02 "empirical rate near 0.3" 0.3 (float_of_int !hits /. float_of_int n)

let test_prng_shuffle_permutes () =
  let t = Prng.create ~seed:21 () in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "multiset preserved" (Array.init 50 (fun i -> i)) sorted

let test_prng_choose () =
  let t = Prng.create ~seed:2 () in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    check_bool "chosen element is a member" true (Array.mem (Prng.choose t a) a)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choose: empty array") (fun () ->
      ignore (Prng.choose t [||]))

(* --- Dist ----------------------------------------------------------- *)

let test_zipf_pmf_sums_to_one () =
  let z = Dist.Zipf.create ~n:100 ~s:1.0 in
  let total = ref 0.0 in
  for k = 0 to 99 do
    total := !total +. Dist.Zipf.prob z k
  done;
  check_float_loose 1e-9 "pmf sums to 1" 1.0 !total

let test_zipf_skew () =
  let z = Dist.Zipf.create ~n:10 ~s:1.0 in
  check_bool "rank 0 most likely" true (Dist.Zipf.prob z 0 > Dist.Zipf.prob z 9);
  check_float_loose 1e-9 "1/k law" (Dist.Zipf.prob z 0 /. 2.0) (Dist.Zipf.prob z 1)

let test_zipf_uniform_when_s0 () =
  let z = Dist.Zipf.create ~n:4 ~s:0.0 in
  for k = 0 to 3 do
    check_float_loose 1e-9 "uniform" 0.25 (Dist.Zipf.prob z k)
  done

let test_zipf_sample_range () =
  let z = Dist.Zipf.create ~n:7 ~s:0.8 in
  let t = Prng.create ~seed:5 () in
  for _ = 1 to 1000 do
    let v = Dist.Zipf.sample z t in
    check_bool "in range" true (v >= 0 && v < 7)
  done

let test_zipf_single_rank () =
  let z = Dist.Zipf.create ~n:1 ~s:2.0 in
  let t = Prng.create () in
  for _ = 1 to 20 do
    check_int "always 0" 0 (Dist.Zipf.sample z t)
  done

let test_zipf_empirical_matches_pmf () =
  let z = Dist.Zipf.create ~n:5 ~s:1.2 in
  let t = Prng.create ~seed:9 () in
  let counts = Array.make 5 0 in
  let n = 50000 in
  for _ = 1 to n do
    let k = Dist.Zipf.sample z t in
    counts.(k) <- counts.(k) + 1
  done;
  for k = 0 to 4 do
    check_float_loose 0.01 "empirical vs pmf"
      (Dist.Zipf.prob z k)
      (float_of_int counts.(k) /. float_of_int n)
  done

let test_zipf_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Dist.Zipf.create: n must be positive") (fun () ->
      ignore (Dist.Zipf.create ~n:0 ~s:1.0));
  Alcotest.check_raises "s<0" (Invalid_argument "Dist.Zipf.create: s must be non-negative")
    (fun () -> ignore (Dist.Zipf.create ~n:3 ~s:(-1.0)))

let test_alias_empirical () =
  let a = Dist.Alias.create [| 1.0; 3.0; 6.0 |] in
  check_int "size" 3 (Dist.Alias.size a);
  let t = Prng.create ~seed:31 () in
  let counts = Array.make 3 0 in
  let n = 60000 in
  for _ = 1 to n do
    let k = Dist.Alias.sample a t in
    counts.(k) <- counts.(k) + 1
  done;
  check_float_loose 0.01 "w=1/10" 0.1 (float_of_int counts.(0) /. float_of_int n);
  check_float_loose 0.01 "w=3/10" 0.3 (float_of_int counts.(1) /. float_of_int n);
  check_float_loose 0.01 "w=6/10" 0.6 (float_of_int counts.(2) /. float_of_int n)

let test_alias_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Dist.Alias.create: empty weights") (fun () ->
      ignore (Dist.Alias.create [||]));
  Alcotest.check_raises "zero sum" (Invalid_argument "Dist.Alias.create: weights sum to zero")
    (fun () -> ignore (Dist.Alias.create [| 0.0; 0.0 |]));
  Alcotest.check_raises "negative" (Invalid_argument "Dist.Alias.create: negative weight")
    (fun () -> ignore (Dist.Alias.create [| 2.0; -1.0 |]))

let test_geometric () =
  let t = Prng.create ~seed:17 () in
  check_int "p=1 is 0" 0 (Dist.geometric t ~p:1.0);
  let sum = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    sum := !sum + Dist.geometric t ~p:0.25
  done;
  (* mean of failures-before-success = (1-p)/p = 3 *)
  check_float_loose 0.15 "mean near 3" 3.0 (float_of_int !sum /. float_of_int n)

let test_exponential () =
  let t = Prng.create ~seed:19 () in
  let sum = ref 0.0 in
  let n = 20000 in
  for _ = 1 to n do
    let v = Dist.exponential t ~mean:2.0 in
    check_bool "positive" true (v >= 0.0);
    sum := !sum +. v
  done;
  check_float_loose 0.1 "mean near 2" 2.0 (!sum /. float_of_int n)

let test_categorical () =
  let t = Prng.create ~seed:23 () in
  for _ = 1 to 200 do
    let k = Dist.categorical t [| 0.0; 5.0; 0.0 |] in
    check_int "only positive-weight index" 1 k
  done

(* --- Stats ---------------------------------------------------------- *)

let test_running_stats () =
  let r = Stats.Running.create () in
  List.iter (Stats.Running.add r) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_int "count" 8 (Stats.Running.count r);
  check_float "mean" 5.0 (Stats.Running.mean r);
  check_float_loose 1e-9 "sample variance" (32.0 /. 7.0) (Stats.Running.variance r);
  check_float "min" 2.0 (Stats.Running.min r);
  check_float "max" 9.0 (Stats.Running.max r)

let test_running_empty () =
  let r = Stats.Running.create () in
  check_int "count 0" 0 (Stats.Running.count r);
  check_float "mean 0" 0.0 (Stats.Running.mean r);
  check_float "variance 0" 0.0 (Stats.Running.variance r)

let test_histogram_percentile () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:100.0 ~buckets:100 in
  for i = 0 to 999 do
    Stats.Histogram.add h (float_of_int (i mod 100))
  done;
  check_int "count" 1000 (Stats.Histogram.count h);
  check_float_loose 2.0 "median near 50" 50.0 (Stats.Histogram.percentile h 50.0);
  check_float_loose 2.0 "p90 near 90" 90.0 (Stats.Histogram.percentile h 90.0)

let test_histogram_clamps () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:10 in
  Stats.Histogram.add h (-5.0);
  Stats.Histogram.add h 50.0;
  let counts = Stats.Histogram.bucket_counts h in
  check_int "first bucket" 1 counts.(0);
  check_int "last bucket" 1 counts.(9)

let test_histogram_invalid () =
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.Histogram.percentile: empty histogram") (fun () ->
      ignore (Stats.Histogram.percentile (Stats.Histogram.create ~lo:0. ~hi:1. ~buckets:2) 50.0))

let test_stats_helpers () =
  check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  check_float "mean empty" 0.0 (Stats.mean [||]);
  check_float "ratio" 0.5 (Stats.ratio 1 2);
  check_float "ratio div0" 0.0 (Stats.ratio 1 0);
  check_float "percent change" 50.0 (Stats.percent_change ~baseline:2.0 ~value:3.0);
  check_float "log2" 3.0 (Stats.log2 8.0)

(* --- Dlist ---------------------------------------------------------- *)

let test_dlist_order () =
  let l = Dlist.create () in
  ignore (Dlist.push_front l 2);
  ignore (Dlist.push_front l 1);
  ignore (Dlist.push_back l 3);
  Alcotest.(check (list int)) "front-to-back" [ 1; 2; 3 ] (Dlist.to_list l);
  check_int "length" 3 (Dlist.length l)

let test_dlist_moves () =
  let l = Dlist.create () in
  let a = Dlist.push_back l 'a' in
  let _b = Dlist.push_back l 'b' in
  let c = Dlist.push_back l 'c' in
  Dlist.move_to_front l c;
  Dlist.move_to_back l a;
  Alcotest.(check (list char)) "after moves" [ 'c'; 'b'; 'a' ] (Dlist.to_list l)

let test_dlist_remove () =
  let l = Dlist.create () in
  let a = Dlist.push_back l 1 in
  let b = Dlist.push_back l 2 in
  Dlist.remove l b;
  Dlist.remove l b;
  (* second removal is a no-op *)
  check_int "length" 1 (Dlist.length l);
  Dlist.remove l a;
  check_bool "empty" true (Dlist.is_empty l)

let test_dlist_pops () =
  let l = Dlist.create () in
  Alcotest.(check (option int)) "pop empty" None (Dlist.pop_front l);
  ignore (Dlist.push_back l 1);
  ignore (Dlist.push_back l 2);
  Alcotest.(check (option int)) "peek front" (Some 1) (Dlist.peek_front l);
  Alcotest.(check (option int)) "peek back" (Some 2) (Dlist.peek_back l);
  Alcotest.(check (option int)) "pop front" (Some 1) (Dlist.pop_front l);
  Alcotest.(check (option int)) "pop back" (Some 2) (Dlist.pop_back l);
  check_bool "now empty" true (Dlist.is_empty l)

let test_dlist_clear () =
  let l = Dlist.create () in
  let nodes = List.map (Dlist.push_back l) [ 1; 2; 3; 4 ] in
  Dlist.clear l;
  check_bool "empty" true (Dlist.is_empty l);
  check_int "length" 0 (Dlist.length l);
  (* cleared nodes are detached: removing them again is a safe no-op *)
  List.iter (Dlist.remove l) nodes;
  check_int "still empty" 0 (Dlist.length l);
  ignore (Dlist.push_back l 9);
  Alcotest.(check (list int)) "reusable after clear" [ 9 ] (Dlist.to_list l)

let test_dlist_fold_iter () =
  let l = Dlist.create () in
  List.iter (fun v -> ignore (Dlist.push_back l v)) [ 1; 2; 3; 4 ];
  check_int "fold sum" 10 (Dlist.fold ( + ) 0 l);
  let seen = ref [] in
  Dlist.iter (fun v -> seen := v :: !seen) l;
  Alcotest.(check (list int)) "iter order" [ 4; 3; 2; 1 ] !seen

(* --- Dlist_arena ----------------------------------------------------- *)

let check_arena_invariant t =
  check_int "live + free = slots" (Dlist_arena.slots t)
    (Dlist_arena.live t + Dlist_arena.free t)

let test_arena_order () =
  let t = Dlist_arena.create ~capacity:2 () in
  let l = Dlist_arena.new_list t in
  ignore (Dlist_arena.push_front t l 2);
  ignore (Dlist_arena.push_front t l 1);
  ignore (Dlist_arena.push_back t l 3);
  Alcotest.(check (list int)) "front-to-back" [ 1; 2; 3 ] (Dlist_arena.to_list t l);
  check_int "length" 3 (Dlist_arena.length t l);
  check_arena_invariant t

let test_arena_moves_cross_list () =
  let t = Dlist_arena.create () in
  let a = Dlist_arena.new_list t in
  let b = Dlist_arena.new_list t in
  let n1 = Dlist_arena.push_back t a 1 in
  let n2 = Dlist_arena.push_back t a 2 in
  ignore (Dlist_arena.push_back t b 9);
  (* node indices are stable across cross-list moves *)
  Dlist_arena.move_to_front t b n1;
  Dlist_arena.move_to_back t b n2;
  Alcotest.(check (list int)) "a emptied" [] (Dlist_arena.to_list t a);
  Alcotest.(check (list int)) "b order" [ 1; 9; 2 ] (Dlist_arena.to_list t b);
  check_int "moved key" 1 (Dlist_arena.key t n1);
  check_arena_invariant t

let test_arena_free_list_reuse () =
  let t = Dlist_arena.create ~capacity:4 () in
  let l = Dlist_arena.new_list t in
  let n1 = Dlist_arena.push_back t l 1 in
  let _n2 = Dlist_arena.push_back t l 2 in
  let slots_before = Dlist_arena.slots t in
  Dlist_arena.remove t n1;
  check_arena_invariant t;
  let n3 = Dlist_arena.push_back t l 3 in
  check_int "freed slot is reused" n1 n3;
  check_int "no growth on reuse" slots_before (Dlist_arena.slots t);
  Alcotest.(check (list int)) "order after reuse" [ 2; 3 ] (Dlist_arena.to_list t l)

let test_arena_pops () =
  let t = Dlist_arena.create () in
  let l = Dlist_arena.new_list t in
  check_int "pop empty" (-1) (Dlist_arena.pop_front t l);
  ignore (Dlist_arena.push_back t l 1);
  ignore (Dlist_arena.push_back t l 2);
  check_int "pop front" 1 (Dlist_arena.pop_front t l);
  check_int "pop back" 2 (Dlist_arena.pop_back t l);
  check_bool "now empty" true (Dlist_arena.is_empty t l);
  check_arena_invariant t

let test_arena_clear_list () =
  let t = Dlist_arena.create ~capacity:2 () in
  let l = Dlist_arena.new_list t in
  let other = Dlist_arena.new_list t in
  ignore (Dlist_arena.push_back t other 42);
  for k = 1 to 5 do
    ignore (Dlist_arena.push_back t l k)
  done;
  let slots_full = Dlist_arena.slots t in
  Dlist_arena.clear_list t l;
  check_bool "cleared" true (Dlist_arena.is_empty t l);
  check_arena_invariant t;
  Alcotest.(check (list int)) "other list untouched" [ 42 ] (Dlist_arena.to_list t other);
  (* all five slots are back on the free list: refilling must not grow *)
  for k = 6 to 10 do
    ignore (Dlist_arena.push_back t l k)
  done;
  check_int "no growth after clear" slots_full (Dlist_arena.slots t);
  Alcotest.(check (list int)) "refilled" [ 6; 7; 8; 9; 10 ] (Dlist_arena.to_list t l)

(* --- Int_table -------------------------------------------------------- *)

let test_int_table_basics () =
  let t = Int_table.create ~capacity:2 () in
  check_int "absent" (-1) (Int_table.get t 5);
  check_bool "absent mem" false (Int_table.mem t 5);
  Int_table.set t 5 7;
  Int_table.set t 0 0;
  check_int "bound" 7 (Int_table.get t 5);
  check_int "zero value" 0 (Int_table.get t 0);
  check_int "length" 2 (Int_table.length t);
  Int_table.set t 5 9;
  check_int "overwrite" 9 (Int_table.get t 5);
  check_int "length after overwrite" 2 (Int_table.length t);
  Int_table.remove t 5;
  check_int "removed" (-1) (Int_table.get t 5);
  check_int "length after remove" 1 (Int_table.length t);
  Int_table.remove t 99;
  (* out-of-range removal is a no-op *)
  check_int "negative get" (-1) (Int_table.get t (-3));
  Alcotest.check_raises "negative key" (Invalid_argument "Int_table.set: negative key")
    (fun () -> Int_table.set t (-1) 0);
  Int_table.clear t;
  check_int "cleared" 0 (Int_table.length t);
  check_int "cleared get" (-1) (Int_table.get t 0)

(* --- Pool ------------------------------------------------------------ *)

let test_pool_map_order () =
  let xs = List.init 100 (fun i -> i) in
  Alcotest.(check (list int))
    "squares in order" (List.map (fun x -> x * x) xs)
    (Pool.map ~jobs:4 (fun x -> x * x) xs);
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map ~jobs:4 (fun x -> x) [ 7 ])

let test_pool_map_array () =
  let input = Array.init 37 (fun i -> i) in
  Alcotest.(check (array int))
    "array map matches" (Array.map succ input)
    (Pool.map_array ~jobs:3 succ input)

let test_pool_map_reduce () =
  (* string concatenation is not commutative, so this pins reduction
     order, not just the multiset of results *)
  let xs = List.init 50 string_of_int in
  Alcotest.(check string)
    "reduces in input order" (String.concat "" xs)
    (Pool.map_reduce ~jobs:4 ~map:(fun s -> s) ~reduce:( ^ ) ~init:"" xs)

let test_pool_invalid_jobs () =
  Alcotest.check_raises "jobs 0" (Invalid_argument "Pool.map: jobs must be positive") (fun () ->
      ignore (Pool.map ~jobs:0 (fun x -> x) [ 1; 2 ]))

let test_pool_exception () =
  let boom i = if i >= 3 then failwith (Printf.sprintf "boom %d" i) else i in
  Alcotest.check_raises "lowest failing index wins" (Failure "boom 3") (fun () ->
      ignore (Pool.map ~jobs:4 boom (List.init 20 (fun i -> i))));
  Alcotest.check_raises "sequential path too" (Failure "boom 3") (fun () ->
      ignore (Pool.map ~jobs:1 boom (List.init 20 (fun i -> i))))

let test_pool_default_jobs () =
  check_bool "at least one domain" true (Pool.default_jobs () >= 1)

(* --- Heap ------------------------------------------------------------ *)

let test_heap_sorts () =
  let h = Heap.create ~compare:Int.compare () in
  List.iter (fun p -> Heap.push h p p) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc = match Heap.pop h with Some (p, _) -> drain (p :: acc) | None -> List.rev acc in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_heap_peek_clear () =
  let h = Heap.create ~compare:Int.compare () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h 3 "c";
  Heap.push h 1 "a";
  (match Heap.peek h with
  | Some (1, "a") -> ()
  | _ -> Alcotest.fail "peek should be smallest");
  check_int "length" 2 (Heap.length h);
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h)

(* --- Vec -------------------------------------------------------------- *)

let test_vec_basics () =
  let v = Vec.create () in
  check_bool "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get" 42 (Vec.get v 42);
  Vec.set v 42 1000;
  check_int "set" 1000 (Vec.get v 42);
  Alcotest.(check (option int)) "pop" (Some 99) (Vec.pop v);
  check_int "length after pop" 99 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 3));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set: index out of bounds") (fun () ->
      Vec.set v (-1) 0);
  Alcotest.check_raises "sub oob" (Invalid_argument "Vec.sub: slice out of bounds") (fun () ->
      ignore (Vec.sub v ~pos:2 ~len:2))

let test_vec_conversions () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3 ] (Vec.to_list v);
  let doubled = Vec.map (fun x -> 2 * x) v in
  Alcotest.(check (list int)) "map" [ 2; 4; 6 ] (Vec.to_list doubled);
  let s = Vec.sub v ~pos:1 ~len:2 in
  Alcotest.(check (list int)) "sub" [ 2; 3 ] (Vec.to_list s);
  check_int "fold" 6 (Vec.fold ( + ) 0 v)

(* --- Table ------------------------------------------------------------ *)

(* A minimal substring check, to avoid pulling in a string library. *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = if i + n > h then false else String.sub haystack i n = needle || loop (i + 1) in
  loop 0

let test_table_render () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333" ];
  (* short row padded *)
  let rendered = Table.render t in
  check_bool "has title" true (String.length rendered > 0);
  check_bool "contains header" true (contains rendered "333" && contains rendered "bb")

let test_table_too_many_cells () =
  let t = Table.create ~title:"t" ~columns:[ "a" ] in
  Alcotest.check_raises "too many" (Invalid_argument "Table.add_row: more cells than columns")
    (fun () -> Table.add_row t [ "1"; "2" ])

let test_table_float_row () =
  let t = Table.create ~title:"t" ~columns:[ "label"; "x"; "y" ] in
  Table.add_float_row t ~decimals:1 "row" [ 1.25; 2.0 ];
  let rendered = Table.render t in
  check_bool "formats decimals" true (contains rendered "1.2")

(* --- qcheck properties ------------------------------------------------ *)

exception Boom of int

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"Pool.map_array agrees with Array.map for any jobs" ~count:100
      (pair (int_range 1 8) (list small_int))
      (fun (jobs, xs) ->
        let input = Array.of_list xs in
        let f x = (x * 3) - 1 in
        Pool.map_array ~jobs f input = Array.map f input);
    Test.make ~name:"Pool.map rethrows the lowest failing index" ~count:100
      (pair (int_range 1 8) (list bool))
      (fun (jobs, flags) ->
        (* any subset of elements may raise; the contract is that the
           exception of the lowest-index failure is the one rethrown *)
        let xs = List.mapi (fun i fail -> (i, fail)) flags in
        let f (i, fail) = if fail then raise (Boom i) else i in
        match List.find_opt snd xs with
        | None -> Pool.map ~jobs f xs = List.map fst xs
        | Some (first, _) -> (
            match Pool.map ~jobs f xs with
            | _ -> false
            | exception Boom i -> i = first));
    Test.make ~name:"Prng.derive streams are reproducible and index-distinct" ~count:200
      (triple (int_range 0 1_000_000) (int_range 0 1000) (int_range 0 1000))
      (fun (seed, i, j) ->
        let stream k =
          let g = Prng.derive (Prng.create ~seed ()) k in
          List.init 4 (fun _ -> Prng.bits64 g)
        in
        stream i = stream i && (i = j || stream i <> stream j));
    Test.make ~name:"Prng.derive never advances the parent" ~count:200
      (triple (int_range 0 1_000_000) (int_range 0 20) (int_range 0 1000))
      (fun (seed, draws, index) ->
        let a = Prng.create ~seed () in
        for _ = 1 to draws do
          ignore (Prng.bits64 a)
        done;
        let b = Prng.copy a in
        ignore (Prng.derive a index);
        Prng.bits64 a = Prng.bits64 b);
    Test.make ~name:"Heap drain equals the sorted priority list" ~count:200
      (list (pair small_int small_int))
      (fun l ->
        let h = Heap.create ~compare:Int.compare () in
        List.iter (fun (p, v) -> Heap.push h p v) l;
        let rec drain acc =
          match Heap.pop h with Some (p, _) -> drain (p :: acc) | None -> List.rev acc
        in
        drain [] = List.sort compare (List.map fst l));
    Test.make ~name:"Vec push/pop round-trips against a list model" ~count:200
      (* [Some v] = push v, [None] = pop; the reference is a plain list
         used as a stack, compared op-for-op and on the final contents *)
      (list (option small_int))
      (fun ops ->
        let v = Vec.create () in
        let model = ref [] in
        List.for_all
          (fun op ->
            match op with
            | Some x ->
                Vec.push v x;
                model := x :: !model;
                true
            | None -> (
                match !model with
                | [] -> Vec.pop v = None
                | x :: rest ->
                    model := rest;
                    Vec.pop v = Some x))
          ops
        && Vec.to_list v = List.rev !model);
    Test.make ~name:"Table.render is deterministic and contains every cell" ~count:100
      (list (pair small_int small_int))
      (fun rows ->
        let build () =
          let t = Table.create ~title:"t" ~columns:[ "x"; "y" ] in
          List.iter (fun (a, b) -> Table.add_row t [ string_of_int a; string_of_int b ]) rows;
          Table.render t
        in
        let rendered = build () in
        rendered = build ()
        && List.for_all
             (fun (a, b) ->
               contains rendered (string_of_int a) && contains rendered (string_of_int b))
             rows);
    Test.make ~name:"Prng.int always within bound" ~count:500
      (pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let t = Prng.create ~seed () in
        let v = Prng.int t bound in
        v >= 0 && v < bound);
    Test.make ~name:"Vec of_list/to_list roundtrip" ~count:200 (list int) (fun l ->
        Vec.to_list (Vec.of_list l) = l);
    Test.make ~name:"Heap pop yields sorted order" ~count:200 (list small_int) (fun l ->
        let h = Heap.create ~compare:Int.compare () in
        List.iter (fun p -> Heap.push h p ()) l;
        let rec drain acc =
          match Heap.pop h with Some (p, ()) -> drain (p :: acc) | None -> List.rev acc
        in
        drain [] = List.sort compare l);
    Test.make ~name:"Pool.map agrees with List.map for any jobs" ~count:100
      (pair (int_range 1 8) (list small_int))
      (fun (jobs, xs) ->
        Pool.map ~jobs (fun x -> (x * 2) + 1) xs = List.map (fun x -> (x * 2) + 1) xs);
    Test.make ~name:"Pool.map_reduce agrees with sequential fold" ~count:100
      (pair (int_range 1 8) (list small_int))
      (fun (jobs, xs) ->
        Pool.map_reduce ~jobs ~map:string_of_int ~reduce:( ^ ) ~init:"" xs
        = List.fold_left ( ^ ) "" (List.map string_of_int xs));
    Test.make ~name:"Dlist push_back preserves order" ~count:200 (list int) (fun l ->
        let d = Dlist.create () in
        List.iter (fun v -> ignore (Dlist.push_back d v)) l;
        Dlist.to_list d = l);
    Test.make ~name:"Zipf sample within range" ~count:300
      (pair (int_range 1 50) (int_range 0 30))
      (fun (n, seed) ->
        let z = Dist.Zipf.create ~n ~s:1.0 in
        let t = Prng.create ~seed () in
        let v = Dist.Zipf.sample z t in
        v >= 0 && v < n);
    Test.make ~name:"Int_table agrees with a Hashtbl model" ~count:300
      (list (pair (int_range 0 40) (int_range (-1) 20)))
      (fun ops ->
        (* value -1 encodes a removal of that key *)
        let t = Int_table.create ~capacity:1 () in
        let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
        List.for_all
          (fun (k, v) ->
            if v < 0 then begin
              Int_table.remove t k;
              Hashtbl.remove model k
            end
            else begin
              Int_table.set t k v;
              Hashtbl.replace model k v
            end;
            Int_table.length t = Hashtbl.length model
            && List.for_all
                 (fun key ->
                   Int_table.get t key = Option.value ~default:(-1) (Hashtbl.find_opt model key))
                 (List.init 41 Fun.id))
          ops);
    Test.make ~name:"Dlist_arena keeps live + free = slots and mirrors a list model" ~count:200
      (list (pair (int_range 0 3) (int_range 0 30)))
      (fun ops ->
        (* op 0: push_back, 1: push_front, 2: pop_front, 3: pop_back —
           mirrored against a plain list model, with the free-list
           invariant checked after every operation *)
        let t = Dlist_arena.create ~capacity:1 () in
        let l = Dlist_arena.new_list t in
        let model = ref [] in
        List.for_all
          (fun (op, k) ->
            let step_ok =
              match op with
              | 0 ->
                  ignore (Dlist_arena.push_back t l k);
                  model := !model @ [ k ];
                  true
              | 1 ->
                  ignore (Dlist_arena.push_front t l k);
                  model := k :: !model;
                  true
              | 2 ->
                  let expected =
                    match !model with
                    | [] -> -1
                    | x :: tl ->
                        model := tl;
                        x
                  in
                  Dlist_arena.pop_front t l = expected
              | _ ->
                  let expected =
                    match List.rev !model with
                    | [] -> -1
                    | x :: tl ->
                        model := List.rev tl;
                        x
                  in
                  Dlist_arena.pop_back t l = expected
            in
            step_ok
            && Dlist_arena.live t + Dlist_arena.free t = Dlist_arena.slots t
            && Dlist_arena.to_list t l = !model)
          ops);
  ]

let () =
  Alcotest.run "agg_util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "split" `Quick test_prng_split;
          Alcotest.test_case "derive" `Quick test_prng_derive;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_prng_int_invalid;
          Alcotest.test_case "int_in_range" `Quick test_prng_int_in_range;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "bernoulli degenerate" `Quick test_prng_bernoulli_degenerate;
          Alcotest.test_case "bernoulli rate" `Quick test_prng_bernoulli_rate;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "choose" `Quick test_prng_choose;
        ] );
      ( "dist",
        [
          Alcotest.test_case "zipf pmf sums" `Quick test_zipf_pmf_sums_to_one;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "zipf s=0 uniform" `Quick test_zipf_uniform_when_s0;
          Alcotest.test_case "zipf sample range" `Quick test_zipf_sample_range;
          Alcotest.test_case "zipf single rank" `Quick test_zipf_single_rank;
          Alcotest.test_case "zipf empirical" `Quick test_zipf_empirical_matches_pmf;
          Alcotest.test_case "zipf invalid" `Quick test_zipf_invalid;
          Alcotest.test_case "alias empirical" `Quick test_alias_empirical;
          Alcotest.test_case "alias invalid" `Quick test_alias_invalid;
          Alcotest.test_case "geometric" `Quick test_geometric;
          Alcotest.test_case "exponential" `Quick test_exponential;
          Alcotest.test_case "categorical" `Quick test_categorical;
        ] );
      ( "stats",
        [
          Alcotest.test_case "running stats" `Quick test_running_stats;
          Alcotest.test_case "running empty" `Quick test_running_empty;
          Alcotest.test_case "histogram percentile" `Quick test_histogram_percentile;
          Alcotest.test_case "histogram clamps" `Quick test_histogram_clamps;
          Alcotest.test_case "histogram invalid" `Quick test_histogram_invalid;
          Alcotest.test_case "helpers" `Quick test_stats_helpers;
        ] );
      ( "dlist",
        [
          Alcotest.test_case "order" `Quick test_dlist_order;
          Alcotest.test_case "moves" `Quick test_dlist_moves;
          Alcotest.test_case "remove" `Quick test_dlist_remove;
          Alcotest.test_case "pops" `Quick test_dlist_pops;
          Alcotest.test_case "clear" `Quick test_dlist_clear;
          Alcotest.test_case "fold and iter" `Quick test_dlist_fold_iter;
        ] );
      ( "dlist_arena",
        [
          Alcotest.test_case "order" `Quick test_arena_order;
          Alcotest.test_case "cross-list moves" `Quick test_arena_moves_cross_list;
          Alcotest.test_case "free-list reuse" `Quick test_arena_free_list_reuse;
          Alcotest.test_case "pops" `Quick test_arena_pops;
          Alcotest.test_case "clear_list" `Quick test_arena_clear_list;
        ] );
      ( "int_table",
        [ Alcotest.test_case "basics" `Quick test_int_table_basics ] );
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "map_array" `Quick test_pool_map_array;
          Alcotest.test_case "map_reduce order" `Quick test_pool_map_reduce;
          Alcotest.test_case "invalid jobs" `Quick test_pool_invalid_jobs;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "default jobs" `Quick test_pool_default_jobs;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "peek and clear" `Quick test_heap_peek_clear;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "conversions" `Quick test_vec_conversions;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
          Alcotest.test_case "float row" `Quick test_table_float_row;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
