(* Tests for the trace substrate: events, traces, the text codec, the
   intervening-cache filter, and trace statistics. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

open Agg_trace

(* --- Event ------------------------------------------------------------ *)

let test_event_op_chars () =
  List.iter
    (fun op ->
      match Event.op_of_char (Event.op_to_char op) with
      | Some op' -> check_bool "op char roundtrip" true (op = op')
      | None -> Alcotest.fail "op char should parse")
    [ Event.Open; Event.Read; Event.Write ];
  check_bool "bad char" true (Event.op_of_char 'x' = None)

let test_event_make_defaults () =
  let e = Event.make ~seq:3 42 in
  check_int "file" 42 e.Event.file;
  check_int "client defaults to 0" 0 e.Event.client;
  check_bool "op defaults to open" true (e.Event.op = Event.Open);
  check_bool "not a write" false (Event.is_write e);
  check_bool "write is write" true (Event.is_write (Event.make ~op:Event.Write ~seq:0 1))

(* --- Trace ------------------------------------------------------------ *)

let test_trace_sequencing () =
  let t = Trace.create () in
  Trace.add_access t 10;
  Trace.add_access t 20;
  Trace.add_access t 10;
  check_int "length" 3 (Trace.length t);
  check_int "seq of second" 1 (Trace.get t 1).Event.seq;
  Alcotest.(check (array int)) "files" [| 10; 20; 10 |] (Trace.files t);
  check_int "distinct" 2 (Trace.distinct_files t)

let test_trace_of_files () =
  let t = Trace.of_files [ 1; 2; 3 ] in
  check_int "length" 3 (Trace.length t);
  check_int "fold count" 3 (Trace.fold (fun acc _ -> acc + 1) 0 t)

let test_trace_sub_concat () =
  let t = Trace.of_files [ 1; 2; 3; 4; 5 ] in
  let s = Trace.sub t ~pos:1 ~len:3 in
  Alcotest.(check (array int)) "sub files" [| 2; 3; 4 |] (Trace.files s);
  check_int "renumbered from 0" 0 (Trace.get s 0).Event.seq;
  let c = Trace.concat s (Trace.of_files [ 9 ]) in
  Alcotest.(check (array int)) "concat" [| 2; 3; 4; 9 |] (Trace.files c);
  check_int "concat renumbered" 3 (Trace.get c 3).Event.seq;
  Alcotest.check_raises "sub out of bounds" (Invalid_argument "Vec.sub: slice out of bounds")
    (fun () -> ignore (Trace.sub t ~pos:4 ~len:3))

(* --- Codec ------------------------------------------------------------ *)

let test_codec_roundtrip_string () =
  let t = Trace.create () in
  Trace.add_access t ~client:1 ~op:Event.Write 5;
  Trace.add_access t ~client:2 ~op:Event.Open 7;
  Trace.add_access t ~client:0 ~op:Event.Read 5;
  let t' = Codec.of_string (Codec.to_string t) in
  check_int "length" (Trace.length t) (Trace.length t');
  for i = 0 to Trace.length t - 1 do
    check_bool "event equal" true (Event.equal (Trace.get t i) (Trace.get t' i))
  done

let test_codec_roundtrip_file () =
  let t = Trace.of_files [ 1; 2; 3; 2; 1 ] in
  let path = Filename.temp_file "aggtrace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.write_file path t;
      let t' = Codec.read_file path in
      Alcotest.(check (array int)) "files" (Trace.files t) (Trace.files t'))

let test_codec_ignores_comments_and_blanks () =
  let t = Codec.of_string "#aggtrace v1\n\n# a comment\n0 o 0 1\n\n1 w 2 3\n" in
  check_int "two events" 2 (Trace.length t);
  check_bool "write parsed" true (Event.is_write (Trace.get t 1))

let expect_parse_error input =
  match Codec.of_string input with
  | exception Codec.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

let test_codec_errors () =
  expect_parse_error "#aggtrace v1\n0 z 0 1\n";
  (* bad op *)
  expect_parse_error "#aggtrace v1\n0 o 0\n";
  (* missing field *)
  expect_parse_error "#aggtrace v1\nx o 0 1\n";
  (* bad seq *)
  expect_parse_error "#aggtrace v1\n0 o 0 -4\n";
  (* negative id *)
  expect_parse_error "#wrongheader\n0 o 0 1\n"

let test_codec_error_position () =
  match Codec.of_string "#aggtrace v1\n0 o 0 1\nbogus line\n" with
  | exception Codec.Parse_error { line; _ } -> check_int "line number" 3 line
  | _ -> Alcotest.fail "expected Parse_error"

(* --- weight lines ------------------------------------------------------- *)

let some_weights () =
  Weights.of_alist
    [ (5, { Agg_cache.Policy.size = 3; cost = 7 }); (7, { Agg_cache.Policy.size = 2; cost = 2 }) ]

let test_weights_store () =
  let ws = some_weights () in
  check_bool "declared" true (Weights.get ws 5 = { Agg_cache.Policy.size = 3; cost = 7 });
  check_bool "undeclared is unit" true (Weights.get ws 6 = Agg_cache.Policy.unit_weight);
  check_int "count" 2 (Weights.count ws);
  check_bool "not unit" false (Weights.is_unit ws);
  check_bool "fresh table is unit" true (Weights.is_unit (Weights.create ()));
  Alcotest.check_raises "non-positive size rejected"
    (Invalid_argument "Weights.set: weight size must be positive (got 0)") (fun () ->
      Weights.set ws 1 { Agg_cache.Policy.size = 0; cost = 1 })

let test_codec_weights_roundtrip_string () =
  let t = Trace.of_files [ 5; 7; 5; 6 ] in
  let ws = some_weights () in
  let text = Codec.to_string ~weights:ws t in
  let t', ws' = Codec.of_string_weighted text in
  Alcotest.(check (array int)) "events" (Trace.files t) (Trace.files t');
  check_bool "weights survive" true (Weights.to_alist ws' = Weights.to_alist ws);
  (* the plain reader skips weight lines and keeps the events *)
  Alcotest.(check (array int)) "plain reader skips w lines" (Trace.files t)
    (Trace.files (Codec.of_string text))

let test_codec_weights_roundtrip_file () =
  let t = Trace.of_files [ 5; 7; 5 ] in
  let path = Filename.temp_file "aggtrace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.write_file ~weights:(some_weights ()) path t;
      let t', ws' = Codec.read_file_weighted path in
      Alcotest.(check (array int)) "files" (Trace.files t) (Trace.files t');
      check_bool "weights survive" true
        (Weights.get ws' 5 = { Agg_cache.Policy.size = 3; cost = 7 }
        && Weights.get ws' 7 = { Agg_cache.Policy.size = 2; cost = 2 });
      (* streaming folds also skip weight lines *)
      check_int "fold skips w lines" 3 (Codec.fold_file path ~init:0 ~f:(fun acc _ -> acc + 1)))

let test_codec_weight_line_errors () =
  expect_parse_error "#aggtrace v1\nw 1 0 2\n";
  (* zero size *)
  expect_parse_error "#aggtrace v1\nw 1 2 -3\n";
  (* negative cost *)
  expect_parse_error "#aggtrace v1\nw 1 2\n";
  (* missing cost *)
  expect_parse_error "#aggtrace v1\nw -1 2 3\n";
  (* bad file id *)
  match Codec.of_string "#aggtrace v1\n0 o 0 1\nw 1 0 2\n" with
  | exception Codec.Parse_error { line; message } ->
      check_int "line number" 3 line;
      check_bool "message names the field" true (message = "size must be positive (got 0)")
  | _ -> Alcotest.fail "expected Parse_error"

let test_codec_streaming () =
  let t = Trace.create () in
  Trace.add_access t ~client:1 ~op:Event.Write 5;
  Trace.add_access t 7;
  Trace.add_access t 5;
  let path = Filename.temp_file "aggtrace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.write_file path t;
      let count = Codec.fold_file path ~init:0 ~f:(fun acc _ -> acc + 1) in
      check_int "streamed count" 3 count;
      let writes = Codec.fold_file path ~init:0 ~f:(fun acc e -> if Event.is_write e then acc + 1 else acc) in
      check_int "streamed writes" 1 writes;
      let seen = ref [] in
      Codec.iter_file path (fun e -> seen := e.Event.file :: !seen);
      Alcotest.(check (list int)) "iter order" [ 5; 7; 5 ] (List.rev !seen))

let test_codec_streaming_matches_read () =
  let t = Trace.of_files [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  let path = Filename.temp_file "aggtrace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.write_file path t;
      let streamed = List.rev (Codec.fold_file path ~init:[] ~f:(fun acc e -> e :: acc)) in
      let materialised = Trace.to_events (Codec.read_file path) in
      check_int "same length" (List.length materialised) (List.length streamed);
      List.iter2
        (fun a b -> check_bool "same events" true (Event.equal a b))
        materialised streamed)

(* --- Filter ------------------------------------------------------------ *)

let test_filter_infinite_capacity () =
  let t = Trace.of_files [ 1; 2; 1; 3; 2; 1 ] in
  let missed = Filter.miss_stream ~capacity:1000 t in
  (* only first occurrences miss *)
  Alcotest.(check (array int)) "cold misses" [| 1; 2; 3 |] (Trace.files missed)

let test_filter_capacity_one () =
  let t = Trace.of_files [ 1; 1; 1; 2; 2; 1 ] in
  let missed = Filter.miss_stream ~capacity:1 t in
  (* immediate repeats absorbed, alternation passes *)
  Alcotest.(check (array int)) "misses" [| 1; 2; 1 |] (Trace.files missed)

let test_filter_miss_count () =
  let t = Trace.of_files [ 1; 2; 3; 1; 2; 3 ] in
  check_int "capacity 2 misses" 6 (Filter.miss_count ~capacity:2 t);
  check_int "capacity 3 misses" 3 (Filter.miss_count ~capacity:3 t)

let test_filter_renumbers () =
  let t = Trace.of_files [ 1; 1; 2 ] in
  let missed = Filter.miss_stream ~capacity:4 t in
  check_int "first seq" 0 (Trace.get missed 0).Event.seq;
  check_int "second seq" 1 (Trace.get missed 1).Event.seq

let test_filter_per_client () =
  let t = Trace.create () in
  (* interleaved clients accessing the same file: a shared filter would
     absorb the second access, private filters miss on both *)
  Trace.add_access t ~client:0 9;
  Trace.add_access t ~client:1 9;
  let shared = Filter.miss_stream ~capacity:10 t in
  let private_ = Filter.miss_stream_per_client ~capacity:10 t in
  check_int "shared absorbs" 1 (Trace.length shared);
  check_int "private does not" 2 (Trace.length private_)

let test_filter_preserves_metadata () =
  let t = Trace.create () in
  Trace.add_access t ~client:3 ~op:Event.Write 7;
  let missed = Filter.miss_stream ~capacity:2 t in
  let e = Trace.get missed 0 in
  check_int "client kept" 3 e.Event.client;
  check_bool "op kept" true (Event.is_write e)

(* --- Import -------------------------------------------------------------- *)

let test_import_paths () =
  let input = "/bin/sh\n/usr/bin/make\n# a comment\n\n/bin/sh\n" in
  let trace, ns = Import.of_string Import.Paths input in
  check_int "three events" 3 (Trace.length trace);
  check_int "two files" 2 (File_id.Namespace.count ns);
  Alcotest.(check (array int)) "ids interned in order" [| 0; 1; 0 |] (Trace.files trace);
  check_bool "names preserved" true (File_id.Namespace.name ns 1 = Some "/usr/bin/make")

let test_import_strace () =
  let input =
    String.concat "\n"
      [
        {|openat(AT_FDCWD, "/etc/ld.so.cache", O_RDONLY|O_CLOEXEC) = 3|};
        {|open("/missing", O_RDONLY) = -1 ENOENT (No such file or directory)|};
        {|write(1, "hello", 5) = 5|};
        {|creat("/tmp/out", 0644) = 4|};
        {|openat(AT_FDCWD, "/etc/ld.so.cache", O_RDONLY) = 3|};
      ]
  in
  let trace, ns = Import.of_string Import.Strace input in
  check_int "two successful opens + creat" 3 (Trace.length trace);
  check_bool "failed open skipped" true (File_id.Namespace.find ns "/missing" = None);
  check_bool "write line skipped" true (File_id.Namespace.find ns "hello" = None);
  check_bool "creat captured" true (File_id.Namespace.find ns "/tmp/out" <> None)

let test_import_parse_line () =
  check_bool "paths comment" true (Import.parse_line Import.Paths "# x" = None);
  check_bool "paths trims" true (Import.parse_line Import.Paths "  /a  " = Some "/a");
  check_bool "strace unfinished" true
    (Import.parse_line Import.Strace {|open("/a", O_RDONLY <unfinished ...>|} = None);
  check_bool "strace pid prefix" true
    (Import.parse_line Import.Strace {|1234 openat(AT_FDCWD, "/a", O_RDONLY) = 5|} = Some "/a")

let test_import_shared_namespace () =
  let _, ns = Import.of_string Import.Paths "/a\n/b\n" in
  let trace2, ns2 = Import.of_string ~namespace:ns Import.Paths "/b\n/c\n" in
  check_bool "same namespace returned" true (ns == ns2);
  check_int "ids continue" 3 (File_id.Namespace.count ns);
  Alcotest.(check (array int)) "reuses /b's id" [| 1; 2 |] (Trace.files trace2)

(* --- Trace_stats -------------------------------------------------------- *)

let test_trace_stats () =
  let t = Trace.create () in
  Trace.add_access t ~client:0 ~op:Event.Write 1;
  Trace.add_access t ~client:1 ~op:Event.Open 1;
  Trace.add_access t ~client:0 ~op:Event.Open 2;
  Trace.add_access t ~client:0 ~op:Event.Open 1;
  let s = Trace_stats.compute t in
  check_int "events" 4 s.Trace_stats.events;
  check_int "distinct" 2 s.Trace_stats.distinct_files;
  check_int "clients" 2 s.Trace_stats.clients;
  Alcotest.(check (float 1e-9)) "write fraction" 0.25 s.Trace_stats.write_fraction;
  Alcotest.(check (float 1e-9)) "repeat fraction" 0.5 s.Trace_stats.repeat_fraction;
  check_int "max pop" 3 s.Trace_stats.max_file_popularity

let test_top_files () =
  let t = Trace.of_files [ 1; 2; 2; 3; 3; 3 ] in
  Alcotest.(check (list (pair int int)))
    "top 2"
    [ (3, 3); (2, 2) ]
    (Trace_stats.top_files t ~k:2)

(* --- Namespace ----------------------------------------------------------- *)

let test_namespace () =
  let ns = File_id.Namespace.create () in
  let a = File_id.Namespace.intern ns "/bin/sh" in
  let b = File_id.Namespace.intern ns "/usr/bin/make" in
  check_int "dense ids" 0 a;
  check_int "second id" 1 b;
  check_int "idempotent" a (File_id.Namespace.intern ns "/bin/sh");
  check_bool "find" true (File_id.Namespace.find ns "/usr/bin/make" = Some b);
  check_bool "name" true (File_id.Namespace.name ns a = Some "/bin/sh");
  check_bool "unknown name" true (File_id.Namespace.name ns 99 = None);
  check_int "count" 2 (File_id.Namespace.count ns)

(* --- qcheck properties ----------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  let files_gen = list_of_size (Gen.int_range 0 200) (int_range 0 50) in
  [
    Test.make ~name:"codec roundtrip" ~count:100 files_gen (fun files ->
        let t = Trace.of_files files in
        Trace.files (Codec.of_string (Codec.to_string t)) = Trace.files t);
    Test.make ~name:"miss stream is a subsequence with fewer events" ~count:100
      (pair files_gen (int_range 1 20))
      (fun (files, capacity) ->
        let t = Trace.of_files files in
        let missed = Filter.miss_stream ~capacity t in
        Trace.length missed <= Trace.length t
        &&
        (* subsequence check on file ids *)
        let rec is_subseq i j =
          if j >= Trace.length missed then true
          else if i >= Trace.length t then false
          else if (Trace.get t i).Event.file = (Trace.get missed j).Event.file then
            is_subseq (i + 1) (j + 1)
          else is_subseq (i + 1) j
        in
        is_subseq 0 0);
    Test.make ~name:"misses at capacity c >= misses at capacity c+10 (LRU)" ~count:100
      (pair files_gen (int_range 1 20))
      (fun (files, capacity) ->
        let t = Trace.of_files files in
        Filter.miss_count ~capacity t >= Filter.miss_count ~capacity:(capacity + 10) t);
    Test.make ~name:"miss count >= distinct files (compulsory misses)" ~count:100
      (pair files_gen (int_range 1 20))
      (fun (files, capacity) ->
        let t = Trace.of_files files in
        Filter.miss_count ~capacity t >= Trace.distinct_files t);
  ]

let () =
  Alcotest.run "agg_trace"
    [
      ( "event",
        [
          Alcotest.test_case "op chars" `Quick test_event_op_chars;
          Alcotest.test_case "defaults" `Quick test_event_make_defaults;
        ] );
      ( "trace",
        [
          Alcotest.test_case "sequencing" `Quick test_trace_sequencing;
          Alcotest.test_case "of_files" `Quick test_trace_of_files;
          Alcotest.test_case "sub and concat" `Quick test_trace_sub_concat;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip string" `Quick test_codec_roundtrip_string;
          Alcotest.test_case "roundtrip file" `Quick test_codec_roundtrip_file;
          Alcotest.test_case "comments and blanks" `Quick test_codec_ignores_comments_and_blanks;
          Alcotest.test_case "errors" `Quick test_codec_errors;
          Alcotest.test_case "error position" `Quick test_codec_error_position;
          Alcotest.test_case "streaming fold/iter" `Quick test_codec_streaming;
          Alcotest.test_case "streaming matches read" `Quick test_codec_streaming_matches_read;
        ] );
      ( "weights",
        [
          Alcotest.test_case "store" `Quick test_weights_store;
          Alcotest.test_case "roundtrip string" `Quick test_codec_weights_roundtrip_string;
          Alcotest.test_case "roundtrip file" `Quick test_codec_weights_roundtrip_file;
          Alcotest.test_case "weight line errors" `Quick test_codec_weight_line_errors;
        ] );
      ( "filter",
        [
          Alcotest.test_case "infinite capacity" `Quick test_filter_infinite_capacity;
          Alcotest.test_case "capacity one" `Quick test_filter_capacity_one;
          Alcotest.test_case "miss count" `Quick test_filter_miss_count;
          Alcotest.test_case "renumbers" `Quick test_filter_renumbers;
          Alcotest.test_case "per client" `Quick test_filter_per_client;
          Alcotest.test_case "preserves metadata" `Quick test_filter_preserves_metadata;
        ] );
      ( "import",
        [
          Alcotest.test_case "paths" `Quick test_import_paths;
          Alcotest.test_case "strace" `Quick test_import_strace;
          Alcotest.test_case "parse_line" `Quick test_import_parse_line;
          Alcotest.test_case "shared namespace" `Quick test_import_shared_namespace;
        ] );
      ( "stats",
        [
          Alcotest.test_case "compute" `Quick test_trace_stats;
          Alcotest.test_case "top files" `Quick test_top_files;
        ] );
      ("namespace", [ Alcotest.test_case "intern" `Quick test_namespace ]);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
