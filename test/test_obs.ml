(* Tests for the instrumentation layer: counters and histograms (crafted
   semantics plus the merge algebra qcheck properties), event JSONL
   round-trips, sink behaviours, digest reconciliation against the
   simulator's aggregate metrics, and the sweep determinism regressions
   (identical event sequences for any --jobs, Noop vs Memory leaving
   figure numbers unchanged). *)

open Agg_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Counter ----------------------------------------------------------- *)

let test_counter_basics () =
  let c = Counter.create () in
  check_int "fresh" 0 (Counter.value c);
  Counter.incr c;
  Counter.incr c;
  Counter.add c 5;
  check_int "incr+add" 7 (Counter.value c);
  Counter.reset c;
  check_int "reset" 0 (Counter.value c);
  Alcotest.check_raises "negative add" (Invalid_argument "Counter.add: negative increment")
    (fun () -> Counter.add c (-1))

let test_counter_merge () =
  let a = Counter.create () and b = Counter.create () in
  Counter.add a 3;
  Counter.add b 4;
  check_int "merge sums" 7 (Counter.value (Counter.merge a b));
  (* merge is pure: the inputs are untouched *)
  check_int "a untouched" 3 (Counter.value a);
  check_int "b untouched" 4 (Counter.value b)

(* --- Histogram --------------------------------------------------------- *)

let hist_of values =
  let h = Histogram.create () in
  List.iter (Histogram.add h) values;
  h

let hist_eq a b =
  Histogram.count a = Histogram.count b
  && Histogram.sum a = Histogram.sum b
  && Histogram.min_value a = Histogram.min_value b
  && Histogram.max_value a = Histogram.max_value b
  && Histogram.buckets a = Histogram.buckets b

let test_histogram_crafted () =
  let h = hist_of [ 0; 1; 1; 2; 3; 8; 100 ] in
  check_int "count" 7 (Histogram.count h);
  check_int "sum" 115 (Histogram.sum h);
  Alcotest.(check (option int)) "min" (Some 0) (Histogram.min_value h);
  Alcotest.(check (option int)) "max" (Some 100) (Histogram.max_value h);
  (* value 0 → bucket {0}; 1 → [1,1]; 2..3 → [2,3]; 8 → [8,15]; 100 → [64,127] *)
  Alcotest.(check (list (triple int int int)))
    "buckets"
    [ (0, 0, 1); (1, 1, 2); (2, 3, 2); (8, 15, 1); (64, 127, 1) ]
    (Histogram.buckets h);
  Alcotest.check_raises "negative value" (Invalid_argument "Histogram.add: negative value")
    (fun () -> Histogram.add h (-1))

let test_histogram_quantiles () =
  let h = Histogram.create () in
  Alcotest.(check (option int)) "empty" None (Histogram.quantile h 0.5);
  Histogram.add h 5;
  (* A single observation: every quantile is clamped to the observed max. *)
  Alcotest.(check (option int)) "single p0" (Some 5) (Histogram.quantile h 0.0);
  Alcotest.(check (option int)) "single p100" (Some 5) (Histogram.quantile h 1.0);
  let h = hist_of (List.init 100 (fun i -> i)) in
  check_bool "p50 <= p99" true (Histogram.quantile h 0.5 <= Histogram.quantile h 0.99);
  Alcotest.(check (option int)) "p100 = max" (Some 99) (Histogram.quantile h 1.0);
  Alcotest.check_raises "q out of range" (Invalid_argument "Histogram.quantile: q out of [0,1]")
    (fun () -> ignore (Histogram.quantile h 1.5))

let test_histogram_merge_pool () =
  (* Pool map-reduce over chunks must equal the sequential histogram. *)
  let values = List.init 2000 (fun i -> i * 37 mod 517) in
  let rec chunks n = function
    | [] -> []
    | l ->
        let rec take k acc = function
          | x :: rest when k > 0 -> take (k - 1) (x :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let c, rest = take n [] l in
        c :: chunks n rest
  in
  let parts =
    Agg_util.Pool.map ~jobs:4 (fun chunk -> hist_of chunk) (chunks 123 values)
  in
  let merged = List.fold_left Histogram.merge (Histogram.create ()) parts in
  check_bool "pooled merge = sequential" true (hist_eq merged (hist_of values))

(* --- Event JSONL -------------------------------------------------------- *)

let event_equal (a : Event.t) (b : Event.t) = a = b

let test_event_json_roundtrip_crafted () =
  let events =
    [
      Event.Demand_hit { file = 3; depth = 0 };
      Event.Demand_miss { file = 12345 };
      Event.Prefetch_issued { file = 0 };
      Event.Prefetch_promoted { file = 9; lifetime = 42 };
      Event.Evicted { file = 7; speculative = true; age_accesses = 17 };
      Event.Evicted { file = 8; speculative = false; age_accesses = 0 };
      Event.Group_built { anchor = 4; size = 5 };
      Event.Successor_update { prev = 1; next = 2 };
      Event.Fetch_timeout { file = 11; attempt = 2 };
      Event.Fetch_degraded { file = 11; dropped = 4 };
      Event.Client_crashed { client = 3; wiped = 150 };
      Event.Node_routed { file = 21; node = 4 };
      Event.Replica_failover { file = 21; failed = 4; target = 0 };
      Event.Ring_rebalance { node = 5; joined = true; moved = 37 };
      Event.Ring_rebalance { node = 2; joined = false; moved = 0 };
    ]
  in
  List.iteri
    (fun seq ev ->
      match Event.of_json (Event.to_json ~seq ev) with
      | Ok (seq', ev') ->
          check_int "seq" seq seq';
          check_bool (Event.name ev ^ " round-trips") true (event_equal ev ev')
      | Error e -> Alcotest.failf "%s: %s" (Event.name ev) e)
    events

let test_event_json_errors () =
  let is_error s =
    match Event.of_json s with Ok _ -> false | Error _ -> true
  in
  check_bool "garbage" true (is_error "not json");
  check_bool "empty object" true (is_error "{}");
  check_bool "unknown tag" true (is_error {|{"seq":0,"ev":"warp_drive","file":1}|});
  check_bool "missing field" true (is_error {|{"seq":0,"ev":"demand_hit","file":1}|});
  check_bool "extra field" true
    (is_error {|{"seq":0,"ev":"demand_miss","file":1,"bogus":2}|});
  check_bool "bad seq" true (is_error {|{"seq":"x","ev":"demand_miss","file":1}|});
  check_bool "node_routed missing node" true (is_error {|{"seq":0,"ev":"node_routed","file":1}|});
  check_bool "ring_rebalance non-bool joined" true
    (is_error {|{"seq":0,"ev":"ring_rebalance","node":1,"joined":2,"moved":3}|})

(* --- Sinks -------------------------------------------------------------- *)

let test_sink_noop () =
  check_bool "disabled" false (Sink.enabled Sink.noop);
  Sink.emit Sink.noop (Event.Demand_miss { file = 1 });
  check_int "emitted" 0 (Sink.emitted Sink.noop);
  check_int "no events" 0 (List.length (Sink.events Sink.noop))

let test_sink_memory () =
  let s = Sink.memory () in
  check_bool "enabled" true (Sink.enabled s);
  let evs =
    [ Event.Demand_miss { file = 1 }; Event.Group_built { anchor = 1; size = 3 } ]
  in
  List.iter (Sink.emit s) evs;
  check_int "emitted" 2 (Sink.emitted s);
  check_bool "in order" true (Sink.events s = evs)

let test_sink_jsonl () =
  let path = Filename.temp_file "aggsim_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let s = Sink.jsonl oc in
      let evs =
        [
          Event.Demand_hit { file = 2; depth = 7 };
          Event.Evicted { file = 2; speculative = true; age_accesses = 3 };
        ]
      in
      List.iter (Sink.emit s) evs;
      Sink.flush s;
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let parsed = List.rev_map Event.of_json !lines in
      check_int "two lines" 2 (List.length parsed);
      List.iteri
        (fun i -> function
          | Ok (seq, ev) ->
              check_int "seq stamped" i seq;
              check_bool "event survives" true (event_equal ev (List.nth evs i))
          | Error e -> Alcotest.fail e)
        parsed)

(* --- Digest ------------------------------------------------------------- *)

let test_digest_replay () =
  let d = Digest.create () in
  List.iter (Digest.observe d)
    [
      Event.Demand_miss { file = 1 };
      Event.Group_built { anchor = 1; size = 3 };
      Event.Prefetch_issued { file = 2 };
      Event.Prefetch_issued { file = 3 };
      Event.Demand_hit { file = 2; depth = 1 };
      Event.Prefetch_promoted { file = 2; lifetime = 1 };
      Event.Evicted { file = 3; speculative = true; age_accesses = 2 };
      (* the simulator notices the wasted prefetch of 3 only here: *)
      Event.Demand_miss { file = 3 };
      Event.Group_built { anchor = 3; size = 1 };
    ];
  check_int "hits" 1 (Digest.demand_hits d);
  check_int "misses" 2 (Digest.demand_misses d);
  check_int "accesses" 3 (Digest.accesses d);
  check_int "issued" 2 (Digest.prefetch_issued d);
  check_int "promoted" 1 (Digest.prefetch_promoted d);
  check_int "evicted_speculative" 1 (Digest.evicted_speculative d);
  check_int "evicted_unused (lazy)" 1 (Digest.evicted_unused d);
  check_int "groups" 2 (Digest.groups_built d);
  check_int "lifetime samples" 2 (Histogram.count (Digest.lifetime d));
  check_int "group size samples" 2 (Histogram.count (Digest.group_size d))

let test_digest_weighted () =
  (* file f has size f, cost 2f; only demand/prefetch events move the
     byte and cost counters *)
  let d = Digest.create ~weight_of:(fun f -> (f, 2 * f)) () in
  List.iter (Digest.observe d)
    [
      Event.Demand_miss { file = 3 };
      Event.Prefetch_issued { file = 5 };
      Event.Demand_hit { file = 5; depth = 1 };
      Event.Demand_hit { file = 2; depth = 2 };
      Event.Evicted { file = 3; speculative = false; age_accesses = 1 };
    ];
  check_int "bytes accessed = 3+5+2" 10 (Digest.bytes_accessed d);
  check_int "bytes hit = 5+2" 7 (Digest.bytes_hit d);
  check_int "cost fetched = 2*3" 6 (Digest.cost_fetched d);
  check_int "cost prefetched = 2*5" 10 (Digest.cost_prefetched d);
  check_int "total retrieval cost" 16 (Digest.total_retrieval_cost d);
  Alcotest.(check (float 1e-9)) "byte-weighted hit rate" 0.7 (Digest.byte_weighted_hit_rate d);
  (* unweighted digests mirror the counts *)
  let u = Digest.of_events [ Event.Demand_miss { file = 3 }; Event.Demand_hit { file = 4; depth = 1 } ] in
  check_int "unit bytes = accesses" (Digest.accesses u) (Digest.bytes_accessed u);
  check_int "unit cost = misses" (Digest.demand_misses u) (Digest.cost_fetched u)

let server_profile () =
  match Agg_workload.Profile.by_name "server" with
  | Some p -> p
  | None -> Alcotest.fail "server profile missing"

let client_run ~obs =
  let trace = Agg_workload.Generator.generate ~seed:11 ~events:6_000 (server_profile ()) in
  let cache = Agg_core.Client_cache.create ~obs ~capacity:200 () in
  Agg_core.Client_cache.run cache trace

let test_reconcile_client () =
  let sink = Sink.memory () in
  let m = client_run ~obs:sink in
  let digest = Digest.of_events (Sink.events sink) in
  (match Agg_core.Metrics.reconcile_client digest m with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  check_int "hits + fetches = accesses" m.Agg_core.Metrics.accesses
    (m.Agg_core.Metrics.hits + m.Agg_core.Metrics.demand_fetches)

let test_reconcile_server () =
  let trace = Agg_workload.Generator.generate ~seed:11 ~events:6_000 (server_profile ()) in
  List.iter
    (fun cooperative ->
      let sink = Sink.memory () in
      let sim =
        Agg_core.Server_cache.create ~cooperative ~obs:sink ~filter_kind:Agg_cache.Cache.Lru
          ~filter_capacity:150 ~server_capacity:300
          ~scheme:(Agg_core.Server_cache.Aggregating Agg_core.Config.default) ()
      in
      let m = Agg_core.Server_cache.run sim trace in
      let digest = Digest.of_events (Sink.events sink) in
      match Agg_core.Metrics.reconcile_server digest m with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "cooperative=%b: %s" cooperative msg)
    [ false; true ]

let test_noop_identical_metrics () =
  let plain = client_run ~obs:Sink.noop in
  let sink = Sink.memory () in
  let instrumented = client_run ~obs:sink in
  check_bool "metrics unchanged by instrumentation" true (plain = instrumented);
  check_bool "events were recorded" true (Sink.emitted sink > 0)

(* --- sweep determinism --------------------------------------------------- *)

let fig3_with_sinks ~jobs =
  let settings = { Agg_sim.Experiment.quick_settings with Agg_sim.Experiment.jobs } in
  let group_sizes = [ 1; 5 ] and capacities = [ 100; 300 ] in
  let sinks = Hashtbl.create 8 in
  List.iter
    (fun g ->
      List.iter
        (fun c ->
          Hashtbl.replace sinks (g, c)
            (Printf.sprintf "fig3/server/g%d/c%d" g c, Sink.memory ()))
        capacities)
    group_sizes;
  (* the scope's sink_for is keyed by the cell's span label *)
  let sink_for ~label =
    let found = ref Sink.noop in
    Hashtbl.iter (fun _ (l, sink) -> if l = label then found := sink) sinks;
    !found
  in
  let runner =
    Agg_sim.Experiment.Runner.create
      ~scope:(Agg_obs.Scope.create ~sink_for ())
      ~settings ()
  in
  let panel = Agg_sim.Fig3.panel ~capacities ~group_sizes ~runner (server_profile ()) in
  let sinks = Hashtbl.fold (fun k (_, sink) acc -> (k, sink) :: acc) sinks [] in
  (panel, sinks)

let test_fig3_jobs_determinism () =
  let panel1, sinks1 = fig3_with_sinks ~jobs:1 in
  let panel4, sinks4 = fig3_with_sinks ~jobs:4 in
  check_bool "panel numbers identical" true (panel1 = panel4);
  List.iter
    (fun ((g, c), sink) ->
      let e1 = Sink.events sink and e4 = Sink.events (List.assoc (g, c) sinks4) in
      check_bool
        (Printf.sprintf "g%d/c%d event count > 0" g c)
        true (e1 <> []);
      check_bool
        (Printf.sprintf "g%d/c%d events identical for jobs 1 vs 4" g c)
        true (e1 = e4))
    sinks1

let test_fig3_noop_vs_memory () =
  let settings = Agg_sim.Experiment.quick_settings in
  let capacities = [ 100; 300 ] and group_sizes = [ 1; 5 ] in
  let noop_panel =
    Agg_sim.Fig3.panel ~capacities ~group_sizes
      ~runner:(Agg_sim.Experiment.Runner.create ~settings ())
      (server_profile ())
  in
  let memory_panel, _ = fig3_with_sinks ~jobs:2 in
  check_bool "Noop vs Memory leave figure numbers unchanged" true (noop_panel = memory_panel)

(* --- Span ---------------------------------------------------------------- *)

let test_span_record () =
  let r = Span.recorder () in
  let x = Span.record r ~cat:"test" "outer" (fun () -> Span.record r "inner" (fun () -> 41) + 1) in
  check_int "result passed through" 42 x;
  check_int "both spans recorded" 2 (Span.count r);
  (try Span.record r "raises" (fun () -> failwith "boom") with Failure _ -> 0) |> ignore;
  check_int "span recorded on raise" 3 (Span.count r);
  List.iter
    (fun (s : Span.span) -> check_bool (s.Span.name ^ " duration >= 0") true (Span.seconds_of s >= 0.0))
    (Span.spans r);
  check_bool "total >= 0" true (Span.total_seconds r >= 0.0)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  n = 0 || loop 0

let test_span_chrome_json () =
  let r = Span.recorder () in
  Span.record r ~cat:"sec\"tion" "na\\me" (fun () -> ()) |> ignore;
  let json = Span.chrome_json r in
  check_bool "has traceEvents" true (contains ~needle:"\"traceEvents\"" json);
  check_bool "has complete-event ph" true (contains ~needle:"\"X\"" json);
  check_bool "escapes quotes" true (contains ~needle:"sec\\\"tion" json)

(* --- histogram quantile edge cases ----------------------------------------- *)

let check_opt_int = Alcotest.(check (option int))

let test_histogram_quantile_edges () =
  let empty = Histogram.create () in
  List.iter (fun q -> check_opt_int "empty histogram" None (Histogram.quantile empty q))
    [ 0.0; 0.5; 1.0 ];
  let zero = hist_of [ 0 ] in
  List.iter (fun q -> check_opt_int "only the value 0" (Some 0) (Histogram.quantile zero q))
    [ 0.0; 0.5; 1.0 ];
  (* one observation: every quantile is that observation, not its
     bucket's upper bound (5 lands in [4..7], clamped to max 5) *)
  let single = hist_of [ 5 ] in
  List.iter (fun q -> check_opt_int "single observation" (Some 5) (Histogram.quantile single q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  (* all mass in one bucket [4..7]: every quantile reports the bucket's
     upper bound clamped to the observed maximum — 7 here, even at q=0 *)
  let one_bucket = hist_of [ 5; 6; 7 ] in
  List.iter (fun q -> check_opt_int "one-bucket mass" (Some 7) (Histogram.quantile one_bucket q))
    [ 0.0; 0.5; 1.0 ];
  check_bool "q > 1 raises" true
    (match Histogram.quantile single 1.5 with exception Invalid_argument _ -> true | _ -> false);
  check_bool "q < 0 raises" true
    (match Histogram.quantile single (-0.1) with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* --- buffered jsonl bytes --------------------------------------------------- *)

let test_sink_jsonl_bytes () =
  (* enough events to overflow the 64 KiB write buffer several times, so
     this also pins that buffering does not reorder, drop or reframe
     lines: the file must be byte-identical to line-at-a-time output *)
  let events =
    List.init 4_000 (fun i ->
        if i mod 2 = 0 then Event.Demand_hit { file = i; depth = i mod 7 }
        else Event.Demand_miss { file = i })
  in
  let path = Filename.temp_file "aggsim_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let s = Sink.jsonl oc in
      List.iter (Sink.emit s) events;
      Sink.flush s;
      close_out oc;
      let actual = In_channel.with_open_bin path In_channel.input_all in
      let expected =
        String.concat "" (List.mapi (fun i e -> Event.to_json ~seq:i e ^ "\n") events)
      in
      check_bool "buffered output byte-identical to unbuffered lines" true (actual = expected);
      check_int "emitted" (List.length events) (Sink.emitted s))

(* --- sampled sink ------------------------------------------------------------ *)

let test_sink_sampled () =
  let events = List.init 2_000 (fun i -> Event.Demand_miss { file = i }) in
  let keep seed rate =
    let s = Sink.sampled ~seed ~rate (Sink.memory ()) in
    List.iter (Sink.emit s) events;
    (Sink.events s, Sink.offered s, Sink.emitted s)
  in
  let e1, off1, n1 = keep 7 0.25 in
  let e2, _, _ = keep 7 0.25 in
  check_bool "deterministic for a fixed seed" true (e1 = e2);
  check_int "offered counts every event" 2_000 off1;
  check_int "emitted is the kept count" (List.length e1) n1;
  check_bool "rate 0.25 keeps a strict subset" true (n1 > 0 && n1 < 2_000);
  let e3, _, _ = keep 8 0.25 in
  check_bool "the seed changes the sample" true (e1 <> e3);
  let full, _, nfull = keep 7 1.0 in
  check_int "rate 1 keeps everything" 2_000 nfull;
  check_bool "rate 1 preserves order" true (full = events);
  check_bool "sampled around noop stays disabled" false
    (Sink.enabled (Sink.sampled ~seed:7 ~rate:0.5 Sink.noop));
  check_bool "rate 0 rejected" true
    (match Sink.sampled ~seed:7 ~rate:0.0 Sink.noop with
     | exception Invalid_argument _ -> true
     | _ -> false);
  check_bool "rate > 1 rejected" true
    (match Sink.sampled ~seed:7 ~rate:1.5 Sink.noop with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* --- request-lifecycle tracing ----------------------------------------------- *)

let test_trace_ctx_crafted () =
  let ctx = Trace_ctx.create ~seed:42 () in
  check_bool "sample 1 traces every request" true (Trace_ctx.sampled ctx ~request:0);
  Trace_ctx.push ctx ~cat:"hit" "client hit" ~dur_ms:0.05;
  Trace_ctx.commit ctx ~request:0 ~file:9 ~latency_ms:0.05;
  Trace_ctx.push ctx ~cat:"timeout" "attempt0" ~dur_ms:5.0;
  Trace_ctx.push ctx ~cat:"backoff" "backoff1" ~dur_ms:1.0;
  Trace_ctx.push ctx ~cat:"fetch" "fetch f3" ~dur_ms:4.0;
  Trace_ctx.commit ctx ~request:1 ~file:3 ~latency_ms:10.0;
  check_int "sampled requests" 2 (Trace_ctx.sampled_requests ctx);
  let spans = Trace_ctx.spans ctx in
  check_int "two roots plus four phases" 6 (List.length spans);
  let root1 =
    List.find (fun s -> s.Trace_ctx.depth = 0 && s.Trace_ctx.request = 1) spans
  in
  check_int "root sits at the prior request's latency" 50 root1.Trace_ctx.start_us;
  check_int "root spans the whole request" 10_000 root1.Trace_ctx.dur_us;
  check_bool "root category" true (root1.Trace_ctx.span_cat = "request");
  (match List.filter (fun s -> s.Trace_ctx.request = 1 && s.Trace_ctx.depth = 1) spans with
  | [ a; b; c ] ->
      check_int "phase 1 starts at the root" 50 a.Trace_ctx.start_us;
      check_int "phase 2 follows phase 1" 5_050 b.Trace_ctx.start_us;
      check_int "phase 3 follows phase 2" 6_050 c.Trace_ctx.start_us;
      check_int "phase 3 duration" 4_000 c.Trace_ctx.dur_us;
      check_bool "phases share the root's trace id" true
        (a.Trace_ctx.span_trace_id = root1.Trace_ctx.span_trace_id
        && c.Trace_ctx.span_trace_id = root1.Trace_ctx.span_trace_id)
  | _ -> Alcotest.fail "expected exactly 3 phases for request 1");
  Alcotest.(check (list (pair string (float 1e-9))))
    "attribution is per-category ms, descending, roots excluded"
    [ ("timeout", 5.0); ("fetch", 4.0); ("backoff", 1.0); ("hit", 0.05) ]
    (Trace_ctx.attribution ctx);
  let json = Trace_ctx.chrome_json ctx in
  check_bool "chrome json has traceEvents" true (contains ~needle:"\"traceEvents\"" json);
  check_bool "chrome json carries the file id" true (contains ~needle:"\"file\": 3" json)

let test_trace_ctx_sampling_determinism () =
  let picks ctx = List.init 500 (fun i -> Trace_ctx.sampled ctx ~request:i) in
  let a = Trace_ctx.create ~sample:0.2 ~seed:9 () in
  let b = Trace_ctx.create ~sample:0.2 ~seed:9 () in
  check_bool "sampling is pure in (seed, request)" true (picks a = picks b);
  let kept = List.length (List.filter Fun.id (picks a)) in
  check_bool "sampling rate is respected" true (kept > 50 && kept < 150);
  check_bool "trace ids are pure in (seed, request)" true
    (List.init 100 (fun i -> Trace_ctx.trace_id a ~request:i)
    = List.init 100 (fun i -> Trace_ctx.trace_id b ~request:i));
  let c = Trace_ctx.create ~sample:0.2 ~seed:10 () in
  check_bool "the seed changes the sample" true (picks a <> picks c);
  (* unsampled requests discard their pushes but still advance the clock *)
  let d = Trace_ctx.create ~sample:1.0 ~seed:3 () in
  Trace_ctx.commit d ~request:0 ~file:1 ~latency_ms:2.0;
  Trace_ctx.push d ~cat:"fetch" "fetch" ~dur_ms:1.0;
  Trace_ctx.commit d ~request:1 ~file:2 ~latency_ms:1.0;
  let r1 = List.find (fun s -> s.Trace_ctx.request = 1 && s.Trace_ctx.depth = 0) (Trace_ctx.spans d) in
  check_int "clock advanced by every committed latency" 2_000 r1.Trace_ctx.start_us;
  check_bool "sample 0 rejected" true
    (match Trace_ctx.create ~sample:0.0 ~seed:1 () with
     | exception Invalid_argument _ -> true
     | _ -> false);
  check_bool "negative request rejected" true
    (match Trace_ctx.sampled a ~request:(-1) with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* --- windowed series --------------------------------------------------------- *)

let series_eq a b =
  Series.to_json a = Series.to_json b && Series.to_prometheus a = Series.to_prometheus b

(* One deterministic observation per (index, k) pair; shared by the
   crafted shard test and the merge-algebra properties. *)
let series_apply s (i, k) =
  match k mod 5 with
  | 0 -> Series.observe_access s ~index:i ~hit:(k mod 2 = 0)
  | 1 -> Series.observe_latency s ~index:i ~us:(k * 37 mod 5_000)
  | 2 -> Series.observe_degraded s ~index:i
  | 3 -> Series.observe_eviction s ~index:i ~speculative:(k mod 3 = 0)
  | _ -> Series.observe_node s ~index:i ~node:(k mod 7)

let test_series_crafted () =
  let s = Series.create ~window:4 in
  check_int "no windows before any observation" 0 (Series.windows s);
  Series.observe_access s ~index:0 ~hit:true;
  Series.observe_access s ~index:1 ~hit:false;
  Series.observe_latency s ~index:1 ~us:900;
  Series.observe_degraded s ~index:1;
  Series.observe_node s ~index:1 ~node:2;
  Series.observe_access s ~index:9 ~hit:false;
  Series.observe_eviction s ~index:9 ~speculative:true;
  Series.observe_eviction s ~index:9 ~speculative:false;
  check_int "windows reach the highest observed index" 3 (Series.windows s);
  check_int "w0 accesses" 2 (Series.accesses s 0);
  check_int "w0 hits" 1 (Series.hits s 0);
  check_int "w0 degraded" 1 (Series.degraded s 0);
  Alcotest.(check (float 1e-9)) "w0 hit rate (percent)" 50.0 (Series.hit_rate s 0);
  Alcotest.(check (float 1e-9)) "w0 degraded rate (percent)" 50.0 (Series.degraded_rate s 0);
  check_opt_int "w0 latency quantile clamps to the observed max" (Some 900)
    (Series.latency_quantile s 0 0.99);
  check_int "skipped window exists and is empty" 0 (Series.accesses s 1);
  Alcotest.(check (float 1e-9)) "empty window rates are 0" 0.0 (Series.hit_rate s 1);
  check_opt_int "empty window has no latency" None (Series.latency_quantile s 1 0.5);
  check_int "only speculative evictions count" 1 (Series.speculative_evictions s 2);
  Alcotest.(check (list (pair int int))) "w0 node loads" [ (2, 1) ] (Series.node_loads s 0);
  Alcotest.(check (float 1e-9))
    "imbalance over nodes 0..2: loads [0;0;1], max/mean = 3" 3.0
    (Series.load_imbalance ~nodes:3 s 0);
  Alcotest.(check (float 1e-9)) "no load means imbalance 0" 0.0 (Series.load_imbalance s 2);
  check_int "total accesses" 3 (Series.total_accesses s);
  check_int "total hits" 1 (Series.total_hits s);
  check_int "total degraded" 1 (Series.total_degraded s);
  check_int "total speculative evictions" 1 (Series.total_speculative_evictions s);
  check_int "total latency gathers every sample" 1 (Histogram.count (Series.total_latency s));
  check_bool "accessor out of range raises" true
    (match Series.accesses s 3 with exception Invalid_argument _ -> true | _ -> false);
  check_bool "negative index raises" true
    (match Series.observe_access s ~index:(-1) ~hit:true with
     | exception Invalid_argument _ -> true
     | _ -> false);
  check_bool "non-positive window raises" true
    (match Series.create ~window:0 with exception Invalid_argument _ -> true | _ -> false)

let test_series_shard_merge_bytes () =
  (* the Pool-shard discipline: four workers each see a quarter of the
     observations (keyed by global access index); their merge must be
     byte-identical to the single-series run, whatever the merge shape *)
  let obs = List.init 3_000 (fun k -> (k * 13 mod 2_500, k)) in
  let whole = Series.create ~window:250 in
  List.iter (series_apply whole) obs;
  let shard p =
    let s = Series.create ~window:250 in
    List.iteri (fun j o -> if j mod 4 = p then series_apply s o) obs;
    s
  in
  let merged =
    Series.merge (Series.merge (shard 0) (shard 1)) (Series.merge (shard 2) (shard 3))
  in
  check_bool "4-shard merge byte-identical to the whole run" true (series_eq whole merged);
  let merged_rev =
    Series.merge (Series.merge (shard 3) (shard 2)) (Series.merge (shard 1) (shard 0))
  in
  check_bool "merge shape does not change the bytes" true (series_eq merged merged_rev);
  check_bool "mismatched windows refuse to merge" true
    (match Series.merge whole (Series.create ~window:100) with
     | exception Invalid_argument _ -> true
     | _ -> false)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_series_weighted () =
  let s = Series.create ~window:4 in
  Series.observe_access s ~index:0 ~hit:true;
  (* exporters stay in the pre-weights format until the first weighted
     observation *)
  check_bool "json has no weighted fields" false
    (contains ~needle:"bytes_accessed" (Series.to_json s));
  check_bool "prometheus has no weighted gauges" false
    (contains ~needle:"byte_hit_rate" (Series.to_prometheus s));
  Series.observe_weighted s ~index:0 ~size:3 ~cost:5 ~hit:true;
  Series.observe_weighted s ~index:5 ~size:2 ~cost:7 ~hit:false;
  check_int "w0 bytes accessed" 3 (Series.bytes_accessed s 0);
  check_int "w0 bytes hit" 3 (Series.bytes_hit s 0);
  check_int "w0 cost fetched (hits fetch nothing)" 0 (Series.cost_fetched s 0);
  check_int "w1 cost fetched" 7 (Series.cost_fetched s 1);
  Alcotest.(check (float 1e-9)) "w0 byte hit rate (percent)" 100.0 (Series.byte_hit_rate s 0);
  Alcotest.(check (float 1e-9)) "w1 byte hit rate (percent)" 0.0 (Series.byte_hit_rate s 1);
  check_bool "json gains weighted fields" true
    (contains ~needle:"\"bytes_accessed\": 3" (Series.to_json s));
  check_bool "prometheus gains weighted gauges" true
    (contains ~needle:"byte_hit_rate" (Series.to_prometheus s));
  (* weightedness survives a merge with an unweighted shard *)
  check_bool "merge keeps weighted fields" true
    (contains ~needle:"bytes_accessed" (Series.to_json (Series.merge s (Series.create ~window:4))));
  check_bool "non-positive size raises" true
    (match Series.observe_weighted s ~index:0 ~size:0 ~cost:1 ~hit:true with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_series_reconciles_digest () =
  let sink = Sink.memory () in
  let m = client_run ~obs:sink in
  let events = Sink.events sink in
  let digest = Digest.of_events events in
  let series = Series.of_events ~window:500 events in
  check_int "accesses" (Digest.accesses digest) (Series.total_accesses series);
  check_int "run accesses" m.Agg_core.Metrics.accesses (Series.total_accesses series);
  check_int "hits" (Digest.demand_hits digest) (Series.total_hits series);
  check_int "degraded" (Digest.degraded_fetches digest) (Series.total_degraded series);
  check_int "speculative evictions" (Digest.evicted_speculative digest)
    (Series.total_speculative_evictions series);
  let sum f =
    let t = ref 0 in
    for w = 0 to Series.windows series - 1 do
      t := !t + f w
    done;
    !t
  in
  check_int "window accesses sum to the total" (Series.total_accesses series)
    (sum (Series.accesses series));
  check_int "window hits sum to the total" (Series.total_hits series) (sum (Series.hits series));
  check_int "window churn sums to the total" (Series.total_speculative_evictions series)
    (sum (Series.speculative_evictions series))

(* --- qcheck properties ---------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  let values_gen = list_of_size (Gen.int_range 0 200) (int_range 0 100_000) in
  let event_gen =
    let open Gen in
    let file = int_range 0 10_000 in
    oneof
      [
        map2 (fun f d -> Event.Demand_hit { file = f; depth = d }) file (int_range 0 1000);
        map (fun f -> Event.Demand_miss { file = f }) file;
        map (fun f -> Event.Prefetch_issued { file = f }) file;
        map2 (fun f l -> Event.Prefetch_promoted { file = f; lifetime = l }) file (int_range 0 1000);
        map3
          (fun f s a -> Event.Evicted { file = f; speculative = s; age_accesses = a })
          file bool (int_range 0 1000);
        map2 (fun a s -> Event.Group_built { anchor = a; size = s }) file (int_range 1 20);
        map2 (fun p n -> Event.Successor_update { prev = p; next = n }) file file;
        map2 (fun f a -> Event.Fetch_timeout { file = f; attempt = a }) file (int_range 0 10);
        map2 (fun f d -> Event.Fetch_degraded { file = f; dropped = d }) file (int_range 0 20);
        map2 (fun c w -> Event.Client_crashed { client = c; wiped = w }) (int_range 0 64)
          (int_range 0 1000);
        map2 (fun f n -> Event.Node_routed { file = f; node = n }) file (int_range 0 64);
        map3
          (fun f a b -> Event.Replica_failover { file = f; failed = a; target = b })
          file (int_range 0 64) (int_range 0 64);
        map3
          (fun n j m -> Event.Ring_rebalance { node = n; joined = j; moved = m })
          (int_range 0 64) bool (int_range 0 1000);
      ]
  in
  let event_arb = make ~print:(Format.asprintf "%a" Event.pp) event_gen in
  [
    Test.make ~name:"counter merge is commutative and associative" ~count:200
      (triple (list small_nat) (list small_nat) (list small_nat))
      (fun (xs, ys, zs) ->
        let counter values =
          let c = Counter.create () in
          List.iter (Counter.add c) values;
          c
        in
        let a = counter xs and b = counter ys and c = counter zs in
        Counter.(value (merge a b)) = Counter.(value (merge b a))
        && Counter.(value (merge (merge a b) c)) = Counter.(value (merge a (merge b c))));
    Test.make ~name:"histogram merge is commutative with create identity" ~count:100
      (pair values_gen values_gen)
      (fun (xs, ys) ->
        let a = hist_of xs and b = hist_of ys in
        hist_eq (Histogram.merge a b) (Histogram.merge b a)
        && hist_eq (Histogram.merge a (Histogram.create ())) a);
    Test.make ~name:"histogram merge is associative" ~count:100
      (triple values_gen values_gen values_gen)
      (fun (xs, ys, zs) ->
        let a = hist_of xs and b = hist_of ys and c = hist_of zs in
        hist_eq
          (Histogram.merge (Histogram.merge a b) c)
          (Histogram.merge a (Histogram.merge b c)));
    Test.make ~name:"histogram merge equals histogram of concatenation" ~count:100
      (pair values_gen values_gen)
      (fun (xs, ys) -> hist_eq (Histogram.merge (hist_of xs) (hist_of ys)) (hist_of (xs @ ys)));
    Test.make ~name:"quantiles are monotone in q" ~count:200
      (triple values_gen (float_bound_inclusive 1.0) (float_bound_inclusive 1.0))
      (fun (xs, q1, q2) ->
        let h = hist_of xs in
        let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
        match (Histogram.quantile h lo, Histogram.quantile h hi) with
        | Some a, Some b -> a <= b
        | None, None -> xs = []
        | _ -> false);
    Test.make ~name:"quantiles stay within observed extremes" ~count:200
      (pair values_gen (float_bound_inclusive 1.0))
      (fun (xs, q) ->
        match (hist_of xs, xs) with
        | h, _ :: _ ->
            let v = Option.get (Histogram.quantile h q) in
            Option.get (Histogram.min_value h) <= v
            && v <= Option.get (Histogram.max_value h)
        | h, [] -> Histogram.quantile h q = None);
    Test.make ~name:"event JSONL round-trips" ~count:500
      (pair (make Gen.small_nat) event_arb)
      (fun (seq, ev) ->
        match Event.of_json (Event.to_json ~seq ev) with
        | Ok (seq', ev') -> seq = seq' && event_equal ev ev'
        | Error _ -> false);
    (let obs_list =
       list_of_size (Gen.int_range 0 150) (pair (int_range 0 999) (int_range 0 10_000))
     in
     let series_of obs =
       let s = Series.create ~window:100 in
       List.iter (series_apply s) obs;
       s
     in
     Test.make ~name:"series merge is associative and commutative with create identity" ~count:100
       (triple obs_list obs_list obs_list)
       (fun (xs, ys, zs) ->
         let a = series_of xs and b = series_of ys and c = series_of zs in
         series_eq (Series.merge a b) (Series.merge b a)
         && series_eq (Series.merge (Series.merge a b) c) (Series.merge a (Series.merge b c))
         && series_eq (Series.merge a (Series.create ~window:100)) a));
    Test.make ~name:"series window sums equal the totals" ~count:100
      (list_of_size (Gen.int_range 0 200) (pair (int_range 0 2_000) (int_range 0 10_000)))
      (fun obs ->
        let s = Series.create ~window:128 in
        List.iter (series_apply s) obs;
        let sum f =
          let t = ref 0 in
          for w = 0 to Series.windows s - 1 do
            t := !t + f w
          done;
          !t
        in
        sum (Series.accesses s) = Series.total_accesses s
        && sum (Series.hits s) = Series.total_hits s
        && sum (Series.degraded s) = Series.total_degraded s
        && sum (Series.speculative_evictions s) = Series.total_speculative_evictions s);
  ]

let () =
  Alcotest.run "agg_obs"
    [
      ( "counter",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "merge" `Quick test_counter_merge;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "crafted buckets" `Quick test_histogram_crafted;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "quantile edge cases" `Quick test_histogram_quantile_edges;
          Alcotest.test_case "pool merge" `Quick test_histogram_merge_pool;
        ] );
      ( "event-json",
        [
          Alcotest.test_case "round-trip crafted" `Quick test_event_json_roundtrip_crafted;
          Alcotest.test_case "malformed lines" `Quick test_event_json_errors;
        ] );
      ( "sink",
        [
          Alcotest.test_case "noop" `Quick test_sink_noop;
          Alcotest.test_case "memory" `Quick test_sink_memory;
          Alcotest.test_case "jsonl" `Quick test_sink_jsonl;
          Alcotest.test_case "jsonl buffered bytes" `Quick test_sink_jsonl_bytes;
          Alcotest.test_case "sampled" `Quick test_sink_sampled;
        ] );
      ( "digest",
        [
          Alcotest.test_case "crafted replay" `Quick test_digest_replay;
          Alcotest.test_case "reconciles client run" `Quick test_reconcile_client;
          Alcotest.test_case "reconciles server run" `Quick test_reconcile_server;
          Alcotest.test_case "noop leaves metrics identical" `Quick test_noop_identical_metrics;
          Alcotest.test_case "weighted counters" `Quick test_digest_weighted;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig3 events, jobs 1 vs 4" `Quick test_fig3_jobs_determinism;
          Alcotest.test_case "fig3 noop vs memory" `Quick test_fig3_noop_vs_memory;
        ] );
      ( "span",
        [
          Alcotest.test_case "record" `Quick test_span_record;
          Alcotest.test_case "chrome json" `Quick test_span_chrome_json;
        ] );
      ( "trace-ctx",
        [
          Alcotest.test_case "crafted span trees" `Quick test_trace_ctx_crafted;
          Alcotest.test_case "sampling determinism" `Quick test_trace_ctx_sampling_determinism;
        ] );
      ( "series",
        [
          Alcotest.test_case "crafted windows" `Quick test_series_crafted;
          Alcotest.test_case "shard merge bytes" `Quick test_series_shard_merge_bytes;
          Alcotest.test_case "reconciles digest totals" `Quick test_series_reconciles_digest;
          Alcotest.test_case "weighted windows and export gating" `Quick test_series_weighted;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
