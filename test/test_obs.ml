(* Tests for the instrumentation layer: counters and histograms (crafted
   semantics plus the merge algebra qcheck properties), event JSONL
   round-trips, sink behaviours, digest reconciliation against the
   simulator's aggregate metrics, and the sweep determinism regressions
   (identical event sequences for any --jobs, Noop vs Memory leaving
   figure numbers unchanged). *)

open Agg_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Counter ----------------------------------------------------------- *)

let test_counter_basics () =
  let c = Counter.create () in
  check_int "fresh" 0 (Counter.value c);
  Counter.incr c;
  Counter.incr c;
  Counter.add c 5;
  check_int "incr+add" 7 (Counter.value c);
  Counter.reset c;
  check_int "reset" 0 (Counter.value c);
  Alcotest.check_raises "negative add" (Invalid_argument "Counter.add: negative increment")
    (fun () -> Counter.add c (-1))

let test_counter_merge () =
  let a = Counter.create () and b = Counter.create () in
  Counter.add a 3;
  Counter.add b 4;
  check_int "merge sums" 7 (Counter.value (Counter.merge a b));
  (* merge is pure: the inputs are untouched *)
  check_int "a untouched" 3 (Counter.value a);
  check_int "b untouched" 4 (Counter.value b)

(* --- Histogram --------------------------------------------------------- *)

let hist_of values =
  let h = Histogram.create () in
  List.iter (Histogram.add h) values;
  h

let hist_eq a b =
  Histogram.count a = Histogram.count b
  && Histogram.sum a = Histogram.sum b
  && Histogram.min_value a = Histogram.min_value b
  && Histogram.max_value a = Histogram.max_value b
  && Histogram.buckets a = Histogram.buckets b

let test_histogram_crafted () =
  let h = hist_of [ 0; 1; 1; 2; 3; 8; 100 ] in
  check_int "count" 7 (Histogram.count h);
  check_int "sum" 115 (Histogram.sum h);
  Alcotest.(check (option int)) "min" (Some 0) (Histogram.min_value h);
  Alcotest.(check (option int)) "max" (Some 100) (Histogram.max_value h);
  (* value 0 → bucket {0}; 1 → [1,1]; 2..3 → [2,3]; 8 → [8,15]; 100 → [64,127] *)
  Alcotest.(check (list (triple int int int)))
    "buckets"
    [ (0, 0, 1); (1, 1, 2); (2, 3, 2); (8, 15, 1); (64, 127, 1) ]
    (Histogram.buckets h);
  Alcotest.check_raises "negative value" (Invalid_argument "Histogram.add: negative value")
    (fun () -> Histogram.add h (-1))

let test_histogram_quantiles () =
  let h = Histogram.create () in
  Alcotest.(check (option int)) "empty" None (Histogram.quantile h 0.5);
  Histogram.add h 5;
  (* A single observation: every quantile is clamped to the observed max. *)
  Alcotest.(check (option int)) "single p0" (Some 5) (Histogram.quantile h 0.0);
  Alcotest.(check (option int)) "single p100" (Some 5) (Histogram.quantile h 1.0);
  let h = hist_of (List.init 100 (fun i -> i)) in
  check_bool "p50 <= p99" true (Histogram.quantile h 0.5 <= Histogram.quantile h 0.99);
  Alcotest.(check (option int)) "p100 = max" (Some 99) (Histogram.quantile h 1.0);
  Alcotest.check_raises "q out of range" (Invalid_argument "Histogram.quantile: q out of [0,1]")
    (fun () -> ignore (Histogram.quantile h 1.5))

let test_histogram_merge_pool () =
  (* Pool map-reduce over chunks must equal the sequential histogram. *)
  let values = List.init 2000 (fun i -> i * 37 mod 517) in
  let rec chunks n = function
    | [] -> []
    | l ->
        let rec take k acc = function
          | x :: rest when k > 0 -> take (k - 1) (x :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let c, rest = take n [] l in
        c :: chunks n rest
  in
  let parts =
    Agg_util.Pool.map ~jobs:4 (fun chunk -> hist_of chunk) (chunks 123 values)
  in
  let merged = List.fold_left Histogram.merge (Histogram.create ()) parts in
  check_bool "pooled merge = sequential" true (hist_eq merged (hist_of values))

(* --- Event JSONL -------------------------------------------------------- *)

let event_equal (a : Event.t) (b : Event.t) = a = b

let test_event_json_roundtrip_crafted () =
  let events =
    [
      Event.Demand_hit { file = 3; depth = 0 };
      Event.Demand_miss { file = 12345 };
      Event.Prefetch_issued { file = 0 };
      Event.Prefetch_promoted { file = 9; lifetime = 42 };
      Event.Evicted { file = 7; speculative = true; age_accesses = 17 };
      Event.Evicted { file = 8; speculative = false; age_accesses = 0 };
      Event.Group_built { anchor = 4; size = 5 };
      Event.Successor_update { prev = 1; next = 2 };
      Event.Fetch_timeout { file = 11; attempt = 2 };
      Event.Fetch_degraded { file = 11; dropped = 4 };
      Event.Client_crashed { client = 3; wiped = 150 };
      Event.Node_routed { file = 21; node = 4 };
      Event.Replica_failover { file = 21; failed = 4; target = 0 };
      Event.Ring_rebalance { node = 5; joined = true; moved = 37 };
      Event.Ring_rebalance { node = 2; joined = false; moved = 0 };
    ]
  in
  List.iteri
    (fun seq ev ->
      match Event.of_json (Event.to_json ~seq ev) with
      | Ok (seq', ev') ->
          check_int "seq" seq seq';
          check_bool (Event.name ev ^ " round-trips") true (event_equal ev ev')
      | Error e -> Alcotest.failf "%s: %s" (Event.name ev) e)
    events

let test_event_json_errors () =
  let is_error s =
    match Event.of_json s with Ok _ -> false | Error _ -> true
  in
  check_bool "garbage" true (is_error "not json");
  check_bool "empty object" true (is_error "{}");
  check_bool "unknown tag" true (is_error {|{"seq":0,"ev":"warp_drive","file":1}|});
  check_bool "missing field" true (is_error {|{"seq":0,"ev":"demand_hit","file":1}|});
  check_bool "extra field" true
    (is_error {|{"seq":0,"ev":"demand_miss","file":1,"bogus":2}|});
  check_bool "bad seq" true (is_error {|{"seq":"x","ev":"demand_miss","file":1}|});
  check_bool "node_routed missing node" true (is_error {|{"seq":0,"ev":"node_routed","file":1}|});
  check_bool "ring_rebalance non-bool joined" true
    (is_error {|{"seq":0,"ev":"ring_rebalance","node":1,"joined":2,"moved":3}|})

(* --- Sinks -------------------------------------------------------------- *)

let test_sink_noop () =
  check_bool "disabled" false (Sink.enabled Sink.noop);
  Sink.emit Sink.noop (Event.Demand_miss { file = 1 });
  check_int "emitted" 0 (Sink.emitted Sink.noop);
  check_int "no events" 0 (List.length (Sink.events Sink.noop))

let test_sink_memory () =
  let s = Sink.memory () in
  check_bool "enabled" true (Sink.enabled s);
  let evs =
    [ Event.Demand_miss { file = 1 }; Event.Group_built { anchor = 1; size = 3 } ]
  in
  List.iter (Sink.emit s) evs;
  check_int "emitted" 2 (Sink.emitted s);
  check_bool "in order" true (Sink.events s = evs)

let test_sink_jsonl () =
  let path = Filename.temp_file "aggsim_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let s = Sink.jsonl oc in
      let evs =
        [
          Event.Demand_hit { file = 2; depth = 7 };
          Event.Evicted { file = 2; speculative = true; age_accesses = 3 };
        ]
      in
      List.iter (Sink.emit s) evs;
      Sink.flush s;
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let parsed = List.rev_map Event.of_json !lines in
      check_int "two lines" 2 (List.length parsed);
      List.iteri
        (fun i -> function
          | Ok (seq, ev) ->
              check_int "seq stamped" i seq;
              check_bool "event survives" true (event_equal ev (List.nth evs i))
          | Error e -> Alcotest.fail e)
        parsed)

(* --- Digest ------------------------------------------------------------- *)

let test_digest_replay () =
  let d = Digest.create () in
  List.iter (Digest.observe d)
    [
      Event.Demand_miss { file = 1 };
      Event.Group_built { anchor = 1; size = 3 };
      Event.Prefetch_issued { file = 2 };
      Event.Prefetch_issued { file = 3 };
      Event.Demand_hit { file = 2; depth = 1 };
      Event.Prefetch_promoted { file = 2; lifetime = 1 };
      Event.Evicted { file = 3; speculative = true; age_accesses = 2 };
      (* the simulator notices the wasted prefetch of 3 only here: *)
      Event.Demand_miss { file = 3 };
      Event.Group_built { anchor = 3; size = 1 };
    ];
  check_int "hits" 1 (Digest.demand_hits d);
  check_int "misses" 2 (Digest.demand_misses d);
  check_int "accesses" 3 (Digest.accesses d);
  check_int "issued" 2 (Digest.prefetch_issued d);
  check_int "promoted" 1 (Digest.prefetch_promoted d);
  check_int "evicted_speculative" 1 (Digest.evicted_speculative d);
  check_int "evicted_unused (lazy)" 1 (Digest.evicted_unused d);
  check_int "groups" 2 (Digest.groups_built d);
  check_int "lifetime samples" 2 (Histogram.count (Digest.lifetime d));
  check_int "group size samples" 2 (Histogram.count (Digest.group_size d))

let server_profile () =
  match Agg_workload.Profile.by_name "server" with
  | Some p -> p
  | None -> Alcotest.fail "server profile missing"

let client_run ~obs =
  let trace = Agg_workload.Generator.generate ~seed:11 ~events:6_000 (server_profile ()) in
  let cache = Agg_core.Client_cache.create ~obs ~capacity:200 () in
  Agg_core.Client_cache.run cache trace

let test_reconcile_client () =
  let sink = Sink.memory () in
  let m = client_run ~obs:sink in
  let digest = Digest.of_events (Sink.events sink) in
  (match Agg_core.Metrics.reconcile_client digest m with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  check_int "hits + fetches = accesses" m.Agg_core.Metrics.accesses
    (m.Agg_core.Metrics.hits + m.Agg_core.Metrics.demand_fetches)

let test_reconcile_server () =
  let trace = Agg_workload.Generator.generate ~seed:11 ~events:6_000 (server_profile ()) in
  List.iter
    (fun cooperative ->
      let sink = Sink.memory () in
      let sim =
        Agg_core.Server_cache.create ~cooperative ~obs:sink ~filter_kind:Agg_cache.Cache.Lru
          ~filter_capacity:150 ~server_capacity:300
          ~scheme:(Agg_core.Server_cache.Aggregating Agg_core.Config.default) ()
      in
      let m = Agg_core.Server_cache.run sim trace in
      let digest = Digest.of_events (Sink.events sink) in
      match Agg_core.Metrics.reconcile_server digest m with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "cooperative=%b: %s" cooperative msg)
    [ false; true ]

let test_noop_identical_metrics () =
  let plain = client_run ~obs:Sink.noop in
  let sink = Sink.memory () in
  let instrumented = client_run ~obs:sink in
  check_bool "metrics unchanged by instrumentation" true (plain = instrumented);
  check_bool "events were recorded" true (Sink.emitted sink > 0)

(* --- sweep determinism --------------------------------------------------- *)

let fig3_with_sinks ~jobs =
  let settings = { Agg_sim.Experiment.quick_settings with Agg_sim.Experiment.jobs } in
  let group_sizes = [ 1; 5 ] and capacities = [ 100; 300 ] in
  let sinks = Hashtbl.create 8 in
  List.iter
    (fun g -> List.iter (fun c -> Hashtbl.replace sinks (g, c) (Sink.memory ())) capacities)
    group_sizes;
  let sink_for ~group ~capacity = Hashtbl.find sinks (group, capacity) in
  let panel =
    Agg_sim.Fig3.panel ~sink_for ~settings ~capacities ~group_sizes (server_profile ())
  in
  (panel, sinks)

let test_fig3_jobs_determinism () =
  let panel1, sinks1 = fig3_with_sinks ~jobs:1 in
  let panel4, sinks4 = fig3_with_sinks ~jobs:4 in
  check_bool "panel numbers identical" true (panel1 = panel4);
  Hashtbl.iter
    (fun (g, c) sink ->
      let e1 = Sink.events sink and e4 = Sink.events (Hashtbl.find sinks4 (g, c)) in
      check_bool
        (Printf.sprintf "g%d/c%d event count > 0" g c)
        true (e1 <> []);
      check_bool
        (Printf.sprintf "g%d/c%d events identical for jobs 1 vs 4" g c)
        true (e1 = e4))
    sinks1

let test_fig3_noop_vs_memory () =
  let settings = Agg_sim.Experiment.quick_settings in
  let capacities = [ 100; 300 ] and group_sizes = [ 1; 5 ] in
  let noop_panel =
    Agg_sim.Fig3.panel ~settings ~capacities ~group_sizes (server_profile ())
  in
  let memory_panel, _ = fig3_with_sinks ~jobs:2 in
  check_bool "Noop vs Memory leave figure numbers unchanged" true (noop_panel = memory_panel)

(* --- Span ---------------------------------------------------------------- *)

let test_span_record () =
  let r = Span.recorder () in
  let x = Span.record r ~cat:"test" "outer" (fun () -> Span.record r "inner" (fun () -> 41) + 1) in
  check_int "result passed through" 42 x;
  check_int "both spans recorded" 2 (Span.count r);
  (try Span.record r "raises" (fun () -> failwith "boom") with Failure _ -> 0) |> ignore;
  check_int "span recorded on raise" 3 (Span.count r);
  List.iter
    (fun (s : Span.span) -> check_bool (s.Span.name ^ " duration >= 0") true (Span.seconds_of s >= 0.0))
    (Span.spans r);
  check_bool "total >= 0" true (Span.total_seconds r >= 0.0)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  n = 0 || loop 0

let test_span_chrome_json () =
  let r = Span.recorder () in
  Span.record r ~cat:"sec\"tion" "na\\me" (fun () -> ()) |> ignore;
  let json = Span.chrome_json r in
  check_bool "has traceEvents" true (contains ~needle:"\"traceEvents\"" json);
  check_bool "has complete-event ph" true (contains ~needle:"\"X\"" json);
  check_bool "escapes quotes" true (contains ~needle:"sec\\\"tion" json)

(* --- qcheck properties ---------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  let values_gen = list_of_size (Gen.int_range 0 200) (int_range 0 100_000) in
  let event_gen =
    let open Gen in
    let file = int_range 0 10_000 in
    oneof
      [
        map2 (fun f d -> Event.Demand_hit { file = f; depth = d }) file (int_range 0 1000);
        map (fun f -> Event.Demand_miss { file = f }) file;
        map (fun f -> Event.Prefetch_issued { file = f }) file;
        map2 (fun f l -> Event.Prefetch_promoted { file = f; lifetime = l }) file (int_range 0 1000);
        map3
          (fun f s a -> Event.Evicted { file = f; speculative = s; age_accesses = a })
          file bool (int_range 0 1000);
        map2 (fun a s -> Event.Group_built { anchor = a; size = s }) file (int_range 1 20);
        map2 (fun p n -> Event.Successor_update { prev = p; next = n }) file file;
        map2 (fun f a -> Event.Fetch_timeout { file = f; attempt = a }) file (int_range 0 10);
        map2 (fun f d -> Event.Fetch_degraded { file = f; dropped = d }) file (int_range 0 20);
        map2 (fun c w -> Event.Client_crashed { client = c; wiped = w }) (int_range 0 64)
          (int_range 0 1000);
        map2 (fun f n -> Event.Node_routed { file = f; node = n }) file (int_range 0 64);
        map3
          (fun f a b -> Event.Replica_failover { file = f; failed = a; target = b })
          file (int_range 0 64) (int_range 0 64);
        map3
          (fun n j m -> Event.Ring_rebalance { node = n; joined = j; moved = m })
          (int_range 0 64) bool (int_range 0 1000);
      ]
  in
  let event_arb = make ~print:(Format.asprintf "%a" Event.pp) event_gen in
  [
    Test.make ~name:"counter merge is commutative and associative" ~count:200
      (triple (list small_nat) (list small_nat) (list small_nat))
      (fun (xs, ys, zs) ->
        let counter values =
          let c = Counter.create () in
          List.iter (Counter.add c) values;
          c
        in
        let a = counter xs and b = counter ys and c = counter zs in
        Counter.(value (merge a b)) = Counter.(value (merge b a))
        && Counter.(value (merge (merge a b) c)) = Counter.(value (merge a (merge b c))));
    Test.make ~name:"histogram merge is commutative with create identity" ~count:100
      (pair values_gen values_gen)
      (fun (xs, ys) ->
        let a = hist_of xs and b = hist_of ys in
        hist_eq (Histogram.merge a b) (Histogram.merge b a)
        && hist_eq (Histogram.merge a (Histogram.create ())) a);
    Test.make ~name:"histogram merge is associative" ~count:100
      (triple values_gen values_gen values_gen)
      (fun (xs, ys, zs) ->
        let a = hist_of xs and b = hist_of ys and c = hist_of zs in
        hist_eq
          (Histogram.merge (Histogram.merge a b) c)
          (Histogram.merge a (Histogram.merge b c)));
    Test.make ~name:"histogram merge equals histogram of concatenation" ~count:100
      (pair values_gen values_gen)
      (fun (xs, ys) -> hist_eq (Histogram.merge (hist_of xs) (hist_of ys)) (hist_of (xs @ ys)));
    Test.make ~name:"quantiles are monotone in q" ~count:200
      (triple values_gen (float_bound_inclusive 1.0) (float_bound_inclusive 1.0))
      (fun (xs, q1, q2) ->
        let h = hist_of xs in
        let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
        match (Histogram.quantile h lo, Histogram.quantile h hi) with
        | Some a, Some b -> a <= b
        | None, None -> xs = []
        | _ -> false);
    Test.make ~name:"quantiles stay within observed extremes" ~count:200
      (pair values_gen (float_bound_inclusive 1.0))
      (fun (xs, q) ->
        match (hist_of xs, xs) with
        | h, _ :: _ ->
            let v = Option.get (Histogram.quantile h q) in
            Option.get (Histogram.min_value h) <= v
            && v <= Option.get (Histogram.max_value h)
        | h, [] -> Histogram.quantile h q = None);
    Test.make ~name:"event JSONL round-trips" ~count:500
      (pair (make Gen.small_nat) event_arb)
      (fun (seq, ev) ->
        match Event.of_json (Event.to_json ~seq ev) with
        | Ok (seq', ev') -> seq = seq' && event_equal ev ev'
        | Error _ -> false);
  ]

let () =
  Alcotest.run "agg_obs"
    [
      ( "counter",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "merge" `Quick test_counter_merge;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "crafted buckets" `Quick test_histogram_crafted;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "pool merge" `Quick test_histogram_merge_pool;
        ] );
      ( "event-json",
        [
          Alcotest.test_case "round-trip crafted" `Quick test_event_json_roundtrip_crafted;
          Alcotest.test_case "malformed lines" `Quick test_event_json_errors;
        ] );
      ( "sink",
        [
          Alcotest.test_case "noop" `Quick test_sink_noop;
          Alcotest.test_case "memory" `Quick test_sink_memory;
          Alcotest.test_case "jsonl" `Quick test_sink_jsonl;
        ] );
      ( "digest",
        [
          Alcotest.test_case "crafted replay" `Quick test_digest_replay;
          Alcotest.test_case "reconciles client run" `Quick test_reconcile_client;
          Alcotest.test_case "reconciles server run" `Quick test_reconcile_server;
          Alcotest.test_case "noop leaves metrics identical" `Quick test_noop_identical_metrics;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig3 events, jobs 1 vs 4" `Quick test_fig3_jobs_determinism;
          Alcotest.test_case "fig3 noop vs memory" `Quick test_fig3_noop_vs_memory;
        ] );
      ( "span",
        [
          Alcotest.test_case "record" `Quick test_span_record;
          Alcotest.test_case "chrome json" `Quick test_span_chrome_json;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
