(* Replaying a *real* trace: the path a user with their own data takes.

   1. capture opens on a live system, e.g.
        strace -f -e trace=open,openat -o app.strace ./app
   2. convert:  aggsim convert -f strace app.strace -o app.trace
   3. replay any experiment against it.

   This example fabricates a small strace-style capture in memory (a
   shell script loop touching libraries, configs and data files), imports
   it with [Agg_trace.Import], and runs the aggregating cache against
   plain LRU on the imported trace — exactly what steps 2–3 do from the
   command line.

   Run with: dune exec examples/replay_real_trace.exe *)

let fabricate_strace () =
  let buf = Buffer.create 4096 in
  let open_line path = Buffer.add_string buf (Printf.sprintf {|openat(AT_FDCWD, "%s", O_RDONLY) = 3|} path ^ "\n") in
  let script_run i =
    open_line "/bin/sh";
    open_line "/etc/ld.so.cache";
    open_line "/lib/libc.so.6";
    open_line "/usr/local/bin/report";
    open_line "/etc/report.conf";
    (* each dataset is a little working set of its own: input, schema,
       lookup table, output — the inter-file structure grouping feeds on *)
    let dataset = i mod 25 in
    open_line (Printf.sprintf "/var/data/input-%03d.csv" dataset);
    open_line (Printf.sprintf "/var/data/schema-%03d.json" dataset);
    open_line (Printf.sprintf "/var/data/lookup-%03d.tbl" dataset);
    open_line (Printf.sprintf "/var/data/output-%03d.csv" dataset);
    (* the occasional failure and unrelated syscall, as real captures have *)
    if i mod 7 = 0 then
      Buffer.add_string buf
        {|openat(AT_FDCWD, "/etc/report.local", O_RDONLY) = -1 ENOENT (No such file)|};
    Buffer.add_string buf "write(1, \"done\\n\", 5) = 5\n"
  in
  for i = 1 to 400 do
    script_run i
  done;
  Buffer.contents buf

let () =
  let capture = fabricate_strace () in
  let trace, namespace = Agg_trace.Import.of_string Agg_trace.Import.Strace capture in
  Format.printf "imported %d opens over %d distinct paths@." (Agg_trace.Trace.length trace)
    (Agg_trace.File_id.Namespace.count namespace);

  let run group_size =
    let config = Agg_core.Config.with_group_size group_size Agg_core.Config.default in
    let cache = Agg_core.Client_cache.create ~config ~capacity:20 () in
    Agg_core.Client_cache.run cache trace
  in
  let lru = run 1 and g5 = run 5 in
  Format.printf "@.client cache of 20 files over the imported trace:@.";
  Format.printf "  LRU: %a@." Agg_core.Metrics.pp_client lru;
  Format.printf "  g5:  %a@." Agg_core.Metrics.pp_client g5;

  (* name the strongest relationships back in path terms *)
  let graph = Agg_successor.Graph.of_trace trace in
  let name id = Option.value ~default:"?" (Agg_trace.File_id.Namespace.name namespace id) in
  let shell = Option.get (Agg_trace.File_id.Namespace.find namespace "/bin/sh") in
  Format.printf "@.strongest successors of %s:@." (name shell);
  List.iteri
    (fun i (dst, w) ->
      if i < 3 then Format.printf "  %-28s (weight %d)@." (name dst) w)
    (Agg_successor.Graph.successors_by_strength graph shell)
