(* The paper's §2.1 motivating scenario: a developer machine with two
   build trees. `make`, the shell and the compiler are read in *both*
   working sets, so any disjoint partitioning of files must put them with
   one project and penalise the other. Overlapping groups place the
   shared executables in both projects' groups.

   The example builds the trace from named files, shows the covering
   group set (watch /usr/bin/make appear in groups of both projects),
   and measures the aggregating cache on the workload.

   Run with: dune exec examples/build_system.exe *)

module Ns = Agg_trace.File_id.Namespace

let () =
  let ns = Ns.create () in
  let f = Ns.intern ns in
  (* shared utilities, hot in every working set *)
  let sh = f "/bin/sh" in
  let make = f "/usr/bin/make" in
  let gcc = f "/usr/bin/gcc" in
  (* project A: a small C library *)
  let proj_a =
    [ f "~/liba/Makefile"; make; sh; gcc; f "~/liba/src/alloc.c"; f "~/liba/src/alloc.h";
      gcc; f "~/liba/src/ring.c"; f "~/liba/src/ring.h"; f "~/liba/build/liba.a" ]
  in
  (* project B: an OCaml tool tree *)
  let proj_b =
    [ f "~/toolb/Makefile"; make; sh; f "~/toolb/bin/main.ml"; f "~/toolb/lib/parse.ml";
      f "~/toolb/lib/lex.ml"; f "~/toolb/build/tool.exe" ]
  in
  (* an edit-compile session interleaving both trees, with editor files *)
  let edit_a = [ f "~/.vimrc"; f "~/liba/src/alloc.c"; f "~/liba/src/alloc.h" ] in
  let edit_b = [ f "~/.vimrc"; f "~/toolb/lib/parse.ml" ] in
  let prng = Agg_util.Prng.create ~seed:9 () in
  let trace = Agg_trace.Trace.create () in
  for _ = 1 to 800 do
    let session =
      match Agg_util.Prng.int prng 4 with
      | 0 -> proj_a
      | 1 -> proj_b
      | 2 -> edit_a @ proj_a
      | _ -> edit_b @ proj_b
    in
    List.iter (fun file -> Agg_trace.Trace.add_access trace file) session
  done;
  Format.printf "trace: %d events over %d named files@." (Agg_trace.Trace.length trace)
    (Agg_trace.Trace.distinct_files trace);

  (* Overlapping covering groups from the relationship graph. *)
  let graph = Agg_successor.Graph.of_trace trace in
  let cover = Agg_successor.Grouping.cover graph ~size:4 in
  let stats = Agg_successor.Grouping.cover_stats cover in
  Format.printf "@.covering set: %d groups, %d files covered, %d files in multiple groups@."
    stats.Agg_successor.Grouping.groups stats.covered_nodes stats.overlapping_nodes;
  let name file = Option.value ~default:"?" (Ns.name ns file) in
  List.iteri
    (fun i group ->
      if i < 6 then
        Format.printf "  group %d: %s@." i
          (String.concat " -> " (List.map name group.Agg_successor.Grouping.members)))
    cover;
  let make_groups =
    List.filter (fun g -> List.mem make g.Agg_successor.Grouping.members) cover
  in
  Format.printf "@.%s appears in %d group(s) — overlap a partition would forbid@." (name make)
    (List.length make_groups);

  (* Cache comparison on the session workload. *)
  let run group_size =
    let config = Agg_core.Config.with_group_size group_size Agg_core.Config.default in
    let cache = Agg_core.Client_cache.create ~config ~capacity:12 () in
    Agg_core.Client_cache.run cache trace
  in
  let lru = run 1 and g4 = run 4 in
  Format.printf "@.client cache of 12 files:@.";
  Format.printf "  LRU:              %d demand fetches@." lru.Agg_core.Metrics.demand_fetches;
  Format.printf "  aggregating (g4): %d demand fetches (%.1f%% fewer)@."
    g4.Agg_core.Metrics.demand_fetches
    (100.0
    *. float_of_int (lru.Agg_core.Metrics.demand_fetches - g4.Agg_core.Metrics.demand_fetches)
    /. float_of_int lru.Agg_core.Metrics.demand_fetches)
