(* A Hummingbird-style scenario (paper §1, §5): a caching web proxy in
   front of many browsers. Each page pulls a fixed set of embedded
   objects (stylesheets, scripts, images) — strong inter-file structure —
   while every browser runs its own cache, so the proxy only sees the
   misses. Plain LRU at the proxy collapses once browser caches grow;
   the aggregating proxy keeps serving hits because page→object
   succession survives the filtering.

   Unlike Hummingbird we never look at the HTML: groups come purely from
   the observed request sequence.

   Run with: dune exec examples/web_proxy.exe *)

let () =
  let prng = Agg_util.Prng.create ~seed:31 () in
  (* 300 sites; each page has 4-9 embedded objects; object ids disjoint
     per page; a shared CDN pool (analytics script, fonts) appears on
     many pages. *)
  let sites = 300 in
  let cdn_pool = 12 in
  let next_id = ref cdn_pool in
  let pages =
    Array.init sites (fun _ ->
        let objects = 4 + Agg_util.Prng.int prng 6 in
        let page = !next_id in
        incr next_id;
        let embedded =
          List.init objects (fun _ ->
              if Agg_util.Prng.bernoulli prng ~p:0.2 then Agg_util.Prng.int prng cdn_pool
              else begin
                let id = !next_id in
                incr next_id;
                id
              end)
        in
        page :: embedded)
  in
  let popularity = Agg_util.Dist.Zipf.create ~n:sites ~s:0.9 in
  (* 40 browsers, each fetching full pages; the global trace interleaves
     their sessions page by page. *)
  let browsers = 40 in
  let trace = Agg_trace.Trace.create () in
  for _ = 1 to 12_000 do
    let client = Agg_util.Prng.int prng browsers in
    let page = pages.(Agg_util.Dist.Zipf.sample popularity prng) in
    List.iter (fun obj -> Agg_trace.Trace.add_access trace ~client obj) page
  done;
  Format.printf "proxy workload: %d requests, %d distinct objects, %d browsers@."
    (Agg_trace.Trace.length trace)
    (Agg_trace.Trace.distinct_files trace)
    browsers;

  (* Browser caches filter the stream per client; the proxy sees misses. *)
  let proxy_capacity = 400 in
  let run_proxy ~browser_capacity ~scheme =
    let miss_stream =
      Agg_trace.Filter.miss_stream_per_client ~capacity:browser_capacity trace
    in
    (* the proxy is the "client side" of the remote origin servers: run
       the miss stream through a server-style cache directly *)
    let sim =
      Agg_core.Server_cache.create ~filter_kind:Agg_cache.Cache.Lru ~filter_capacity:1
        ~server_capacity:proxy_capacity ~scheme ()
    in
    (* a capacity-1 pre-filter only absorbs immediate duplicates, which a
       real connection-level cache would anyway *)
    let m = Agg_core.Server_cache.run sim miss_stream in
    (Agg_trace.Trace.length miss_stream, 100.0 *. Agg_core.Metrics.server_hit_rate m)
  in
  Format.printf "@.proxy cache = %d objects; hit rates at the proxy:@." proxy_capacity;
  Format.printf "  %-18s %-14s %-10s %s@." "browser cache" "proxy requests" "LRU" "aggregating g5";
  List.iter
    (fun browser_capacity ->
      let requests, lru =
        run_proxy ~browser_capacity ~scheme:(Agg_core.Server_cache.Plain Agg_cache.Cache.Lru)
      in
      let _, agg =
        run_proxy ~browser_capacity ~scheme:(Agg_core.Server_cache.Aggregating Agg_core.Config.default)
      in
      Format.printf "  %-18d %-14d %-10.1f %.1f@." browser_capacity requests lru agg)
    [ 20; 100; 400; 800 ]
