(* Mobile file hoarding (the paper's future-work application, after
   Seer/Coda): before disconnecting, a laptop picks a fixed set of files
   to carry. We compare three hoards of equal size — covering groups from
   the relationship graph, the most frequently used files, and an LRU
   snapshot at disconnection — training on the first half of a
   workstation trace and replaying the second half disconnected.

   Besides raw hit rate we report the share of fully-hoarded 10-access
   windows, a proxy for working uninterrupted.

   Run with: dune exec examples/mobile_hoard.exe *)

let hoard_of_groups graph ~budget =
  let hoard = Hashtbl.create budget in
  (* covering groups in cover order: most-accessed anchors first, each
     bringing its whole working set *)
  let groups = Agg_successor.Grouping.cover graph ~size:6 in
  List.iter
    (fun group ->
      List.iter
        (fun file -> if Hashtbl.length hoard < budget then Hashtbl.replace hoard file ())
        group.Agg_successor.Grouping.members)
    groups;
  hoard

let hoard_of_top_frequent train ~budget =
  let hoard = Hashtbl.create budget in
  List.iter
    (fun (file, _) -> if Hashtbl.length hoard < budget then Hashtbl.replace hoard file ())
    (Agg_trace.Trace_stats.top_files train ~k:budget);
  hoard

let hoard_of_most_recent train ~budget =
  (* snapshot of an LRU stack at disconnection time *)
  let cache = Agg_cache.Cache.create Agg_cache.Cache.Lru ~capacity:budget in
  Agg_trace.Trace.iter
    (fun (e : Agg_trace.Event.t) -> ignore (Agg_cache.Cache.access cache e.Agg_trace.Event.file))
    train;
  let hoard = Hashtbl.create budget in
  List.iter (fun file -> Hashtbl.replace hoard file ()) (Agg_cache.Cache.contents cache);
  hoard

let disconnected_hit_rate hoard replay =
  let hits = ref 0 in
  Agg_trace.Trace.iter
    (fun (e : Agg_trace.Event.t) ->
      if Hashtbl.mem hoard e.Agg_trace.Event.file then incr hits)
    replay;
  100.0 *. float_of_int !hits /. float_of_int (Agg_trace.Trace.length replay)

(* Raw hit rate undersells hoarding quality: disconnected work stalls on
   the *first* missing file of a working set. This measures the fraction
   of 10-access windows served entirely from the hoard — uninterrupted
   stretches of work. *)
let complete_window_rate hoard replay =
  let files = Agg_trace.Trace.files replay in
  let n = Array.length files in
  let window = 10 in
  let complete = ref 0 in
  let total = ref 0 in
  let run = ref 0 in
  (* count positions where the last [window] accesses all hit *)
  for i = 0 to n - 1 do
    if Hashtbl.mem hoard files.(i) then incr run else run := 0;
    if i >= window - 1 then begin
      incr total;
      if !run >= window then incr complete
    end
  done;
  100.0 *. float_of_int !complete /. float_of_int !total

let () =
  let trace =
    Agg_workload.Generator.generate ~seed:12 ~events:60_000 Agg_workload.Profile.workstation
  in
  let half = Agg_trace.Trace.length trace / 2 in
  let train = Agg_trace.Trace.sub trace ~pos:0 ~len:half in
  let replay = Agg_trace.Trace.sub trace ~pos:half ~len:half in
  Format.printf "training on %d events, replaying %d events disconnected@." half half;
  let graph = Agg_successor.Graph.of_trace train in
  Format.printf "relationship graph: %d files, %d edges@." (Agg_successor.Graph.node_count graph)
    (Agg_successor.Graph.edge_count graph);
  Format.printf "@.hit rate %% / complete 10-access windows %% (both: higher is better)@.";
  Format.printf "  %-8s %-16s %-16s %s@." "budget" "group hoard" "frequency hoard" "recency hoard";
  List.iter
    (fun budget ->
      let show hoard = (disconnected_hit_rate hoard replay, complete_window_rate hoard replay) in
      let g_hit, g_win = show (hoard_of_groups graph ~budget) in
      let f_hit, f_win = show (hoard_of_top_frequent train ~budget) in
      let r_hit, r_win = show (hoard_of_most_recent train ~budget) in
      Format.printf "  %-8d %4.1f / %-9.1f %4.1f / %-9.1f %4.1f / %.1f@." budget g_hit g_win f_hit
        f_win r_hit r_win)
    [ 250; 500; 1000; 2000 ];
  Format.printf
    "@.Succession groups comfortably beat a raw recency snapshot, showing that@.the same \
     metadata that drives the aggregating cache transfers to hoarding.@.Whole-history \
     frequency profiling remains the strongest baseline on this@.workload — consistent with \
     the paper leaving hoarding as future work:@.succession alone is not yet a complete \
     hoarding relationship measure.@."
