(* Quickstart: the public API in five minutes.

   1. generate (or load) an access trace,
   2. inspect its predictability with successor entropy,
   3. build successor metadata and look at predicted groups,
   4. run an aggregating client cache against plain LRU.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A workload. [Agg_trace.Codec.read_file] loads real traces in the
     same format; here we synthesise the paper's most predictable
     profile. *)
  let trace =
    Agg_workload.Generator.generate ~seed:42 ~events:30_000 Agg_workload.Profile.server
  in
  let stats = Agg_trace.Trace_stats.compute trace in
  Format.printf "workload: %a@." Agg_trace.Trace_stats.pp stats;

  (* 2. How predictable is it? Successor entropy (paper Eq. 2), in bits:
     lower is more predictable; < 1 bit means the next file is almost
     determined by the current one. *)
  Format.printf "successor entropy (L=1): %.2f bits@."
    (Agg_entropy.Entropy.of_trace trace);

  (* 3. Successor metadata: one small recency-managed list per file. The
     server builds retrieval groups by chaining the most likely
     successors. *)
  let tracker = Agg_successor.Tracker.create () in
  Agg_successor.Tracker.observe_trace tracker trace;
  let popular =
    match Agg_trace.Trace_stats.top_files trace ~k:1 with
    | (file, count) :: _ -> Format.printf "most popular file: f%d (%d accesses)@." file count; file
    | [] -> assert false
  in
  let group = Agg_core.Group_builder.build tracker ~group_size:5 popular in
  Format.printf "retrieval group for f%d: [%s]@." popular
    (String.concat "; " (List.map (fun f -> "f" ^ string_of_int f) group));

  (* 4. Cache simulation: plain LRU vs the aggregating cache fetching
     groups of five. Demand fetches are requests that had to go to the
     remote server — fewer is better. *)
  let capacity = 300 in
  let run group_size =
    let config = Agg_core.Config.with_group_size group_size Agg_core.Config.default in
    let cache = Agg_core.Client_cache.create ~config ~capacity () in
    Agg_core.Client_cache.run cache trace
  in
  let lru = run 1 in
  let g5 = run 5 in
  Format.printf "@.client cache, capacity %d files:@." capacity;
  Format.printf "  plain LRU:        %a@." Agg_core.Metrics.pp_client lru;
  Format.printf "  aggregating (g5): %a@." Agg_core.Metrics.pp_client g5;
  Format.printf "  demand fetches cut by %.1f%%@."
    (100.0
    *. float_of_int (lru.Agg_core.Metrics.demand_fetches - g5.Agg_core.Metrics.demand_fetches)
    /. float_of_int lru.Agg_core.Metrics.demand_fetches)
