examples/quickstart.mli:
