examples/build_system.mli:
