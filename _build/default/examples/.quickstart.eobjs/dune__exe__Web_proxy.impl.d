examples/web_proxy.ml: Agg_cache Agg_core Agg_trace Agg_util Array Format List
