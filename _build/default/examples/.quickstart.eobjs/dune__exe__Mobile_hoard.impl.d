examples/mobile_hoard.ml: Agg_cache Agg_successor Agg_trace Agg_workload Array Format Hashtbl List
