examples/replay_real_trace.mli:
