examples/quickstart.ml: Agg_core Agg_entropy Agg_successor Agg_trace Agg_workload Format List String
