examples/build_system.ml: Agg_core Agg_successor Agg_trace Agg_util Format List Option String
