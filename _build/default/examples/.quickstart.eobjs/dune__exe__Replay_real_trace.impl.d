examples/replay_real_trace.ml: Agg_core Agg_successor Agg_trace Buffer Format List Option Printf
