examples/mobile_hoard.mli:
