type t = { title : string; columns : string list; rows : string list Vec.t }

let create ~title ~columns = { title; columns; rows = Vec.create () }

let add_row t cells =
  let n = List.length t.columns in
  let k = List.length cells in
  if k > n then invalid_arg "Table.add_row: more cells than columns";
  let padded = if k < n then cells @ List.init (n - k) (fun _ -> "") else cells in
  Vec.push t.rows padded

let add_float_row t ?(decimals = 2) label values =
  add_row t (label :: List.map (fun v -> Printf.sprintf "%.*f" decimals v) values)

let render t =
  let all_rows = t.columns :: Vec.to_list t.rows in
  let n = List.length t.columns in
  let widths = Array.make n 0 in
  let record row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  List.iter record all_rows;
  let buf = Buffer.create 256 in
  let pad cell width = cell ^ String.make (width - String.length cell) ' ' in
  let emit_row row =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (pad cell widths.(i));
        Buffer.add_string buf (if i = n - 1 then " |\n" else " | "))
      row
  in
  let rule =
    let parts = Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths) in
    "+" ^ String.concat "+" parts ^ "+\n"
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf rule;
  emit_row t.columns;
  Buffer.add_string buf rule;
  Vec.iter emit_row t.rows;
  Buffer.add_string buf rule;
  Buffer.contents buf

let print t = print_string (render t)
