module Running = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { count = 0; mean = 0.0; m2 = 0.0; min = Float.nan; max = Float.nan }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if t.count = 1 then begin
      t.min <- x;
      t.max <- x
    end
    else begin
      if x < t.min then t.min <- x;
      if x > t.max then t.max <- x
    end

  let count t = t.count
  let mean t = t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
end

module Histogram = struct
  type t = { lo : float; hi : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~buckets =
    if buckets <= 0 then invalid_arg "Stats.Histogram.create: buckets must be positive";
    if hi <= lo then invalid_arg "Stats.Histogram.create: hi must exceed lo";
    { lo; hi; counts = Array.make buckets 0; total = 0 }

  let bucket_of t x =
    let n = Array.length t.counts in
    let idx = int_of_float (float_of_int n *. (x -. t.lo) /. (t.hi -. t.lo)) in
    Stdlib.min (n - 1) (Stdlib.max 0 idx)

  let add t x =
    let b = bucket_of t x in
    t.counts.(b) <- t.counts.(b) + 1;
    t.total <- t.total + 1

  let count t = t.total
  let bucket_counts t = Array.copy t.counts

  let percentile t p =
    if t.total = 0 then invalid_arg "Stats.Histogram.percentile: empty histogram";
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.Histogram.percentile: p out of range";
    let n = Array.length t.counts in
    let width = (t.hi -. t.lo) /. float_of_int n in
    let target = p /. 100.0 *. float_of_int t.total in
    let rec loop i seen =
      if i >= n then t.hi
      else
        let seen' = seen + t.counts.(i) in
        if float_of_int seen' >= target && t.counts.(i) > 0 then
          let within = (target -. float_of_int seen) /. float_of_int t.counts.(i) in
          t.lo +. (width *. (float_of_int i +. Float.max 0.0 (Float.min 1.0 within)))
        else loop (i + 1) seen'
    in
    loop 0 0
end

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let percent_change ~baseline ~value =
  if baseline = 0.0 then 0.0 else (value -. baseline) /. baseline *. 100.0

let log2 x = Float.log x /. Float.log 2.0
