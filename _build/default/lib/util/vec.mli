(** Growable array. OCaml 5.1 predates [Stdlib.Dynarray], so traces and
    other append-heavy buffers use this minimal equivalent. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when the index is out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument when the index is out of bounds. *)

val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val map : ('a -> 'b) -> 'a t -> 'b t
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_array : 'a array -> 'a t
val of_list : 'a list -> 'a t
val sub : 'a t -> pos:int -> len:int -> 'a t
(** [sub t ~pos ~len] copies the slice [\[pos, pos+len)].
    @raise Invalid_argument when the slice is out of bounds. *)
