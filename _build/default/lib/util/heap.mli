(** Binary min-heap over explicit priorities, used by the LFU structures
    and the offline-optimal (Belady) policy. *)

type ('p, 'v) t

val create : compare:('p -> 'p -> int) -> unit -> ('p, 'v) t
val length : ('p, 'v) t -> int
val is_empty : ('p, 'v) t -> bool
val push : ('p, 'v) t -> 'p -> 'v -> unit
val peek : ('p, 'v) t -> ('p * 'v) option
(** Smallest priority, without removing it. *)

val pop : ('p, 'v) t -> ('p * 'v) option
(** Removes and returns the smallest priority. *)

val clear : ('p, 'v) t -> unit
