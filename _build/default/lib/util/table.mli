(** Plain-text tables for the benchmark harness output. Every figure's data
    series is printed as one of these, so the bench output can be compared
    to the paper's plots by eye or diffed between runs. *)

type t

val create : title:string -> columns:string list -> t
(** [create ~title ~columns] starts a table with the given header row. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row. Rows shorter than the header are
    padded; longer rows are an error.
    @raise Invalid_argument when [cells] has more cells than columns. *)

val add_float_row : t -> ?decimals:int -> string -> float list -> unit
(** [add_float_row t label values] appends [label] followed by the values
    rendered with [decimals] (default 2) decimal places. *)

val render : t -> string
(** The table as an aligned, boxed string ending in a newline. *)

val print : t -> unit
(** [render] to standard output. *)
