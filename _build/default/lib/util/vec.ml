type 'a t = { mutable data : 'a array; mutable size : int }

let create ?(capacity = 16) () =
  ignore capacity;
  { data = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let check t i name = if i < 0 || i >= t.size then invalid_arg ("Vec." ^ name ^ ": index out of bounds")

let get t i =
  check t i "get";
  t.data.(i)

let set t i v =
  check t i "set";
  t.data.(i) <- v

let grow t v =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let data = Array.make new_cap v in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let push t v =
  if t.size = Array.length t.data then grow t v;
  t.data.(t.size) <- v;
  t.size <- t.size + 1

let pop t =
  if t.size = 0 then None
  else begin
    t.size <- t.size - 1;
    Some t.data.(t.size)
  end

let clear t =
  t.data <- [||];
  t.size <- 0

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.size

let map f t =
  let out = { data = Array.map f (to_array t); size = t.size } in
  out

let to_list t = Array.to_list (to_array t)
let of_array a = { data = Array.copy a; size = Array.length a }
let of_list l = of_array (Array.of_list l)

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.size then invalid_arg "Vec.sub: slice out of bounds";
  { data = Array.sub t.data pos len; size = len }
