lib/util/prng.mli:
