lib/util/vec.mli:
