lib/util/dlist.mli:
