lib/util/table.mli:
