lib/util/stats.mli:
