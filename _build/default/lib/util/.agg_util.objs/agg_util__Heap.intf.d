lib/util/heap.mli:
