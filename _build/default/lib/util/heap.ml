type ('p, 'v) t = { compare : 'p -> 'p -> int; entries : ('p * 'v) Vec.t }

let create ~compare () = { compare; entries = Vec.create () }
let length t = Vec.length t.entries
let is_empty t = Vec.length t.entries = 0

let swap t i j =
  let a = Vec.get t.entries i and b = Vec.get t.entries j in
  Vec.set t.entries i b;
  Vec.set t.entries j a

let prio t i = fst (Vec.get t.entries i)

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.compare (prio t i) (prio t parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = Vec.length t.entries in
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < n && t.compare (prio t left) (prio t !smallest) < 0 then smallest := left;
  if right < n && t.compare (prio t right) (prio t !smallest) < 0 then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t p v =
  Vec.push t.entries (p, v);
  sift_up t (Vec.length t.entries - 1)

let peek t = if is_empty t then None else Some (Vec.get t.entries 0)

let pop t =
  if is_empty t then None
  else begin
    let top = Vec.get t.entries 0 in
    let n = Vec.length t.entries in
    swap t 0 (n - 1);
    ignore (Vec.pop t.entries);
    if not (is_empty t) then sift_down t 0;
    Some top
  end

let clear t = Vec.clear t.entries
