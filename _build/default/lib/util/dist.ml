module Zipf = struct
  type t = { cdf : float array; pmf : float array }

  let create ~n ~s =
    if n <= 0 then invalid_arg "Dist.Zipf.create: n must be positive";
    if s < 0.0 then invalid_arg "Dist.Zipf.create: s must be non-negative";
    let pmf = Array.init n (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) s) in
    let total = Array.fold_left ( +. ) 0.0 pmf in
    let acc = ref 0.0 in
    let cdf =
      Array.map
        (fun w ->
          let p = w /. total in
          acc := !acc +. p;
          !acc)
        pmf
    in
    (* Guard against floating-point shortfall at the top of the table. *)
    cdf.(n - 1) <- 1.0;
    Array.iteri (fun i w -> pmf.(i) <- w /. total) pmf;
    { cdf; pmf }

  let n t = Array.length t.cdf

  let sample t prng =
    let u = Prng.float prng 1.0 in
    (* Binary search for the first index with cdf >= u. *)
    let rec loop lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.cdf.(mid) >= u then loop lo mid else loop (mid + 1) hi
    in
    loop 0 (Array.length t.cdf - 1)

  let prob t k =
    if k < 0 || k >= Array.length t.pmf then invalid_arg "Dist.Zipf.prob: rank out of range";
    t.pmf.(k)
end

module Alias = struct
  type t = { prob : float array; alias : int array }

  let create weights =
    let n = Array.length weights in
    if n = 0 then invalid_arg "Dist.Alias.create: empty weights";
    let total = Array.fold_left ( +. ) 0.0 weights in
    if total <= 0.0 then invalid_arg "Dist.Alias.create: weights sum to zero";
    Array.iter (fun w -> if w < 0.0 then invalid_arg "Dist.Alias.create: negative weight") weights;
    let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
    let prob = Array.make n 0.0 in
    let alias = Array.make n 0 in
    let small = Stack.create () in
    let large = Stack.create () in
    Array.iteri (fun i p -> if p < 1.0 then Stack.push i small else Stack.push i large) scaled;
    while (not (Stack.is_empty small)) && not (Stack.is_empty large) do
      let s = Stack.pop small in
      let l = Stack.pop large in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
      if scaled.(l) < 1.0 then Stack.push l small else Stack.push l large
    done;
    let flush stack =
      while not (Stack.is_empty stack) do
        let i = Stack.pop stack in
        prob.(i) <- 1.0;
        alias.(i) <- i
      done
    in
    flush small;
    flush large;
    { prob; alias }

  let sample t prng =
    let n = Array.length t.prob in
    let i = Prng.int prng n in
    if Prng.float prng 1.0 < t.prob.(i) then i else t.alias.(i)

  let size t = Array.length t.prob
end

let geometric prng ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Dist.geometric: p must be in (0, 1]";
  if p >= 1.0 then 0
  else
    let u = 1.0 -. Prng.float prng 1.0 in
    int_of_float (Float.floor (Float.log u /. Float.log (1.0 -. p)))

let exponential prng ~mean =
  if mean <= 0.0 then invalid_arg "Dist.exponential: mean must be positive";
  let u = 1.0 -. Prng.float prng 1.0 in
  -.mean *. Float.log u

let categorical prng weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Dist.categorical: weights sum to zero";
  let u = Prng.float prng total in
  let n = Array.length weights in
  let rec loop i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else loop (i + 1) acc
  in
  loop 0 0.0
