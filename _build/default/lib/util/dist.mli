(** Sampling from the discrete distributions used by the workload models. *)

module Zipf : sig
  (** Zipf-like distribution over ranks [0 .. n-1]: the probability of rank
      [k] is proportional to [1 / (k+1)^s]. File-system popularity skew is
      classically modelled this way. Sampling is O(log n) via a precomputed
      cumulative table. *)

  type t

  val create : n:int -> s:float -> t
  (** [create ~n ~s] precomputes the cumulative distribution for [n] ranks
      with exponent [s]. [n] must be positive and [s] non-negative
      ([s = 0.] degenerates to the uniform distribution). *)

  val n : t -> int
  (** Number of ranks. *)

  val sample : t -> Prng.t -> int
  (** [sample t prng] draws a rank in [\[0, n)]. *)

  val prob : t -> int -> float
  (** [prob t k] is the probability mass of rank [k]. *)
end

module Alias : sig
  (** Walker alias method: O(1) sampling from an arbitrary finite discrete
      distribution after O(n) preprocessing. *)

  type t

  val create : float array -> t
  (** [create weights] normalises [weights] (which must be non-negative and
      not all zero) and builds the alias table. *)

  val sample : t -> Prng.t -> int
  (** [sample t prng] draws an index distributed according to the weights. *)

  val size : t -> int
  (** Number of outcomes. *)
end

val geometric : Prng.t -> p:float -> int
(** [geometric prng ~p] is the number of failures before the first success
    in Bernoulli trials with success probability [p]; mean [(1-p)/p].
    [p] must be in (0, 1]. *)

val exponential : Prng.t -> mean:float -> float
(** [exponential prng ~mean] draws from Exp(1/mean). [mean] must be
    positive. *)

val categorical : Prng.t -> float array -> int
(** [categorical prng weights] draws an index with probability proportional
    to its (non-negative) weight. Linear scan; use {!Alias} for repeated
    sampling from the same weights. *)
