(** Running statistics and small numeric helpers for experiment reporting. *)

module Running : sig
  (** Single-pass mean/variance (Welford's algorithm). *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** Mean of the observations; [0.] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [0.] with fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  (** Smallest observation; [nan] when empty. *)

  val max : t -> float
  (** Largest observation; [nan] when empty. *)
end

module Histogram : sig
  (** Fixed-width bucket histogram over [\[lo, hi)]; out-of-range samples
      are clamped into the first/last bucket. *)

  type t

  val create : lo:float -> hi:float -> buckets:int -> t
  val add : t -> float -> unit
  val count : t -> int
  val bucket_counts : t -> int array
  val percentile : t -> float -> float
  (** [percentile t p] approximates the [p]-th percentile ([0 <= p <= 100])
      by linear interpolation within the containing bucket.
      @raise Invalid_argument on an empty histogram. *)
end

val mean : float array -> float
(** Arithmetic mean; [0.] for the empty array. *)

val ratio : int -> int -> float
(** [ratio num den] is [num / den] as a float, and [0.] when [den = 0]. *)

val percent_change : baseline:float -> value:float -> float
(** [(value - baseline) / baseline * 100.], and [0.] when [baseline = 0.]. *)

val log2 : float -> float
(** Base-2 logarithm. *)
