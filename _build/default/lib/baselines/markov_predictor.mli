(** First-order Markov (frequency-count) predictor: predict the successor
    observed *most often* so far. The frequency counterpart of
    {!Last_successor}; the paper argues (and Fig. 5 shows) that recency
    beats this in a succession context. *)

type t

val create : unit -> t
val predict : t -> Agg_trace.File_id.t -> Agg_trace.File_id.t option
val observe : t -> Agg_trace.File_id.t -> unit

val measure : Agg_trace.File_id.t array -> Last_successor.accuracy
(** Same protocol as {!Last_successor.measure}. *)
