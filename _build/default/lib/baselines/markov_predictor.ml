type t = {
  counts : (int, (int, int) Hashtbl.t) Hashtbl.t;
  (* cache of the current argmax per file, maintained incrementally *)
  best : (int, int * int) Hashtbl.t; (* file -> (successor, count) *)
  mutable context : int option;
}

let create () = { counts = Hashtbl.create 1024; best = Hashtbl.create 1024; context = None }

let predict t file = Option.map fst (Hashtbl.find_opt t.best file)

let observe t file =
  (match t.context with
  | Some prev ->
      let table =
        match Hashtbl.find_opt t.counts prev with
        | Some table -> table
        | None ->
            let table = Hashtbl.create 4 in
            Hashtbl.replace t.counts prev table;
            table
      in
      let c = 1 + Option.value ~default:0 (Hashtbl.find_opt table file) in
      Hashtbl.replace table file c;
      (match Hashtbl.find_opt t.best prev with
      | Some (_, best_count) when best_count >= c -> ()
      | Some _ | None -> Hashtbl.replace t.best prev (file, c))
  | None -> ());
  t.context <- Some file

let measure files =
  let t = create () in
  let predictions = ref 0 in
  let correct = ref 0 in
  let no_prediction = ref 0 in
  Array.iter
    (fun file ->
      (match t.context with
      | Some prev -> (
          match predict t prev with
          | Some guess ->
              incr predictions;
              if guess = file then incr correct
          | None -> incr no_prediction)
      | None -> ());
      observe t file)
    files;
  {
    Last_successor.predictions = !predictions;
    correct = !correct;
    no_prediction = !no_prediction;
  }
