type t = { last : (int, int) Hashtbl.t; mutable context : int option }

let create () = { last = Hashtbl.create 1024; context = None }

let predict t file = Hashtbl.find_opt t.last file

let observe t file =
  (match t.context with Some prev -> Hashtbl.replace t.last prev file | None -> ());
  t.context <- Some file

type accuracy = { predictions : int; correct : int; no_prediction : int }

let accuracy_rate a = Agg_util.Stats.ratio a.correct a.predictions

let measure files =
  let t = create () in
  let predictions = ref 0 in
  let correct = ref 0 in
  let no_prediction = ref 0 in
  let n = Array.length files in
  for i = 0 to n - 1 do
    (match t.context with
    | Some prev -> (
        match predict t prev with
        | Some guess ->
            incr predictions;
            if guess = files.(i) then incr correct
        | None -> incr no_prediction)
    | None -> ());
    observe t files.(i)
  done;
  { predictions = !predictions; correct = !correct; no_prediction = !no_prediction }
