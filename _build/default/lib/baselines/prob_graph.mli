(** Griffioen & Appleton's probability-graph prefetcher (USENIX '94), the
    paper's main related-work comparator. Edge weights count how often a
    file is accessed within a *lookahead window* after another; files whose
    estimated chance exceeds a minimum threshold are explicitly prefetched.
    Contrast with the aggregating cache: frequency- rather than
    recency-based, needs a window parameter and a probability threshold,
    and prefetches on every access rather than fetching groups on misses. *)

type t

val create :
  ?lookahead:int ->
  ?threshold:float ->
  ?cache_kind:Agg_cache.Cache.kind ->
  capacity:int ->
  unit ->
  t
(** [create ~capacity ()] uses the authors' canonical parameters by
    default: lookahead window of 2 and minimum chance 0.1.
    @raise Invalid_argument on non-positive capacity/lookahead or a
    threshold outside (0, 1]. *)

val access : t -> Agg_trace.File_id.t -> bool
(** Demand access; [true] on hit. Updates the graph, then prefetches every
    file related to the accessed one with chance ≥ threshold. *)

val run : t -> Agg_trace.Trace.t -> Agg_core.Metrics.client
val metrics : t -> Agg_core.Metrics.client

val chance : t -> src:Agg_trace.File_id.t -> dst:Agg_trace.File_id.t -> float
(** Current estimate of P(dst within the lookahead after src). *)
