lib/baselines/markov_predictor.ml: Array Hashtbl Last_successor Option
