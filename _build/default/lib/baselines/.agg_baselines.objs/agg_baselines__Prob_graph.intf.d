lib/baselines/prob_graph.mli: Agg_cache Agg_core Agg_trace
