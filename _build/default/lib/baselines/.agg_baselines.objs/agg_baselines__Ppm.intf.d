lib/baselines/ppm.mli: Agg_trace Last_successor
