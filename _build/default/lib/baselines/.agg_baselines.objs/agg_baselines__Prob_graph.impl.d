lib/baselines/prob_graph.ml: Agg_cache Agg_core Agg_trace Agg_util Float Hashtbl List Option Queue
