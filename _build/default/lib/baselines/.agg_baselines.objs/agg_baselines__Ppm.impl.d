lib/baselines/ppm.ml: Array Hashtbl Last_successor List
