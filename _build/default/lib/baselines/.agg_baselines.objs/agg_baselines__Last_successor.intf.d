lib/baselines/last_successor.mli: Agg_trace
