lib/baselines/last_successor.ml: Agg_util Array Hashtbl
