lib/baselines/markov_predictor.mli: Agg_trace Last_successor
