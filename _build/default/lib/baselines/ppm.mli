(** A finite-multi-order context model (PPM-style) next-access predictor,
    after the data-compression approach of Vitter & Krishnan and the
    partitioned context models of Kroeger & Long (both §5 of the paper).
    Contexts of order [max_order] down to 1 are tried in turn; the first
    that has been seen before predicts its most frequent successor.

    The paper's position is that this machinery — strictly more state
    than per-file successor lists — buys little for succession-structured
    file workloads; the predictor-accuracy ablation makes that
    measurable. *)

type t

val create : ?max_order:int -> unit -> t
(** [max_order] defaults to 2 (contexts of the last two files).
    @raise Invalid_argument when not positive. *)

val max_order : t -> int

val observe : t -> Agg_trace.File_id.t -> unit
(** Feed the next file: every context ending at the previous position is
    credited with this successor. *)

val predict : t -> Agg_trace.File_id.t option
(** Most likely next file given the current context, longest informative
    context first; ties go to the most recently updated successor. *)

val measure : ?max_order:int -> Agg_trace.File_id.t array -> Last_successor.accuracy
(** Predict-then-learn over a sequence, same protocol as
    {!Last_successor.measure}. *)
