(** The last-successor predictor (Lei & Duchamp 1997; compared by Kroeger
    & Long): predict that a file will be followed by whatever followed it
    last time. This is exactly a one-entry recency-managed successor list;
    it is the degenerate ancestor of the paper's metadata scheme. *)

type t

val create : unit -> t

val predict : t -> Agg_trace.File_id.t -> Agg_trace.File_id.t option
(** Prediction for the file's next successor, if one has been observed. *)

val observe : t -> Agg_trace.File_id.t -> unit
(** Feed the next file of the access sequence. *)

type accuracy = { predictions : int; correct : int; no_prediction : int }

val accuracy_rate : accuracy -> float
(** correct / predictions; [0.] when no prediction was ever made. *)

val measure : Agg_trace.File_id.t array -> accuracy
(** One pass over the sequence: at each step the predictor guesses the
    next file from the current one, then learns the truth. *)
