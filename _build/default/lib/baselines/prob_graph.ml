module Cache = Agg_cache.Cache

type t = {
  lookahead : int;
  threshold : float;
  cache : Cache.t;
  weights : (int, (int, int) Hashtbl.t) Hashtbl.t; (* src -> dst -> count *)
  accesses_of : (int, int) Hashtbl.t; (* src -> times accessed (chance denominator) *)
  window : int Queue.t; (* the last [lookahead] accesses *)
  speculative : (int, unit) Hashtbl.t;
  mutable accesses : int;
  mutable hits : int;
  mutable demand_fetches : int;
  mutable prefetch_issued : int;
  mutable prefetch_used : int;
  mutable prefetch_evicted_unused : int;
}

let create ?(lookahead = 2) ?(threshold = 0.1) ?(cache_kind = Cache.Lru) ~capacity () =
  if lookahead <= 0 then invalid_arg "Prob_graph.create: lookahead must be positive";
  if threshold <= 0.0 || threshold > 1.0 then
    invalid_arg "Prob_graph.create: threshold must be in (0, 1]";
  {
    lookahead;
    threshold;
    cache = Cache.create cache_kind ~capacity;
    weights = Hashtbl.create 4096;
    accesses_of = Hashtbl.create 4096;
    window = Queue.create ();
    speculative = Hashtbl.create 64;
    accesses = 0;
    hits = 0;
    demand_fetches = 0;
    prefetch_issued = 0;
    prefetch_used = 0;
    prefetch_evicted_unused = 0;
  }

let bump_edge t ~src ~dst =
  let table =
    match Hashtbl.find_opt t.weights src with
    | Some table -> table
    | None ->
        let table = Hashtbl.create 4 in
        Hashtbl.replace t.weights src table;
        table
  in
  let c = Option.value ~default:0 (Hashtbl.find_opt table dst) in
  Hashtbl.replace table dst (c + 1)

let learn t file =
  (* Every file currently in the lookahead window gains an edge to the new
     access (each distinct window member once); then the window slides. *)
  let seen = Hashtbl.create 4 in
  Queue.iter
    (fun src ->
      if src <> file && not (Hashtbl.mem seen src) then begin
        Hashtbl.replace seen src ();
        bump_edge t ~src ~dst:file
      end)
    t.window;
  let c = Option.value ~default:0 (Hashtbl.find_opt t.accesses_of file) in
  Hashtbl.replace t.accesses_of file (c + 1);
  Queue.push file t.window;
  if Queue.length t.window > t.lookahead then ignore (Queue.pop t.window)

let chance t ~src ~dst =
  match Hashtbl.find_opt t.weights src with
  | None -> 0.0
  | Some table ->
      let w = Option.value ~default:0 (Hashtbl.find_opt table dst) in
      let n = Option.value ~default:0 (Hashtbl.find_opt t.accesses_of src) in
      (* [dst] re-accessed while [src] was still in the window counts
         more than once per [src] access; clamp the estimate. *)
      Float.min 1.0 (Agg_util.Stats.ratio w n)

let prefetch_candidates t file =
  match Hashtbl.find_opt t.weights file with
  | None -> []
  | Some table ->
      let n = Option.value ~default:0 (Hashtbl.find_opt t.accesses_of file) in
      if n = 0 then []
      else
        Hashtbl.fold
          (fun dst w acc ->
            if float_of_int w /. float_of_int n >= t.threshold then dst :: acc else acc)
          table []

let prefetch t file =
  if not (Cache.mem t.cache file) then begin
    Cache.insert_cold t.cache file;
    t.prefetch_issued <- t.prefetch_issued + 1;
    Hashtbl.replace t.speculative file ()
  end

let access t file =
  learn t file;
  t.accesses <- t.accesses + 1;
  let hit = Cache.access t.cache file in
  if hit then begin
    t.hits <- t.hits + 1;
    if Hashtbl.mem t.speculative file then begin
      t.prefetch_used <- t.prefetch_used + 1;
      Hashtbl.remove t.speculative file
    end
  end
  else begin
    if Hashtbl.mem t.speculative file then begin
      t.prefetch_evicted_unused <- t.prefetch_evicted_unused + 1;
      Hashtbl.remove t.speculative file
    end;
    t.demand_fetches <- t.demand_fetches + 1
  end;
  (* Unlike the aggregating cache, the prefetcher acts on *every* access
     that clears the probability bar, hit or miss. *)
  List.iter (prefetch t) (prefetch_candidates t file);
  hit

let metrics t =
  {
    Agg_core.Metrics.accesses = t.accesses;
    hits = t.hits;
    demand_fetches = t.demand_fetches;
    prefetch =
      {
        Agg_core.Metrics.issued = t.prefetch_issued;
        used = t.prefetch_used;
        evicted_unused = t.prefetch_evicted_unused;
      };
  }

let run t trace =
  Agg_trace.Trace.iter (fun (e : Agg_trace.Event.t) -> ignore (access t e.file)) trace;
  metrics t
