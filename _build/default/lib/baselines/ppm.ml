type counts = { table : (int, int ref) Hashtbl.t; mutable best : int; mutable best_count : int }

type t = {
  max_order : int;
  (* context (most recent file first) -> successor counts, per order *)
  contexts : (int list, counts) Hashtbl.t array; (* index = order - 1 *)
  mutable recent : int list; (* last [max_order] files, most recent first *)
}

let create ?(max_order = 2) () =
  if max_order <= 0 then invalid_arg "Ppm.create: max_order must be positive";
  {
    max_order;
    contexts = Array.init max_order (fun _ -> Hashtbl.create 4096);
    recent = [];
  }

let max_order t = t.max_order

let rec take n l = if n = 0 then [] else match l with [] -> [] | x :: r -> x :: take (n - 1) r

let credit t ~order ~context successor =
  let table = t.contexts.(order - 1) in
  let entry =
    match Hashtbl.find_opt table context with
    | Some e -> e
    | None ->
        let e = { table = Hashtbl.create 4; best = successor; best_count = 0 } in
        Hashtbl.replace table context e;
        e
  in
  let counter =
    match Hashtbl.find_opt entry.table successor with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.replace entry.table successor c;
        c
  in
  incr counter;
  (* >= : ties go to the most recently updated successor *)
  if !counter >= entry.best_count then begin
    entry.best <- successor;
    entry.best_count <- !counter
  end

let observe t file =
  let n = List.length t.recent in
  for order = 1 to min n t.max_order do
    credit t ~order ~context:(take order t.recent) file
  done;
  t.recent <- take t.max_order (file :: t.recent)

let predict t =
  let rec try_order order =
    if order = 0 then None
    else if List.length t.recent < order then try_order (order - 1)
    else
      match Hashtbl.find_opt t.contexts.(order - 1) (take order t.recent) with
      | Some entry -> Some entry.best
      | None -> try_order (order - 1)
  in
  try_order t.max_order

let measure ?max_order files =
  let t = create ?max_order () in
  let predictions = ref 0 in
  let correct = ref 0 in
  let no_prediction = ref 0 in
  Array.iteri
    (fun i file ->
      if i > 0 then begin
        match predict t with
        | Some guess ->
            incr predictions;
            if guess = file then incr correct
        | None -> incr no_prediction
      end;
      observe t file)
    files;
  {
    Last_successor.predictions = !predictions;
    correct = !correct;
    no_prediction = !no_prediction;
  }
