lib/sim/report.ml: Agg_util Experiment Fig3 Fig4 Fig5 Fig7 Fig8 List Printf Table
