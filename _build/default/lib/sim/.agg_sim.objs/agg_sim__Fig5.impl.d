lib/sim/fig5.ml: Agg_successor Agg_util Agg_workload Array Experiment Hashtbl List
