lib/sim/fig3.mli: Agg_workload Experiment
