lib/sim/fig8.ml: Agg_entropy Agg_workload Experiment Fig7 List
