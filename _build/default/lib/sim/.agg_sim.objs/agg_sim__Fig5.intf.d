lib/sim/fig5.mli: Agg_successor Agg_trace Agg_workload Experiment
