lib/sim/fig3.ml: Agg_core Agg_workload Experiment List Printf
