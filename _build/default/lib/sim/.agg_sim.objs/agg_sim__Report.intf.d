lib/sim/report.mli: Agg_util Experiment
