lib/sim/fig7.ml: Agg_entropy Agg_workload Experiment List
