lib/sim/ablations.ml: Agg_baselines Agg_cache Agg_core Agg_placement Agg_successor Agg_trace Agg_util Agg_workload Array Experiment Fig4 Hashtbl List Printf Stats Table
