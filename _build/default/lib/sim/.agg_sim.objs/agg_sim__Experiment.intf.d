lib/sim/experiment.mli: Agg_util
