lib/sim/plot.mli: Experiment
