lib/sim/fig4.mli: Agg_workload Experiment
