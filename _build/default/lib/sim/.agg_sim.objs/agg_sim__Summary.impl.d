lib/sim/summary.ml: Agg_cache Agg_core Agg_util Agg_workload Experiment Fig4 Float List Printf Table
