lib/sim/ablations.mli: Agg_util Agg_workload Experiment
