lib/sim/export.mli: Experiment
