lib/sim/fig8.mli: Agg_workload Experiment
