lib/sim/fig7.mli: Experiment
