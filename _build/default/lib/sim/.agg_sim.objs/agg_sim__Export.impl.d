lib/sim/export.ml: Buffer Experiment Filename Fun List Printf String Sys
