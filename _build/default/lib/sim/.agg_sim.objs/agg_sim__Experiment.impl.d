lib/sim/experiment.ml: Agg_util Buffer Float List Option Printf Table
