lib/sim/summary.mli: Agg_util Experiment
