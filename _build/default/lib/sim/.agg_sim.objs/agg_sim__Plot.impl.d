lib/sim/plot.ml: Array Buffer Experiment Float List Printf String
