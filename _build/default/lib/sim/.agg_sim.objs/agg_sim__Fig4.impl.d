lib/sim/fig4.ml: Agg_cache Agg_core Agg_workload Experiment List Printf
