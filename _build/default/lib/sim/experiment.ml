type series = { label : string; points : (float * float) list }

type panel = { name : string; x_label : string; y_label : string; series : series list }

type figure = { id : string; title : string; panels : panel list }

type settings = { events : int; seed : int; warmup : int }

let default_settings = { events = 60_000; seed = 7; warmup = 0 }
let quick_settings = { events = 6_000; seed = 7; warmup = 0 }

let series_value s x =
  Option.map snd (List.find_opt (fun (px, _) -> Float.equal px x) s.points)

let xs_of_panel panel =
  let all = List.concat_map (fun s -> List.map fst s.points) panel.series in
  List.sort_uniq compare all

let panel_table ~figure_id panel =
  let open Agg_util in
  let title = Printf.sprintf "%s — %s (%s vs %s)" figure_id panel.name panel.y_label panel.x_label in
  let columns = panel.x_label :: List.map (fun s -> s.label) panel.series in
  let table = Table.create ~title ~columns in
  List.iter
    (fun x ->
      let cells =
        Printf.sprintf "%g" x
        :: List.map
             (fun s ->
               match series_value s x with
               | Some y -> Printf.sprintf "%.2f" y
               | None -> "-")
             panel.series
      in
      Table.add_row table cells)
    (xs_of_panel panel);
  table

let render_figure fig =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "### %s: %s\n" fig.id fig.title);
  List.iter
    (fun panel -> Buffer.add_string buf (Agg_util.Table.render (panel_table ~figure_id:fig.id panel)))
    fig.panels;
  Buffer.contents buf

let print_figure fig = print_string (render_figure fig)
