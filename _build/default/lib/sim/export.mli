(** Machine-readable export of experiment results: CSV, one file per
    panel, columns [x, series...] — ready for gnuplot/matplotlib when the
    terminal tables are not enough. *)

val panel_csv : Experiment.panel -> string
(** CSV text: a header row ["x", label...] then one row per x value;
    missing points are empty cells. Cells containing commas or quotes
    are quoted per RFC 4180. *)

val figure_csv : Experiment.figure -> (string * string) list
(** [(filename, csv)] per panel; filenames are derived from the figure id
    and panel name ([fig4-workstation.csv]). *)

val write_figure : dir:string -> Experiment.figure -> string list
(** Writes each panel's CSV under [dir] (created if missing) and returns
    the paths written. *)
