type client_row = {
  workload : string;
  capacity : int;
  lru_fetches : int;
  g5_fetches : int;
  reduction_percent : float;
}

type server_row = {
  workload : string;
  filter_capacity : int;
  lru_hit_rate : float;
  g5_hit_rate : float;
  improvement_percent : float;
}

let demand_fetches ~trace ~capacity ~group_size =
  let config = Agg_core.Config.with_group_size group_size Agg_core.Config.default in
  let cache = Agg_core.Client_cache.create ~config ~capacity () in
  (Agg_core.Client_cache.run cache trace).Agg_core.Metrics.demand_fetches

let client_rows ?(settings = Experiment.default_settings) ?(capacity = 300) () =
  List.map
    (fun profile ->
      let trace =
        Agg_workload.Generator.generate ~seed:settings.seed ~events:settings.events profile
      in
      let lru = demand_fetches ~trace ~capacity ~group_size:1 in
      let g5 = demand_fetches ~trace ~capacity ~group_size:5 in
      {
        workload = profile.Agg_workload.Profile.name;
        capacity;
        lru_fetches = lru;
        g5_fetches = g5;
        reduction_percent =
          (if lru = 0 then 0.0 else 100.0 *. float_of_int (lru - g5) /. float_of_int lru);
      })
    Agg_workload.Profile.all

let server_hit_rate ~trace ~filter_capacity ~scheme =
  let sim =
    Agg_core.Server_cache.create ~filter_kind:Agg_cache.Cache.Lru ~filter_capacity
      ~server_capacity:Fig4.default_server_capacity ~scheme ()
  in
  100.0 *. Agg_core.Metrics.server_hit_rate (Agg_core.Server_cache.run sim trace)

let server_rows ?(settings = Experiment.default_settings)
    ?(filter_capacities = Fig4.default_filter_capacities) () =
  List.concat_map
    (fun profile ->
      let trace =
        Agg_workload.Generator.generate ~seed:settings.seed ~events:settings.events profile
      in
      List.map
        (fun filter_capacity ->
          let lru =
            server_hit_rate ~trace ~filter_capacity ~scheme:(Agg_core.Server_cache.Plain Agg_cache.Cache.Lru)
          in
          let g5 =
            server_hit_rate ~trace ~filter_capacity
              ~scheme:(Agg_core.Server_cache.Aggregating Agg_core.Config.default)
          in
          {
            workload = profile.Agg_workload.Profile.name;
            filter_capacity;
            lru_hit_rate = lru;
            g5_hit_rate = g5;
            improvement_percent = (if lru = 0.0 then Float.infinity else 100.0 *. (g5 -. lru) /. lru);
          })
        filter_capacities)
    [ Agg_workload.Profile.workstation; Agg_workload.Profile.users; Agg_workload.Profile.server ]

let client_table rows =
  let open Agg_util in
  let table =
    Table.create ~title:"Headline: client demand-fetch reduction (g5 vs LRU)"
      ~columns:[ "workload"; "capacity"; "lru fetches"; "g5 fetches"; "reduction %" ]
  in
  List.iter
    (fun (r : client_row) ->
      Table.add_row table
        [
          r.workload;
          string_of_int r.capacity;
          string_of_int r.lru_fetches;
          string_of_int r.g5_fetches;
          Printf.sprintf "%.1f" r.reduction_percent;
        ])
    rows;
  table

let server_table rows =
  let open Agg_util in
  let table =
    Table.create ~title:"Headline: server hit-rate improvement (g5 vs LRU)"
      ~columns:[ "workload"; "filter"; "lru hit %"; "g5 hit %"; "improvement %" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.workload;
          string_of_int r.filter_capacity;
          Printf.sprintf "%.1f" r.lru_hit_rate;
          Printf.sprintf "%.1f" r.g5_hit_rate;
          (if Float.is_integer r.improvement_percent || Float.is_finite r.improvement_percent then
             Printf.sprintf "%.0f" r.improvement_percent
           else "inf");
        ])
    rows;
  table
