(** Fig. 5 — metadata maintenance: the probability that a per-file
    successor list fails to contain the successor about to be observed,
    as a function of list capacity, for LRU and LFU list replacement and
    the all-knowing oracle. Lists are consulted *before* they learn the
    event; the average is over every access that has a predecessor, which
    weights each file by its access frequency exactly as Eq. 2 does. *)

val default_capacities : int list
(** 1–10. *)

val panel :
  ?settings:Experiment.settings ->
  ?capacities:int list ->
  Agg_workload.Profile.t ->
  Experiment.panel

val figure : ?settings:Experiment.settings -> unit -> Experiment.figure
(** The paper's panels: [workstation] (5a) and [server] (5b). *)

val miss_probability :
  policy:Agg_successor.Successor_list.policy ->
  capacity:int ->
  Agg_trace.File_id.t array ->
  float
(** The probability plotted for one (policy, capacity) point. *)

val oracle_miss_probability : Agg_trace.File_id.t array -> float
