(** Fig. 8 — successor entropy of LRU-filtered miss streams: one series
    per intervening cache capacity. A tiny filter scrambles succession; a
    large one distils the stream down to highly ordered cold-start runs,
    *increasing* predictability — the effect that keeps the aggregating
    server cache useful when plain LRU fails. *)

val default_filter_capacities : int list
(** 1, 10, 50, 100, 500, 1000 — the paper's filter sizes. *)

val panel :
  ?settings:Experiment.settings ->
  ?filter_capacities:int list ->
  ?lengths:int list ->
  Agg_workload.Profile.t ->
  Experiment.panel

val figure : ?settings:Experiment.settings -> unit -> Experiment.figure
(** The paper's panels: [write] (8a) and [users] (8b). *)
