let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&'; '='; '~' |]

let bounds panel =
  let points = List.concat_map (fun s -> s.Experiment.points) panel.Experiment.series in
  match points with
  | [] -> None
  | (x0, y0) :: rest ->
      Some
        (List.fold_left
           (fun (xmin, xmax, ymin, ymax) (x, y) ->
             (Float.min xmin x, Float.max xmax x, Float.min ymin y, Float.max ymax y))
           (x0, x0, y0, y0) rest)

let render ?(width = 72) ?(height = 20) (panel : Experiment.panel) =
  match bounds panel with
  | None -> Printf.sprintf "(no data for %s)\n" panel.Experiment.name
  | Some (xmin, xmax, ymin, ymax) ->
      let xspan = if xmax -. xmin = 0.0 then 1.0 else xmax -. xmin in
      let yspan = if ymax -. ymin = 0.0 then 1.0 else ymax -. ymin in
      let grid = Array.make_matrix height width ' ' in
      let col x =
        min (width - 1) (int_of_float (Float.round ((x -. xmin) /. xspan *. float_of_int (width - 1))))
      in
      let line y =
        let r = (y -. ymin) /. yspan *. float_of_int (height - 1) in
        height - 1 - min (height - 1) (int_of_float (Float.round r))
      in
      List.iteri
        (fun i series ->
          let glyph = glyphs.(i mod Array.length glyphs) in
          List.iter (fun (x, y) -> grid.(line y).(col x) <- glyph) series.Experiment.points)
        panel.Experiment.series;
      let buf = Buffer.create ((width + 12) * (height + 6)) in
      Buffer.add_string buf (Printf.sprintf "%s — %s vs %s\n" panel.Experiment.name panel.Experiment.y_label panel.Experiment.x_label);
      Array.iteri
        (fun row cells ->
          let label =
            if row = 0 then Printf.sprintf "%8.4g" ymax
            else if row = height - 1 then Printf.sprintf "%8.4g" ymin
            else String.make 8 ' '
          in
          Buffer.add_string buf label;
          Buffer.add_string buf " |";
          Array.iter (Buffer.add_char buf) cells;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf (String.make 9 ' ');
      Buffer.add_char buf '+';
      Buffer.add_string buf (String.make width '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "%s%-8.4g%s%8.4g\n" (String.make 10 ' ') xmin
           (String.make (max 1 (width - 16)) ' ')
           xmax);
      List.iteri
        (fun i series ->
          Buffer.add_string buf
            (Printf.sprintf "  %c = %s\n" glyphs.(i mod Array.length glyphs) series.Experiment.label))
        panel.Experiment.series;
      Buffer.contents buf

let print ?width ?height panel = print_string (render ?width ?height panel)
