let default_filter_capacities = [ 1; 10; 50; 100; 500; 1000 ]

let panel ?(settings = Experiment.default_settings)
    ?(filter_capacities = default_filter_capacities) ?(lengths = Fig7.default_lengths) profile =
  let trace = Agg_workload.Generator.generate ~seed:settings.seed ~events:settings.events profile in
  let sweeps = Agg_entropy.Entropy.filtered_sweep ~filter_capacities ~lengths trace in
  let series =
    List.map
      (fun (capacity, sweep) ->
        {
          Experiment.label = string_of_int capacity;
          points = List.map (fun (l, h) -> (float_of_int l, h)) sweep;
        })
      sweeps
  in
  {
    Experiment.name = profile.Agg_workload.Profile.name;
    x_label = "successor sequence length";
    y_label = "successor entropy (bits)";
    series;
  }

let figure ?(settings = Experiment.default_settings) () =
  {
    Experiment.id = "fig8";
    title = "Successor entropy of LRU-filtered miss streams, by filter capacity";
    panels =
      [ panel ~settings Agg_workload.Profile.write; panel ~settings Agg_workload.Profile.users ];
  }
