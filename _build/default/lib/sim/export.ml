let escape cell =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell
  in
  if needs_quoting then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let row cells = String.concat "," (List.map escape cells) ^ "\n"

let panel_csv (panel : Experiment.panel) =
  let xs =
    List.sort_uniq compare
      (List.concat_map (fun s -> List.map fst s.Experiment.points) panel.Experiment.series)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (row (panel.Experiment.x_label :: List.map (fun s -> s.Experiment.label) panel.Experiment.series));
  List.iter
    (fun x ->
      let cells =
        Printf.sprintf "%g" x
        :: List.map
             (fun s ->
               match Experiment.series_value s x with
               | Some y -> Printf.sprintf "%g" y
               | None -> "")
             panel.Experiment.series
      in
      Buffer.add_string buf (row cells))
    xs;
  Buffer.contents buf

let slug name =
  String.map (fun c -> if ('a' <= c && c <= 'z') || ('0' <= c && c <= '9') then c else '-')
    (String.lowercase_ascii name)

let figure_csv (fig : Experiment.figure) =
  List.map
    (fun panel ->
      (Printf.sprintf "%s-%s.csv" (slug fig.Experiment.id) (slug panel.Experiment.name),
       panel_csv panel))
    fig.Experiment.panels

let write_figure ~dir fig =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.map
    (fun (filename, csv) ->
      let path = Filename.concat dir filename in
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc csv);
      path)
    (figure_csv fig)
