let default_capacities = [ 100; 200; 300; 400; 500; 600; 700; 800 ]
let default_group_sizes = [ 1; 2; 3; 5; 7; 10 ]

let label_of_group g = if g = 1 then "lru" else Printf.sprintf "g%d" g

let panel ?(settings = Experiment.default_settings) ?(capacities = default_capacities)
    ?(group_sizes = default_group_sizes) profile =
  let trace = Agg_workload.Generator.generate ~seed:settings.seed ~events:settings.events profile in
  let series =
    List.map
      (fun g ->
        let config = Agg_core.Config.with_group_size g Agg_core.Config.default in
        let points =
          List.map
            (fun capacity ->
              let cache = Agg_core.Client_cache.create ~config ~capacity () in
              let m = Agg_core.Client_cache.run cache trace in
              (float_of_int capacity, float_of_int m.Agg_core.Metrics.demand_fetches))
            capacities
        in
        { Experiment.label = label_of_group g; points })
      group_sizes
  in
  {
    Experiment.name = profile.Agg_workload.Profile.name;
    x_label = "cache capacity (files)";
    y_label = "demand fetches";
    series;
  }

let figure ?(settings = Experiment.default_settings) () =
  {
    Experiment.id = "fig3";
    title = "Client demand fetches vs cache capacity, by group size";
    panels =
      [
        panel ~settings Agg_workload.Profile.server;
        panel ~settings Agg_workload.Profile.write;
      ];
  }
