(** Fig. 7 — successor entropy as a function of successor-sequence length,
    one series per workload: single-file successors are the most
    predictable, and the [server] workload is the most predictable of the
    four. *)

val default_lengths : int list
(** 1–20. *)

val figure : ?settings:Experiment.settings -> ?lengths:int list -> unit -> Experiment.figure
(** A single panel with all four workload series. *)
