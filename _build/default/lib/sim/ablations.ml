let default_capacities = [ 100; 200; 300; 400; 600; 800 ]

let generate settings profile =
  Agg_workload.Generator.generate ~seed:settings.Experiment.seed ~events:settings.Experiment.events
    profile

let client_fetches ~trace ~config ~capacity =
  let cache = Agg_core.Client_cache.create ~config ~capacity () in
  float_of_int (Agg_core.Client_cache.run cache trace).Agg_core.Metrics.demand_fetches

let sweep_series ~trace ~capacities configs =
  List.map
    (fun (label, config) ->
      {
        Experiment.label;
        points =
          List.map
            (fun capacity -> (float_of_int capacity, client_fetches ~trace ~config ~capacity))
            capacities;
      })
    configs

let client_panel ~name ~trace ~capacities configs =
  {
    Experiment.name;
    x_label = "cache capacity (files)";
    y_label = "demand fetches";
    series = sweep_series ~trace ~capacities configs;
  }

let member_position ?(settings = Experiment.default_settings) ?(capacities = default_capacities)
    profile =
  let trace = generate settings profile in
  let base = Agg_core.Config.default in
  client_panel
    ~name:(profile.Agg_workload.Profile.name ^ " (A1 member position)")
    ~trace ~capacities
    [
      ("g5-tail", { base with member_position = Agg_core.Config.Tail });
      ("g5-head", { base with member_position = Agg_core.Config.Head });
      ("lru", Agg_core.Config.with_group_size 1 base);
    ]

let metadata_policy ?(settings = Experiment.default_settings) ?(capacities = default_capacities)
    profile =
  let trace = generate settings profile in
  let base = Agg_core.Config.default in
  client_panel
    ~name:(profile.Agg_workload.Profile.name ^ " (A2 metadata policy)")
    ~trace ~capacities
    [
      ("g5-recency", { base with metadata_policy = Agg_successor.Successor_list.Recency });
      ("g5-frequency", { base with metadata_policy = Agg_successor.Successor_list.Frequency });
    ]

let successor_capacity ?(settings = Experiment.default_settings)
    ?(capacities = [ 1; 2; 4; 8; 16 ]) profile =
  let trace = generate settings profile in
  let cache_capacity = 300 in
  let points =
    List.map
      (fun successor_capacity ->
        let config = { Agg_core.Config.default with successor_capacity } in
        (float_of_int successor_capacity, client_fetches ~trace ~config ~capacity:cache_capacity))
      capacities
  in
  {
    Experiment.name = profile.Agg_workload.Profile.name ^ " (A3 successor capacity)";
    x_label = "successor-list capacity";
    y_label = "demand fetches (cache = 300)";
    series = [ { Experiment.label = "g5"; points } ];
  }

let baselines ?(settings = Experiment.default_settings) ?(capacities = default_capacities) profile =
  let trace = generate settings profile in
  let agg =
    sweep_series ~trace ~capacities
      [
        ("lru", Agg_core.Config.with_group_size 1 Agg_core.Config.default);
        ("agg-g5", Agg_core.Config.default);
      ]
  in
  let prob_graph_series ~label ~threshold =
    {
      Experiment.label;
      points =
        List.map
          (fun capacity ->
            let pg = Agg_baselines.Prob_graph.create ~threshold ~capacity () in
            let m = Agg_baselines.Prob_graph.run pg trace in
            (float_of_int capacity, float_of_int m.Agg_core.Metrics.demand_fetches))
          capacities;
    }
  in
  {
    Experiment.name = profile.Agg_workload.Profile.name ^ " (A4 baselines)";
    x_label = "cache capacity (files)";
    y_label = "demand fetches";
    series =
      agg
      @ [
          prob_graph_series ~label:"probgraph-0.1" ~threshold:0.1;
          prob_graph_series ~label:"probgraph-0.25" ~threshold:0.25;
        ];
  }

let cooperative ?(settings = Experiment.default_settings)
    ?(filter_capacities = Fig4.default_filter_capacities) profile =
  let trace = generate settings profile in
  let hit_rate ~cooperative filter_capacity =
    let sim =
      Agg_core.Server_cache.create ~cooperative ~filter_kind:Agg_cache.Cache.Lru ~filter_capacity
        ~server_capacity:Fig4.default_server_capacity
        ~scheme:(Agg_core.Server_cache.Aggregating Agg_core.Config.default) ()
    in
    100.0 *. Agg_core.Metrics.server_hit_rate (Agg_core.Server_cache.run sim trace)
  in
  let series_of label cooperative =
    {
      Experiment.label;
      points =
        List.map (fun c -> (float_of_int c, hit_rate ~cooperative c)) filter_capacities;
    }
  in
  {
    Experiment.name = profile.Agg_workload.Profile.name ^ " (A5 cooperation)";
    x_label = "filter capacity (files)";
    y_label = "server hit rate (%)";
    series = [ series_of "g5-miss-stream" false; series_of "g5-cooperative" true ];
  }

let second_level_policies ?(settings = Experiment.default_settings)
    ?(filter_capacities = Fig4.default_filter_capacities) profile =
  let trace = generate settings profile in
  let hit_rate ~scheme filter_capacity =
    let sim =
      Agg_core.Server_cache.create ~filter_kind:Agg_cache.Cache.Lru ~filter_capacity
        ~server_capacity:Fig4.default_server_capacity ~scheme ()
    in
    100.0 *. Agg_core.Metrics.server_hit_rate (Agg_core.Server_cache.run sim trace)
  in
  let series_of label scheme =
    {
      Experiment.label;
      points = List.map (fun c -> (float_of_int c, hit_rate ~scheme c)) filter_capacities;
    }
  in
  {
    Experiment.name = profile.Agg_workload.Profile.name ^ " (A6 second-level policies)";
    x_label = "filter capacity (files)";
    y_label = "server hit rate (%)";
    series =
      [
        series_of "agg-g5" (Agg_core.Server_cache.Aggregating Agg_core.Config.default);
        series_of "lru" (Agg_core.Server_cache.Plain Agg_cache.Cache.Lru);
        series_of "lfu" (Agg_core.Server_cache.Plain Agg_cache.Cache.Lfu);
        series_of "mq" (Agg_core.Server_cache.Plain Agg_cache.Cache.Mq);
        series_of "slru" (Agg_core.Server_cache.Plain Agg_cache.Cache.Slru);
        series_of "2q" (Agg_core.Server_cache.Plain Agg_cache.Cache.Twoq);
        series_of "arc" (Agg_core.Server_cache.Plain Agg_cache.Cache.Arc);
      ];
  }

let placement ?(settings = Experiment.default_settings) profile =
  let open Agg_util in
  let trace = generate settings profile in
  let half = Agg_trace.Trace.length trace / 2 in
  let train = Agg_trace.Trace.sub trace ~pos:0 ~len:half in
  let replay = Agg_trace.Trace.files (Agg_trace.Trace.sub trace ~pos:half ~len:half) in
  let table =
    Table.create
      ~title:(Printf.sprintf "A8 — placement on a linear device (%s)" profile.Agg_workload.Profile.name)
      ~columns:[ "layout"; "slots used"; "mean seek"; "max seek"; "cold allocations" ]
  in
  List.iter
    (fun (name, build) ->
      let disk = build train in
      let stats = Agg_placement.Disk.replay disk replay in
      Table.add_row table
        [
          name;
          string_of_int (Agg_placement.Disk.occupied_slots disk);
          Printf.sprintf "%.1f" stats.Agg_placement.Disk.mean_seek;
          string_of_int stats.Agg_placement.Disk.max_seek;
          string_of_int stats.Agg_placement.Disk.allocated_on_the_fly;
        ])
    Agg_placement.Layout.strategies;
  table

let sequence_model ?(settings = Experiment.default_settings) ?(lengths = [ 1; 2; 4; 8 ]) () =
  let open Agg_util in
  let table =
    Table.create ~title:"A7 — successor-sequence tracking (Fig. 6 model)"
      ~columns:
        ("workload"
        :: List.concat_map
             (fun l -> [ Printf.sprintf "L=%d full %%" l; Printf.sprintf "L=%d first %%" l ])
             lengths)
  in
  List.iter
    (fun profile ->
      let files =
        Agg_workload.Generator.generate_files ~seed:settings.Experiment.seed
          ~events:settings.Experiment.events profile
      in
      let cells =
        List.concat_map
          (fun length ->
            let a = Agg_successor.Sequence_tracker.measure ~length files in
            let pct v = Printf.sprintf "%.1f" (100.0 *. Stats.ratio v a.Agg_successor.Sequence_tracker.opportunities) in
            [ pct a.Agg_successor.Sequence_tracker.full_matches;
              pct a.Agg_successor.Sequence_tracker.first_matches ])
          lengths
      in
      Table.add_row table (profile.Agg_workload.Profile.name :: cells))
    Agg_workload.Profile.all;
  table

(* replay a file sequence through an LRU cache that, on each miss,
   fetches the members named by [group_for] as a cold block *)
let static_group_fetches ~capacity ~group_for files =
  let cache = Agg_cache.Cache.create Agg_cache.Cache.Lru ~capacity in
  Array.fold_left
    (fun fetches file ->
      if Agg_cache.Cache.access cache file then fetches
      else begin
        ignore (Agg_cache.Cache.insert_cold_group cache (group_for file));
        fetches + 1
      end)
    0 files

let overlap_vs_partition ?(settings = Experiment.default_settings) ?(group_size = 5) profile =
  let open Agg_util in
  let trace = generate settings profile in
  let half = Agg_trace.Trace.length trace / 2 in
  let train = Agg_trace.Trace.sub trace ~pos:0 ~len:half in
  let replay_trace = Agg_trace.Trace.sub trace ~pos:half ~len:half in
  let replay = Agg_trace.Trace.files replay_trace in
  let graph = Agg_successor.Graph.of_trace train in
  let capacity = 300 in
  (* overlapping: each file anchors its own group *)
  let overlap_fetches =
    static_group_fetches ~capacity replay ~group_for:(fun file ->
        match (Agg_successor.Grouping.group_of graph ~size:group_size file).Agg_successor.Grouping.members with
        | _anchor :: members -> members
        | [] -> [])
  in
  (* partition: a file belongs to exactly one group *)
  let part = Agg_successor.Grouping.membership (Agg_successor.Grouping.partition graph ~size:group_size) in
  let partition_fetches =
    static_group_fetches ~capacity replay ~group_for:(fun file ->
        match Hashtbl.find_opt part file with
        | Some group -> List.filter (fun m -> m <> file) group.Agg_successor.Grouping.members
        | None -> [])
  in
  let lru_fetches = static_group_fetches ~capacity replay ~group_for:(fun _ -> []) in
  let dynamic_fetches =
    let config = Agg_core.Config.with_group_size group_size Agg_core.Config.default in
    let cache = Agg_core.Client_cache.create ~config ~capacity () in
    (Agg_core.Client_cache.run cache replay_trace).Agg_core.Metrics.demand_fetches
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "A10 — overlap vs partition (%s, g=%d, cache=%d)"
           profile.Agg_workload.Profile.name group_size capacity)
      ~columns:[ "scheme"; "demand fetches"; "vs LRU %" ]
  in
  let row name fetches =
    Table.add_row table
      [
        name;
        string_of_int fetches;
        Printf.sprintf "%.1f" (100.0 *. float_of_int (lru_fetches - fetches) /. float_of_int lru_fetches);
      ]
  in
  row "lru (no groups)" lru_fetches;
  row "static partition (disjoint)" partition_fetches;
  row "static overlapping groups" overlap_fetches;
  row "dynamic aggregating cache" dynamic_fetches;
  table

let server_group_size ?(settings = Experiment.default_settings)
    ?(group_sizes = [ 2; 3; 5; 7; 10 ]) profile =
  let trace = generate settings profile in
  let hit_rate ~scheme filter_capacity =
    let sim =
      Agg_core.Server_cache.create ~filter_kind:Agg_cache.Cache.Lru ~filter_capacity
        ~server_capacity:Fig4.default_server_capacity ~scheme ()
    in
    100.0 *. Agg_core.Metrics.server_hit_rate (Agg_core.Server_cache.run sim trace)
  in
  let filter_capacities = [ 100; 200; 300; 400; 500 ] in
  let series_for g =
    let scheme =
      Agg_core.Server_cache.Aggregating (Agg_core.Config.with_group_size g Agg_core.Config.default)
    in
    {
      Experiment.label = Printf.sprintf "g%d" g;
      points = List.map (fun c -> (float_of_int c, hit_rate ~scheme c)) filter_capacities;
    }
  in
  let lru =
    {
      Experiment.label = "lru";
      points =
        List.map
          (fun c ->
            (float_of_int c, hit_rate ~scheme:(Agg_core.Server_cache.Plain Agg_cache.Cache.Lru) c))
          filter_capacities;
    }
  in
  {
    Experiment.name = profile.Agg_workload.Profile.name ^ " (A11 server group size)";
    x_label = "filter capacity (files)";
    y_label = "server hit rate (%)";
    series = lru :: List.map series_for group_sizes;
  }

let adaptive_group ?(settings = Experiment.default_settings) () =
  let open Agg_util in
  let table =
    Table.create ~title:"A9 — adaptive group sizing (fetches / speculation issued)"
      ~columns:[ "workload"; "lru"; "g5"; "g10"; "adaptive"; "final g" ]
  in
  List.iter
    (fun profile ->
      let trace = generate settings profile in
      let fixed g =
        let config = Agg_core.Config.with_group_size g Agg_core.Config.default in
        let cache = Agg_core.Client_cache.create ~config ~capacity:300 () in
        Agg_core.Client_cache.run cache trace
      in
      let show (m : Agg_core.Metrics.client) =
        Printf.sprintf "%d / %d" m.Agg_core.Metrics.demand_fetches
          m.Agg_core.Metrics.prefetch.Agg_core.Metrics.issued
      in
      let adaptive = Agg_core.Adaptive_client.create ~capacity:300 () in
      let adaptive_metrics = Agg_core.Adaptive_client.run adaptive trace in
      Table.add_row table
        [
          profile.Agg_workload.Profile.name;
          show (fixed 1);
          show (fixed 5);
          show (fixed 10);
          show adaptive_metrics;
          string_of_int (Agg_core.Adaptive_client.current_group_size adaptive);
        ])
    Agg_workload.Profile.all;
  table

let predictor_accuracy ?(settings = Experiment.default_settings) () =
  let open Agg_util in
  let table =
    Table.create ~title:"Next-access predictor accuracy (recency vs frequency vs context)"
      ~columns:[ "workload"; "last-successor %"; "markov (frequency) %"; "ppm order-2 %" ]
  in
  List.iter
    (fun profile ->
      let files =
        Agg_workload.Generator.generate_files ~seed:settings.Experiment.seed
          ~events:settings.Experiment.events profile
      in
      let pct a = Printf.sprintf "%.1f" (100.0 *. Agg_baselines.Last_successor.accuracy_rate a) in
      Table.add_row table
        [
          profile.Agg_workload.Profile.name;
          pct (Agg_baselines.Last_successor.measure files);
          pct (Agg_baselines.Markov_predictor.measure files);
          pct (Agg_baselines.Ppm.measure files);
        ])
    Agg_workload.Profile.all;
  table
