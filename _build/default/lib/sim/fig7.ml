let default_lengths = List.init 20 (fun i -> i + 1)

let figure ?(settings = Experiment.default_settings) ?(lengths = default_lengths) () =
  let series =
    List.map
      (fun profile ->
        let files =
          Agg_workload.Generator.generate_files ~seed:settings.seed ~events:settings.events profile
        in
        let points =
          List.map (fun (l, h) -> (float_of_int l, h)) (Agg_entropy.Entropy.sweep ~lengths files)
        in
        { Experiment.label = profile.Agg_workload.Profile.name; points })
      [
        Agg_workload.Profile.users;
        Agg_workload.Profile.write;
        Agg_workload.Profile.server;
        Agg_workload.Profile.workstation;
      ]
  in
  {
    Experiment.id = "fig7";
    title = "Successor entropy vs successor sequence length";
    panels =
      [
        {
          Experiment.name = "all workloads";
          x_label = "successor sequence length";
          y_label = "successor entropy (bits)";
          series;
        };
      ];
  }
