(** Automated paper-vs-measured comparison: each check encodes one of the
    paper's qualitative claims and evaluates it against freshly simulated
    results. The bench harness prints this table; EXPERIMENTS.md records
    a run of it. *)

type check = {
  id : string;  (** e.g. "fig3.server.g5" *)
  claim : string;  (** the paper's statement being tested *)
  measured : string;  (** what this run produced *)
  pass : bool;
}

val run_all : ?settings:Experiment.settings -> unit -> check list
(** Executes every figure experiment once and evaluates all checks. *)

val table : check list -> Agg_util.Table.t
val all_pass : check list -> bool
