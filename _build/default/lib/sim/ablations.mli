(** Ablations of the design choices DESIGN.md calls out (beyond the
    paper's own figures). Each returns a panel in the same shape as the
    figure experiments. *)

val member_position :
  ?settings:Experiment.settings -> ?capacities:int list -> Agg_workload.Profile.t -> Experiment.panel
(** A1 — §3's claim that exact placement of group members matters little
    when the cache is several times the group size: demand fetches with
    members inserted at the LRU tail vs at the MRU head, g = 5. *)

val metadata_policy :
  ?settings:Experiment.settings -> ?capacities:int list -> Agg_workload.Profile.t -> Experiment.panel
(** A2 — end-to-end effect of managing successor lists by recency vs
    frequency (the Fig. 5 comparison carried into actual cache
    performance). *)

val successor_capacity :
  ?settings:Experiment.settings -> ?capacities:int list -> Agg_workload.Profile.t -> Experiment.panel
(** A3 — demand fetches as a function of the per-file metadata budget
    (successor-list capacity), g = 5, cache capacity 300. *)

val baselines :
  ?settings:Experiment.settings -> ?capacities:int list -> Agg_workload.Profile.t -> Experiment.panel
(** A4 — aggregating cache vs the related-work prefetchers: plain LRU,
    g5 aggregation, and Griffioen–Appleton probability-graph prefetching
    at two thresholds. Metric: demand fetches. *)

val cooperative :
  ?settings:Experiment.settings -> ?filter_capacities:int list -> Agg_workload.Profile.t -> Experiment.panel
(** A5 — server-side aggregation with and without client cooperation
    (piggy-backed full statistics vs miss-stream-only metadata, §3/§4.3). *)

val second_level_policies :
  ?settings:Experiment.settings -> ?filter_capacities:int list -> Agg_workload.Profile.t -> Experiment.panel
(** A6 — the aggregating server cache against the stronger second-level
    replacement policies from the literature: MQ (Zhou et al. 2001, the
    related-work answer to intervening caches), Segmented LRU, and 2Q,
    plus the paper's LRU/LFU baselines. Better replacement alone cannot
    recover the locality the filter absorbed; grouping can. *)

val placement : ?settings:Experiment.settings -> Agg_workload.Profile.t -> Agg_util.Table.t
(** A8 — grouping for data placement (§2.1 / future work): lay files out
    on a linear device using each {!Agg_placement.Layout} strategy
    trained on the first half of the trace, then replay the second half
    and compare mean head travel. Group layouts exploit succession runs;
    organ-pipe is the independence-assumption optimum; replication of
    shared files trades space for locality. *)

val sequence_model : ?settings:Experiment.settings -> ?lengths:int list -> unit -> Agg_util.Table.t
(** A7 — the Fig. 6 model made executable: track successor *sequences* of
    length 1–8 and measure, per workload, how often the predicted symbol
    matches in full and how often at least the immediate successor is
    right. Single-file successors dominate both columns — the decision
    §4.5 justifies via entropy, confirmed at the predictor level. *)

val overlap_vs_partition :
  ?settings:Experiment.settings -> ?group_size:int -> Agg_workload.Profile.t -> Agg_util.Table.t
(** A10 — §2.1's central structural claim: overlapping groups versus a
    disjoint partition. Groups are built from the first half of the
    trace; the second half replays through a client cache that fetches a
    file's *static* group on each miss — anchored (overlapping) groups,
    the unique partition group, or the live chained groups of the
    aggregating cache, against plain LRU. A shared utility file dragged
    into a single partition group mispredicts for every other working
    set that reads it. *)

val server_group_size :
  ?settings:Experiment.settings -> ?group_sizes:int list -> Agg_workload.Profile.t -> Experiment.panel
(** A11 — the Fig. 4 experiment swept over group sizes (the paper fixes
    g = 5 server-side): server hit rate vs filter capacity, one series per
    group size. Shows where the server-side saturation point sits. *)

val adaptive_group : ?settings:Experiment.settings -> unit -> Agg_util.Table.t
(** A9 — adaptive group sizing (future work, "groups of arbitrary size"):
    per workload, demand fetches and speculative fetches issued for fixed
    g ∈ {1, 5, 10} versus the feedback controller of
    {!Agg_core.Adaptive_client}. The controller should approach the best
    fixed size's fetch count on predictable workloads while issuing far
    less speculation on noisy ones. *)

val predictor_accuracy : ?settings:Experiment.settings -> unit -> Agg_util.Table.t
(** Last-successor vs first-order-Markov next-access accuracy on all four
    workloads — the §4.4 recency/frequency argument at the predictor
    level. *)
