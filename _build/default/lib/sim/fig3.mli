(** Fig. 3 — client-side aggregating cache: demand fetches as a function
    of cache capacity, one series per group size (g = 1 is plain LRU). *)

val default_capacities : int list
(** 100–800 step 100, as plotted in the paper. *)

val default_group_sizes : int list
(** 1, 2, 3, 5, 7, 10. *)

val panel :
  ?settings:Experiment.settings ->
  ?capacities:int list ->
  ?group_sizes:int list ->
  Agg_workload.Profile.t ->
  Experiment.panel
(** Demand-fetch counts for one workload. The same generated trace is
    replayed through every (capacity, group size) configuration. *)

val figure : ?settings:Experiment.settings -> unit -> Experiment.figure
(** Both paper panels: [server] (3a) and [write] (3b). *)
