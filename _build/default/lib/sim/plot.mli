(** Terminal line plots of experiment panels, so figure *shapes* can be
    eyeballed straight from the bench output without leaving the shell.
    Each series is drawn with its own glyph on a character grid; axes are
    scaled to the data. *)

val render : ?width:int -> ?height:int -> Experiment.panel -> string
(** [render panel] is a plot roughly [width] x [height] characters
    (default 72 x 20) with a legend mapping glyphs to series labels. An
    empty panel renders a placeholder message. *)

val print : ?width:int -> ?height:int -> Experiment.panel -> unit
