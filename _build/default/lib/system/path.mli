(** End-to-end simulation of the full distributed path of the paper's
    Fig. 2 — client cache, network, server cache, server store — with
    latency and load accounting. This turns the hit-rate results of the
    figure experiments into the quantity the paper's introduction
    actually promises: reduced access latency, at a measured cost in
    network and disk load.

    Three deployments are modelled:
    - [`Baseline]: plain demand caches at both levels;
    - [`Aggregating_client]: the client fetches groups (the server keeps
      the relationship metadata, §3), plain server cache;
    - [`Aggregating_both]: group retrieval at the client *and* grouped
      staging from disk into the server cache. *)

type deployment = [ `Baseline | `Aggregating_client | `Aggregating_both ]

val deployment_name : deployment -> string

type config = {
  cost : Cost_model.t;
  client_capacity : int;
  server_capacity : int;
  deployment : deployment;
  group_size : int;  (** used by the aggregating deployments *)
}

val default_config : config
(** LAN costs, 300-file client, 1000-file server, [`Baseline], g = 5. *)

type result = {
  accesses : int;
  client_hits : int;
  server_hits : int;  (** of requests reaching the server *)
  disk_reads : int;  (** demanded + speculative reads at the store *)
  files_transferred : int;  (** network payload, in files *)
  round_trips : int;
  mean_latency : float;  (** demand latency per access, ms *)
  p95_latency : float;
  p99_latency : float;
}

val run : config -> Agg_trace.Trace.t -> result
(** Replays the trace through the configured deployment. *)

val pp_result : Format.formatter -> result -> unit
