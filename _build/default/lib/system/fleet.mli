(** A fleet of client machines sharing one file server — the full
    distributed setting of the paper's Fig. 2, generalising the
    single-filter model of §4.3 to many caches, with optional Coda-style
    write invalidation (a write breaks other clients' cached copies).

    Events are routed to clients by their [client] id; [remap_clients]
    folds the trace's client ids onto a smaller fleet, which makes the
    related-work scale question (Wolman et al.: how do shared caches
    behave as the population grows?) directly measurable. *)

type client_scheme =
  | Client_plain of Agg_cache.Cache.kind
  | Client_aggregating of Agg_core.Config.t
      (** group retrieval on client misses, metadata held at the server *)

type server_scheme =
  | Server_plain of Agg_cache.Cache.kind
  | Server_aggregating of Agg_core.Config.t

type config = {
  clients : int;  (** fleet size; trace client ids are taken modulo this *)
  client_capacity : int;
  client_scheme : client_scheme;
  server_capacity : int;
  server_scheme : server_scheme;
  per_client_metadata : bool;
      (** keep a separate successor context per client at the server
          (§2.2's "identity of the driving client" model choice) *)
  write_invalidation : bool;
      (** writes invalidate the file in every *other* client cache *)
}

val default_config : config
(** 4 clients of 150 files (aggregating, g = 5), a 300-file aggregating
    server, per-client metadata, write invalidation on. *)

type result = {
  accesses : int;
  client_hits : int;
  server_requests : int;
  server_hits : int;
  store_fetches : int;
  invalidations : int;  (** cached copies broken by writes elsewhere *)
  per_client_hit_rate : (int * float) list;  (** client id, hit rate *)
}

val client_hit_rate : result -> float
val server_hit_rate : result -> float
val run : config -> Agg_trace.Trace.t -> result
val pp_result : Format.formatter -> result -> unit
