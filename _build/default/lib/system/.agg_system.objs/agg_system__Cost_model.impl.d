lib/system/cost_model.ml: Format
