lib/system/fleet.mli: Agg_cache Agg_core Agg_trace Format
