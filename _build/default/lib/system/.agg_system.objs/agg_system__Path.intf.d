lib/system/path.mli: Agg_trace Cost_model Format
