lib/system/fleet.ml: Agg_cache Agg_core Agg_successor Agg_trace Agg_util Array Format List
