lib/system/cost_model.mli: Format
