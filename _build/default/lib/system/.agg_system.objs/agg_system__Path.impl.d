lib/system/path.ml: Agg_cache Agg_core Agg_successor Agg_trace Agg_util Array Cost_model Float Format List
