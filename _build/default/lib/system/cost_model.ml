type t = {
  client_memory : float;
  network_rtt : float;
  transfer_per_file : float;
  server_memory : float;
  server_disk : float;
}

let lan =
  {
    client_memory = 0.05;
    network_rtt = 0.5;
    transfer_per_file = 0.2;
    server_memory = 0.05;
    server_disk = 8.0;
  }

let wan = { lan with network_rtt = 40.0 }

let demand_fetch_latency t ~served_from_disk =
  t.network_rtt +. (if served_from_disk then t.server_disk else t.server_memory)
  +. t.transfer_per_file

let pp ppf t =
  Format.fprintf ppf "client=%.2fms rtt=%.2fms xfer=%.2fms/file server=%.2fms disk=%.2fms"
    t.client_memory t.network_rtt t.transfer_per_file t.server_memory t.server_disk
