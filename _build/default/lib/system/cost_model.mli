(** Latency costs of the distributed path in Fig. 2 of the paper:
    client cache → network → server cache → server disk. All costs in
    milliseconds. The point of grouping is that the speculative members
    of a group ride along on a demand fetch's round trip, so a future
    client hit costs [client_memory] instead of a full remote fetch. *)

type t = {
  client_memory : float;  (** client cache hit *)
  network_rtt : float;  (** request/response round trip *)
  transfer_per_file : float;  (** per-file transmission time *)
  server_memory : float;  (** server cache copy *)
  server_disk : float;  (** disk read at the server *)
}

val lan : t
(** A 2000s-era departmental LAN: 0.05 ms client hit, 0.5 ms RTT,
    0.2 ms/file transfer, 0.05 ms server copy, 8 ms disk read. *)

val wan : t
(** A remote file server: 40 ms RTT, otherwise as {!lan}. *)

val demand_fetch_latency : t -> served_from_disk:bool -> float
(** Latency of the *demanded* file of a remote fetch: one RTT, the
    server-side service time, and one file transfer. Group members are
    pipelined behind it and do not add to this latency. *)

val pp : Format.formatter -> t -> unit
