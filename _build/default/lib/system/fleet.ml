module Cache = Agg_cache.Cache
module Tracker = Agg_successor.Tracker

type client_scheme =
  | Client_plain of Agg_cache.Cache.kind
  | Client_aggregating of Agg_core.Config.t

type server_scheme =
  | Server_plain of Agg_cache.Cache.kind
  | Server_aggregating of Agg_core.Config.t

type config = {
  clients : int;
  client_capacity : int;
  client_scheme : client_scheme;
  server_capacity : int;
  server_scheme : server_scheme;
  per_client_metadata : bool;
  write_invalidation : bool;
}

let default_config =
  {
    clients = 4;
    client_capacity = 150;
    client_scheme = Client_aggregating Agg_core.Config.default;
    server_capacity = 300;
    server_scheme = Server_aggregating Agg_core.Config.default;
    per_client_metadata = true;
    write_invalidation = true;
  }

type result = {
  accesses : int;
  client_hits : int;
  server_requests : int;
  server_hits : int;
  store_fetches : int;
  invalidations : int;
  per_client_hit_rate : (int * float) list;
}

type client_state = { cache : Cache.t; mutable accesses : int; mutable hits : int }

type state = {
  config : config;
  client_states : client_state array;
  server : Cache.t;
  tracker : Tracker.t; (* server-side metadata over the request stream *)
  mutable server_requests : int;
  mutable server_hits : int;
  mutable store_fetches : int;
  mutable invalidations : int;
}

let make_state config =
  if config.clients <= 0 then invalid_arg "Fleet.run: clients must be positive";
  let client_kind =
    match config.client_scheme with
    | Client_plain kind -> kind
    | Client_aggregating c ->
        Agg_core.Config.validate c;
        c.Agg_core.Config.cache_kind
  in
  let server_kind =
    match config.server_scheme with
    | Server_plain kind -> kind
    | Server_aggregating c ->
        Agg_core.Config.validate c;
        c.Agg_core.Config.cache_kind
  in
  let metadata_config =
    match (config.client_scheme, config.server_scheme) with
    | Client_aggregating c, _ | _, Server_aggregating c -> c
    | _ -> Agg_core.Config.default
  in
  {
    config;
    client_states =
      Array.init config.clients (fun _ ->
          { cache = Cache.create client_kind ~capacity:config.client_capacity; accesses = 0; hits = 0 });
    server = Cache.create server_kind ~capacity:config.server_capacity;
    tracker =
      Tracker.create
        ~capacity:metadata_config.Agg_core.Config.successor_capacity
        ~policy:metadata_config.Agg_core.Config.metadata_policy
        ~per_client:config.per_client_metadata ();
    server_requests = 0;
    server_hits = 0;
    store_fetches = 0;
    invalidations = 0;
  }

(* a write at one client breaks every other client's cached copy *)
let invalidate_others st ~writer file =
  Array.iteri
    (fun i cs ->
      if i <> writer && Cache.mem cs.cache file then begin
        Cache.remove cs.cache file;
        st.invalidations <- st.invalidations + 1
      end)
    st.client_states

let serve st ~client file =
  st.server_requests <- st.server_requests + 1;
  Tracker.observe st.tracker ~client file;
  let group =
    match st.config.client_scheme with
    | Client_aggregating c ->
        Agg_core.Group_builder.build st.tracker ~group_size:c.Agg_core.Config.group_size file
    | Client_plain _ -> [ file ]
  in
  if Cache.access st.server file then st.server_hits <- st.server_hits + 1
  else begin
    st.store_fetches <- st.store_fetches + 1;
    (* an aggregating server stages its own (possibly longer) group *)
    match st.config.server_scheme with
    | Server_aggregating c ->
        let staged =
          Agg_core.Group_builder.build st.tracker ~group_size:c.Agg_core.Config.group_size file
        in
        let members = match staged with _ :: rest -> rest | [] -> [] in
        List.iter
          (fun m -> if not (Cache.mem st.server m) then st.store_fetches <- st.store_fetches + 1)
          members;
        ignore (Cache.insert_cold_group st.server members)
    | Server_plain _ -> ()
  end;
  (* group members travel to the requesting client; absent ones are read
     from the store (or the server cache) on the way *)
  let members = match group with _ :: rest -> rest | [] -> [] in
  List.iter
    (fun m ->
      if not (Cache.mem st.server m) then begin
        st.store_fetches <- st.store_fetches + 1;
        Cache.insert_cold st.server m
      end)
    members;
  let client_cache = st.client_states.(client).cache in
  ignore (Cache.insert_cold_group client_cache members)

let access st (e : Agg_trace.Event.t) =
  let client = e.Agg_trace.Event.client mod st.config.clients in
  let cs = st.client_states.(client) in
  cs.accesses <- cs.accesses + 1;
  if Cache.access cs.cache e.Agg_trace.Event.file then cs.hits <- cs.hits + 1
  else serve st ~client e.Agg_trace.Event.file;
  if st.config.write_invalidation && Agg_trace.Event.is_write e then
    invalidate_others st ~writer:client e.Agg_trace.Event.file

let run config trace =
  let st = make_state config in
  Agg_trace.Trace.iter (access st) trace;
  let accesses = Array.fold_left (fun acc cs -> acc + cs.accesses) 0 st.client_states in
  let client_hits = Array.fold_left (fun acc cs -> acc + cs.hits) 0 st.client_states in
  {
    accesses;
    client_hits;
    server_requests = st.server_requests;
    server_hits = st.server_hits;
    store_fetches = st.store_fetches;
    invalidations = st.invalidations;
    per_client_hit_rate =
      Array.to_list
        (Array.mapi (fun i cs -> (i, Agg_util.Stats.ratio cs.hits cs.accesses)) st.client_states);
  }

let client_hit_rate (r : result) = Agg_util.Stats.ratio r.client_hits r.accesses
let server_hit_rate (r : result) = Agg_util.Stats.ratio r.server_hits r.server_requests

let pp_result ppf (r : result) =
  Format.fprintf ppf
    "accesses=%d client_hits=%d (%.1f%%) server: %d requests, %d hits (%.1f%%), %d store fetches, %d invalidations"
    r.accesses r.client_hits
    (100.0 *. client_hit_rate r)
    r.server_requests r.server_hits
    (100.0 *. server_hit_rate r)
    r.store_fetches r.invalidations
