module Cache = Agg_cache.Cache
module Tracker = Agg_successor.Tracker

type deployment = [ `Baseline | `Aggregating_client | `Aggregating_both ]

let deployment_name = function
  | `Baseline -> "baseline"
  | `Aggregating_client -> "agg-client"
  | `Aggregating_both -> "agg-both"

type config = {
  cost : Cost_model.t;
  client_capacity : int;
  server_capacity : int;
  deployment : deployment;
  group_size : int;
}

let default_config =
  {
    cost = Cost_model.lan;
    client_capacity = 300;
    server_capacity = 1000;
    deployment = `Baseline;
    group_size = 5;
  }

type result = {
  accesses : int;
  client_hits : int;
  server_hits : int;
  disk_reads : int;
  files_transferred : int;
  round_trips : int;
  mean_latency : float;
  p95_latency : float;
  p99_latency : float;
}

type state = {
  config : config;
  client : Cache.t;
  server : Cache.t;
  tracker : Tracker.t;
  latencies : float Agg_util.Vec.t;
  mutable client_hits : int;
  mutable server_hits : int;
  mutable disk_reads : int;
  mutable files_transferred : int;
  mutable round_trips : int;
}

let make_state config =
  {
    config;
    client = Cache.create Cache.Lru ~capacity:config.client_capacity;
    server = Cache.create Cache.Lru ~capacity:config.server_capacity;
    tracker = Tracker.create ();
    latencies = Agg_util.Vec.create ();
    client_hits = 0;
    server_hits = 0;
    disk_reads = 0;
    files_transferred = 0;
    round_trips = 0;
  }

(* Serve group members at the server: anything absent comes off the disk
   and is staged cold into the server cache. *)
let stage_members st members =
  List.iter (fun m -> if not (Cache.mem st.server m) then st.disk_reads <- st.disk_reads + 1) members;
  ignore (Cache.insert_cold_group st.server members)

let remote_fetch st file =
  st.round_trips <- st.round_trips + 1;
  let group =
    match st.config.deployment with
    | `Baseline -> [ file ]
    | `Aggregating_client | `Aggregating_both ->
        Agg_core.Group_builder.build st.tracker ~group_size:st.config.group_size file
  in
  (* the demanded file itself *)
  let served_from_memory = Cache.access st.server file in
  if served_from_memory then st.server_hits <- st.server_hits + 1
  else st.disk_reads <- st.disk_reads + 1;
  st.files_transferred <- st.files_transferred + List.length group;
  let members = match group with _ :: rest -> rest | [] -> [] in
  stage_members st members;
  ignore (Cache.insert_cold_group st.client members);
  (* [`Aggregating_both]: the server walks the chain deeper and stages the
     extension into its own cache only — cheap disk readahead that is not
     transferred to the client. *)
  (match st.config.deployment with
  | `Aggregating_both ->
      let extended =
        Agg_core.Group_builder.build st.tracker ~group_size:(2 * st.config.group_size) file
      in
      let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r in
      stage_members st (drop (List.length group) extended)
  | `Baseline | `Aggregating_client -> ());
  Cost_model.demand_fetch_latency st.config.cost ~served_from_disk:(not served_from_memory)

let access st file =
  (* §3: access statistics are piggy-backed to the server's metadata *)
  Tracker.observe st.tracker file;
  let latency =
    if Cache.access st.client file then begin
      st.client_hits <- st.client_hits + 1;
      st.config.cost.Cost_model.client_memory
    end
    else remote_fetch st file
  in
  Agg_util.Vec.push st.latencies latency

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (Float.of_int (n - 1) *. p) in
    sorted.(idx)

let run config trace =
  let st = make_state config in
  Agg_trace.Trace.iter (fun (e : Agg_trace.Event.t) -> access st e.Agg_trace.Event.file) trace;
  let latencies = Agg_util.Vec.to_array st.latencies in
  let total = Array.fold_left ( +. ) 0.0 latencies in
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  {
    accesses = Array.length latencies;
    client_hits = st.client_hits;
    server_hits = st.server_hits;
    disk_reads = st.disk_reads;
    files_transferred = st.files_transferred;
    round_trips = st.round_trips;
    mean_latency = (if Array.length latencies = 0 then 0.0 else total /. float_of_int (Array.length latencies));
    p95_latency = percentile sorted 0.95;
    p99_latency = percentile sorted 0.99;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "accesses=%d client_hits=%d server_hits=%d disk_reads=%d transferred=%d rtts=%d mean=%.3fms p95=%.3fms p99=%.3fms"
    r.accesses r.client_hits r.server_hits r.disk_reads r.files_transferred r.round_trips
    r.mean_latency r.p95_latency r.p99_latency
