(** The inter-file relationship graph of paper §2.1 (Fig. 1): a weighted
    directed graph in which the weight of edge (a, b) is the number of
    times [b] immediately followed [a], i.e. the strength of the
    succession relationship. *)

type t

val create : unit -> t
val of_trace : Agg_trace.Trace.t -> t

val add_observation : t -> src:Agg_trace.File_id.t -> dst:Agg_trace.File_id.t -> unit
(** Increment the weight of edge (src, dst). *)

val weight : t -> src:Agg_trace.File_id.t -> dst:Agg_trace.File_id.t -> int
(** [0] when the edge is absent. *)

val out_degree : t -> Agg_trace.File_id.t -> int
val node_count : t -> int
val edge_count : t -> int

val nodes : t -> Agg_trace.File_id.t list
(** All files appearing as a source or destination. *)

val successors_by_strength : t -> Agg_trace.File_id.t -> (Agg_trace.File_id.t * int) list
(** Out-edges of a node, strongest first (ties broken by smaller id, so
    the order is deterministic). *)

val access_count : t -> Agg_trace.File_id.t -> int
(** Number of times the file was observed (as an access, i.e. as a source
    occurrence plus the final access of the trace). *)

val iter_edges : t -> (src:Agg_trace.File_id.t -> dst:Agg_trace.File_id.t -> weight:int -> unit) -> unit
