type t = {
  capacity : int;
  policy : Successor_list.policy;
  per_client : bool;
  lists : (int, Successor_list.t) Hashtbl.t;
  contexts : (int, int) Hashtbl.t; (* client id (0 when global) -> previous file *)
}

let create ?(capacity = 8) ?(policy = Successor_list.Recency) ?(per_client = false) () =
  if capacity <= 0 then invalid_arg "Tracker.create: capacity must be positive";
  { capacity; policy; per_client; lists = Hashtbl.create 4096; contexts = Hashtbl.create 16 }

let capacity t = t.capacity
let policy t = t.policy

let list_for t file =
  match Hashtbl.find_opt t.lists file with
  | Some l -> l
  | None ->
      let l = Successor_list.create ~capacity:t.capacity ~policy:t.policy in
      Hashtbl.replace t.lists file l;
      l

let observe t ?(client = 0) file =
  let context_key = if t.per_client then client else 0 in
  (match Hashtbl.find_opt t.contexts context_key with
  | Some prev -> Successor_list.observe (list_for t prev) file
  | None -> ());
  Hashtbl.replace t.contexts context_key file

let observe_event t (e : Agg_trace.Event.t) = observe t ~client:e.client e.file
let observe_trace t trace = Agg_trace.Trace.iter (observe_event t) trace

let successors t file =
  match Hashtbl.find_opt t.lists file with Some l -> Successor_list.ranked l | None -> []

let top_successor t file =
  match Hashtbl.find_opt t.lists file with Some l -> Successor_list.top l | None -> None

let transitive_successors t file ~length =
  if length < 0 then invalid_arg "Tracker.transitive_successors: negative length";
  let seen = Hashtbl.create 16 in
  Hashtbl.replace seen file ();
  let rec follow current acc remaining =
    if remaining = 0 then List.rev acc
    else
      match top_successor t current with
      | Some next when not (Hashtbl.mem seen next) ->
          Hashtbl.replace seen next ();
          follow next (next :: acc) (remaining - 1)
      | Some _ | None -> List.rev acc
  in
  follow file [] length

let tracked_files t =
  Hashtbl.fold (fun _ l acc -> if Successor_list.size l > 0 then acc + 1 else acc) t.lists 0

let reset_context t = Hashtbl.reset t.contexts
