(** The Fig. 5 oracle: perfect, unbounded memory of every immediate
    successor ever observed per file. It misses only on successors never
    seen before — the best any online scheme can do regardless of
    state-space limits. *)

type t

val create : unit -> t

val observe : t -> file:Agg_trace.File_id.t -> successor:Agg_trace.File_id.t -> unit
(** Record that [successor] immediately followed [file]. *)

val mem : t -> file:Agg_trace.File_id.t -> successor:Agg_trace.File_id.t -> bool
(** Has [successor] ever been observed to follow [file]? *)

val successor_count : t -> Agg_trace.File_id.t -> int
(** Number of distinct successors recorded for [file]. *)
