lib/successor/tracker.ml: Agg_trace Hashtbl List Successor_list
