lib/successor/successor_list.ml: Agg_util Dlist Hashtbl List
