lib/successor/successor_list.mli: Agg_trace
