lib/successor/sequence_tracker.mli: Agg_trace
