lib/successor/graph.mli: Agg_trace
