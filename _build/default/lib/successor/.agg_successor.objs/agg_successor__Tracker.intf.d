lib/successor/tracker.mli: Agg_trace Successor_list
