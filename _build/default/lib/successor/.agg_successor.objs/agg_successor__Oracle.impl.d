lib/successor/oracle.ml: Hashtbl
