lib/successor/grouping.mli: Agg_trace Format Graph Hashtbl
