lib/successor/graph.ml: Agg_trace Hashtbl List Option
