lib/successor/grouping.ml: Agg_trace Agg_util Format Graph Hashtbl List Option
