lib/successor/oracle.mli: Agg_trace
