lib/successor/sequence_tracker.ml: Agg_util Array Dlist Hashtbl
