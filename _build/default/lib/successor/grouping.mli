(** Static group construction over a relationship graph (paper §2.1):
    a *minimal covering set* of groups of a target size, explicitly
    allowing overlap — a popular file (a shell, [make]) may belong to
    many groups, which disjoint partitioning would forbid. *)

type group = {
  anchor : Agg_trace.File_id.t;  (** the file whose successors seeded the group *)
  members : Agg_trace.File_id.t list;  (** anchor first, then strongest relations *)
}

val group_of : Graph.t -> size:int -> Agg_trace.File_id.t -> group
(** [group_of g ~size anchor] is the anchor plus up to [size - 1] related
    files: its strongest immediate successors, extended transitively
    (strongest successor of the last member, and so on) when the anchor
    has fewer than [size - 1] direct successors.
    @raise Invalid_argument when [size <= 0]. *)

val cover : Graph.t -> size:int -> group list
(** [cover g ~size] is a covering set of groups: every node of [g] appears
    in at least one group. Greedy, most-accessed anchors first; a node
    already covered by an earlier group does not get its own group (that
    is what keeps the cover small), but may still appear inside later
    groups — overlap is allowed by design. *)

val partition : Graph.t -> size:int -> group list
(** [partition g ~size] is a *disjoint* grouping — every node in exactly
    one group — built greedily like {!cover} but claiming each file for
    the first group that takes it. This is the traditional placement-style
    grouping that §2.1 argues against: a popular shared file lands in one
    working set's group and is torn away from all the others. Provided as
    the comparison point for that claim. *)

val membership : group list -> (Agg_trace.File_id.t, group) Hashtbl.t
(** File → the first group containing it (the only one, for a
    partition). *)

type cover_stats = {
  groups : int;
  covered_nodes : int;
  mean_group_size : float;
  overlapping_nodes : int;  (** nodes appearing in more than one group *)
  max_memberships : int;  (** group count of the most-shared node *)
}

val cover_stats : group list -> cover_stats
val pp_group : Format.formatter -> group -> unit
