(** The relationship-metadata store: one bounded successor list per file,
    updated online from the observed access sequence. This is exactly the
    server-side metadata of the aggregating cache (paper §3) — "no effort
    is made to extend the information tracked beyond a single immediate
    successor". *)

type t

val create :
  ?capacity:int -> ?policy:Successor_list.policy -> ?per_client:bool -> unit -> t
(** [create ()] tracks up to [capacity] (default 8) successors per file
    with [policy] (default [Recency]). With [per_client:true] the "previous
    file" context is kept per client id, so interleaved client streams do
    not pollute each other's succession — one of the predictive-model
    choices discussed in §2.2 (default [false]: the raw global sequence,
    as in the paper's evaluation). *)

val capacity : t -> int
val policy : t -> Successor_list.policy

val observe : t -> ?client:int -> Agg_trace.File_id.t -> unit
(** Feed the next file of the access sequence. Updates the successor list
    of the previously observed file (for this client's context when
    [per_client] is set) and makes this file the new context. *)

val observe_event : t -> Agg_trace.Event.t -> unit
val observe_trace : t -> Agg_trace.Trace.t -> unit

val successors : t -> Agg_trace.File_id.t -> Agg_trace.File_id.t list
(** Ranked most-likely first; empty for unknown files. *)

val top_successor : t -> Agg_trace.File_id.t -> Agg_trace.File_id.t option

val transitive_successors : t -> Agg_trace.File_id.t -> length:int -> Agg_trace.File_id.t list
(** [transitive_successors t f ~length] is the predicted access sequence
    after [f] (§3): recursively follow the most likely immediate
    successor, stopping at [length] files, on a cycle, or when a file has
    no recorded successor. [f] itself is not included; the result contains
    no duplicates and never contains [f]. *)

val tracked_files : t -> int
(** Number of files with a non-empty successor list. *)

val reset_context : t -> unit
(** Forget the "previous file" context(s) without touching the metadata —
    used at trace boundaries. *)
