type t = (int, (int, unit) Hashtbl.t) Hashtbl.t

let create () : t = Hashtbl.create 1024

let observe t ~file ~successor =
  let set =
    match Hashtbl.find_opt t file with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 8 in
        Hashtbl.replace t file s;
        s
  in
  Hashtbl.replace set successor ()

let mem t ~file ~successor =
  match Hashtbl.find_opt t file with Some s -> Hashtbl.mem s successor | None -> false

let successor_count t file =
  match Hashtbl.find_opt t file with Some s -> Hashtbl.length s | None -> 0
