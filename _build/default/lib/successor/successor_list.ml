open Agg_util

type policy = Recency | Frequency

let policy_name = function Recency -> "lru" | Frequency -> "lfu"

(* [Recency] is an LRU list over successor ids: the list *is* the state.

   [Frequency] keeps the k *most frequent* successors seen so far, per the
   paper's description ("maintains a list of the most frequent
   successors"): full counts are remembered for every successor ever
   observed, and a newcomer enters the list only when its count overtakes
   the current minimum (most recent wins ties). This idealised frequency
   policy needs unbounded counters — which itself illustrates the paper's
   point that a small recency list is the cheaper *and* better choice. *)

type entry = { mutable count : int; mutable tick : int }

type t = {
  capacity : int;
  policy : policy;
  order : int Dlist.t; (* Recency only: most recent at front *)
  nodes : (int, int Dlist.node) Hashtbl.t; (* Recency only *)
  counts : (int, entry) Hashtbl.t; (* Frequency only: all successors ever *)
  members : (int, unit) Hashtbl.t; (* Frequency only: the current top-k *)
  mutable clock : int;
}

let create ~capacity ~policy =
  if capacity <= 0 then invalid_arg "Successor_list.create: capacity must be positive";
  {
    capacity;
    policy;
    order = Dlist.create ();
    nodes = Hashtbl.create (2 * capacity);
    counts = Hashtbl.create 16;
    members = Hashtbl.create (2 * capacity);
    clock = 0;
  }

let capacity t = t.capacity

let size t =
  match t.policy with Recency -> Dlist.length t.order | Frequency -> Hashtbl.length t.members

let mem t succ =
  match t.policy with
  | Recency -> Hashtbl.mem t.nodes succ
  | Frequency -> Hashtbl.mem t.members succ

let observe_recency t succ =
  match Hashtbl.find_opt t.nodes succ with
  | Some node -> Dlist.move_to_front t.order node
  | None ->
      if Dlist.length t.order >= t.capacity then begin
        match Dlist.pop_back t.order with
        | Some victim -> Hashtbl.remove t.nodes victim
        | None -> ()
      end;
      Hashtbl.replace t.nodes succ (Dlist.push_front t.order succ)

(* The list member with the smallest (count, tick): the one a newcomer
   must beat. Linear in k, and k is at most ~10. *)
let weakest_member t =
  Hashtbl.fold
    (fun key () acc ->
      let entry = Hashtbl.find t.counts key in
      match acc with
      | None -> Some (key, entry)
      | Some (_, best) ->
          if entry.count < best.count || (entry.count = best.count && entry.tick < best.tick)
          then Some (key, entry)
          else acc)
    t.members None

let observe_frequency t succ =
  t.clock <- t.clock + 1;
  let entry =
    match Hashtbl.find_opt t.counts succ with
    | Some e ->
        e.count <- e.count + 1;
        e.tick <- t.clock;
        e
    | None ->
        let e = { count = 1; tick = t.clock } in
        Hashtbl.replace t.counts succ e;
        e
  in
  if not (Hashtbl.mem t.members succ) then
    if Hashtbl.length t.members < t.capacity then Hashtbl.replace t.members succ ()
    else
      match weakest_member t with
      | Some (victim, weakest)
        when entry.count > weakest.count
             || (entry.count = weakest.count && entry.tick > weakest.tick) ->
          Hashtbl.remove t.members victim;
          Hashtbl.replace t.members succ ()
      | Some _ | None -> ()

let observe t succ =
  match t.policy with Recency -> observe_recency t succ | Frequency -> observe_frequency t succ

let ranked t =
  match t.policy with
  | Recency -> Dlist.to_list t.order
  | Frequency ->
      let all =
        Hashtbl.fold (fun key () acc -> (key, Hashtbl.find t.counts key) :: acc) t.members []
      in
      let cmp (_, a) (_, b) =
        match compare b.count a.count with 0 -> compare b.tick a.tick | c -> c
      in
      List.map fst (List.sort cmp all)

let top t =
  match t.policy with
  | Recency -> Dlist.peek_front t.order
  | Frequency -> ( match ranked t with [] -> None | s :: _ -> Some s)
