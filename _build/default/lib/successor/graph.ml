type t = {
  edges : (int, (int, int) Hashtbl.t) Hashtbl.t; (* src -> dst -> weight *)
  accesses : (int, int) Hashtbl.t;
  mutable edge_total : int;
}

let create () = { edges = Hashtbl.create 4096; accesses = Hashtbl.create 4096; edge_total = 0 }

let bump table key by =
  let v = Option.value ~default:0 (Hashtbl.find_opt table key) in
  Hashtbl.replace table key (v + by)

let add_observation t ~src ~dst =
  let out =
    match Hashtbl.find_opt t.edges src with
    | Some o -> o
    | None ->
        let o = Hashtbl.create 8 in
        Hashtbl.replace t.edges src o;
        o
  in
  if not (Hashtbl.mem out dst) then t.edge_total <- t.edge_total + 1;
  bump out dst 1

let record_access t file = bump t.accesses file 1

let of_trace trace =
  let t = create () in
  let prev = ref None in
  Agg_trace.Trace.iter
    (fun (e : Agg_trace.Event.t) ->
      record_access t e.file;
      (match !prev with Some p -> add_observation t ~src:p ~dst:e.file | None -> ());
      prev := Some e.file)
    trace;
  t

let weight t ~src ~dst =
  match Hashtbl.find_opt t.edges src with
  | Some out -> Option.value ~default:0 (Hashtbl.find_opt out dst)
  | None -> 0

let out_degree t file =
  match Hashtbl.find_opt t.edges file with Some out -> Hashtbl.length out | None -> 0

let node_count t =
  let seen = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun src out ->
      Hashtbl.replace seen src ();
      Hashtbl.iter (fun dst _ -> Hashtbl.replace seen dst ()) out)
    t.edges;
  Hashtbl.iter (fun file _ -> Hashtbl.replace seen file ()) t.accesses;
  Hashtbl.length seen

let edge_count t = t.edge_total

let nodes t =
  let seen = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun src out ->
      Hashtbl.replace seen src ();
      Hashtbl.iter (fun dst _ -> Hashtbl.replace seen dst ()) out)
    t.edges;
  Hashtbl.iter (fun file _ -> Hashtbl.replace seen file ()) t.accesses;
  List.sort compare (Hashtbl.fold (fun file () acc -> file :: acc) seen [])

let successors_by_strength t file =
  match Hashtbl.find_opt t.edges file with
  | None -> []
  | Some out ->
      let all = Hashtbl.fold (fun dst w acc -> (dst, w) :: acc) out [] in
      List.sort (fun (d1, w1) (d2, w2) -> match compare w2 w1 with 0 -> compare d1 d2 | c -> c) all

let access_count t file = Option.value ~default:0 (Hashtbl.find_opt t.accesses file)

let iter_edges t f =
  Hashtbl.iter (fun src out -> Hashtbl.iter (fun dst weight -> f ~src ~dst ~weight) out) t.edges
