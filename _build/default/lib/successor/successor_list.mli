(** A per-file list of potential immediate successors with a small fixed
    capacity (paper §3, §4.4). The replacement policy for this *metadata*
    is the paper's central design question: recency (LRU) versus frequency
    (LFU); recency wins consistently (Fig. 5). *)

type policy =
  | Recency  (** keep the most recently observed successors (LRU) *)
  | Frequency  (** keep the most frequently observed successors (LFU) *)

val policy_name : policy -> string

type t

val create : capacity:int -> policy:policy -> t
(** @raise Invalid_argument when [capacity <= 0]. *)

val capacity : t -> int
val size : t -> int

val observe : t -> Agg_trace.File_id.t -> unit
(** [observe t succ] records that [succ] just followed this list's file,
    updating ranks and evicting per the policy when full. *)

val mem : t -> Agg_trace.File_id.t -> bool

val ranked : t -> Agg_trace.File_id.t list
(** Successors most-likely first: by recency under [Recency], by
    observation count (most recent first on ties) under [Frequency]. *)

val top : t -> Agg_trace.File_id.t option
(** The most likely successor, if any. *)
