(** Tracking successor *sequences* instead of single successors — the
    alternative metadata model of paper §4.5 / Fig. 6. After each
    occurrence of a file, the next [length] accesses form one symbol; a
    bounded recency list of such symbols is kept per file. The paper
    evaluates this model through successor entropy (Fig. 7) and rejects
    it: longer symbols repeat less, need more metadata, and predict
    worse. This module makes that comparison executable at the predictor
    level (ablation A7). *)

type t

val create : ?capacity:int -> length:int -> unit -> t
(** [create ~length ()] tracks symbols of [length] successors, keeping at
    most [capacity] (default 8) distinct recent symbols per file.
    @raise Invalid_argument when [length <= 0] or [capacity <= 0]. *)

val length : t -> int

val observe : t -> Agg_trace.File_id.t -> unit
(** Feed the next file of the access sequence. Symbols complete
    [length] observations after the file they belong to. *)

val sequences : t -> Agg_trace.File_id.t -> Agg_trace.File_id.t list list
(** Tracked symbols for a file, most recent first. *)

val predict : t -> Agg_trace.File_id.t -> Agg_trace.File_id.t list option
(** The most recently observed symbol, the model's prediction of the
    next [length] accesses. *)

type accuracy = {
  opportunities : int;  (** positions where a prediction was attempted *)
  full_matches : int;  (** predicted symbol matched all [length] files *)
  first_matches : int;  (** at least the immediate successor was right *)
}

val measure : length:int -> ?capacity:int -> Agg_trace.File_id.t array -> accuracy
(** One online pass: predict before learning, at every position whose
    successor window is complete. *)
