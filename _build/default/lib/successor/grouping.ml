type group = { anchor : Agg_trace.File_id.t; members : Agg_trace.File_id.t list }

let group_of graph ~size anchor =
  if size <= 0 then invalid_arg "Grouping.group_of: size must be positive";
  let seen = Hashtbl.create 16 in
  Hashtbl.replace seen anchor ();
  let members = ref [ anchor ] in
  let count = ref 1 in
  let add file =
    if !count < size && not (Hashtbl.mem seen file) then begin
      Hashtbl.replace seen file ();
      members := file :: !members;
      incr count
    end
  in
  (* Direct successors of the anchor, strongest first. *)
  List.iter (fun (dst, _) -> add dst) (Graph.successors_by_strength graph anchor);
  (* Extend transitively from the chain tail while the group is short:
     strongest successor of the most recently added member. *)
  let rec extend last guard =
    if !count < size && guard > 0 then
      match Graph.successors_by_strength graph last with
      | (next, _) :: _ when not (Hashtbl.mem seen next) ->
          add next;
          extend next (guard - 1)
      | (next, _) :: rest ->
          (* Chain re-entered the group; try the next strongest branch. *)
          (match List.find_opt (fun (d, _) -> not (Hashtbl.mem seen d)) ((next, 0) :: rest) with
          | Some (d, _) ->
              add d;
              extend d (guard - 1)
          | None -> ())
      | [] -> ()
  in
  (match List.rev !members with
  | _anchor :: tail when !count < size -> (
      match List.rev tail with last :: _ -> extend last (4 * size) | [] -> extend anchor (4 * size))
  | _ -> ());
  { anchor; members = List.rev !members }

let cover graph ~size =
  let nodes = Graph.nodes graph in
  let by_popularity =
    List.sort
      (fun a b -> compare (Graph.access_count graph b) (Graph.access_count graph a))
      nodes
  in
  let covered = Hashtbl.create 1024 in
  let emit acc anchor =
    if Hashtbl.mem covered anchor then acc
    else begin
      let g = group_of graph ~size anchor in
      List.iter (fun m -> Hashtbl.replace covered m ()) g.members;
      g :: acc
    end
  in
  List.rev (List.fold_left emit [] by_popularity)

(* Like [group_of] but drawing only from unclaimed files. *)
let disjoint_group_of graph ~size ~claimed anchor =
  let members = ref [ anchor ] in
  let count = ref 1 in
  Hashtbl.replace claimed anchor ();
  let add file =
    if !count < size && not (Hashtbl.mem claimed file) then begin
      Hashtbl.replace claimed file ();
      members := file :: !members;
      incr count
    end
  in
  List.iter (fun (dst, _) -> add dst) (Graph.successors_by_strength graph anchor);
  let rec extend last guard =
    if !count < size && guard > 0 then
      match
        List.find_opt
          (fun (d, _) -> not (Hashtbl.mem claimed d))
          (Graph.successors_by_strength graph last)
      with
      | Some (next, _) ->
          add next;
          extend next (guard - 1)
      | None -> ()
  in
  (match !members with last :: _ when !count < size -> extend last (4 * size) | _ -> ());
  { anchor; members = List.rev !members }

let partition graph ~size =
  if size <= 0 then invalid_arg "Grouping.partition: size must be positive";
  let claimed = Hashtbl.create 1024 in
  let by_popularity =
    List.sort
      (fun a b -> compare (Graph.access_count graph b) (Graph.access_count graph a))
      (Graph.nodes graph)
  in
  List.rev
    (List.fold_left
       (fun acc anchor ->
         if Hashtbl.mem claimed anchor then acc
         else disjoint_group_of graph ~size ~claimed anchor :: acc)
       [] by_popularity)

let membership groups =
  let table = Hashtbl.create 1024 in
  List.iter
    (fun group ->
      List.iter
        (fun file -> if not (Hashtbl.mem table file) then Hashtbl.replace table file group)
        group.members)
    groups;
  table

type cover_stats = {
  groups : int;
  covered_nodes : int;
  mean_group_size : float;
  overlapping_nodes : int;
  max_memberships : int;
}

let cover_stats groups =
  let memberships = Hashtbl.create 1024 in
  let total_size = ref 0 in
  List.iter
    (fun g ->
      List.iter
        (fun m ->
          total_size := !total_size + 1;
          let c = Option.value ~default:0 (Hashtbl.find_opt memberships m) in
          Hashtbl.replace memberships m (c + 1))
        g.members)
    groups;
  let covered = Hashtbl.length memberships in
  let overlapping = Hashtbl.fold (fun _ c acc -> if c > 1 then acc + 1 else acc) memberships 0 in
  let max_m = Hashtbl.fold (fun _ c acc -> max c acc) memberships 0 in
  {
    groups = List.length groups;
    covered_nodes = covered;
    mean_group_size = Agg_util.Stats.ratio !total_size (List.length groups);
    overlapping_nodes = overlapping;
    max_memberships = max_m;
  }

let pp_group ppf g =
  Format.fprintf ppf "{anchor=%a members=[%a]}" Agg_trace.File_id.pp g.anchor
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") Agg_trace.File_id.pp)
    g.members
