open Agg_util

(* Per-file storage: a bounded recency list of symbols (int lists),
   deduplicated so a repeated symbol moves to the front instead of
   occupying two slots. *)
type file_entry = {
  order : int list Dlist.t;
  nodes : (int list, int list Dlist.node) Hashtbl.t;
}

type t = {
  length : int;
  capacity : int;
  files : (int, file_entry) Hashtbl.t;
  (* ring of the last [length + 1] observations; when full, the oldest
     file's symbol (the following [length] accesses) is complete *)
  ring : int array;
  mutable ring_len : int;
}

let create ?(capacity = 8) ~length () =
  if length <= 0 then invalid_arg "Sequence_tracker.create: length must be positive";
  if capacity <= 0 then invalid_arg "Sequence_tracker.create: capacity must be positive";
  {
    length;
    capacity;
    files = Hashtbl.create 4096;
    ring = Array.make (length + 1) 0;
    ring_len = 0;
  }

let length t = t.length

let entry_for t file =
  match Hashtbl.find_opt t.files file with
  | Some e -> e
  | None ->
      let e = { order = Dlist.create (); nodes = Hashtbl.create 8 } in
      Hashtbl.replace t.files file e;
      e

let commit t file symbol =
  let e = entry_for t file in
  match Hashtbl.find_opt e.nodes symbol with
  | Some node -> Dlist.move_to_front e.order node
  | None ->
      if Dlist.length e.order >= t.capacity then begin
        match Dlist.pop_back e.order with
        | Some victim -> Hashtbl.remove e.nodes victim
        | None -> ()
      end;
      Hashtbl.replace e.nodes symbol (Dlist.push_front e.order symbol)

let observe t file =
  (* the ring is never full on entry: completing a window drains one slot *)
  let cap = Array.length t.ring in
  t.ring.(t.ring_len) <- file;
  t.ring_len <- t.ring_len + 1;
  if t.ring_len = cap then begin
    (* the oldest entry's successor window is now complete *)
    let owner = t.ring.(0) in
    let symbol = Array.to_list (Array.sub t.ring 1 t.length) in
    commit t owner symbol;
    (* slide: drop the owner *)
    Array.blit t.ring 1 t.ring 0 (cap - 1);
    t.ring_len <- cap - 1
  end

let sequences t file =
  match Hashtbl.find_opt t.files file with Some e -> Dlist.to_list e.order | None -> []

let predict t file =
  match sequences t file with [] -> None | symbol :: _ -> Some symbol

type accuracy = { opportunities : int; full_matches : int; first_matches : int }

let measure ~length ?capacity files =
  let t = create ?capacity ~length () in
  let n = Array.length files in
  let opportunities = ref 0 in
  let full = ref 0 in
  let first = ref 0 in
  for i = 0 to n - 1 do
    if i + length < n then begin
      match predict t files.(i) with
      | Some symbol ->
          incr opportunities;
          let actual = Array.to_list (Array.sub files (i + 1) length) in
          if symbol = actual then incr full;
          (match symbol with
          | head :: _ when head = files.(i + 1) -> incr first
          | _ -> ())
      | None -> ()
    end;
    observe t files.(i)
  done;
  { opportunities = !opportunities; full_matches = !full; first_matches = !first }
