(** Workload profiles standing in for the four CMU DFSTrace systems of the
    paper (§4.1). The parameters are calibrated so that the paper's
    *qualitative* workload orderings hold:

    - [server] (barber) — application-driven, long deterministic runs, the
      most predictable (successor entropy well under one bit at length 1);
    - [workstation] (mozart) — a single interactive user, moderately
      predictable;
    - [users] (ives) — many concurrent users finely interleaved, the least
      predictable global sequence;
    - [write] (dvorak) — the heaviest write share and the most cold,
      unique files, giving grouping the most modest wins. *)

type t = {
  name : string;
  clients : int;  (** independent request streams *)
  tasks : int;  (** distinct task scripts in the universe *)
  task_len_min : int;
  task_len_max : int;
  shared_pool : int;  (** globally shared utility files (shell, make, …) *)
  shared_fraction : float;  (** probability a task position is a shared file *)
  task_zipf_s : float;  (** skew of task popularity (re-execution rate) *)
  p_skip : float;  (** per-position chance a task file is skipped *)
  p_substitute : float;  (** chance a task file is replaced by noise *)
  p_insert : float;  (** chance a noise access is inserted between steps *)
  background_files : int;  (** size of the cold/noise file population *)
  background_zipf_s : float;
  p_background : float;  (** chance a step is pure background traffic *)
  p_write : float;  (** chance an event is a write *)
  burst_mean : float;  (** mean run length before switching client streams *)
  phase_period : int;
      (** events between popularity shifts: task popularity ranks rotate
          slowly, modelling projects waxing and waning. This
          non-stationarity is what makes frequency (LFU) unreliable and
          recency (LRU) robust, as in the paper's traces; [0] disables. *)
  p_task_mutate : float;
      (** per-execution chance that a task permanently swaps one of its
          files for a fresh one (sources evolve, outputs are regenerated).
          Successor relations therefore *drift*, so stale frequency counts
          mispredict where the most recent successor adapts — the §4.4
          recency-over-frequency effect at the metadata level. *)
  p_loop : float;
      (** per-step chance of entering a short working-set loop: the last
          few task files are re-accessed cyclically (edit-compile cycles,
          scan loops). Loops are what a tiny intervening cache absorbs —
          removing the most predictable successions from the miss stream,
          the paper's Fig. 8 capacity-10 effect. *)
  loop_mean_reps : float;  (** mean iterations of such a loop *)
}

val workstation : t
val users : t
val write : t
val server : t

val all : t list
(** The four paper workloads, in the paper's naming order. *)

val by_name : string -> t option
val distinct_file_estimate : t -> int
(** Rough size of the file universe the profile can touch. *)

val pp : Format.formatter -> t -> unit
