lib/workload/generator.ml: Agg_trace Agg_util Array Dist Float List Prng Profile Task
