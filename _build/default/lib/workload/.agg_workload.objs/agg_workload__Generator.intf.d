lib/workload/generator.mli: Agg_trace Profile
