lib/workload/task.mli: Agg_trace Agg_util
