lib/workload/profile.ml: Format List
