lib/workload/task.ml: Agg_trace Agg_util Array
