type t = { id : int; files : Agg_trace.File_id.t array; loop_width : int array }

let length t = Array.length t.files

let build ~prng ~id ~length ~shared_pool ~shared_fraction ~shared_zipf ~fresh_file ~loop_chance =
  if length <= 0 then invalid_arg "Task.build: length must be positive";
  let files = Array.make length 0 in
  for i = 0 to length - 1 do
    let draw () =
      if shared_pool > 0 && Agg_util.Prng.bernoulli prng ~p:shared_fraction then
        Agg_util.Dist.Zipf.sample shared_zipf prng
      else fresh_file ()
    in
    let rec non_repeating attempts =
      let f = draw () in
      if attempts > 0 && i > 0 && f = files.(i - 1) then non_repeating (attempts - 1) else f
    in
    files.(i) <- non_repeating 8
  done;
  let loop_width = Array.make length 0 in
  for i = 2 to length - 1 do
    if Agg_util.Prng.bernoulli prng ~p:loop_chance then
      loop_width.(i) <- 2 + Agg_util.Prng.int prng (min i 6 - 1)
  done;
  { id; files; loop_width }
