(** The task model underlying the synthetic workloads: a task is a fixed
    sequence of files that an application touches when it runs (a build, a
    script, an editing session). Repeated task executions are what give
    file-system traces their strong immediate-successor structure; shared
    files (a shell, [make]) appearing in many tasks are what motivates the
    paper's overlapping groups (§2.1). *)

type t = {
  id : int;
  files : Agg_trace.File_id.t array;  (** the access sequence of one execution *)
  loop_width : int array;
      (** [loop_width.(i) = w > 0] marks a loop point: after position [i],
          an execution cycles over [files.(i-w+1 .. i)] for a random number
          of iterations (an edit-compile or scan loop). Loop points are
          fixed per task, so the loop successions repeat identically across
          executions — predictable structure that a small intervening cache
          absorbs (the paper's Fig. 8 effect). [0] means no loop. *)
}

val length : t -> int

val build :
  prng:Agg_util.Prng.t ->
  id:int ->
  length:int ->
  shared_pool:int ->
  shared_fraction:float ->
  shared_zipf:Agg_util.Dist.Zipf.t ->
  fresh_file:(unit -> Agg_trace.File_id.t) ->
  loop_chance:float ->
  t
(** [build] draws each position from the shared pool (ids
    [0 .. shared_pool-1], Zipf-skewed so a few "utility" files are very
    hot) with probability [shared_fraction], otherwise allocates a fresh
    private file via [fresh_file]. Consecutive duplicate files are
    avoided, so every in-task transition is a real inter-file succession.
    Each eligible position becomes a loop point with probability
    [loop_chance], with a width of 2–6 files. *)
