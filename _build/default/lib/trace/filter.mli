(** Intervening-cache filtering: push a trace through a client cache and
    keep only the misses. This models what a file *server* observes when
    clients run their own caches (paper §4.3, Figs. 4 and 8): all
    independent temporal locality absorbed by the client is removed from
    the stream, while inter-file succession structure survives. *)

val miss_stream : ?kind:Agg_cache.Cache.kind -> capacity:int -> Trace.t -> Trace.t
(** [miss_stream ~capacity trace] replays [trace] through a client cache of
    [capacity] files ([kind] defaults to LRU, as in the paper) and returns
    the sub-trace of events that missed, renumbered densely from 0.
    @raise Invalid_argument when [capacity <= 0]. *)

val miss_stream_per_client :
  ?kind:Agg_cache.Cache.kind -> capacity:int -> Trace.t -> Trace.t
(** Like {!miss_stream}, but each client id gets its own private cache of
    [capacity] files — the multi-client view of a shared server. *)

val miss_count : ?kind:Agg_cache.Cache.kind -> capacity:int -> Trace.t -> int
(** Number of misses without materialising the filtered trace. *)
