(** Importing real traces from common external formats into the simulator:
    path names are interned into dense file ids via {!File_id.Namespace},
    so any experiment can replay a real system's accesses.

    Formats:
    - [Paths]: one path per line — the least common denominator
      (`lsof`-style dumps, pre-processed trace extracts). Blank lines and
      [#] comments are skipped.
    - [Strace]: `strace -e trace=open,openat` output; the first quoted
      string of each [open]/[openat]/[creat] line is the path. Lines
      whose syscall failed (return [-1]) and unrelated lines are skipped. *)

type format = Paths | Strace

val format_of_string : string -> format option
(** Recognises ["paths"] and ["strace"]. *)

val parse_line : format -> string -> string option
(** The path named by one input line, if any. Exposed for testing. *)

val of_channel : ?namespace:File_id.Namespace.t -> format -> in_channel -> Trace.t * File_id.Namespace.t
(** Reads a whole channel, producing an [Open]-event trace and the
    namespace mapping ids back to path names (a fresh one unless given). *)

val of_string : ?namespace:File_id.Namespace.t -> format -> string -> Trace.t * File_id.Namespace.t

val of_file : ?namespace:File_id.Namespace.t -> format -> string -> Trace.t * File_id.Namespace.t
(** @raise Sys_error when the file cannot be read. *)
