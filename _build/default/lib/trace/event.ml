type op = Open | Read | Write

type t = { seq : int; client : int; op : op; file : File_id.t }

let make ?(client = 0) ?(op = Open) ~seq file = { seq; client; op; file }

let is_write e = match e.op with Write -> true | Open | Read -> false

let op_to_char = function Open -> 'o' | Read -> 'r' | Write -> 'w'

let op_of_char = function
  | 'o' -> Some Open
  | 'r' -> Some Read
  | 'w' -> Some Write
  | _ -> None

let equal a b = a.seq = b.seq && a.client = b.client && a.op = b.op && File_id.equal a.file b.file

let pp ppf e =
  Format.fprintf ppf "#%d c%d %c %a" e.seq e.client (op_to_char e.op) File_id.pp e.file
