exception Parse_error of { line : int; message : string }

let header = "#aggtrace v1"

let parse_error line message = raise (Parse_error { line; message })

let write_channel oc trace =
  output_string oc header;
  output_char oc '\n';
  Trace.iter
    (fun (e : Event.t) ->
      Printf.fprintf oc "%d %c %d %d\n" e.seq (Event.op_to_char e.op) e.client e.file)
    trace

let parse_event ~lineno ~expect_header line =
  let line = String.trim line in
  if line = "" then None
  else if String.length line > 0 && line.[0] = '#' then begin
    if expect_header && lineno = 1 && line <> header then
      parse_error lineno (Printf.sprintf "unknown header %S (expected %S)" line header);
    None
  end
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ seq_s; op_s; client_s; file_s ] ->
        let int_field name s =
          match int_of_string_opt s with
          | Some v when v >= 0 -> v
          | Some _ -> parse_error lineno (name ^ " must be non-negative")
          | None -> parse_error lineno (Printf.sprintf "bad %s %S" name s)
        in
        let op =
          if String.length op_s <> 1 then parse_error lineno (Printf.sprintf "bad op %S" op_s)
          else
            match Event.op_of_char op_s.[0] with
            | Some op -> op
            | None -> parse_error lineno (Printf.sprintf "bad op %S" op_s)
        in
        let seq = int_field "seq" seq_s in
        let client = int_field "client" client_s in
        let file = int_field "file" file_s in
        Some { Event.seq; op; client; file }
    | _ -> parse_error lineno (Printf.sprintf "expected 'seq op client file', got %S" line)

let parse_line ~lineno ~expect_header line trace =
  match parse_event ~lineno ~expect_header line with
  | Some event -> Trace.append trace event
  | None -> ()

let fold_channel ic ~init ~f =
  let lineno = ref 0 in
  let acc = ref init in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       match parse_event ~lineno:!lineno ~expect_header:true line with
       | Some event -> acc := f !acc event
       | None -> ()
     done
   with End_of_file -> ());
  !acc

let read_channel ic =
  let trace = Trace.create () in
  fold_channel ic ~init:() ~f:(fun () event -> Trace.append trace event);
  trace

let to_string trace =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Trace.iter
    (fun (e : Event.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%d %c %d %d\n" e.seq (Event.op_to_char e.op) e.client e.file))
    trace;
  Buffer.contents buf

let of_string s =
  let trace = Trace.create () in
  let lines = String.split_on_char '\n' s in
  List.iteri (fun i line -> parse_line ~lineno:(i + 1) ~expect_header:true line trace) lines;
  trace

let write_file path trace =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc trace)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)

let fold_file path ~init ~f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> fold_channel ic ~init ~f)

let iter_file path f = fold_file path ~init:() ~f:(fun () event -> f event)
