(** File identifiers. Simulations work on dense integer ids; a {!Namespace}
    maps human-readable path names to ids for the codec and the examples. *)

type t = int
(** Ids are plain non-negative integers so they can index arrays and key
    [Hashtbl]s without boxing. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Namespace : sig
  (** Bidirectional interning of path names. *)

  type id = t
  type t

  val create : unit -> t
  val intern : t -> string -> id
  (** [intern t name] returns the id for [name], allocating the next dense
      id on first sight. *)

  val find : t -> string -> id option
  val name : t -> id -> string option
  (** The name interned for [id], if any. *)

  val count : t -> int
  val iter : t -> (string -> id -> unit) -> unit
end
