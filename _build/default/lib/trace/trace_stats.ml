type t = {
  events : int;
  distinct_files : int;
  clients : int;
  write_fraction : float;
  repeat_fraction : float;
  max_file_popularity : int;
  mean_accesses_per_file : float;
}

let access_counts trace =
  let counts = Hashtbl.create 1024 in
  Trace.iter
    (fun (e : Event.t) ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts e.file) in
      Hashtbl.replace counts e.file (c + 1))
    trace;
  counts

let compute trace =
  let counts = Hashtbl.create 1024 in
  let clients = Hashtbl.create 16 in
  let writes = ref 0 in
  let repeats = ref 0 in
  Trace.iter
    (fun (e : Event.t) ->
      if Event.is_write e then incr writes;
      Hashtbl.replace clients e.client ();
      match Hashtbl.find_opt counts e.file with
      | Some c ->
          incr repeats;
          Hashtbl.replace counts e.file (c + 1)
      | None -> Hashtbl.replace counts e.file 1)
    trace;
  let events = Trace.length trace in
  let distinct = Hashtbl.length counts in
  let max_pop = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  {
    events;
    distinct_files = distinct;
    clients = Hashtbl.length clients;
    write_fraction = Agg_util.Stats.ratio !writes events;
    repeat_fraction = Agg_util.Stats.ratio !repeats events;
    max_file_popularity = max_pop;
    mean_accesses_per_file = Agg_util.Stats.ratio events distinct;
  }

let pp ppf t =
  Format.fprintf ppf
    "events=%d files=%d clients=%d write%%=%.1f repeat%%=%.1f max_pop=%d mean_per_file=%.2f"
    t.events t.distinct_files t.clients (100.0 *. t.write_fraction)
    (100.0 *. t.repeat_fraction) t.max_file_popularity t.mean_accesses_per_file

let top_files trace ~k =
  let counts = access_counts trace in
  let all = Hashtbl.fold (fun file c acc -> (file, c) :: acc) counts [] in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) all in
  List.filteri (fun i _ -> i < k) sorted
