open Agg_util

type t = { events : Event.t Vec.t }

let create () = { events = Vec.create () }
let append t e = Vec.push t.events e

let add_access t ?client ?op file =
  append t (Event.make ?client ?op ~seq:(Vec.length t.events) file)

let length t = Vec.length t.events
let get t i = Vec.get t.events i
let iter f t = Vec.iter f t.events
let fold f acc t = Vec.fold f acc t.events

let files t = Array.map (fun (e : Event.t) -> e.file) (Vec.to_array t.events)

let of_files ?client fs =
  let t = create () in
  List.iter (fun f -> add_access t ?client f) fs;
  t

let of_events es =
  let t = create () in
  List.iter (append t) es;
  t

let to_events t = Vec.to_list t.events

let distinct_files t =
  let seen = Hashtbl.create 1024 in
  iter (fun (e : Event.t) -> Hashtbl.replace seen e.file ()) t;
  Hashtbl.length seen

let renumber events =
  let t = create () in
  Vec.iteri (fun i (e : Event.t) -> append t { e with seq = i }) events;
  t

let sub t ~pos ~len = renumber (Vec.sub t.events ~pos ~len)

let concat a b =
  let t = create () in
  iter (append t) a;
  iter (fun (e : Event.t) -> append t { e with seq = length t }) b;
  t
