type format = Paths | Strace

let format_of_string = function
  | "paths" -> Some Paths
  | "strace" -> Some Strace
  | _ -> None

let contains_at haystack needle from =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = if i + n > h then None else if String.sub haystack i n = needle then Some i else loop (i + 1) in
  loop from

let contains haystack needle = Option.is_some (contains_at haystack needle 0)

let parse_paths_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None else Some line

(* `strace -e trace=open,openat` output: take the first quoted string of
   open/openat/creat lines whose syscall did not fail. *)
let parse_strace_line line =
  let syscall =
    List.exists
      (fun name -> contains line (name ^ "("))
      [ "open"; "openat"; "creat" ]
  in
  if not syscall then None
  else if contains line "<unfinished" then None
  else
    match contains_at line "\"" 0 with
    | None -> None
    | Some start -> (
        match contains_at line "\"" (start + 1) with
        | None -> None
        | Some stop ->
            let path = String.sub line (start + 1) (stop - start - 1) in
            (* a trailing "= -1" marks a failed call *)
            if contains line "= -1" then None else Some path)

let parse_line format line =
  match format with Paths -> parse_paths_line line | Strace -> parse_strace_line line

let of_channel ?namespace format ic =
  let namespace = match namespace with Some ns -> ns | None -> File_id.Namespace.create () in
  let trace = Trace.create () in
  (try
     while true do
       match parse_line format (input_line ic) with
       | Some path -> Trace.add_access trace (File_id.Namespace.intern namespace path)
       | None -> ()
     done
   with End_of_file -> ());
  (trace, namespace)

let of_string ?namespace format s =
  let namespace = match namespace with Some ns -> ns | None -> File_id.Namespace.create () in
  let trace = Trace.create () in
  List.iter
    (fun line ->
      match parse_line format line with
      | Some path -> Trace.add_access trace (File_id.Namespace.intern namespace path)
      | None -> ())
    (String.split_on_char '\n' s);
  (trace, namespace)

let of_file ?namespace format path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ?namespace format ic)
