type t = int

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp ppf id = Format.fprintf ppf "f%d" id

module Namespace = struct
  type id = int

  type t = { by_name : (string, id) Hashtbl.t; names : string Agg_util.Vec.t }

  let create () = { by_name = Hashtbl.create 256; names = Agg_util.Vec.create () }

  let intern t name =
    match Hashtbl.find_opt t.by_name name with
    | Some id -> id
    | None ->
        let id = Agg_util.Vec.length t.names in
        Hashtbl.replace t.by_name name id;
        Agg_util.Vec.push t.names name;
        id

  let find t name = Hashtbl.find_opt t.by_name name

  let name t id =
    if id < 0 || id >= Agg_util.Vec.length t.names then None else Some (Agg_util.Vec.get t.names id)

  let count t = Agg_util.Vec.length t.names
  let iter t f = Agg_util.Vec.iteri (fun id n -> f n id) t.names
end
