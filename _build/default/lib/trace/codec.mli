(** Text serialisation of traces.

    The format is one event per line — [seq op client file] with [op] one
    of [o]/[r]/[w] — preceded by a [#aggtrace v1] header; [#] lines and
    blank lines are ignored. Real traces (e.g. converted DFSTrace output)
    in this format can be replayed through every experiment in place of the
    synthetic workloads. *)

exception Parse_error of { line : int; message : string }

val header : string

val write_channel : out_channel -> Trace.t -> unit
val read_channel : in_channel -> Trace.t
(** @raise Parse_error on malformed input. *)

val to_string : Trace.t -> string
val of_string : string -> Trace.t
(** @raise Parse_error on malformed input. *)

val write_file : string -> Trace.t -> unit
val read_file : string -> Trace.t
(** @raise Parse_error on malformed input.
    @raise Sys_error when the file cannot be read. *)

val fold_channel : in_channel -> init:'a -> f:('a -> Event.t -> 'a) -> 'a
(** Streaming reader: folds over events one line at a time without
    materialising a {!Trace.t} — for traces larger than memory.
    @raise Parse_error on malformed input. *)

val fold_file : string -> init:'a -> f:('a -> Event.t -> 'a) -> 'a
val iter_file : string -> (Event.t -> unit) -> unit
