(** A single file-access event at open-request granularity — the level at
    which the paper's CMU traces are analysed (whole-file caching keyed on
    open requests; intra-file patterns are out of scope). *)

type op =
  | Open  (** read-mostly open; the common case *)
  | Read
  | Write

type t = {
  seq : int;  (** position in the observed access sequence *)
  client : int;  (** identity of the issuing client/user stream *)
  op : op;
  file : File_id.t;
}

val make : ?client:int -> ?op:op -> seq:int -> File_id.t -> t
(** [make ~seq file] with [client] defaulting to [0] and [op] to [Open]. *)

val is_write : t -> bool
val op_to_char : op -> char
val op_of_char : char -> op option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
