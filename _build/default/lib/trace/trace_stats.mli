(** Summary statistics of a trace, for workload characterisation tables
    and profile calibration. *)

type t = {
  events : int;
  distinct_files : int;
  clients : int;
  write_fraction : float;  (** fraction of events with op = Write *)
  repeat_fraction : float;  (** fraction of events whose file was seen before *)
  max_file_popularity : int;  (** access count of the most popular file *)
  mean_accesses_per_file : float;
}

val compute : Trace.t -> t
val pp : Format.formatter -> t -> unit

val access_counts : Trace.t -> (File_id.t, int) Hashtbl.t
(** Per-file access counts. *)

val top_files : Trace.t -> k:int -> (File_id.t * int) list
(** The [k] most-accessed files with their counts, most popular first. *)
