lib/trace/filter.ml: Agg_cache Cache Event Hashtbl Trace
