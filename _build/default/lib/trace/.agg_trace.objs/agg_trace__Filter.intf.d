lib/trace/filter.mli: Agg_cache Trace
