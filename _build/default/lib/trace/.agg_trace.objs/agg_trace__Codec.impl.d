lib/trace/codec.ml: Buffer Event Fun List Printf String Trace
