lib/trace/codec.mli: Event Trace
