lib/trace/trace.mli: Event File_id
