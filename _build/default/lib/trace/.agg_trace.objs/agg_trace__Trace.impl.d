lib/trace/trace.ml: Agg_util Array Event Hashtbl List Vec
