lib/trace/file_id.mli: Format
