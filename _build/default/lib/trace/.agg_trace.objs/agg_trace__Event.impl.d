lib/trace/event.ml: File_id Format
