lib/trace/trace_stats.mli: File_id Format Hashtbl Trace
