lib/trace/trace_stats.ml: Agg_util Event Format Hashtbl List Option Trace
