lib/trace/file_id.ml: Agg_util Format Hashtbl Int
