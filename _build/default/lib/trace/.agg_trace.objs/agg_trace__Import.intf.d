lib/trace/import.mli: File_id Trace
