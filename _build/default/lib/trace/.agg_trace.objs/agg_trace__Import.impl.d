lib/trace/import.ml: File_id Fun List Option String Trace
