lib/trace/event.mli: File_id Format
