open Agg_cache

let fold_misses ~kind ~capacity trace ~init ~f =
  let cache = Cache.create kind ~capacity in
  Trace.fold
    (fun acc (e : Event.t) -> if Cache.access cache e.file then acc else f acc e)
    init trace

let miss_stream ?(kind = Cache.Lru) ~capacity trace =
  let out = Trace.create () in
  let () =
    fold_misses ~kind ~capacity trace ~init:()
      ~f:(fun () (e : Event.t) -> Trace.append out { e with seq = Trace.length out })
  in
  out

let miss_stream_per_client ?(kind = Cache.Lru) ~capacity trace =
  let caches : (int, Cache.t) Hashtbl.t = Hashtbl.create 16 in
  let cache_for client =
    match Hashtbl.find_opt caches client with
    | Some c -> c
    | None ->
        let c = Cache.create kind ~capacity in
        Hashtbl.replace caches client c;
        c
  in
  let out = Trace.create () in
  Trace.iter
    (fun (e : Event.t) ->
      if not (Cache.access (cache_for e.client) e.file) then
        Trace.append out { e with seq = Trace.length out })
    trace;
  out

let miss_count ?(kind = Cache.Lru) ~capacity trace =
  fold_misses ~kind ~capacity trace ~init:0 ~f:(fun acc _ -> acc + 1)
