(** An in-memory access trace: the sequence of file-access events driving
    every simulation. *)

type t

val create : unit -> t
val append : t -> Event.t -> unit
(** Events must be appended in sequence order; [seq] fields are trusted as
    given (the workload generators produce them densely from 0). *)

val add_access : t -> ?client:int -> ?op:Event.op -> File_id.t -> unit
(** [add_access t file] appends an event with the next sequence number. *)

val length : t -> int
val get : t -> int -> Event.t
val iter : (Event.t -> unit) -> t -> unit
val fold : ('acc -> Event.t -> 'acc) -> 'acc -> t -> 'acc
val files : t -> File_id.t array
(** The bare file-id sequence, in order — what the cache simulators and
    entropy calculations consume. *)

val of_files : ?client:int -> File_id.t list -> t
(** A trace of [Open] events over the given file sequence. *)

val of_events : Event.t list -> t
val to_events : t -> Event.t list
val distinct_files : t -> int
(** Number of distinct file ids appearing in the trace. *)

val sub : t -> pos:int -> len:int -> t
(** Copy of a slice, with events renumbered from 0.
    @raise Invalid_argument when the slice is out of bounds. *)

val concat : t -> t -> t
(** [concat a b] is a new trace with [b]'s events renumbered after [a]'s. *)
