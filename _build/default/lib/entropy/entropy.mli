(** Successor entropy — the paper's predictability metric (§4.5, Eq. 2).

    For a symbol length L, the "successor symbol" of an occurrence of file
    f is the sequence of the next L accesses. The successor entropy H_S is
    the access-frequency-weighted average, over files occurring more than
    once, of the conditional entropy of that symbol given f, in bits.
    Lower is more predictable; L = 1 is the single-file-successor model
    the aggregating cache uses.

    Occurrences whose successor window is cut off by the end of the trace
    are ignored, and files with fewer than two (complete-window)
    occurrences are excluded so a non-repeating workload is not mistaken
    for a predictable one. *)

val of_files : ?length:int -> Agg_trace.File_id.t array -> float
(** [of_files files] is H_S with symbol [length] (default 1) in bits.
    Returns [0.] when no file repeats.
    @raise Invalid_argument when [length <= 0]. *)

val of_trace : ?length:int -> Agg_trace.Trace.t -> float

val sweep : lengths:int list -> Agg_trace.File_id.t array -> (int * float) list
(** [(l, H_S at l)] for each requested length — one Fig. 7 line. *)

val filtered_sweep :
  filter_capacities:int list ->
  lengths:int list ->
  Agg_trace.Trace.t ->
  (int * (int * float) list) list
(** For each intervening LRU client-cache capacity, the entropy sweep of
    the resulting miss stream — one Fig. 8 panel. *)

val per_client : ?length:int -> Agg_trace.Trace.t -> float
(** H_S computed over each client's own subsequence (successions never
    cross client boundaries), access-weighted across clients. Comparing
    this with {!of_trace} isolates how much of a workload's
    unpredictability is mere interleaving of independent streams — the
    §2.2 "identity of the driving client" model choice. *)

val per_file : ?length:int -> Agg_trace.File_id.t array -> (Agg_trace.File_id.t * int * float) list
(** [(file, occurrences, conditional entropy)] for every file occurring
    more than once — the raw material of Eq. 2, exposed for inspection
    and for the visualization-style tooling the paper mentions as future
    work. *)
