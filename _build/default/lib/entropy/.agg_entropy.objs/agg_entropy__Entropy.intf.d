lib/entropy/entropy.mli: Agg_trace
