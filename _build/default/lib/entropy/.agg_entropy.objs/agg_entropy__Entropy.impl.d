lib/entropy/entropy.ml: Agg_trace Agg_util Array Hashtbl List Option
