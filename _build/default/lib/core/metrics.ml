type prefetch = { issued : int; used : int; evicted_unused : int }

let prefetch_utilisation p = Agg_util.Stats.ratio p.used p.issued

type client = { accesses : int; hits : int; demand_fetches : int; prefetch : prefetch }

let client_hit_rate c = Agg_util.Stats.ratio c.hits c.accesses

let pp_prefetch ppf p =
  Format.fprintf ppf "issued=%d used=%d (%.1f%%) evicted_unused=%d" p.issued p.used
    (100.0 *. prefetch_utilisation p)
    p.evicted_unused

let pp_client ppf c =
  Format.fprintf ppf "accesses=%d hits=%d (%.1f%%) demand_fetches=%d prefetch:[%a]" c.accesses
    c.hits
    (100.0 *. client_hit_rate c)
    c.demand_fetches pp_prefetch c.prefetch

type server = {
  client_accesses : int;
  server_requests : int;
  server_hits : int;
  store_fetches : int;
  prefetch : prefetch;
}

let server_hit_rate s = Agg_util.Stats.ratio s.server_hits s.server_requests

let pp_server ppf s =
  Format.fprintf ppf
    "client_accesses=%d server_requests=%d server_hits=%d (%.1f%%) store_fetches=%d prefetch:[%a]"
    s.client_accesses s.server_requests s.server_hits
    (100.0 *. server_hit_rate s)
    s.store_fetches pp_prefetch s.prefetch
