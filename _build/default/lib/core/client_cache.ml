module Cache = Agg_cache.Cache
module Tracker = Agg_successor.Tracker

type t = {
  config : Config.t;
  mutable group_size : int;
  cache : Cache.t;
  tracker : Tracker.t;
  speculative : (int, unit) Hashtbl.t; (* prefetched residents not yet demanded *)
  mutable accesses : int;
  mutable hits : int;
  mutable demand_fetches : int;
  mutable prefetch_issued : int;
  mutable prefetch_used : int;
  mutable prefetch_evicted_unused : int;
}

let create ?(config = Config.default) ~capacity () =
  Config.validate config;
  {
    config;
    group_size = config.group_size;
    cache = Cache.create config.cache_kind ~capacity;
    tracker =
      Tracker.create ~capacity:config.successor_capacity ~policy:config.metadata_policy ();
    speculative = Hashtbl.create 64;
    accesses = 0;
    hits = 0;
    demand_fetches = 0;
    prefetch_issued = 0;
    prefetch_used = 0;
    prefetch_evicted_unused = 0;
  }

let config t = t.config
let capacity t = Cache.capacity t.cache
let group_size t = t.group_size

let set_group_size t g =
  if g <= 0 then invalid_arg "Client_cache.set_group_size: group size must be positive";
  t.group_size <- g

let mark_speculative t file =
  t.prefetch_issued <- t.prefetch_issued + 1;
  Hashtbl.replace t.speculative file ()

let insert_members t members =
  match t.config.member_position with
  | Config.Tail ->
      (* The whole group arrives in one retrieval: appended as a block. *)
      let admitted = Cache.insert_cold_group t.cache members in
      List.iter (mark_speculative t) admitted
  | Config.Head ->
      List.iter
        (fun file ->
          if not (Cache.mem t.cache file) then begin
            Cache.insert_hot t.cache file;
            mark_speculative t file
          end)
        members

let access t file =
  (* Metadata first: the tracker sees the raw request sequence. *)
  Tracker.observe t.tracker file;
  t.accesses <- t.accesses + 1;
  if Cache.access t.cache file then begin
    t.hits <- t.hits + 1;
    if Hashtbl.mem t.speculative file then begin
      (* First demand hit on a prefetched file: the speculation paid off. *)
      t.prefetch_used <- t.prefetch_used + 1;
      Hashtbl.remove t.speculative file
    end;
    true
  end
  else begin
    if Hashtbl.mem t.speculative file then begin
      (* It was prefetched once but evicted before being used. *)
      t.prefetch_evicted_unused <- t.prefetch_evicted_unused + 1;
      Hashtbl.remove t.speculative file
    end;
    t.demand_fetches <- t.demand_fetches + 1;
    (match Group_builder.build t.tracker ~group_size:t.group_size file with
    | _requested :: members -> insert_members t members
    | [] -> assert false (* build always returns the requested file *));
    false
  end

let metrics t =
  {
    Metrics.accesses = t.accesses;
    hits = t.hits;
    demand_fetches = t.demand_fetches;
    prefetch =
      {
        Metrics.issued = t.prefetch_issued;
        used = t.prefetch_used;
        evicted_unused = t.prefetch_evicted_unused;
      };
  }

let run t trace =
  Agg_trace.Trace.iter (fun (e : Agg_trace.Event.t) -> ignore (access t e.file)) trace;
  metrics t

let tracker t = t.tracker
let resident t file = Cache.mem t.cache file
