lib/core/config.mli: Agg_cache Agg_successor Format
