lib/core/metrics.ml: Agg_util Format
