lib/core/server_cache.mli: Agg_cache Agg_trace Config Metrics
