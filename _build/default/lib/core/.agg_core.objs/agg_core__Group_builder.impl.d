lib/core/group_builder.ml: Agg_successor Hashtbl List
