lib/core/adaptive_client.ml: Agg_trace Agg_util Client_cache Config List Metrics
