lib/core/server_cache.ml: Agg_cache Agg_successor Agg_trace Config Group_builder Hashtbl List Metrics
