lib/core/group_builder.mli: Agg_successor Agg_trace
