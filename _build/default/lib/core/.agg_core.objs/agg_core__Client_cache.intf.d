lib/core/client_cache.mli: Agg_successor Agg_trace Config Metrics
