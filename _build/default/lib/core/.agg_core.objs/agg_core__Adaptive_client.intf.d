lib/core/adaptive_client.mli: Agg_trace Config Metrics
