lib/core/config.ml: Agg_cache Agg_successor Format
