(** Configuration of an aggregating cache (paper §3). The defaults are the
    paper's operating point: groups of five, eight-successor metadata lists
    managed by recency, speculative members inserted at the cold end. *)

type member_position =
  | Tail  (** append group members at the LRU end (the paper's choice) *)
  | Head  (** insert group members hot — ablation A1 *)

type t = {
  group_size : int;  (** files fetched per demand miss, including the requested one *)
  successor_capacity : int;  (** per-file successor-list capacity *)
  metadata_policy : Agg_successor.Successor_list.policy;
      (** replacement for the successor lists; [Recency] in the paper *)
  member_position : member_position;
  cache_kind : Agg_cache.Cache.kind;  (** replacement for the data cache itself *)
}

val default : t
(** group_size 5, successor_capacity 8, [Recency], [Tail], LRU. *)

val with_group_size : int -> t -> t
(** Functional update; @raise Invalid_argument when the size is not positive. *)

val validate : t -> unit
(** @raise Invalid_argument on non-positive sizes/capacities. *)

val pp : Format.formatter -> t -> unit
