type member_position = Tail | Head

type t = {
  group_size : int;
  successor_capacity : int;
  metadata_policy : Agg_successor.Successor_list.policy;
  member_position : member_position;
  cache_kind : Agg_cache.Cache.kind;
}

let default =
  {
    group_size = 5;
    successor_capacity = 8;
    metadata_policy = Agg_successor.Successor_list.Recency;
    member_position = Tail;
    cache_kind = Agg_cache.Cache.Lru;
  }

let validate t =
  if t.group_size <= 0 then invalid_arg "Config: group_size must be positive";
  if t.successor_capacity <= 0 then invalid_arg "Config: successor_capacity must be positive"

let with_group_size group_size t =
  let t = { t with group_size } in
  validate t;
  t

let pp ppf t =
  Format.fprintf ppf "g=%d succ_cap=%d meta=%s members=%s cache=%s" t.group_size
    t.successor_capacity
    (Agg_successor.Successor_list.policy_name t.metadata_policy)
    (match t.member_position with Tail -> "tail" | Head -> "head")
    (Agg_cache.Cache.kind_name t.cache_kind)
