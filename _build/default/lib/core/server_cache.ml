module Cache = Agg_cache.Cache
module Tracker = Agg_successor.Tracker

type scheme = Plain of Agg_cache.Cache.kind | Aggregating of Config.t

type t = {
  scheme : scheme;
  cooperative : bool;
  client : Cache.t;
  server : Cache.t;
  tracker : Tracker.t option; (* present only for the aggregating scheme *)
  speculative : (int, unit) Hashtbl.t;
  mutable client_accesses : int;
  mutable server_requests : int;
  mutable server_hits : int;
  mutable store_fetches : int;
  mutable prefetch_issued : int;
  mutable prefetch_used : int;
  mutable prefetch_evicted_unused : int;
}

let create ?(cooperative = false) ~filter_kind ~filter_capacity ~server_capacity ~scheme () =
  let server_kind, tracker =
    match scheme with
    | Plain kind -> (kind, None)
    | Aggregating config ->
        Config.validate config;
        ( config.cache_kind,
          Some (Tracker.create ~capacity:config.successor_capacity ~policy:config.metadata_policy ())
        )
  in
  {
    scheme;
    cooperative;
    client = Cache.create filter_kind ~capacity:filter_capacity;
    server = Cache.create server_kind ~capacity:server_capacity;
    tracker;
    speculative = Hashtbl.create 64;
    client_accesses = 0;
    server_requests = 0;
    server_hits = 0;
    store_fetches = 0;
    prefetch_issued = 0;
    prefetch_used = 0;
    prefetch_evicted_unused = 0;
  }

type outcome = Client_hit | Server_hit | Server_miss

let mark_speculative t file =
  t.store_fetches <- t.store_fetches + 1;
  t.prefetch_issued <- t.prefetch_issued + 1;
  Hashtbl.replace t.speculative file ()

let insert_members t config members =
  match config.Config.member_position with
  | Config.Tail ->
      let admitted = Cache.insert_cold_group t.server members in
      List.iter (mark_speculative t) admitted
  | Config.Head ->
      List.iter
        (fun file ->
          if not (Cache.mem t.server file) then begin
            Cache.insert_hot t.server file;
            mark_speculative t file
          end)
        members

let serve t file =
  t.server_requests <- t.server_requests + 1;
  (* Non-cooperative servers learn from what they can see: the misses. *)
  (match (t.tracker, t.cooperative) with
  | Some tracker, false -> Tracker.observe tracker file
  | Some _, true | None, _ -> ());
  if Cache.access t.server file then begin
    t.server_hits <- t.server_hits + 1;
    if Hashtbl.mem t.speculative file then begin
      t.prefetch_used <- t.prefetch_used + 1;
      Hashtbl.remove t.speculative file
    end;
    Server_hit
  end
  else begin
    if Hashtbl.mem t.speculative file then begin
      t.prefetch_evicted_unused <- t.prefetch_evicted_unused + 1;
      Hashtbl.remove t.speculative file
    end;
    t.store_fetches <- t.store_fetches + 1;
    (match (t.scheme, t.tracker) with
    | Aggregating config, Some tracker -> (
        match Group_builder.build tracker ~group_size:config.group_size file with
        | _requested :: members -> insert_members t config members
        | [] -> assert false)
    | Plain _, _ -> ()
    | Aggregating _, None -> assert false);
    Server_miss
  end

let access t file =
  t.client_accesses <- t.client_accesses + 1;
  (* Cooperative clients piggy-back every access to the server's metadata,
     even the ones their own cache absorbs. *)
  (match (t.tracker, t.cooperative) with
  | Some tracker, true -> Tracker.observe tracker file
  | Some _, false | None, _ -> ());
  if Cache.access t.client file then Client_hit else serve t file

let metrics t =
  {
    Metrics.client_accesses = t.client_accesses;
    server_requests = t.server_requests;
    server_hits = t.server_hits;
    store_fetches = t.store_fetches;
    prefetch =
      {
        Metrics.issued = t.prefetch_issued;
        used = t.prefetch_used;
        evicted_unused = t.prefetch_evicted_unused;
      };
  }

let run t trace =
  Agg_trace.Trace.iter (fun (e : Agg_trace.Event.t) -> ignore (access t e.file)) trace;
  metrics t
