lib/cache/lfu.mli: Policy
