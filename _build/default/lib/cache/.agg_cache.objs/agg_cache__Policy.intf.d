lib/cache/policy.mli:
