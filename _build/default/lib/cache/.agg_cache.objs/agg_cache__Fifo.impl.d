lib/cache/fifo.ml: Agg_util Dlist Hashtbl Policy
