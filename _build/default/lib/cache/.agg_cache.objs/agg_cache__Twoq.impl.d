lib/cache/twoq.ml: Agg_util Dlist Hashtbl Policy Queue
