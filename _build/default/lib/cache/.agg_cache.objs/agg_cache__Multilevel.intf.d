lib/cache/multilevel.mli: Cache
