lib/cache/arc.ml: Agg_util Dlist Hashtbl List Policy
