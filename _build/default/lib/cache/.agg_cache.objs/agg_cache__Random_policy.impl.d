lib/cache/random_policy.ml: Agg_util Hashtbl Prng Vec
