lib/cache/belady.mli:
