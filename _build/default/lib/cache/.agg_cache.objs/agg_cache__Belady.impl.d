lib/cache/belady.ml: Array Hashtbl Set
