lib/cache/clock.ml: Array Hashtbl Policy
