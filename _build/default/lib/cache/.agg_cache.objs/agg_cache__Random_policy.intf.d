lib/cache/random_policy.mli: Policy
