lib/cache/policy.ml:
