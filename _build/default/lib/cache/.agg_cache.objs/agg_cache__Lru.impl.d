lib/cache/lru.ml: Agg_util Dlist Hashtbl Policy
