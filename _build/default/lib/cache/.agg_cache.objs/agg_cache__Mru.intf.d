lib/cache/mru.mli: Policy
