lib/cache/lfu.ml: Agg_util Hashtbl Heap List Option Policy
