lib/cache/multilevel.ml: Cache
