lib/cache/slru.mli: Policy
