lib/cache/mq.ml: Agg_util Array Dlist Hashtbl Option Policy Queue
