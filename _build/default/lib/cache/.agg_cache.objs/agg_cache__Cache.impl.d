lib/cache/cache.ml: Arc Clock Fifo Format Hashtbl Lfu List Lru Mq Mru Policy Random_policy Slru Twoq
