lib/cache/twoq.mli: Policy
