lib/cache/slru.ml: Agg_util Dlist Hashtbl Policy
