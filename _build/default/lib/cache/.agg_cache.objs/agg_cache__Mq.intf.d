lib/cache/mq.mli: Policy
