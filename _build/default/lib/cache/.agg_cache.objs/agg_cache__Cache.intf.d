lib/cache/cache.mli: Format
