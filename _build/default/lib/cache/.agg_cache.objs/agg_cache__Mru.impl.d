lib/cache/mru.ml: Agg_util Dlist Hashtbl Policy
