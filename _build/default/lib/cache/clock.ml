type slot = { mutable key : int; mutable referenced : bool; mutable occupied : bool }

type t = {
  capacity : int;
  slots : slot array;
  index : (int, int) Hashtbl.t; (* key -> slot number *)
  mutable hand : int;
  mutable size : int;
}

let policy_name = "clock"

let create ~capacity =
  if capacity <= 0 then invalid_arg "Clock.create: capacity must be positive";
  {
    capacity;
    slots = Array.init capacity (fun _ -> { key = 0; referenced = false; occupied = false });
    index = Hashtbl.create (2 * capacity);
    hand = 0;
    size = 0;
  }

let capacity t = t.capacity
let size t = t.size
let mem t key = Hashtbl.mem t.index key

let promote t key =
  match Hashtbl.find_opt t.index key with
  | Some i -> t.slots.(i).referenced <- true
  | None -> ()

let advance t = t.hand <- (t.hand + 1) mod t.capacity

(* Sweep the hand, giving second chances, until an unreferenced occupied
   slot is found. Terminates within two revolutions. *)
let rec find_victim t =
  let slot = t.slots.(t.hand) in
  if not slot.occupied then begin
    advance t;
    find_victim t
  end
  else if slot.referenced then begin
    slot.referenced <- false;
    advance t;
    find_victim t
  end
  else begin
    let at = t.hand in
    advance t;
    at
  end

let free_slot t =
  let rec scan i remaining =
    if remaining = 0 then None
    else if not t.slots.(i).occupied then Some i
    else scan ((i + 1) mod t.capacity) (remaining - 1)
  in
  scan t.hand t.capacity

let evict t =
  if t.size = 0 then None
  else begin
    let i = find_victim t in
    let victim = t.slots.(i).key in
    t.slots.(i).occupied <- false;
    Hashtbl.remove t.index victim;
    t.size <- t.size - 1;
    Some victim
  end

let insert t ~pos key =
  match Hashtbl.find_opt t.index key with
  | Some i ->
      t.slots.(i).referenced <- (match pos with Policy.Hot -> true | Policy.Cold -> false);
      None
  | None ->
      let slot_idx, victim =
        if t.size < t.capacity then (
          match free_slot t with
          | Some i -> (i, None)
          | None -> assert false (* size < capacity implies a free slot *))
        else
          let i = find_victim t in
          let old = t.slots.(i).key in
          Hashtbl.remove t.index old;
          t.size <- t.size - 1;
          (i, Some old)
      in
      let slot = t.slots.(slot_idx) in
      slot.key <- key;
      slot.occupied <- true;
      slot.referenced <- (match pos with Policy.Hot -> true | Policy.Cold -> false);
      Hashtbl.replace t.index key slot_idx;
      t.size <- t.size + 1;
      victim

let remove t key =
  match Hashtbl.find_opt t.index key with
  | Some i ->
      t.slots.(i).occupied <- false;
      t.slots.(i).referenced <- false;
      Hashtbl.remove t.index key;
      t.size <- t.size - 1
  | None -> ()

let contents t =
  Hashtbl.fold (fun key _ acc -> key :: acc) t.index []

let clear t =
  Array.iter
    (fun slot ->
      slot.occupied <- false;
      slot.referenced <- false)
    t.slots;
  Hashtbl.reset t.index;
  t.hand <- 0;
  t.size <- 0
