(** Random replacement: evicts a uniformly random resident key. The
    no-information baseline; deterministic given the seed. *)

include Policy.S

val create_seeded : capacity:int -> seed:int -> t
(** Like {!create} but with an explicit PRNG seed. *)
