(** Belady's offline-optimal replacement (MIN): evicts the resident key
    whose next use lies furthest in the future. Requires the whole access
    sequence up front; used as the unbeatable reference point in tests and
    ablations. *)

type result = { accesses : int; hits : int; misses : int }

val simulate : capacity:int -> int array -> result
(** [simulate ~capacity trace] replays [trace] through an optimal cache of
    [capacity] keys.
    @raise Invalid_argument when [capacity <= 0]. *)

val hit_rate : result -> float
