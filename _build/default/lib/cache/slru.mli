(** Segmented LRU (Karedla, Love & Wherry 1994): a probationary segment
    for new arrivals and a protected segment reserved for blocks hit at
    least twice. One hit promotes; eviction always takes the
    probationary LRU end first, so scan traffic cannot flush the
    protected working set. The protected segment is 2/3 of capacity. *)

include Policy.S

val protected_resident : t -> int -> bool
(** Whether a resident key currently sits in the protected segment. *)
