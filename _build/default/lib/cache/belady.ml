type result = { accesses : int; hits : int; misses : int }

module Next_use = Set.Make (struct
  type t = int * int (* (next use position, key); never = max_int *)

  let compare = compare
end)

let simulate ~capacity trace =
  if capacity <= 0 then invalid_arg "Belady.simulate: capacity must be positive";
  let n = Array.length trace in
  (* next.(i) is the position of the next access to trace.(i) after i, or
     max_int when there is none; computed by a backwards scan. *)
  let next = Array.make n max_int in
  let last_seen = Hashtbl.create 1024 in
  for i = n - 1 downto 0 do
    let key = trace.(i) in
    (match Hashtbl.find_opt last_seen key with
    | Some j -> next.(i) <- j
    | None -> next.(i) <- max_int);
    Hashtbl.replace last_seen key i
  done;
  let resident = Hashtbl.create (2 * capacity) in
  (* key -> its current (next use) entry in the eviction order *)
  let order = ref Next_use.empty in
  let hits = ref 0 in
  let misses = ref 0 in
  for i = 0 to n - 1 do
    let key = trace.(i) in
    let upcoming = next.(i) in
    (match Hashtbl.find_opt resident key with
    | Some current ->
        incr hits;
        order := Next_use.remove (current, key) !order
    | None ->
        incr misses;
        if Hashtbl.length resident >= capacity then begin
          (* Evict the key used furthest in the future. *)
          match Next_use.max_elt_opt !order with
          | Some ((_, victim) as entry) ->
              order := Next_use.remove entry !order;
              Hashtbl.remove resident victim
          | None -> assert false (* resident non-empty implies non-empty order *)
        end);
    Hashtbl.replace resident key upcoming;
    order := Next_use.add (upcoming, key) !order
  done;
  { accesses = n; hits = !hits; misses = !misses }

let hit_rate r = if r.accesses = 0 then 0.0 else float_of_int r.hits /. float_of_int r.accesses
