(** The 2Q policy (Johnson & Shasha, VLDB 1994), "full version": a small
    FIFO admission queue [A1in] filters one-hit wonders, a ghost queue
    [A1out] remembers recently evicted one-timers, and only keys that
    return while remembered enter the main LRU [Am]. Quotas follow the
    paper's tuning: A1in = 25 % of capacity, A1out = 50 % of capacity
    (ghost entries hold no data). *)

include Policy.S

val in_main : t -> int -> bool
(** Whether a resident key has been promoted to the main (Am) queue. *)
