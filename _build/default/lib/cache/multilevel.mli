(** Two-level (client → server) cache composition for plain policies.
    Demand accesses hit the client cache first; client misses are forwarded
    to the server cache. The aggregating variants live in [Agg_core]; this
    module provides the LRU/LFU/etc. reference hierarchy. *)

type t

val create : client:Cache.t -> server:Cache.t -> t
val client : t -> Cache.t
val server : t -> Cache.t

type outcome = Client_hit | Server_hit | Server_miss

val access : t -> int -> outcome
(** [access t key] simulates one demand access through both levels. On a
    client miss the key is (demand-)inserted at both levels, mirroring a
    read-through hierarchy. *)

val server_hit_rate : t -> float
(** Hit rate measured at the server: server hits over requests that reached
    the server. This is the quantity plotted in the paper's Figure 4. *)

val reset_stats : t -> unit
