(** First-in-first-out replacement: evicts in arrival order; accesses do
    not reorder anything. A baseline that isolates the value of recency. *)

include Policy.S
