type insert_position = Hot | Cold

module type S = sig
  type t

  val policy_name : string
  val create : capacity:int -> t
  val capacity : t -> int
  val size : t -> int
  val mem : t -> int -> bool
  val promote : t -> int -> unit
  val insert : t -> pos:insert_position -> int -> int option
  val evict : t -> int option
  val remove : t -> int -> unit
  val contents : t -> int list
  val clear : t -> unit
end
