(** ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST 2003). Two
    LRU lists, T1 (seen once recently) and T2 (seen at least twice), plus
    ghost lists B1/B2 remembering recent evictions from each; a hit in a
    ghost list moves the adaptation target [p] toward the list that would
    have kept it. Included in the policy zoo as the strongest adaptive
    single-level baseline: like MQ/SLRU/2Q it still cannot rescue a
    second-level cache whose recency signal was filtered away, which is
    the aggregating cache's territory. *)

include Policy.S

val target : t -> int
(** The current adaptation target for T1's size (for tests). *)

val in_t2 : t -> int -> bool
(** Whether a resident key is in the frequent (T2) list. *)
