(** Least-frequently-used replacement: evicts the resident key with the
    fewest accesses since it entered the cache (in-cache frequency), oldest
    first on ties. Speculative ([Cold]) insertions start at frequency zero,
    demanded ([Hot]) insertions at one. Amortised O(log n). *)

include Policy.S

val frequency : t -> int -> int option
(** [frequency t key] is the current in-cache access count of [key]. *)
