(** Most-recently-used replacement: evicts the key touched most recently.
    Pathological for temporal locality but strong on cyclic scans; kept as
    a contrast baseline. *)

include Policy.S
