type t = { client : Cache.t; server : Cache.t }

let create ~client ~server = { client; server }
let client t = t.client
let server t = t.server

type outcome = Client_hit | Server_hit | Server_miss

let access t key =
  if Cache.access t.client key then Client_hit
  else if Cache.access t.server key then Server_hit
  else Server_miss

let server_hit_rate t = Cache.hit_rate t.server

let reset_stats t =
  Cache.reset_stats t.client;
  Cache.reset_stats t.server
