(** The Multi-Queue (MQ) replacement policy of Zhou, Philbin & Li
    (USENIX ATC 2001) — the related-work answer (paper §5) to the same
    problem the aggregating server cache attacks: second-level buffer
    caches whose recency signal has been absorbed by upstream caches.

    MQ keeps [m] LRU queues; a block with reference count [c] lives in
    queue ⌊log2 c⌋ (capped), so frequently-referenced blocks sit in
    higher queues and survive longer. Blocks unreferenced for [lifetime]
    accesses are demoted one queue. A ghost buffer ([q_out]) remembers
    the reference counts of recently evicted blocks, so a block that
    returns soon regains its old frequency standing. *)

include Policy.S

val create_tuned : capacity:int -> queues:int -> lifetime:int -> ghost_factor:int -> t
(** [create_tuned] exposes MQ's parameters; {!create} uses the paper's
    defaults: 8 queues, lifetime = 4 × capacity (a stand-in for their
    adaptive peak-temporal-distance estimate), ghost buffer = 4 × capacity
    entries. *)

val queue_of : t -> int -> int option
(** The queue a resident key currently occupies (for tests). *)
