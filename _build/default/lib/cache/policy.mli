(** The replacement-policy interface shared by every cache simulated in
    this repository.

    Keys are plain integers (file identifiers). A policy owns only the
    *ordering* logic; hit/miss accounting lives in {!Cache}. The interface
    is deliberately finer-grained than [access]: the aggregating cache
    inserts speculative group members at the cold end of the recency order
    without recording an access, which requires separate [promote] and
    [insert] operations. *)

type insert_position =
  | Hot  (** the position a freshly demanded item gets (MRU head for LRU) *)
  | Cold  (** the next-to-evict end; used for speculative group members *)

module type S = sig
  type t

  val policy_name : string

  val create : capacity:int -> t
  (** [create ~capacity] is an empty cache holding at most [capacity] keys.
      @raise Invalid_argument when [capacity <= 0]. *)

  val capacity : t -> int
  val size : t -> int
  val mem : t -> int -> bool

  val promote : t -> int -> unit
  (** [promote t key] records an access to a resident [key] (e.g. moves it
      to the MRU position, bumps its frequency). No-op when absent. *)

  val insert : t -> pos:insert_position -> int -> int option
  (** [insert t ~pos key] makes [key] resident, evicting if full, and
      returns the evicted key, if any. Inserting a resident key only
      repositions it (never evicts) and returns [None]. *)

  val evict : t -> int option
  (** [evict t] forces out the policy's current victim and returns it;
      [None] when empty. Used to make room for a group before appending
      its members, so members do not evict one another. *)

  val remove : t -> int -> unit
  (** Drops [key] if resident. *)

  val contents : t -> int list
  (** Resident keys, hot end first where the policy has an order. *)

  val clear : t -> unit
end
