(** Least-recently-used replacement: evicts the key untouched for longest.
    O(1) for every operation. *)

include Policy.S
