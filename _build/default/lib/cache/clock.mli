(** CLOCK (second-chance) replacement: a one-bit approximation of LRU with
    a rotating hand, as used by most virtual-memory systems. *)

include Policy.S
