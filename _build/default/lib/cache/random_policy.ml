open Agg_util

type t = {
  capacity : int;
  keys : int Vec.t; (* dense array for O(1) random victim selection *)
  index : (int, int) Hashtbl.t; (* key -> position in [keys] *)
  prng : Prng.t;
}

let policy_name = "random"

let create_seeded ~capacity ~seed =
  if capacity <= 0 then invalid_arg "Random_policy.create: capacity must be positive";
  { capacity; keys = Vec.create (); index = Hashtbl.create (2 * capacity); prng = Prng.create ~seed () }

let create ~capacity = create_seeded ~capacity ~seed:0x5eed

let capacity t = t.capacity
let size t = Vec.length t.keys
let mem t key = Hashtbl.mem t.index key
let promote _t _key = ()

(* Swap-remove keeps the key array dense. *)
let remove_at t i =
  let last = Vec.length t.keys - 1 in
  let victim = Vec.get t.keys i in
  let moved = Vec.get t.keys last in
  Vec.set t.keys i moved;
  ignore (Vec.pop t.keys);
  if i <> last then Hashtbl.replace t.index moved i;
  Hashtbl.remove t.index victim;
  victim

let evict t = if size t = 0 then None else Some (remove_at t (Prng.int t.prng (size t)))

let insert t ~pos key =
  ignore pos;
  if Hashtbl.mem t.index key then None
  else begin
    let victim =
      if size t >= t.capacity then Some (remove_at t (Prng.int t.prng (size t))) else None
    in
    Hashtbl.replace t.index key (Vec.length t.keys);
    Vec.push t.keys key;
    victim
  end

let remove t key =
  match Hashtbl.find_opt t.index key with
  | Some i -> ignore (remove_at t i)
  | None -> ()

let contents t = Vec.to_list t.keys

let clear t =
  Vec.clear t.keys;
  Hashtbl.reset t.index
