let cover_of trace ~group_size =
  let graph = Agg_successor.Graph.of_trace trace in
  (graph, Agg_successor.Grouping.cover graph ~size:group_size)

(* files worth replicating: the top decile by access count *)
let hot_threshold graph =
  let counts =
    List.filter_map
      (fun file ->
        let c = Agg_successor.Graph.access_count graph file in
        if c > 0 then Some c else None)
      (Agg_successor.Graph.nodes graph)
  in
  let sorted = List.sort (fun a b -> compare b a) counts in
  let n = List.length sorted in
  if n = 0 then max_int else List.nth sorted (min (n - 1) (n / 10))

let by_groups ?(group_size = 8) ?(replicate_shared = false) trace =
  let disk = Disk.create () in
  let graph, cover = cover_of trace ~group_size in
  let threshold = if replicate_shared then hot_threshold graph else max_int in
  List.iter
    (fun group ->
      List.iter
        (fun file ->
          let already_placed = Disk.slots_of disk file <> [] in
          let replicate =
            replicate_shared && Agg_successor.Graph.access_count graph file >= threshold
          in
          if (not already_placed) || replicate then
            Disk.place disk file ~slot:(Disk.next_free_slot disk))
        group.Agg_successor.Grouping.members)
    cover;
  disk

(* Shared helper: place a ranked list of (item, members) organ-pipe style
   — hottest block in the centre, fanning out alternately. *)
let organ_pipe_blocks disk blocks =
  let widths = List.map (fun members -> List.length members) blocks in
  let total = List.fold_left ( + ) 0 widths in
  let centre = total / 2 in
  (* walk the ranked blocks, maintaining the left and right frontiers *)
  let left = ref centre and right = ref centre in
  List.iteri
    (fun rank members ->
      let width = List.length members in
      let go_right () =
        let base = !right in
        right := !right + width;
        base
      in
      let base =
        (* alternate sides; fall back to the right if the left frontier
           would underflow (uneven block widths) *)
        if rank land 1 = 0 || !left - width < 0 then go_right ()
        else begin
          left := !left - width;
          !left
        end
      in
      List.iteri (fun i file -> Disk.place disk file ~slot:(base + i)) members)
    blocks

let by_groups_organ_pipe ?(group_size = 8) trace =
  let disk = Disk.create () in
  let graph, cover = cover_of trace ~group_size in
  let weight group =
    List.fold_left
      (fun acc file -> acc + Agg_successor.Graph.access_count graph file)
      0 group.Agg_successor.Grouping.members
  in
  (* dedupe members across groups (first group keeps the file) so every
     file has exactly one slot *)
  let placed = Hashtbl.create 4096 in
  let blocks =
    List.map
      (fun group ->
        let fresh =
          List.filter
            (fun file ->
              if Hashtbl.mem placed file then false
              else begin
                Hashtbl.replace placed file ();
                true
              end)
            group.Agg_successor.Grouping.members
        in
        (weight group, fresh))
      cover
    |> List.filter (fun (_, members) -> members <> [])
    |> List.sort (fun (a, _) (b, _) -> compare b a)
    |> List.map snd
  in
  organ_pipe_blocks disk blocks;
  disk

(* hottest in the middle, fanning out alternately left and right *)
let organ_pipe trace =
  let disk = Disk.create () in
  let ranked = Agg_trace.Trace_stats.top_files trace ~k:max_int in
  organ_pipe_blocks disk (List.map (fun (file, _) -> [ file ]) ranked);
  disk

let first_touch trace =
  let disk = Disk.create () in
  Agg_trace.Trace.iter
    (fun (e : Agg_trace.Event.t) ->
      if Disk.slots_of disk e.Agg_trace.Event.file = [] then
        Disk.place disk e.Agg_trace.Event.file ~slot:(Disk.next_free_slot disk))
    trace;
  disk

let random ?(seed = 17) trace =
  let disk = Disk.create () in
  let files = ref [] in
  let seen = Hashtbl.create 1024 in
  Agg_trace.Trace.iter
    (fun (e : Agg_trace.Event.t) ->
      if not (Hashtbl.mem seen e.Agg_trace.Event.file) then begin
        Hashtbl.replace seen e.Agg_trace.Event.file ();
        files := e.Agg_trace.Event.file :: !files
      end)
    trace;
  let arr = Array.of_list !files in
  Agg_util.Prng.shuffle (Agg_util.Prng.create ~seed ()) arr;
  Array.iteri (fun slot file -> Disk.place disk file ~slot) arr;
  disk

let strategies =
  [
    ("groups", by_groups ?group_size:None ?replicate_shared:None);
    ("groups+replication", by_groups ~replicate_shared:true ?group_size:None);
    ("groups-organ-pipe", by_groups_organ_pipe ?group_size:None);
    ("organ-pipe", organ_pipe);
    ("first-touch", first_touch);
    ("random", random ?seed:None);
  ]
