type t = {
  slots : (int, int) Hashtbl.t; (* slot -> file *)
  replicas : (int, int list) Hashtbl.t; (* file -> slots *)
  mutable high_water : int; (* one past the highest occupied slot *)
}

let create () = { slots = Hashtbl.create 4096; replicas = Hashtbl.create 4096; high_water = 0 }

let place t file ~slot =
  if slot < 0 then invalid_arg "Disk.place: negative slot";
  if Hashtbl.mem t.slots slot then invalid_arg "Disk.place: slot already occupied";
  Hashtbl.replace t.slots slot file;
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.replicas file) in
  Hashtbl.replace t.replicas file (slot :: existing);
  if slot >= t.high_water then t.high_water <- slot + 1

let slots_of t file = Option.value ~default:[] (Hashtbl.find_opt t.replicas file)
let next_free_slot t = t.high_water
let placed_files t = Hashtbl.length t.replicas
let occupied_slots t = Hashtbl.length t.slots

type replay_stats = {
  accesses : int;
  total_seek : float;
  mean_seek : float;
  max_seek : int;
  allocated_on_the_fly : int;
}

let nearest head slots =
  List.fold_left
    (fun best slot ->
      match best with
      | None -> Some slot
      | Some b -> if abs (slot - head) < abs (b - head) then Some slot else best)
    None slots

let replay t files =
  let head = ref 0 in
  let total = ref 0.0 in
  let max_seek = ref 0 in
  let allocated = ref 0 in
  Array.iter
    (fun file ->
      let slot =
        match nearest !head (slots_of t file) with
        | Some slot -> slot
        | None ->
            (* cold file: allocate at the end of the device *)
            let slot = next_free_slot t in
            place t file ~slot;
            incr allocated;
            slot
      in
      let distance = abs (slot - !head) in
      total := !total +. float_of_int distance;
      if distance > !max_seek then max_seek := distance;
      head := slot)
    files;
  let n = Array.length files in
  {
    accesses = n;
    total_seek = !total;
    mean_seek = (if n = 0 then 0.0 else !total /. float_of_int n);
    max_seek = !max_seek;
    allocated_on_the_fly = !allocated;
  }

let pp_stats ppf s =
  Format.fprintf ppf "accesses=%d mean_seek=%.1f max_seek=%d total=%.0f allocated=%d" s.accesses
    s.mean_seek s.max_seek s.total_seek s.allocated_on_the_fly
