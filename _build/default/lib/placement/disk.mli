(** A one-dimensional storage device for placement experiments (paper
    §2.1 and future work: groups are collocated on storage to reduce
    access latency). Files occupy integer slots; the cost of an access is
    the head's travel distance to the file's slot. A file may be
    *replicated* into several slots — the §2.1 answer to popular files
    shared by many working sets — in which case the head reads the
    nearest replica. Files never seen by the layout are allocated at the
    end of the device on first access. *)

type t

val create : unit -> t

val place : t -> Agg_trace.File_id.t -> slot:int -> unit
(** Adds a replica of the file at [slot]. Slots may hold one file each;
    @raise Invalid_argument if [slot] is negative or already occupied. *)

val slots_of : t -> Agg_trace.File_id.t -> int list
(** All replica slots of a file (empty when never placed). *)

val next_free_slot : t -> int
(** One past the highest occupied slot. *)

val placed_files : t -> int
val occupied_slots : t -> int

type replay_stats = {
  accesses : int;
  total_seek : float;
  mean_seek : float;
  max_seek : int;
  allocated_on_the_fly : int;  (** files first seen during replay *)
}

val replay : t -> Agg_trace.File_id.t array -> replay_stats
(** Walks the head through the access sequence: each access seeks to the
    nearest replica of the file (allocating an end-of-device slot for
    unknown files) and the distances are accumulated. The device is
    mutated (on-the-fly allocations persist). *)

val pp_stats : Format.formatter -> replay_stats -> unit
