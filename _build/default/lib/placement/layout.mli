(** Layout strategies: each builds a {!Disk.t} from a training trace.

    - {!by_groups} lays covering groups out contiguously (the paper's
      placement application of grouping). With [replicate_shared], a file
      already placed by an earlier group is placed *again* inside the
      current one — §2.1's replication of popular shared files, trading
      space for locality.
    - {!organ_pipe} is the classic frequency placement (Wong 1980, the
      paper's [29]): the hottest file in the middle, the rest fanning out
      alternately — optimal under independent accesses.
    - {!first_touch} places files in order of first access.
    - {!random} is the no-information baseline. *)

val by_groups :
  ?group_size:int -> ?replicate_shared:bool -> Agg_trace.Trace.t -> Disk.t
(** Cover the relationship graph of the trace with groups (default size
    8) and assign slots group by group, anchors in cover order. With
    [replicate_shared], only *hot* shared files (top decile by access
    count) are duplicated into every group that contains them. *)

val by_groups_organ_pipe : ?group_size:int -> Agg_trace.Trace.t -> Disk.t
(** Organ-pipe at group granularity: covering groups stay contiguous
    (succession locality within a run) and whole groups fan out from the
    device centre by aggregate popularity (short travel between hot
    working sets) — grouping composed with the classic frequency
    placement rather than replacing it. *)

val organ_pipe : Agg_trace.Trace.t -> Disk.t
val first_touch : Agg_trace.Trace.t -> Disk.t
val random : ?seed:int -> Agg_trace.Trace.t -> Disk.t

val strategies : (string * (Agg_trace.Trace.t -> Disk.t)) list
(** Named defaults for sweeps: groups, groups+replication, organ-pipe,
    first-touch, random. *)
