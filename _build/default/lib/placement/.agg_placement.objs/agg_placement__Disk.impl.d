lib/placement/disk.ml: Array Format Hashtbl List Option
