lib/placement/layout.ml: Agg_successor Agg_trace Agg_util Array Disk Hashtbl List
