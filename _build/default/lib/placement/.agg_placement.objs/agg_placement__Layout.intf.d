lib/placement/layout.mli: Agg_trace Disk
