lib/placement/disk.mli: Agg_trace Format
