(* The benchmark harness: regenerates the data series behind every figure
   of the paper's evaluation (Figs. 3, 4, 5, 7, 8), the headline summary
   numbers, the design-choice ablations, the automated paper-vs-measured
   checks, and a set of Bechamel micro-benchmarks of the core operations.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe fig3 fig4       # a subset
     dune exec bench/main.exe micro           # only the micro-benchmarks
     dune exec bench/main.exe all --quick     # reduced event counts

   Output is deterministic (fixed seeds) apart from the micro-benchmark
   timings. *)

let settings quick =
  if quick then Agg_sim.Experiment.quick_settings else Agg_sim.Experiment.default_settings

let section title = Printf.printf "\n================ %s ================\n%!" title

(* --- figure sections -------------------------------------------------- *)

let run_workloads ~settings =
  section "Workload characterisation (the §4.1 view of the four traces)";
  let table =
    Agg_util.Table.create ~title:"synthetic stand-ins for mozart / ives / dvorak / barber"
      ~columns:
        [
          "workload"; "events"; "files"; "clients"; "write %"; "repeat %"; "H(L=1) bits";
          "H per-client"; "last-succ acc %";
        ]
  in
  List.iter
    (fun profile ->
      let trace =
        Agg_workload.Generator.generate ~seed:settings.Agg_sim.Experiment.seed
          ~events:settings.Agg_sim.Experiment.events profile
      in
      let stats = Agg_trace.Trace_stats.compute trace in
      let accuracy =
        Agg_baselines.Last_successor.measure (Agg_trace.Trace.files trace)
        |> Agg_baselines.Last_successor.accuracy_rate
      in
      Agg_util.Table.add_row table
        [
          profile.Agg_workload.Profile.name;
          string_of_int stats.Agg_trace.Trace_stats.events;
          string_of_int stats.Agg_trace.Trace_stats.distinct_files;
          string_of_int stats.Agg_trace.Trace_stats.clients;
          Printf.sprintf "%.1f" (100.0 *. stats.Agg_trace.Trace_stats.write_fraction);
          Printf.sprintf "%.1f" (100.0 *. stats.Agg_trace.Trace_stats.repeat_fraction);
          Printf.sprintf "%.2f" (Agg_entropy.Entropy.of_trace trace);
          Printf.sprintf "%.2f" (Agg_entropy.Entropy.per_client trace);
          Printf.sprintf "%.1f" (100.0 *. accuracy);
        ])
    Agg_workload.Profile.all;
  Agg_util.Table.print table

let run_fig3 ~settings =
  section "Fig. 3 — client demand fetches vs cache capacity (per group size)";
  Agg_sim.Experiment.print_figure (Agg_sim.Fig3.figure ~settings ())

let run_fig4 ~settings =
  section "Fig. 4 — server hit rate behind an intervening client cache";
  Agg_sim.Experiment.print_figure (Agg_sim.Fig4.figure ~settings ())

let run_fig5 ~settings =
  section "Fig. 5 — successor-list replacement quality (oracle / LRU / LFU)";
  Agg_sim.Experiment.print_figure (Agg_sim.Fig5.figure ~settings ())

let run_fig7 ~settings =
  section "Fig. 7 — successor entropy vs successor sequence length";
  Agg_sim.Experiment.print_figure (Agg_sim.Fig7.figure ~settings ())

let run_fig8 ~settings =
  section "Fig. 8 — successor entropy of LRU-filtered miss streams";
  Agg_sim.Experiment.print_figure (Agg_sim.Fig8.figure ~settings ())

let run_summary ~settings =
  section "Headline summary (abstract / conclusions numbers)";
  Agg_util.Table.print (Agg_sim.Summary.client_table (Agg_sim.Summary.client_rows ~settings ()));
  Agg_util.Table.print (Agg_sim.Summary.server_table (Agg_sim.Summary.server_rows ~settings ()))

let run_checks ~settings =
  section "Paper-vs-measured checks";
  let checks = Agg_sim.Report.run_all ~settings () in
  Agg_util.Table.print (Agg_sim.Report.table checks);
  Printf.printf "%s\n"
    (if Agg_sim.Report.all_pass checks then "ALL CHECKS PASS" else "SOME CHECKS FAILED")

let print_panel panel =
  Agg_util.Table.print (Agg_sim.Experiment.panel_table ~figure_id:"ablation" panel)

let run_ablations ~settings =
  section "Ablation A1 — group-member insertion position (paper: 'little effect')";
  print_panel (Agg_sim.Ablations.member_position ~settings Agg_workload.Profile.server);
  section "Ablation A2 — metadata policy: recency vs frequency, end to end";
  print_panel (Agg_sim.Ablations.metadata_policy ~settings Agg_workload.Profile.server);
  section "Ablation A3 — successor-list capacity (metadata budget)";
  print_panel (Agg_sim.Ablations.successor_capacity ~settings Agg_workload.Profile.server);
  section "Ablation A4 — aggregating cache vs probability-graph prefetching";
  print_panel (Agg_sim.Ablations.baselines ~settings Agg_workload.Profile.server);
  section "Ablation A5 — server metadata: miss stream vs cooperative clients";
  print_panel (Agg_sim.Ablations.cooperative ~settings Agg_workload.Profile.server);
  section "Ablation A6 — grouping vs second-level replacement (MQ / SLRU / 2Q / ARC)";
  print_panel (Agg_sim.Ablations.second_level_policies ~settings Agg_workload.Profile.server);
  section "Ablation A7 — successor-sequence tracking (the Fig. 6 model)";
  Agg_util.Table.print (Agg_sim.Ablations.sequence_model ~settings ());
  section "Ablation A8 — grouping for data placement (linear device seeks)";
  Agg_util.Table.print (Agg_sim.Ablations.placement ~settings Agg_workload.Profile.server);
  section "Ablation A9 — adaptive group sizing";
  Agg_util.Table.print (Agg_sim.Ablations.adaptive_group ~settings ());
  section "Ablation A10 — overlapping groups vs disjoint partition (§2.1)";
  Agg_util.Table.print (Agg_sim.Ablations.overlap_vs_partition ~settings Agg_workload.Profile.server);
  Agg_util.Table.print
    (Agg_sim.Ablations.overlap_vs_partition ~settings Agg_workload.Profile.workstation);
  section "Ablation A11 — server-side group-size sweep";
  print_panel (Agg_sim.Ablations.server_group_size ~settings Agg_workload.Profile.server);
  section "Predictor accuracy — recency vs frequency vs context";
  Agg_util.Table.print (Agg_sim.Ablations.predictor_accuracy ~settings ())

let run_latency ~settings =
  section "End-to-end latency (Fig. 2 path: client / network / server / disk)";
  let trace =
    Agg_workload.Generator.generate ~seed:settings.Agg_sim.Experiment.seed
      ~events:settings.Agg_sim.Experiment.events Agg_workload.Profile.server
  in
  List.iter
    (fun (cost_name, cost) ->
      let table =
        Agg_util.Table.create
          ~title:(Printf.sprintf "server workload, %s costs" cost_name)
          ~columns:
            [ "deployment"; "mean ms"; "p95 ms"; "rtts"; "files sent"; "disk reads"; "client hit %" ]
      in
      List.iter
        (fun deployment ->
          let config = { Agg_system.Path.default_config with deployment; cost } in
          let r = Agg_system.Path.run config trace in
          Agg_util.Table.add_row table
            [
              Agg_system.Path.deployment_name deployment;
              Printf.sprintf "%.3f" r.Agg_system.Path.mean_latency;
              Printf.sprintf "%.3f" r.Agg_system.Path.p95_latency;
              string_of_int r.Agg_system.Path.round_trips;
              string_of_int r.Agg_system.Path.files_transferred;
              string_of_int r.Agg_system.Path.disk_reads;
              Printf.sprintf "%.1f"
                (100.0 *. float_of_int r.Agg_system.Path.client_hits
                /. float_of_int r.Agg_system.Path.accesses);
            ])
        [ `Baseline; `Aggregating_client; `Aggregating_both ];
      Agg_util.Table.print table)
    [ ("LAN", Agg_system.Cost_model.lan); ("WAN", Agg_system.Cost_model.wan) ]

let run_fleet ~settings =
  section "Fleet — many clients, one server, write invalidation (users workload)";
  let trace =
    Agg_workload.Generator.generate ~seed:settings.Agg_sim.Experiment.seed
      ~events:settings.Agg_sim.Experiment.events Agg_workload.Profile.users
  in
  let table =
    Agg_util.Table.create ~title:"fleet size sweep (client caches 150 files, server 300)"
      ~columns:
        [ "clients"; "scheme"; "client hit %"; "server hit %"; "store fetches"; "invalidations" ]
  in
  List.iter
    (fun clients ->
      List.iter
        (fun (name, client_scheme, server_scheme) ->
          let config =
            { Agg_system.Fleet.default_config with clients; client_scheme; server_scheme }
          in
          let r = Agg_system.Fleet.run config trace in
          Agg_util.Table.add_row table
            [
              string_of_int clients;
              name;
              Printf.sprintf "%.1f" (100.0 *. Agg_system.Fleet.client_hit_rate r);
              Printf.sprintf "%.1f" (100.0 *. Agg_system.Fleet.server_hit_rate r);
              string_of_int r.Agg_system.Fleet.store_fetches;
              string_of_int r.Agg_system.Fleet.invalidations;
            ])
        [
          ( "plain",
            Agg_system.Fleet.Client_plain Agg_cache.Cache.Lru,
            Agg_system.Fleet.Server_plain Agg_cache.Cache.Lru );
          ( "aggregating",
            Agg_system.Fleet.Client_aggregating Agg_core.Config.default,
            Agg_system.Fleet.Server_aggregating Agg_core.Config.default );
        ])
    [ 1; 2; 4; 8; 16 ];
  Agg_util.Table.print table

(* --- Bechamel micro-benchmarks ------------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let files =
    Agg_workload.Generator.generate_files ~seed:7 ~events:20_000 Agg_workload.Profile.server
  in
  let n = Array.length files in
  (* Each staged closure carries its own cursor through the trace so the
     measured operation is one access. *)
  let cache_access kind =
    let cache = Agg_cache.Cache.create kind ~capacity:500 in
    let i = ref 0 in
    Staged.stage (fun () ->
        ignore (Agg_cache.Cache.access cache files.(!i));
        i := (!i + 1) mod n)
  in
  let tracker_observe =
    let tracker = Agg_successor.Tracker.create () in
    let i = ref 0 in
    Staged.stage (fun () ->
        Agg_successor.Tracker.observe tracker files.(!i);
        i := (!i + 1) mod n)
  in
  let group_build =
    let tracker = Agg_successor.Tracker.create () in
    Array.iter (Agg_successor.Tracker.observe tracker) files;
    let i = ref 0 in
    Staged.stage (fun () ->
        ignore (Agg_core.Group_builder.build tracker ~group_size:5 files.(!i));
        i := (!i + 1) mod n)
  in
  let agg_client_access =
    let client = Agg_core.Client_cache.create ~capacity:500 () in
    let i = ref 0 in
    Staged.stage (fun () ->
        ignore (Agg_core.Client_cache.access client files.(!i));
        i := (!i + 1) mod n)
  in
  [
    Test.make ~name:"lru-access" (cache_access Agg_cache.Cache.Lru);
    Test.make ~name:"lfu-access" (cache_access Agg_cache.Cache.Lfu);
    Test.make ~name:"clock-access" (cache_access Agg_cache.Cache.Clock);
    Test.make ~name:"tracker-observe" tracker_observe;
    Test.make ~name:"group-build-g5" group_build;
    Test.make ~name:"agg-client-access" agg_client_access;
    Test.make ~name:"entropy-20k-events"
      (Staged.stage (fun () -> ignore (Agg_entropy.Entropy.of_files files)));
    Test.make ~name:"generate-5k-events"
      (Staged.stage (fun () ->
           ignore
             (Agg_workload.Generator.generate_files ~seed:1 ~events:5_000
                Agg_workload.Profile.server)));
  ]

let run_micro () =
  section "Micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let grouped = Test.make_grouped ~name:"aggcache" (micro_tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Agg_util.Table.create ~title:"core operation costs"
      ~columns:[ "operation"; "time/op"; "r²" ]
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with Some (t :: _) -> t | Some [] | None -> Float.nan
      in
      let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square ols) in
      let time =
        if Float.is_nan estimate then "n/a"
        else if estimate > 1_000_000.0 then Printf.sprintf "%.2f ms" (estimate /. 1_000_000.0)
        else if estimate > 1_000.0 then Printf.sprintf "%.2f us" (estimate /. 1_000.0)
        else Printf.sprintf "%.1f ns" estimate
      in
      Agg_util.Table.add_row table [ name; time; Printf.sprintf "%.3f" r2 ])
    (List.sort (fun (a, _) (b, _) -> compare a b) rows);
  Agg_util.Table.print table

(* --- main ------------------------------------------------------------------ *)

let sections =
  [
    ("workloads", `Settings run_workloads);
    ("fig3", `Settings run_fig3);
    ("fig4", `Settings run_fig4);
    ("fig5", `Settings run_fig5);
    ("fig7", `Settings run_fig7);
    ("fig8", `Settings run_fig8);
    ("summary", `Settings run_summary);
    ("checks", `Settings run_checks);
    ("ablations", `Settings run_ablations);
    ("latency", `Settings run_latency);
    ("fleet", `Settings run_fleet);
    ("micro", `Plain run_micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let wanted = List.filter (fun a -> a <> "--quick") args in
  let wanted = if wanted = [] || List.mem "all" wanted then List.map fst sections else wanted in
  let settings = settings quick in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some (`Settings f) -> f ~settings
      | Some (`Plain f) -> f ()
      | None ->
          Printf.eprintf "unknown section %S (expected: %s | all | --quick)\n" name
            (String.concat " | " (List.map fst sections));
          exit 2)
    wanted
