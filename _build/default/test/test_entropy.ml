(* Tests for the successor-entropy metric (paper §4.5, Eq. 2). The
   crafted cases pin the definition exactly: conditional entropy of the
   next-L symbol given the file, access-weighted, over files occurring
   more than once, with truncated windows dropped. *)

open Agg_entropy

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

let repeat n pattern = Array.concat (List.init n (fun _ -> Array.of_list pattern))

let test_deterministic_cycle_is_zero () =
  let files = repeat 50 [ 1; 2; 3; 4 ] in
  check_float "L=1" 0.0 (Entropy.of_files ~length:1 files);
  check_float "L=3" 0.0 (Entropy.of_files ~length:3 files)

let test_two_way_split_is_half_bit_weighted () =
  (* pattern a b a c: successors of a are b and c with equal counts, so
     H(a) = 1 bit; b and c deterministically return to a, H = 0. The last
     event's window is truncated, so the weights are 200 (a), 100 (b) and
     99 (c): H_S = 200/399. *)
  let files = repeat 100 [ 0; 1; 0; 2 ] in
  check_float "H_S = 200/399" (200.0 /. 399.0) (Entropy.of_files ~length:1 files)

let test_single_occurrence_files_excluded () =
  (* an entirely non-repeating trace must NOT look predictable *)
  let files = Array.init 100 (fun i -> i) in
  check_float "no repeats -> 0 by convention" 0.0 (Entropy.of_files files);
  (* and mixing unique files into a predictable loop leaves the loop's
     entropy visible rather than averaging it away: each unique file
     perturbs the loop successors, so H > 0 but stays small *)
  let mixed = Array.concat [ repeat 50 [ 1; 2; 3 ]; Array.init 50 (fun i -> 100 + i) ] in
  let h = Entropy.of_files mixed in
  check_bool "perturbed loop small but positive" true (h >= 0.0 && h < 0.5)

let test_uniform_random_near_log_m () =
  let prng = Agg_util.Prng.create ~seed:9 () in
  let m = 8 in
  let files = Array.init 40000 (fun _ -> Agg_util.Prng.int prng m) in
  let h = Entropy.of_files files in
  check_bool "close to log2 m" true (h > 2.8 && h <= 3.01)

let test_entropy_bounded_by_log_successors () =
  (* H(f) can never exceed log2(distinct successors); with 2 successors
     per file the weighted average is at most 1 bit *)
  let files = repeat 200 [ 0; 1; 0; 2; 0; 1; 0; 2 ] in
  check_bool "bounded" true (Entropy.of_files files <= 1.0 +. 1e-9)

let test_longer_symbols_monotone_on_mixture () =
  (* mixing two interleavings makes longer symbols strictly less
     predictable; entropy must not decrease with L *)
  let prng = Agg_util.Prng.create ~seed:4 () in
  let parts =
    List.init 200 (fun _ ->
        if Agg_util.Prng.bool prng then [ 1; 2; 3; 4; 5 ] else [ 1; 3; 2; 5; 4 ])
  in
  let files = Array.concat (List.map Array.of_list parts) in
  let sweep = Entropy.sweep ~lengths:[ 1; 2; 4; 8 ] files in
  let rec non_decreasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && non_decreasing rest
    | _ -> true
  in
  check_bool "monotone in L" true (non_decreasing sweep)

let test_truncated_windows_dropped () =
  (* a trace shorter than the window contributes nothing *)
  check_float "too short" 0.0 (Entropy.of_files ~length:10 [| 1; 2; 1; 2 |]);
  check_float "empty" 0.0 (Entropy.of_files [||])

let test_invalid_length () =
  Alcotest.check_raises "length 0" (Invalid_argument "Entropy.of_files: length must be positive")
    (fun () -> ignore (Entropy.of_files ~length:0 [| 1 |]))

let test_of_trace_agrees () =
  let files = repeat 20 [ 3; 1; 4; 1; 5 ] in
  let trace = Agg_trace.Trace.of_files (Array.to_list files) in
  check_float "of_trace = of_files" (Entropy.of_files files) (Entropy.of_trace trace)

let test_per_file () =
  let files = repeat 50 [ 0; 1; 0; 2 ] in
  let rows = Entropy.per_file files in
  (* only file 0 repeats with multiple successors; 1 and 2 repeat too *)
  Alcotest.(check int) "three repeated files" 3 (List.length rows);
  List.iter
    (fun (file, occ, h) ->
      check_bool "occurrences >= 2" true (occ >= 2);
      if file = 0 then check_bool "H(0) = 1" true (Float.abs (h -. 1.0) < 1e-9)
      else check_bool "H = 0 for deterministic" true (Float.abs h < 1e-9))
    rows

let test_per_client_unscrambles_interleaving () =
  (* two deterministic cycles, one per client, interleaved: globally the
     successors alternate (H > 0); per client each stream is perfectly
     predictable (H = 0) *)
  (* cycle lengths 2 and 3 drift out of phase, so the *global* successor
     of each file varies while each client stream stays deterministic *)
  let trace = Agg_trace.Trace.create () in
  let c0 = [| 1; 2 |] and c1 = [| 10; 20; 30 |] in
  for i = 0 to 299 do
    Agg_trace.Trace.add_access trace ~client:0 c0.(i mod 2);
    Agg_trace.Trace.add_access trace ~client:1 c1.(i mod 3)
  done;
  check_bool "global entropy positive" true (Entropy.of_trace trace > 0.5);
  check_float "per-client entropy zero" 0.0 (Entropy.per_client trace)

let test_per_client_single_client_matches_global () =
  let trace =
    Agg_workload.Generator.generate ~seed:3 ~events:5000 Agg_workload.Profile.server
  in
  check_float "one client: identical" (Entropy.of_trace trace) (Entropy.per_client trace)

let test_filtered_sweep_shape () =
  let trace =
    Agg_workload.Generator.generate ~seed:3 ~events:5000 Agg_workload.Profile.workstation
  in
  let sweeps = Entropy.filtered_sweep ~filter_capacities:[ 5; 50 ] ~lengths:[ 1; 2 ] trace in
  Alcotest.(check int) "two capacities" 2 (List.length sweeps);
  List.iter
    (fun (capacity, sweep) ->
      check_bool "capacity echoed" true (capacity = 5 || capacity = 50);
      Alcotest.(check int) "two lengths" 2 (List.length sweep);
      List.iter (fun (_, h) -> check_bool "entropy non-negative" true (h >= 0.0)) sweep)
    sweeps

(* --- qcheck properties ----------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  let files_gen = list_of_size (Gen.int_range 10 500) (int_range 0 20) in
  [
    Test.make ~name:"entropy is non-negative and bounded by log2(distinct)" ~count:100 files_gen
      (fun files ->
        let arr = Array.of_list files in
        let h = Entropy.of_files arr in
        let distinct = List.length (List.sort_uniq compare files) in
        h >= 0.0 && h <= Agg_util.Stats.log2 (float_of_int (max 2 distinct)) +. 1e-9);
    Test.make ~name:"doubling a trace's repetitions cannot raise L=1 entropy much" ~count:50
      files_gen (fun files ->
        (* repeating the same sequence adds the wrap-around pair only *)
        let once = Array.of_list files in
        let twice = Array.append once once in
        Entropy.of_files twice <= Entropy.of_files once +. 1.0);
    Test.make ~name:"per_file rows all have >= 2 occurrences" ~count:100 files_gen (fun files ->
        List.for_all (fun (_, occ, h) -> occ >= 2 && h >= 0.0)
          (Entropy.per_file (Array.of_list files)));
  ]

let () =
  Alcotest.run "agg_entropy"
    [
      ( "crafted",
        [
          Alcotest.test_case "deterministic cycle" `Quick test_deterministic_cycle_is_zero;
          Alcotest.test_case "two-way split" `Quick test_two_way_split_is_half_bit_weighted;
          Alcotest.test_case "single occurrences excluded" `Quick
            test_single_occurrence_files_excluded;
          Alcotest.test_case "uniform random" `Quick test_uniform_random_near_log_m;
          Alcotest.test_case "bounded by successors" `Quick test_entropy_bounded_by_log_successors;
          Alcotest.test_case "monotone in symbol length" `Quick
            test_longer_symbols_monotone_on_mixture;
          Alcotest.test_case "truncated windows" `Quick test_truncated_windows_dropped;
          Alcotest.test_case "invalid length" `Quick test_invalid_length;
          Alcotest.test_case "of_trace agrees" `Quick test_of_trace_agrees;
          Alcotest.test_case "per_file" `Quick test_per_file;
          Alcotest.test_case "per-client unscrambles interleaving" `Quick
            test_per_client_unscrambles_interleaving;
          Alcotest.test_case "per-client single client" `Quick
            test_per_client_single_client_matches_global;
          Alcotest.test_case "filtered sweep shape" `Quick test_filtered_sweep_shape;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
