(* Tests for the placement substrate: the linear device model and the
   layout strategies. *)

open Agg_placement

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- Disk ----------------------------------------------------------------- *)

let test_disk_place_and_lookup () =
  let d = Disk.create () in
  Disk.place d 7 ~slot:3;
  Disk.place d 9 ~slot:0;
  Alcotest.(check (list int)) "slots of 7" [ 3 ] (Disk.slots_of d 7);
  Alcotest.(check (list int)) "unknown file" [] (Disk.slots_of d 42);
  check_int "next free" 4 (Disk.next_free_slot d);
  check_int "placed files" 2 (Disk.placed_files d);
  check_int "occupied slots" 2 (Disk.occupied_slots d)

let test_disk_rejects_conflicts () =
  let d = Disk.create () in
  Disk.place d 1 ~slot:5;
  Alcotest.check_raises "occupied" (Invalid_argument "Disk.place: slot already occupied")
    (fun () -> Disk.place d 2 ~slot:5);
  Alcotest.check_raises "negative" (Invalid_argument "Disk.place: negative slot") (fun () ->
      Disk.place d 2 ~slot:(-1))

let test_disk_replication_reads_nearest () =
  let d = Disk.create () in
  Disk.place d 1 ~slot:0;
  Disk.place d 1 ~slot:100;
  Disk.place d 2 ~slot:99;
  (* head 0 -> 1 reads slot 0 (cost 0); -> 2 seeks 99; -> 1 reads the
     nearby replica at 100 (cost 1, not 99) *)
  let stats = Disk.replay d [| 1; 2; 1 |] in
  check_float "total seek" 100.0 stats.Disk.total_seek;
  check_int "max seek" 99 stats.Disk.max_seek

let test_disk_replay_crafted_distances () =
  let d = Disk.create () in
  Disk.place d 1 ~slot:0;
  Disk.place d 2 ~slot:1;
  Disk.place d 3 ~slot:10;
  let stats = Disk.replay d [| 1; 2; 3; 2 |] in
  (* 0 -> 0 (0), -> 1 (1), -> 10 (9), -> 1 (9) *)
  check_float "total" 19.0 stats.Disk.total_seek;
  check_float "mean" (19.0 /. 4.0) stats.Disk.mean_seek;
  check_int "accesses" 4 stats.Disk.accesses;
  check_int "no cold allocations" 0 stats.Disk.allocated_on_the_fly

let test_disk_replay_allocates_cold_files () =
  let d = Disk.create () in
  Disk.place d 1 ~slot:0;
  let stats = Disk.replay d [| 1; 99; 99 |] in
  check_int "one allocation" 1 stats.Disk.allocated_on_the_fly;
  Alcotest.(check (list int)) "allocated at the end" [ 1 ] (Disk.slots_of d 99);
  (* the second access to 99 is then free *)
  check_float "seeks: 0 + 1 + 0" 1.0 stats.Disk.total_seek

(* --- Layouts -------------------------------------------------------------- *)

let training_trace () =
  (* two hot runs plus a cold tail, enough structure for every layout *)
  let runs = [ [ 1; 2; 3; 4 ]; [ 5; 6; 7 ] ] in
  let trace = Agg_trace.Trace.create () in
  for _ = 1 to 30 do
    List.iter (fun run -> List.iter (Agg_trace.Trace.add_access trace) run) runs
  done;
  List.iter (Agg_trace.Trace.add_access trace) [ 100; 101; 102 ];
  trace

let all_files trace =
  let seen = Hashtbl.create 64 in
  Agg_trace.Trace.iter (fun (e : Agg_trace.Event.t) -> Hashtbl.replace seen e.Agg_trace.Event.file ()) trace;
  Hashtbl.fold (fun f () acc -> f :: acc) seen []

let test_layouts_place_every_file_once () =
  let trace = training_trace () in
  let files = all_files trace in
  List.iter
    (fun (name, build) ->
      let d = build trace in
      List.iter
        (fun file ->
          let replicas = List.length (Disk.slots_of d file) in
          if name = "groups+replication" then
            check_bool (name ^ " places every file") true (replicas >= 1)
          else check_int (Printf.sprintf "%s places f%d once" name file) 1 replicas)
        files)
    Layout.strategies

let test_group_layout_keeps_runs_contiguous () =
  let trace = training_trace () in
  let d = Layout.by_groups ~group_size:4 trace in
  (* the strongest group anchors the hottest run; its members must sit in
     adjacent slots *)
  let slots = List.concat_map (fun f -> Disk.slots_of d f) [ 1; 2; 3; 4 ] in
  let sorted = List.sort compare slots in
  match (sorted, List.rev sorted) with
  | lo :: _, hi :: _ -> check_bool "run within a tight band" true (hi - lo < 8)
  | _ -> Alcotest.fail "missing slots"

let test_organ_pipe_centres_hottest () =
  let trace = Agg_trace.Trace.of_files (List.concat (List.init 10 (fun _ -> [ 1; 1; 1; 2; 3 ]))) in
  let d = Layout.organ_pipe trace in
  let pos f = List.hd (Disk.slots_of d f) in
  (* 1 is the hottest: its slot must lie between the others *)
  check_bool "hottest central" true
    (min (pos 2) (pos 3) <= pos 1 || pos 1 <= max (pos 2) (pos 3));
  let span = Disk.occupied_slots d in
  check_int "compact" 3 span

let test_first_touch_order () =
  let trace = Agg_trace.Trace.of_files [ 9; 4; 9; 7 ] in
  let d = Layout.first_touch trace in
  Alcotest.(check (list int)) "9 first" [ 0 ] (Disk.slots_of d 9);
  Alcotest.(check (list int)) "4 second" [ 1 ] (Disk.slots_of d 4);
  Alcotest.(check (list int)) "7 third" [ 2 ] (Disk.slots_of d 7)

let test_random_layout_deterministic () =
  let trace = training_trace () in
  let a = Layout.random ~seed:3 trace in
  let b = Layout.random ~seed:3 trace in
  List.iter
    (fun f -> Alcotest.(check (list int)) "same slots" (Disk.slots_of a f) (Disk.slots_of b f))
    (all_files trace)

let test_group_layouts_beat_random_on_runs () =
  let trace = training_trace () in
  let replay = Agg_trace.Trace.files trace in
  let mean build =
    let d = build trace in
    (Disk.replay d (Array.copy replay)).Disk.mean_seek
  in
  let grouped = mean (Layout.by_groups ?group_size:None ?replicate_shared:None) in
  let organ_grouped = mean (Layout.by_groups_organ_pipe ?group_size:None) in
  let rand = mean (Layout.random ~seed:11) in
  check_bool "groups beat random" true (grouped < rand);
  check_bool "organ-pipe groups beat random" true (organ_grouped < rand)

let qcheck_tests =
  let open QCheck in
  let files_gen = list_of_size (Gen.int_range 10 200) (int_range 0 25) in
  [
    Test.make ~name:"every strategy places every trained file" ~count:40 files_gen (fun files ->
        let trace = Agg_trace.Trace.of_files files in
        List.for_all
          (fun (_, build) ->
            let d = build trace in
            List.for_all (fun f -> Disk.slots_of d f <> []) (List.sort_uniq compare files))
          Layout.strategies);
    Test.make ~name:"replay accounting" ~count:40 files_gen (fun files ->
        let trace = Agg_trace.Trace.of_files files in
        let d = Layout.first_touch trace in
        let stats = Disk.replay d (Array.of_list files) in
        stats.Disk.accesses = List.length files
        && stats.Disk.total_seek >= 0.0
        && stats.Disk.mean_seek <= float_of_int (max 1 stats.Disk.max_seek));
  ]

let () =
  Alcotest.run "agg_placement"
    [
      ( "disk",
        [
          Alcotest.test_case "place and lookup" `Quick test_disk_place_and_lookup;
          Alcotest.test_case "rejects conflicts" `Quick test_disk_rejects_conflicts;
          Alcotest.test_case "replication reads nearest" `Quick test_disk_replication_reads_nearest;
          Alcotest.test_case "crafted distances" `Quick test_disk_replay_crafted_distances;
          Alcotest.test_case "allocates cold files" `Quick test_disk_replay_allocates_cold_files;
        ] );
      ( "layouts",
        [
          Alcotest.test_case "place every file once" `Quick test_layouts_place_every_file_once;
          Alcotest.test_case "runs contiguous" `Quick test_group_layout_keeps_runs_contiguous;
          Alcotest.test_case "organ pipe centres hottest" `Quick test_organ_pipe_centres_hottest;
          Alcotest.test_case "first touch order" `Quick test_first_touch_order;
          Alcotest.test_case "random deterministic" `Quick test_random_layout_deterministic;
          Alcotest.test_case "groups beat random" `Quick test_group_layouts_beat_random_on_runs;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
