(* Tests for the successor-metadata layer: bounded successor lists under
   both replacement policies, the tracker, the oracle, the relationship
   graph, and covering-set group construction. *)

open Agg_successor

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_list = Alcotest.(check (list int))

let feed list successors = List.iter (Successor_list.observe list) successors

(* --- Successor_list, Recency ----------------------------------------- *)

let test_recency_order () =
  let l = Successor_list.create ~capacity:3 ~policy:Successor_list.Recency in
  feed l [ 1; 2; 3 ];
  check_list "most recent first" [ 3; 2; 1 ] (Successor_list.ranked l);
  check_bool "top" true (Successor_list.top l = Some 3)

let test_recency_eviction () =
  let l = Successor_list.create ~capacity:2 ~policy:Successor_list.Recency in
  feed l [ 1; 2; 3 ];
  check_bool "1 evicted" false (Successor_list.mem l 1);
  check_list "kept" [ 3; 2 ] (Successor_list.ranked l)

let test_recency_rereference () =
  let l = Successor_list.create ~capacity:3 ~policy:Successor_list.Recency in
  feed l [ 1; 2; 3; 1 ];
  check_list "1 moved to front" [ 1; 3; 2 ] (Successor_list.ranked l);
  check_int "size" 3 (Successor_list.size l)

(* --- Successor_list, Frequency ---------------------------------------- *)

let test_frequency_ranking () =
  let l = Successor_list.create ~capacity:3 ~policy:Successor_list.Frequency in
  feed l [ 1; 2; 2; 3; 2; 1 ];
  check_list "by count" [ 2; 1; 3 ] (Successor_list.ranked l);
  check_bool "top" true (Successor_list.top l = Some 2)

let test_frequency_incumbent_protection () =
  let l = Successor_list.create ~capacity:1 ~policy:Successor_list.Frequency in
  feed l [ 5; 5; 5 ];
  (* a single new observation must not displace a count-3 incumbent *)
  Successor_list.observe l 9;
  check_bool "incumbent kept" true (Successor_list.mem l 5);
  check_bool "newcomer rejected" false (Successor_list.mem l 9);
  (* but once the newcomer's full count overtakes, it enters *)
  feed l [ 9; 9; 9 ];
  check_bool "newcomer finally wins" true (Successor_list.mem l 9);
  check_bool "old evicted" false (Successor_list.mem l 5)

let test_frequency_tie_breaks_recent () =
  let l = Successor_list.create ~capacity:1 ~policy:Successor_list.Frequency in
  feed l [ 5 ];
  (* count(9) reaches count(5) = 1; most recent wins the tie *)
  Successor_list.observe l 9;
  check_bool "tie goes to most recent" true (Successor_list.mem l 9)

let test_list_capacity_validation () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Successor_list.create: capacity must be positive") (fun () ->
      ignore (Successor_list.create ~capacity:0 ~policy:Successor_list.Recency))

(* --- Tracker ------------------------------------------------------------ *)

let observe_all tracker files = List.iter (fun f -> Tracker.observe tracker f) files

let test_tracker_successions () =
  let t = Tracker.create () in
  observe_all t [ 1; 2; 3; 1; 2 ];
  check_list "successors of 1" [ 2 ] (Tracker.successors t 1);
  check_list "successors of 2" [ 3 ] (Tracker.successors t 2);
  check_bool "top of 3" true (Tracker.top_successor t 3 = Some 1);
  check_bool "unknown file" true (Tracker.successors t 99 = [])

let test_tracker_recency_ranking () =
  let t = Tracker.create () in
  observe_all t [ 1; 2; 1; 3 ];
  (* 1 was followed by 2, then by 3: recency ranks 3 first *)
  check_list "recent first" [ 3; 2 ] (Tracker.successors t 1)

let test_tracker_transitive_chain () =
  let t = Tracker.create () in
  for _ = 1 to 3 do
    observe_all t [ 10; 11; 12; 13; 14 ]
  done;
  check_list "chain" [ 11; 12; 13 ] (Tracker.transitive_successors t 10 ~length:3);
  (* repeated runs wrap 14 -> 10, so a long chain walks the whole cycle
     and stops when every file is already in it *)
  check_list "chain stops at the cycle" [ 13; 14; 10; 11 ]
    (Tracker.transitive_successors t 12 ~length:10);
  (* a file with no recorded successor ends the chain immediately *)
  let fresh = Tracker.create () in
  observe_all fresh [ 1; 2 ];
  check_list "no successor data" [] (Tracker.transitive_successors fresh 2 ~length:4)

let test_tracker_chain_cycle_stops () =
  let t = Tracker.create () in
  for _ = 1 to 3 do
    observe_all t [ 1; 2; 1; 2 ]
  done;
  (* successors: 1 -> 2, 2 -> 1; the chain must stop at the cycle *)
  check_list "cycle" [ 2 ] (Tracker.transitive_successors t 1 ~length:5)

let test_tracker_per_client_contexts () =
  let t = Tracker.create ~per_client:true () in
  (* interleaved: client 0 runs 1,2 and client 1 runs 7,8; the global
     order is 1,7,2,8 which would record bogus 1->7 and 2->8 pairs *)
  Tracker.observe t ~client:0 1;
  Tracker.observe t ~client:1 7;
  Tracker.observe t ~client:0 2;
  Tracker.observe t ~client:1 8;
  check_list "client 0 succession" [ 2 ] (Tracker.successors t 1);
  check_list "client 1 succession" [ 8 ] (Tracker.successors t 7);
  check_bool "no cross-client pair" true (Tracker.successors t 2 = [])

let test_tracker_global_context_mixes () =
  let t = Tracker.create () in
  Tracker.observe t ~client:0 1;
  Tracker.observe t ~client:1 7;
  (* with a single global context the cross-client pair is recorded *)
  check_list "global pair" [ 7 ] (Tracker.successors t 1)

let test_tracker_reset_context () =
  let t = Tracker.create () in
  observe_all t [ 1 ];
  Tracker.reset_context t;
  observe_all t [ 5 ];
  check_bool "no 1->5 pair across reset" true (Tracker.successors t 1 = [])

let test_tracker_capacity_respected () =
  let t = Tracker.create ~capacity:2 () in
  observe_all t [ 1; 2; 1; 3; 1; 4; 1 ];
  check_int "at most 2 successors" 2 (List.length (Tracker.successors t 1))

let test_tracker_tracked_files () =
  let t = Tracker.create () in
  observe_all t [ 1; 2; 3 ];
  (* 1 and 2 gained successors; 3 has none yet *)
  check_int "tracked" 2 (Tracker.tracked_files t)

(* --- Sequence_tracker (the Fig. 6 model) ---------------------------------- *)

let test_sequence_tracker_commits_windows () =
  let t = Sequence_tracker.create ~length:3 () in
  List.iter (Sequence_tracker.observe t) [ 1; 2; 3; 4; 5 ];
  (* windows complete for 1 (2,3,4) and 2 (3,4,5) *)
  Alcotest.(check (list (list int))) "symbol of 1" [ [ 2; 3; 4 ] ] (Sequence_tracker.sequences t 1);
  Alcotest.(check (list (list int))) "symbol of 2" [ [ 3; 4; 5 ] ] (Sequence_tracker.sequences t 2);
  check_bool "3's window incomplete" true (Sequence_tracker.sequences t 3 = [])

let test_sequence_tracker_recency_and_dedup () =
  let t = Sequence_tracker.create ~capacity:2 ~length:1 () in
  List.iter (Sequence_tracker.observe t) [ 1; 2; 1; 3; 1; 2; 1; 4 ];
  (* successor symbols of 1 in order: [2]; [3]; [2]; [4] — dedup + recency
     with capacity 2 leaves [4] then [2] *)
  Alcotest.(check (list (list int))) "ranked" [ [ 4 ]; [ 2 ] ] (Sequence_tracker.sequences t 1);
  check_bool "predict most recent" true (Sequence_tracker.predict t 1 = Some [ 4 ])

let test_sequence_tracker_capacity_bound () =
  let t = Sequence_tracker.create ~capacity:3 ~length:1 () in
  for successor = 10 to 30 do
    Sequence_tracker.observe t 1;
    Sequence_tracker.observe t successor
  done;
  check_bool "at most 3 symbols" true (List.length (Sequence_tracker.sequences t 1) <= 3)

let test_sequence_tracker_measure_cycle () =
  let files = Array.init 400 (fun i -> i mod 4) in
  let a1 = Sequence_tracker.measure ~length:1 files in
  let a4 = Sequence_tracker.measure ~length:4 files in
  (* a strict cycle: both models converge to perfect prediction *)
  check_bool "L=1 near perfect" true
    (a1.Sequence_tracker.full_matches > (9 * a1.Sequence_tracker.opportunities) / 10);
  check_bool "L=4 near perfect on a cycle" true
    (a4.Sequence_tracker.full_matches > (9 * a4.Sequence_tracker.opportunities) / 10)

let test_sequence_tracker_longer_is_harder () =
  (* alternate two orderings: full 4-sequences rarely repeat, single
     successors still often do *)
  let prng = Agg_util.Prng.create ~seed:3 () in
  let blocks =
    List.init 300 (fun _ ->
        if Agg_util.Prng.bool prng then [ 1; 2; 3; 4; 5 ] else [ 1; 2; 5; 3; 4 ])
  in
  let files = Array.of_list (List.concat blocks) in
  let rate (a : Sequence_tracker.accuracy) =
    Agg_util.Stats.ratio a.Sequence_tracker.full_matches a.Sequence_tracker.opportunities
  in
  let a1 = Sequence_tracker.measure ~length:1 files in
  let a4 = Sequence_tracker.measure ~length:4 files in
  check_bool "L=1 beats L=4 full-match" true (rate a1 > rate a4)

let test_sequence_tracker_invalid () =
  Alcotest.check_raises "length 0"
    (Invalid_argument "Sequence_tracker.create: length must be positive") (fun () ->
      ignore (Sequence_tracker.create ~length:0 ()));
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Sequence_tracker.create: capacity must be positive") (fun () ->
      ignore (Sequence_tracker.create ~capacity:0 ~length:1 ()))

(* --- Oracle -------------------------------------------------------------- *)

let test_oracle () =
  let o = Oracle.create () in
  check_bool "unknown" false (Oracle.mem o ~file:1 ~successor:2);
  Oracle.observe o ~file:1 ~successor:2;
  Oracle.observe o ~file:1 ~successor:3;
  Oracle.observe o ~file:1 ~successor:2;
  check_bool "remembers all" true
    (Oracle.mem o ~file:1 ~successor:2 && Oracle.mem o ~file:1 ~successor:3);
  check_int "distinct successors" 2 (Oracle.successor_count o 1);
  check_int "unknown file" 0 (Oracle.successor_count o 9)

(* --- Graph ------------------------------------------------------------------ *)

let test_graph_of_trace () =
  let trace = Agg_trace.Trace.of_files [ 1; 2; 3; 1; 2; 4 ] in
  let g = Graph.of_trace trace in
  check_int "weight 1->2" 2 (Graph.weight g ~src:1 ~dst:2);
  check_int "weight 2->3" 1 (Graph.weight g ~src:2 ~dst:3);
  check_int "absent edge" 0 (Graph.weight g ~src:3 ~dst:2);
  check_int "out degree of 2" 2 (Graph.out_degree g 2);
  check_int "nodes" 4 (Graph.node_count g);
  (* distinct edges: 1->2, 2->3, 3->1, 2->4 *)
  check_int "edges" 4 (Graph.edge_count g);
  check_int "access count" 2 (Graph.access_count g 2)

let test_graph_strength_order () =
  let trace = Agg_trace.Trace.of_files [ 1; 2; 1; 2; 1; 3 ] in
  let g = Graph.of_trace trace in
  Alcotest.(check (list (pair int int)))
    "strongest first"
    [ (2, 2); (3, 1) ]
    (Graph.successors_by_strength g 1)

let test_graph_deterministic_ties () =
  let g = Graph.create () in
  Graph.add_observation g ~src:1 ~dst:5;
  Graph.add_observation g ~src:1 ~dst:3;
  (* equal weights: smaller id first, so iteration order is stable *)
  Alcotest.(check (list (pair int int)))
    "tie break by id"
    [ (3, 1); (5, 1) ]
    (Graph.successors_by_strength g 1)

let test_graph_iter_edges () =
  let g = Graph.create () in
  Graph.add_observation g ~src:1 ~dst:2;
  Graph.add_observation g ~src:1 ~dst:2;
  Graph.add_observation g ~src:2 ~dst:3;
  let total = ref 0 in
  Graph.iter_edges g (fun ~src:_ ~dst:_ ~weight -> total := !total + weight);
  check_int "sum of weights" 3 !total

(* --- Grouping ----------------------------------------------------------------- *)

(* The Fig. 1 example: B's most likely successor is C, then D. *)
let fig1_graph () =
  let g = Graph.create () in
  let edge src dst w =
    for _ = 1 to w do
      Graph.add_observation g ~src:(Char.code src) ~dst:(Char.code dst)
    done
  in
  edge 'B' 'C' 3;
  edge 'B' 'D' 2;
  edge 'C' 'D' 2;
  edge 'D' 'E' 3;
  edge 'E' 'G' 2;
  edge 'A' 'B' 3;
  g

let char_graph_group g size anchor = (Grouping.group_of g ~size (Char.code anchor)).Grouping.members

let test_group_of_immediate () =
  let g = fig1_graph () in
  (* helpers below encode chars as ints *)
  let b = Char.code 'B' and c = Char.code 'C' and d = Char.code 'D' in
  Alcotest.(check (list int)) "B with top-2" [ b; c; d ] (char_graph_group g 3 'B')

let test_group_of_transitive_extension () =
  let g = fig1_graph () in
  let a = Char.code 'A' and b = Char.code 'B' and c = Char.code 'C' and d = Char.code 'D' in
  (* A has a single successor; a group of 4 must chain through B *)
  Alcotest.(check (list int)) "A chains" [ a; b; c; d ] (char_graph_group g 4 'A')

let test_group_of_size_one () =
  let g = fig1_graph () in
  Alcotest.(check (list int)) "singleton" [ Char.code 'G' ] (char_graph_group g 1 'G')

let test_group_of_invalid () =
  Alcotest.check_raises "size 0" (Invalid_argument "Grouping.group_of: size must be positive")
    (fun () -> ignore (Grouping.group_of (fig1_graph ()) ~size:0 1))

let test_cover_covers_all_nodes () =
  let trace = Agg_trace.Trace.of_files [ 1; 2; 3; 4; 5; 1; 2; 3; 6; 7 ] in
  let g = Graph.of_trace trace in
  let cover = Grouping.cover g ~size:3 in
  let covered = Hashtbl.create 16 in
  List.iter (fun grp -> List.iter (fun m -> Hashtbl.replace covered m ()) grp.Grouping.members) cover;
  List.iter
    (fun node -> check_bool (Printf.sprintf "node %d covered" node) true (Hashtbl.mem covered node))
    (Graph.nodes g)

let test_cover_allows_overlap () =
  (* a hot shared file (0) read inside two distinct working sets: with
     overlapping groups it may appear in both; disjoint partitioning
     would forbid this (paper §2.1's make/shell example) *)
  let runs = [ [ 1; 0; 2 ]; [ 3; 0; 4 ] ] in
  let trace = Agg_trace.Trace.of_files (List.concat (List.concat_map (fun r -> [ r; r; r ]) runs)) in
  let g = Graph.of_trace trace in
  let cover = Grouping.cover g ~size:3 in
  let memberships =
    List.length
      (List.filter (fun grp -> List.mem 0 grp.Grouping.members) cover)
  in
  check_bool "shared file in at least one group" true (memberships >= 1);
  let stats = Grouping.cover_stats cover in
  check_bool "cover is not a partition" true (stats.Grouping.overlapping_nodes >= 0);
  check_int "all nodes covered" (Graph.node_count g) stats.Grouping.covered_nodes

let test_partition_is_disjoint () =
  let trace = Agg_trace.Trace.of_files [ 1; 2; 3; 4; 5; 1; 2; 3; 6; 7; 1; 2 ] in
  let g = Graph.of_trace trace in
  let partition = Grouping.partition g ~size:3 in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun group ->
      List.iter
        (fun m ->
          check_bool (Printf.sprintf "f%d appears once" m) false (Hashtbl.mem seen m);
          Hashtbl.replace seen m ())
        group.Grouping.members)
    partition;
  (* and it still covers every node *)
  List.iter (fun node -> check_bool "covered" true (Hashtbl.mem seen node)) (Graph.nodes g)

let test_partition_steals_shared_file () =
  (* the §2.1 scenario: 0 is shared by two working sets; a partition can
     give it to only one of them *)
  let runs = List.concat (List.init 20 (fun _ -> [ [ 1; 0; 2 ]; [ 3; 0; 4 ] ])) in
  let trace = Agg_trace.Trace.of_files (List.concat runs) in
  let g = Graph.of_trace trace in
  let partition = Grouping.partition g ~size:3 in
  let owners =
    List.length (List.filter (fun grp -> List.mem 0 grp.Grouping.members) partition)
  in
  check_int "exactly one owner under partition" 1 owners;
  (* while anchored overlapping groups give each working set its own view *)
  let grp1 = Grouping.group_of g ~size:3 1 in
  let grp3 = Grouping.group_of g ~size:3 3 in
  check_bool "both anchored groups contain the shared file" true
    (List.mem 0 grp1.Grouping.members && List.mem 0 grp3.Grouping.members)

let test_membership () =
  let groups =
    [ { Grouping.anchor = 1; members = [ 1; 2 ] }; { Grouping.anchor = 3; members = [ 3; 2 ] } ]
  in
  let table = Grouping.membership groups in
  check_bool "1 in first" true ((Hashtbl.find table 1).Grouping.anchor = 1);
  check_bool "2 kept by first group" true ((Hashtbl.find table 2).Grouping.anchor = 1);
  check_bool "3 in second" true ((Hashtbl.find table 3).Grouping.anchor = 3)

let test_cover_stats () =
  let groups =
    [ { Grouping.anchor = 1; members = [ 1; 2; 3 ] }; { Grouping.anchor = 4; members = [ 4; 2 ] } ]
  in
  let s = Grouping.cover_stats groups in
  check_int "groups" 2 s.Grouping.groups;
  check_int "covered" 4 s.Grouping.covered_nodes;
  check_int "overlapping" 1 s.Grouping.overlapping_nodes;
  check_int "max memberships" 2 s.Grouping.max_memberships;
  Alcotest.(check (float 1e-9)) "mean size" 2.5 s.Grouping.mean_group_size

(* --- qcheck properties ----------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  let files_gen = list_of_size (Gen.int_range 10 200) (int_range 0 25) in
  [
    Test.make ~name:"successor lists never exceed capacity" ~count:100
      (pair files_gen (int_range 1 6))
      (fun (successors, capacity) ->
        List.for_all
          (fun policy ->
            let l = Successor_list.create ~capacity ~policy in
            List.iter (Successor_list.observe l) successors;
            Successor_list.size l <= capacity
            && List.length (Successor_list.ranked l) = Successor_list.size l)
          [ Successor_list.Recency; Successor_list.Frequency ]);
    Test.make ~name:"transitive successors contain no duplicates and not the root" ~count:100
      (pair files_gen (int_range 1 10))
      (fun (files, length) ->
        let t = Tracker.create () in
        List.iter (fun f -> Tracker.observe t f) files;
        List.for_all
          (fun root ->
            let chain = Tracker.transitive_successors t root ~length in
            List.length chain <= length
            && (not (List.mem root chain))
            && List.length (List.sort_uniq compare chain) = List.length chain)
          (List.sort_uniq compare files));
    Test.make ~name:"cover always covers every node" ~count:60
      (pair files_gen (int_range 1 6))
      (fun (files, size) ->
        let g = Graph.of_trace (Agg_trace.Trace.of_files files) in
        let cover = Grouping.cover g ~size in
        let covered = Hashtbl.create 64 in
        List.iter
          (fun grp -> List.iter (fun m -> Hashtbl.replace covered m ()) grp.Grouping.members)
          cover;
        List.for_all (Hashtbl.mem covered) (Graph.nodes g));
    Test.make ~name:"groups respect the size bound and start with the anchor" ~count:60
      (pair files_gen (int_range 1 6))
      (fun (files, size) ->
        let g = Graph.of_trace (Agg_trace.Trace.of_files files) in
        List.for_all
          (fun node ->
            let grp = Grouping.group_of g ~size node in
            List.length grp.Grouping.members <= size
            && (match grp.Grouping.members with
               | anchor :: _ -> anchor = node
               | [] -> false))
          (Graph.nodes g));
  ]

let () =
  Alcotest.run "agg_successor"
    [
      ( "successor_list.recency",
        [
          Alcotest.test_case "order" `Quick test_recency_order;
          Alcotest.test_case "eviction" `Quick test_recency_eviction;
          Alcotest.test_case "rereference" `Quick test_recency_rereference;
        ] );
      ( "successor_list.frequency",
        [
          Alcotest.test_case "ranking" `Quick test_frequency_ranking;
          Alcotest.test_case "incumbent protection" `Quick test_frequency_incumbent_protection;
          Alcotest.test_case "tie breaks recent" `Quick test_frequency_tie_breaks_recent;
          Alcotest.test_case "capacity validation" `Quick test_list_capacity_validation;
        ] );
      ( "tracker",
        [
          Alcotest.test_case "successions" `Quick test_tracker_successions;
          Alcotest.test_case "recency ranking" `Quick test_tracker_recency_ranking;
          Alcotest.test_case "transitive chain" `Quick test_tracker_transitive_chain;
          Alcotest.test_case "cycle stops" `Quick test_tracker_chain_cycle_stops;
          Alcotest.test_case "per-client contexts" `Quick test_tracker_per_client_contexts;
          Alcotest.test_case "global context mixes" `Quick test_tracker_global_context_mixes;
          Alcotest.test_case "reset context" `Quick test_tracker_reset_context;
          Alcotest.test_case "capacity respected" `Quick test_tracker_capacity_respected;
          Alcotest.test_case "tracked files" `Quick test_tracker_tracked_files;
        ] );
      ( "sequence_tracker",
        [
          Alcotest.test_case "commits windows" `Quick test_sequence_tracker_commits_windows;
          Alcotest.test_case "recency and dedup" `Quick test_sequence_tracker_recency_and_dedup;
          Alcotest.test_case "capacity bound" `Quick test_sequence_tracker_capacity_bound;
          Alcotest.test_case "measure on cycle" `Quick test_sequence_tracker_measure_cycle;
          Alcotest.test_case "longer is harder" `Quick test_sequence_tracker_longer_is_harder;
          Alcotest.test_case "invalid args" `Quick test_sequence_tracker_invalid;
        ] );
      ("oracle", [ Alcotest.test_case "remembers everything" `Quick test_oracle ]);
      ( "graph",
        [
          Alcotest.test_case "of_trace" `Quick test_graph_of_trace;
          Alcotest.test_case "strength order" `Quick test_graph_strength_order;
          Alcotest.test_case "deterministic ties" `Quick test_graph_deterministic_ties;
          Alcotest.test_case "iter edges" `Quick test_graph_iter_edges;
        ] );
      ( "grouping",
        [
          Alcotest.test_case "immediate successors" `Quick test_group_of_immediate;
          Alcotest.test_case "transitive extension" `Quick test_group_of_transitive_extension;
          Alcotest.test_case "size one" `Quick test_group_of_size_one;
          Alcotest.test_case "invalid size" `Quick test_group_of_invalid;
          Alcotest.test_case "cover covers all" `Quick test_cover_covers_all_nodes;
          Alcotest.test_case "cover allows overlap" `Quick test_cover_allows_overlap;
          Alcotest.test_case "cover stats" `Quick test_cover_stats;
          Alcotest.test_case "partition is disjoint" `Quick test_partition_is_disjoint;
          Alcotest.test_case "partition steals shared file" `Quick
            test_partition_steals_shared_file;
          Alcotest.test_case "membership" `Quick test_membership;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
