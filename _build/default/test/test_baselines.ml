(* Tests for the related-work baselines: last-successor and first-order
   Markov predictors, and the Griffioen–Appleton probability-graph
   prefetcher. *)

open Agg_baselines

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let repeat n pattern = Array.concat (List.init n (fun _ -> Array.of_list pattern))

(* --- Last_successor ---------------------------------------------------- *)

let test_last_successor_learns_cycle () =
  let a = Last_successor.measure (repeat 100 [ 1; 2; 3 ]) in
  (* after the first cycle every prediction is right *)
  check_bool "high accuracy" true (Last_successor.accuracy_rate a > 0.95);
  check_int "predictions + cold = events - 1" 299 (a.Last_successor.predictions + a.Last_successor.no_prediction)

let test_last_successor_adapts_immediately () =
  let t = Last_successor.create () in
  List.iter (Last_successor.observe t) [ 1; 2; 1; 3 ];
  (* 1's most recent successor is now 3, not 2 *)
  check_bool "adapted" true (Last_successor.predict t 1 = Some 3)

let test_last_successor_no_prediction_for_unknown () =
  let t = Last_successor.create () in
  check_bool "unknown" true (Last_successor.predict t 42 = None)

let test_accuracy_rate_zero_predictions () =
  check_float "empty" 0.0
    (Last_successor.accuracy_rate { Last_successor.predictions = 0; correct = 0; no_prediction = 3 })

(* --- Markov_predictor ---------------------------------------------------- *)

let test_markov_predicts_most_frequent () =
  let t = Markov_predictor.create () in
  List.iter (Markov_predictor.observe t) [ 1; 2; 1; 2; 1; 3 ];
  (* counts for 1: 2 twice, 3 once *)
  check_bool "most frequent" true (Markov_predictor.predict t 1 = Some 2)

let test_markov_slow_to_adapt () =
  (* after a long stable phase the successor changes for good; the
     frequency predictor stays stuck while last-successor adapts at once *)
  let phase1 = repeat 50 [ 1; 2 ] in
  let phase2 = repeat 10 [ 1; 3 ] in
  let files = Array.append phase1 phase2 in
  let markov = Markov_predictor.measure files in
  let last = Last_successor.measure files in
  check_bool "recency adapts better on drift" true
    (Last_successor.accuracy_rate last > Last_successor.accuracy_rate markov)

let test_markov_measure_counts () =
  let a = Markov_predictor.measure (repeat 30 [ 7; 8; 9 ]) in
  check_bool "accurate on cycle" true (Last_successor.accuracy_rate a > 0.9)

(* --- Prob_graph ------------------------------------------------------------- *)

let test_prob_graph_chance () =
  let pg = Prob_graph.create ~lookahead:2 ~threshold:0.5 ~capacity:10 () in
  (* drive 1 2 3 1 2 3: within lookahead 2 of each access *)
  Array.iter (fun f -> ignore (Prob_graph.access pg f)) (repeat 10 [ 1; 2; 3 ]);
  check_bool "1 -> 2 strong" true (Prob_graph.chance pg ~src:1 ~dst:2 > 0.8);
  check_bool "1 -> 3 within window" true (Prob_graph.chance pg ~src:1 ~dst:3 > 0.5);
  check_float "unrelated" 0.0 (Prob_graph.chance pg ~src:1 ~dst:99)

let test_prob_graph_prefetches_reduce_fetches () =
  let run threshold =
    let pg = Prob_graph.create ~threshold ~capacity:6 () in
    let m = Prob_graph.run pg (Agg_trace.Trace.of_files (Array.to_list (repeat 200 (List.init 10 Fun.id)))) in
    m.Agg_core.Metrics.demand_fetches
  in
  let no_prefetch =
    let cache = Agg_cache.Cache.create Agg_cache.Cache.Lru ~capacity:6 in
    Array.fold_left
      (fun acc f -> if Agg_cache.Cache.access cache f then acc else acc + 1)
      0
      (repeat 200 (List.init 10 Fun.id))
  in
  check_bool "prefetching beats plain lru on cyclic scan" true (run 0.1 < no_prefetch)

let test_prob_graph_metrics_identities () =
  let pg = Prob_graph.create ~capacity:8 () in
  let trace =
    Agg_workload.Generator.generate ~seed:2 ~events:3000 Agg_workload.Profile.workstation
  in
  let m = Prob_graph.run pg trace in
  check_int "accesses" 3000 m.Agg_core.Metrics.accesses;
  check_int "hits+misses" 3000 (m.Agg_core.Metrics.hits + m.Agg_core.Metrics.demand_fetches);
  check_bool "used <= issued" true
    (m.Agg_core.Metrics.prefetch.Agg_core.Metrics.used
    <= m.Agg_core.Metrics.prefetch.Agg_core.Metrics.issued)

let test_prob_graph_threshold_gates_prefetch () =
  (* with threshold 1.0 only sure-thing successors are prefetched; an
     alternating successor (half/half) must not be *)
  let pg = Prob_graph.create ~lookahead:1 ~threshold:1.0 ~capacity:10 () in
  Array.iter (fun f -> ignore (Prob_graph.access pg f)) (repeat 20 [ 1; 2; 1; 3 ]);
  let m = Prob_graph.metrics pg in
  check_int "nothing prefetched" 0 m.Agg_core.Metrics.prefetch.Agg_core.Metrics.issued

let test_prob_graph_validation () =
  Alcotest.check_raises "lookahead 0"
    (Invalid_argument "Prob_graph.create: lookahead must be positive") (fun () ->
      ignore (Prob_graph.create ~lookahead:0 ~capacity:4 ()));
  Alcotest.check_raises "threshold 0"
    (Invalid_argument "Prob_graph.create: threshold must be in (0, 1]") (fun () ->
      ignore (Prob_graph.create ~threshold:0.0 ~capacity:4 ()))

(* --- Ppm ------------------------------------------------------------------ *)

let test_ppm_uses_context () =
  (* 'a' is followed by b after x, by c after y: order-1 cannot separate
     them, order-2 can *)
  let t = Ppm.create ~max_order:2 () in
  let feed = [ 8; 1; 2; 9; 1; 3; 8; 1; 2; 9; 1; 3; 8; 1 ] in
  List.iter (Ppm.observe t) feed;
  (* current context is [1; 8] (most recent first): next should be 2 *)
  check_bool "context disambiguates" true (Ppm.predict t = Some 2)

let test_ppm_falls_back_to_shorter_context () =
  let t = Ppm.create ~max_order:2 () in
  List.iter (Ppm.observe t) [ 1; 2; 1; 2; 1 ];
  (* context [1; 2] was seen; but after feeding a brand-new preceding
     file the order-2 context is unknown and order 1 must answer *)
  List.iter (Ppm.observe t) [ 99; 1 ];
  check_bool "order-1 fallback" true (Ppm.predict t = Some 2)

let test_ppm_beats_last_successor_on_contextual_pattern () =
  let pattern = [ 8; 1; 2; 9; 1; 3 ] in
  let files = repeat 200 pattern in
  let ppm = Ppm.measure files in
  let ls = Last_successor.measure files in
  check_bool "ppm wins when context matters" true
    (Last_successor.accuracy_rate ppm > Last_successor.accuracy_rate ls);
  check_bool "ppm near perfect here" true (Last_successor.accuracy_rate ppm > 0.95)

let test_ppm_measure_counts () =
  let a = Ppm.measure (repeat 50 [ 1; 2; 3 ]) in
  check_int "every non-initial position attempted" 149
    (a.Last_successor.predictions + a.Last_successor.no_prediction)

let test_ppm_validation () =
  Alcotest.check_raises "order 0" (Invalid_argument "Ppm.create: max_order must be positive")
    (fun () -> ignore (Ppm.create ~max_order:0 ()));
  check_int "max_order stored" 3 (Ppm.max_order (Ppm.create ~max_order:3 ()))

(* --- qcheck properties --------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  let files_gen = list_of_size (Gen.int_range 10 300) (int_range 0 25) in
  [
    Test.make ~name:"last-successor accuracy within [0,1]" ~count:100 files_gen (fun files ->
        let a = Last_successor.measure (Array.of_list files) in
        let r = Last_successor.accuracy_rate a in
        r >= 0.0 && r <= 1.0 && a.Last_successor.correct <= a.Last_successor.predictions);
    Test.make ~name:"markov accuracy within [0,1]" ~count:100 files_gen (fun files ->
        let a = Markov_predictor.measure (Array.of_list files) in
        let r = Last_successor.accuracy_rate a in
        r >= 0.0 && r <= 1.0);
    Test.make ~name:"prob_graph chance within [0,1]" ~count:60 files_gen (fun files ->
        let pg = Prob_graph.create ~capacity:8 () in
        List.iter (fun f -> ignore (Prob_graph.access pg f)) files;
        List.for_all
          (fun src ->
            List.for_all
              (fun dst ->
                let c = Prob_graph.chance pg ~src ~dst in
                c >= 0.0 && c <= 1.0)
              (List.sort_uniq compare files))
          (List.sort_uniq compare files));
  ]

let () =
  Alcotest.run "agg_baselines"
    [
      ( "last_successor",
        [
          Alcotest.test_case "learns cycle" `Quick test_last_successor_learns_cycle;
          Alcotest.test_case "adapts immediately" `Quick test_last_successor_adapts_immediately;
          Alcotest.test_case "unknown file" `Quick test_last_successor_no_prediction_for_unknown;
          Alcotest.test_case "zero predictions" `Quick test_accuracy_rate_zero_predictions;
        ] );
      ( "markov",
        [
          Alcotest.test_case "most frequent" `Quick test_markov_predicts_most_frequent;
          Alcotest.test_case "slow to adapt" `Quick test_markov_slow_to_adapt;
          Alcotest.test_case "measure counts" `Quick test_markov_measure_counts;
        ] );
      ( "ppm",
        [
          Alcotest.test_case "uses context" `Quick test_ppm_uses_context;
          Alcotest.test_case "fallback to shorter context" `Quick
            test_ppm_falls_back_to_shorter_context;
          Alcotest.test_case "beats last-successor with context" `Quick
            test_ppm_beats_last_successor_on_contextual_pattern;
          Alcotest.test_case "measure counts" `Quick test_ppm_measure_counts;
          Alcotest.test_case "validation" `Quick test_ppm_validation;
        ] );
      ( "prob_graph",
        [
          Alcotest.test_case "chance" `Quick test_prob_graph_chance;
          Alcotest.test_case "prefetch reduces fetches" `Quick
            test_prob_graph_prefetches_reduce_fetches;
          Alcotest.test_case "metric identities" `Quick test_prob_graph_metrics_identities;
          Alcotest.test_case "threshold gates" `Quick test_prob_graph_threshold_gates_prefetch;
          Alcotest.test_case "validation" `Quick test_prob_graph_validation;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
