(* Flat-array intrusive doubly-linked lists. Slot [i] of the three
   parallel arrays holds one node; free slots are threaded through [next]
   with [prev.(i) = -2] marking them (a linked node always has a valid
   prev, a sentinel points at itself). *)

type node = int
type list_ = int

let nil = -1
let freed = -2

type t = {
  mutable prev : int array;
  mutable next : int array;
  mutable key : int array;
  mutable free_head : int; (* head of the free list, threaded via next *)
  mutable live : int; (* linked nodes, sentinels included *)
}

(* Thread slots [lo, hi) onto the free list, highest first so low indices
   are handed out first (keeps early traffic in the same cache lines). *)
let thread_free t lo hi =
  for i = hi - 1 downto lo do
    t.prev.(i) <- freed;
    t.next.(i) <- t.free_head;
    t.free_head <- i
  done

let create ?(capacity = 16) () =
  if capacity < 1 then invalid_arg "Dlist_arena.create: capacity must be positive";
  let t =
    {
      prev = Array.make capacity 0;
      next = Array.make capacity 0;
      key = Array.make capacity 0;
      free_head = nil;
      live = 0;
    }
  in
  thread_free t 0 capacity;
  t

let grow t =
  let old = Array.length t.prev in
  let cap = 2 * old in
  let extend a = Array.append a (Array.make old 0) in
  t.prev <- extend t.prev;
  t.next <- extend t.next;
  t.key <- extend t.key;
  thread_free t old cap

let alloc t k =
  if t.free_head = nil then grow t;
  let n = t.free_head in
  t.free_head <- t.next.(n);
  t.key.(n) <- k;
  t.live <- t.live + 1;
  n

let release t n =
  t.prev.(n) <- freed;
  t.next.(n) <- t.free_head;
  t.free_head <- n;
  t.live <- t.live - 1

let new_list t =
  let s = alloc t 0 in
  t.prev.(s) <- s;
  t.next.(s) <- s;
  s

let key t n = t.key.(n)
let is_empty t l = t.next.(l) = l

let link_after t anchor n =
  let after = t.next.(anchor) in
  t.prev.(n) <- anchor;
  t.next.(n) <- after;
  t.prev.(after) <- n;
  t.next.(anchor) <- n

let unlink t n =
  let p = t.prev.(n) and q = t.next.(n) in
  t.next.(p) <- q;
  t.prev.(q) <- p

let push_front t l k =
  let n = alloc t k in
  link_after t l n;
  n

let push_back t l k =
  let n = alloc t k in
  link_after t t.prev.(l) n;
  n

let remove t n =
  unlink t n;
  release t n

let move_to_front t l n =
  unlink t n;
  link_after t l n

let move_to_back t l n =
  unlink t n;
  link_after t t.prev.(l) n

let first t l = if t.next.(l) = l then nil else t.next.(l)
let last t l = if t.prev.(l) = l then nil else t.prev.(l)

let pop_front t l =
  let n = t.next.(l) in
  if n = l then -1
  else begin
    let k = t.key.(n) in
    remove t n;
    k
  end

let pop_back t l =
  let n = t.prev.(l) in
  if n = l then -1
  else begin
    let k = t.key.(n) in
    remove t n;
    k
  end

let clear_list t l =
  let rec loop n =
    if n <> l then begin
      let next = t.next.(n) in
      release t n;
      loop next
    end
  in
  loop t.next.(l);
  t.prev.(l) <- l;
  t.next.(l) <- l

let iter t l f =
  let rec loop n =
    if n <> l then begin
      f t.key.(n);
      loop t.next.(n)
    end
  in
  loop t.next.(l)

let fold t l ~init ~f =
  let rec loop acc n = if n = l then acc else loop (f acc t.key.(n)) t.next.(n) in
  loop init t.next.(l)

let to_list t l = List.rev (fold t l ~init:[] ~f:(fun acc k -> k :: acc))

let length t l =
  let rec loop acc n = if n = l then acc else loop (acc + 1) t.next.(n) in
  loop 0 t.next.(l)

let slots t = Array.length t.prev
let live t = t.live

let free t =
  let rec loop acc n = if n = nil then acc else loop (acc + 1) t.next.(n) in
  loop 0 t.free_head
