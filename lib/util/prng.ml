type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let default_seed = 0x1db5_2cec_6a2f_7b4

(* SplitMix64: used only to expand a seed into the 256-bit xoshiro state.
   Its output is well distributed even for adjacent seeds. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ?(seed = default_seed) () =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let derive t index =
  (* Fold the parent's full 256-bit state with the (injectively scaled)
     stream index into one SplitMix64 seed; the parent is not advanced, so
     [derive t i] is a pure function of [t]'s current state and [i]. *)
  let key =
    Int64.logxor
      (Int64.logxor t.s0 (rotl t.s1 13))
      (Int64.logxor (rotl t.s2 27) (rotl t.s3 41))
  in
  let state = ref (Int64.logxor key (Int64.mul (Int64.of_int index) 0x9E3779B97F4A7C15L)) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

(* A non-negative 62-bit integer: plenty for array indices, and it avoids
   having to reason about [min_int] when taking remainders. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max62 = (1 lsl 62) - 1 in
  let limit = max62 - (max62 mod bound) in
  let rec loop () =
    let v = bits62 t in
    if v >= limit then loop () else v mod bound
  in
  loop ()

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped to [0, 1), the standard double-precision trick. *)
  let mantissa = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  let unit = Stdlib.float_of_int mantissa /. 9007199254740992.0 in
  unit *. bound

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t ~p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))
