(** A direct-index map from dense non-negative int keys to non-negative
    int values — the hot-path replacement for [(int, _) Hashtbl.t] in the
    cache and successor layers.

    File ids are dense (see [Agg_trace.File_id]), so a plain [int array]
    indexed by key beats any hash table: lookup, insert and delete are a
    single unguarded-by-hashing array probe each, with no collision
    chains and no per-entry boxes. Absence is the sentinel [-1], which is
    why values must be non-negative; callers with richer per-key state
    pack it into the value (e.g. [(node lsl 1) lor segment_bit]) or keep
    side arrays indexed by the stored value.

    The backing array grows by doubling to cover the largest key seen;
    memory is proportional to that key, which is the id-density
    assumption documented in DESIGN.md. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ~capacity ()] pre-sizes the table for keys below [capacity]
    (default 16). @raise Invalid_argument when [capacity < 1]. *)

val get : t -> int -> int
(** [get t k] is the value bound to [k], or [-1] when absent (including
    any [k] at or beyond the backing array, and negative [k]). *)

val mem : t -> int -> bool

val set : t -> int -> int -> unit
(** [set t k v] binds [k] to [v], growing as needed.
    @raise Invalid_argument when [k] or [v] is negative. *)

val remove : t -> int -> unit
(** Unbinds [k]; no-op when absent. *)

val length : t -> int
(** Number of keys currently bound. O(1). *)

val clear : t -> unit
(** Unbinds everything, keeping the backing array. *)

val iter : t -> (int -> int -> unit) -> unit
(** [iter t f] applies [f key value] to every binding in increasing key
    order (O(capacity) — not for hot paths). *)
