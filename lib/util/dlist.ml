(* Sentinel-based circular doubly-linked list. The sentinel's [next] is the
   front and its [prev] is the back; a detached node points to itself. *)

type 'a node = { mutable prev : 'a node; mutable next : 'a node; data : 'a option }
type 'a t = { sentinel : 'a node; mutable size : int }

let make_sentinel () =
  let rec s = { prev = s; next = s; data = None } in
  s

let create () = { sentinel = make_sentinel (); size = 0 }
let is_empty t = t.size = 0
let length t = t.size

let value n =
  match n.data with
  | Some v -> v
  | None -> invalid_arg "Dlist.value: sentinel node"

let detached n = n.next == n

let link_after anchor n =
  n.prev <- anchor;
  n.next <- anchor.next;
  anchor.next.prev <- n;
  anchor.next <- n

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev;
  n.prev <- n;
  n.next <- n

let push_front t v =
  let n = { prev = t.sentinel; next = t.sentinel; data = Some v } in
  link_after t.sentinel n;
  t.size <- t.size + 1;
  n

let push_back t v =
  let n = { prev = t.sentinel; next = t.sentinel; data = Some v } in
  link_after t.sentinel.prev n;
  t.size <- t.size + 1;
  n

let remove t n =
  if not (detached n) then begin
    unlink n;
    t.size <- t.size - 1
  end

let move_to_front t n =
  if not (detached n) then begin
    unlink n;
    link_after t.sentinel n
  end

let move_to_back t n =
  if not (detached n) then begin
    unlink n;
    link_after t.sentinel.prev n
  end

let peek_front t = if t.size = 0 then None else Some (value t.sentinel.next)
let peek_back t = if t.size = 0 then None else Some (value t.sentinel.prev)

let pop_front t =
  if t.size = 0 then None
  else begin
    let n = t.sentinel.next in
    remove t n;
    Some (value n)
  end

let pop_back t =
  if t.size = 0 then None
  else begin
    let n = t.sentinel.prev in
    remove t n;
    Some (value n)
  end

let clear t =
  (* Detach every node (so held node references stay safe to [remove])
     in one sweep, without going through pop_front's option boxing. *)
  let rec loop n =
    if n != t.sentinel then begin
      let next = n.next in
      n.prev <- n;
      n.next <- n;
      loop next
    end
  in
  loop t.sentinel.next;
  t.sentinel.prev <- t.sentinel;
  t.sentinel.next <- t.sentinel;
  t.size <- 0

let iter f t =
  let rec loop n = if n != t.sentinel then begin f (value n); loop n.next end in
  loop t.sentinel.next

let fold f acc t =
  let rec loop acc n = if n == t.sentinel then acc else loop (f acc (value n)) n.next in
  loop acc t.sentinel.next

let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
