(** Arena-backed intrusive doubly-linked lists over flat [int array]s.

    One arena owns three parallel arrays ([prev], [next], [key]) plus a
    free list threaded through [next]; every node is an [int] slot index
    into those arrays, so list operations are pure array reads and writes
    with no boxed nodes and no per-operation allocation. Several lists
    (each identified by a sentinel slot) can share one arena, which is how
    segmented policies (SLRU, 2Q, MQ) keep all their queues in one pair of
    cache-friendly arrays.

    Node indices are stable while a node is linked: moving a node between
    lists of the same arena ({!move_to_front} / {!move_to_back} accept a
    destination list) relinks it in place, so side tables indexed by node
    stay valid. {!remove} returns the slot to the free list; the caller
    must drop every reference to a removed node — slot indices are reused
    by later pushes.

    Keys are arbitrary ints (the cache and successor layers store dense
    non-negative file ids). The convenience [pop_front]/[pop_back] return
    [-1] for "empty" so the hot path never allocates an option; use the
    node-returning accessors when keys may be negative. *)

type t
(** The arena. Grows by doubling when the free list is exhausted. *)

type node = int
(** A slot index. {!nil} ([-1]) means "no node". *)

type list_ = private int
(** A list handle (the index of its sentinel slot). *)

val nil : node
(** [-1], the absent node. *)

val create : ?capacity:int -> unit -> t
(** [create ~capacity ()] pre-allocates room for [capacity] nodes
    (default 16; sentinels count against it).
    @raise Invalid_argument when [capacity < 1]. *)

val new_list : t -> list_
(** Allocates an empty list (one sentinel slot) in the arena. *)

val key : t -> node -> int
(** The key stored at [node]. Undefined for sentinels and freed slots. *)

val is_empty : t -> list_ -> bool

val push_front : t -> list_ -> int -> node
(** [push_front t l k] links a fresh node carrying [k] at the front of
    [l] and returns it. Amortised O(1); grows the arena when full. *)

val push_back : t -> list_ -> int -> node

val remove : t -> node -> unit
(** Unlinks [node] from whichever list holds it and returns its slot to
    the free list. The caller must forget the node afterwards. *)

val move_to_front : t -> list_ -> node -> unit
(** [move_to_front t l n] relinks [n] (from any list of [t]) to the front
    of [l]. The node index is unchanged. *)

val move_to_back : t -> list_ -> node -> unit

val first : t -> list_ -> node
(** Front node of the list, or {!nil} when empty. *)

val last : t -> list_ -> node
(** Back node of the list, or {!nil} when empty. *)

val pop_front : t -> list_ -> int
(** Removes the front node and returns its key, or [-1] when empty. *)

val pop_back : t -> list_ -> int
(** Removes the back node and returns its key, or [-1] when empty. *)

val clear_list : t -> list_ -> unit
(** Returns every node of the list to the free list, leaving it empty. *)

val iter : t -> list_ -> (int -> unit) -> unit
(** [iter t l f] applies [f] to every key, front to back. *)

val fold : t -> list_ -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Front-to-back fold over keys. *)

val to_list : t -> list_ -> int list
(** Keys front to back (allocates; for tests and [contents]). *)

val length : t -> list_ -> int
(** Number of nodes in [l]. O(n) — callers on the hot path keep their own
    counters. *)

(** {2 Introspection — free-list invariants, for tests} *)

val slots : t -> int
(** Total slots currently allocated in the backing arrays. *)

val live : t -> int
(** Nodes currently linked into some list, sentinels included. *)

val free : t -> int
(** Slots on the free list. [live t + free t = slots t] always holds. *)
