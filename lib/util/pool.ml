let default_jobs () = Domain.recommended_domain_count ()

(* The first failure by input index, so the raised exception does not
   depend on scheduling. *)
type failure = { index : int; exn : exn; backtrace : Printexc.raw_backtrace }

let map_array ?jobs f input =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs <= 0 then invalid_arg "Pool.map: jobs must be positive";
  let n = Array.length input in
  if jobs = 1 || n <= 1 then Array.map f input
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failed = Atomic.make (None : failure option) in
    let record_failure index exn backtrace =
      let rec loop () =
        let current = Atomic.get failed in
        let keep = match current with Some f -> f.index < index | None -> false in
        if not keep then
          if not (Atomic.compare_and_set failed current (Some { index; exn; backtrace })) then
            loop ()
      in
      loop ()
    in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f input.(i) with
        | y -> results.(i) <- Some y
        | exception exn -> record_failure i exn (Printexc.get_raw_backtrace ()));
        if Atomic.get failed = None then worker ()
      end
    in
    let workers = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join workers;
    match Atomic.get failed with
    | Some { exn; backtrace; _ } -> Printexc.raise_with_backtrace exn backtrace
    | None ->
        Array.map
          (function Some y -> y | None -> assert false (* no failure => every cell ran *))
          results
  end

let map ?jobs f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ -> Array.to_list (map_array ?jobs f (Array.of_list xs))

let map_reduce ?jobs ~map:f ~reduce ~init xs = List.fold_left reduce init (map ?jobs f xs)
