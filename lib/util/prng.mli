(** Deterministic pseudo-random number generation.

    Every simulation in this repository is driven by an explicit generator
    state so that experiments are reproducible run-to-run and seed-to-seed.
    The implementation is xoshiro256** seeded through SplitMix64, which is
    fast, has a 256-bit state, and passes the usual statistical batteries. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a generator from a 63-bit seed. The default
    seed is a fixed constant, so two generators created without a seed
    produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. Streams of
    the parent and child are statistically independent. *)

val derive : t -> int -> t
(** [derive t index] is a fresh generator determined purely by [t]'s
    current state and the stream [index]; [t] is {e not} advanced. Two
    parents in the same state derive identical children for the same
    index, and distinct indices yield statistically independent streams —
    the per-node / per-stream seeding idiom: give worker [i] the stream
    [derive base i] instead of ad-hoc seed arithmetic. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive.
    Uses rejection sampling, so the result is unbiased. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place, uniformly (Fisher–Yates). *)

val choose : t -> 'a array -> 'a
(** [choose t a] is a uniformly random element of [a].
    @raise Invalid_argument if [a] is empty. *)
