(** Intrusive doubly-linked list with O(1) node removal and repositioning.

    This is the backbone of the LRU structures: a cache keeps a hash table
    from key to node, and recency updates are constant-time node moves. *)

type 'a t
(** A list; the front is the most-recent end by convention. *)

type 'a node
(** A node owned by exactly one list (or detached after {!remove}). *)

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
(** O(1). *)

val value : 'a node -> 'a
val push_front : 'a t -> 'a -> 'a node
val push_back : 'a t -> 'a -> 'a node

val remove : 'a t -> 'a node -> unit
(** [remove t n] detaches [n] from [t]. Removing an already-detached node
    is a no-op. It is a programming error to remove a node from a list it
    does not belong to; this is not checked. *)

val move_to_front : 'a t -> 'a node -> unit
val move_to_back : 'a t -> 'a node -> unit

val peek_front : 'a t -> 'a option
val peek_back : 'a t -> 'a option

val pop_front : 'a t -> 'a option
val pop_back : 'a t -> 'a option

val clear : 'a t -> unit
(** [clear t] empties [t] in O(n), detaching every node as it goes —
    nodes previously handed out behave as after {!remove}. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front-to-back iteration. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Front-to-back fold. *)

val to_list : 'a t -> 'a list
(** Front-to-back element list. *)
