(** A fixed-size pool of OCaml 5 domains for embarrassingly parallel
    sweeps.

    Each call spawns at most [jobs - 1] worker domains (the calling
    domain also works), feeds them tasks from a shared index counter,
    and joins them before returning, so no domains outlive the call.
    Results are keyed by input index — never by completion order — so
    every function here is {e deterministic}: the result is identical
    for any [jobs], including the sequential [jobs = 1] path.

    Work items must not depend on each other and must only share data
    that is immutable or internally synchronised; the pool provides no
    locking of its own around user state. *)

val default_jobs : unit -> int
(** The pool width used when [?jobs] is omitted:
    [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs], evaluated by up to [jobs]
    domains. Order is preserved. If one or more applications of [f]
    raise, the exception raised by the {e lowest-indexed} failing
    element is re-raised after all workers have stopped (remaining
    un-started elements may be skipped).
    @raise Invalid_argument when [jobs <= 0]. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!map}. The input array must not be mutated
    during the call. *)

val map_reduce :
  ?jobs:int -> map:('a -> 'b) -> reduce:('acc -> 'b -> 'acc) -> init:'acc -> 'a list -> 'acc
(** [map_reduce ~map ~reduce ~init xs] folds the mapped results in
    {e input order} ([reduce] runs sequentially on the calling domain),
    so the result equals [List.fold_left reduce init (List.map map xs)]
    regardless of worker count.
    @raise Invalid_argument when [jobs <= 0]. *)
