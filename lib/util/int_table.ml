type t = { mutable data : int array; mutable count : int }

let absent = -1

let create ?(capacity = 16) () =
  if capacity < 1 then invalid_arg "Int_table.create: capacity must be positive";
  { data = Array.make capacity absent; count = 0 }

let get t k = if k < 0 || k >= Array.length t.data then absent else t.data.(k)
let mem t k = get t k >= 0

let grow t k =
  let cap = max (2 * Array.length t.data) (k + 1) in
  let data = Array.make cap absent in
  Array.blit t.data 0 data 0 (Array.length t.data);
  t.data <- data

let set t k v =
  if k < 0 then invalid_arg "Int_table.set: negative key";
  if v < 0 then invalid_arg "Int_table.set: negative value";
  if k >= Array.length t.data then grow t k;
  if t.data.(k) < 0 then t.count <- t.count + 1;
  t.data.(k) <- v

let remove t k =
  if k >= 0 && k < Array.length t.data && t.data.(k) >= 0 then begin
    t.data.(k) <- absent;
    t.count <- t.count - 1
  end

let length t = t.count

let clear t =
  Array.fill t.data 0 (Array.length t.data) absent;
  t.count <- 0

let iter t f =
  Array.iteri (fun k v -> if v >= 0 then f k v) t.data
