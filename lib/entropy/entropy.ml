(* Symbols are the int-array slices of the next [length] accesses; the
   per-file distribution is an empirical count table over those slices. *)

let collect ~length files =
  if length <= 0 then invalid_arg "Entropy.of_files: length must be positive";
  let n = Array.length files in
  let per_file : (int, (int array, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 1024 in
  (* Positions 0 .. n - length - 1 have a complete successor window. *)
  for i = 0 to n - length - 1 do
    let f = files.(i) in
    let symbol = Array.sub files (i + 1) length in
    let table =
      match Hashtbl.find_opt per_file f with
      | Some t -> t
      | None ->
          let t = Hashtbl.create 4 in
          Hashtbl.replace per_file f t;
          t
    in
    let c = Option.value ~default:0 (Hashtbl.find_opt table symbol) in
    Hashtbl.replace table symbol (c + 1)
  done;
  per_file

let conditional_entropy table =
  let total = Hashtbl.fold (fun _ c acc -> acc + c) table 0 in
  if total = 0 then 0.0
  else
    Hashtbl.fold
      (fun _ c acc ->
        let p = float_of_int c /. float_of_int total in
        acc -. (p *. Agg_util.Stats.log2 p))
      table 0.0

let occurrences table = Hashtbl.fold (fun _ c acc -> acc + c) table 0

(* The sweep-facing entry point avoids the symbol tables entirely: window
   positions are bucketed by file id into one CSR layout (counts / prefix
   starts / positions), and each file's symbol distribution is recovered
   by sorting its positions with an in-place window comparison. No symbol
   arrays are materialised and nothing is hashed, which is what makes the
   20-length Fig. 7 sweep cheap. *)
let of_files ?(length = 1) files =
  if length <= 0 then invalid_arg "Entropy.of_files: length must be positive";
  let n = Array.length files in
  (* positions 0 .. windows - 1 have a complete successor window *)
  let windows = n - length in
  if windows <= 0 then 0.0
  else begin
    let max_id = ref 0 in
    for i = 0 to windows - 1 do
      if files.(i) > !max_id then max_id := files.(i)
    done;
    let counts = Array.make (!max_id + 1) 0 in
    for i = 0 to windows - 1 do
      counts.(files.(i)) <- counts.(files.(i)) + 1
    done;
    let starts = Array.make (!max_id + 1) 0 in
    let acc = ref 0 in
    for f = 0 to !max_id do
      starts.(f) <- !acc;
      acc := !acc + counts.(f)
    done;
    let positions = Array.make windows 0 in
    let fill = Array.copy starts in
    for i = 0 to windows - 1 do
      let f = files.(i) in
      positions.(fill.(f)) <- i;
      fill.(f) <- fill.(f) + 1
    done;
    let cmp_window a b =
      let rec go j =
        if j = length then 0
        else
          let c = compare files.(a + 1 + j) files.(b + 1 + j) in
          if c <> 0 then c else go (j + 1)
      in
      go 0
    in
    let weighted = ref 0.0 in
    let weight_total = ref 0 in
    for f = 0 to !max_id do
      let occ = counts.(f) in
      if occ >= 2 then begin
        let sub = Array.sub positions starts.(f) occ in
        Array.sort cmp_window sub;
        (* equal windows are now adjacent: fold run lengths into H *)
        let total = float_of_int occ in
        let h = ref 0.0 in
        let run_start = ref 0 in
        for k = 1 to occ do
          if k = occ || cmp_window sub.(k) sub.(!run_start) <> 0 then begin
            let p = float_of_int (k - !run_start) /. total in
            h := !h -. (p *. Agg_util.Stats.log2 p);
            run_start := k
          end
        done;
        weighted := !weighted +. (total *. !h);
        weight_total := !weight_total + occ
      end
    done;
    if !weight_total = 0 then 0.0 else !weighted /. float_of_int !weight_total
  end

let of_trace ?length trace = of_files ?length (Agg_trace.Trace.files trace)

let sweep ~lengths files = List.map (fun l -> (l, of_files ~length:l files)) lengths

let filtered_sweep ~filter_capacities ~lengths trace =
  List.map
    (fun capacity ->
      let missed = Agg_trace.Filter.miss_stream ~capacity trace in
      (capacity, sweep ~lengths (Agg_trace.Trace.files missed)))
    filter_capacities

let per_client ?length trace =
  let streams : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  Agg_trace.Trace.iter
    (fun (e : Agg_trace.Event.t) ->
      match Hashtbl.find_opt streams e.Agg_trace.Event.client with
      | Some acc -> acc := e.Agg_trace.Event.file :: !acc
      | None -> Hashtbl.replace streams e.Agg_trace.Event.client (ref [ e.Agg_trace.Event.file ]))
    trace;
  let weighted = ref 0.0 in
  let total = ref 0 in
  Hashtbl.iter
    (fun _client acc ->
      let files = Array.of_list (List.rev !acc) in
      let n = Array.length files in
      weighted := !weighted +. (float_of_int n *. of_files ?length files);
      total := !total + n)
    streams;
  if !total = 0 then 0.0 else !weighted /. float_of_int !total

let per_file ?(length = 1) files =
  let tables = collect ~length files in
  Hashtbl.fold
    (fun file table acc ->
      let occ = occurrences table in
      if occ >= 2 then (file, occ, conditional_entropy table) :: acc else acc)
    tables []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
