open Agg_util

type t = { capacity : int; order : int Dlist.t; index : (int, int Dlist.node) Hashtbl.t }

let policy_name = "lru"

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; order = Dlist.create (); index = Hashtbl.create (2 * capacity) }

let capacity t = t.capacity
let size t = Dlist.length t.order
let mem t key = Hashtbl.mem t.index key

let promote t key =
  match Hashtbl.find_opt t.index key with
  | Some node -> Dlist.move_to_front t.order node
  | None -> ()

let evict t =
  match Dlist.pop_back t.order with
  | None -> None
  | Some victim ->
      Hashtbl.remove t.index victim;
      Some victim

let insert t ~pos key =
  match Hashtbl.find_opt t.index key with
  | Some node ->
      (match pos with
      | Policy.Hot -> Dlist.move_to_front t.order node
      | Policy.Cold -> Dlist.move_to_back t.order node);
      None
  | None ->
      let victim = if size t >= t.capacity then evict t else None in
      let node =
        match pos with
        | Policy.Hot -> Dlist.push_front t.order key
        | Policy.Cold -> Dlist.push_back t.order key
      in
      Hashtbl.replace t.index key node;
      victim

let remove t key =
  match Hashtbl.find_opt t.index key with
  | Some node ->
      Dlist.remove t.order node;
      Hashtbl.remove t.index key
  | None -> ()

let contents t = Dlist.to_list t.order

let clear t =
  Hashtbl.reset t.index;
  Dlist.clear t.order
