open Agg_util

module Core = struct
  (* Arena-backed: the recency order is an intrusive list over flat int
     arrays, the key index a direct-index table (file ids are dense), so an
     access touches a handful of array slots and allocates nothing. *)
  type t = {
    capacity : int;
    arena : Dlist_arena.t;
    order : Dlist_arena.list_;
    index : Int_table.t; (* key -> node *)
    mutable size : int;
  }

  let policy_name = "lru"

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
    let arena = Dlist_arena.create ~capacity:(capacity + 2) () in
    {
      capacity;
      arena;
      order = Dlist_arena.new_list arena;
      index = Int_table.create ~capacity:(2 * capacity) ();
      size = 0;
    }

  let capacity t = t.capacity
  let size t = t.size
  let mem t key = Int_table.mem t.index key

  let promote t key =
    let node = Int_table.get t.index key in
    if node >= 0 then Dlist_arena.move_to_front t.arena t.order node

  let evict t =
    let victim = Dlist_arena.pop_back t.arena t.order in
    if victim < 0 then None
    else begin
      Int_table.remove t.index victim;
      t.size <- t.size - 1;
      Some victim
    end

  let insert t ~pos key =
    let node = Int_table.get t.index key in
    if node >= 0 then begin
      (match pos with
      | Policy.Hot -> Dlist_arena.move_to_front t.arena t.order node
      | Policy.Cold -> Dlist_arena.move_to_back t.arena t.order node);
      None
    end
    else begin
      let victim = if t.size >= t.capacity then evict t else None in
      let node =
        match pos with
        | Policy.Hot -> Dlist_arena.push_front t.arena t.order key
        | Policy.Cold -> Dlist_arena.push_back t.arena t.order key
      in
      Int_table.set t.index key node;
      t.size <- t.size + 1;
      victim
    end

  let remove t key =
    let node = Int_table.get t.index key in
    if node >= 0 then begin
      Dlist_arena.remove t.arena node;
      Int_table.remove t.index key;
      t.size <- t.size - 1
    end

  let contents t = Dlist_arena.to_list t.arena t.order

  let clear t =
    Int_table.clear t.index;
    Dlist_arena.clear_list t.arena t.order;
    t.size <- 0
end

include Policy.Weighted_of_unit (Core)
