(** Statistics-keeping cache over any replacement policy, selectable at
    runtime. This is what the simulators and the experiment harness use. *)

type kind = Lru | Lfu | Fifo | Mru | Clock | Random | Mq | Slru | Twoq | Arc

val kind_name : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list

type stats = {
  accesses : int;  (** demand accesses seen by {!access} *)
  hits : int;
  misses : int;
  insertions : int;  (** all insertions, demand and speculative *)
  speculative_insertions : int;  (** cold-end insertions via {!insert_cold} *)
  evictions : int;
}

val pp_stats : Format.formatter -> stats -> unit

type t

val create : kind -> capacity:int -> t
val kind : t -> kind
val capacity : t -> int
val size : t -> int
val mem : t -> int -> bool
(** Residency probe; does not touch statistics or recency state. *)

val access : t -> int -> bool
(** [access t key] simulates a demand access: on a hit the key is promoted
    and [true] is returned; on a miss the key is inserted hot and [false]
    is returned. Statistics are updated. *)

val insert_cold : t -> int -> unit
(** [insert_cold t key] inserts [key] at the cold (next-to-evict) end
    without recording an access — the speculative group-member path. A
    resident key is left where it is (prefetching never demotes data that
    earned its place). *)

val insert_cold_group : t -> int list -> int list
(** [insert_cold_group t keys] appends the non-resident members of [keys]
    as a block at the cold end, preserving their order (the first key is
    the last of the block to be evicted). Room for the whole block is made
    *first*, so members never evict one another — the semantics of a group
    arriving in one retrieval (paper §3). At most [capacity - 1] members
    are admitted, so a just-demanded file is never displaced by its own
    group. Returns the members actually inserted. *)

val insert_hot : t -> int -> unit
(** Inserts or promotes [key] at the hot end without counting an access. *)

val remove : t -> int -> unit
val contents : t -> int list

val depth : t -> int -> int option
(** [depth t key] is [key]'s stack distance — its 0-based position from
    the hot end of the policy's {!contents} order — or [None] when not
    resident. O(size): an instrumentation probe (see [Agg_obs]), not a hot
    path; does not touch statistics or recency state. *)

val set_on_evict : t -> (int -> unit) -> unit
(** [set_on_evict t f] calls [f victim] whenever an insertion or group
    admission physically evicts a resident key (not on {!remove} or
    {!clear}). One observer at a time; used by the instrumentation layer
    to attribute evictions. Unset by default, at zero cost. *)

val clear_on_evict : t -> unit
val stats : t -> stats
val hit_rate : t -> float
(** Hits over accesses; [0.] before any access. *)

val reset_stats : t -> unit
(** Zeroes the counters, keeping the resident set — used to exclude cache
    warm-up from measurements. *)

val clear : t -> unit
(** Empties the cache and zeroes the counters. *)
