(** Statistics-keeping cache over any replacement policy, selectable at
    runtime. This is what the simulators and the experiment harness use.

    Weights: a cache optionally carries a [weight_of] function assigning
    each key a {!Policy.weight} (size and retrieval cost). Without it
    every key is {!Policy.unit_weight} and behaviour is byte-identical to
    the historical unweighted facade. *)

type kind = Lru | Lfu | Fifo | Mru | Clock | Random | Mq | Slru | Twoq | Arc

val kind_name : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list

type stats = {
  accesses : int;  (** demand accesses seen by {!access} *)
  hits : int;
  misses : int;
  insertions : int;  (** all insertions, demand and speculative *)
  speculative_insertions : int;  (** cold-end insertions via {!insert_cold} *)
  evictions : int;
}

val pp_stats : Format.formatter -> stats -> unit

type weighted_stats = {
  bytes_accessed : int;  (** Σ size over demand accesses *)
  bytes_hit : int;  (** Σ size over demand hits *)
  cost_fetched : int;  (** Σ cost over demand misses (each implies a fetch) *)
  cost_prefetched : int;  (** Σ cost over admitted speculative insertions *)
}
(** With no [weight_of], these are the unit-weight counters:
    [bytes_accessed = accesses], [cost_fetched = misses], … *)

val pp_weighted_stats : Format.formatter -> weighted_stats -> unit

type t

val create : ?weight_of:(int -> Policy.weight) -> kind -> capacity:int -> t
(** [create kind ~capacity] builds one of the ten built-in policies.
    [weight_of] must be pure and stable per key for the cache's lifetime.
    @raise Invalid_argument when [capacity <= 0]. *)

val of_policy :
  ?weight_of:(int -> Policy.weight) -> (module Policy.S with type t = 'a) -> 'a -> t
(** [of_policy (module P) state] wraps an externally built policy (e.g.
    [Agg_baselines.Landlord]) in the statistics-keeping facade. {!kind}
    is [None] for such caches; {!name} is [P.policy_name]. *)

val kind : t -> kind option
(** The built-in policy this cache was created with; [None] for
    {!of_policy}-wrapped caches. *)

val name : t -> string
(** The underlying policy's [policy_name]. *)

val capacity : t -> int
val size : t -> int

val used : t -> int
(** Total resident size ({!Policy.S.used}); equals {!size} at unit
    weights. *)

val mem : t -> int -> bool
(** Residency probe; does not touch statistics or recency state. *)

val access : t -> int -> bool
(** [access t key] simulates a demand access: on a hit the key is
    promoted, re-credited with its cost ({!Policy.S.charge}) and [true]
    is returned; on a miss the key is inserted hot with its weight and
    [false] is returned. Statistics are updated. A key whose size exceeds
    the whole capacity is fetched ([cost_fetched] grows) but not
    admitted. *)

val insert_cold : t -> int -> unit
(** [insert_cold t key] inserts [key] at the cold (next-to-evict) end
    without recording an access — the speculative group-member path. A
    resident key is left where it is (prefetching never demotes data that
    earned its place). *)

val insert_cold_group : t -> int list -> int list
(** [insert_cold_group t keys] appends the non-resident members of [keys]
    as a block at the cold end, preserving their order (the first key is
    the last of the block to be evicted). Room for the whole block is made
    *first*, so members never evict one another — the semantics of a group
    arriving in one retrieval (paper §3). Members are admitted while their
    cumulative size fits in [capacity - 1] (at unit weights: at most
    [capacity - 1] members), so a just-demanded file is never displaced by
    its own group. Returns the members actually inserted. *)

val insert_hot : t -> int -> unit
(** Inserts or promotes [key] at the hot end without counting an access. *)

val remove : t -> int -> unit
val contents : t -> int list

val depth : t -> int -> int option
(** [depth t key] is [key]'s stack distance — its 0-based position from
    the hot end of the policy's {!contents} order — or [None] when not
    resident. O(size): an instrumentation probe (see [Agg_obs]), not a hot
    path; does not touch statistics or recency state. *)

val set_on_evict : t -> (int -> unit) -> unit
(** [set_on_evict t f] calls [f victim] whenever an insertion or group
    admission physically evicts a resident key (not on {!remove} or
    {!clear}). One observer at a time; used by the instrumentation layer
    to attribute evictions. Unset by default, at zero cost. *)

val clear_on_evict : t -> unit
val stats : t -> stats

val weighted_stats : t -> weighted_stats
(** Always maintained; at unit weights the byte counters mirror the
    unweighted ones. *)

val hit_rate : t -> float
(** Hits over accesses; [0.] before any access. *)

val byte_hit_rate : t -> float
(** Bytes hit over bytes accessed; [0.] before any access. Equal to
    {!hit_rate} at unit weights. *)

val reset_stats : t -> unit
(** Zeroes the counters (weighted included), keeping the resident set —
    used to exclude cache warm-up from measurements. *)

val clear : t -> unit
(** Empties the cache and zeroes the counters. *)
