open Agg_util

type segment = Probationary | Protected

type entry = { mutable segment : segment; mutable node : int Dlist.node }

type t = {
  capacity : int;
  protected_capacity : int;
  probationary : int Dlist.t;
  protected_ : int Dlist.t;
  index : (int, entry) Hashtbl.t;
}

let policy_name = "slru"

let create ~capacity =
  if capacity <= 0 then invalid_arg "Slru.create: capacity must be positive";
  {
    capacity;
    protected_capacity = max 1 (2 * capacity / 3);
    probationary = Dlist.create ();
    protected_ = Dlist.create ();
    index = Hashtbl.create (2 * capacity);
  }

let capacity t = t.capacity
let size t = Hashtbl.length t.index
let mem t key = Hashtbl.mem t.index key

(* Demote the protected LRU entry to the probationary MRU position. *)
let demote_one t =
  match Dlist.pop_back t.protected_ with
  | Some key -> (
      match Hashtbl.find_opt t.index key with
      | Some entry ->
          entry.segment <- Probationary;
          entry.node <- Dlist.push_front t.probationary key
      | None -> ())
  | None -> ()

let promote t key =
  match Hashtbl.find_opt t.index key with
  | Some entry -> (
      match entry.segment with
      | Protected -> Dlist.move_to_front t.protected_ entry.node
      | Probationary ->
          Dlist.remove t.probationary entry.node;
          entry.segment <- Protected;
          entry.node <- Dlist.push_front t.protected_ key;
          if Dlist.length t.protected_ > t.protected_capacity then demote_one t)
  | None -> ()

let evict t =
  let from_probationary () =
    match Dlist.pop_back t.probationary with
    | Some victim ->
        Hashtbl.remove t.index victim;
        Some victim
    | None -> None
  in
  match from_probationary () with
  | Some victim -> Some victim
  | None -> (
      match Dlist.pop_back t.protected_ with
      | Some victim ->
          Hashtbl.remove t.index victim;
          Some victim
      | None -> None)

let insert t ~pos key =
  match Hashtbl.find_opt t.index key with
  | Some entry ->
      (match pos with
      | Policy.Hot -> promote t key
      | Policy.Cold ->
          (* demote to the probationary cold end *)
          (match entry.segment with
          | Probationary -> Dlist.move_to_back t.probationary entry.node
          | Protected ->
              Dlist.remove t.protected_ entry.node;
              entry.segment <- Probationary;
              entry.node <- Dlist.push_back t.probationary key));
      None
  | None ->
      let victim = if size t >= t.capacity then evict t else None in
      let node =
        match pos with
        | Policy.Hot -> Dlist.push_front t.probationary key
        | Policy.Cold -> Dlist.push_back t.probationary key
      in
      Hashtbl.replace t.index key { segment = Probationary; node };
      victim

let remove t key =
  match Hashtbl.find_opt t.index key with
  | Some entry ->
      (match entry.segment with
      | Probationary -> Dlist.remove t.probationary entry.node
      | Protected -> Dlist.remove t.protected_ entry.node);
      Hashtbl.remove t.index key
  | None -> ()

let contents t = Dlist.to_list t.protected_ @ Dlist.to_list t.probationary

let clear t =
  Dlist.clear t.probationary;
  Dlist.clear t.protected_;
  Hashtbl.reset t.index

let protected_resident t key =
  match Hashtbl.find_opt t.index key with
  | Some entry -> entry.segment = Protected
  | None -> false
