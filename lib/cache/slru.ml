open Agg_util

module Core = struct
  (* Arena-backed segmented LRU: both segments are intrusive lists in one
     arena, and the key index packs [(node lsl 1) lor segment] into a
     direct-index table slot, so a hit is a few array probes. *)

  let probationary_bit = 0
  let protected_bit = 1

  type t = {
    capacity : int;
    protected_capacity : int;
    arena : Dlist_arena.t;
    probationary : Dlist_arena.list_;
    protected_ : Dlist_arena.list_;
    index : Int_table.t; (* key -> (node lsl 1) lor segment *)
    mutable protected_len : int;
  }

  let policy_name = "slru"

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Slru.create: capacity must be positive";
    let arena = Dlist_arena.create ~capacity:(capacity + 4) () in
    {
      capacity;
      protected_capacity = max 1 (2 * capacity / 3);
      arena;
      probationary = Dlist_arena.new_list arena;
      protected_ = Dlist_arena.new_list arena;
      index = Int_table.create ~capacity:(2 * capacity) ();
      protected_len = 0;
    }

  let capacity t = t.capacity
  let size t = Int_table.length t.index
  let mem t key = Int_table.mem t.index key

  let set_segment t key node segment = Int_table.set t.index key ((node lsl 1) lor segment)

  (* Demote the protected LRU entry to the probationary MRU position. *)
  let demote_one t =
    let node = Dlist_arena.last t.arena t.protected_ in
    if node >= 0 then begin
      let key = Dlist_arena.key t.arena node in
      Dlist_arena.move_to_front t.arena t.probationary node;
      t.protected_len <- t.protected_len - 1;
      set_segment t key node probationary_bit
    end

  let promote t key =
    let packed = Int_table.get t.index key in
    if packed >= 0 then begin
      let node = packed lsr 1 in
      if packed land 1 = protected_bit then Dlist_arena.move_to_front t.arena t.protected_ node
      else begin
        Dlist_arena.move_to_front t.arena t.protected_ node;
        t.protected_len <- t.protected_len + 1;
        set_segment t key node protected_bit;
        if t.protected_len > t.protected_capacity then demote_one t
      end
    end

  let evict t =
    let victim = Dlist_arena.pop_back t.arena t.probationary in
    if victim >= 0 then begin
      Int_table.remove t.index victim;
      Some victim
    end
    else begin
      let victim = Dlist_arena.pop_back t.arena t.protected_ in
      if victim >= 0 then begin
        Int_table.remove t.index victim;
        t.protected_len <- t.protected_len - 1;
        Some victim
      end
      else None
    end

  let insert t ~pos key =
    let packed = Int_table.get t.index key in
    if packed >= 0 then begin
      (match pos with
      | Policy.Hot -> promote t key
      | Policy.Cold ->
          (* demote to the probationary cold end *)
          let node = packed lsr 1 in
          Dlist_arena.move_to_back t.arena t.probationary node;
          if packed land 1 = protected_bit then begin
            t.protected_len <- t.protected_len - 1;
            set_segment t key node probationary_bit
          end);
      None
    end
    else begin
      let victim = if size t >= t.capacity then evict t else None in
      let node =
        match pos with
        | Policy.Hot -> Dlist_arena.push_front t.arena t.probationary key
        | Policy.Cold -> Dlist_arena.push_back t.arena t.probationary key
      in
      set_segment t key node probationary_bit;
      victim
    end

  let remove t key =
    let packed = Int_table.get t.index key in
    if packed >= 0 then begin
      Dlist_arena.remove t.arena (packed lsr 1);
      if packed land 1 = protected_bit then t.protected_len <- t.protected_len - 1;
      Int_table.remove t.index key
    end

  let contents t =
    Dlist_arena.to_list t.arena t.protected_ @ Dlist_arena.to_list t.arena t.probationary

  let clear t =
    Dlist_arena.clear_list t.arena t.probationary;
    Dlist_arena.clear_list t.arena t.protected_;
    Int_table.clear t.index;
    t.protected_len <- 0

  let protected_resident t key =
    let packed = Int_table.get t.index key in
    packed >= 0 && packed land 1 = protected_bit
end

include Policy.Weighted_of_unit (Core)

let protected_resident t key = Core.protected_resident (core t) key
