open Agg_util

module Core = struct
  (* The circular buffer is already flat; this version splits the slot
     records into parallel arrays and swaps the hash index for a
     direct-index table, so the whole policy is unboxed int/bool arrays. *)

  type t = {
    capacity : int;
    keys : int array;
    referenced : bool array;
    occupied : bool array;
    index : Int_table.t; (* key -> slot number *)
    mutable hand : int;
    mutable size : int;
  }

  let policy_name = "clock"

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Clock.create: capacity must be positive";
    {
      capacity;
      keys = Array.make capacity 0;
      referenced = Array.make capacity false;
      occupied = Array.make capacity false;
      index = Int_table.create ~capacity:(2 * capacity) ();
      hand = 0;
      size = 0;
    }

  let capacity t = t.capacity
  let size t = t.size
  let mem t key = Int_table.mem t.index key

  let promote t key =
    let i = Int_table.get t.index key in
    if i >= 0 then t.referenced.(i) <- true

  let advance t = t.hand <- (t.hand + 1) mod t.capacity

  (* Sweep the hand, giving second chances, until an unreferenced occupied
     slot is found. Terminates within two revolutions. *)
  let rec find_victim t =
    if not t.occupied.(t.hand) then begin
      advance t;
      find_victim t
    end
    else if t.referenced.(t.hand) then begin
      t.referenced.(t.hand) <- false;
      advance t;
      find_victim t
    end
    else begin
      let at = t.hand in
      advance t;
      at
    end

  let free_slot t =
    let rec scan i remaining =
      if remaining = 0 then -1
      else if not t.occupied.(i) then i
      else scan ((i + 1) mod t.capacity) (remaining - 1)
    in
    scan t.hand t.capacity

  let evict t =
    if t.size = 0 then None
    else begin
      let i = find_victim t in
      let victim = t.keys.(i) in
      t.occupied.(i) <- false;
      Int_table.remove t.index victim;
      t.size <- t.size - 1;
      Some victim
    end

  let insert t ~pos key =
    let existing = Int_table.get t.index key in
    if existing >= 0 then begin
      t.referenced.(existing) <- (match pos with Policy.Hot -> true | Policy.Cold -> false);
      None
    end
    else begin
      let slot_idx, victim =
        if t.size < t.capacity then begin
          let i = free_slot t in
          assert (i >= 0) (* size < capacity implies a free slot *);
          (i, None)
        end
        else begin
          let i = find_victim t in
          let old = t.keys.(i) in
          Int_table.remove t.index old;
          t.size <- t.size - 1;
          (i, Some old)
        end
      in
      t.keys.(slot_idx) <- key;
      t.occupied.(slot_idx) <- true;
      t.referenced.(slot_idx) <- (match pos with Policy.Hot -> true | Policy.Cold -> false);
      Int_table.set t.index key slot_idx;
      t.size <- t.size + 1;
      victim
    end

  let remove t key =
    let i = Int_table.get t.index key in
    if i >= 0 then begin
      t.occupied.(i) <- false;
      t.referenced.(i) <- false;
      Int_table.remove t.index key;
      t.size <- t.size - 1
    end

  let contents t =
    let out = ref [] in
    for i = t.capacity - 1 downto 0 do
      if t.occupied.(i) then out := t.keys.(i) :: !out
    done;
    !out

  let clear t =
    Array.fill t.occupied 0 t.capacity false;
    Array.fill t.referenced 0 t.capacity false;
    Int_table.clear t.index;
    t.hand <- 0;
    t.size <- 0
end

include Policy.Weighted_of_unit (Core)
