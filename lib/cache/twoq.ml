open Agg_util

module Core = struct
  (* Arena-backed 2Q: A1in and Am are intrusive lists in one arena, the key
     index packs [(node lsl 1) lor where], and the ghost buffer is a
     direct-index membership table plus a fixed int ring for FIFO order.
     The ring, like the Queue it replaces, may hold stale keys whose
     membership was dropped on re-admission — popping one is a no-op on the
     membership table, exactly as before. *)

  let a1in_bit = 0
  let am_bit = 1

  type t = {
    capacity : int;
    a1in_capacity : int;
    ghost_capacity : int;
    arena : Dlist_arena.t;
    a1in : Dlist_arena.list_;
    am : Dlist_arena.list_;
    index : Int_table.t; (* key -> (node lsl 1) lor where *)
    ghost : Int_table.t; (* key -> 1 when remembered *)
    ghost_ring : int array; (* FIFO of remembered keys, stale ones included *)
    mutable ghost_head : int;
    mutable ghost_len : int;
    mutable a1in_len : int;
  }

  let policy_name = "2q"

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Twoq.create: capacity must be positive";
    let arena = Dlist_arena.create ~capacity:(capacity + 4) () in
    let ghost_capacity = max 1 (capacity / 2) in
    {
      capacity;
      a1in_capacity = max 1 (capacity / 4);
      ghost_capacity;
      arena;
      a1in = Dlist_arena.new_list arena;
      am = Dlist_arena.new_list arena;
      index = Int_table.create ~capacity:(2 * capacity) ();
      ghost = Int_table.create ~capacity ();
      ghost_ring = Array.make (ghost_capacity + 1) 0;
      ghost_head = 0;
      ghost_len = 0;
      a1in_len = 0;
    }

  let capacity t = t.capacity
  let size t = Int_table.length t.index
  let mem t key = Int_table.mem t.index key

  let ring_push t key =
    let slot = (t.ghost_head + t.ghost_len) mod Array.length t.ghost_ring in
    t.ghost_ring.(slot) <- key;
    t.ghost_len <- t.ghost_len + 1

  let ring_pop t =
    let key = t.ghost_ring.(t.ghost_head) in
    t.ghost_head <- (t.ghost_head + 1) mod Array.length t.ghost_ring;
    t.ghost_len <- t.ghost_len - 1;
    key

  let ghost_remember t key =
    if not (Int_table.mem t.ghost key) then begin
      Int_table.set t.ghost key 1;
      ring_push t key;
      if t.ghost_len > t.ghost_capacity then Int_table.remove t.ghost (ring_pop t)
    end

  let promote t key =
    let packed = Int_table.get t.index key in
    if packed >= 0 && packed land 1 = am_bit then
      Dlist_arena.move_to_front t.arena t.am (packed lsr 1)
  (* 2Q: a hit in A1in does not reorder the FIFO *)

  (* reclaim space per the 2Q paper: overfull A1in first, else Am *)
  let evict t =
    let from_a1in () =
      let victim = Dlist_arena.pop_back t.arena t.a1in in
      if victim < 0 then None
      else begin
        Int_table.remove t.index victim;
        t.a1in_len <- t.a1in_len - 1;
        ghost_remember t victim;
        Some victim
      end
    in
    let from_am () =
      let victim = Dlist_arena.pop_back t.arena t.am in
      if victim < 0 then None
      else begin
        Int_table.remove t.index victim;
        Some victim
      end
    in
    if t.a1in_len > t.a1in_capacity then from_a1in ()
    else match from_am () with Some v -> Some v | None -> from_a1in ()

  let insert t ~pos key =
    let packed = Int_table.get t.index key in
    if packed >= 0 then begin
      (match pos with
      | Policy.Hot -> promote t key
      | Policy.Cold ->
          let node = packed lsr 1 in
          if packed land 1 = a1in_bit then Dlist_arena.move_to_back t.arena t.a1in node
          else Dlist_arena.move_to_back t.arena t.am node);
      None
    end
    else begin
      let victim = if size t >= t.capacity then evict t else None in
      if Int_table.mem t.ghost key && pos = Policy.Hot then begin
        (* it came back while remembered: it has a working set, admit it
           straight into the main queue *)
        Int_table.remove t.ghost key;
        let node = Dlist_arena.push_front t.arena t.am key in
        Int_table.set t.index key ((node lsl 1) lor am_bit)
      end
      else begin
        let node =
          match pos with
          | Policy.Hot -> Dlist_arena.push_front t.arena t.a1in key
          | Policy.Cold -> Dlist_arena.push_back t.arena t.a1in key
        in
        t.a1in_len <- t.a1in_len + 1;
        Int_table.set t.index key ((node lsl 1) lor a1in_bit)
      end;
      victim
    end

  let remove t key =
    let packed = Int_table.get t.index key in
    if packed >= 0 then begin
      Dlist_arena.remove t.arena (packed lsr 1);
      if packed land 1 = a1in_bit then t.a1in_len <- t.a1in_len - 1;
      Int_table.remove t.index key
    end

  let contents t = Dlist_arena.to_list t.arena t.am @ Dlist_arena.to_list t.arena t.a1in

  let clear t =
    Dlist_arena.clear_list t.arena t.a1in;
    Dlist_arena.clear_list t.arena t.am;
    Int_table.clear t.index;
    Int_table.clear t.ghost;
    t.ghost_head <- 0;
    t.ghost_len <- 0;
    t.a1in_len <- 0

  let in_main t key =
    let packed = Int_table.get t.index key in
    packed >= 0 && packed land 1 = am_bit
end

include Policy.Weighted_of_unit (Core)

let in_main t key = Core.in_main (core t) key
