open Agg_util

type where = A1in | Am

type entry = { mutable where : where; mutable node : int Dlist.node }

type t = {
  capacity : int;
  a1in_capacity : int;
  ghost_capacity : int;
  a1in : int Dlist.t;
  am : int Dlist.t;
  index : (int, entry) Hashtbl.t;
  ghost : (int, unit) Hashtbl.t;
  ghost_order : int Queue.t;
}

let policy_name = "2q"

let create ~capacity =
  if capacity <= 0 then invalid_arg "Twoq.create: capacity must be positive";
  {
    capacity;
    a1in_capacity = max 1 (capacity / 4);
    ghost_capacity = max 1 (capacity / 2);
    a1in = Dlist.create ();
    am = Dlist.create ();
    index = Hashtbl.create (2 * capacity);
    ghost = Hashtbl.create capacity;
    ghost_order = Queue.create ();
  }

let capacity t = t.capacity
let size t = Hashtbl.length t.index
let mem t key = Hashtbl.mem t.index key

let ghost_remember t key =
  if not (Hashtbl.mem t.ghost key) then begin
    Hashtbl.replace t.ghost key ();
    Queue.push key t.ghost_order;
    if Queue.length t.ghost_order > t.ghost_capacity then
      Hashtbl.remove t.ghost (Queue.pop t.ghost_order)
  end

let promote t key =
  match Hashtbl.find_opt t.index key with
  | Some entry -> (
      match entry.where with
      | Am -> Dlist.move_to_front t.am entry.node
      | A1in -> () (* 2Q: a hit in A1in does not reorder the FIFO *))
  | None -> ()

(* reclaim space per the 2Q paper: overfull A1in first, else Am *)
let evict t =
  let from_a1in () =
    match Dlist.pop_back t.a1in with
    | Some victim ->
        Hashtbl.remove t.index victim;
        ghost_remember t victim;
        Some victim
    | None -> None
  in
  let from_am () =
    match Dlist.pop_back t.am with
    | Some victim ->
        Hashtbl.remove t.index victim;
        Some victim
    | None -> None
  in
  if Dlist.length t.a1in > t.a1in_capacity then from_a1in ()
  else match from_am () with Some v -> Some v | None -> from_a1in ()

let insert t ~pos key =
  match Hashtbl.find_opt t.index key with
  | Some entry ->
      (match pos with
      | Policy.Hot -> promote t key
      | Policy.Cold -> (
          match entry.where with
          | A1in -> Dlist.move_to_back t.a1in entry.node
          | Am -> Dlist.move_to_back t.am entry.node));
      None
  | None ->
      let victim = if size t >= t.capacity then evict t else None in
      let entry =
        if Hashtbl.mem t.ghost key && pos = Policy.Hot then begin
          (* it came back while remembered: it has a working set, admit
             it straight into the main queue *)
          Hashtbl.remove t.ghost key;
          { where = Am; node = Dlist.push_front t.am key }
        end
        else
          let node =
            match pos with
            | Policy.Hot -> Dlist.push_front t.a1in key
            | Policy.Cold -> Dlist.push_back t.a1in key
          in
          { where = A1in; node }
      in
      Hashtbl.replace t.index key entry;
      victim

let remove t key =
  match Hashtbl.find_opt t.index key with
  | Some entry ->
      (match entry.where with
      | A1in -> Dlist.remove t.a1in entry.node
      | Am -> Dlist.remove t.am entry.node);
      Hashtbl.remove t.index key
  | None -> ()

let contents t = Dlist.to_list t.am @ Dlist.to_list t.a1in

let clear t =
  Dlist.clear t.a1in;
  Dlist.clear t.am;
  Hashtbl.reset t.index;
  Hashtbl.reset t.ghost;
  Queue.clear t.ghost_order

let in_main t key =
  match Hashtbl.find_opt t.index key with Some entry -> entry.where = Am | None -> false
