open Agg_util

module Core = struct
  type list_id = T1 | T2 | B1 | B2

  type entry = { mutable where : list_id; mutable node : int Dlist.node }

  type t = {
    capacity : int;
    t1 : int Dlist.t;
    t2 : int Dlist.t;
    b1 : int Dlist.t;
    b2 : int Dlist.t;
    index : (int, entry) Hashtbl.t; (* resident and ghost keys *)
    mutable p : int; (* adaptation target for |T1| *)
  }

  let policy_name = "arc"

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Arc.create: capacity must be positive";
    {
      capacity;
      t1 = Dlist.create ();
      t2 = Dlist.create ();
      b1 = Dlist.create ();
      b2 = Dlist.create ();
      index = Hashtbl.create (4 * capacity);
      p = 0;
    }

  let capacity t = t.capacity
  let size t = Dlist.length t.t1 + Dlist.length t.t2

  let is_resident where = match where with T1 | T2 -> true | B1 | B2 -> false

  let mem t key =
    match Hashtbl.find_opt t.index key with
    | Some entry -> is_resident entry.where
    | None -> false

  let dlist_of t = function T1 -> t.t1 | T2 -> t.t2 | B1 -> t.b1 | B2 -> t.b2

  let detach t entry = Dlist.remove (dlist_of t entry.where) entry.node

  let attach_front t entry where key =
    entry.where <- where;
    entry.node <- Dlist.push_front (dlist_of t where) key

  let attach_back t entry where key =
    entry.where <- where;
    entry.node <- Dlist.push_back (dlist_of t where) key

  let drop_ghost_lru t ghost =
    match Dlist.pop_back (dlist_of t ghost) with
    | Some key -> Hashtbl.remove t.index key
    | None -> ()

  (* ARC's REPLACE: evict from T1 into ghost B1 when T1 exceeds the target,
     otherwise from T2 into B2. Returns the evicted (resident) key. *)
  let replace t ~hit_in_b2 =
    let t1_len = Dlist.length t.t1 in
    let from_t1 = t1_len >= 1 && (t1_len > t.p || (hit_in_b2 && t1_len = t.p)) in
    let source, ghost = if from_t1 then (t.t1, B1) else (t.t2, B2) in
    match Dlist.pop_back source with
    | Some victim ->
        (match Hashtbl.find_opt t.index victim with
        | Some entry -> attach_front t entry ghost victim
        | None -> ());
        Some victim
    | None -> (
        (* the chosen list was empty; take the other one *)
        let source, ghost = if from_t1 then (t.t2, B2) else (t.t1, B1) in
        match Dlist.pop_back source with
        | Some victim ->
            (match Hashtbl.find_opt t.index victim with
            | Some entry -> attach_front t entry ghost victim
            | None -> ());
            Some victim
        | None -> None)

  let promote t key =
    match Hashtbl.find_opt t.index key with
    | Some entry when is_resident entry.where ->
        detach t entry;
        attach_front t entry T2 key
    | Some _ | None -> ()

  let insert t ~pos key =
    match Hashtbl.find_opt t.index key with
    | Some entry when is_resident entry.where ->
        (match pos with
        | Policy.Hot -> promote t key
        | Policy.Cold ->
            detach t entry;
            attach_back t entry T1 key);
        None
    | Some entry -> (
        (* ghost hit *)
        match pos with
        | Policy.Hot ->
            let b1_len = max 1 (Dlist.length t.b1) in
            let b2_len = max 1 (Dlist.length t.b2) in
            let hit_in_b2 = entry.where = B2 in
            if hit_in_b2 then t.p <- max 0 (t.p - max 1 (b1_len / b2_len))
            else t.p <- min t.capacity (t.p + max 1 (b2_len / b1_len));
            let victim = if size t >= t.capacity then replace t ~hit_in_b2 else None in
            detach t entry;
            attach_front t entry T2 key;
            victim
        | Policy.Cold ->
            let victim = if size t >= t.capacity then replace t ~hit_in_b2:false else None in
            detach t entry;
            attach_back t entry T1 key;
            victim)
    | None ->
        (* ARC case IV: a completely new key. *)
        let l1 = Dlist.length t.t1 + Dlist.length t.b1 in
        let total =
          Dlist.length t.t1 + Dlist.length t.t2 + Dlist.length t.b1 + Dlist.length t.b2
        in
        let victim =
          if l1 >= t.capacity then
            if Dlist.length t.t1 < t.capacity then begin
              (* the ghost half of L1 is over budget: recycle its LRU slot *)
              drop_ghost_lru t B1;
              replace t ~hit_in_b2:false
            end
            else begin
              (* T1 alone fills the cache: discard its LRU outright *)
              match Dlist.pop_back t.t1 with
              | Some v ->
                  Hashtbl.remove t.index v;
                  Some v
              | None -> None
            end
          else if total >= t.capacity then begin
            if total >= 2 * t.capacity then drop_ghost_lru t B2;
            if size t >= t.capacity then replace t ~hit_in_b2:false else None
          end
          else None
        in
        let node =
          match pos with
          | Policy.Hot -> Dlist.push_front t.t1 key
          | Policy.Cold -> Dlist.push_back t.t1 key
        in
        Hashtbl.replace t.index key { where = T1; node };
        victim

  let evict t = replace t ~hit_in_b2:false

  let remove t key =
    match Hashtbl.find_opt t.index key with
    | Some entry ->
        detach t entry;
        Hashtbl.remove t.index key
    | None -> ()

  let contents t = Dlist.to_list t.t2 @ Dlist.to_list t.t1

  let clear t =
    List.iter
      (fun dlist ->
        let rec drain () = match Dlist.pop_front dlist with Some _ -> drain () | None -> () in
        drain ())
      [ t.t1; t.t2; t.b1; t.b2 ];
    Hashtbl.reset t.index;
    t.p <- 0

  let target t = t.p

  let in_t2 t key =
    match Hashtbl.find_opt t.index key with Some entry -> entry.where = T2 | None -> false
end

include Policy.Weighted_of_unit (Core)

let target t = Core.target (core t)
let in_t2 t key = Core.in_t2 (core t) key
