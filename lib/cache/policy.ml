type insert_position = Hot | Cold

type weight = { size : int; cost : int }

let unit_weight = { size = 1; cost = 1 }
let is_unit w = w.size = 1 && w.cost = 1

let check_weight ~who w =
  if w.size <= 0 then
    invalid_arg (Printf.sprintf "%s: weight size must be positive (got %d)" who w.size);
  if w.cost <= 0 then
    invalid_arg (Printf.sprintf "%s: weight cost must be positive (got %d)" who w.cost)

let pp_weight ppf w = Format.fprintf ppf "{size=%d; cost=%d}" w.size w.cost

module type S = sig
  type t

  val policy_name : string
  val create : capacity:int -> t
  val capacity : t -> int
  val size : t -> int
  val used : t -> int
  val mem : t -> int -> bool
  val promote : t -> int -> unit
  val insert : t -> pos:insert_position -> weight:weight -> int -> int list
  val charge : t -> int -> cost:int -> unit
  val evict : t -> int option
  val remove : t -> int -> unit
  val contents : t -> int list
  val clear : t -> unit
end

module type UNIT = sig
  type t

  val policy_name : string
  val create : capacity:int -> t
  val capacity : t -> int
  val size : t -> int
  val mem : t -> int -> bool
  val promote : t -> int -> unit
  val insert : t -> pos:insert_position -> int -> int option
  val evict : t -> int option
  val remove : t -> int -> unit
  val contents : t -> int list
  val clear : t -> unit
end

module Weighted_of_unit (Core : UNIT) = struct
  (* Sizes are tracked beside the core: only non-unit entries are stored,
     so while every resident has size 1 the side table stays empty and
     [used] mirrors the core's count exactly. *)
  type t = {
    core : Core.t;
    sizes : Agg_util.Int_table.t; (* key -> size, non-unit entries only *)
    mutable nonunit : int; (* residents whose size is not 1 *)
    mutable used : int; (* total resident size *)
  }

  let policy_name = Core.policy_name

  let of_core core =
    { core; sizes = Agg_util.Int_table.create (); nonunit = 0; used = Core.size core }

  let core t = t.core
  let create ~capacity = of_core (Core.create ~capacity)
  let capacity t = Core.capacity t.core
  let size t = Core.size t.core
  let used t = t.used
  let mem t key = Core.mem t.core key
  let promote t key = Core.promote t.core key
  let charge _ _ ~cost:_ = ()

  let size_of t key =
    let s = Agg_util.Int_table.get t.sizes key in
    if s < 0 then 1 else s

  let note_drop t key =
    let s = size_of t key in
    t.used <- t.used - s;
    if s <> 1 then begin
      Agg_util.Int_table.remove t.sizes key;
      t.nonunit <- t.nonunit - 1
    end

  let evict t =
    match Core.evict t.core with
    | Some victim as r ->
        note_drop t victim;
        r
    | None -> None

  let remove t key =
    if Core.mem t.core key then note_drop t key;
    (* always delegate: cores with ghost state forget ghosts on remove *)
    Core.remove t.core key

  let insert t ~pos ~weight:w key =
    check_weight ~who:Core.policy_name w;
    if Core.mem t.core key then begin
      (* reposition only; the key keeps the size it was admitted with *)
      ignore (Core.insert t.core ~pos key);
      []
    end
    else if w.size > Core.capacity t.core then
      (* larger than the whole cache: bypass, evicting nothing *)
      []
    else if t.nonunit = 0 && w.size = 1 then begin
      (* all-unit fast path: the core's native insert picks the single
         victim exactly as the unweighted policy did *)
      match Core.insert t.core ~pos key with
      | Some victim -> [ victim ] (* unit out, unit in: [used] unchanged *)
      | None ->
          t.used <- t.used + 1;
          []
    end
    else begin
      let victims = ref [] in
      while t.used + w.size > Core.capacity t.core do
        match Core.evict t.core with
        | Some v ->
            note_drop t v;
            victims := v :: !victims
        | None -> assert false (* used > 0 implies a resident victim *)
      done;
      (* sizes are >= 1, so count <= used <= capacity - w.size < capacity and
         the core sees room by resident count — but ghost-bearing cores (ARC)
         may still shed a resident under directory pressure, so any victim it
         returns is a real eviction and must be accounted *)
      (match Core.insert t.core ~pos key with
      | Some v ->
          note_drop t v;
          victims := v :: !victims
      | None -> ());
      t.used <- t.used + w.size;
      if w.size <> 1 then begin
        Agg_util.Int_table.set t.sizes key w.size;
        t.nonunit <- t.nonunit + 1
      end;
      List.rev !victims
    end

  let contents t = Core.contents t.core

  let clear t =
    Core.clear t.core;
    Agg_util.Int_table.clear t.sizes;
    t.nonunit <- 0;
    t.used <- 0
end
