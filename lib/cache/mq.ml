open Agg_util

type entry = {
  mutable count : int; (* lifetime reference count (restored from ghost) *)
  mutable queue : int;
  mutable node : int Dlist.node;
  mutable expire : int; (* demote when current time passes this *)
}

type t = {
  capacity : int;
  lifetime : int;
  queues : int Dlist.t array;
  index : (int, entry) Hashtbl.t;
  (* ghost buffer: reference counts of recently evicted keys, FIFO *)
  ghost : (int, int) Hashtbl.t;
  ghost_order : int Queue.t;
  ghost_capacity : int;
  mutable time : int;
}

let policy_name = "mq"

let create_tuned ~capacity ~queues ~lifetime ~ghost_factor =
  if capacity <= 0 then invalid_arg "Mq.create: capacity must be positive";
  if queues <= 0 then invalid_arg "Mq.create: queues must be positive";
  {
    capacity;
    lifetime;
    queues = Array.init queues (fun _ -> Dlist.create ());
    index = Hashtbl.create (2 * capacity);
    ghost = Hashtbl.create (2 * capacity);
    ghost_order = Queue.create ();
    ghost_capacity = ghost_factor * capacity;
    time = 0;
  }

let create ~capacity = create_tuned ~capacity ~queues:8 ~lifetime:(4 * capacity) ~ghost_factor:4

let capacity t = t.capacity
let size t = Hashtbl.length t.index
let mem t key = Hashtbl.mem t.index key

(* queue for a block referenced [count] times: floor(log2 count), capped *)
let queue_for t count =
  if count <= 0 then 0
  else begin
    let q = ref 0 in
    let c = ref count in
    while !c > 1 do
      c := !c lsr 1;
      incr q
    done;
    min !q (Array.length t.queues - 1)
  end

let place t key entry ~front =
  let dst = t.queues.(entry.queue) in
  entry.node <- (if front then Dlist.push_front dst key else Dlist.push_back dst key)

(* MQ's Adjust(): demote expired LRU-end blocks one queue at a time. *)
let adjust t =
  let m = Array.length t.queues in
  for q = m - 1 downto 1 do
    match Dlist.peek_back t.queues.(q) with
    | Some key -> (
        match Hashtbl.find_opt t.index key with
        | Some entry when entry.expire < t.time ->
            Dlist.remove t.queues.(q) entry.node;
            entry.queue <- q - 1;
            entry.expire <- t.time + t.lifetime;
            place t key entry ~front:true
        | Some _ | None -> ())
    | None -> ()
  done

let tick t =
  t.time <- t.time + 1;
  adjust t

let ghost_remember t key count =
  if not (Hashtbl.mem t.ghost key) then begin
    Queue.push key t.ghost_order;
    if Queue.length t.ghost_order > t.ghost_capacity then begin
      let victim = Queue.pop t.ghost_order in
      Hashtbl.remove t.ghost victim
    end
  end;
  Hashtbl.replace t.ghost key count

let promote t key =
  match Hashtbl.find_opt t.index key with
  | Some entry ->
      tick t;
      Dlist.remove t.queues.(entry.queue) entry.node;
      entry.count <- entry.count + 1;
      entry.queue <- queue_for t entry.count;
      entry.expire <- t.time + t.lifetime;
      place t key entry ~front:true
  | None -> ()

(* victim: LRU end of the lowest non-empty queue *)
let evict t =
  let m = Array.length t.queues in
  let rec scan q =
    if q >= m then None
    else
      match Dlist.pop_back t.queues.(q) with
      | Some victim ->
          (match Hashtbl.find_opt t.index victim with
          | Some entry -> ghost_remember t victim entry.count
          | None -> ());
          Hashtbl.remove t.index victim;
          Some victim
      | None -> scan (q + 1)
  in
  scan 0

let insert t ~pos key =
  match Hashtbl.find_opt t.index key with
  | Some entry ->
      (match pos with
      | Policy.Hot -> promote t key
      | Policy.Cold ->
          (* demote to the cold end of the bottom queue *)
          Dlist.remove t.queues.(entry.queue) entry.node;
          entry.queue <- 0;
          entry.count <- 0;
          place t key entry ~front:false);
      None
  | None ->
      tick t;
      let victim = if size t >= t.capacity then evict t else None in
      let remembered = Option.value ~default:0 (Hashtbl.find_opt t.ghost key) in
      let count = match pos with Policy.Hot -> remembered + 1 | Policy.Cold -> 0 in
      let queue = queue_for t count in
      let dst = t.queues.(queue) in
      let node =
        match pos with
        | Policy.Hot -> Dlist.push_front dst key
        | Policy.Cold -> Dlist.push_back dst key
      in
      Hashtbl.replace t.index key { count; queue; node; expire = t.time + t.lifetime };
      victim

let remove t key =
  match Hashtbl.find_opt t.index key with
  | Some entry ->
      Dlist.remove t.queues.(entry.queue) entry.node;
      Hashtbl.remove t.index key
  | None -> ()

let contents t =
  let out = ref [] in
  Array.iter (fun q -> Dlist.iter (fun key -> out := key :: !out) q) t.queues;
  (* collected low-queue-first front-to-back; reverse for hot-first *)
  !out

let clear t =
  Array.iter Dlist.clear t.queues;
  Hashtbl.reset t.index;
  Hashtbl.reset t.ghost;
  Queue.clear t.ghost_order;
  t.time <- 0

let queue_of t key = Option.map (fun e -> e.queue) (Hashtbl.find_opt t.index key)
