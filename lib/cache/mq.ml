open Agg_util

module Core = struct
  (* Arena-backed MQ: every queue is an intrusive list in one shared arena.
     A resident key's node index is stable for its whole residency (moves
     between queues relink in place), so the per-entry bookkeeping lives in
     side arrays indexed by node — no boxed entries, no hashing. The ghost
     buffer is a direct-index count table plus a fixed int ring. *)

  type t = {
    capacity : int;
    lifetime : int;
    arena : Dlist_arena.t;
    queues : Dlist_arena.list_ array;
    index : Int_table.t; (* key -> node *)
    (* side arrays indexed by node *)
    mutable count : int array; (* lifetime reference count (restored from ghost) *)
    mutable queue : int array;
    mutable expire : int array; (* demote when current time passes this *)
    (* ghost buffer: reference counts of recently evicted keys, FIFO *)
    ghost : Int_table.t; (* key -> remembered count *)
    ghost_ring : int array;
    mutable ghost_head : int;
    mutable ghost_len : int;
    mutable size : int;
    mutable time : int;
  }

  let policy_name = "mq"

  let create_tuned ~capacity ~queues ~lifetime ~ghost_factor =
    if capacity <= 0 then invalid_arg "Mq.create: capacity must be positive";
    if queues <= 0 then invalid_arg "Mq.create: queues must be positive";
    let arena = Dlist_arena.create ~capacity:(capacity + queues + 2) () in
    let ghost_capacity = ghost_factor * capacity in
    {
      capacity;
      lifetime;
      arena;
      queues = Array.init queues (fun _ -> Dlist_arena.new_list arena);
      index = Int_table.create ~capacity:(2 * capacity) ();
      count = Array.make (capacity + queues + 2) 0;
      queue = Array.make (capacity + queues + 2) 0;
      expire = Array.make (capacity + queues + 2) 0;
      ghost = Int_table.create ~capacity:(2 * capacity) ();
      ghost_ring = Array.make (ghost_capacity + 1) 0;
      ghost_head = 0;
      ghost_len = 0;
      size = 0;
      time = 0;
    }

  let create ~capacity = create_tuned ~capacity ~queues:8 ~lifetime:(4 * capacity) ~ghost_factor:4

  let capacity t = t.capacity
  let size t = t.size
  let mem t key = Int_table.mem t.index key

  (* The arena grows by doubling; keep the node-indexed side arrays covering
     every slot it can hand out. *)
  let ensure_node t node =
    if node >= Array.length t.count then begin
      let grow a = Array.append a (Array.make (max (Array.length a) (node + 1)) 0) in
      t.count <- grow t.count;
      t.queue <- grow t.queue;
      t.expire <- grow t.expire
    end

  (* queue for a block referenced [count] times: floor(log2 count), capped *)
  let queue_for t count =
    if count <= 0 then 0
    else begin
      let q = ref 0 in
      let c = ref count in
      while !c > 1 do
        c := !c lsr 1;
        incr q
      done;
      min !q (Array.length t.queues - 1)
    end

  (* MQ's Adjust(): demote expired LRU-end blocks one queue at a time. *)
  let adjust t =
    let m = Array.length t.queues in
    for q = m - 1 downto 1 do
      let node = Dlist_arena.last t.arena t.queues.(q) in
      if node >= 0 && t.expire.(node) < t.time then begin
        t.queue.(node) <- q - 1;
        t.expire.(node) <- t.time + t.lifetime;
        Dlist_arena.move_to_front t.arena t.queues.(q - 1) node
      end
    done

  let tick t =
    t.time <- t.time + 1;
    adjust t

  let ghost_count t key =
    let v = Int_table.get t.ghost key in
    if v < 0 then 0 else v

  let ghost_remember t key count =
    if not (Int_table.mem t.ghost key) then begin
      let slot = (t.ghost_head + t.ghost_len) mod Array.length t.ghost_ring in
      t.ghost_ring.(slot) <- key;
      t.ghost_len <- t.ghost_len + 1;
      if t.ghost_len > Array.length t.ghost_ring - 1 then begin
        let victim = t.ghost_ring.(t.ghost_head) in
        t.ghost_head <- (t.ghost_head + 1) mod Array.length t.ghost_ring;
        t.ghost_len <- t.ghost_len - 1;
        Int_table.remove t.ghost victim
      end
    end;
    Int_table.set t.ghost key count

  let promote t key =
    let node = Int_table.get t.index key in
    if node >= 0 then begin
      tick t;
      t.count.(node) <- t.count.(node) + 1;
      t.queue.(node) <- queue_for t t.count.(node);
      t.expire.(node) <- t.time + t.lifetime;
      Dlist_arena.move_to_front t.arena t.queues.(t.queue.(node)) node
    end

  (* victim: LRU end of the lowest non-empty queue *)
  let evict t =
    let m = Array.length t.queues in
    let rec scan q =
      if q >= m then None
      else begin
        let node = Dlist_arena.last t.arena t.queues.(q) in
        if node < 0 then scan (q + 1)
        else begin
          let victim = Dlist_arena.key t.arena node in
          ghost_remember t victim t.count.(node);
          Dlist_arena.remove t.arena node;
          Int_table.remove t.index victim;
          t.size <- t.size - 1;
          Some victim
        end
      end
    in
    scan 0

  let insert t ~pos key =
    let node = Int_table.get t.index key in
    if node >= 0 then begin
      (match pos with
      | Policy.Hot -> promote t key
      | Policy.Cold ->
          (* demote to the cold end of the bottom queue *)
          t.queue.(node) <- 0;
          t.count.(node) <- 0;
          Dlist_arena.move_to_back t.arena t.queues.(0) node);
      None
    end
    else begin
      tick t;
      let victim = if t.size >= t.capacity then evict t else None in
      let count = match pos with Policy.Hot -> ghost_count t key + 1 | Policy.Cold -> 0 in
      let queue = queue_for t count in
      let dst = t.queues.(queue) in
      let node =
        match pos with
        | Policy.Hot -> Dlist_arena.push_front t.arena dst key
        | Policy.Cold -> Dlist_arena.push_back t.arena dst key
      in
      ensure_node t node;
      t.count.(node) <- count;
      t.queue.(node) <- queue;
      t.expire.(node) <- t.time + t.lifetime;
      Int_table.set t.index key node;
      t.size <- t.size + 1;
      victim
    end

  let remove t key =
    let node = Int_table.get t.index key in
    if node >= 0 then begin
      Dlist_arena.remove t.arena node;
      Int_table.remove t.index key;
      t.size <- t.size - 1
    end

  let contents t =
    let out = ref [] in
    Array.iter (fun q -> Dlist_arena.iter t.arena q (fun key -> out := key :: !out)) t.queues;
    (* collected low-queue-first front-to-back; reverse for hot-first *)
    !out

  let clear t =
    Array.iter (fun q -> Dlist_arena.clear_list t.arena q) t.queues;
    Int_table.clear t.index;
    Int_table.clear t.ghost;
    t.ghost_head <- 0;
    t.ghost_len <- 0;
    t.size <- 0;
    t.time <- 0

  let queue_of t key =
    let node = Int_table.get t.index key in
    if node < 0 then None else Some t.queue.(node)
end

include Policy.Weighted_of_unit (Core)

let create_tuned ~capacity ~queues ~lifetime ~ghost_factor =
  of_core (Core.create_tuned ~capacity ~queues ~lifetime ~ghost_factor)

let queue_of t key = Core.queue_of (core t) key
