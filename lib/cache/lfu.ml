open Agg_util

module Core = struct
  type entry = { mutable count : int; mutable tick : int }

  type t = {
    capacity : int;
    index : (int, entry) Hashtbl.t;
    (* Min-heap of (count, tick, key) snapshots with lazy invalidation: an
       entry is live only if its snapshot matches the table. *)
    heap : (int * int * int, int) Heap.t;
    mutable clock : int;
  }

  let policy_name = "lfu"

  let compare_prio (c1, t1, _) (c2, t2, _) =
    match compare c1 c2 with 0 -> compare t1 t2 | c -> c

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Lfu.create: capacity must be positive";
    {
      capacity;
      index = Hashtbl.create (2 * capacity);
      heap = Heap.create ~compare:compare_prio ();
      clock = 0;
    }

  let capacity t = t.capacity
  let size t = Hashtbl.length t.index
  let mem t key = Hashtbl.mem t.index key

  let tick t =
    t.clock <- t.clock + 1;
    t.clock

  let push_snapshot t key entry = Heap.push t.heap (entry.count, entry.tick, key) key

  let promote t key =
    match Hashtbl.find_opt t.index key with
    | Some entry ->
        entry.count <- entry.count + 1;
        entry.tick <- tick t;
        push_snapshot t key entry
    | None -> ()

  let rec evict t =
    match Heap.pop t.heap with
    | None -> None
    | Some ((count, tk, _), key) -> (
        match Hashtbl.find_opt t.index key with
        | Some entry when entry.count = count && entry.tick = tk ->
            Hashtbl.remove t.index key;
            Some key
        | Some _ | None -> evict t (* stale snapshot *))

  let insert t ~pos key =
    match Hashtbl.find_opt t.index key with
    | Some entry ->
        (* Repositioning a resident key: [Cold] demotes it to frequency
           zero, [Hot] counts as an access. *)
        (match pos with
        | Policy.Hot -> entry.count <- entry.count + 1
        | Policy.Cold -> entry.count <- 0);
        entry.tick <- tick t;
        push_snapshot t key entry;
        None
    | None ->
        let victim = if size t >= t.capacity then evict t else None in
        let count = match pos with Policy.Hot -> 1 | Policy.Cold -> 0 in
        let entry = { count; tick = tick t } in
        Hashtbl.replace t.index key entry;
        push_snapshot t key entry;
        victim

  let remove t key = Hashtbl.remove t.index key

  let contents t =
    let entries = Hashtbl.fold (fun key entry acc -> (entry.count, entry.tick, key) :: acc) t.index [] in
    let sorted = List.sort (fun a b -> compare_prio b a) entries in
    List.map (fun (_, _, key) -> key) sorted

  let clear t =
    Hashtbl.reset t.index;
    Heap.clear t.heap;
    t.clock <- 0

  let frequency t key = Option.map (fun e -> e.count) (Hashtbl.find_opt t.index key)
end

include Policy.Weighted_of_unit (Core)

let frequency t key = Core.frequency (core t) key
