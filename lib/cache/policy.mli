(** The replacement-policy interface shared by every cache simulated in
    this repository, in its size/cost-aware (weighted) form.

    Keys are plain integers (file identifiers). A policy owns only the
    {e ordering and accounting} logic; hit/miss statistics live in
    {!Cache}. The interface is deliberately finer-grained than [access]:
    the aggregating cache inserts speculative group members at the cold
    end of the recency order without recording an access, which requires
    separate [promote] and [insert] operations.

    Every key carries a {!weight} — a [size] (how much capacity it
    occupies) and a retrieval [cost] (what fetching it again would cost).
    The classical unit-weight policies implement the same signature via
    {!Weighted_of_unit}; at [size = cost = 1] their behaviour is
    observably identical to the historical unweighted interface
    (exactly one victim per full insert, [used = size]). *)

type insert_position =
  | Hot  (** the position a freshly demanded item gets (MRU head for LRU) *)
  | Cold  (** the next-to-evict end; used for speculative group members *)

type weight = { size : int; cost : int }
(** Both components must be positive; see {!check_weight}. [size] is in
    abstract capacity units ("blocks"), [cost] in abstract retrieval-cost
    units. *)

val unit_weight : weight
(** [{size = 1; cost = 1}] — the paper's model, and the default
    everywhere. *)

val is_unit : weight -> bool

val check_weight : who:string -> weight -> unit
(** @raise Invalid_argument when either component is non-positive,
    prefixed with [who]. *)

val pp_weight : Format.formatter -> weight -> unit

module type S = sig
  type t

  val policy_name : string

  val create : capacity:int -> t
  (** [create ~capacity] is an empty cache holding at most [capacity]
      total resident {e size}.
      @raise Invalid_argument when [capacity <= 0]. *)

  val capacity : t -> int

  val size : t -> int
  (** Number of resident keys. *)

  val used : t -> int
  (** Total resident size — [Σ weight.size] over residents. Equal to
      {!size} while every resident was inserted at unit size. The
      conservation invariant [used t <= capacity t] holds after every
      operation. *)

  val mem : t -> int -> bool

  val promote : t -> int -> unit
  (** [promote t key] records an access to a resident [key] (e.g. moves it
      to the MRU position, bumps its frequency). No-op when absent. *)

  val insert : t -> pos:insert_position -> weight:weight -> int -> int list
  (** [insert t ~pos ~weight key] makes [key] resident, evicting as many
      victims as needed to fit [weight.size], and returns them in
      eviction order. Inserting a resident key only repositions it (never
      evicts, never changes its recorded weight) and returns [[]]. A key
      with [weight.size > capacity t] is {e not} admitted: nothing is
      evicted and [[]] is returned (the oversize-bypass rule, as in
      Landlord).
      @raise Invalid_argument when [weight] has a non-positive component. *)

  val charge : t -> int -> cost:int -> unit
  (** [charge t key ~cost] re-credits a resident [key] after a demand hit
      — the hook for rent-based policies: Landlord resets the key's
      credit to [cost]. A no-op for the classical unit policies and when
      [key] is absent. *)

  val evict : t -> int option
  (** [evict t] forces out the policy's current victim and returns it;
      [None] when empty. Used to make room for a group before appending
      its members, so members do not evict one another. *)

  val remove : t -> int -> unit
  (** Drops [key] if resident. *)

  val contents : t -> int list
  (** Resident keys, hot end first where the policy has an order. *)

  val clear : t -> unit
end

(** The historical unit-weight policy surface — what the ten classical
    policies implement natively. *)
module type UNIT = sig
  type t

  val policy_name : string
  val create : capacity:int -> t
  val capacity : t -> int
  val size : t -> int
  val mem : t -> int -> bool
  val promote : t -> int -> unit

  val insert : t -> pos:insert_position -> int -> int option
  (** Evicts at most one (unit-size) victim, chosen by the policy's own
      full-cache insert path. *)

  val evict : t -> int option
  val remove : t -> int -> unit
  val contents : t -> int list
  val clear : t -> unit
end

(** [Weighted_of_unit (Core)] lifts a unit-weight policy to the weighted
    interface. Sizes are tracked beside the core; while every resident is
    unit-size, [insert] delegates to the core's native insert (identical
    victims, access for access, to the unweighted policy). Once non-unit
    sizes are resident, room is made by repeated [Core.evict] until
    [used + size <= capacity]. [charge] is a no-op. *)
module Weighted_of_unit (Core : UNIT) : sig
  include S

  val core : t -> Core.t
  (** The wrapped unit policy — for policy-specific probes
      ([Mq.queue_of], [Arc.target], …). *)

  val of_core : Core.t -> t
  (** Wraps an already-built core (for tuned/seeded constructors). The
      core's current residents are assumed unit-size. *)
end
