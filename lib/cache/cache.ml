type kind = Lru | Lfu | Fifo | Mru | Clock | Random | Mq | Slru | Twoq | Arc

let kind_name = function
  | Lru -> "lru"
  | Lfu -> "lfu"
  | Fifo -> "fifo"
  | Mru -> "mru"
  | Clock -> "clock"
  | Random -> "random"
  | Mq -> "mq"
  | Slru -> "slru"
  | Twoq -> "2q"
  | Arc -> "arc"

let kind_of_string = function
  | "lru" -> Some Lru
  | "lfu" -> Some Lfu
  | "fifo" -> Some Fifo
  | "mru" -> Some Mru
  | "clock" -> Some Clock
  | "random" -> Some Random
  | "mq" -> Some Mq
  | "slru" -> Some Slru
  | "2q" | "twoq" -> Some Twoq
  | "arc" -> Some Arc
  | _ -> None

let all_kinds = [ Lru; Lfu; Fifo; Mru; Clock; Random; Mq; Slru; Twoq; Arc ]

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  insertions : int;
  speculative_insertions : int;
  evictions : int;
}

let pp_stats ppf s =
  Format.fprintf ppf "accesses=%d hits=%d misses=%d insertions=%d speculative=%d evictions=%d"
    s.accesses s.hits s.misses s.insertions s.speculative_insertions s.evictions

type weighted_stats = {
  bytes_accessed : int;
  bytes_hit : int;
  cost_fetched : int;
  cost_prefetched : int;
}

let pp_weighted_stats ppf s =
  Format.fprintf ppf "bytes_accessed=%d bytes_hit=%d cost_fetched=%d cost_prefetched=%d"
    s.bytes_accessed s.bytes_hit s.cost_fetched s.cost_prefetched

type packed = Packed : (module Policy.S with type t = 'a) * 'a -> packed

(* Counters live as mutable fields — the exposed [stats] record is only
   materialized on demand, so the access path allocates nothing. *)
type t = {
  kind : kind option;
  name : string;
  packed : packed;
  weight_of : (int -> Policy.weight) option;
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable speculative_insertions : int;
  mutable evictions : int;
  mutable bytes_accessed : int;
  mutable bytes_hit : int;
  mutable cost_fetched : int;
  mutable cost_prefetched : int;
  mutable on_evict : (int -> unit) option;
}

let make_packed kind ~capacity =
  match kind with
  | Lru -> Packed ((module Lru), Lru.create ~capacity)
  | Lfu -> Packed ((module Lfu), Lfu.create ~capacity)
  | Fifo -> Packed ((module Fifo), Fifo.create ~capacity)
  | Mru -> Packed ((module Mru), Mru.create ~capacity)
  | Clock -> Packed ((module Clock), Clock.create ~capacity)
  | Random -> Packed ((module Random_policy), Random_policy.create ~capacity)
  | Mq -> Packed ((module Mq), Mq.create ~capacity)
  | Slru -> Packed ((module Slru), Slru.create ~capacity)
  | Twoq -> Packed ((module Twoq), Twoq.create ~capacity)
  | Arc -> Packed ((module Arc), Arc.create ~capacity)

let make ~kind ~name ~packed ~weight_of =
  {
    kind;
    name;
    packed;
    weight_of;
    accesses = 0;
    hits = 0;
    misses = 0;
    insertions = 0;
    speculative_insertions = 0;
    evictions = 0;
    bytes_accessed = 0;
    bytes_hit = 0;
    cost_fetched = 0;
    cost_prefetched = 0;
    on_evict = None;
  }

let create ?weight_of kind ~capacity =
  make ~kind:(Some kind) ~name:(kind_name kind) ~packed:(make_packed kind ~capacity) ~weight_of

let of_policy (type a) ?weight_of (module P : Policy.S with type t = a) state =
  make ~kind:None ~name:P.policy_name ~packed:(Packed ((module P), state)) ~weight_of

let set_on_evict t f = t.on_evict <- Some f
let clear_on_evict t = t.on_evict <- None

let notify_evicted t victims =
  match t.on_evict with Some f -> List.iter f victims | None -> ()

let notify_evict1 t victim =
  match (t.on_evict, victim) with
  | Some f, Some key -> f key
  | None, _ | _, None -> ()

let kind t = t.kind
let name t = t.name

let weight_for t key =
  match t.weight_of with None -> Policy.unit_weight | Some f -> f key

let capacity t =
  let (Packed ((module P), state)) = t.packed in
  P.capacity state

let size t =
  let (Packed ((module P), state)) = t.packed in
  P.size state

let used t =
  let (Packed ((module P), state)) = t.packed in
  P.used state

let mem t key =
  let (Packed ((module P), state)) = t.packed in
  P.mem state key

let raw_insert t ~pos ~weight key =
  let (Packed ((module P), state)) = t.packed in
  let victims = P.insert state ~pos ~weight key in
  notify_evicted t victims;
  victims

let access t key =
  let (Packed ((module P), state)) = t.packed in
  t.accesses <- t.accesses + 1;
  let w = weight_for t key in
  t.bytes_accessed <- t.bytes_accessed + w.Policy.size;
  if P.mem state key then begin
    P.promote state key;
    P.charge state key ~cost:w.Policy.cost;
    t.hits <- t.hits + 1;
    t.bytes_hit <- t.bytes_hit + w.Policy.size;
    true
  end
  else begin
    let evicted = raw_insert t ~pos:Policy.Hot ~weight:w key in
    t.misses <- t.misses + 1;
    t.cost_fetched <- t.cost_fetched + w.Policy.cost;
    if P.mem state key then t.insertions <- t.insertions + 1;
    t.evictions <- t.evictions + List.length evicted;
    false
  end

let insert_cold t key =
  if not (mem t key) then begin
    let w = weight_for t key in
    let evicted = raw_insert t ~pos:Policy.Cold ~weight:w key in
    if mem t key then begin
      t.insertions <- t.insertions + 1;
      t.speculative_insertions <- t.speculative_insertions + 1;
      t.cost_prefetched <- t.cost_prefetched + w.Policy.cost
    end;
    t.evictions <- t.evictions + List.length evicted
  end

let insert_cold_group t keys =
  let (Packed ((module P), state)) = t.packed in
  (* Distinct, non-resident members only, admitted while their cumulative
     size fits in [capacity - 1], so the block cannot fill the whole cache
     and displace the demanded file at the hot end. At unit weights this
     is the historical "at most capacity - 1 members" cap. Groups are a
     handful of keys (g ≤ 10 in every experiment), so a linear membership
     scan beats allocating a scratch table per call. *)
  let fresh =
    List.filter
      (fun k -> not (P.mem state k))
      (List.fold_left
         (fun acc k -> if List.mem k acc then acc else k :: acc)
         [] keys
      |> List.rev)
  in
  let admitted =
    let budget = ref (P.capacity state - 1) in
    List.filter
      (fun k ->
        let s = (weight_for t k).Policy.size in
        if s <= !budget then begin
          budget := !budget - s;
          true
        end
        else false)
      fresh
  in
  let total =
    List.fold_left (fun acc k -> acc + (weight_for t k).Policy.size) 0 admitted
  in
  (* Room for the whole block is made first, so members never evict one
     another — the semantics of a group arriving in one retrieval. *)
  let evicted = ref 0 in
  (try
     while P.used state + total > P.capacity state do
       match P.evict state with
       | Some _ as victim ->
           incr evicted;
           notify_evict1 t victim
       | None -> raise Exit
     done
   with Exit -> ());
  List.iter
    (fun k ->
      let w = weight_for t k in
      t.cost_prefetched <- t.cost_prefetched + w.Policy.cost;
      notify_evicted t (P.insert state ~pos:Policy.Cold ~weight:w k))
    admitted;
  let n = List.length admitted in
  t.insertions <- t.insertions + n;
  t.speculative_insertions <- t.speculative_insertions + n;
  t.evictions <- t.evictions + !evicted;
  admitted

let insert_hot t key =
  let resident = mem t key in
  let evicted = raw_insert t ~pos:Policy.Hot ~weight:(weight_for t key) key in
  if not resident && mem t key then begin
    t.insertions <- t.insertions + 1;
    t.evictions <- t.evictions + List.length evicted
  end

let remove t key =
  let (Packed ((module P), state)) = t.packed in
  P.remove state key

let depth t key =
  let (Packed ((module P), state)) = t.packed in
  if not (P.mem state key) then None
  else
    let rec scan i = function
      | [] -> None
      | k :: _ when k = key -> Some i
      | _ :: rest -> scan (i + 1) rest
    in
    scan 0 (P.contents state)

let contents t =
  let (Packed ((module P), state)) = t.packed in
  P.contents state

let stats t =
  {
    accesses = t.accesses;
    hits = t.hits;
    misses = t.misses;
    insertions = t.insertions;
    speculative_insertions = t.speculative_insertions;
    evictions = t.evictions;
  }

let weighted_stats t =
  {
    bytes_accessed = t.bytes_accessed;
    bytes_hit = t.bytes_hit;
    cost_fetched = t.cost_fetched;
    cost_prefetched = t.cost_prefetched;
  }

let hit_rate t = if t.accesses = 0 then 0.0 else float_of_int t.hits /. float_of_int t.accesses

let byte_hit_rate t =
  if t.bytes_accessed = 0 then 0.0
  else float_of_int t.bytes_hit /. float_of_int t.bytes_accessed

let reset_stats t =
  t.accesses <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.insertions <- 0;
  t.speculative_insertions <- 0;
  t.evictions <- 0;
  t.bytes_accessed <- 0;
  t.bytes_hit <- 0;
  t.cost_fetched <- 0;
  t.cost_prefetched <- 0

let clear t =
  let (Packed ((module P), state)) = t.packed in
  P.clear state;
  reset_stats t
