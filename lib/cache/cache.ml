type kind = Lru | Lfu | Fifo | Mru | Clock | Random | Mq | Slru | Twoq | Arc

let kind_name = function
  | Lru -> "lru"
  | Lfu -> "lfu"
  | Fifo -> "fifo"
  | Mru -> "mru"
  | Clock -> "clock"
  | Random -> "random"
  | Mq -> "mq"
  | Slru -> "slru"
  | Twoq -> "2q"
  | Arc -> "arc"

let kind_of_string = function
  | "lru" -> Some Lru
  | "lfu" -> Some Lfu
  | "fifo" -> Some Fifo
  | "mru" -> Some Mru
  | "clock" -> Some Clock
  | "random" -> Some Random
  | "mq" -> Some Mq
  | "slru" -> Some Slru
  | "2q" | "twoq" -> Some Twoq
  | "arc" -> Some Arc
  | _ -> None

let all_kinds = [ Lru; Lfu; Fifo; Mru; Clock; Random; Mq; Slru; Twoq; Arc ]

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  insertions : int;
  speculative_insertions : int;
  evictions : int;
}

let zero_stats =
  { accesses = 0; hits = 0; misses = 0; insertions = 0; speculative_insertions = 0; evictions = 0 }

let pp_stats ppf s =
  Format.fprintf ppf "accesses=%d hits=%d misses=%d insertions=%d speculative=%d evictions=%d"
    s.accesses s.hits s.misses s.insertions s.speculative_insertions s.evictions

type packed = Packed : (module Policy.S with type t = 'a) * 'a -> packed

type t = {
  kind : kind;
  packed : packed;
  mutable stats : stats;
  mutable on_evict : (int -> unit) option;
}

let make_packed kind ~capacity =
  match kind with
  | Lru -> Packed ((module Lru), Lru.create ~capacity)
  | Lfu -> Packed ((module Lfu), Lfu.create ~capacity)
  | Fifo -> Packed ((module Fifo), Fifo.create ~capacity)
  | Mru -> Packed ((module Mru), Mru.create ~capacity)
  | Clock -> Packed ((module Clock), Clock.create ~capacity)
  | Random -> Packed ((module Random_policy), Random_policy.create ~capacity)
  | Mq -> Packed ((module Mq), Mq.create ~capacity)
  | Slru -> Packed ((module Slru), Slru.create ~capacity)
  | Twoq -> Packed ((module Twoq), Twoq.create ~capacity)
  | Arc -> Packed ((module Arc), Arc.create ~capacity)

let create kind ~capacity =
  { kind; packed = make_packed kind ~capacity; stats = zero_stats; on_evict = None }

let set_on_evict t f = t.on_evict <- Some f
let clear_on_evict t = t.on_evict <- None

let notify_evict t victim =
  match (t.on_evict, victim) with
  | Some f, Some key -> f key
  | None, _ | _, None -> ()

let kind t = t.kind

let capacity t =
  let (Packed ((module P), state)) = t.packed in
  P.capacity state

let size t =
  let (Packed ((module P), state)) = t.packed in
  P.size state

let mem t key =
  let (Packed ((module P), state)) = t.packed in
  P.mem state key

let raw_insert t ~pos key =
  let (Packed ((module P), state)) = t.packed in
  let victim = P.insert state ~pos key in
  notify_evict t victim;
  victim

let access t key =
  let (Packed ((module P), state)) = t.packed in
  let s = t.stats in
  if P.mem state key then begin
    P.promote state key;
    t.stats <- { s with accesses = s.accesses + 1; hits = s.hits + 1 };
    true
  end
  else begin
    let evicted = raw_insert t ~pos:Policy.Hot key in
    t.stats <-
      {
        s with
        accesses = s.accesses + 1;
        misses = s.misses + 1;
        insertions = s.insertions + 1;
        evictions = (s.evictions + match evicted with Some _ -> 1 | None -> 0);
      };
    false
  end

let insert_cold t key =
  if not (mem t key) then begin
    let evicted = raw_insert t ~pos:Policy.Cold key in
    let s = t.stats in
    t.stats <-
      {
        s with
        insertions = s.insertions + 1;
        speculative_insertions = s.speculative_insertions + 1;
        evictions = (s.evictions + match evicted with Some _ -> 1 | None -> 0);
      }
  end

let insert_cold_group t keys =
  let (Packed ((module P), state)) = t.packed in
  (* Distinct, non-resident members only, capped so the block cannot fill
     the whole cache and displace the demanded file at the hot end. *)
  let seen = Hashtbl.create 8 in
  let fresh =
    List.filter
      (fun k ->
        if Hashtbl.mem seen k || P.mem state k then false
        else begin
          Hashtbl.replace seen k ();
          true
        end)
      keys
  in
  let admitted =
    let cap = P.capacity state - 1 in
    List.filteri (fun i _ -> i < cap) fresh
  in
  let need = P.size state + List.length admitted - P.capacity state in
  let evicted = ref 0 in
  for _ = 1 to need do
    match P.evict state with
    | Some _ as victim ->
        incr evicted;
        notify_evict t victim
    | None -> ()
  done;
  List.iter (fun k -> notify_evict t (P.insert state ~pos:Policy.Cold k)) admitted;
  let s = t.stats in
  let n = List.length admitted in
  t.stats <-
    {
      s with
      insertions = s.insertions + n;
      speculative_insertions = s.speculative_insertions + n;
      evictions = s.evictions + !evicted;
    };
  admitted

let insert_hot t key =
  let resident = mem t key in
  let evicted = raw_insert t ~pos:Policy.Hot key in
  if not resident then begin
    let s = t.stats in
    t.stats <-
      {
        s with
        insertions = s.insertions + 1;
        evictions = (s.evictions + match evicted with Some _ -> 1 | None -> 0);
      }
  end

let remove t key =
  let (Packed ((module P), state)) = t.packed in
  P.remove state key

let depth t key =
  let (Packed ((module P), state)) = t.packed in
  if not (P.mem state key) then None
  else
    let rec scan i = function
      | [] -> None
      | k :: _ when k = key -> Some i
      | _ :: rest -> scan (i + 1) rest
    in
    scan 0 (P.contents state)

let contents t =
  let (Packed ((module P), state)) = t.packed in
  P.contents state

let stats t = t.stats

let hit_rate t =
  let s = t.stats in
  if s.accesses = 0 then 0.0 else float_of_int s.hits /. float_of_int s.accesses

let reset_stats t = t.stats <- zero_stats

let clear t =
  let (Packed ((module P), state)) = t.packed in
  P.clear state;
  t.stats <- zero_stats
