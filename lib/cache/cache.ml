type kind = Lru | Lfu | Fifo | Mru | Clock | Random | Mq | Slru | Twoq | Arc

let kind_name = function
  | Lru -> "lru"
  | Lfu -> "lfu"
  | Fifo -> "fifo"
  | Mru -> "mru"
  | Clock -> "clock"
  | Random -> "random"
  | Mq -> "mq"
  | Slru -> "slru"
  | Twoq -> "2q"
  | Arc -> "arc"

let kind_of_string = function
  | "lru" -> Some Lru
  | "lfu" -> Some Lfu
  | "fifo" -> Some Fifo
  | "mru" -> Some Mru
  | "clock" -> Some Clock
  | "random" -> Some Random
  | "mq" -> Some Mq
  | "slru" -> Some Slru
  | "2q" | "twoq" -> Some Twoq
  | "arc" -> Some Arc
  | _ -> None

let all_kinds = [ Lru; Lfu; Fifo; Mru; Clock; Random; Mq; Slru; Twoq; Arc ]

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  insertions : int;
  speculative_insertions : int;
  evictions : int;
}

let pp_stats ppf s =
  Format.fprintf ppf "accesses=%d hits=%d misses=%d insertions=%d speculative=%d evictions=%d"
    s.accesses s.hits s.misses s.insertions s.speculative_insertions s.evictions

type packed = Packed : (module Policy.S with type t = 'a) * 'a -> packed

(* Counters live as mutable fields — the exposed [stats] record is only
   materialized on demand, so the access path allocates nothing. *)
type t = {
  kind : kind;
  packed : packed;
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable speculative_insertions : int;
  mutable evictions : int;
  mutable on_evict : (int -> unit) option;
}

let make_packed kind ~capacity =
  match kind with
  | Lru -> Packed ((module Lru), Lru.create ~capacity)
  | Lfu -> Packed ((module Lfu), Lfu.create ~capacity)
  | Fifo -> Packed ((module Fifo), Fifo.create ~capacity)
  | Mru -> Packed ((module Mru), Mru.create ~capacity)
  | Clock -> Packed ((module Clock), Clock.create ~capacity)
  | Random -> Packed ((module Random_policy), Random_policy.create ~capacity)
  | Mq -> Packed ((module Mq), Mq.create ~capacity)
  | Slru -> Packed ((module Slru), Slru.create ~capacity)
  | Twoq -> Packed ((module Twoq), Twoq.create ~capacity)
  | Arc -> Packed ((module Arc), Arc.create ~capacity)

let create kind ~capacity =
  {
    kind;
    packed = make_packed kind ~capacity;
    accesses = 0;
    hits = 0;
    misses = 0;
    insertions = 0;
    speculative_insertions = 0;
    evictions = 0;
    on_evict = None;
  }

let set_on_evict t f = t.on_evict <- Some f
let clear_on_evict t = t.on_evict <- None

let notify_evict t victim =
  match (t.on_evict, victim) with
  | Some f, Some key -> f key
  | None, _ | _, None -> ()

let kind t = t.kind

let capacity t =
  let (Packed ((module P), state)) = t.packed in
  P.capacity state

let size t =
  let (Packed ((module P), state)) = t.packed in
  P.size state

let mem t key =
  let (Packed ((module P), state)) = t.packed in
  P.mem state key

let raw_insert t ~pos key =
  let (Packed ((module P), state)) = t.packed in
  let victim = P.insert state ~pos key in
  notify_evict t victim;
  victim

let access t key =
  let (Packed ((module P), state)) = t.packed in
  t.accesses <- t.accesses + 1;
  if P.mem state key then begin
    P.promote state key;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    let evicted = raw_insert t ~pos:Policy.Hot key in
    t.misses <- t.misses + 1;
    t.insertions <- t.insertions + 1;
    (match evicted with Some _ -> t.evictions <- t.evictions + 1 | None -> ());
    false
  end

let insert_cold t key =
  if not (mem t key) then begin
    let evicted = raw_insert t ~pos:Policy.Cold key in
    t.insertions <- t.insertions + 1;
    t.speculative_insertions <- t.speculative_insertions + 1;
    match evicted with Some _ -> t.evictions <- t.evictions + 1 | None -> ()
  end

let insert_cold_group t keys =
  let (Packed ((module P), state)) = t.packed in
  (* Distinct, non-resident members only, capped so the block cannot fill
     the whole cache and displace the demanded file at the hot end.
     Groups are a handful of keys (g ≤ 10 in every experiment), so a
     linear membership scan beats allocating a scratch table per call. *)
  let fresh =
    List.filter
      (fun k -> not (P.mem state k))
      (List.fold_left
         (fun acc k -> if List.mem k acc then acc else k :: acc)
         [] keys
      |> List.rev)
  in
  let admitted =
    let cap = P.capacity state - 1 in
    List.filteri (fun i _ -> i < cap) fresh
  in
  let need = P.size state + List.length admitted - P.capacity state in
  let evicted = ref 0 in
  for _ = 1 to need do
    match P.evict state with
    | Some _ as victim ->
        incr evicted;
        notify_evict t victim
    | None -> ()
  done;
  List.iter (fun k -> notify_evict t (P.insert state ~pos:Policy.Cold k)) admitted;
  let n = List.length admitted in
  t.insertions <- t.insertions + n;
  t.speculative_insertions <- t.speculative_insertions + n;
  t.evictions <- t.evictions + !evicted;
  admitted

let insert_hot t key =
  let resident = mem t key in
  let evicted = raw_insert t ~pos:Policy.Hot key in
  if not resident then begin
    t.insertions <- t.insertions + 1;
    match evicted with Some _ -> t.evictions <- t.evictions + 1 | None -> ()
  end

let remove t key =
  let (Packed ((module P), state)) = t.packed in
  P.remove state key

let depth t key =
  let (Packed ((module P), state)) = t.packed in
  if not (P.mem state key) then None
  else
    let rec scan i = function
      | [] -> None
      | k :: _ when k = key -> Some i
      | _ :: rest -> scan (i + 1) rest
    in
    scan 0 (P.contents state)

let contents t =
  let (Packed ((module P), state)) = t.packed in
  P.contents state

let stats t =
  {
    accesses = t.accesses;
    hits = t.hits;
    misses = t.misses;
    insertions = t.insertions;
    speculative_insertions = t.speculative_insertions;
    evictions = t.evictions;
  }

let hit_rate t = if t.accesses = 0 then 0.0 else float_of_int t.hits /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.insertions <- 0;
  t.speculative_insertions <- 0;
  t.evictions <- 0

let clear t =
  let (Packed ((module P), state)) = t.packed in
  P.clear state;
  reset_stats t
