open Agg_util

module Core = struct
  type t = {
    capacity : int;
    keys : int Vec.t; (* dense array for O(1) random victim selection *)
    index : Int_table.t; (* key -> position in [keys] *)
    prng : Prng.t;
  }

  let policy_name = "random"

  let create_seeded ~capacity ~seed =
    if capacity <= 0 then invalid_arg "Random_policy.create: capacity must be positive";
    {
      capacity;
      keys = Vec.create ();
      index = Int_table.create ~capacity:(2 * capacity) ();
      prng = Prng.create ~seed ();
    }

  let create ~capacity = create_seeded ~capacity ~seed:0x5eed

  let capacity t = t.capacity
  let size t = Vec.length t.keys
  let mem t key = Int_table.mem t.index key
  let promote _t _key = ()

  (* Swap-remove keeps the key array dense. *)
  let remove_at t i =
    let last = Vec.length t.keys - 1 in
    let victim = Vec.get t.keys i in
    let moved = Vec.get t.keys last in
    Vec.set t.keys i moved;
    ignore (Vec.pop t.keys);
    if i <> last then Int_table.set t.index moved i;
    Int_table.remove t.index victim;
    victim

  let evict t = if size t = 0 then None else Some (remove_at t (Prng.int t.prng (size t)))

  let insert t ~pos key =
    ignore pos;
    if Int_table.mem t.index key then None
    else begin
      let victim =
        if size t >= t.capacity then Some (remove_at t (Prng.int t.prng (size t))) else None
      in
      Int_table.set t.index key (Vec.length t.keys);
      Vec.push t.keys key;
      victim
    end

  let remove t key =
    let i = Int_table.get t.index key in
    if i >= 0 then ignore (remove_at t i)

  let contents t = Vec.to_list t.keys

  let clear t =
    Vec.clear t.keys;
    Int_table.clear t.index
end

include Policy.Weighted_of_unit (Core)

let create_seeded ~capacity ~seed = of_core (Core.create_seeded ~capacity ~seed)
