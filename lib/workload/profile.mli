(** Workload profiles standing in for the four CMU DFSTrace systems of the
    paper (§4.1). The parameters are calibrated so that the paper's
    *qualitative* workload orderings hold:

    - [server] (barber) — application-driven, long deterministic runs, the
      most predictable (successor entropy well under one bit at length 1);
    - [workstation] (mozart) — a single interactive user, moderately
      predictable;
    - [users] (ives) — many concurrent users finely interleaved, the least
      predictable global sequence;
    - [write] (dvorak) — the heaviest write share and the most cold,
      unique files, giving grouping the most modest wins. *)

(** The size/cost axis layered over a profile's access stream. Weights
    are a {e pure function of the file id} (derived per-id PRNG streams),
    so turning weighting on or off never perturbs the generated event
    sequence — the 24 paper checks replay byte-identically. *)
type weighting =
  | Unit_weights  (** every file is size 1 / cost 1 — the paper's model *)
  | Pareto_weights of {
      wseed : int;  (** seed of the weight table, independent of the trace seed *)
      alpha : float;  (** Pareto tail index; smaller means heavier tail *)
      max_size : int;  (** truncation cap on file size *)
      cost_base : int;  (** fixed per-fetch (seek/RPC) cost component *)
      cost_per_size : int;  (** transfer cost per size unit *)
    }

type t = {
  name : string;
  clients : int;  (** independent request streams *)
  tasks : int;  (** distinct task scripts in the universe *)
  task_len_min : int;
  task_len_max : int;
  shared_pool : int;  (** globally shared utility files (shell, make, …) *)
  shared_fraction : float;  (** probability a task position is a shared file *)
  task_zipf_s : float;  (** skew of task popularity (re-execution rate) *)
  p_skip : float;  (** per-position chance a task file is skipped *)
  p_substitute : float;  (** chance a task file is replaced by noise *)
  p_insert : float;  (** chance a noise access is inserted between steps *)
  background_files : int;  (** size of the cold/noise file population *)
  background_zipf_s : float;
  p_background : float;  (** chance a step is pure background traffic *)
  p_write : float;  (** chance an event is a write *)
  burst_mean : float;  (** mean run length before switching client streams *)
  phase_period : int;
      (** events between popularity shifts: task popularity ranks rotate
          slowly, modelling projects waxing and waning. This
          non-stationarity is what makes frequency (LFU) unreliable and
          recency (LRU) robust, as in the paper's traces; [0] disables. *)
  p_task_mutate : float;
      (** per-execution chance that a task permanently swaps one of its
          files for a fresh one (sources evolve, outputs are regenerated).
          Successor relations therefore *drift*, so stale frequency counts
          mispredict where the most recent successor adapts — the §4.4
          recency-over-frequency effect at the metadata level. *)
  p_loop : float;
      (** per-step chance of entering a short working-set loop: the last
          few task files are re-accessed cyclically (edit-compile cycles,
          scan loops). Loops are what a tiny intervening cache absorbs —
          removing the most predictable successions from the miss stream,
          the paper's Fig. 8 capacity-10 effect. *)
  loop_mean_reps : float;  (** mean iterations of such a loop *)
  weighting : weighting;
      (** per-file size/cost model; {!Unit_weights} for all paper
          profiles, so weighted replay is opt-in per profile. *)
}

val workstation : t
val users : t
val write : t
val server : t

val scientific : t
(** Beyond the paper: an XRootD-style scientific data-lifecycle cache —
    long analysis campaigns over large shared datasets with a huge
    read-once cold population (30k background files at heavy background
    share) and few writes. *)

val streaming : t
(** Beyond the paper: streaming/video delivery — long, highly sequential
    playback runs over a strongly skewed catalogue with almost no
    writes; the most predictable succession structure. *)

val sized_workstation : t
(** [workstation] with heavy-tailed Pareto file sizes and transfer-bound
    cost (cost = size): the "does one big file really cost five small
    ones" regime. *)

val sized_server : t
(** [server] with a heavier tail and latency-bound cost
    (cost = 8 + size): small-file misses are comparatively expensive. *)

val all : t list
(** The four paper workloads, in the paper's naming order. The
    paper-vs-measured checks sweep exactly this list, so it never grows;
    extra profiles live in {!extras}. *)

val extras : t list
(** Calibrated profiles beyond the paper ([scientific], [streaming]) —
    reachable via {!by_name} and the scenario corpus, excluded from the
    paper's check tables. *)

val sized : t list
(** The two size/cost-skewed profiles, in sweep order. *)

val by_name : string -> t option
(** Finds a profile in {!all} or {!extras} by name. *)

val weight_of : t -> Agg_trace.File_id.t -> Agg_cache.Policy.weight
(** [weight_of p file] is [file]'s size/cost under [p.weighting] — a pure
    function of the profile and the id (no generator state involved).
    Unit for {!Unit_weights} profiles. *)

val weights_for : t -> Agg_trace.Trace.t -> Agg_trace.Weights.t
(** The weight table covering every distinct file of [trace], suitable
    for {!Agg_trace.Codec.write_file}. Empty for {!Unit_weights}
    profiles. *)

val distinct_file_estimate : t -> int
(** Rough size of the file universe the profile can touch. *)

val pp : Format.formatter -> t -> unit
