(** Workload profiles standing in for the four CMU DFSTrace systems of the
    paper (§4.1). The parameters are calibrated so that the paper's
    *qualitative* workload orderings hold:

    - [server] (barber) — application-driven, long deterministic runs, the
      most predictable (successor entropy well under one bit at length 1);
    - [workstation] (mozart) — a single interactive user, moderately
      predictable;
    - [users] (ives) — many concurrent users finely interleaved, the least
      predictable global sequence;
    - [write] (dvorak) — the heaviest write share and the most cold,
      unique files, giving grouping the most modest wins. *)

type t = {
  name : string;
  clients : int;  (** independent request streams *)
  tasks : int;  (** distinct task scripts in the universe *)
  task_len_min : int;
  task_len_max : int;
  shared_pool : int;  (** globally shared utility files (shell, make, …) *)
  shared_fraction : float;  (** probability a task position is a shared file *)
  task_zipf_s : float;  (** skew of task popularity (re-execution rate) *)
  p_skip : float;  (** per-position chance a task file is skipped *)
  p_substitute : float;  (** chance a task file is replaced by noise *)
  p_insert : float;  (** chance a noise access is inserted between steps *)
  background_files : int;  (** size of the cold/noise file population *)
  background_zipf_s : float;
  p_background : float;  (** chance a step is pure background traffic *)
  p_write : float;  (** chance an event is a write *)
  burst_mean : float;  (** mean run length before switching client streams *)
  phase_period : int;
      (** events between popularity shifts: task popularity ranks rotate
          slowly, modelling projects waxing and waning. This
          non-stationarity is what makes frequency (LFU) unreliable and
          recency (LRU) robust, as in the paper's traces; [0] disables. *)
  p_task_mutate : float;
      (** per-execution chance that a task permanently swaps one of its
          files for a fresh one (sources evolve, outputs are regenerated).
          Successor relations therefore *drift*, so stale frequency counts
          mispredict where the most recent successor adapts — the §4.4
          recency-over-frequency effect at the metadata level. *)
  p_loop : float;
      (** per-step chance of entering a short working-set loop: the last
          few task files are re-accessed cyclically (edit-compile cycles,
          scan loops). Loops are what a tiny intervening cache absorbs —
          removing the most predictable successions from the miss stream,
          the paper's Fig. 8 capacity-10 effect. *)
  loop_mean_reps : float;  (** mean iterations of such a loop *)
}

val workstation : t
val users : t
val write : t
val server : t

val scientific : t
(** Beyond the paper: an XRootD-style scientific data-lifecycle cache —
    long analysis campaigns over large shared datasets with a huge
    read-once cold population (30k background files at heavy background
    share) and few writes. *)

val streaming : t
(** Beyond the paper: streaming/video delivery — long, highly sequential
    playback runs over a strongly skewed catalogue with almost no
    writes; the most predictable succession structure. *)

val all : t list
(** The four paper workloads, in the paper's naming order. The
    paper-vs-measured checks sweep exactly this list, so it never grows;
    extra profiles live in {!extras}. *)

val extras : t list
(** Calibrated profiles beyond the paper ([scientific], [streaming]) —
    reachable via {!by_name} and the scenario corpus, excluded from the
    paper's check tables. *)

val by_name : string -> t option
(** Finds a profile in {!all} or {!extras} by name. *)

val distinct_file_estimate : t -> int
(** Rough size of the file universe the profile can touch. *)

val pp : Format.formatter -> t -> unit
