type weighting =
  | Unit_weights
  | Pareto_weights of {
      wseed : int;
      alpha : float;
      max_size : int;
      cost_base : int;
      cost_per_size : int;
    }

type t = {
  name : string;
  clients : int;
  tasks : int;
  task_len_min : int;
  task_len_max : int;
  shared_pool : int;
  shared_fraction : float;
  task_zipf_s : float;
  p_skip : float;
  p_substitute : float;
  p_insert : float;
  background_files : int;
  background_zipf_s : float;
  p_background : float;
  p_write : float;
  burst_mean : float;
  phase_period : int;
  p_task_mutate : float;
  p_loop : float;
  loop_mean_reps : float;
  weighting : weighting;
}

(* mozart: a personal workstation. One user, medium-length interactive
   tasks, a fair amount of browsing noise. *)
let workstation =
  {
    name = "workstation";
    clients = 1;
    tasks = 220;
    task_len_min = 8;
    task_len_max = 26;
    shared_pool = 60;
    shared_fraction = 0.22;
    task_zipf_s = 0.9;
    p_skip = 0.05;
    p_substitute = 0.02;
    p_insert = 0.025;
    background_files = 9000;
    background_zipf_s = 0.7;
    p_background = 0.05;
    p_write = 0.15;
    burst_mean = 40.0;
    phase_period = 3000;
    p_task_mutate = 0.40;
    p_loop = 0.06;
    loop_mean_reps = 6.0;
    weighting = Unit_weights;
  }

(* ives: the system with the most users. Many fine-grained interleaved
   streams scramble the global succession order. *)
let users =
  {
    name = "users";
    clients = 18;
    tasks = 320;
    task_len_min = 8;
    task_len_max = 26;
    shared_pool = 80;
    shared_fraction = 0.25;
    task_zipf_s = 0.85;
    p_skip = 0.04;
    p_substitute = 0.02;
    p_insert = 0.02;
    background_files = 10000;
    background_zipf_s = 0.7;
    p_background = 0.03;
    p_write = 0.12;
    burst_mean = 12.0;
    phase_period = 2500;
    p_task_mutate = 0.15;
    p_loop = 0.09;
    loop_mean_reps = 10.0;
    weighting = Unit_weights;
  }

(* dvorak: the largest proportion of write activity, with short runs and a
   big cold-file population — the workload where grouping gains least. *)
let write =
  {
    name = "write";
    clients = 2;
    tasks = 170;
    task_len_min = 5;
    task_len_max = 14;
    shared_pool = 50;
    shared_fraction = 0.18;
    task_zipf_s = 0.8;
    p_skip = 0.10;
    p_substitute = 0.10;
    p_insert = 0.14;
    background_files = 22000;
    background_zipf_s = 0.55;
    p_background = 0.22;
    p_write = 0.45;
    burst_mean = 25.0;
    phase_period = 2000;
    p_task_mutate = 0.20;
    p_loop = 0.04;
    loop_mean_reps = 4.0;
    weighting = Unit_weights;
  }

(* barber: a server with application-driven access patterns — long,
   almost deterministic runs, hardly any noise; the most predictable. *)
let server =
  {
    name = "server";
    clients = 1;
    tasks = 130;
    task_len_min = 20;
    task_len_max = 42;
    shared_pool = 30;
    shared_fraction = 0.07;
    task_zipf_s = 1.1;
    p_skip = 0.008;
    p_substitute = 0.004;
    p_insert = 0.01;
    background_files = 6000;
    background_zipf_s = 0.8;
    p_background = 0.02;
    p_write = 0.08;
    burst_mean = 200.0;
    phase_period = 5000;
    p_task_mutate = 0.20;
    p_loop = 0.015;
    loop_mean_reps = 5.0;
    weighting = Unit_weights;
  }

(* Beyond the paper: a scientific data-lifecycle cache in the XRootD
   style (Bellavita et al.) — long analysis campaigns re-reading large
   shared datasets, a huge cold population touched once, few writes. *)
let scientific =
  {
    name = "scientific";
    clients = 6;
    tasks = 90;
    task_len_min = 30;
    task_len_max = 80;
    shared_pool = 120;
    shared_fraction = 0.12;
    task_zipf_s = 1.0;
    p_skip = 0.02;
    p_substitute = 0.015;
    p_insert = 0.02;
    background_files = 30000;
    background_zipf_s = 0.35;
    p_background = 0.30;
    p_write = 0.05;
    burst_mean = 120.0;
    phase_period = 4000;
    p_task_mutate = 0.10;
    p_loop = 0.02;
    loop_mean_reps = 4.0;
    weighting = Unit_weights;
  }

(* Streaming/video delivery (Friedlander & Aggarwal): long, highly
   sequential per-title playback runs, strong popularity skew across a
   modest catalogue, almost no writes — the most groupable workload. *)
let streaming =
  {
    name = "streaming";
    clients = 12;
    tasks = 60;
    task_len_min = 40;
    task_len_max = 120;
    shared_pool = 40;
    shared_fraction = 0.05;
    task_zipf_s = 1.4;
    p_skip = 0.01;
    p_substitute = 0.005;
    p_insert = 0.008;
    background_files = 8000;
    background_zipf_s = 0.6;
    p_background = 0.03;
    p_write = 0.005;
    burst_mean = 90.0;
    phase_period = 6000;
    p_task_mutate = 0.02;
    p_loop = 0.01;
    loop_mean_reps = 3.0;
    weighting = Unit_weights;
  }

(* Weighted variants: the same calibrated access streams with a heavy-
   tailed (truncated Pareto) file-size distribution layered on top as a
   pure function of the file id, so the event sequence is untouched.

   [sized-workstation] is transfer-bound — retrieval cost proportional
   to bytes moved, so one big file really does cost as much as many
   small ones. *)
let sized_workstation =
  {
    workstation with
    name = "sized-workstation";
    weighting =
      Pareto_weights { wseed = 9001; alpha = 1.2; max_size = 64; cost_base = 0; cost_per_size = 1 };
  }

(* [sized-server] is latency-bound — every fetch pays a fixed seek/RPC
   base beside a smaller per-byte term, so small-file misses are
   comparatively expensive and size alone does not rank victims. *)
let sized_server =
  {
    server with
    name = "sized-server";
    weighting =
      Pareto_weights { wseed = 9002; alpha = 0.95; max_size = 128; cost_base = 8; cost_per_size = 1 };
  }

let all = [ workstation; users; write; server ]
let extras = [ scientific; streaming; sized_workstation; sized_server ]
let sized = [ sized_workstation; sized_server ]

let by_name name = List.find_opt (fun p -> p.name = name) (all @ extras)

let weight_of p file =
  match p.weighting with
  | Unit_weights -> Agg_cache.Policy.unit_weight
  | Pareto_weights { wseed; alpha; max_size; cost_base; cost_per_size } ->
      (* a pure function of (wseed, file): deriving a child stream per id
         means the table does not depend on trace order or length *)
      let g = Agg_util.Prng.derive (Agg_util.Prng.create ~seed:wseed ()) file in
      let u = Agg_util.Prng.float g 1.0 in
      let raw = (1.0 -. u) ** (-1.0 /. alpha) in
      let size = max 1 (min max_size (int_of_float raw)) in
      let cost = max 1 (cost_base + (cost_per_size * size)) in
      { Agg_cache.Policy.size; cost }

let weights_for p trace =
  let weights = Agg_trace.Weights.create () in
  (match p.weighting with
  | Unit_weights -> ()
  | Pareto_weights _ ->
      let seen = Hashtbl.create 1024 in
      Agg_trace.Trace.iter
        (fun (e : Agg_trace.Event.t) ->
          if not (Hashtbl.mem seen e.file) then begin
            Hashtbl.add seen e.file ();
            Agg_trace.Weights.set weights e.file (weight_of p e.file)
          end)
        trace);
  weights

let distinct_file_estimate p =
  let mean_len = (p.task_len_min + p.task_len_max) / 2 in
  let private_files =
    int_of_float (float_of_int (p.tasks * mean_len) *. (1.0 -. p.shared_fraction))
  in
  p.shared_pool + p.background_files + private_files

let pp ppf p =
  Format.fprintf ppf
    "%s: clients=%d tasks=%d len=[%d,%d] shared=%d/%.2f noise(skip=%.2f sub=%.2f ins=%.2f) bg=%d/%.2f write=%.2f burst=%.0f"
    p.name p.clients p.tasks p.task_len_min p.task_len_max p.shared_pool p.shared_fraction p.p_skip
    p.p_substitute p.p_insert p.background_files p.p_background p.p_write p.burst_mean;
  match p.weighting with
  | Unit_weights -> ()
  | Pareto_weights { wseed; alpha; max_size; cost_base; cost_per_size } ->
      Format.fprintf ppf " sizes=pareto(seed=%d,a=%.2f,max=%d) cost=%d+%d*size" wseed alpha
        max_size cost_base cost_per_size
