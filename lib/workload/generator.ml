open Agg_util

type client_state = {
  tasks : Task.t array; (* this client's task scripts *)
  task_pick : Dist.Zipf.t; (* popularity of those scripts *)
  mutable current : Task.t;
  mutable position : int;
  mutable burst_left : int;
  mutable loop_files : int array; (* empty when not looping *)
  mutable loop_pos : int;
  mutable loop_left : int; (* loop emissions remaining *)
}

type state = {
  profile : Profile.t;
  prng : Prng.t;
  background : Dist.Zipf.t;
  clients : client_state array;
  fresh_file : unit -> int;
  mutable active : int;
  mutable emitted : int;
}

(* Noise/background files occupy ids [shared_pool, shared_pool + background_files). *)
let background_file st =
  st.profile.shared_pool + Dist.Zipf.sample st.background st.prng

(* Task popularity rotates slowly: the Zipf rank order shifts by one every
   [phase_period] events, so which tasks are "hot" drifts over the trace.
   On top of that, an executed task occasionally swaps one of its files
   for a brand-new one (sources evolve). Both non-stationarities are what
   separate recency from frequency. *)
let fresh_task st client =
  let c = st.clients.(client) in
  let n = Array.length c.tasks in
  let rank = Dist.Zipf.sample c.task_pick st.prng in
  let phase =
    if st.profile.phase_period <= 0 then 0 else st.emitted / st.profile.phase_period
  in
  let task = c.tasks.((rank + phase) mod n) in
  if Prng.bernoulli st.prng ~p:st.profile.p_task_mutate && Task.length task > 0 then begin
    let at = Prng.int st.prng (Task.length task) in
    task.files.(at) <- st.fresh_file ()
  end;
  c.current <- task;
  c.position <- 0

let build_clients profile prng ~fresh_file =
  let shared_zipf = Dist.Zipf.create ~n:(max 1 profile.Profile.shared_pool) ~s:1.1 in
  let all_tasks =
    Array.init profile.tasks (fun id ->
        let length = Prng.int_in_range prng ~lo:profile.task_len_min ~hi:profile.task_len_max in
        Task.build ~prng ~id ~length ~shared_pool:profile.shared_pool
          ~shared_fraction:profile.shared_fraction ~shared_zipf ~fresh_file
          ~loop_chance:profile.p_loop)
  in
  (* Deal the task scripts round-robin to clients: each stream has its own
     applications, as distinct users would. *)
  let per_client = Array.make profile.clients [] in
  Array.iteri (fun i task -> per_client.(i mod profile.clients) <- task :: per_client.(i mod profile.clients)) all_tasks;
  Array.map
    (fun tasks_list ->
      let tasks = Array.of_list (List.rev tasks_list) in
      if Array.length tasks = 0 then invalid_arg "Generator: more clients than tasks";
      {
        tasks;
        task_pick = Dist.Zipf.create ~n:(Array.length tasks) ~s:profile.task_zipf_s;
        current = tasks.(0);
        position = 0;
        burst_left = 0;
        loop_files = [||];
        loop_pos = 0;
        loop_left = 0;
      })
    per_client

let switch_client st =
  st.active <- Prng.int st.prng (Array.length st.clients);
  let burst = 1 + Dist.geometric st.prng ~p:(1.0 /. Float.max 1.0 st.profile.burst_mean) in
  st.clients.(st.active).burst_left <- burst

(* The task marks fixed loop points; each execution cycles the same window
   for a random number of iterations (an edit-compile or scan loop). *)
let maybe_enter_loop st c ~position =
  let task = c.current in
  let width = task.Task.loop_width.(position) in
  if width > 0 && width <= position + 1 then begin
    let reps =
      1 + Dist.geometric st.prng ~p:(1.0 /. Float.max 1.0 st.profile.loop_mean_reps)
    in
    c.loop_files <- Array.sub task.Task.files (position - width + 1) width;
    c.loop_pos <- 0;
    c.loop_left <- reps * width
  end

(* The next file for the active client, applying the §4.1-style noise:
   background interleaving, loops, skips, and substitutions. *)
let rec next_file st =
  let p = st.profile in
  if Prng.bernoulli st.prng ~p:p.p_background then background_file st
  else begin
    let c = st.clients.(st.active) in
    if c.loop_left > 0 then begin
      let file = c.loop_files.(c.loop_pos) in
      c.loop_pos <- (c.loop_pos + 1) mod Array.length c.loop_files;
      c.loop_left <- c.loop_left - 1;
      file
    end
    else if c.position >= Task.length c.current then begin
      fresh_task st st.active;
      next_file st
    end
    else if Prng.bernoulli st.prng ~p:p.p_insert then background_file st
    else begin
      let position = c.position in
      let file = c.current.files.(position) in
      c.position <- position + 1;
      if Prng.bernoulli st.prng ~p:p.p_skip then next_file st
      else if Prng.bernoulli st.prng ~p:p.p_substitute then background_file st
      else begin
        maybe_enter_loop st c ~position;
        file
      end
    end
  end

let make_state ?(seed = 42) profile =
  let prng = Prng.create ~seed () in
  let next_private = ref (profile.Profile.shared_pool + profile.background_files) in
  let fresh_file () =
    let id = !next_private in
    incr next_private;
    id
  in
  let clients = build_clients profile prng ~fresh_file in
  let st =
    {
      profile;
      prng;
      background = Dist.Zipf.create ~n:(max 1 profile.background_files) ~s:profile.background_zipf_s;
      clients;
      fresh_file;
      active = 0;
      emitted = 0;
    }
  in
  Array.iteri (fun i _ -> st.active <- i; fresh_task st i) st.clients;
  st.active <- 0;
  switch_client st;
  st

let step st =
  let c = st.clients.(st.active) in
  if c.burst_left <= 0 then switch_client st;
  let client = st.active in
  let file = next_file st in
  st.emitted <- st.emitted + 1;
  st.clients.(client).burst_left <- st.clients.(client).burst_left - 1;
  let op = if Prng.bernoulli st.prng ~p:st.profile.p_write then Agg_trace.Event.Write else Agg_trace.Event.Open in
  (client, op, file)

let fold ?seed ~events profile ~init ~f =
  if events < 0 then invalid_arg "Generator.fold: events must be non-negative";
  let st = make_state ?seed profile in
  let acc = ref init in
  for _ = 1 to events do
    let client, op, file = step st in
    acc := f !acc ~client ~op ~file
  done;
  !acc

let iter ?seed ~events profile ~f =
  if events < 0 then invalid_arg "Generator.iter: events must be non-negative";
  let st = make_state ?seed profile in
  for _ = 1 to events do
    let client, op, file = step st in
    f ~client ~op ~file
  done

let generate ?seed ~events profile =
  if events < 0 then invalid_arg "Generator.generate: events must be non-negative";
  let st = make_state ?seed profile in
  let trace = Agg_trace.Trace.create () in
  for _ = 1 to events do
    let client, op, file = step st in
    Agg_trace.Trace.add_access trace ~client ~op file
  done;
  trace

let generate_files ?seed ~events profile =
  if events < 0 then invalid_arg "Generator.generate_files: events must be non-negative";
  let st = make_state ?seed profile in
  Array.init events (fun _ ->
      let _, _, file = step st in
      file)
