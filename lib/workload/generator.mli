(** The synthetic trace generator: turns a {!Profile.t} into an access
    trace by interleaving per-client task streams with background noise.

    File-id layout: ids [0 .. shared_pool)] are the shared utility files,
    the next [background_files] ids are the noise population, and private
    task files are allocated densely above those. Generation is fully
    deterministic given the seed. *)

val generate : ?seed:int -> events:int -> Profile.t -> Agg_trace.Trace.t
(** [generate ~events profile] produces a trace of exactly [events]
    accesses. @raise Invalid_argument when [events < 0]. *)

val generate_files : ?seed:int -> events:int -> Profile.t -> Agg_trace.File_id.t array
(** The bare file-id sequence of {!generate} (same stream, cheaper). *)

val fold :
  ?seed:int ->
  events:int ->
  Profile.t ->
  init:'acc ->
  f:('acc -> client:int -> op:Agg_trace.Event.op -> file:Agg_trace.File_id.t -> 'acc) ->
  'acc
(** [fold ~events profile ~init ~f] streams the exact event sequence of
    {!generate} through [f] without materialising a trace — consumers that
    fold over the stream hold O(1) generator state instead of O(events)
    boxed events. @raise Invalid_argument when [events < 0]. *)

val iter :
  ?seed:int ->
  events:int ->
  Profile.t ->
  f:(client:int -> op:Agg_trace.Event.op -> file:Agg_trace.File_id.t -> unit) ->
  unit
(** {!fold} for effectful consumers. *)
