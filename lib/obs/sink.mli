(** Pluggable event sinks.

    Instrumented code holds a sink and reports {!Event.t}s to it. Three
    implementations:

    - {!noop} — drops everything. This is the default everywhere, and the
      contract is strict: emitting code must guard event construction with
      {!enabled} so the disabled hot path allocates nothing and simulation
      outputs stay byte-identical to an uninstrumented build.
    - {!memory} — appends to an in-memory vector, for tests and for
      deriving {!Digest} histograms after a run.
    - {!jsonl} — writes one {!Event.to_json} line per event to a channel,
      stamping consecutive [seq] numbers from 0.

    Sinks are single-domain: a sweep gives each cell its own sink rather
    than sharing one across [Agg_util.Pool] workers (which also keeps
    per-cell event sequences deterministic for any [--jobs] value). *)

type t

val noop : t
val memory : unit -> t
val jsonl : out_channel -> t

val enabled : t -> bool
(** [false] only for {!noop}. Emitters must check this before building an
    event value, so the no-op path costs one branch and zero allocation:
    [if Sink.enabled obs then Sink.emit obs (Demand_miss { file })]. *)

val emit : t -> Event.t -> unit
(** Records [event]; a no-op on {!noop}. *)

val events : t -> Event.t list
(** Everything a {!memory} sink recorded, in emission order; [[]] for the
    other sinks. *)

val emitted : t -> int
(** Events recorded ({!memory}) or written ({!jsonl}); 0 for {!noop}. *)

val flush : t -> unit
(** Flushes the underlying channel of a {!jsonl} sink; no-op otherwise. *)
