(** Pluggable event sinks.

    Instrumented code holds a sink and reports {!Event.t}s to it. Four
    implementations:

    - {!noop} — drops everything. This is the default everywhere, and the
      contract is strict: emitting code must guard event construction with
      {!enabled} so the disabled hot path allocates nothing and simulation
      outputs stay byte-identical to an uninstrumented build.
    - {!memory} — appends to an in-memory vector, for tests and for
      deriving {!Digest} histograms after a run.
    - {!jsonl} — writes one {!Event.to_json} line per event to a channel,
      stamping consecutive [seq] numbers from 0. Writes are buffered
      (~64 KiB batches) to amortise the per-event syscall; the bytes that
      reach the channel after {!flush} are identical to unbuffered
      line-at-a-time output.
    - {!sampled} — a deterministic head-sampling filter in front of
      another sink: whether offered event number [i] passes through is a
      pure function of [(seed, i)] via [Agg_util.Prng.derive], so a
      sampled dump of a run is reproducible and independent of sink
      internals. Kept events reach the inner sink in order (a [jsonl]
      inner sink still stamps consecutive [seq] numbers).

    Sinks are single-domain: a sweep gives each cell its own sink rather
    than sharing one across [Agg_util.Pool] workers (which also keeps
    per-cell event sequences deterministic for any [--jobs] value). *)

type t

val noop : t
val memory : unit -> t
val jsonl : out_channel -> t

val sampled : seed:int -> rate:float -> t -> t
(** [sampled ~seed ~rate inner] passes each offered event through to
    [inner] with independent probability [rate], decided purely by
    [(seed, offered-event-index)].
    @raise Invalid_argument when [rate] is outside [(0, 1]]. *)

val enabled : t -> bool
(** [false] only for {!noop} (and a {!sampled} wrapper around it).
    Emitters must check this before building an event value, so the
    no-op path costs one branch and zero allocation:
    [if Sink.enabled obs then Sink.emit obs (Demand_miss { file })]. *)

val emit : t -> Event.t -> unit
(** Records [event]; a no-op on {!noop}; on {!sampled}, forwards to the
    inner sink only when the event's index is drawn. *)

val events : t -> Event.t list
(** Everything a {!memory} sink recorded, in emission order; [[]] for the
    other sinks ({!sampled} reports its inner sink). *)

val emitted : t -> int
(** Events recorded ({!memory}) or written ({!jsonl}); 0 for {!noop}.
    A {!sampled} sink reports its inner sink — the kept count. *)

val offered : t -> int
(** Events offered to a {!sampled} sink before filtering; 0 for the
    other sinks. *)

val flush : t -> unit
(** Writes out the buffer and flushes the underlying channel of a
    {!jsonl} sink (directly or behind {!sampled}); no-op otherwise.
    Required before closing the channel — unflushed buffered lines are
    otherwise lost. *)
