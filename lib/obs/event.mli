(** The typed event vocabulary of the instrumentation layer.

    One constructor per interesting state transition in the aggregating
    cache's life cycle. File identifiers are plain ints (this library sits
    in the util layer and cannot see [Agg_trace.File_id]); counts such as
    [depth], [lifetime] and [age_accesses] are measured in *accesses*, the
    simulator's only clock, so event streams are bit-reproducible across
    runs and [--jobs] values. *)

type t =
  | Demand_hit of { file : int; depth : int }
      (** A demand access found [file] resident; [depth] is its stack
          distance (position from the hot end, 0-based) at the moment of
          the hit. *)
  | Demand_miss of { file : int }  (** A demand access missed. *)
  | Prefetch_issued of { file : int }
      (** [file] was inserted speculatively as a group member. *)
  | Prefetch_promoted of { file : int; lifetime : int }
      (** A speculative resident received its first demand hit, [lifetime]
          accesses after it was issued. *)
  | Evicted of { file : int; speculative : bool; age_accesses : int }
      (** [file] was physically evicted, [age_accesses] accesses after its
          insertion; [speculative] when it was still an unpromoted
          prefetch. *)
  | Group_built of { anchor : int; size : int }
      (** The group builder assembled a group of [size] files (anchor
          included) for the missed [anchor]. *)
  | Successor_update of { prev : int; next : int }
      (** The successor tracker observed [next] following [prev]. *)
  | Fetch_timeout of { file : int; attempt : int }
      (** Remote fetch attempt number [attempt] (0-based) for [file] timed
          out — the request or response was lost, or the server was inside
          an outage window. *)
  | Fetch_degraded of { file : int; dropped : int }
      (** A fetch exhausted its retries and fell back to the single-file
          demand path; [dropped] speculative group members were shed. *)
  | Client_crashed of { client : int; wiped : int }
      (** [client] crashed and restarted, losing [wiped] cached files;
          server-side metadata survives. *)
  | Node_routed of { file : int; node : int }
      (** A server fetch for [file] was routed through the hash ring and
          served by cluster [node] (a member of the file's replication
          group). *)
  | Replica_failover of { file : int; failed : int; target : int }
      (** The fetch for [file] timed out against group member [failed] and
          was re-issued against the next role-symmetric member [target]. *)
  | Ring_rebalance of { node : int; joined : bool; moved : int }
      (** [node] joined ([joined = true]) or left the hash ring; [moved]
          cached files migrated to their new replication groups. *)

val name : t -> string
(** The JSONL ["ev"] tag, e.g. ["demand_hit"]. *)

val to_json : seq:int -> t -> string
(** One flat JSON object (no trailing newline); [seq] is the event's
    position in its stream. *)

val of_json : string -> (int * t, string) result
(** Strict inverse of {!to_json}: parses one line back into [(seq, event)]
    or explains why it is malformed. Used by the JSONL schema validation
    gate. *)

val pp : Format.formatter -> t -> unit
