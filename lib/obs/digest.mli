(** Per-run observability products derived from an event stream.

    A digest folds {!Event.t}s into counters and the three headline
    histograms of the instrumentation layer — speculative-resident
    lifetime, stack distance at demand hits, and built group size. It also
    replays the simulator's lazy wasted-prefetch detection (a demand miss
    on a file whose prefetch was never promoted), so {!evicted_unused}
    reconciles *exactly* with [Agg_core.Metrics] aggregates: see
    [Agg_core.Metrics.reconcile_client]. *)

type t

val create : ?weight_of:(int -> int * int) -> unit -> t
(** [weight_of file] is the file's [(size, cost)] pair for the weighted
    counters below; every file is [(1, 1)] when omitted, making them
    mirrors of the unweighted counts. Kept as a bare pair so the util
    tier stays below [Agg_cache]. *)

val observe : t -> Event.t -> unit
(** Folds one event, in stream order — the replayed [evicted_unused]
    counter is order-sensitive. *)

val of_events : ?weight_of:(int -> int * int) -> Event.t list -> t

val merge : t -> t -> t
(** Combines counters and histograms of two *completed* runs (e.g. sweep
    cells); the replay state is not merged, so do not [observe] further
    events on the result. *)

val demand_hits : t -> int
val demand_misses : t -> int
val accesses : t -> int
(** [demand_hits + demand_misses]. *)

val prefetch_issued : t -> int
val prefetch_promoted : t -> int

val evicted_speculative : t -> int
(** Physical evictions of still-unpromoted prefetches (eager count). *)

val evicted_demand : t -> int
(** Physical evictions of demand-earned residents. *)

val evicted_unused : t -> int
(** Wasted prefetches as the simulator counts them: detected at the next
    demand miss on the evicted file. Always [<= evicted_speculative]. *)

val bytes_accessed : t -> int
(** Σ size over demand accesses ([weight_of] sizes; access count when
    unweighted). *)

val bytes_hit : t -> int
(** Σ size over demand hits. *)

val cost_fetched : t -> int
(** Σ cost over demand misses. *)

val cost_prefetched : t -> int
(** Σ cost over issued prefetches. *)

val byte_weighted_hit_rate : t -> float
(** [bytes_hit / bytes_accessed]; [0.] before any access. *)

val total_retrieval_cost : t -> int
(** [cost_fetched + cost_prefetched]. *)

val groups_built : t -> int
val successor_updates : t -> int

val fetch_timeouts : t -> int
(** Timed-out remote fetch attempts ({!Event.Fetch_timeout}). *)

val fetch_retries : t -> int
(** Timed-out attempts that were themselves re-issues (attempt > 0). *)

val degraded_fetches : t -> int
(** Group fetches that fell back to the single-file demand path. *)

val client_crashes : t -> int
(** Client crash/restart events. *)

val node_routes : t -> int
(** Server fetches routed to (and served by) a cluster node
    ({!Event.Node_routed}). *)

val replica_failovers : t -> int
(** Fetch attempts re-issued against the next replication-group member
    after a node failure ({!Event.Replica_failover}). *)

val ring_rebalances : t -> int
(** Node join/leave rebalance events ({!Event.Ring_rebalance}). *)

val lifetime : t -> Histogram.t
(** Accesses from prefetch issue to promotion or physical eviction. *)

val hit_depth : t -> Histogram.t
(** Stack distance at each demand hit. *)

val group_size : t -> Histogram.t
(** Size (anchor included) of each built group. *)

val pp : Format.formatter -> t -> unit
