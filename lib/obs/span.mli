(** Monotonic-clock timing sections and their Chrome trace export.

    This module is the repository's only clock access point: simulation
    and harness code takes timestamps exclusively through {!now_ns} /
    {!record} so reproducibility-sensitive paths cannot accidentally
    branch on wall-clock time (ci.sh greps for direct clock calls).

    A {!recorder} collects completed spans from any number of domains
    (appends are mutex-protected, so sweep cells running on an
    [Agg_util.Pool] can share one recorder) and exports them in the Chrome
    [trace_event] JSON format, loadable in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock; meaningful only as differences. *)

val seconds_since : int64 -> float
(** [seconds_since t0] is the elapsed seconds since [t0 = now_ns ()]. *)

type span = {
  name : string;
  cat : string;  (** Chrome trace category, e.g. ["fig3"] *)
  start_ns : int64;
  dur_ns : int64;
  tid : int;  (** domain id that ran the section *)
}

type recorder

val recorder : unit -> recorder
(** A fresh recorder; its creation instant becomes the trace's time 0. *)

val record : recorder -> ?cat:string -> string -> (unit -> 'a) -> 'a
(** [record r name f] runs [f], appends a completed span (even when [f]
    raises) and returns [f]'s result. Thread-safe. [cat] defaults to
    ["sweep"]. *)

val spans : recorder -> span list
(** All completed spans, sorted by start time. *)

val count : recorder -> int
val seconds_of : span -> float
val total_seconds : recorder -> float

val chrome_json : recorder -> string
(** The spans as a Chrome [trace_event] document:
    [{"displayTimeUnit": "ms", "traceEvents": [{"ph": "X", ...}, ...]}]
    with timestamps in microseconds relative to the recorder's origin. *)

val write_chrome : out_channel -> recorder -> unit
(** {!chrome_json} to a channel. *)
