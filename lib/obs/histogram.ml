(* Power-of-two buckets: bucket 0 holds the value 0 and bucket i >= 1
   holds [2^(i-1), 2^i).  62 buckets cover the whole non-negative int
   range, so [add] never needs a range check beyond the sign. *)

let bucket_count = 63

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : int;
  mutable min_v : int; (* max_int when empty *)
  mutable max_v : int; (* min_int when empty *)
}

let create () =
  { counts = Array.make bucket_count 0; total = 0; sum = 0; min_v = max_int; max_v = min_int }

let index_of v =
  if v = 0 then 0
  else begin
    (* number of significant bits: 1 -> 1, 2..3 -> 2, 4..7 -> 3, ... *)
    let bits = ref 0 in
    let v = ref v in
    while !v <> 0 do
      incr bits;
      v := !v lsr 1
    done;
    !bits
  end

let bounds i =
  if i = 0 then (0, 0) else ((1 lsl (i - 1)), (1 lsl i) - 1)

let add t v =
  if v < 0 then invalid_arg "Histogram.add: negative value";
  let i = index_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.total
let sum t = t.sum
let min_value t = if t.total = 0 then None else Some t.min_v
let max_value t = if t.total = 0 then None else Some t.max_v
let mean t = Agg_util.Stats.ratio t.sum t.total

let merge a b =
  {
    counts = Array.init bucket_count (fun i -> a.counts.(i) + b.counts.(i));
    total = a.total + b.total;
    sum = a.sum + b.sum;
    min_v = Stdlib.min a.min_v b.min_v;
    max_v = Stdlib.max a.max_v b.max_v;
  }

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q out of [0,1]";
  if t.total = 0 then None
  else begin
    (* smallest bucket whose cumulative count reaches ceil(q * total),
       reported as the bucket's inclusive upper bound clamped to the
       observed maximum — monotone in q by construction *)
    let target = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int t.total))) in
    let rec loop i seen =
      if i >= bucket_count then Some t.max_v
      else
        let seen = seen + t.counts.(i) in
        if seen >= target then Some (Stdlib.min (snd (bounds i)) t.max_v) else loop (i + 1) seen
    in
    loop 0 0
  end

let buckets t =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    if t.counts.(i) > 0 then
      let lo, hi = bounds i in
      acc := (lo, hi, t.counts.(i)) :: !acc
  done;
  !acc

let pp ppf t =
  if t.total = 0 then Format.pp_print_string ppf "(empty)"
  else begin
    Format.fprintf ppf "n=%d mean=%.1f min=%d max=%d" t.total (mean t) t.min_v t.max_v;
    List.iter (fun (lo, hi, c) -> Format.fprintf ppf " [%d..%d]:%d" lo hi c) (buckets t)
  end
