(** Request-lifecycle tracing over the simulated clock.

    A trace context follows individual demand requests through the
    distributed path — client lookup, per-attempt timeout/backoff,
    replica failover, group fetch or degraded fallback — and records each
    sampled request as a small span tree placed on the {e simulated}
    millisecond clock (the running sum of per-access latencies), exported
    in the same Chrome [trace_event] format as {!Span.chrome_json}.

    Determinism: whether request [i] is sampled, and its 64-bit trace id,
    are pure functions of the context seed and [i] (drawn from
    [Agg_util.Prng.derive base i]), so traces are head-sampled
    identically run-to-run, for any [--jobs] value, and independent of
    how many requests were sampled before [i].

    Protocol per access: the simulator checks {!sampled} once, {!push}es
    the phases the request actually went through when it is, and always
    {!commit}s with the access's total latency — commit materialises the
    span tree for sampled requests and advances the simulated clock for
    every request, so sampled spans sit at their true offsets. *)

type t

val create : ?sample:float -> seed:int -> unit -> t
(** A fresh context. [sample] is the head-sampling rate in [(0, 1]]
    (default [1.0]: every request is traced).
    @raise Invalid_argument when [sample] is outside [(0, 1]]. *)

val sample_rate : t -> float

val sampled : t -> request:int -> bool
(** Is the request at access index [request] traced? Pure in
    [(seed, request)].
    @raise Invalid_argument when [request] is negative. *)

val trace_id : t -> request:int -> int64
(** The request's deterministic 64-bit trace id (drawn from the same
    derived stream as the sampling decision).
    @raise Invalid_argument when [request] is negative. *)

val push : t -> cat:string -> string -> dur_ms:float -> unit
(** Buffers one phase of the current request: a [cat]egory (["hit"],
    ["timeout"], ["backoff"], ["route"], ["fetch"], ["degraded"], ...),
    a display name and a simulated duration. Call only for requests
    {!sampled} answered [true] for — pushes for unsampled requests are
    discarded at the next {!commit}.
    @raise Invalid_argument when [dur_ms] is negative. *)

val commit : t -> request:int -> file:int -> latency_ms:float -> unit
(** Ends the request at access index [request]: when it is sampled, a
    root span of [latency_ms] plus the {!push}ed phases (laid out
    sequentially) are recorded at the current simulated time under the
    request's {!trace_id}. Always advances the simulated clock by
    [latency_ms] and clears the phase buffer — call it for {e every}
    access, sampled or not.
    @raise Invalid_argument when [request] or [latency_ms] is negative. *)

type span = {
  span_trace_id : int64;
  request : int;  (** access index of the owning request *)
  file : int;
  span_name : string;
  span_cat : string;  (** ["request"] for roots, the {!push}ed category otherwise *)
  start_us : int;  (** simulated microseconds from the run's start *)
  dur_us : int;
  depth : int;  (** 0 for the root, 1 for its phases *)
}

val spans : t -> span list
(** Every recorded span, in recording order (roots before their phases). *)

val sampled_requests : t -> int
(** Requests committed while sampled. *)

val attribution : t -> (string * float) list
(** Total simulated milliseconds per phase category across all sampled
    requests, sorted by descending total (ties by name) — the
    critical-path profile of where sampled requests spent their time.
    Root spans are excluded (they are the sums of their phases). *)

val chrome_json : t -> string
(** The spans as a Chrome [trace_event] document ([ph = "X"], simulated
    microsecond timestamps, the trace id and file in [args]), loadable
    in [chrome://tracing] or Perfetto. Deterministic bytes. *)

val pp : Format.formatter -> t -> unit
