type t =
  | Noop
  | Memory of Event.t Agg_util.Vec.t
  | Jsonl of { oc : out_channel; buf : Buffer.t; mutable seq : int }
  | Sampled of { inner : t; base : Agg_util.Prng.t; rate : float; mutable offered : int }

(* Flush threshold for the buffered JSONL sink: one event line is ~60-120
   bytes, so this amortises the per-event write into ~500-1000-line
   batches without holding more than 64 KiB. *)
let jsonl_buffer_bytes = 65_536

let noop = Noop
let memory () = Memory (Agg_util.Vec.create ())
let jsonl oc = Jsonl { oc; buf = Buffer.create jsonl_buffer_bytes; seq = 0 }

let sampled ~seed ~rate inner =
  if not (rate > 0.0 && rate <= 1.0) then
    invalid_arg (Printf.sprintf "Sink.sampled: rate %g outside (0, 1]" rate);
  Sampled { inner; base = Agg_util.Prng.create ~seed (); rate; offered = 0 }

let rec enabled = function
  | Noop -> false
  | Memory _ | Jsonl _ -> true
  | Sampled s -> enabled s.inner

let rec emit t event =
  match t with
  | Noop -> ()
  | Memory vec -> Agg_util.Vec.push vec event
  | Jsonl j ->
      Buffer.add_string j.buf (Event.to_json ~seq:j.seq event);
      Buffer.add_char j.buf '\n';
      j.seq <- j.seq + 1;
      if Buffer.length j.buf >= jsonl_buffer_bytes then begin
        Buffer.output_buffer j.oc j.buf;
        Buffer.clear j.buf
      end
  | Sampled s ->
      let index = s.offered in
      s.offered <- index + 1;
      if Agg_util.Prng.float (Agg_util.Prng.derive s.base index) 1.0 < s.rate then
        emit s.inner event

let rec events = function
  | Noop | Jsonl _ -> []
  | Memory vec -> Agg_util.Vec.to_list vec
  | Sampled s -> events s.inner

let rec emitted = function
  | Noop -> 0
  | Memory vec -> Agg_util.Vec.length vec
  | Jsonl j -> j.seq
  | Sampled s -> emitted s.inner

let offered = function Sampled s -> s.offered | Noop | Memory _ | Jsonl _ -> 0

let rec flush = function
  | Noop | Memory _ -> ()
  | Jsonl j ->
      Buffer.output_buffer j.oc j.buf;
      Buffer.clear j.buf;
      Stdlib.flush j.oc
  | Sampled s -> flush s.inner
