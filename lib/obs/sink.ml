type t =
  | Noop
  | Memory of Event.t Agg_util.Vec.t
  | Jsonl of { oc : out_channel; mutable seq : int }

let noop = Noop
let memory () = Memory (Agg_util.Vec.create ())
let jsonl oc = Jsonl { oc; seq = 0 }

let enabled = function Noop -> false | Memory _ | Jsonl _ -> true

let emit t event =
  match t with
  | Noop -> ()
  | Memory vec -> Agg_util.Vec.push vec event
  | Jsonl j ->
      output_string j.oc (Event.to_json ~seq:j.seq event);
      output_char j.oc '\n';
      j.seq <- j.seq + 1

let events = function
  | Noop | Jsonl _ -> []
  | Memory vec -> Agg_util.Vec.to_list vec

let emitted = function
  | Noop -> 0
  | Memory vec -> Agg_util.Vec.length vec
  | Jsonl j -> j.seq

let flush = function Noop | Memory _ -> () | Jsonl j -> Stdlib.flush j.oc
