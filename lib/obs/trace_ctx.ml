module Prng = Agg_util.Prng
module Vec = Agg_util.Vec

type span = {
  span_trace_id : int64;
  request : int;
  file : int;
  span_name : string;
  span_cat : string;
  start_us : int;
  dur_us : int;
  depth : int;
}

type t = {
  base : Prng.t;
  sample : float;
  spans : span Vec.t;
  pending : (string * string * float) Vec.t;  (* cat, name, dur_ms *)
  mutable clock_us : int;
  mutable sampled_count : int;
}

let create ?(sample = 1.0) ~seed () =
  if not (sample > 0.0 && sample <= 1.0) then
    invalid_arg (Printf.sprintf "Trace_ctx.create: sample rate %g outside (0, 1]" sample);
  {
    base = Prng.create ~seed ();
    sample;
    spans = Vec.create ();
    pending = Vec.create ();
    clock_us = 0;
    sampled_count = 0;
  }

let sample_rate t = t.sample

let check_request request =
  if request < 0 then
    invalid_arg (Printf.sprintf "Trace_ctx: negative request index %d" request)

(* One derived child stream per request; the first draw decides sampling,
   the second is the trace id — both pure in (seed, request). *)
let stream t request = Prng.derive t.base request

let sampled t ~request =
  check_request request;
  Prng.float (stream t request) 1.0 < t.sample

let trace_id t ~request =
  check_request request;
  let rng = stream t request in
  let (_ : float) = Prng.float rng 1.0 in
  Prng.bits64 rng

let push t ~cat name ~dur_ms =
  if dur_ms < 0.0 then
    invalid_arg (Printf.sprintf "Trace_ctx.push: negative duration %g" dur_ms);
  Vec.push t.pending (cat, name, dur_ms)

let us_of_ms ms = int_of_float ((ms *. 1000.0) +. 0.5)

let commit t ~request ~file ~latency_ms =
  check_request request;
  if latency_ms < 0.0 then
    invalid_arg (Printf.sprintf "Trace_ctx.commit: negative latency %g" latency_ms);
  if sampled t ~request then begin
    let id = trace_id t ~request in
    t.sampled_count <- t.sampled_count + 1;
    let start_us = t.clock_us in
    Vec.push t.spans
      {
        span_trace_id = id;
        request;
        file;
        span_name = Printf.sprintf "request f%d" file;
        span_cat = "request";
        start_us;
        dur_us = us_of_ms latency_ms;
        depth = 0;
      };
    let cursor = ref start_us in
    Vec.iter
      (fun (cat, name, dur_ms) ->
        let dur_us = us_of_ms dur_ms in
        Vec.push t.spans
          {
            span_trace_id = id;
            request;
            file;
            span_name = name;
            span_cat = cat;
            start_us = !cursor;
            dur_us;
            depth = 1;
          };
        cursor := !cursor + dur_us)
      t.pending
  end;
  Vec.clear t.pending;
  t.clock_us <- t.clock_us + us_of_ms latency_ms

let spans t = Vec.to_list t.spans
let sampled_requests t = t.sampled_count

let attribution t =
  let totals = ref [] in
  Vec.iter
    (fun s ->
      if s.depth > 0 then
        let ms = float_of_int s.dur_us /. 1000.0 in
        match List.assoc_opt s.span_cat !totals with
        | Some acc -> totals := (s.span_cat, acc +. ms) :: List.remove_assoc s.span_cat !totals
        | None -> totals := (s.span_cat, ms) :: !totals)
    t.spans;
  List.sort
    (fun (ca, ta) (cb, tb) -> match compare tb ta with 0 -> compare ca cb | c -> c)
    !totals

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let chrome_json t =
  let n = Vec.length t.spans in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  Vec.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %d, \"dur\": %d, \
            \"pid\": 1, \"tid\": %d, \"args\": {\"trace_id\": \"%Lx\", \"request\": %d, \
            \"file\": %d}}%s\n"
           (json_escape s.span_name) (json_escape s.span_cat) s.start_us s.dur_us s.depth
           s.span_trace_id s.request s.file
           (if i = n - 1 then "" else ",")))
    t.spans;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "trace_ctx sample=%g sampled=%d spans=%d clock=%.3fms" t.sample
    t.sampled_count (Vec.length t.spans)
    (float_of_int t.clock_us /. 1000.0);
  List.iter (fun (cat, ms) -> Format.fprintf ppf "@ %s=%.3fms" cat ms) (attribution t)
