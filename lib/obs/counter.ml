type t = { mutable count : int }

let create () = { count = 0 }
let incr t = t.count <- t.count + 1

let add t n =
  if n < 0 then invalid_arg "Counter.add: negative increment";
  t.count <- t.count + n

let value t = t.count
let reset t = t.count <- 0
let merge a b = { count = a.count + b.count }
let pp ppf t = Format.pp_print_int ppf t.count
