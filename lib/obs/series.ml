(* Windows are dense: observing window w materialises every window up to
   w, so two series over disjoint index ranges align window-for-window
   under merge. Node loads are dense int arrays (grown by doubling) for
   the same reason — elementwise sums keep merge associative and
   allocation-light. *)

type win = {
  mutable w_accesses : int;
  mutable w_hits : int;
  mutable w_degraded : int;
  mutable w_spec_evictions : int;
  w_latency : Histogram.t;
  mutable w_node_loads : int array;
  mutable w_nodes : int;  (* highest observed node + 1 *)
  mutable w_bytes_accessed : int;
  mutable w_bytes_hit : int;
  mutable w_cost_fetched : int;
}

(* [weighted] records whether any weighted observation was ever made; the
   exporters gate the weighted fields on it, so a series that never saw
   one produces byte-identical output to the pre-weights format. *)
type t = { window : int; mutable wins : win array; mutable used : int; mutable weighted : bool }

let fresh_win () =
  {
    w_accesses = 0;
    w_hits = 0;
    w_degraded = 0;
    w_spec_evictions = 0;
    w_latency = Histogram.create ();
    w_node_loads = [||];
    w_nodes = 0;
    w_bytes_accessed = 0;
    w_bytes_hit = 0;
    w_cost_fetched = 0;
  }

let create ~window =
  if window <= 0 then
    invalid_arg (Printf.sprintf "Series.create: window must be positive (got %d)" window);
  { window; wins = [||]; used = 0; weighted = false }

let window_size t = t.window
let windows t = t.used

let win_at t ~index =
  if index < 0 then
    invalid_arg (Printf.sprintf "Series: negative access index %d" index);
  let w = index / t.window in
  if w >= Array.length t.wins then begin
    let cap = max 8 (max (w + 1) (2 * Array.length t.wins)) in
    let wins = Array.init cap (fun i -> if i < t.used then t.wins.(i) else fresh_win ()) in
    t.wins <- wins
  end;
  (* materialise skipped windows so [used] is always the dense count *)
  if w >= t.used then t.used <- w + 1;
  t.wins.(w)

let observe_access t ~index ~hit =
  let win = win_at t ~index in
  win.w_accesses <- win.w_accesses + 1;
  if hit then win.w_hits <- win.w_hits + 1

let observe_latency t ~index ~us =
  if us < 0 then invalid_arg (Printf.sprintf "Series.observe_latency: negative latency %d" us);
  Histogram.add (win_at t ~index).w_latency us

let observe_degraded t ~index =
  let win = win_at t ~index in
  win.w_degraded <- win.w_degraded + 1

let observe_eviction t ~index ~speculative =
  if speculative then begin
    let win = win_at t ~index in
    win.w_spec_evictions <- win.w_spec_evictions + 1
  end
  else ignore (win_at t ~index)

let observe_weighted t ~index ~size ~cost ~hit =
  if size <= 0 then
    invalid_arg (Printf.sprintf "Series.observe_weighted: size must be positive (got %d)" size);
  if cost <= 0 then
    invalid_arg (Printf.sprintf "Series.observe_weighted: cost must be positive (got %d)" cost);
  let win = win_at t ~index in
  t.weighted <- true;
  win.w_bytes_accessed <- win.w_bytes_accessed + size;
  if hit then win.w_bytes_hit <- win.w_bytes_hit + size
  else win.w_cost_fetched <- win.w_cost_fetched + cost

let observe_node t ~index ~node =
  if node < 0 then invalid_arg (Printf.sprintf "Series.observe_node: negative node %d" node);
  let win = win_at t ~index in
  if node >= Array.length win.w_node_loads then begin
    let cap = max 4 (max (node + 1) (2 * Array.length win.w_node_loads)) in
    let loads = Array.make cap 0 in
    Array.blit win.w_node_loads 0 loads 0 win.w_nodes;
    win.w_node_loads <- loads
  end;
  if node >= win.w_nodes then win.w_nodes <- node + 1;
  win.w_node_loads.(node) <- win.w_node_loads.(node) + 1

let observe_event t ~index event =
  match (event : Event.t) with
  | Event.Demand_hit _ -> observe_access t ~index ~hit:true
  | Event.Demand_miss _ -> observe_access t ~index ~hit:false
  | Event.Fetch_degraded _ -> observe_degraded t ~index
  | Event.Evicted { speculative; _ } -> observe_eviction t ~index ~speculative
  | Event.Node_routed { node; _ } -> observe_node t ~index ~node
  | Event.Prefetch_issued _ | Event.Prefetch_promoted _ | Event.Group_built _
  | Event.Successor_update _ | Event.Fetch_timeout _ | Event.Client_crashed _
  | Event.Replica_failover _ | Event.Ring_rebalance _ ->
      ()

let of_events ~window events =
  let t = create ~window in
  let accesses = ref 0 in
  List.iter
    (fun event ->
      observe_event t ~index:!accesses event;
      match (event : Event.t) with
      | Event.Demand_hit _ | Event.Demand_miss _ -> incr accesses
      | _ -> ())
    events;
  t

let merge a b =
  if a.window <> b.window then
    invalid_arg
      (Printf.sprintf "Series.merge: window sizes differ (%d vs %d)" a.window b.window);
  let used = max a.used b.used in
  let merged_win i =
    let pick s = if i < s.used then Some s.wins.(i) else None in
    match (pick a, pick b) with
    | Some x, None | None, Some x ->
        (* fresh copy: merge must not alias its inputs *)
        {
          w_accesses = x.w_accesses;
          w_hits = x.w_hits;
          w_degraded = x.w_degraded;
          w_spec_evictions = x.w_spec_evictions;
          w_latency = Histogram.merge x.w_latency (Histogram.create ());
          w_node_loads = Array.sub x.w_node_loads 0 x.w_nodes;
          w_nodes = x.w_nodes;
          w_bytes_accessed = x.w_bytes_accessed;
          w_bytes_hit = x.w_bytes_hit;
          w_cost_fetched = x.w_cost_fetched;
        }
    | Some x, Some y ->
        let nodes = max x.w_nodes y.w_nodes in
        let loads =
          Array.init nodes (fun n ->
              (if n < x.w_nodes then x.w_node_loads.(n) else 0)
              + if n < y.w_nodes then y.w_node_loads.(n) else 0)
        in
        {
          w_accesses = x.w_accesses + y.w_accesses;
          w_hits = x.w_hits + y.w_hits;
          w_degraded = x.w_degraded + y.w_degraded;
          w_spec_evictions = x.w_spec_evictions + y.w_spec_evictions;
          w_latency = Histogram.merge x.w_latency y.w_latency;
          w_node_loads = loads;
          w_nodes = nodes;
          w_bytes_accessed = x.w_bytes_accessed + y.w_bytes_accessed;
          w_bytes_hit = x.w_bytes_hit + y.w_bytes_hit;
          w_cost_fetched = x.w_cost_fetched + y.w_cost_fetched;
        }
    | None, None -> fresh_win ()
  in
  { window = a.window; wins = Array.init used merged_win; used; weighted = a.weighted || b.weighted }

(* --- accessors ---------------------------------------------------------- *)

let get t w =
  if w < 0 || w >= t.used then
    invalid_arg (Printf.sprintf "Series: window %d outside [0, %d)" w t.used);
  t.wins.(w)

let accesses t w = (get t w).w_accesses
let bytes_accessed t w = (get t w).w_bytes_accessed
let bytes_hit t w = (get t w).w_bytes_hit
let cost_fetched t w = (get t w).w_cost_fetched
let hits t w = (get t w).w_hits
let degraded t w = (get t w).w_degraded
let speculative_evictions t w = (get t w).w_spec_evictions

let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den
let hit_rate t w =
  let win = get t w in
  pct win.w_hits win.w_accesses

let byte_hit_rate t w =
  let win = get t w in
  pct win.w_bytes_hit win.w_bytes_accessed

let degraded_rate t w =
  let win = get t w in
  pct win.w_degraded win.w_accesses

let latency_quantile t w q = Histogram.quantile (get t w).w_latency q

let node_loads t w =
  let win = get t w in
  let acc = ref [] in
  for n = win.w_nodes - 1 downto 0 do
    if win.w_node_loads.(n) > 0 then acc := (n, win.w_node_loads.(n)) :: !acc
  done;
  !acc

let load_imbalance ?nodes t w =
  let win = get t w in
  let nodes =
    match nodes with
    | Some n ->
        if n <= 0 then
          invalid_arg (Printf.sprintf "Series.load_imbalance: nodes must be positive (got %d)" n);
        n
    | None -> win.w_nodes
  in
  if nodes = 0 then 0.0
  else begin
    let total = ref 0 and max_load = ref 0 in
    for n = 0 to nodes - 1 do
      let load = if n < win.w_nodes then win.w_node_loads.(n) else 0 in
      total := !total + load;
      if load > !max_load then max_load := load
    done;
    if !total = 0 then 0.0
    else float_of_int !max_load /. (float_of_int !total /. float_of_int nodes)
  end

let fold_wins t f init =
  let acc = ref init in
  for w = 0 to t.used - 1 do
    acc := f !acc t.wins.(w)
  done;
  !acc

let total_accesses t = fold_wins t (fun acc w -> acc + w.w_accesses) 0
let total_hits t = fold_wins t (fun acc w -> acc + w.w_hits) 0
let total_degraded t = fold_wins t (fun acc w -> acc + w.w_degraded) 0
let total_speculative_evictions t = fold_wins t (fun acc w -> acc + w.w_spec_evictions) 0
let total_bytes_accessed t = fold_wins t (fun acc w -> acc + w.w_bytes_accessed) 0
let total_bytes_hit t = fold_wins t (fun acc w -> acc + w.w_bytes_hit) 0
let total_cost_fetched t = fold_wins t (fun acc w -> acc + w.w_cost_fetched) 0

let total_latency t = fold_wins t (fun acc w -> Histogram.merge acc w.w_latency) (Histogram.create ())

(* --- export -------------------------------------------------------------- *)

let float_str f =
  let s = Printf.sprintf "%g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let quantile_field h q =
  match Histogram.quantile h q with Some v -> string_of_int v | None -> "null"

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "{\n  \"window_size\": %d,\n  \"windows\": [\n" t.window);
  for w = 0 to t.used - 1 do
    let win = t.wins.(w) in
    Buffer.add_string buf
      (Printf.sprintf
         "    {\"index\": %d, \"accesses\": %d, \"hits\": %d, \"degraded\": %d, \
          \"speculative_evictions\": %d, \"latency_us\": {\"p50\": %s, \"p95\": %s, \"p99\": %s}, \
          \"node_loads\": [%s]%s}%s\n"
         w win.w_accesses win.w_hits win.w_degraded win.w_spec_evictions
         (quantile_field win.w_latency 0.5)
         (quantile_field win.w_latency 0.95)
         (quantile_field win.w_latency 0.99)
         (String.concat ", "
            (List.map (fun (n, c) -> Printf.sprintf "[%d, %d]" n c) (node_loads t w)))
         (if t.weighted then
            Printf.sprintf ", \"bytes_accessed\": %d, \"bytes_hit\": %d, \"cost_fetched\": %d"
              win.w_bytes_accessed win.w_bytes_hit win.w_cost_fetched
          else "")
         (if w = t.used - 1 then "" else ","))
  done;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let to_prometheus ?(prefix = "agg") t =
  let buf = Buffer.create 1024 in
  let gauge name render =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s_%s gauge\n" prefix name);
    for w = 0 to t.used - 1 do
      render w
    done
  in
  let sample name w value =
    Buffer.add_string buf (Printf.sprintf "%s_%s{window=\"%d\"} %s\n" prefix name w value)
  in
  gauge "accesses" (fun w -> sample "accesses" w (string_of_int (accesses t w)));
  gauge "hit_rate" (fun w -> sample "hit_rate" w (float_str (hit_rate t w)));
  gauge "degraded_rate" (fun w -> sample "degraded_rate" w (float_str (degraded_rate t w)));
  gauge "speculative_evictions" (fun w ->
      sample "speculative_evictions" w (string_of_int (speculative_evictions t w)));
  gauge "p99_latency_us" (fun w ->
      match latency_quantile t w 0.99 with
      | Some us -> sample "p99_latency_us" w (string_of_int us)
      | None -> ());
  if t.weighted then begin
    gauge "byte_hit_rate" (fun w -> sample "byte_hit_rate" w (float_str (byte_hit_rate t w)));
    gauge "cost_fetched" (fun w -> sample "cost_fetched" w (string_of_int (cost_fetched t w)))
  end;
  gauge "node_load" (fun w ->
      List.iter
        (fun (n, c) ->
          Buffer.add_string buf
            (Printf.sprintf "%s_node_load{window=\"%d\",node=\"%d\"} %d\n" prefix w n c))
        (node_loads t w));
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "series window=%d windows=%d" t.window t.used;
  for w = 0 to t.used - 1 do
    Format.fprintf ppf "@ [%d] n=%d hit=%.1f%% degraded=%d spec_evict=%d" w (accesses t w)
      (hit_rate t w) (degraded t w)
      (speculative_evictions t w)
  done
