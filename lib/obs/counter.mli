(** A monotonically increasing event counter.

    Counters are deliberately dumb — one mutable cell — so incrementing on
    a hot path costs a single store. They become interesting through
    {!merge}: per-domain counters accumulated inside [Agg_util.Pool]
    workers can be combined after the sweep, and merging is associative
    and commutative with {!create} as the identity (pinned by qcheck
    properties in [test/test_obs.ml]). *)

type t

val create : unit -> t
(** A fresh counter at zero. *)

val incr : t -> unit
(** Adds one. *)

val add : t -> int -> unit
(** [add t n] adds [n]. @raise Invalid_argument when [n] is negative. *)

val value : t -> int

val reset : t -> unit
(** Back to zero. *)

val merge : t -> t -> t
(** [merge a b] is a fresh counter holding [value a + value b]; the
    arguments are not mutated. *)

val pp : Format.formatter -> t -> unit
