(* The monotonic clock lives behind this module so simulation code never
   reads time directly — ci.sh greps for stray clock calls. The clock
   itself is bechamel's CLOCK_MONOTONIC stub (nanoseconds, no
   allocation). *)

let now_ns () = Monotonic_clock.now ()

let seconds_since start_ns = Int64.to_float (Int64.sub (now_ns ()) start_ns) /. 1e9

type span = { name : string; cat : string; start_ns : int64; dur_ns : int64; tid : int }

type recorder = {
  origin_ns : int64;
  lock : Mutex.t;
  spans : span Agg_util.Vec.t;
}

let recorder () =
  { origin_ns = now_ns (); lock = Mutex.create (); spans = Agg_util.Vec.create () }

let add_span t span = Mutex.protect t.lock (fun () -> Agg_util.Vec.push t.spans span)

let record t ?(cat = "sweep") name f =
  let start_ns = now_ns () in
  let finally () =
    let dur_ns = Int64.sub (now_ns ()) start_ns in
    add_span t { name; cat; start_ns; dur_ns; tid = (Domain.self () :> int) }
  in
  Fun.protect ~finally f

let spans t =
  let all = Mutex.protect t.lock (fun () -> Agg_util.Vec.to_list t.spans) in
  List.stable_sort (fun a b -> Int64.compare a.start_ns b.start_ns) all

let count t = Mutex.protect t.lock (fun () -> Agg_util.Vec.length t.spans)

let seconds_of span = Int64.to_float span.dur_ns /. 1e9

let total_seconds t = List.fold_left (fun acc s -> acc +. seconds_of s) 0.0 (spans t)

(* --- Chrome trace_event export ------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let us_of_ns ns = Int64.to_float ns /. 1e3

let chrome_json t =
  let spans = spans t in
  let n = List.length spans in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, \
            \"pid\": 1, \"tid\": %d}%s\n"
           (json_escape s.name) (json_escape s.cat)
           (us_of_ns (Int64.sub s.start_ns t.origin_ns))
           (us_of_ns s.dur_ns) s.tid
           (if i = n - 1 then "" else ",")))
    spans;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write_chrome oc t = output_string oc (chrome_json t)
