(** Windowed time-series telemetry over the simulator's access clock.

    A series partitions a run into fixed windows of [window] accesses
    (access index [i] lands in window [i / window]) and accumulates, per
    window: access and hit counts, degraded-fetch counts, speculative
    eviction churn, a latency histogram in integer microseconds, and
    dense per-node load counts. Every observation is keyed by the access
    {e index}, not by arrival order, so a series built from shards of a
    run merges into exactly the series of the whole run.

    {!merge} is associative and commutative with {!create} as identity
    (the qcheck properties in [test/test_obs.ml] pin this), which makes
    per-shard series reducible under [Agg_util.Pool] with byte-identical
    {!to_json}/{!to_prometheus} output for any [--jobs] value.

    Window sums reconcile exactly with end-of-run aggregates:
    [total_hits] against a result's hit counter, [total_degraded]
    against {!Digest.degraded_fetches}, and so on — the telemetry layer
    never invents counts the run did not produce. *)

type t

val create : window:int -> t
(** A fresh series with [window] accesses per window.
    @raise Invalid_argument when [window] is not positive. *)

val window_size : t -> int

val windows : t -> int
(** Number of windows touched so far (highest observed window index + 1;
    0 before any observation). Windows skipped by sparse indices exist
    and hold zero counts. *)

(** {2 Recording}

    All [observe_*] functions file the observation under window
    [index / window_size].
    @raise Invalid_argument when [index] is negative (all), [us] is
    negative ({!observe_latency}), or [node] is negative
    ({!observe_node}). *)

val observe_access : t -> index:int -> hit:bool -> unit
(** One demand access; [hit] when it was served from the local cache. *)

val observe_latency : t -> index:int -> us:int -> unit
(** One access latency, in integer microseconds (topologies without a
    latency model simply never call this). *)

val observe_degraded : t -> index:int -> unit
(** A fetch exhausted its retries and fell back to the degraded
    single-file path. *)

val observe_eviction : t -> index:int -> speculative:bool -> unit
(** A physical eviction; only [speculative = true] (unpromoted prefetch)
    evictions are counted — the series tracks prefetch churn. *)

val observe_node : t -> index:int -> node:int -> unit
(** A fetch was served by cluster [node] (degraded fallbacks count
    against the primary, mirroring per-node request accounting). *)

val observe_weighted : t -> index:int -> size:int -> cost:int -> hit:bool -> unit
(** One demand access under per-file weights: [size] bytes were asked
    for, served locally when [hit], else fetched at [cost]. Purely
    additive beside {!observe_access} (callers record both). The first
    weighted observation switches the exporters into the weighted
    format; a series that never sees one exports byte-identical output
    to the unweighted world.
    @raise Invalid_argument when [size] or [cost] is not positive. *)

val observe_event : t -> index:int -> Event.t -> unit
(** Folds one {!Event.t} into the series at [index]: demand hits/misses
    update the access counts, [Fetch_degraded] the degraded count,
    speculative [Evicted] the churn count and [Node_routed] the node
    loads; other events are ignored.
    @raise Invalid_argument when [index] is negative. *)

val of_events : window:int -> Event.t list -> t
(** A series from a decision-event stream, indexing each event by the
    number of demand accesses ([Demand_hit]/[Demand_miss]) seen {e
    before} it — the simulator's access clock, replayed.
    @raise Invalid_argument when [window] is not positive. *)

val merge : t -> t -> t
(** [merge a b] is a fresh series with both inputs' observations,
    aligned window by window; the arguments are not mutated.
    Associative and commutative.
    @raise Invalid_argument when the window sizes differ. *)

(** {2 Per-window accessors}

    All take a window index [w] and raise [Invalid_argument] when [w] is
    outside [0, windows t). *)

val accesses : t -> int -> int
val hits : t -> int -> int
val degraded : t -> int -> int
val speculative_evictions : t -> int -> int

val hit_rate : t -> int -> float
(** Percent of the window's accesses served locally; [0.] on an empty
    window. *)

val bytes_accessed : t -> int -> int
val bytes_hit : t -> int -> int
val cost_fetched : t -> int -> int

val byte_hit_rate : t -> int -> float
(** Percent of the window's bytes served locally; [0.] on an empty (or
    never-weighted) window. *)

val degraded_rate : t -> int -> float
(** Percent of the window's accesses that degraded; [0.] on an empty
    window. *)

val latency_quantile : t -> int -> float -> int option
(** The window's latency quantile in microseconds ({!Histogram.quantile}
    resolution); [None] when no latency was observed.
    @raise Invalid_argument when the quantile is outside [0, 1]. *)

val node_loads : t -> int -> (int * int) list
(** The window's non-zero per-node fetch counts as [(node, count)], in
    increasing node order. *)

val load_imbalance : ?nodes:int -> t -> int -> float
(** Max over mean of the window's per-node loads, across nodes
    [0 .. nodes - 1] ([nodes] defaults to the highest node observed in
    the window, + 1). [1.] is perfectly balanced; [0.] when no load was
    observed. @raise Invalid_argument when [nodes] is not positive. *)

(** {2 Whole-run totals (exact window sums)} *)

val total_accesses : t -> int
val total_hits : t -> int
val total_degraded : t -> int
val total_speculative_evictions : t -> int

val total_bytes_accessed : t -> int
val total_bytes_hit : t -> int
val total_cost_fetched : t -> int

val total_latency : t -> Histogram.t
(** All windows' latency observations merged into one histogram. *)

(** {2 Export} *)

val to_json : t -> string
(** The series as one JSON object: window size and an array of per-window
    objects (accesses, hits, degraded, speculative evictions, latency
    quantiles in microseconds, node loads — plus bytes/cost fields once
    any weighted observation was recorded). Deterministic bytes. *)

val to_prometheus : ?prefix:string -> t -> string
(** Prometheus text exposition: one gauge sample per window per metric,
    labelled [{window="w"}] (and [{window="w",node="n"}] for node
    loads). [prefix] defaults to ["agg"]. Deterministic bytes. *)

val pp : Format.formatter -> t -> unit
