(** A log-bucketed histogram of non-negative integers.

    Bucket 0 holds the value 0 and bucket [i >= 1] holds the range
    [2^(i-1) .. 2^i - 1], so any int fits in 63 buckets and [add] is a
    handful of instructions — cheap enough for per-event recording. Count,
    sum, min and max are tracked exactly; quantiles are bucket-resolution
    approximations.

    Histograms are mergeable: {!merge} is associative and commutative with
    {!create} as identity, so per-domain histograms built under
    [Agg_util.Pool] can be reduced to one after a sweep (the qcheck
    properties in [test/test_obs.ml] pin this, including pooled-vs-
    sequential equality). *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Records one observation. @raise Invalid_argument on a negative value. *)

val count : t -> int
val sum : t -> int
val mean : t -> float
(** [0.] when empty. *)

val min_value : t -> int option
val max_value : t -> int option
(** Exact extremes; [None] when empty. *)

val merge : t -> t -> t
(** [merge a b] is a fresh histogram of both inputs' observations; the
    arguments are not mutated. *)

val quantile : t -> float -> int option
(** [quantile t q] for [q] in [0,1] is the inclusive upper bound of the
    smallest bucket whose cumulative count reaches [q * count], clamped to
    the observed maximum; monotone in [q]. [None] when empty.
    @raise Invalid_argument when [q] is outside [0,1]. *)

val buckets : t -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)], in increasing value order. *)

val pp : Format.formatter -> t -> unit
