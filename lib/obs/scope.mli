(** One record for everything observability: the event sink(s), the
    span profiler, the windowed telemetry series and the request-trace
    context that used to travel as four separate optional arguments.

    A scope is threaded as a single [t option] parameter defaulting to
    [None] — telemetry off — and every accessor here takes that option
    directly, so call sites never match on it. With [None] (or {!off})
    each accessor returns the no-op/absent value and the instrumented
    code paths are never entered: outputs stay byte-identical to a run
    with no telemetry at all. *)

type t = {
  sink : Sink.t;  (** single-run event sink; {!Sink.noop} = off *)
  sink_for : (label:string -> Sink.t) option;
      (** per-cell sinks for sweeps, keyed by the cell's span label
          (e.g. ["fig3/server/g5/c300"]). Because each cell owns its
          sink, event sequences are identical for any job count — supply
          a distinct sink per label when running with several domains.
          [None] = every cell gets [sink]. *)
  profiler : Span.recorder option;  (** wall-clock span recorder *)
  series : Series.t option;  (** windowed time-series telemetry *)
  trace_ctx : Trace_ctx.t option;  (** sampled request-trace spans *)
}

val off : t
(** Everything disabled — equivalent to passing [None] as the scope. *)

val create :
  ?sink:Sink.t ->
  ?sink_for:(label:string -> Sink.t) ->
  ?profiler:Span.recorder ->
  ?series:Series.t ->
  ?trace_ctx:Trace_ctx.t ->
  unit ->
  t
(** [create ()] is {!off}; each argument switches one instrument on. *)

val sink : t option -> Sink.t
(** The single-run sink; {!Sink.noop} when the scope is [None]. *)

val sink_for : t option -> string -> Sink.t
(** The sink for the cell labelled [label]: [sink_for ~label] when set,
    else the scope's [sink], else {!Sink.noop}. *)

val profiler : t option -> Span.recorder option
val series : t option -> Series.t option
val trace_ctx : t option -> Trace_ctx.t option
