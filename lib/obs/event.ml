type t =
  | Demand_hit of { file : int; depth : int }
  | Demand_miss of { file : int }
  | Prefetch_issued of { file : int }
  | Prefetch_promoted of { file : int; lifetime : int }
  | Evicted of { file : int; speculative : bool; age_accesses : int }
  | Group_built of { anchor : int; size : int }
  | Successor_update of { prev : int; next : int }
  | Fetch_timeout of { file : int; attempt : int }
  | Fetch_degraded of { file : int; dropped : int }
  | Client_crashed of { client : int; wiped : int }
  | Node_routed of { file : int; node : int }
  | Replica_failover of { file : int; failed : int; target : int }
  | Ring_rebalance of { node : int; joined : bool; moved : int }

let name = function
  | Demand_hit _ -> "demand_hit"
  | Demand_miss _ -> "demand_miss"
  | Prefetch_issued _ -> "prefetch_issued"
  | Prefetch_promoted _ -> "prefetch_promoted"
  | Evicted _ -> "evicted"
  | Group_built _ -> "group_built"
  | Successor_update _ -> "successor_update"
  | Fetch_timeout _ -> "fetch_timeout"
  | Fetch_degraded _ -> "fetch_degraded"
  | Client_crashed _ -> "client_crashed"
  | Node_routed _ -> "node_routed"
  | Replica_failover _ -> "replica_failover"
  | Ring_rebalance _ -> "ring_rebalance"

let to_json ~seq t =
  match t with
  | Demand_hit { file; depth } ->
      Printf.sprintf {|{"seq":%d,"ev":"demand_hit","file":%d,"depth":%d}|} seq file depth
  | Demand_miss { file } -> Printf.sprintf {|{"seq":%d,"ev":"demand_miss","file":%d}|} seq file
  | Prefetch_issued { file } ->
      Printf.sprintf {|{"seq":%d,"ev":"prefetch_issued","file":%d}|} seq file
  | Prefetch_promoted { file; lifetime } ->
      Printf.sprintf {|{"seq":%d,"ev":"prefetch_promoted","file":%d,"lifetime":%d}|} seq file
        lifetime
  | Evicted { file; speculative; age_accesses } ->
      Printf.sprintf {|{"seq":%d,"ev":"evicted","file":%d,"speculative":%b,"age":%d}|} seq file
        speculative age_accesses
  | Group_built { anchor; size } ->
      Printf.sprintf {|{"seq":%d,"ev":"group_built","anchor":%d,"size":%d}|} seq anchor size
  | Successor_update { prev; next } ->
      Printf.sprintf {|{"seq":%d,"ev":"successor_update","prev":%d,"next":%d}|} seq prev next
  | Fetch_timeout { file; attempt } ->
      Printf.sprintf {|{"seq":%d,"ev":"fetch_timeout","file":%d,"attempt":%d}|} seq file attempt
  | Fetch_degraded { file; dropped } ->
      Printf.sprintf {|{"seq":%d,"ev":"fetch_degraded","file":%d,"dropped":%d}|} seq file dropped
  | Client_crashed { client; wiped } ->
      Printf.sprintf {|{"seq":%d,"ev":"client_crashed","client":%d,"wiped":%d}|} seq client wiped
  | Node_routed { file; node } ->
      Printf.sprintf {|{"seq":%d,"ev":"node_routed","file":%d,"node":%d}|} seq file node
  | Replica_failover { file; failed; target } ->
      Printf.sprintf {|{"seq":%d,"ev":"replica_failover","file":%d,"failed":%d,"target":%d}|} seq
        file failed target
  | Ring_rebalance { node; joined; moved } ->
      Printf.sprintf {|{"seq":%d,"ev":"ring_rebalance","node":%d,"joined":%b,"moved":%d}|} seq
        node joined moved

(* Strict parser for exactly the lines [to_json] produces: one flat JSON
   object, string values only for "ev", int or bool values elsewhere, no
   whitespace variance required (but tolerated around separators). *)

let parse_fields line =
  let line = String.trim line in
  let n = String.length line in
  if n < 2 || line.[0] <> '{' || line.[n - 1] <> '}' then Error "not a JSON object"
  else
    let body = String.sub line 1 (n - 2) in
    let parts = String.split_on_char ',' body in
    let parse_field part =
      match String.index_opt part ':' with
      | None -> Error (Printf.sprintf "field %S has no colon" part)
      | Some i ->
          let key = String.trim (String.sub part 0 i) in
          let value = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
          let kn = String.length key in
          if kn < 2 || key.[0] <> '"' || key.[kn - 1] <> '"' then
            Error (Printf.sprintf "unquoted key %S" key)
          else Ok (String.sub key 1 (kn - 2), value)
    in
    List.fold_left
      (fun acc part ->
        match (acc, parse_field part) with
        | Error e, _ -> Error e
        | _, Error e -> Error e
        | Ok fields, Ok kv -> Ok (kv :: fields))
      (Ok []) parts
    |> Result.map List.rev

let field fields key =
  match List.assoc_opt key fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" key)

let int_field fields key =
  Result.bind (field fields key) (fun v ->
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %S is not an int: %S" key v))

let bool_field fields key =
  Result.bind (field fields key) (fun v ->
      match bool_of_string_opt v with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "field %S is not a bool: %S" key v))

let ( let* ) = Result.bind

let of_json line =
  let* fields = parse_fields line in
  let* seq = int_field fields "seq" in
  let* ev = field fields "ev" in
  let expect_fields n =
    if List.length fields = n then Ok ()
    else Error (Printf.sprintf "expected %d fields for %s, got %d" n ev (List.length fields))
  in
  let* event =
    match ev with
    | {|"demand_hit"|} ->
        let* () = expect_fields 4 in
        let* file = int_field fields "file" in
        let* depth = int_field fields "depth" in
        Ok (Demand_hit { file; depth })
    | {|"demand_miss"|} ->
        let* () = expect_fields 3 in
        let* file = int_field fields "file" in
        Ok (Demand_miss { file })
    | {|"prefetch_issued"|} ->
        let* () = expect_fields 3 in
        let* file = int_field fields "file" in
        Ok (Prefetch_issued { file })
    | {|"prefetch_promoted"|} ->
        let* () = expect_fields 4 in
        let* file = int_field fields "file" in
        let* lifetime = int_field fields "lifetime" in
        Ok (Prefetch_promoted { file; lifetime })
    | {|"evicted"|} ->
        let* () = expect_fields 5 in
        let* file = int_field fields "file" in
        let* speculative = bool_field fields "speculative" in
        let* age_accesses = int_field fields "age" in
        Ok (Evicted { file; speculative; age_accesses })
    | {|"group_built"|} ->
        let* () = expect_fields 4 in
        let* anchor = int_field fields "anchor" in
        let* size = int_field fields "size" in
        Ok (Group_built { anchor; size })
    | {|"successor_update"|} ->
        let* () = expect_fields 4 in
        let* prev = int_field fields "prev" in
        let* next = int_field fields "next" in
        Ok (Successor_update { prev; next })
    | {|"fetch_timeout"|} ->
        let* () = expect_fields 4 in
        let* file = int_field fields "file" in
        let* attempt = int_field fields "attempt" in
        Ok (Fetch_timeout { file; attempt })
    | {|"fetch_degraded"|} ->
        let* () = expect_fields 4 in
        let* file = int_field fields "file" in
        let* dropped = int_field fields "dropped" in
        Ok (Fetch_degraded { file; dropped })
    | {|"client_crashed"|} ->
        let* () = expect_fields 4 in
        let* client = int_field fields "client" in
        let* wiped = int_field fields "wiped" in
        Ok (Client_crashed { client; wiped })
    | {|"node_routed"|} ->
        let* () = expect_fields 4 in
        let* file = int_field fields "file" in
        let* node = int_field fields "node" in
        Ok (Node_routed { file; node })
    | {|"replica_failover"|} ->
        let* () = expect_fields 5 in
        let* file = int_field fields "file" in
        let* failed = int_field fields "failed" in
        let* target = int_field fields "target" in
        Ok (Replica_failover { file; failed; target })
    | {|"ring_rebalance"|} ->
        let* () = expect_fields 5 in
        let* node = int_field fields "node" in
        let* joined = bool_field fields "joined" in
        let* moved = int_field fields "moved" in
        Ok (Ring_rebalance { node; joined; moved })
    | other -> Error (Printf.sprintf "unknown event type %s" other)
  in
  Ok (seq, event)

let pp ppf t = Format.pp_print_string ppf (to_json ~seq:0 t)
