type t = {
  sink : Sink.t;
  sink_for : (label:string -> Sink.t) option;
  profiler : Span.recorder option;
  series : Series.t option;
  trace_ctx : Trace_ctx.t option;
}

let off = { sink = Sink.noop; sink_for = None; profiler = None; series = None; trace_ctx = None }

let create ?(sink = Sink.noop) ?sink_for ?profiler ?series ?trace_ctx () =
  { sink; sink_for; profiler; series; trace_ctx }

(* Accessors over [t option]: everything degrades to "off" on [None], so
   call sites thread one [?scope] parameter and never match on it. *)
let sink scope = match scope with None -> Sink.noop | Some s -> s.sink

let sink_for scope label =
  match scope with
  | None -> Sink.noop
  | Some s -> ( match s.sink_for with Some f -> f ~label | None -> s.sink)

let profiler scope = match scope with None -> None | Some s -> s.profiler
let series scope = match scope with None -> None | Some s -> s.series
let trace_ctx scope = match scope with None -> None | Some s -> s.trace_ctx
