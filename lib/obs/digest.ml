type t = {
  demand_hits : Counter.t;
  demand_misses : Counter.t;
  prefetch_issued : Counter.t;
  prefetch_promoted : Counter.t;
  evicted_speculative : Counter.t;
  evicted_demand : Counter.t;
  evicted_unused : Counter.t;
  groups_built : Counter.t;
  successor_updates : Counter.t;
  fetch_timeouts : Counter.t;
  fetch_retries : Counter.t;
  degraded_fetches : Counter.t;
  client_crashes : Counter.t;
  node_routes : Counter.t;
  replica_failovers : Counter.t;
  ring_rebalances : Counter.t;
  lifetime : Histogram.t;
  hit_depth : Histogram.t;
  group_size : Histogram.t;
  weight_of : (int -> int * int) option;
  bytes_accessed : Counter.t;
  bytes_hit : Counter.t;
  cost_fetched : Counter.t;
  cost_prefetched : Counter.t;
  (* Mirror of the simulator's speculative-resident table, rebuilt from
     the stream: a file is marked from Prefetch_issued until it is
     promoted or its eviction is discovered by the next demand miss. *)
  marked : (int, unit) Hashtbl.t;
}

let create ?weight_of () =
  {
    weight_of;
    bytes_accessed = Counter.create ();
    bytes_hit = Counter.create ();
    cost_fetched = Counter.create ();
    cost_prefetched = Counter.create ();
    demand_hits = Counter.create ();
    demand_misses = Counter.create ();
    prefetch_issued = Counter.create ();
    prefetch_promoted = Counter.create ();
    evicted_speculative = Counter.create ();
    evicted_demand = Counter.create ();
    evicted_unused = Counter.create ();
    groups_built = Counter.create ();
    successor_updates = Counter.create ();
    fetch_timeouts = Counter.create ();
    fetch_retries = Counter.create ();
    degraded_fetches = Counter.create ();
    client_crashes = Counter.create ();
    node_routes = Counter.create ();
    replica_failovers = Counter.create ();
    ring_rebalances = Counter.create ();
    lifetime = Histogram.create ();
    hit_depth = Histogram.create ();
    group_size = Histogram.create ();
    marked = Hashtbl.create 64;
  }

let weight t file = match t.weight_of with None -> (1, 1) | Some f -> f file

let observe t (event : Event.t) =
  match event with
  | Demand_hit { file; depth } ->
      Counter.incr t.demand_hits;
      let size, _ = weight t file in
      Counter.add t.bytes_accessed size;
      Counter.add t.bytes_hit size;
      Histogram.add t.hit_depth depth
  | Demand_miss { file } ->
      Counter.incr t.demand_misses;
      let size, cost = weight t file in
      Counter.add t.bytes_accessed size;
      Counter.add t.cost_fetched cost;
      (* The simulator discovers a wasted prefetch lazily: the next demand
         miss on a still-marked file means it was evicted before use. *)
      if Hashtbl.mem t.marked file then begin
        Counter.incr t.evicted_unused;
        Hashtbl.remove t.marked file
      end
  | Prefetch_issued { file } ->
      Counter.incr t.prefetch_issued;
      let _, cost = weight t file in
      Counter.add t.cost_prefetched cost;
      Hashtbl.replace t.marked file ()
  | Prefetch_promoted { file; lifetime } ->
      Counter.incr t.prefetch_promoted;
      Hashtbl.remove t.marked file;
      Histogram.add t.lifetime lifetime
  | Evicted { speculative; age_accesses; _ } ->
      if speculative then begin
        Counter.incr t.evicted_speculative;
        Histogram.add t.lifetime age_accesses
      end
      else Counter.incr t.evicted_demand
  | Group_built { size; _ } ->
      Counter.incr t.groups_built;
      Histogram.add t.group_size size

  | Successor_update _ -> Counter.incr t.successor_updates
  | Fetch_timeout { attempt; _ } ->
      Counter.incr t.fetch_timeouts;
      (* attempt 1 and later exist only because a retry re-issued them *)
      if attempt > 0 then Counter.incr t.fetch_retries
  | Fetch_degraded _ -> Counter.incr t.degraded_fetches
  | Client_crashed _ -> Counter.incr t.client_crashes
  | Node_routed _ -> Counter.incr t.node_routes
  | Replica_failover _ -> Counter.incr t.replica_failovers
  | Ring_rebalance _ -> Counter.incr t.ring_rebalances

let of_events ?weight_of events =
  let t = create ?weight_of () in
  List.iter (observe t) events;
  t

let merge a b =
  {
    weight_of = (match a.weight_of with Some _ as w -> w | None -> b.weight_of);
    bytes_accessed = Counter.merge a.bytes_accessed b.bytes_accessed;
    bytes_hit = Counter.merge a.bytes_hit b.bytes_hit;
    cost_fetched = Counter.merge a.cost_fetched b.cost_fetched;
    cost_prefetched = Counter.merge a.cost_prefetched b.cost_prefetched;
    demand_hits = Counter.merge a.demand_hits b.demand_hits;
    demand_misses = Counter.merge a.demand_misses b.demand_misses;
    prefetch_issued = Counter.merge a.prefetch_issued b.prefetch_issued;
    prefetch_promoted = Counter.merge a.prefetch_promoted b.prefetch_promoted;
    evicted_speculative = Counter.merge a.evicted_speculative b.evicted_speculative;
    evicted_demand = Counter.merge a.evicted_demand b.evicted_demand;
    evicted_unused = Counter.merge a.evicted_unused b.evicted_unused;
    groups_built = Counter.merge a.groups_built b.groups_built;
    successor_updates = Counter.merge a.successor_updates b.successor_updates;
    fetch_timeouts = Counter.merge a.fetch_timeouts b.fetch_timeouts;
    fetch_retries = Counter.merge a.fetch_retries b.fetch_retries;
    degraded_fetches = Counter.merge a.degraded_fetches b.degraded_fetches;
    client_crashes = Counter.merge a.client_crashes b.client_crashes;
    node_routes = Counter.merge a.node_routes b.node_routes;
    replica_failovers = Counter.merge a.replica_failovers b.replica_failovers;
    ring_rebalances = Counter.merge a.ring_rebalances b.ring_rebalances;
    lifetime = Histogram.merge a.lifetime b.lifetime;
    hit_depth = Histogram.merge a.hit_depth b.hit_depth;
    group_size = Histogram.merge a.group_size b.group_size;
    marked = Hashtbl.create 64;
  }

let demand_hits t = Counter.value t.demand_hits
let demand_misses t = Counter.value t.demand_misses
let accesses t = demand_hits t + demand_misses t
let prefetch_issued t = Counter.value t.prefetch_issued
let prefetch_promoted t = Counter.value t.prefetch_promoted
let evicted_speculative t = Counter.value t.evicted_speculative
let evicted_demand t = Counter.value t.evicted_demand
let evicted_unused t = Counter.value t.evicted_unused
let groups_built t = Counter.value t.groups_built
let successor_updates t = Counter.value t.successor_updates
let fetch_timeouts t = Counter.value t.fetch_timeouts
let fetch_retries t = Counter.value t.fetch_retries
let degraded_fetches t = Counter.value t.degraded_fetches
let client_crashes t = Counter.value t.client_crashes
let node_routes t = Counter.value t.node_routes
let replica_failovers t = Counter.value t.replica_failovers
let ring_rebalances t = Counter.value t.ring_rebalances
let bytes_accessed t = Counter.value t.bytes_accessed
let bytes_hit t = Counter.value t.bytes_hit
let cost_fetched t = Counter.value t.cost_fetched
let cost_prefetched t = Counter.value t.cost_prefetched
let byte_weighted_hit_rate t = Agg_util.Stats.ratio (bytes_hit t) (bytes_accessed t)
let total_retrieval_cost t = cost_fetched t + cost_prefetched t
let lifetime t = t.lifetime
let hit_depth t = t.hit_depth
let group_size t = t.group_size

let pp ppf t =
  Format.fprintf ppf
    "hits=%d misses=%d issued=%d promoted=%d evicted_unused=%d groups=%d succ_updates=%d"
    (demand_hits t) (demand_misses t) (prefetch_issued t) (prefetch_promoted t) (evicted_unused t)
    (groups_built t) (successor_updates t)
