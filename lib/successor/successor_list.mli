(** A per-file list of potential immediate successors with a small fixed
    capacity (paper §3, §4.4). The replacement policy for this *metadata*
    is the paper's central design question: recency (LRU) versus frequency
    (LFU); recency wins consistently (Fig. 5). *)

type policy =
  | Recency  (** keep the most recently observed successors (LRU) *)
  | Frequency  (** keep the most frequently observed successors (LFU) *)

val policy_name : policy -> string

type t

val create : capacity:int -> policy:policy -> t
(** @raise Invalid_argument when [capacity <= 0]. *)

val capacity : t -> int
val size : t -> int

val observe : t -> Agg_trace.File_id.t -> unit
(** [observe t succ] records that [succ] just followed this list's file,
    updating ranks and evicting per the policy when full. *)

val mem : t -> Agg_trace.File_id.t -> bool

val ranked : t -> Agg_trace.File_id.t list
(** Successors most-likely first: by recency under [Recency], by
    observation count (most recent first on ties) under [Frequency]. *)

val top : t -> Agg_trace.File_id.t option
(** The most likely successor, if any. *)

val observe_slots :
  int array -> off:int -> len:int -> capacity:int -> Agg_trace.File_id.t -> int
(** [observe_slots slots ~off ~len ~capacity succ] applies one [Recency]
    observation to the bare list region [slots.(off) ..
    slots.(off + len - 1)] (most recent first): a resident successor moves
    to the front, a fresh one is pushed, evicting the least recent entry
    when the region already holds [capacity]. Returns the new live length.
    This is the storage primitive behind {!observe} that [Tracker] uses to
    keep every file's list in one flat array. *)
