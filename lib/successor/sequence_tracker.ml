(* Per-file storage: a bounded recency list of symbols, deduplicated so a
   repeated symbol moves to the front instead of occupying two slots.
   A symbol is exactly [length] file ids, so file [f]'s list lives in the
   flat region [store.(f * capacity * length) ..] as [capacity]
   back-to-back symbol slots, most recent first, with [lens.(f)] live —
   the same layout {!Tracker} uses, scaled by the symbol width. Matching
   a symbol is an int-array compare; moving one to the front is a single
   overlapping blit. *)

type t = {
  length : int;
  capacity : int;
  mutable store : int array; (* files_cap * capacity * length *)
  mutable lens : int array; (* files_cap *)
  mutable files_cap : int;
  (* ring of the last [length + 1] observations; when full, the oldest
     file's symbol (the following [length] accesses) is complete *)
  ring : int array;
  mutable ring_len : int;
}

let initial_files_cap = 1024

let create ?(capacity = 8) ~length () =
  if length <= 0 then invalid_arg "Sequence_tracker.create: length must be positive";
  if capacity <= 0 then invalid_arg "Sequence_tracker.create: capacity must be positive";
  {
    length;
    capacity;
    store = Array.make (initial_files_cap * capacity * length) 0;
    lens = Array.make initial_files_cap 0;
    files_cap = initial_files_cap;
    ring = Array.make (length + 1) 0;
    ring_len = 0;
  }

let length t = t.length

let ensure_file t file =
  if file >= t.files_cap then begin
    let cap = ref (max t.files_cap 1) in
    while file >= !cap do
      cap := 2 * !cap
    done;
    let store = Array.make (!cap * t.capacity * t.length) 0 in
    Array.blit t.store 0 store 0 (t.files_cap * t.capacity * t.length);
    let lens = Array.make !cap 0 in
    Array.blit t.lens 0 lens 0 t.files_cap;
    t.store <- store;
    t.lens <- lens;
    t.files_cap <- !cap
  end

(* the completed symbol sits in [ring.(1) .. ring.(length)] *)
let symbol_matches t ~slot_off =
  let rec eq j = j >= t.length || (t.store.(slot_off + j) = t.ring.(j + 1) && eq (j + 1)) in
  eq 0

let commit t file =
  ensure_file t file;
  let w = t.length in
  let base = file * t.capacity * w in
  let len = t.lens.(file) in
  let rec scan i =
    if i >= len then -1 else if symbol_matches t ~slot_off:(base + (i * w)) then i else scan (i + 1)
  in
  let at = scan 0 in
  (* move-to-front: slide the slots above the insertion point down one,
     dropping the least recent when a full list sees a new symbol *)
  let shift_slots = if at >= 0 then at else min len (t.capacity - 1) in
  Array.blit t.store base t.store (base + w) (shift_slots * w);
  Array.blit t.ring 1 t.store base w;
  if at < 0 then t.lens.(file) <- min (len + 1) t.capacity

let observe t file =
  (* the ring is never full on entry: completing a window drains one slot *)
  let cap = Array.length t.ring in
  t.ring.(t.ring_len) <- file;
  t.ring_len <- t.ring_len + 1;
  if t.ring_len = cap then begin
    (* the oldest entry's successor window is now complete *)
    let owner = t.ring.(0) in
    commit t owner;
    (* slide: drop the owner *)
    Array.blit t.ring 1 t.ring 0 (cap - 1);
    t.ring_len <- cap - 1
  end

let symbol_at t ~slot_off =
  let rec build j acc = if j < 0 then acc else build (j - 1) (t.store.(slot_off + j) :: acc) in
  build (t.length - 1) []

let sequences t file =
  if file < 0 || file >= t.files_cap then []
  else begin
    let base = file * t.capacity * t.length in
    let rec build i acc =
      if i < 0 then acc else build (i - 1) (symbol_at t ~slot_off:(base + (i * t.length)) :: acc)
    in
    build (t.lens.(file) - 1) []
  end

let predict t file =
  if file >= 0 && file < t.files_cap && t.lens.(file) > 0 then
    Some (symbol_at t ~slot_off:(file * t.capacity * t.length))
  else None

type accuracy = { opportunities : int; full_matches : int; first_matches : int }

let measure ~length ?capacity files =
  let t = create ?capacity ~length () in
  let n = Array.length files in
  let opportunities = ref 0 in
  let full = ref 0 in
  let first = ref 0 in
  for i = 0 to n - 1 do
    if i + length < n then begin
      match predict t files.(i) with
      | Some symbol ->
          incr opportunities;
          (* a symbol is always exactly [length] ids: compare it against
             the actual window in place instead of materialising it *)
          let rec matches j = function
            | [] -> true
            | x :: tl -> x = files.(i + 1 + j) && matches (j + 1) tl
          in
          if matches 0 symbol then incr full;
          (match symbol with
          | head :: _ when head = files.(i + 1) -> incr first
          | _ -> ())
      | None -> ()
    end;
    observe t files.(i)
  done;
  { opportunities = !opportunities; full_matches = !full; first_matches = !first }
