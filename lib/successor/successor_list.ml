type policy = Recency | Frequency

let policy_name = function Recency -> "lru" | Frequency -> "lfu"

(* [Recency] is an LRU list over successor ids. The capacity is a small
   constant (the paper explores k ≤ 10), so the list lives in a fixed int
   array, MRU first, and "move to front" is a few-word shift — no nodes,
   no hashing, no allocation.

   [Frequency] keeps the k *most frequent* successors seen so far, per the
   paper's description ("maintains a list of the most frequent
   successors"): full counts are remembered for every successor ever
   observed, and a newcomer enters the list only when its count overtakes
   the current minimum (most recent wins ties). This idealised frequency
   policy needs unbounded counters — which itself illustrates the paper's
   point that a small recency list is the cheaper *and* better choice. *)

type entry = { mutable count : int; mutable tick : int }

type t = {
  capacity : int;
  policy : policy;
  succs : int array; (* Recency only: most recent first, [len] live *)
  mutable len : int; (* Recency only *)
  counts : (int, entry) Hashtbl.t; (* Frequency only: all successors ever *)
  members : (int, unit) Hashtbl.t; (* Frequency only: the current top-k *)
  mutable clock : int;
}

let create ~capacity ~policy =
  if capacity <= 0 then invalid_arg "Successor_list.create: capacity must be positive";
  {
    capacity;
    policy;
    succs = (match policy with Recency -> Array.make capacity 0 | Frequency -> [||]);
    len = 0;
    counts = Hashtbl.create 16;
    members = Hashtbl.create (2 * capacity);
    clock = 0;
  }

let capacity t = t.capacity

let size t = match t.policy with Recency -> t.len | Frequency -> Hashtbl.length t.members

let find_recency t succ =
  let rec scan i = if i >= t.len then -1 else if t.succs.(i) = succ then i else scan (i + 1) in
  scan 0

let mem t succ =
  match t.policy with
  | Recency -> find_recency t succ >= 0
  | Frequency -> Hashtbl.mem t.members succ

(* Exposed for the flat per-file tracker, which stores many such lists
   back to back in one array: move [succ] to the front of the region
   [slots.(off) .. slots.(off + len - 1)], evicting the last entry when a
   full region sees a newcomer. Returns the new live length. *)
let observe_slots slots ~off ~len ~capacity succ =
  let rec scan i = if i >= len then -1 else if slots.(off + i) = succ then i else scan (i + 1) in
  let at = scan 0 in
  let shift_end = if at >= 0 then at else min len (capacity - 1) in
  Array.blit slots off slots (off + 1) shift_end;
  slots.(off) <- succ;
  if at >= 0 then len else min (len + 1) capacity

let observe_recency t succ = t.len <- observe_slots t.succs ~off:0 ~len:t.len ~capacity:t.capacity succ

(* The list member with the smallest (count, tick): the one a newcomer
   must beat. Linear in k, and k is at most ~10. *)
let weakest_member t =
  Hashtbl.fold
    (fun key () acc ->
      let entry = Hashtbl.find t.counts key in
      match acc with
      | None -> Some (key, entry)
      | Some (_, best) ->
          if entry.count < best.count || (entry.count = best.count && entry.tick < best.tick)
          then Some (key, entry)
          else acc)
    t.members None

let observe_frequency t succ =
  t.clock <- t.clock + 1;
  let entry =
    match Hashtbl.find_opt t.counts succ with
    | Some e ->
        e.count <- e.count + 1;
        e.tick <- t.clock;
        e
    | None ->
        let e = { count = 1; tick = t.clock } in
        Hashtbl.replace t.counts succ e;
        e
  in
  if not (Hashtbl.mem t.members succ) then
    if Hashtbl.length t.members < t.capacity then Hashtbl.replace t.members succ ()
    else
      match weakest_member t with
      | Some (victim, weakest)
        when entry.count > weakest.count
             || (entry.count = weakest.count && entry.tick > weakest.tick) ->
          Hashtbl.remove t.members victim;
          Hashtbl.replace t.members succ ()
      | Some _ | None -> ()

let observe t succ =
  match t.policy with Recency -> observe_recency t succ | Frequency -> observe_frequency t succ

let ranked t =
  match t.policy with
  | Recency ->
      let rec build i acc = if i < 0 then acc else build (i - 1) (t.succs.(i) :: acc) in
      build (t.len - 1) []
  | Frequency ->
      let all =
        Hashtbl.fold (fun key () acc -> (key, Hashtbl.find t.counts key) :: acc) t.members []
      in
      let cmp (_, a) (_, b) =
        match compare b.count a.count with 0 -> compare b.tick a.tick | c -> c
      in
      List.map fst (List.sort cmp all)

let top t =
  match t.policy with
  | Recency -> if t.len > 0 then Some t.succs.(0) else None
  | Frequency -> ( match ranked t with [] -> None | s :: _ -> Some s)
