open Agg_util

(* The Recency tracker — the configuration every experiment runs — stores
   all successor lists in one flat int array: file [f]'s list occupies the
   region [f * capacity .. f * capacity + lens.(f) - 1], most recent
   first. File ids are dense small ints (the workload generator allocates
   them sequentially), so direct indexing replaces hashing and an observe
   is a bounds check plus a few-word shift. The arrays grow by doubling as
   the namespace grows.

   The idealised Frequency policy needs unbounded per-successor counters
   (see {!Successor_list}), so it keeps the boxed per-file lists. *)

type t = {
  capacity : int;
  policy : Successor_list.policy;
  per_client : bool;
  (* Recency representation *)
  mutable slots : int array; (* files_cap * capacity *)
  mutable lens : int array; (* files_cap *)
  mutable files_cap : int;
  mutable tracked : int; (* files with a non-empty list *)
  contexts : Int_table.t; (* client id (0 when global) -> previous file *)
  (* Frequency representation *)
  freq_lists : (int, Successor_list.t) Hashtbl.t;
}

let initial_files_cap = 4096

let create ?(capacity = 8) ?(policy = Successor_list.Recency) ?(per_client = false) () =
  if capacity <= 0 then invalid_arg "Tracker.create: capacity must be positive";
  let recency = policy = Successor_list.Recency in
  {
    capacity;
    policy;
    per_client;
    slots = (if recency then Array.make (initial_files_cap * capacity) 0 else [||]);
    lens = (if recency then Array.make initial_files_cap 0 else [||]);
    files_cap = (if recency then initial_files_cap else 0);
    tracked = 0;
    contexts = Int_table.create ~capacity:16 ();
    freq_lists = Hashtbl.create 4096;
  }

let capacity t = t.capacity
let policy t = t.policy

let ensure_file t file =
  if file >= t.files_cap then begin
    let cap = ref (max t.files_cap 1) in
    while file >= !cap do
      cap := 2 * !cap
    done;
    let slots = Array.make (!cap * t.capacity) 0 in
    Array.blit t.slots 0 slots 0 (t.files_cap * t.capacity);
    let lens = Array.make !cap 0 in
    Array.blit t.lens 0 lens 0 t.files_cap;
    t.slots <- slots;
    t.lens <- lens;
    t.files_cap <- !cap
  end

let freq_list_for t file =
  match Hashtbl.find_opt t.freq_lists file with
  | Some l -> l
  | None ->
      let l = Successor_list.create ~capacity:t.capacity ~policy:t.policy in
      Hashtbl.replace t.freq_lists file l;
      l

let observe_successor t prev file =
  match t.policy with
  | Successor_list.Recency ->
      ensure_file t prev;
      let len = t.lens.(prev) in
      let len' =
        Successor_list.observe_slots t.slots ~off:(prev * t.capacity) ~len ~capacity:t.capacity
          file
      in
      if len = 0 && len' > 0 then t.tracked <- t.tracked + 1;
      t.lens.(prev) <- len'
  | Successor_list.Frequency -> Successor_list.observe (freq_list_for t prev) file

let observe t ?(client = 0) file =
  let context_key = if t.per_client then client else 0 in
  let prev = Int_table.get t.contexts context_key in
  if prev >= 0 then observe_successor t prev file;
  Int_table.set t.contexts context_key file

let observe_event t (e : Agg_trace.Event.t) = observe t ~client:e.client e.file
let observe_trace t trace = Agg_trace.Trace.iter (observe_event t) trace

let successors t file =
  match t.policy with
  | Successor_list.Recency ->
      if file < 0 || file >= t.files_cap then []
      else begin
        let off = file * t.capacity in
        let rec build i acc = if i < off then acc else build (i - 1) (t.slots.(i) :: acc) in
        build (off + t.lens.(file) - 1) []
      end
  | Successor_list.Frequency -> (
      match Hashtbl.find_opt t.freq_lists file with
      | Some l -> Successor_list.ranked l
      | None -> [])

let top_successor t file =
  match t.policy with
  | Successor_list.Recency ->
      if file >= 0 && file < t.files_cap && t.lens.(file) > 0 then
        Some t.slots.(file * t.capacity)
      else None
  | Successor_list.Frequency -> (
      match Hashtbl.find_opt t.freq_lists file with
      | Some l -> Successor_list.top l
      | None -> None)

let transitive_successors t file ~length =
  if length < 0 then invalid_arg "Tracker.transitive_successors: negative length";
  (* the chain is at most [length] files (single digits in practice), so a
     linear duplicate scan over the accumulator replaces the scratch
     table; [acc] is kept reversed and never contains [file] *)
  let rec follow current acc remaining =
    if remaining = 0 then List.rev acc
    else
      match top_successor t current with
      | Some next when next <> file && not (List.mem next acc) ->
          follow next (next :: acc) (remaining - 1)
      | Some _ | None -> List.rev acc
  in
  follow file [] length

let tracked_files t =
  match t.policy with
  | Successor_list.Recency -> t.tracked
  | Successor_list.Frequency ->
      Hashtbl.fold
        (fun _ l acc -> if Successor_list.size l > 0 then acc + 1 else acc)
        t.freq_lists 0

let reset_context t = Int_table.clear t.contexts
