type config = {
  seed : int;
  loss_rate : float;
  outage_period : int;
  outage_rate : float;
  outage_length : int;
  slow_rate : float;
  slow_multiplier : float;
  crash_rate : float;
}

let none =
  {
    seed = 11;
    loss_rate = 0.0;
    outage_period = 0;
    outage_rate = 0.0;
    outage_length = 0;
    slow_rate = 0.0;
    slow_multiplier = 1.0;
    crash_rate = 0.0;
  }

let default =
  {
    none with
    loss_rate = 0.1;
    outage_period = 2000;
    outage_rate = 0.1;
    outage_length = 200;
    slow_rate = 0.05;
    slow_multiplier = 4.0;
  }

let check_rate name r =
  if not (r >= 0.0 && r <= 1.0) then
    invalid_arg (Printf.sprintf "Fault plan: %s must be in [0, 1] (got %g)" name r)

let validate c =
  check_rate "loss_rate" c.loss_rate;
  check_rate "outage_rate" c.outage_rate;
  check_rate "slow_rate" c.slow_rate;
  check_rate "crash_rate" c.crash_rate;
  if c.outage_period < 0 then
    invalid_arg
      (Printf.sprintf "Fault plan: outage_period must be non-negative (got %d)" c.outage_period);
  if c.outage_length < 0 then
    invalid_arg
      (Printf.sprintf "Fault plan: outage_length must be non-negative (got %d)" c.outage_length);
  if not (c.slow_multiplier >= 1.0) then
    invalid_arg
      (Printf.sprintf "Fault plan: slow_multiplier must be >= 1 (got %g)" c.slow_multiplier)

let pp_config ppf c =
  Format.fprintf ppf
    "seed=%d loss=%.3f outage=%.3f@%d/%d slow=%.3f x%.1f crash=%.5f" c.seed c.loss_rate
    c.outage_rate c.outage_length c.outage_period c.slow_rate c.slow_multiplier c.crash_rate

type t = { config : config; enabled : bool }

let outages_on c = c.outage_period > 0 && c.outage_rate > 0.0 && c.outage_length > 0

let disabled = { config = none; enabled = false }

let make config =
  validate config;
  let enabled =
    config.loss_rate > 0.0 || outages_on config || config.slow_rate > 0.0
    || config.crash_rate > 0.0
  in
  { config; enabled }

let enabled t = t.enabled
let config t = t.config

(* Stream tags keep the four fault classes statistically independent even
   when they are queried at the same coordinates. *)
let tag_loss = 1
let tag_outage = 2
let tag_slow = 3
let tag_crash = 4

(* Counter-based derivation: fold the query coordinates into one 63-bit
   value and let [Prng.create]'s SplitMix64 expansion do the mixing. The
   resulting generator is used for a single draw, so every decision is a
   pure function of (seed, tag, a, b) — independent of query order and of
   how sweep cells are scheduled across domains. *)
let decision_prng t ~tag ~a ~b =
  let mix acc v = (acc * 0x100000001b3) lxor (v land max_int) in
  let key = mix (mix (mix (mix 0x2545F4914F6CDD1D t.config.seed) tag) a) b in
  Agg_util.Prng.create ~seed:(key land max_int) ()

let bernoulli t ~tag ~a ~b ~p =
  p > 0.0 && Agg_util.Prng.bernoulli (decision_prng t ~tag ~a ~b) ~p

let message_lost t ~time ~attempt =
  t.enabled && bernoulli t ~tag:tag_loss ~a:time ~b:attempt ~p:t.config.loss_rate

let server_down t ~time =
  t.enabled && outages_on t.config
  && time >= 0
  &&
  let c = t.config in
  let epoch = time / c.outage_period in
  let offset = time mod c.outage_period in
  offset < min c.outage_length c.outage_period
  && bernoulli t ~tag:tag_outage ~a:epoch ~b:0 ~p:c.outage_rate

let latency_multiplier t ~time ~attempt =
  if t.enabled && bernoulli t ~tag:tag_slow ~a:time ~b:attempt ~p:t.config.slow_rate then
    t.config.slow_multiplier
  else 1.0

let client_crashes t ~time ~client =
  t.enabled && bernoulli t ~tag:tag_crash ~a:time ~b:client ~p:t.config.crash_rate
