(** Deterministic fault plans for the distributed path.

    A plan answers "does this fault fire here?" questions for the four
    fault classes the resilience layer models:

    - {e message loss} — a request/response pair vanishes and the client
      times out;
    - {e server outages} — windows of accesses during which the server
      answers nothing;
    - {e slow links} — an attempt's latency is multiplied by a
      configurable factor;
    - {e client crashes} — a client restarts, losing its cache contents
      (the server-side successor metadata survives, §3 of the paper).

    Every decision is a {e pure function} of the plan seed and the query
    coordinates (access time, retry attempt, client id): plans keep no
    mutable state, so decisions do not depend on query order, on how many
    sweep cells share a domain, or on the [--jobs] value. Internally each
    query derives a one-shot {!Agg_util.Prng} generator from the mixed
    coordinates — all randomness flows through [Agg_util.Prng], as
    everywhere else in this repository.

    Time is measured in {e accesses}, the simulator's only clock. *)

type config = {
  seed : int;  (** independent of the workload seed *)
  loss_rate : float;  (** P(one request/response attempt is lost), in [0,1] *)
  outage_period : int;
      (** accesses per outage epoch; [0] disables outages entirely *)
  outage_rate : float;  (** P(an epoch opens with the server down), in [0,1] *)
  outage_length : int;
      (** accesses the server stays down at the start of a faulty epoch;
          capped at [outage_period] *)
  slow_rate : float;  (** P(an attempt rides a degraded link), in [0,1] *)
  slow_multiplier : float;  (** latency factor for slowed attempts, >= 1 *)
  crash_rate : float;  (** per-access P(the issuing client crashes), in [0,1] *)
}

val none : config
(** All rates zero: a plan made from [none] injects nothing. *)

val default : config
(** A mildly hostile network: seed 11, 10% message loss, 2000-access
    epochs with a 10% chance of a 200-access outage, 5% slow links at 4x,
    no crashes. *)

val validate : config -> unit
(** @raise Invalid_argument on rates outside [0,1], a negative
    [outage_period]/[outage_length], or [slow_multiplier < 1]. *)

val pp_config : Format.formatter -> config -> unit

type t

val disabled : t
(** The canonical no-faults plan: {!enabled} is [false] and every query
    answers "no fault" without drawing any randomness. *)

val make : config -> t
(** [make config] validates [config] and builds a plan. A config whose
    rates are all zero yields a plan with [enabled = false], so the
    simulators' fast path is taken exactly as with {!disabled}. *)

val enabled : t -> bool
(** [false] iff the plan can never inject a fault. Simulators must guard
    their fault checks with this so a disabled plan leaves the no-faults
    code path (and its outputs) byte-identical. *)

val config : t -> config

val message_lost : t -> time:int -> attempt:int -> bool
(** Does the fetch attempt number [attempt] (0-based) issued at access
    [time] lose its request or response? *)

val server_down : t -> time:int -> bool
(** Is the server inside an outage window at access [time]? *)

val latency_multiplier : t -> time:int -> attempt:int -> float
(** [slow_multiplier] when the attempt rides a degraded link, [1.0]
    otherwise. Independent of {!message_lost} for the same coordinates. *)

val client_crashes : t -> time:int -> client:int -> bool
(** Does [client] crash (and restart with an empty cache) just before
    its access at [time]? *)
