(** Fault and resilience accounting, threaded through the system
    simulators' results so every run can say how hostile its network was
    and what the resilience layer did about it. *)

type t = {
  mutable lost_messages : int;  (** attempts timed out to message loss *)
  mutable outage_denials : int;  (** attempts timed out to a server outage *)
  mutable timeouts : int;  (** all timed-out attempts ([lost_messages + outage_denials]) *)
  mutable retries : int;  (** attempts re-issued after a timeout *)
  mutable degraded_fetches : int;
      (** fetches that exhausted their retries and fell back to the
          single-file demand path (speculative members dropped) *)
  mutable slowed_fetches : int;  (** successful attempts served over a degraded link *)
  mutable crashes : int;  (** client crash/restarts (cache wiped) *)
}

val create : unit -> t
(** All counters zero. *)

val copy : t -> t

val total_faults : t -> int
(** [timeouts + slowed_fetches + crashes] — injected faults that reached
    the simulation, for quick "did anything fire?" assertions. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
