(** The client-side resilience policy for remote fetches: how long to
    wait, how often to retry, how fast to back off, and what to do when
    retries run out.

    The policy is what turns injected faults ({!Plan}) into the graceful
    degradation the paper's pitch depends on: a timed-out {e group} fetch
    falls back to a single-file demand fetch — the speculative members
    are dropped, but the demanded file is still served, so a flaky
    network costs prefetching benefit rather than availability. *)

type t = {
  timeout_ms : float;  (** budget the client waits before declaring an attempt dead *)
  max_retries : int;  (** retries after the first attempt; 0 = fail straight to fallback *)
  backoff_base_ms : float;  (** delay before the first retry *)
  backoff_multiplier : float;  (** exponential growth factor per further retry, >= 1 *)
}

val default : t
(** 100 ms timeout, 2 retries, 10 ms initial backoff doubling per retry —
    sized against {!Agg_system.Cost_model.lan}'s 8 ms disk read so a
    timeout hurts an order of magnitude more than a slow fetch. *)

val validate : t -> unit
(** @raise Invalid_argument on a non-positive timeout, negative retries,
    negative backoff, or [backoff_multiplier < 1]. *)

val backoff_ms : t -> attempt:int -> float
(** [backoff_ms t ~attempt] is the delay inserted before retry number
    [attempt] (1-based): [backoff_base_ms *. backoff_multiplier ^ (attempt - 1)].
    @raise Invalid_argument when [attempt < 1]. *)

val failure_cost_ms : t -> attempt:int -> float
(** Wall-clock cost of attempt number [attempt] (0-based) ending in a
    timeout: the timeout budget itself, plus the backoff delay before the
    next attempt when one remains. *)

val pp : Format.formatter -> t -> unit
