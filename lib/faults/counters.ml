type t = {
  mutable lost_messages : int;
  mutable outage_denials : int;
  mutable timeouts : int;
  mutable retries : int;
  mutable degraded_fetches : int;
  mutable slowed_fetches : int;
  mutable crashes : int;
}

let create () =
  {
    lost_messages = 0;
    outage_denials = 0;
    timeouts = 0;
    retries = 0;
    degraded_fetches = 0;
    slowed_fetches = 0;
    crashes = 0;
  }

let copy t = { t with lost_messages = t.lost_messages }

let total_faults t = t.timeouts + t.slowed_fetches + t.crashes

let equal a b =
  a.lost_messages = b.lost_messages
  && a.outage_denials = b.outage_denials
  && a.timeouts = b.timeouts && a.retries = b.retries
  && a.degraded_fetches = b.degraded_fetches
  && a.slowed_fetches = b.slowed_fetches
  && a.crashes = b.crashes

let pp ppf t =
  Format.fprintf ppf
    "timeouts=%d (lost=%d outage=%d) retries=%d degraded=%d slowed=%d crashes=%d" t.timeouts
    t.lost_messages t.outage_denials t.retries t.degraded_fetches t.slowed_fetches t.crashes
