type t = {
  timeout_ms : float;
  max_retries : int;
  backoff_base_ms : float;
  backoff_multiplier : float;
}

let default =
  { timeout_ms = 100.0; max_retries = 2; backoff_base_ms = 10.0; backoff_multiplier = 2.0 }

let validate t =
  if not (t.timeout_ms > 0.0) then
    invalid_arg (Printf.sprintf "Resilience: timeout_ms must be positive (got %g)" t.timeout_ms);
  if t.max_retries < 0 then
    invalid_arg (Printf.sprintf "Resilience: max_retries must be non-negative (got %d)" t.max_retries);
  if not (t.backoff_base_ms >= 0.0) then
    invalid_arg
      (Printf.sprintf "Resilience: backoff_base_ms must be non-negative (got %g)" t.backoff_base_ms);
  if not (t.backoff_multiplier >= 1.0) then
    invalid_arg
      (Printf.sprintf "Resilience: backoff_multiplier must be >= 1 (got %g)" t.backoff_multiplier)

let backoff_ms t ~attempt =
  if attempt < 1 then invalid_arg "Resilience.backoff_ms: attempt must be >= 1";
  let rec grow delay n = if n <= 1 then delay else grow (delay *. t.backoff_multiplier) (n - 1) in
  grow t.backoff_base_ms attempt

let failure_cost_ms t ~attempt =
  if attempt < t.max_retries then t.timeout_ms +. backoff_ms t ~attempt:(attempt + 1)
  else t.timeout_ms

let pp ppf t =
  Format.fprintf ppf "timeout=%.1fms retries=%d backoff=%.1fms x%.1f" t.timeout_ms t.max_retries
    t.backoff_base_ms t.backoff_multiplier
