(** End-to-end simulation of the full distributed path of the paper's
    Fig. 2 — client cache, network, server cache, server store — with
    latency and load accounting, and (since the resilience layer) an
    optional deterministic fault plan driving message loss, server
    outages, slow links and client crashes.

    Each cache level is configured by a shared {!Scheme.t}: [Plain] for
    demand caching, [Aggregating] for group retrieval (the server keeps
    the relationship metadata, §3). An [Aggregating] {e server} walks the
    successor chain to its own (typically deeper) group size and stages
    the extension into its cache only — cheap disk readahead that is not
    transferred to the client.

    Resilience: a remote fetch blocked by the fault plan times out after
    [resilience.timeout_ms], retries up to [resilience.max_retries] times
    with exponential backoff, and — when the budget runs dry — degrades
    to a single-file demand fetch: the speculative group members are
    dropped, the demanded file is still served. With [faults = Plan.none]
    every output is byte-identical to a fault-free build. *)

type deployment = [ `Baseline | `Aggregating_client | `Aggregating_both ]
(** The paper's three named configurations, kept as a shorthand over
    {!Scheme.t} pairs (see {!with_deployment}). *)

val deployment_name : deployment -> string

type config = {
  cost : Cost_model.t;
  client_capacity : int;
  server_capacity : int;
  client : Scheme.t;  (** the client cache's scheme *)
  server : Scheme.t;  (** the server cache's scheme; [Aggregating] = staged readahead *)
  faults : Agg_faults.Plan.config;  (** fault plan; [Agg_faults.Plan.none] = healthy network *)
  resilience : Agg_faults.Resilience.t;  (** timeout / retry / degradation policy *)
  scope : Agg_obs.Scope.t option;
      (** observability, all in one place (default [None] = off, zero
          cost): the scope's [sink] receives
          {!Agg_obs.Event.Fetch_timeout}, [Fetch_degraded] and
          [Client_crashed] events; its [series] folds every access into
          the windowed time-series (hit/miss, demand latency in µs,
          degraded fetches, keyed by access index); its [trace_ctx]
          records span trees for sampled requests (client hit,
          per-attempt timeout/backoff, fetch or degraded fallback) on
          the simulated clock *)
}

val default_config : config
(** LAN costs, 300-file client, 1000-file server, plain LRU at both
    levels, no faults, no scope (telemetry off). *)

val with_deployment : ?group_size:int -> deployment -> config -> config
(** [with_deployment d config] sets [config]'s schemes to the named
    deployment: [`Baseline] is plain LRU at both levels;
    [`Aggregating_client] puts an aggregating client (default [g = 5])
    over a plain server; [`Aggregating_both] additionally stages
    [2 * group_size]-deep readahead at the server.
    @raise Invalid_argument when [group_size] is not positive. *)

type result = {
  accesses : int;
  client_hits : int;
  server_hits : int;  (** of requests reaching the server *)
  disk_reads : int;  (** demanded + speculative reads at the store *)
  files_transferred : int;  (** network payload, in files *)
  round_trips : int;  (** completed fetches; timed-out attempts are not counted *)
  mean_latency : float;  (** demand latency per access, ms — waits, backoff and
                             slow-link multipliers included *)
  p95_latency : float;
  p99_latency : float;
  faults : Agg_faults.Counters.t;  (** what the plan injected and the policy absorbed *)
}

val client_hit_rate : result -> float
(** [client_hits / accesses]; [0.] on an empty trace. *)

val run : config -> Agg_trace.Trace.t -> result
(** Replays the trace through the configured path. Deterministic: the
    fault plan is a pure function of its seed and the access index, so
    results are identical run-to-run and for any [--jobs] value.
    @raise Invalid_argument on non-positive capacities, an invalid
    scheme, fault plan or resilience policy (see
    {!Agg_faults.Plan.validate} and {!Agg_faults.Resilience.validate}). *)

val pp_result : Format.formatter -> result -> unit
(** Prints the load/latency fields only (fault counters excluded), so
    fault-free output is identical to the pre-resilience layer. *)
