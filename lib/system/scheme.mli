(** The one way a cache level is configured across the system layer.

    Both system simulators ({!Fleet}, {!Path}) and the resilience sweep
    place either a plain demand cache or an aggregating (group-fetching)
    cache at each level; before this module each simulator carried its own
    variant for the same choice ([Fleet.client_scheme]/[server_scheme],
    [Path.deployment]). A single shared type keeps the configurations
    identical everywhere and lets sweeps treat "scheme" as an axis. *)

type t =
  | Plain of Agg_cache.Cache.kind
      (** demand caching only, with the given replacement policy *)
  | Aggregating of Agg_core.Config.t
      (** group retrieval per the paper's §3, with the given operating
          point (group size, metadata budget, cache kind) *)

val plain_lru : t
(** [Plain Lru] — the baseline everywhere. *)

val aggregating : ?group_size:int -> unit -> t
(** [Aggregating] at the paper's default operating point, optionally with
    a different group size.
    @raise Invalid_argument when [group_size] is not positive. *)

val name : t -> string
(** A label for tables and series: the cache kind's name for [Plain]
    (e.g. ["lru"]), ["g<N>"] for [Aggregating]. *)

val cache_kind : t -> Agg_cache.Cache.kind
(** The replacement policy of the data cache at this level. *)

val group_config : t -> Agg_core.Config.t option
(** The aggregating operating point, or [None] for [Plain]. *)

val group_size : t -> int
(** Files fetched per demand miss: the config's group size for
    [Aggregating], [1] for [Plain]. *)

val validate : t -> unit
(** @raise Invalid_argument when an [Aggregating] config is invalid
    (see {!Agg_core.Config.validate}). *)

val pp : Format.formatter -> t -> unit
