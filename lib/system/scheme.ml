type t =
  | Plain of Agg_cache.Cache.kind
  | Aggregating of Agg_core.Config.t

let plain_lru = Plain Agg_cache.Cache.Lru

let aggregating ?group_size () =
  match group_size with
  | None -> Aggregating Agg_core.Config.default
  | Some g -> Aggregating (Agg_core.Config.with_group_size g Agg_core.Config.default)

let name = function
  | Plain kind -> Agg_cache.Cache.kind_name kind
  | Aggregating c -> Printf.sprintf "g%d" c.Agg_core.Config.group_size

let cache_kind = function
  | Plain kind -> kind
  | Aggregating c -> c.Agg_core.Config.cache_kind

let group_config = function Plain _ -> None | Aggregating c -> Some c
let group_size = function Plain _ -> 1 | Aggregating c -> c.Agg_core.Config.group_size
let validate = function Plain _ -> () | Aggregating c -> Agg_core.Config.validate c

let pp ppf t =
  match t with
  | Plain _ -> Format.fprintf ppf "plain(%s)" (name t)
  | Aggregating c -> Format.fprintf ppf "aggregating(%a)" Agg_core.Config.pp c
