(** A fleet of client machines sharing one file server — the full
    distributed setting of the paper's Fig. 2, generalising the
    single-filter model of §4.3 to many caches, with optional Coda-style
    write invalidation (a write breaks other clients' cached copies).

    Events are routed to clients by their [client] id; {!remap_clients}
    folds the trace's client ids onto a smaller fleet, which makes the
    related-work scale question (Wolman et al.: how do shared caches
    behave as the population grows?) directly measurable.

    Each cache level is configured by a shared {!Scheme.t} (the same type
    {!Path} uses): [Plain] for demand caching, [Aggregating] for group
    retrieval with the relationship metadata held at the server.

    Resilience: when the fault plan is enabled, a server fetch blocked by
    message loss or an outage window is retried up to
    [resilience.max_retries] times and then degrades to a single-file
    demand fetch — speculative group members are dropped, the demanded
    file is still served. A client crash wipes that client's cache; the
    server-side metadata survives. With [faults = Agg_faults.Plan.none]
    every output is byte-identical to a fault-free build. *)

type config = {
  clients : int;  (** fleet size; trace client ids are taken modulo this *)
  client_capacity : int;
  client_scheme : Scheme.t;
  server_capacity : int;
  server_scheme : Scheme.t;
  per_client_metadata : bool;
      (** keep a separate successor context per client at the server
          (§2.2's "identity of the driving client" model choice) *)
  write_invalidation : bool;
      (** writes invalidate the file in every *other* client cache *)
  faults : Agg_faults.Plan.config;
      (** fault plan; [Agg_faults.Plan.none] = healthy network *)
  resilience : Agg_faults.Resilience.t;  (** retry / degradation policy *)
  scope : Agg_obs.Scope.t option;
      (** observability (default [None] = off, zero cost): the scope's
          [series] folds every access into the windowed time-series —
          hit/miss, degraded fetches and the per-client load (the client
          id doubles as the series' node id; the fleet has no latency
          model, so no latency samples are recorded) — and its
          [trace_ctx] records span trees over the resilience waits
          (per-attempt timeout/backoff), the only simulated time the
          fleet models *)
}

val default_config : config
(** 4 clients of 150 files (aggregating, g = 5), a 300-file aggregating
    server, per-client metadata, write invalidation on, no faults, no
    scope (telemetry off). *)

type result = {
  accesses : int;
  client_hits : int;
  server_requests : int;
  server_hits : int;
  store_fetches : int;
  invalidations : int;  (** cached copies broken by writes elsewhere *)
  per_client_hit_rate : (int * float) list;  (** client id, hit rate *)
  faults : Agg_faults.Counters.t;
      (** what the plan injected and the policy absorbed *)
}

val remap_clients : clients:int -> Agg_trace.Trace.t -> Agg_trace.Trace.t
(** A copy of the trace with every event's client id taken modulo
    [clients] — folds a large recorded population onto a smaller fleet.
    @raise Invalid_argument when [clients] is not positive. *)

val client_hit_rate : result -> float
val server_hit_rate : result -> float

val run : config -> Agg_trace.Trace.t -> result
(** Replays the trace through the fleet. Deterministic: the fault plan is
    a pure function of its seed and the access index, so results are
    identical run-to-run and for any [--jobs] value.
    @raise Invalid_argument when [clients] or a capacity is not positive,
    or a scheme, fault plan or resilience policy is invalid. *)

val pp_result : Format.formatter -> result -> unit
(** Prints the original load fields only (fault counters excluded), so
    fault-free output is identical to the pre-resilience layer. *)
