module Cache = Agg_cache.Cache
module Tracker = Agg_successor.Tracker
module Plan = Agg_faults.Plan
module Resilience = Agg_faults.Resilience
module Counters = Agg_faults.Counters

type deployment = [ `Baseline | `Aggregating_client | `Aggregating_both ]

let deployment_name = function
  | `Baseline -> "baseline"
  | `Aggregating_client -> "agg-client"
  | `Aggregating_both -> "agg-both"

type config = {
  cost : Cost_model.t;
  client_capacity : int;
  server_capacity : int;
  client : Scheme.t;
  server : Scheme.t;
  faults : Plan.config;
  resilience : Resilience.t;
  scope : Agg_obs.Scope.t option;
}

let default_config =
  {
    cost = Cost_model.lan;
    client_capacity = 300;
    server_capacity = 1000;
    client = Scheme.plain_lru;
    server = Scheme.plain_lru;
    faults = Plan.none;
    resilience = Resilience.default;
    scope = None;
  }

let with_deployment ?(group_size = 5) deployment config =
  match deployment with
  | `Baseline -> { config with client = Scheme.plain_lru; server = Scheme.plain_lru }
  | `Aggregating_client ->
      { config with client = Scheme.aggregating ~group_size (); server = Scheme.plain_lru }
  | `Aggregating_both ->
      {
        config with
        client = Scheme.aggregating ~group_size ();
        (* the server walks the successor chain twice as deep as the
           client's groups — cheap disk readahead staged into its cache *)
        server = Scheme.aggregating ~group_size:(2 * group_size) ();
      }

type result = {
  accesses : int;
  client_hits : int;
  server_hits : int;
  disk_reads : int;
  files_transferred : int;
  round_trips : int;
  mean_latency : float;
  p95_latency : float;
  p99_latency : float;
  faults : Counters.t;
}

type state = {
  config : config;
  plan : Plan.t;
  client : Cache.t;
  server : Cache.t;
  tracker : Tracker.t;
  latencies : float Agg_util.Vec.t;
  counters : Counters.t;
  mutable client_hits : int;
  mutable server_hits : int;
  mutable disk_reads : int;
  mutable files_transferred : int;
  mutable round_trips : int;
  mutable now : int;  (** accesses replayed so far — the fault plan's clock *)
}

let validate config =
  if config.client_capacity <= 0 then
    invalid_arg
      (Printf.sprintf "Path.run: client_capacity must be positive (got %d)"
         config.client_capacity);
  if config.server_capacity <= 0 then
    invalid_arg
      (Printf.sprintf "Path.run: server_capacity must be positive (got %d)"
         config.server_capacity);
  Scheme.validate config.client;
  Scheme.validate config.server;
  Plan.validate config.faults;
  Resilience.validate config.resilience

let make_state config =
  validate config;
  let metadata =
    match Scheme.group_config config.client with
    | Some c -> c
    | None -> (
        match Scheme.group_config config.server with
        | Some c -> c
        | None -> Agg_core.Config.default)
  in
  {
    config;
    plan = Plan.make config.faults;
    client = Cache.create (Scheme.cache_kind config.client) ~capacity:config.client_capacity;
    server = Cache.create (Scheme.cache_kind config.server) ~capacity:config.server_capacity;
    tracker =
      Tracker.create ~capacity:metadata.Agg_core.Config.successor_capacity
        ~policy:metadata.Agg_core.Config.metadata_policy ();
    latencies = Agg_util.Vec.create ();
    counters = Counters.create ();
    client_hits = 0;
    server_hits = 0;
    disk_reads = 0;
    files_transferred = 0;
    round_trips = 0;
    now = 0;
  }

(* Serve group members at the server: anything absent comes off the disk
   and is staged cold into the server cache. *)
let stage_members st members =
  List.iter (fun m -> if not (Cache.mem st.server m) then st.disk_reads <- st.disk_reads + 1) members;
  ignore (Cache.insert_cold_group st.server members)

(* One completed remote round trip for [file]: server-side service,
   member staging and transfer. [members] is empty on the degraded path. *)
let complete_fetch st file members =
  st.round_trips <- st.round_trips + 1;
  let served_from_memory = Cache.access st.server file in
  if served_from_memory then st.server_hits <- st.server_hits + 1
  else st.disk_reads <- st.disk_reads + 1;
  st.files_transferred <- st.files_transferred + 1 + List.length members;
  stage_members st members;
  ignore (Cache.insert_cold_group st.client members);
  Cost_model.demand_fetch_latency st.config.cost ~served_from_disk:(not served_from_memory)

(* The resilience loop: attempts time out while the plan blocks them
   (message lost or server down), waiting out the timeout budget and the
   exponential backoff between attempts. [`Served] carries the surviving
   attempt number; [`Degraded] means the retry budget ran dry. *)
let rec attempt_fetch st ~time ~attempt ~waited =
  let r = st.config.resilience in
  let down = Plan.server_down st.plan ~time in
  if not (down || Plan.message_lost st.plan ~time ~attempt) then `Served (attempt, waited)
  else begin
    if down then st.counters.Counters.outage_denials <- st.counters.Counters.outage_denials + 1
    else st.counters.Counters.lost_messages <- st.counters.Counters.lost_messages + 1;
    st.counters.Counters.timeouts <- st.counters.Counters.timeouts + 1;
    let waited = waited +. Resilience.failure_cost_ms r ~attempt in
    if attempt < r.Resilience.max_retries then begin
      st.counters.Counters.retries <- st.counters.Counters.retries + 1;
      attempt_fetch st ~time ~attempt:(attempt + 1) ~waited
    end
    else `Degraded waited
  end

(* Reconstruct the wait phases of a finished resilience loop for the
   trace context: attempt [a]'s cost is its timeout budget plus the
   backoff before the next attempt — exactly [Resilience.failure_cost_ms],
   split into its two spans. *)
let push_wait_phases ctx r ~failures =
  for a = 0 to failures - 1 do
    Agg_obs.Trace_ctx.push ctx ~cat:"timeout" (Printf.sprintf "attempt%d" a)
      ~dur_ms:r.Resilience.timeout_ms;
    if a < r.Resilience.max_retries then
      Agg_obs.Trace_ctx.push ctx ~cat:"backoff"
        (Printf.sprintf "backoff%d" (a + 1))
        ~dur_ms:(Resilience.backoff_ms r ~attempt:(a + 1))
  done

let remote_fetch st ~time ~tracing file =
  let obs = Agg_obs.Scope.sink st.config.scope in
  let group =
    match Scheme.group_config st.config.client with
    | Some c ->
        Agg_core.Group_builder.build st.tracker ~group_size:c.Agg_core.Config.group_size file
    | None -> [ file ]
  in
  let members = match group with _ :: rest -> rest | [] -> [] in
  let outcome =
    if Plan.enabled st.plan then begin
      let outcome = attempt_fetch st ~time ~attempt:0 ~waited:0.0 in
      (if Agg_obs.Sink.enabled obs then
         let failures =
           match outcome with `Served (a, _) -> a | `Degraded _ -> st.config.resilience.Resilience.max_retries + 1
         in
         for a = 0 to failures - 1 do
           Agg_obs.Sink.emit obs (Agg_obs.Event.Fetch_timeout { file; attempt = a })
         done);
      outcome
    end
    else `Served (0, 0.0)
  in
  (match tracing with
  | Some ctx ->
      let failures =
        match outcome with
        | `Served (a, _) -> a
        | `Degraded _ -> st.config.resilience.Resilience.max_retries + 1
      in
      push_wait_phases ctx st.config.resilience ~failures
  | None -> ());
  match outcome with
  | `Served (attempt, waited) ->
      let base = complete_fetch st file members in
      (* [`Aggregating_both]-style server: walk the chain deeper and stage
         the extension into the server cache only — disk readahead that is
         not transferred to the client. *)
      (match Scheme.group_config st.config.server with
      | Some c ->
          let extended =
            Agg_core.Group_builder.build st.tracker
              ~group_size:c.Agg_core.Config.group_size file
          in
          let rec drop n l =
            if n <= 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r
          in
          stage_members st (drop (List.length group) extended)
      | None -> ());
      let served_ms =
        if Plan.enabled st.plan then begin
          let multiplier = Plan.latency_multiplier st.plan ~time ~attempt in
          if multiplier > 1.0 then
            st.counters.Counters.slowed_fetches <- st.counters.Counters.slowed_fetches + 1;
          base *. multiplier
        end
        else base
      in
      (match tracing with
      | Some ctx ->
          Agg_obs.Trace_ctx.push ctx ~cat:"fetch"
            (Printf.sprintf "fetch f%d" file)
            ~dur_ms:served_ms
      | None -> ());
      waited +. served_ms
  | `Degraded waited ->
      (* Retries exhausted: fall back to a single-file demand fetch over
         the hardened minimal path — speculative members are dropped, the
         demanded file is still served (modelled as always succeeding). *)
      st.counters.Counters.degraded_fetches <- st.counters.Counters.degraded_fetches + 1;
      if Agg_obs.Sink.enabled obs then
        Agg_obs.Sink.emit obs
          (Agg_obs.Event.Fetch_degraded { file; dropped = List.length members });
      (match Agg_obs.Scope.series st.config.scope with
      | Some s -> Agg_obs.Series.observe_degraded s ~index:time
      | None -> ());
      let fallback = complete_fetch st file [] in
      (match tracing with
      | Some ctx ->
          Agg_obs.Trace_ctx.push ctx ~cat:"degraded"
            (Printf.sprintf "degraded f%d" file)
            ~dur_ms:fallback
      | None -> ());
      waited +. fallback

let access st file =
  let time = st.now in
  st.now <- time + 1;
  if Plan.enabled st.plan && Plan.client_crashes st.plan ~time ~client:0 then begin
    let wiped = Cache.size st.client in
    Cache.clear st.client;
    st.counters.Counters.crashes <- st.counters.Counters.crashes + 1;
    if Agg_obs.Sink.enabled (Agg_obs.Scope.sink st.config.scope) then
      Agg_obs.Sink.emit (Agg_obs.Scope.sink st.config.scope) (Agg_obs.Event.Client_crashed { client = 0; wiped })
  end;
  (* §3: access statistics are piggy-backed to the server's metadata *)
  Tracker.observe st.tracker file;
  let tracing =
    match Agg_obs.Scope.trace_ctx st.config.scope with
    | Some ctx when Agg_obs.Trace_ctx.sampled ctx ~request:time -> Some ctx
    | _ -> None
  in
  let hit = Cache.access st.client file in
  let latency =
    if hit then begin
      st.client_hits <- st.client_hits + 1;
      let served = st.config.cost.Cost_model.client_memory in
      (match tracing with
      | Some ctx -> Agg_obs.Trace_ctx.push ctx ~cat:"hit" "client hit" ~dur_ms:served
      | None -> ());
      served
    end
    else remote_fetch st ~time ~tracing file
  in
  (match Agg_obs.Scope.trace_ctx st.config.scope with
  | Some ctx -> Agg_obs.Trace_ctx.commit ctx ~request:time ~file ~latency_ms:latency
  | None -> ());
  (match Agg_obs.Scope.series st.config.scope with
  | Some s ->
      Agg_obs.Series.observe_access s ~index:time ~hit;
      Agg_obs.Series.observe_latency s ~index:time
        ~us:(int_of_float ((latency *. 1000.0) +. 0.5))
  | None -> ());
  Agg_util.Vec.push st.latencies latency

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (Float.of_int (n - 1) *. p) in
    sorted.(idx)

let run config trace =
  let st = make_state config in
  Agg_trace.Trace.iter (fun (e : Agg_trace.Event.t) -> access st e.Agg_trace.Event.file) trace;
  let latencies = Agg_util.Vec.to_array st.latencies in
  let total = Array.fold_left ( +. ) 0.0 latencies in
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  {
    accesses = Array.length latencies;
    client_hits = st.client_hits;
    server_hits = st.server_hits;
    disk_reads = st.disk_reads;
    files_transferred = st.files_transferred;
    round_trips = st.round_trips;
    mean_latency = (if Array.length latencies = 0 then 0.0 else total /. float_of_int (Array.length latencies));
    p95_latency = percentile sorted 0.95;
    p99_latency = percentile sorted 0.99;
    faults = st.counters;
  }

let client_hit_rate (r : result) = Agg_util.Stats.ratio r.client_hits r.accesses

let pp_result ppf r =
  Format.fprintf ppf
    "accesses=%d client_hits=%d server_hits=%d disk_reads=%d transferred=%d rtts=%d mean=%.3fms p95=%.3fms p99=%.3fms"
    r.accesses r.client_hits r.server_hits r.disk_reads r.files_transferred r.round_trips
    r.mean_latency r.p95_latency r.p99_latency
