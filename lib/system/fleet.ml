module Cache = Agg_cache.Cache
module Tracker = Agg_successor.Tracker
module Plan = Agg_faults.Plan
module Resilience = Agg_faults.Resilience
module Counters = Agg_faults.Counters

type config = {
  clients : int;
  client_capacity : int;
  client_scheme : Scheme.t;
  server_capacity : int;
  server_scheme : Scheme.t;
  per_client_metadata : bool;
  write_invalidation : bool;
  faults : Plan.config;
  resilience : Resilience.t;
  scope : Agg_obs.Scope.t option;
}

let default_config =
  {
    clients = 4;
    client_capacity = 150;
    client_scheme = Scheme.Aggregating Agg_core.Config.default;
    server_capacity = 300;
    server_scheme = Scheme.Aggregating Agg_core.Config.default;
    per_client_metadata = true;
    write_invalidation = true;
    faults = Plan.none;
    resilience = Resilience.default;
    scope = None;
  }

type result = {
  accesses : int;
  client_hits : int;
  server_requests : int;
  server_hits : int;
  store_fetches : int;
  invalidations : int;
  per_client_hit_rate : (int * float) list;
  faults : Counters.t;
}

type client_state = { cache : Cache.t; mutable accesses : int; mutable hits : int }

type state = {
  config : config;
  plan : Plan.t;
  client_states : client_state array;
  server : Cache.t;
  tracker : Tracker.t; (* server-side metadata over the request stream *)
  counters : Counters.t;
  mutable server_requests : int;
  mutable server_hits : int;
  mutable store_fetches : int;
  mutable invalidations : int;
  mutable now : int;
}

let validate config =
  if config.clients <= 0 then
    invalid_arg (Printf.sprintf "Fleet.run: clients must be positive (got %d)" config.clients);
  if config.client_capacity <= 0 then
    invalid_arg
      (Printf.sprintf "Fleet.run: client_capacity must be positive (got %d)"
         config.client_capacity);
  if config.server_capacity <= 0 then
    invalid_arg
      (Printf.sprintf "Fleet.run: server_capacity must be positive (got %d)"
         config.server_capacity);
  Scheme.validate config.client_scheme;
  Scheme.validate config.server_scheme;
  Plan.validate config.faults;
  Resilience.validate config.resilience

let remap_clients ~clients trace =
  if clients <= 0 then
    invalid_arg (Printf.sprintf "Fleet.remap_clients: clients must be positive (got %d)" clients);
  Agg_trace.Trace.of_events
    (List.map
       (fun (e : Agg_trace.Event.t) -> { e with Agg_trace.Event.client = e.Agg_trace.Event.client mod clients })
       (Agg_trace.Trace.to_events trace))

let make_state config =
  validate config;
  let metadata_config =
    match (Scheme.group_config config.client_scheme, Scheme.group_config config.server_scheme) with
    | Some c, _ | _, Some c -> c
    | None, None -> Agg_core.Config.default
  in
  {
    config;
    plan = Plan.make config.faults;
    client_states =
      Array.init config.clients (fun _ ->
          {
            cache = Cache.create (Scheme.cache_kind config.client_scheme) ~capacity:config.client_capacity;
            accesses = 0;
            hits = 0;
          });
    server = Cache.create (Scheme.cache_kind config.server_scheme) ~capacity:config.server_capacity;
    tracker =
      Tracker.create
        ~capacity:metadata_config.Agg_core.Config.successor_capacity
        ~policy:metadata_config.Agg_core.Config.metadata_policy
        ~per_client:config.per_client_metadata ();
    counters = Counters.create ();
    server_requests = 0;
    server_hits = 0;
    store_fetches = 0;
    invalidations = 0;
    now = 0;
  }

(* a write at one client breaks every other client's cached copy *)
let invalidate_others st ~writer file =
  Array.iteri
    (fun i cs ->
      if i <> writer && Cache.mem cs.cache file then begin
        Cache.remove cs.cache file;
        st.invalidations <- st.invalidations + 1
      end)
    st.client_states

(* The resilience loop (see Path.attempt_fetch): timed-out attempts are
   retried up to the policy's budget, then the fetch degrades. Returns
   the surviving attempt number, or [None] when the budget ran dry. *)
let rec surviving_attempt st ~time ~attempt =
  let down = Plan.server_down st.plan ~time in
  if not (down || Plan.message_lost st.plan ~time ~attempt) then Some attempt
  else begin
    if down then st.counters.Counters.outage_denials <- st.counters.Counters.outage_denials + 1
    else st.counters.Counters.lost_messages <- st.counters.Counters.lost_messages + 1;
    st.counters.Counters.timeouts <- st.counters.Counters.timeouts + 1;
    if attempt < st.config.resilience.Resilience.max_retries then begin
      st.counters.Counters.retries <- st.counters.Counters.retries + 1;
      surviving_attempt st ~time ~attempt:(attempt + 1)
    end
    else None
  end

(* Trace phases for a finished resilience loop, mirroring
   Path.push_wait_phases: attempt [a]'s cost is its timeout budget plus
   the backoff before the next attempt. *)
let push_wait_phases ctx r ~failures =
  for a = 0 to failures - 1 do
    Agg_obs.Trace_ctx.push ctx ~cat:"timeout" (Printf.sprintf "attempt%d" a)
      ~dur_ms:r.Resilience.timeout_ms;
    if a < r.Resilience.max_retries then
      Agg_obs.Trace_ctx.push ctx ~cat:"backoff"
        (Printf.sprintf "backoff%d" (a + 1))
        ~dur_ms:(Resilience.backoff_ms r ~attempt:(a + 1))
  done

let waited_before r ~failures =
  let w = ref 0.0 in
  for a = 0 to failures - 1 do
    w := !w +. Resilience.failure_cost_ms r ~attempt:a
  done;
  !w

(* The survived-fetch path: build the client's group, serve it through
   the server cache, stage the server's own readahead. *)
let serve_group st ~client file =
  begin
    let group =
      match Scheme.group_config st.config.client_scheme with
      | Some c ->
          Agg_core.Group_builder.build st.tracker ~group_size:c.Agg_core.Config.group_size file
      | None -> [ file ]
    in
    if Cache.access st.server file then st.server_hits <- st.server_hits + 1
    else begin
      st.store_fetches <- st.store_fetches + 1;
      (* an aggregating server stages its own (possibly longer) group *)
      match Scheme.group_config st.config.server_scheme with
      | Some c ->
          let staged =
            Agg_core.Group_builder.build st.tracker ~group_size:c.Agg_core.Config.group_size file
          in
          let members = match staged with _ :: rest -> rest | [] -> [] in
          List.iter
            (fun m -> if not (Cache.mem st.server m) then st.store_fetches <- st.store_fetches + 1)
            members;
          ignore (Cache.insert_cold_group st.server members)
      | None -> ()
    end;
    (* group members travel to the requesting client; absent ones are read
       from the store (or the server cache) on the way *)
    let members = match group with _ :: rest -> rest | [] -> [] in
    List.iter
      (fun m ->
        if not (Cache.mem st.server m) then begin
          st.store_fetches <- st.store_fetches + 1;
          Cache.insert_cold st.server m
        end)
      members;
    let client_cache = st.client_states.(client).cache in
    ignore (Cache.insert_cold_group client_cache members)
  end

(* Returns the simulated milliseconds the request waited in the
   resilience loop — the fleet has no latency model beyond that, so this
   is also what the trace context's root span covers. *)
let serve st ~client ~time ~tracing file =
  st.server_requests <- st.server_requests + 1;
  Tracker.observe st.tracker ~client file;
  let outcome =
    if Plan.enabled st.plan then surviving_attempt st ~time ~attempt:0 else Some 0
  in
  let r = st.config.resilience in
  let failures =
    match outcome with Some a -> a | None -> r.Resilience.max_retries + 1
  in
  (match tracing with
  | Some ctx -> push_wait_phases ctx r ~failures
  | None -> ());
  (match outcome with
  | None ->
      (* Degraded single-file fallback: the demanded file is still served
         (counted against the server cache as usual), but no group is built,
         no members travel, and the server stages nothing speculative. *)
      st.counters.Counters.degraded_fetches <- st.counters.Counters.degraded_fetches + 1;
      (match Agg_obs.Scope.series st.config.scope with
      | Some s -> Agg_obs.Series.observe_degraded s ~index:time
      | None -> ());
      if Cache.access st.server file then st.server_hits <- st.server_hits + 1
      else st.store_fetches <- st.store_fetches + 1
  | Some _ -> serve_group st ~client file);
  waited_before r ~failures

let access st (e : Agg_trace.Event.t) =
  let time = st.now in
  st.now <- time + 1;
  let client = e.Agg_trace.Event.client mod st.config.clients in
  let cs = st.client_states.(client) in
  if Plan.enabled st.plan && Plan.client_crashes st.plan ~time ~client then begin
    (* crash/restart: the cache is wiped; the run's per-client hit counts
       and the server-side metadata survive *)
    Cache.clear cs.cache;
    st.counters.Counters.crashes <- st.counters.Counters.crashes + 1
  end;
  cs.accesses <- cs.accesses + 1;
  let file = e.Agg_trace.Event.file in
  let tracing =
    match Agg_obs.Scope.trace_ctx st.config.scope with
    | Some ctx when Agg_obs.Trace_ctx.sampled ctx ~request:time -> Some ctx
    | _ -> None
  in
  let hit = Cache.access cs.cache file in
  let waited =
    if hit then begin
      cs.hits <- cs.hits + 1;
      0.0
    end
    else serve st ~client ~time ~tracing file
  in
  (match Agg_obs.Scope.trace_ctx st.config.scope with
  | Some ctx -> Agg_obs.Trace_ctx.commit ctx ~request:time ~file ~latency_ms:waited
  | None -> ());
  (match Agg_obs.Scope.series st.config.scope with
  | Some s ->
      Agg_obs.Series.observe_access s ~index:time ~hit;
      Agg_obs.Series.observe_node s ~index:time ~node:client
  | None -> ());
  if st.config.write_invalidation && Agg_trace.Event.is_write e then
    invalidate_others st ~writer:client file

let run config trace =
  let st = make_state config in
  Agg_trace.Trace.iter (access st) trace;
  let accesses = Array.fold_left (fun acc cs -> acc + cs.accesses) 0 st.client_states in
  let client_hits = Array.fold_left (fun acc cs -> acc + cs.hits) 0 st.client_states in
  {
    accesses;
    client_hits;
    server_requests = st.server_requests;
    server_hits = st.server_hits;
    store_fetches = st.store_fetches;
    invalidations = st.invalidations;
    per_client_hit_rate =
      Array.to_list
        (Array.mapi (fun i cs -> (i, Agg_util.Stats.ratio cs.hits cs.accesses)) st.client_states);
    faults = st.counters;
  }

let client_hit_rate (r : result) = Agg_util.Stats.ratio r.client_hits r.accesses
let server_hit_rate (r : result) = Agg_util.Stats.ratio r.server_hits r.server_requests

let pp_result ppf (r : result) =
  Format.fprintf ppf
    "accesses=%d client_hits=%d (%.1f%%) server: %d requests, %d hits (%.1f%%), %d store fetches, %d invalidations"
    r.accesses r.client_hits
    (100.0 *. client_hit_rate r)
    r.server_requests r.server_hits
    (100.0 *. server_hit_rate r)
    r.store_fetches r.invalidations
