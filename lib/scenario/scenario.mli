(** Declarative experiments: a scenario is {e data} — workload source,
    topology, fault plan, policy matrix, invariants and expectations —
    serialised in a strict one-line-per-field text format so that a
    directory of [*.scn] files is itself an executable test corpus
    (CoreSim's TestBuilder discipline applied to the paper's harness).

    The codec is strict in the style of {!Agg_obs.Event}: every field of
    a line must be present, recognised and well-typed; unknown fields,
    duplicate sections and malformed values are one-line [line N: ...]
    errors, never silently ignored. [#]-comment and blank lines are
    skipped on input and never produced by {!to_string}, so
    [of_string (to_string s)] round-trips exactly. *)

type workload =
  | Profile of { profile : string; events : int; seed : int }
      (** a calibrated {!Agg_workload.Profile} by name (the four paper
          workloads plus {!Agg_workload.Profile.extras}) *)
  | Trace_file of { file : string }
      (** a real trace in aggtrace format, read via {!Agg_trace.Codec} *)
  | Import_file of { format : Agg_trace.Import.format; file : string }
      (** an external trace ([paths] or [strace]) via {!Agg_trace.Import} *)

type topology =
  | Path of { client_capacity : int; server_capacity : int }
      (** the single Fig. 2 client/server path ({!Agg_system.Path}) *)
  | Fleet of { clients : int; client_capacity : int; server_capacity : int }
      (** many clients, one server ({!Agg_system.Fleet}) *)
  | Cluster of {
      nodes : int;
      replicas : int;
      placement : Agg_cluster.Cluster.metadata_placement;
      ring_seed : int;
      clients : int;
      client_capacity : int;
      node_capacity : int;
      churn : (int * Agg_cluster.Cluster.churn_op) list;
    }  (** a sharded ring of replication groups ({!Agg_cluster.Cluster}) *)

type policy =
  | Plain of Agg_cache.Cache.kind  (** demand caching, e.g. [lru] *)
  | Group of int  (** aggregating cache with this group size, e.g. [g5] *)

val policy_name : policy -> string
(** ["lru"], ["arc"], ..., or ["g<N>"] — the codec's policy spelling. *)

val policy_of_string : string -> policy option
(** Inverse of {!policy_name}. *)

type invariant =
  | Conservation
      (** per cell: counter identities hold (accesses = hits + server
          requests, server hits within requests, rates within bounds) *)
  | Belady_bound
      (** no plain policy in the matrix beats Belady's offline optimum at
          the client capacity on this workload *)
  | G1_equals_lru
      (** an aggregating cache with group size 1 produces exactly the
          plain-LRU load counters on this topology *)
  | Jobs_invariance
      (** the rendered cells are byte-identical at jobs=1 and jobs=2 *)
  | Every_request_served
      (** every demand miss is eventually served (cluster: routed +
          degraded = server requests; path: completed fetches = misses) *)

val invariant_name : invariant -> string
val invariant_of_string : string -> invariant option
val all_invariants : invariant list

type expectation =
  | Hit_rate_min of { policy : policy; percent : float }
      (** the named cell's client hit rate is at least [percent] *)
  | Hit_rate_max of { policy : policy; percent : float }

val expectation_name : expectation -> string
(** A check label, e.g. ["hit_rate policy=lru min=99.5"] — the codec
    line without its [expect ] keyword. *)

type slo_metric =
  | Slo_hit_rate  (** windowed client hit rate, percent *)
  | Slo_p99_latency  (** windowed p99 demand latency, ms *)
  | Slo_degraded_rate  (** windowed degraded-fetch rate, percent *)

val slo_metric_name : slo_metric -> string
(** ["hit_rate"], ["p99_latency"], ["degraded_rate"]. *)

val slo_metric_of_string : string -> slo_metric option
val all_slo_metrics : slo_metric list

type slo = {
  slo_metric : slo_metric;
  slo_policy : policy;  (** which cell of the matrix the rule applies to *)
  slo_bound : [ `Min of float | `Max of float ];
  slo_window : int;  (** accesses per {!Agg_obs.Series} window *)
  slo_after : int;
      (** skip windows starting before this access index — excludes the
          cold-start ramp from steady-state rules; 0 = check everything *)
}
(** A service-level rule evaluated over every complete-or-partial
    {!Agg_obs.Series} window with at least one access: the windowed
    metric must satisfy the bound in each checked window. *)

val slo_name : slo -> string
(** A check label, e.g. ["hit_rate policy=g5 min=60 window=2000"] — the
    codec line without its [slo ] keyword ([after=] printed only when
    positive). *)

type t = {
  name : string;
  workload : workload;
  topology : topology;
  faults : Agg_faults.Plan.config;
  policies : policy list;  (** the policy/group-size matrix; one cell each *)
  invariants : invariant list;
  expectations : expectation list;
  slos : slo list;  (** windowed service-level rules; all share one window *)
  expect_violation : bool;
      (** marks a known-bad scenario: the corpus treats it as healthy
          {e iff} some invariant, expectation or slo fails *)
}

val to_string : t -> string
(** Canonical text form, starting with the [#scenario v1] header. *)

val of_string : string -> (t, string) result
(** Strict parse of {!to_string}'s format. [Error] messages are one line,
    prefixed [line N:]. Round-trip law: [of_string (to_string s) = Ok s]. *)

val load_file : string -> (t, string) result
(** {!of_string} over a file's contents; IO and parse errors are prefixed
    with the offending path (and line, when known). *)

val save_file : string -> t -> unit

val validate : t -> unit
(** @raise Invalid_argument on a non-positive count/capacity/event total,
    an empty or duplicated policy matrix, a duplicated invariant, an
    expectation outside [0, 100] or naming a policy absent from the
    matrix, an invalid fault plan ({!Agg_faults.Plan.validate}), a
    negative churn time, or an invalid slo: duplicated, mixed window
    sizes, a non-positive window, a negative [after], a rate bound
    outside [0, 100], a negative latency bound, a policy absent from the
    matrix, or [p99_latency] on a fleet topology (which has no latency
    model). *)

val events_hint : t -> int option
(** The declared event count for profile workloads ([None] for traces) —
    what the shrinker halves and fast runs cap. *)

val pp : Format.formatter -> t -> unit
