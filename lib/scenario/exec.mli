(** The scenario executor: loads the workload, runs every policy cell of
    the matrix through the shared {!Agg_util.Pool}, and checks every
    declared invariant, expectation and slo rule.

    Cells and checks render to a canonical text form ({!render_outcome})
    whose bytes are a pure function of the scenario — independent of
    [jobs], wall clock and sweep layout — so jobs-determinism is itself
    checkable by string comparison. *)

type cell = {
  policy : Scenario.policy;
  metrics : (string * float) list;
      (** canonical metric names in a fixed per-topology order; integer
          counters are stored as exact floats *)
  series : Agg_obs.Series.t option;
      (** the cell's windowed telemetry, recorded only when the scenario
          declares slo rules (the window is the rules' shared window);
          excluded from {!render_cell} so renders stay byte-identical to
          an slo-free scenario's *)
}

val metric : cell -> string -> float option
(** Look up one metric by name. *)

type check = {
  check_name : string;  (** invariant name or expectation line *)
  pass : bool;
  detail : string;  (** one-line evidence: the compared numbers *)
}

type outcome = {
  scenario : Scenario.t;
  events : int;  (** events actually replayed (after any cap) *)
  cells : cell list;  (** one per matrix policy, in matrix order *)
  checks : check list;  (** invariants first, then expectations, then slos *)
  pass : bool;  (** every check passed *)
  ok : bool;
      (** the corpus verdict: [pass] normally, [not pass] for a
          scenario marked [expect violation] *)
}

val run :
  ?jobs:int ->
  ?events_cap:int ->
  ?scope:Agg_obs.Scope.t ->
  Scenario.t ->
  (outcome, string) result
(** Executes the scenario. [jobs] sizes the domain pool (default 1);
    [events_cap] truncates the workload for fast CI runs; the [scope]'s
    profiler, when set, receives one span per cell (category
    ["scenario"]).

    [Error] covers everything a scenario file can get wrong at run time,
    each as a one-line message naming the offending input: an invalid
    scenario ({!Scenario.validate}), an unknown profile name, or a
    missing/corrupt trace file ({!Agg_trace.Codec.Parse_error} is
    reported as [path: line N: message]). *)

val render_cell : cell -> string
(** The cell as [cell policy=<name>] followed by indented
    [<metric>=<value>] lines. Integers print without a decimal point. *)

val render_outcome : outcome -> string
(** Canonical report: scenario name, events, every cell, every check and
    the final verdict. Byte-identical for any [jobs] value. *)
