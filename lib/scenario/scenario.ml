module Plan = Agg_faults.Plan
module Cache = Agg_cache.Cache
module Cluster = Agg_cluster.Cluster

type workload =
  | Profile of { profile : string; events : int; seed : int }
  | Trace_file of { file : string }
  | Import_file of { format : Agg_trace.Import.format; file : string }

type topology =
  | Path of { client_capacity : int; server_capacity : int }
  | Fleet of { clients : int; client_capacity : int; server_capacity : int }
  | Cluster of {
      nodes : int;
      replicas : int;
      placement : Cluster.metadata_placement;
      ring_seed : int;
      clients : int;
      client_capacity : int;
      node_capacity : int;
      churn : (int * Cluster.churn_op) list;
    }

type policy = Plain of Cache.kind | Group of int

let policy_name = function
  | Plain kind -> Cache.kind_name kind
  | Group n -> Printf.sprintf "g%d" n

let policy_of_string s =
  match Cache.kind_of_string s with
  | Some kind -> Some (Plain kind)
  | None ->
      let n = String.length s in
      if n >= 2 && s.[0] = 'g' then
        match int_of_string_opt (String.sub s 1 (n - 1)) with
        | Some g when g > 0 -> Some (Group g)
        | _ -> None
      else None

type invariant =
  | Conservation
  | Belady_bound
  | G1_equals_lru
  | Jobs_invariance
  | Every_request_served

let invariant_name = function
  | Conservation -> "conservation"
  | Belady_bound -> "belady_bound"
  | G1_equals_lru -> "g1_equals_lru"
  | Jobs_invariance -> "jobs_invariance"
  | Every_request_served -> "every_request_served"

let all_invariants =
  [ Conservation; Belady_bound; G1_equals_lru; Jobs_invariance; Every_request_served ]

let invariant_of_string s =
  List.find_opt (fun i -> invariant_name i = s) all_invariants

type expectation =
  | Hit_rate_min of { policy : policy; percent : float }
  | Hit_rate_max of { policy : policy; percent : float }

type slo_metric = Slo_hit_rate | Slo_p99_latency | Slo_degraded_rate

let slo_metric_name = function
  | Slo_hit_rate -> "hit_rate"
  | Slo_p99_latency -> "p99_latency"
  | Slo_degraded_rate -> "degraded_rate"

let all_slo_metrics = [ Slo_hit_rate; Slo_p99_latency; Slo_degraded_rate ]

let slo_metric_of_string s =
  List.find_opt (fun m -> slo_metric_name m = s) all_slo_metrics

type slo = {
  slo_metric : slo_metric;
  slo_policy : policy;
  slo_bound : [ `Min of float | `Max of float ];
  slo_window : int;
  slo_after : int;
}

type t = {
  name : string;
  workload : workload;
  topology : topology;
  faults : Plan.config;
  policies : policy list;
  invariants : invariant list;
  expectations : expectation list;
  slos : slo list;
  expect_violation : bool;
}

(* --- canonical printing --------------------------------------------------- *)

(* Floats must survive the round trip exactly: prefer the short %g form,
   fall back to the always-exact %.17g when it loses precision. *)
let float_str f =
  let s = Printf.sprintf "%g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let header = "#scenario v1"

let format_name = function Agg_trace.Import.Paths -> "paths" | Agg_trace.Import.Strace -> "strace"

let workload_line = function
  | Profile { profile; events; seed } ->
      Printf.sprintf "workload profile name=%s events=%d seed=%d" profile events seed
  | Trace_file { file } -> Printf.sprintf "workload trace file=%s" file
  | Import_file { format; file } ->
      Printf.sprintf "workload import format=%s file=%s" (format_name format) file

let topology_lines = function
  | Path { client_capacity; server_capacity } ->
      [ Printf.sprintf "topology path client_capacity=%d server_capacity=%d" client_capacity
          server_capacity ]
  | Fleet { clients; client_capacity; server_capacity } ->
      [ Printf.sprintf "topology fleet clients=%d client_capacity=%d server_capacity=%d" clients
          client_capacity server_capacity ]
  | Cluster { nodes; replicas; placement; ring_seed; clients; client_capacity; node_capacity; churn }
    ->
      Printf.sprintf
        "topology cluster nodes=%d replicas=%d placement=%s ring_seed=%d clients=%d \
         client_capacity=%d node_capacity=%d"
        nodes replicas
        (Cluster.placement_name placement)
        ring_seed clients client_capacity node_capacity
      :: List.map
           (fun (time, op) ->
             match op with
             | Cluster.Join node -> Printf.sprintf "churn time=%d op=join node=%d" time node
             | Cluster.Leave node -> Printf.sprintf "churn time=%d op=leave node=%d" time node)
           churn

let faults_line (c : Plan.config) =
  Printf.sprintf
    "faults seed=%d loss=%s outage_period=%d outage_rate=%s outage_length=%d slow=%s slow_mult=%s \
     crash=%s"
    c.Plan.seed (float_str c.Plan.loss_rate) c.Plan.outage_period (float_str c.Plan.outage_rate)
    c.Plan.outage_length (float_str c.Plan.slow_rate) (float_str c.Plan.slow_multiplier)
    (float_str c.Plan.crash_rate)

let expectation_name = function
  | Hit_rate_min { policy; percent } ->
      Printf.sprintf "hit_rate policy=%s min=%s" (policy_name policy) (float_str percent)
  | Hit_rate_max { policy; percent } ->
      Printf.sprintf "hit_rate policy=%s max=%s" (policy_name policy) (float_str percent)

let expectation_line e = "expect " ^ expectation_name e

let slo_name s =
  let bound = match s.slo_bound with `Min v -> "min=" ^ float_str v | `Max v -> "max=" ^ float_str v in
  Printf.sprintf "%s policy=%s %s window=%d%s" (slo_metric_name s.slo_metric)
    (policy_name s.slo_policy) bound s.slo_window
    (if s.slo_after > 0 then Printf.sprintf " after=%d" s.slo_after else "")

let slo_line s = "slo " ^ slo_name s

let to_string t =
  let lines =
    [ header; Printf.sprintf "name %s" t.name; workload_line t.workload ]
    @ topology_lines t.topology
    @ [ faults_line t.faults ]
    @ List.map (fun p -> Printf.sprintf "policy %s" (policy_name p)) t.policies
    @ List.map (fun i -> Printf.sprintf "invariant %s" (invariant_name i)) t.invariants
    @ List.map expectation_line t.expectations
    @ List.map slo_line t.slos
    @ (if t.expect_violation then [ "expect violation" ] else [])
  in
  String.concat "\n" lines ^ "\n"

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* --- strict parsing -------------------------------------------------------- *)

let ( let* ) = Result.bind

let errf line fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" line m)) fmt

(* Every token after a line's keyword must be key=value; [keys] is the
   exact expected set — unknown, duplicate and missing keys are errors. *)
let parse_kvs ~line keys tokens =
  let* kvs =
    List.fold_left
      (fun acc token ->
        let* acc = acc in
        match String.index_opt token '=' with
        | None -> errf line "malformed field %S (expected key=value)" token
        | Some i ->
            let key = String.sub token 0 i in
            let value = String.sub token (i + 1) (String.length token - i - 1) in
            if not (List.mem key keys) then errf line "unknown field %S" key
            else if List.mem_assoc key acc then errf line "duplicate field %S" key
            else Ok ((key, value) :: acc))
      (Ok []) tokens
  in
  match List.find_opt (fun k -> not (List.mem_assoc k kvs)) keys with
  | Some missing -> errf line "missing field %S" missing
  | None -> Ok kvs

let int_kv ~line kvs key =
  let v = List.assoc key kvs in
  match int_of_string_opt v with
  | Some i -> Ok i
  | None -> errf line "field %S is not an integer: %S" key v

let float_kv ~line kvs key =
  let v = List.assoc key kvs in
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> errf line "field %S is not a number: %S" key v

type partial = {
  mutable p_name : string option;
  mutable p_workload : workload option;
  mutable p_topology : topology option;
  mutable p_churn : (int * Cluster.churn_op) list;  (* reversed *)
  mutable p_faults : Plan.config option;
  mutable p_policies : policy list;  (* reversed *)
  mutable p_invariants : invariant list;  (* reversed *)
  mutable p_expectations : expectation list;  (* reversed *)
  mutable p_slos : slo list;  (* reversed *)
  mutable p_expect_violation : bool;
}

(* key=value fold where only [keys] are admissible but none is required —
   lines with optional fields (expect hit_rate, slo) check presence
   themselves. *)
let parse_optional_kvs ~line keys tokens =
  List.fold_left
    (fun acc token ->
      let* acc = acc in
      match String.index_opt token '=' with
      | None -> errf line "malformed field %S (expected key=value)" token
      | Some i ->
          let key = String.sub token 0 i in
          let value = String.sub token (i + 1) (String.length token - i - 1) in
          if not (List.mem key keys) then errf line "unknown field %S" key
          else if List.mem_assoc key acc then errf line "duplicate field %S" key
          else Ok ((key, value) :: acc))
    (Ok []) tokens

let parse_line p ~line tokens =
  let once what slot store =
    match slot with Some _ -> errf line "duplicate %s line" what | None -> Ok (store ())
  in
  match tokens with
  | [ "name"; name ] ->
      once "name" p.p_name (fun () -> p.p_name <- Some name)
  | "name" :: _ -> errf line "name takes exactly one value"
  | "workload" :: "profile" :: rest ->
      let* kvs = parse_kvs ~line [ "name"; "events"; "seed" ] rest in
      let profile = List.assoc "name" kvs in
      let* events = int_kv ~line kvs "events" in
      let* seed = int_kv ~line kvs "seed" in
      once "workload" p.p_workload (fun () ->
          p.p_workload <- Some (Profile { profile; events; seed }))
  | "workload" :: "trace" :: rest ->
      let* kvs = parse_kvs ~line [ "file" ] rest in
      once "workload" p.p_workload (fun () ->
          p.p_workload <- Some (Trace_file { file = List.assoc "file" kvs }))
  | "workload" :: "import" :: rest ->
      let* kvs = parse_kvs ~line [ "format"; "file" ] rest in
      let fmt = List.assoc "format" kvs in
      let* format =
        match Agg_trace.Import.format_of_string fmt with
        | Some f -> Ok f
        | None -> errf line "unknown import format %S (expected paths or strace)" fmt
      in
      once "workload" p.p_workload (fun () ->
          p.p_workload <- Some (Import_file { format; file = List.assoc "file" kvs }))
  | "workload" :: kind :: _ -> errf line "unknown workload kind %S" kind
  | [ "workload" ] -> errf line "workload needs a kind (profile, trace or import)"
  | "topology" :: "path" :: rest ->
      let* kvs = parse_kvs ~line [ "client_capacity"; "server_capacity" ] rest in
      let* client_capacity = int_kv ~line kvs "client_capacity" in
      let* server_capacity = int_kv ~line kvs "server_capacity" in
      once "topology" p.p_topology (fun () ->
          p.p_topology <- Some (Path { client_capacity; server_capacity }))
  | "topology" :: "fleet" :: rest ->
      let* kvs = parse_kvs ~line [ "clients"; "client_capacity"; "server_capacity" ] rest in
      let* clients = int_kv ~line kvs "clients" in
      let* client_capacity = int_kv ~line kvs "client_capacity" in
      let* server_capacity = int_kv ~line kvs "server_capacity" in
      once "topology" p.p_topology (fun () ->
          p.p_topology <- Some (Fleet { clients; client_capacity; server_capacity }))
  | "topology" :: "cluster" :: rest ->
      let* kvs =
        parse_kvs ~line
          [ "nodes"; "replicas"; "placement"; "ring_seed"; "clients"; "client_capacity";
            "node_capacity" ]
          rest
      in
      let* nodes = int_kv ~line kvs "nodes" in
      let* replicas = int_kv ~line kvs "replicas" in
      let* ring_seed = int_kv ~line kvs "ring_seed" in
      let* clients = int_kv ~line kvs "clients" in
      let* client_capacity = int_kv ~line kvs "client_capacity" in
      let* node_capacity = int_kv ~line kvs "node_capacity" in
      let pl = List.assoc "placement" kvs in
      let* placement =
        match Cluster.placement_of_string pl with
        | Some p -> Ok p
        | None -> errf line "unknown placement %S (expected owner, group or client)" pl
      in
      once "topology" p.p_topology (fun () ->
          p.p_topology <-
            Some
              (Cluster
                 { nodes; replicas; placement; ring_seed; clients; client_capacity; node_capacity;
                   churn = [] }))
  | "topology" :: kind :: _ -> errf line "unknown topology %S" kind
  | [ "topology" ] -> errf line "topology needs a kind (path, fleet or cluster)"
  | "churn" :: rest -> (
      match p.p_topology with
      | Some (Cluster _) ->
          let* kvs = parse_kvs ~line [ "time"; "op"; "node" ] rest in
          let* time = int_kv ~line kvs "time" in
          let* node = int_kv ~line kvs "node" in
          let* op =
            match List.assoc "op" kvs with
            | "join" -> Ok (Cluster.Join node)
            | "leave" -> Ok (Cluster.Leave node)
            | other -> errf line "unknown churn op %S (expected join or leave)" other
          in
          Ok (p.p_churn <- (time, op) :: p.p_churn)
      | Some _ | None -> errf line "churn is only valid after a cluster topology")
  | "faults" :: rest ->
      let* kvs =
        parse_kvs ~line
          [ "seed"; "loss"; "outage_period"; "outage_rate"; "outage_length"; "slow"; "slow_mult";
            "crash" ]
          rest
      in
      let* seed = int_kv ~line kvs "seed" in
      let* loss_rate = float_kv ~line kvs "loss" in
      let* outage_period = int_kv ~line kvs "outage_period" in
      let* outage_rate = float_kv ~line kvs "outage_rate" in
      let* outage_length = int_kv ~line kvs "outage_length" in
      let* slow_rate = float_kv ~line kvs "slow" in
      let* slow_multiplier = float_kv ~line kvs "slow_mult" in
      let* crash_rate = float_kv ~line kvs "crash" in
      once "faults" p.p_faults (fun () ->
          p.p_faults <-
            Some
              { Plan.seed; loss_rate; outage_period; outage_rate; outage_length; slow_rate;
                slow_multiplier; crash_rate })
  | [ "policy"; spec ] -> (
      match policy_of_string spec with
      | Some policy -> Ok (p.p_policies <- policy :: p.p_policies)
      | None -> errf line "unknown policy %S (a cache kind or g<N>)" spec)
  | "policy" :: _ -> errf line "policy takes exactly one value"
  | [ "invariant"; spec ] -> (
      match invariant_of_string spec with
      | Some i -> Ok (p.p_invariants <- i :: p.p_invariants)
      | None ->
          errf line "unknown invariant %S (expected one of: %s)" spec
            (String.concat ", " (List.map invariant_name all_invariants)))
  | "invariant" :: _ -> errf line "invariant takes exactly one value"
  | [ "expect"; "violation" ] ->
      if p.p_expect_violation then errf line "duplicate expect violation line"
      else Ok (p.p_expect_violation <- true)
  | "expect" :: "hit_rate" :: rest ->
      let* kvs = parse_optional_kvs ~line [ "policy"; "min"; "max" ] rest in
      let* policy =
        match List.assoc_opt "policy" kvs with
        | None -> errf line "missing field \"policy\""
        | Some spec -> (
            match policy_of_string spec with
            | Some p -> Ok p
            | None -> errf line "unknown policy %S (a cache kind or g<N>)" spec)
      in
      let* e =
        match (List.assoc_opt "min" kvs, List.assoc_opt "max" kvs) with
        | Some v, None -> (
            match float_of_string_opt v with
            | Some percent -> Ok (Hit_rate_min { policy; percent })
            | None -> errf line "field \"min\" is not a number: %S" v)
        | None, Some v -> (
            match float_of_string_opt v with
            | Some percent -> Ok (Hit_rate_max { policy; percent })
            | None -> errf line "field \"max\" is not a number: %S" v)
        | Some _, Some _ -> errf line "expect hit_rate takes min or max, not both"
        | None, None -> errf line "expect hit_rate needs min= or max="
      in
      Ok (p.p_expectations <- e :: p.p_expectations)
  | "expect" :: kind :: _ -> errf line "unknown expectation %S" kind
  | [ "expect" ] -> errf line "expect needs a kind (hit_rate or violation)"
  | "slo" :: metric :: rest ->
      let* slo_metric =
        match slo_metric_of_string metric with
        | Some m -> Ok m
        | None ->
            errf line "unknown slo metric %S (expected one of: %s)" metric
              (String.concat ", " (List.map slo_metric_name all_slo_metrics))
      in
      let* kvs = parse_optional_kvs ~line [ "policy"; "min"; "max"; "window"; "after" ] rest in
      let* slo_policy =
        match List.assoc_opt "policy" kvs with
        | None -> errf line "missing field \"policy\""
        | Some spec -> (
            match policy_of_string spec with
            | Some p -> Ok p
            | None -> errf line "unknown policy %S (a cache kind or g<N>)" spec)
      in
      let* slo_bound =
        match (List.assoc_opt "min" kvs, List.assoc_opt "max" kvs) with
        | Some v, None -> (
            match float_of_string_opt v with
            | Some f -> Ok (`Min f)
            | None -> errf line "field \"min\" is not a number: %S" v)
        | None, Some v -> (
            match float_of_string_opt v with
            | Some f -> Ok (`Max f)
            | None -> errf line "field \"max\" is not a number: %S" v)
        | Some _, Some _ -> errf line "slo takes min or max, not both"
        | None, None -> errf line "slo needs min= or max="
      in
      let* slo_window =
        match List.assoc_opt "window" kvs with
        | None -> errf line "missing field \"window\""
        | Some v -> (
            match int_of_string_opt v with
            | Some i -> Ok i
            | None -> errf line "field \"window\" is not an integer: %S" v)
      in
      let* slo_after =
        match List.assoc_opt "after" kvs with
        | None -> Ok 0
        | Some v -> (
            match int_of_string_opt v with
            | Some i -> Ok i
            | None -> errf line "field \"after\" is not an integer: %S" v)
      in
      Ok
        (p.p_slos <-
           { slo_metric; slo_policy; slo_bound; slo_window; slo_after } :: p.p_slos)
  | [ "slo" ] -> errf line "slo needs a metric (hit_rate, p99_latency or degraded_rate)"
  | keyword :: _ -> errf line "unknown line keyword %S" keyword
  | [] -> Ok () (* unreachable: blank lines are filtered by the caller *)

let of_string text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | first :: rest when String.trim first = header ->
      let p =
        {
          p_name = None;
          p_workload = None;
          p_topology = None;
          p_churn = [];
          p_faults = None;
          p_policies = [];
          p_invariants = [];
          p_expectations = [];
          p_slos = [];
          p_expect_violation = false;
        }
      in
      let* () =
        List.fold_left
          (fun acc (line, raw) ->
            let* () = acc in
            let raw = String.trim raw in
            if raw = "" || raw.[0] = '#' then Ok ()
            else
              let tokens = List.filter (fun t -> t <> "") (String.split_on_char ' ' raw) in
              parse_line p ~line tokens)
          (Ok ())
          (List.mapi (fun i raw -> (i + 2, raw)) rest)
      in
      let require what = function
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "line %d: missing %s line" (List.length lines) what)
      in
      let* name = require "name" p.p_name in
      let* workload = require "workload" p.p_workload in
      let* topology = require "topology" p.p_topology in
      let topology =
        match topology with
        | Cluster c -> Cluster { c with churn = List.rev p.p_churn }
        | t -> t
      in
      if p.p_policies = [] then
        Error (Printf.sprintf "line %d: missing policy line" (List.length lines))
      else
        Ok
          {
            name;
            workload;
            topology;
            faults = Option.value ~default:Plan.none p.p_faults;
            policies = List.rev p.p_policies;
            invariants = List.rev p.p_invariants;
            expectations = List.rev p.p_expectations;
            slos = List.rev p.p_slos;
            expect_violation = p.p_expect_violation;
          }
  | first :: _ -> Error (Printf.sprintf "line 1: expected %S header, got %S" header (String.trim first))
  | [] -> Error "line 1: empty input"

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
      match of_string text with
      | Ok t -> Ok t
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let save_file path t = Out_channel.with_open_text path (fun oc -> output_string oc (to_string t))

(* --- validation ------------------------------------------------------------ *)

let invalid fmt = Printf.ksprintf invalid_arg fmt

let positive what v = if v <= 0 then invalid "Scenario.validate: %s must be positive (got %d)" what v

let validate t =
  if t.name = "" then invalid "Scenario.validate: empty name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> ()
      | c -> invalid "Scenario.validate: name contains %C" c)
    t.name;
  (match t.workload with
  | Profile { events; _ } -> positive "events" events
  | Trace_file _ | Import_file _ -> ());
  (match t.topology with
  | Path { client_capacity; server_capacity } ->
      positive "client_capacity" client_capacity;
      positive "server_capacity" server_capacity
  | Fleet { clients; client_capacity; server_capacity } ->
      positive "clients" clients;
      positive "client_capacity" client_capacity;
      positive "server_capacity" server_capacity
  | Cluster { nodes; replicas; clients; client_capacity; node_capacity; churn; _ } ->
      positive "nodes" nodes;
      positive "replicas" replicas;
      positive "clients" clients;
      positive "client_capacity" client_capacity;
      positive "node_capacity" node_capacity;
      List.iter
        (fun (time, _) ->
          if time < 0 then invalid "Scenario.validate: negative churn time %d" time)
        churn);
  Plan.validate t.faults;
  if t.policies = [] then invalid "Scenario.validate: empty policy matrix";
  List.iter (fun (p : policy) -> match p with Group g -> positive "group size" g | Plain _ -> ())
    t.policies;
  let dup to_name l =
    let names = List.map to_name l in
    List.find_opt (fun n -> List.length (List.filter (( = ) n) names) > 1) names
  in
  (match dup policy_name t.policies with
  | Some p -> invalid "Scenario.validate: duplicate policy %s" p
  | None -> ());
  (match dup invariant_name t.invariants with
  | Some i -> invalid "Scenario.validate: duplicate invariant %s" i
  | None -> ());
  List.iter
    (fun e ->
      let (Hit_rate_min { policy; percent } | Hit_rate_max { policy; percent }) = e in
      if not (percent >= 0.0 && percent <= 100.0) then
        invalid "Scenario.validate: hit-rate expectation %s outside [0, 100]" (float_str percent);
      if not (List.exists (fun p -> policy_name p = policy_name policy) t.policies) then
        invalid "Scenario.validate: expectation on policy %s absent from the matrix"
          (policy_name policy))
    t.expectations;
  (match dup slo_name t.slos with
  | Some s -> invalid "Scenario.validate: duplicate slo %s" s
  | None -> ());
  (match t.slos with
  | [] -> ()
  | first :: rest ->
      (* one window size per scenario: every policy cell folds its run into
         a single series, and mixed windows would need one series each *)
      List.iter
        (fun s ->
          if s.slo_window <> first.slo_window then
            invalid "Scenario.validate: slo windows differ (%d and %d)" first.slo_window
              s.slo_window)
        rest);
  List.iter
    (fun s ->
      positive "slo window" s.slo_window;
      if s.slo_after < 0 then invalid "Scenario.validate: negative slo after %d" s.slo_after;
      (match (s.slo_metric, s.slo_bound) with
      | (Slo_hit_rate | Slo_degraded_rate), (`Min v | `Max v) ->
          if not (v >= 0.0 && v <= 100.0) then
            invalid "Scenario.validate: slo rate bound %s outside [0, 100]" (float_str v)
      | Slo_p99_latency, (`Min v | `Max v) ->
          if not (v >= 0.0) then
            invalid "Scenario.validate: negative slo latency bound %s" (float_str v));
      (match (s.slo_metric, t.topology) with
      | Slo_p99_latency, Fleet _ ->
          invalid "Scenario.validate: p99_latency slo on a fleet topology (no latency model)"
      | _ -> ());
      if not (List.exists (fun p -> policy_name p = policy_name s.slo_policy) t.policies) then
        invalid "Scenario.validate: slo on policy %s absent from the matrix"
          (policy_name s.slo_policy))
    t.slos

let events_hint t =
  match t.workload with
  | Profile { events; _ } -> Some events
  | Trace_file _ | Import_file _ -> None
